#include "rnic/rnic.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace prdma::rnic {

using net::Packet;
using net::WireOp;
using sim::SimTime;

Rnic::Rnic(sim::Simulator& sim, sim::Rng& rng, net::Fabric& fabric,
           mem::NodeMemory& memory, net::NodeId id, RnicParams params)
    : sim_(sim),
      rng_(rng),
      fabric_(fabric),
      mem_(memory),
      id_(id),
      params_(params) {
  fabric_.register_node(id_, sim_, [this](Packet p) { on_packet(std::move(p)); });
}

Rnic::~Rnic() { fabric_.unregister_node(id_); }

// --------------------------------------------------------------- control

Qp& Rnic::create_qp(Transport transport, Cq& send_cq, Cq& recv_cq) {
  auto qp = std::make_unique<Qp>();
  qp->qpn = next_qpn_++;
  qp->transport = transport;
  qp->send_cq = &send_cq;
  qp->recv_cq = &recv_cq;
  Qp& ref = *qp;
  qps_[ref.qpn] = std::move(qp);
  return ref;
}

Qp* Rnic::find_qp(std::uint32_t qpn) {
  const auto it = qps_.find(qpn);
  return it == qps_.end() ? nullptr : it->second.get();
}

void Rnic::connect(Qp& qp, net::NodeId peer, std::uint32_t peer_qpn) {
  qp.peer = peer;
  qp.peer_qpn = peer_qpn;
  qp.connected = true;
}

// ------------------------------------------------------------ data posts

void Rnic::post_recv(Qp& qp, std::uint64_t addr, std::uint64_t len,
                     std::uint64_t wr_id) {
  qp.recv_queue.push_back(RecvWqe{addr, len, wr_id});
  // Serve packets that beat the recv post (RNR queue).
  while (!qp.rnr_queue.empty() && !qp.recv_queue.empty()) {
    Packet p = std::move(qp.rnr_queue.front());
    qp.rnr_queue.pop_front();
    deliver_send(qp, std::move(p));
  }
}

void Rnic::post_send(Qp& qp, std::uint64_t local_addr, std::uint64_t len,
                     std::uint64_t wr_id, std::optional<std::uint32_t> imm) {
  if (qp.transport == Transport::kUD && len > params_.ud_mtu) {
    throw std::invalid_argument("UD send exceeds MTU");
  }
  Packet p;
  p.src = id_;
  p.dst = qp.peer;
  p.src_qp = qp.qpn;
  p.dst_qp = qp.peer_qpn;
  p.op = imm ? WireOp::kSendImm : WireOp::kSend;
  p.wr_id = wr_id;
  p.length = len;
  if (imm) {
    p.imm = *imm;
    p.has_imm = true;
  }
  p.payload = mem_.read_payload(local_addr, len);
  transmit_data(std::move(p));
}

void Rnic::post_write(Qp& qp, std::uint64_t local_addr, std::uint64_t len,
                      std::uint64_t remote_addr, std::uint64_t wr_id,
                      std::optional<std::uint32_t> imm) {
  if (qp.transport == Transport::kUD) {
    throw std::invalid_argument("RDMA write is not supported on UD");
  }
  Packet p;
  p.src = id_;
  p.dst = qp.peer;
  p.src_qp = qp.qpn;
  p.dst_qp = qp.peer_qpn;
  p.op = imm ? WireOp::kWriteImm : WireOp::kWrite;
  p.wr_id = wr_id;
  p.remote_addr = remote_addr;
  p.length = len;
  if (imm) {
    p.imm = *imm;
    p.has_imm = true;
  }
  p.payload = mem_.read_payload(local_addr, len);
  transmit_data(std::move(p));
}

void Rnic::post_read(Qp& qp, std::uint64_t remote_addr, std::uint64_t len,
                     std::uint64_t local_addr, std::uint64_t wr_id) {
  if (qp.transport != Transport::kRC) {
    throw std::invalid_argument("RDMA read requires RC");
  }
  Packet p;
  p.src = id_;
  p.dst = qp.peer;
  p.src_qp = qp.qpn;
  p.dst_qp = qp.peer_qpn;
  p.op = WireOp::kReadReq;
  p.wr_id = wr_id;
  p.remote_addr = remote_addr;
  p.length = len;
  p.local_addr = local_addr;
  transmit_data(std::move(p));
}

void Rnic::post_wflush(Qp& qp, std::uint64_t remote_addr, std::uint64_t len,
                       std::uint64_t wr_id) {
  if (qp.transport != Transport::kRC) {
    throw std::invalid_argument("WFlush requires RC (§4.1.1)");
  }
  Packet p;
  p.src = id_;
  p.dst = qp.peer;
  p.src_qp = qp.qpn;
  p.dst_qp = qp.peer_qpn;
  p.op = WireOp::kWFlushReq;
  p.wr_id = wr_id;
  p.remote_addr = remote_addr;
  p.length = len;
  transmit_data(std::move(p));
}

void Rnic::post_sflush(Qp& qp, std::uint64_t pm_dest_addr, std::uint64_t len,
                       std::uint64_t wr_id) {
  if (qp.transport != Transport::kRC) {
    throw std::invalid_argument("SFlush requires RC (§4.1.1)");
  }
  Packet p;
  p.src = id_;
  p.dst = qp.peer;
  p.src_qp = qp.qpn;
  p.dst_qp = qp.peer_qpn;
  p.op = WireOp::kSFlushReq;
  p.wr_id = wr_id;
  p.remote_addr = pm_dest_addr;
  p.length = len;
  transmit_data(std::move(p));
}

// ----------------------------------------------------------- TX pipeline

sim::SimTime Rnic::transmit_data(Packet p) {
  Qp* qp = find_qp(p.src_qp);
  if (!alive_ || qp == nullptr || !qp->connected || qp->in_error) {
    // Posting on a dead/torn-down/errored QP: complete with an error
    // so the caller does not hang (mirrors ibv_post_send on a QP in
    // error).
    if (qp != nullptr && qp->send_cq != nullptr) {
      Wc wc;
      wc.wr_id = p.wr_id;
      wc.status = WcStatus::kFlushed;
      wc.op = p.op;
      wc.qpn = p.src_qp;
      qp->send_cq->push(wc);
    }
    return sim_.now();
  }

  const bool reliable = qp->transport == Transport::kRC;
  if (reliable) {
    p.seq = qp->next_seq++;
  }

  // TX pipeline: per-packet occupancy is the pipeline slot plus the
  // payload's PCIe transfer; the PCIe setup latency is pipelined (it
  // delays this packet but does not block successors).
  const SimTime tx_begin = std::max(sim_.now(), tx_busy_until_);
  SimTime occupancy = params_.tx_process;
  SimTime extra_latency = 0;
  if (net::carries_payload(p.op)) {
    occupancy += sim::transfer_time(p.length, params_.pcie_bw_bytes_per_s);
    extra_latency = params_.pcie_setup;
  }
  tx_busy_until_ = tx_begin + occupancy;
  const SimTime ready = tx_begin + occupancy + extra_latency;

  if (reliable) {
    auto& pending = qp->unacked[p.seq];
    pending.packet = p;
    pending.attempts = 1;
    arm_retransmit(qp->qpn, p.seq);
  }

  const std::uint64_t epoch = epoch_;
  sim_.schedule_at(ready, [this, epoch, p]() mutable {
    if (epoch != epoch_ || !alive_) return;
    fabric_.send(std::move(p));
  });

  if (!reliable) {
    // UC/UD complete locally once the packet is on the wire.
    Wc wc;
    wc.wr_id = p.wr_id;
    wc.op = p.op;
    wc.qpn = qp->qpn;
    wc.byte_len = p.length;
    Cq* cq = qp->send_cq;
    const std::uint64_t e2 = epoch_;
    sim_.schedule_at(ready, [this, e2, cq, wc] {
      if (e2 != epoch_ || !alive_) return;
      cq->push(wc);
    });
  }
  return ready;
}

void Rnic::transmit_control(Packet p) {
  const SimTime tx_begin = std::max(sim_.now(), tx_busy_until_);
  SimTime occupancy = params_.tx_process;
  SimTime extra_latency = 0;
  if (net::carries_payload(p.op)) {
    occupancy += sim::transfer_time(p.length, params_.pcie_bw_bytes_per_s);
    extra_latency = params_.pcie_setup;
  }
  tx_busy_until_ = tx_begin + occupancy;
  const SimTime ready = tx_begin + occupancy + extra_latency;
  const std::uint64_t epoch = epoch_;
  sim_.schedule_at(ready, [this, epoch, p]() mutable {
    if (epoch != epoch_ || !alive_) return;
    fabric_.send(std::move(p));
  });
}

void Rnic::arm_retransmit(std::uint32_t qpn, std::uint64_t seq) {
  // One timer per posted packet, armed at the base interval: on a
  // lossless fabric the packet is long ACKed when it fires (one no-op
  // event, identical to the historical model, so clean runs stay
  // bit-exact). Go-back-N, backoff and escalation only engage when a
  // fired timer finds its sequence still unacknowledged.
  arm_retransmit_after(qpn, seq, params_.retransmit_interval);
}

sim::SimTime Rnic::backoff_delay(int timeouts) const {
  double d = static_cast<double>(params_.retransmit_interval);
  const double cap = static_cast<double>(
      std::max(params_.retransmit_cap, params_.retransmit_interval));
  const double backoff = std::max(params_.retransmit_backoff, 1.0);
  for (int i = 0; i < timeouts && d < cap; ++i) d *= backoff;
  return static_cast<sim::SimTime>(std::min(d, cap));
}

void Rnic::fail_qp(Qp& qp) {
  qp.in_error = true;
  bool head = true;
  for (auto& [seq, wr] : qp.unacked) {
    if (qp.send_cq != nullptr) {
      Wc wc;
      wc.wr_id = wr.packet.wr_id;
      wc.status = head ? WcStatus::kRetryExceeded : WcStatus::kFlushed;
      wc.op = wr.packet.op;
      wc.qpn = qp.qpn;
      qp.send_cq->push(wc);
    }
    head = false;
  }
  qp.unacked.clear();
}

void Rnic::arm_retransmit_after(std::uint32_t qpn, std::uint64_t seq,
                                sim::SimTime delay) {
  const std::uint64_t epoch = epoch_;
  sim_.schedule(delay, [this, epoch, qpn, seq] {
    if (epoch != epoch_ || !alive_) return;
    Qp* qp = find_qp(qpn);
    if (qp == nullptr || qp->in_error) return;
    const auto it = qp->unacked.find(seq);
    if (it == qp->unacked.end()) return;  // ACKed in the meantime
    if (it != qp->unacked.begin()) {
      // Not the head of the unacked window. The head's timer drives
      // go-back-N (which replays this packet too); keep watching at
      // the base cadence until this packet is ACKed or becomes head.
      arm_retransmit_after(qpn, seq, params_.retransmit_interval);
      return;
    }
    if (it->second.attempts > params_.max_retransmits) {
      fail_qp(*qp);
      return;
    }
    ++it->second.attempts;
    // Go-back-N: a head timeout means everything after the last
    // cumulative ACK is suspect — replay the whole unacked window in
    // sequence order. PendingWr keeps the original PayloadRef, so a
    // replay shares the same payload block (zero-copy).
    for (auto& [s, wr] : qp->unacked) {
      ++retransmits_;
      if (tracer_ != nullptr) {
        tracer_->counter(trace::Component::kRnicRetransmit, sim_.now(), 1,
                         static_cast<std::uint16_t>(id_));
      }
      fabric_.send(wr.packet);
    }
    arm_retransmit_after(qpn, seq, backoff_delay(it->second.attempts - 1));
  });
}

void Rnic::complete_send_wr(Qp& qp, std::uint64_t seq, const Packet& ack) {
  const auto it = qp.unacked.find(seq);
  if (it == qp.unacked.end()) return;  // duplicate ACK
  const Packet& orig = it->second.packet;

  if (ack.op == WireOp::kNak) {
    Wc wc;
    wc.wr_id = orig.wr_id;
    wc.status = WcStatus::kRemoteAccessError;
    wc.op = orig.op;
    wc.qpn = qp.qpn;
    qp.send_cq->push(wc);
    qp.unacked.erase(it);
    return;
  }

  if (orig.op == WireOp::kReadReq) {
    // Read response: DMA the returned data into local memory first.
    Cq* cq = qp.send_cq;
    const std::uint64_t wr_id = orig.wr_id;
    const std::uint32_t qpn = qp.qpn;
    const std::uint64_t len = ack.length;
    enqueue_dma_write(orig.local_addr, ack.payload, len, params_.ddio,
                      [this, cq, wr_id, qpn, len](SimTime) {
                        Wc wc;
                        wc.wr_id = wr_id;
                        wc.op = WireOp::kReadReq;
                        wc.qpn = qpn;
                        wc.byte_len = len;
                        cq->push(wc);
                      });
  } else {
    Wc wc;
    wc.wr_id = orig.wr_id;
    wc.op = orig.op;
    wc.qpn = qp.qpn;
    wc.byte_len = orig.length;
    qp.send_cq->push(wc);
  }
  qp.unacked.erase(it);
}

// ----------------------------------------------------------- RX pipeline

void Rnic::on_packet(Packet p) {
  if (!alive_) return;
  ++rx_packets_;
  const std::uint64_t epoch = epoch_;
  sim_.schedule(params_.rx_process, [this, epoch, p = std::move(p)]() mutable {
    if (epoch != epoch_ || !alive_) return;
    dispatch(std::move(p));
  });
}

void Rnic::dispatch(Packet p) {
  switch (p.op) {
    case WireOp::kAck:
    case WireOp::kFlushAck:
    case WireOp::kReadResp:
    case WireOp::kNak:
      handle_ack(p);
      return;
    default:
      admit_data(std::move(p));
      return;
  }
}

void Rnic::handle_ack(const Packet& p) {
  Qp* qp = find_qp(p.dst_qp);
  if (qp == nullptr) return;
  complete_send_wr(*qp, p.seq, p);
}

void Rnic::admit_data(Packet p) {
  const std::uint64_t bytes = p.wire_bytes();
  if (sram_used_ + bytes > params_.sram_capacity) {
    Qp* qp = find_qp(p.dst_qp);
    const bool reliable = qp != nullptr && qp->transport == Transport::kRC;
    if (reliable) {
      backlog_.push_back(std::move(p));  // link-level flow control
    }
    // UC/UD overflow: silently dropped (unreliable transports).
    return;
  }
  sram_used_ += bytes;
  trace_sram();
  process_admitted(std::move(p));
}

void Rnic::try_admit_backlog() {
  while (!backlog_.empty()) {
    const std::uint64_t bytes = backlog_.front().wire_bytes();
    if (sram_used_ + bytes > params_.sram_capacity) return;
    Packet p = std::move(backlog_.front());
    backlog_.pop_front();
    sram_used_ += bytes;
    trace_sram();
    process_admitted(std::move(p));
  }
}

void Rnic::release_sram(std::uint64_t bytes) {
  assert(sram_used_ >= bytes);
  sram_used_ -= bytes;
  trace_sram();
  try_admit_backlog();
}

void Rnic::process_admitted(Packet p) {
  Qp* qp = find_qp(p.dst_qp);
  if (qp == nullptr || !qp->connected) {
    // Stale packet for a torn-down QP (pre-crash traffic).
    release_sram(p.wire_bytes());
    return;
  }

  const bool reliable = qp->transport == Transport::kRC;

  if (reliable) {
    const bool response_op = p.op == WireOp::kReadReq ||
                             p.op == WireOp::kWFlushReq ||
                             p.op == WireOp::kSFlushReq;
    if (p.seq < qp->expected_seq) {
      // Retransmitted duplicate. Sends/writes whose ACK was lost are
      // simply re-ACKed; reads/flushes re-execute below (idempotent;
      // their response is their acknowledgement).
      if (!response_op) {
        release_sram(p.wire_bytes());
        Packet ack;
        ack.src = id_;
        ack.dst = p.src;
        ack.dst_qp = p.src_qp;
        ack.src_qp = p.dst_qp;
        ack.op = WireOp::kAck;
        ack.wr_id = p.wr_id;
        ack.seq = p.seq;
        transmit_control(std::move(ack));
        return;
      }
    } else if (p.seq > qp->expected_seq) {
      if (qp->ooo.count(p.seq) != 0) {
        // A go-back-N replay of a packet already parked out-of-order:
        // discard the copy and free its buffer (parking it twice would
        // leak the SRAM the duplicate admitted with).
        release_sram(p.wire_bytes());
        return;
      }
      // Arrived ahead of a predecessor (network jitter): hold it so RC
      // in-order semantics are preserved — a flush must never overtake
      // the write it covers. SRAM stays occupied while parked.
      qp->ooo.emplace(p.seq, std::move(p));
      return;
    } else {
      qp->expected_seq = p.seq + 1;
    }

    // T_A: RC acknowledges receipt into RNIC SRAM — *before* the data
    // is persistent. Reads/flushes are acknowledged by their response.
    // Region protection is validated BEFORE the ACK (a bad rkey NAKs).
    bool nakked = false;
    if (!response_op) {
      if ((p.op == WireOp::kWrite || p.op == WireOp::kWriteImm) &&
          !check_access_or_nak(p, Access::kRemoteWrite)) {
        nakked = true;  // NAK sent, SRAM released; still drain successors
      } else {
        Packet ack;
        ack.src = id_;
        ack.dst = p.src;
        ack.dst_qp = p.src_qp;
        ack.src_qp = p.dst_qp;
        ack.op = WireOp::kAck;
        ack.wr_id = p.wr_id;
        ack.seq = p.seq;
        transmit_control(std::move(ack));
      }
    }

    // Release any successors that were parked behind this packet.
    if (const auto next = qp->ooo.find(qp->expected_seq); next != qp->ooo.end()) {
      Packet successor = std::move(next->second);
      qp->ooo.erase(next);
      const std::uint64_t epoch = epoch_;
      sim_.schedule(0, [this, epoch, successor = std::move(successor)]() mutable {
        if (epoch != epoch_ || !alive_) return;
        process_admitted(std::move(successor));
      });
    }
    if (nakked) return;
  }

  switch (p.op) {
    case WireOp::kWrite: {
      if (!check_access_or_nak(p, Access::kRemoteWrite)) return;
      const std::uint64_t sram_bytes = p.wire_bytes();
      const std::uint64_t waddr = p.remote_addr;
      const std::uint64_t wlen = p.length;
      enqueue_dma_write(p.remote_addr, p.payload, p.length, params_.ddio,
                        [this, sram_bytes, waddr, wlen](SimTime) {
                          release_sram(sram_bytes);
                          maybe_auto_persist(waddr, wlen);
                        });
      return;
    }
    case WireOp::kWriteImm: {
      if (!check_access_or_nak(p, Access::kRemoteWrite)) return;
      const std::uint64_t sram_bytes = p.wire_bytes();
      Packet notify = p;  // keep metadata for the completion
      enqueue_dma_write(
          p.remote_addr, p.payload, p.length, params_.ddio,
          [this, sram_bytes, notify](SimTime) {
            release_sram(sram_bytes);
            Qp* q = find_qp(notify.dst_qp);
            if (q == nullptr) return;
            if (q->recv_queue.empty()) {
              Packet n = notify;
              n.payload = nullptr;  // data already placed
              q->rnr_queue.push_back(std::move(n));
              ++rnr_events_;
              return;
            }
            const RecvWqe wqe = q->recv_queue.front();
            q->recv_queue.pop_front();
            Wc wc;
            wc.wr_id = wqe.wr_id;
            wc.op = WireOp::kWriteImm;
            wc.qpn = q->qpn;
            wc.byte_len = notify.length;
            wc.imm = notify.imm;
            wc.has_imm = true;
            wc.local_addr = notify.remote_addr;
            q->recv_cq->push(wc);
          });
      return;
    }
    case WireOp::kSend:
    case WireOp::kSendImm:
      deliver_send(*qp, std::move(p));
      return;
    case WireOp::kReadReq:
      if (!check_access_or_nak(p, Access::kRemoteRead)) return;
      handle_read_req(std::move(p));
      return;
    case WireOp::kWFlushReq:
      if (!check_access_or_nak(p, Access::kRemoteFlush)) return;
      handle_wflush(std::move(p));
      return;
    case WireOp::kSFlushReq:
      handle_sflush(std::move(p));
      return;
    default:
      release_sram(p.wire_bytes());
      return;
  }
}

void Rnic::deliver_send(Qp& qp, Packet p) {
  if (p.op == WireOp::kWriteImm) {
    // Deferred write-imm notification being replayed from the RNR queue.
    if (qp.recv_queue.empty()) {
      qp.rnr_queue.push_back(std::move(p));
      return;
    }
    const RecvWqe wqe = qp.recv_queue.front();
    qp.recv_queue.pop_front();
    Wc wc;
    wc.wr_id = wqe.wr_id;
    wc.op = WireOp::kWriteImm;
    wc.qpn = qp.qpn;
    wc.byte_len = p.length;
    wc.imm = p.imm;
    wc.has_imm = true;
    wc.local_addr = p.remote_addr;
    qp.recv_cq->push(wc);
    return;
  }

  if (qp.recv_queue.empty()) {
    ++rnr_events_;
    qp.rnr_queue.push_back(std::move(p));
    return;
  }
  const RecvWqe wqe = qp.recv_queue.front();
  qp.recv_queue.pop_front();
  const std::uint64_t len = std::min(p.length, wqe.length);
  qp.last_send_addr = wqe.addr;
  qp.last_send_len = len;

  const std::uint64_t sram_bytes = p.wire_bytes();
  const std::uint32_t qpn = qp.qpn;
  const Packet meta = p;  // metadata for the completion
  enqueue_dma_write(wqe.addr, p.payload, len, params_.ddio,
                    [this, sram_bytes, qpn, wqe, len, meta](SimTime) {
                      release_sram(sram_bytes);
                      Qp* q = find_qp(qpn);
                      if (q == nullptr) return;
                      Wc wc;
                      wc.wr_id = wqe.wr_id;
                      wc.op = meta.op;
                      wc.qpn = qpn;
                      wc.byte_len = len;
                      wc.imm = meta.imm;
                      wc.has_imm = meta.has_imm;
                      wc.local_addr = wqe.addr;
                      q->recv_cq->push(wc);
                    });
}

bool Rnic::check_access_or_nak(const net::Packet& p, Access need) {
  if (!params_.enforce_mr) return true;
  if (mrs_.allows(p.remote_addr, p.length, need)) return true;
  ++access_violations_;
  release_sram(p.wire_bytes());
  Packet nak;
  nak.src = id_;
  nak.dst = p.src;
  nak.src_qp = p.dst_qp;
  nak.dst_qp = p.src_qp;
  nak.op = WireOp::kNak;
  nak.wr_id = p.wr_id;
  nak.seq = p.seq;
  transmit_control(std::move(nak));
  return false;
}

void Rnic::handle_read_req(Packet p) {
  // A read must order behind in-flight DMA writes to the same range —
  // this is exactly the side effect the read-after-write emulation of
  // WFlush exploits (§4.1.3).
  const SimTime start = std::max(sim_.now(), drain_time(p.remote_addr, p.length));
  const SimTime mem_done =
      mem_.device_read_complete_at(start, p.remote_addr, p.length);
  const SimTime pcie_done =
      mem_done + params_.pcie_setup +
      sim::transfer_time(p.length, params_.pcie_bw_bytes_per_s);

  const std::uint64_t epoch = epoch_;
  sim_.schedule_at(pcie_done, [this, epoch, p]() {
    if (epoch != epoch_ || !alive_) return;
    release_sram(p.wire_bytes());
    Packet resp;
    resp.src = id_;
    resp.dst = p.src;
    resp.src_qp = p.dst_qp;
    resp.dst_qp = p.src_qp;
    resp.op = WireOp::kReadResp;
    resp.wr_id = p.wr_id;
    resp.seq = p.seq;
    resp.length = p.length;
    // Coherent snapshot (sees LLC dirty lines), zero-copy for tracked
    // shadow ranges.
    resp.payload = mem_.read_payload(p.remote_addr, p.length);
    transmit_control(std::move(resp));
  });
}

void Rnic::handle_wflush(Packet p) {
  if (params_.ack_before_persist) {
    // MUTANT (see RnicParams::ack_before_persist): acknowledge the
    // flush right away, while the covered bytes may still be in SRAM /
    // in-flight DMA. A crash between this ACK and the DMA completion
    // loses or tears acknowledged data — the durability oracle must
    // flag it.
    ++flushes_;
    release_sram(p.wire_bytes());
    Packet ack;
    ack.src = id_;
    ack.dst = p.src;
    ack.src_qp = p.dst_qp;
    ack.dst_qp = p.src_qp;
    ack.op = WireOp::kFlushAck;
    ack.wr_id = p.wr_id;
    ack.seq = p.seq;
    transmit_control(std::move(ack));
    return;
  }

  // Persist [remote_addr, +len): wait for in-flight DMA to land, THEN
  // write back any DDIO-dirty lines (they only exist once the DMA
  // applied), then charge either the emulated read-after-write cost or
  // the idealised hardware flush cost.
  const SimTime drained =
      std::max(sim_.now(), drain_time(p.remote_addr, p.length));
  const std::uint64_t epoch = epoch_;
  sim_.schedule_at(drained, [this, epoch, p] {
    if (epoch != epoch_ || !alive_) return;
    const SimTime flush_begin = sim_.now();
    SimTime t = flush_begin;
    if (mem_.is_pm(p.remote_addr) &&
        mem_.llc().is_dirty(p.remote_addr, p.length)) {
      t = mem_.clflush(t, p.remote_addr, p.length);
    }
    if (params_.emulate_flush) {
      // Read-after-write: fetch the last cache line of the range.
      const std::uint64_t tail =
          p.remote_addr + (p.length > 0 ? p.length - 1 : 0);
      t = mem_.device_read_complete_at(t, mem::line_down(tail),
                                       mem::kCacheLine);
    } else {
      t += params_.hw_flush_cost;
    }
    ++flushes_;
    trace_span(trace::Component::kRnicWFlush, p.seq, flush_begin, t);
    sim_.schedule_at(t, [this, epoch, p] {
      if (epoch != epoch_ || !alive_) return;
      release_sram(p.wire_bytes());
      Packet ack;
      ack.src = id_;
      ack.dst = p.src;
      ack.src_qp = p.dst_qp;
      ack.dst_qp = p.src_qp;
      ack.op = WireOp::kFlushAck;
      ack.wr_id = p.wr_id;
      ack.seq = p.seq;
      transmit_control(std::move(ack));
    });
  });
}

void Rnic::handle_sflush(Packet p) {
  Qp* qp = find_qp(p.dst_qp);
  if (qp == nullptr) {
    release_sram(p.wire_bytes());
    return;
  }
  // The flushed data is the QP's most recent send, sitting in the
  // posted recv buffer (message buffer, Fig. 5 step A).
  const std::uint64_t src_addr = qp->last_send_addr;
  const std::uint64_t len = std::min<std::uint64_t>(p.length, qp->last_send_len);

  // Wait until that send's DMA into the message buffer completed, then
  // resolve the destination address (hardware: parse packet; emulated:
  // the paper charges ~7 µs, §4.1.3).
  SimTime t = std::max(sim_.now(), drain_time(src_addr, len));
  t += params_.emulate_flush ? params_.sflush_addressing
                             : params_.hw_addressing_cost;
  trace_span(trace::Component::kRnicSFlush, p.seq, sim_.now(), t);

  const std::uint64_t epoch = epoch_;
  sim_.schedule_at(t, [this, epoch, p, src_addr, len] {
    if (epoch != epoch_ || !alive_) return;
    // DMA-copy message buffer -> PM redo-log slot (Fig. 5 step B),
    // bypassing the cache into the persist domain.
    enqueue_dma_write(p.remote_addr, mem_.read_payload(src_addr, len), len,
                      /*ddio=*/false, [this, p](SimTime) {
                        ++flushes_;
                        release_sram(p.wire_bytes());
                        Packet ack;
                        ack.src = id_;
                        ack.dst = p.src;
                        ack.src_qp = p.dst_qp;
                        ack.dst_qp = p.src_qp;
                        ack.op = WireOp::kFlushAck;
                        ack.wr_id = p.wr_id;
                        ack.seq = p.seq;
                        transmit_control(std::move(ack));
                      });
  });
}

// ------------------------------------------------------------ DMA engine

void Rnic::enqueue_dma_write(std::uint64_t addr, net::PayloadRef payload,
                             std::uint64_t len, bool ddio,
                             DmaCallback on_done) {
  // The engine pipelines transaction setup: occupancy is the bus
  // transfer; the setup latency delays this transfer's completion but
  // does not block successors.
  const SimTime begin = std::max(sim_.now(), dma_busy_until_);
  const SimTime xfer = sim::transfer_time(len, params_.pcie_bw_bytes_per_s);
  dma_busy_until_ = begin + xfer;
  const SimTime pcie_done = begin + params_.pcie_setup + xfer;

  SimTime done;
  const bool to_llc = ddio && mem_.is_pm(addr);
  if (to_llc) {
    done = pcie_done + 100;  // LLC fill is fast — and volatile
  } else {
    // Media cost only: the DMA engine's own queue (dma_busy_until_)
    // is the serialization point; claiming device occupancy from a
    // future start would stall unrelated CPU flushes artificially.
    done = pcie_done + mem_.device_write_cost(addr, len);
  }
  pending_.push_back(PendingDma{addr, len, done, begin, payload, to_llc});
  trace_span(trace::Component::kRnicDma, addr, begin, done);

  const std::uint64_t epoch = epoch_;
  sim_.schedule_at(done, [this, epoch, addr, payload = std::move(payload),
                          len, ddio, done,
                          on_done = std::move(on_done)]() mutable {
    if (epoch != epoch_ || !alive_) return;  // crash: data lost in flight
    if (payload != nullptr) {
      mem_.dma_write_payload(addr, payload, ddio && mem_.is_pm(addr), len);
    }
    prune_pending();
    if (on_done) on_done(done);
  });
}

sim::SimTime Rnic::drain_time(std::uint64_t addr, std::uint64_t len) const {
  SimTime t = 0;
  for (const PendingDma& d : pending_) {
    const bool overlap = d.addr < addr + len && addr < d.addr + d.len;
    if (overlap) t = std::max(t, d.done);
  }
  return t;
}

void Rnic::prune_pending() {
  const SimTime now = sim_.now();
  std::erase_if(pending_, [now](const PendingDma& d) { return d.done <= now; });
}

// -------------------------------------------------------- local persist

void Rnic::persist_range(std::uint64_t addr, std::uint64_t len,
                         DmaCallback on_done) {
  const SimTime drained = std::max(sim_.now(), drain_time(addr, len));
  const std::uint64_t epoch = epoch_;
  sim_.schedule_at(
      drained,
      [epoch, this, addr, len, on_done = std::move(on_done)]() mutable {
        if (epoch != epoch_ || !alive_) return;
        const SimTime drained_at = sim_.now();
        SimTime t = drained_at;
        if (mem_.is_pm(addr) && mem_.llc().is_dirty(addr, len)) {
          t = mem_.clflush(t, addr, len);
        }
        trace_span(trace::Component::kRnicRFlush, addr, drained_at, t);
        sim_.schedule_at(t, [epoch, this, t,
                             on_done = std::move(on_done)]() mutable {
          if (epoch != epoch_ || !alive_) return;
          on_done(t);
        });
      });
}

void Rnic::configure_auto_persist(Qp& qp, std::uint64_t addr,
                                  std::uint64_t len,
                                  std::uint64_t notify_addr,
                                  std::uint64_t initial_counter) {
  auto_persist_.push_back(
      AutoPersist{qp.qpn, addr, len, notify_addr, initial_counter});
}

void Rnic::maybe_auto_persist(std::uint64_t addr, std::uint64_t len) {
  if (!params_.smartnic_rflush || auto_persist_.empty()) return;
  for (AutoPersist& ap : auto_persist_) {
    const bool overlap = ap.addr < addr + len && addr < ap.addr + ap.len;
    if (!overlap) continue;
    // Persist what just landed, then push the updated counter to the
    // sender's notify word. Both steps are NIC-side: the receiver CPU
    // is never involved (§4.5).
    AutoPersist* slot = &ap;
    const std::uint64_t epoch = epoch_;
    persist_range(addr, len, [this, epoch, slot](SimTime) {
      if (epoch != epoch_ || !alive_) return;
      ++slot->counter;
      ++flushes_;
      Qp* qp = find_qp(slot->qpn);
      if (qp == nullptr || !qp->connected) return;
      net::Packet n;
      n.src = id_;
      n.dst = qp->peer;
      n.src_qp = qp->qpn;
      n.dst_qp = qp->peer_qpn;
      n.op = net::WireOp::kWrite;
      n.wr_id = 0;  // silent
      n.remote_addr = slot->notify_addr;
      n.length = 8;
      std::byte image[8];
      std::memcpy(image, &slot->counter, 8);
      n.payload = mem_.pool().make_bytes(image);
      n.seq = qp->next_seq++;
      // NIC-generated: fire on the control path (no host WQE fetch);
      // the RC ACK for it resolves silently via handle_ack. The notify
      // is RC traffic like any other — it arms a retransmission timer,
      // or a lost notify would stall the sender's persist wait forever.
      qp->unacked[n.seq] = Qp::PendingWr{n, 1};
      arm_retransmit(qp->qpn, n.seq);
      transmit_control(n);
    });
  }
}

// ---------------------------------------------------------------- crash

void Rnic::crash() {
  if (!alive_) return;
  alive_ = false;
  ++epoch_;
  fabric_.unregister_node(id_);
  auto_persist_.clear();  // smartNIC lookup tables are volatile
  mrs_.clear();           // protection state is NIC-volatile too

  // Everything volatile on the NIC is gone.
  bytes_lost_ += sram_used_;
  for (const Packet& p : backlog_) bytes_lost_ += p.wire_bytes();
  sram_used_ = 0;
  backlog_.clear();

  // In-flight DMA: a non-DDIO write headed for PM lands *partially* —
  // the line-aligned prefix proportional to its elapsed transfer time
  // is already on the media when the power fails (torn entry). DDIO
  // fills and DRAM-bound writes are purely volatile and vanish whole.
  const SimTime now = sim_.now();
  for (const PendingDma& d : pending_) {
    if (d.done <= now || d.payload == nullptr) continue;  // landed/no data
    if (d.ddio || !mem_.is_pm(d.addr)) continue;
    std::uint64_t persisted = 0;
    if (now > d.begin && d.done > d.begin) {
      persisted = d.len * (now - d.begin) / (d.done - d.begin);
    }
    mem_.dma_torn_write(d.addr, d.payload, d.len, persisted);
  }
  pending_.clear();
  dma_busy_until_ = 0;
  tx_busy_until_ = 0;

  for (auto& [qpn, qp] : qps_) {
    qp->connected = false;
    qp->recv_queue.clear();
    qp->rnr_queue.clear();
    qp->ooo.clear();
    // Flush outstanding sender WRs with an error completion.
    for (auto& [seq, wr] : qp->unacked) {
      Wc wc;
      wc.wr_id = wr.packet.wr_id;
      wc.status = WcStatus::kFlushed;
      wc.op = wr.packet.op;
      wc.qpn = qpn;
      qp->send_cq->push(wc);
    }
    qp->unacked.clear();
  }
}

void Rnic::restart() {
  if (alive_) return;
  alive_ = true;
  ++epoch_;
  fabric_.register_node(id_, sim_, [this](Packet p) { on_packet(std::move(p)); });
}

}  // namespace prdma::rnic
