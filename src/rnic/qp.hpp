#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>

#include "net/packet.hpp"
#include "rnic/completion.hpp"
#include "sim/time.hpp"

namespace prdma::rnic {

/// RDMA transport service types (§2.2 of the paper).
enum class Transport : std::uint8_t {
  kRC,  ///< reliable connection: ACKed, retransmitted
  kUC,  ///< unreliable connection: writes allowed, no ACKs
  kUD,  ///< unreliable datagram: sends only, MTU-limited
};

/// A posted receive buffer awaiting an incoming send.
struct RecvWqe {
  std::uint64_t addr = 0;
  std::uint64_t length = 0;
  std::uint64_t wr_id = 0;
};

/// Queue pair endpoint state. Owned by the Rnic; protocol code holds
/// QpId handles, never pointers, so crashes can invalidate freely.
struct Qp {
  std::uint32_t qpn = 0;
  Transport transport = Transport::kRC;
  net::NodeId peer = 0;
  std::uint32_t peer_qpn = 0;
  bool connected = false;

  Cq* send_cq = nullptr;
  Cq* recv_cq = nullptr;

  std::deque<RecvWqe> recv_queue;

  // --- sender-side RC reliability state ---
  std::uint64_t next_seq = 0;
  struct PendingWr {
    net::Packet packet;  // kept for retransmission
    /// Timeout rounds this packet has seen as head of the unacked
    /// window (go-back-N counts retries of the head; a packet's budget
    /// restarts when it becomes the head).
    int attempts = 0;
  };
  std::map<std::uint64_t, PendingWr> unacked;  // seq -> wr
  /// Retry budget exhausted: the QP took the bounded-retry -> error
  /// escalation. Pending WRs were flushed; new posts fail immediately.
  bool in_error = false;

  // --- receiver-side state ---
  /// Landing zone of the most recent send DMA (consulted by SFlush,
  /// which in hardware would parse the packet; §4.1.1).
  std::uint64_t last_send_addr = 0;
  std::uint64_t last_send_len = 0;

  /// Packets that arrived before a recv buffer was posted (RNR queue).
  std::deque<net::Packet> rnr_queue;

  /// Receiver-side RC ordering: next sequence number to process.
  /// Packets that arrive early (network jitter) wait in `ooo`;
  /// packets below `expected_seq` are retransmitted duplicates.
  std::uint64_t expected_seq = 0;
  std::map<std::uint64_t, net::Packet> ooo;
};

}  // namespace prdma::rnic
