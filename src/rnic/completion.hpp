#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace prdma::rnic {

/// Completion status of a work request.
enum class WcStatus : std::uint8_t {
  kSuccess,
  kRetryExceeded,      ///< RC gave up retransmitting (peer dead)
  kFlushed,            ///< QP torn down (local crash) before completion
  kRemoteAccessError,  ///< peer NAKed: rkey/permission violation
};

/// Work completion, as polled from a completion queue.
struct Wc {
  std::uint64_t wr_id = 0;
  WcStatus status = WcStatus::kSuccess;
  net::WireOp op = net::WireOp::kSend;
  std::uint32_t qpn = 0;
  std::uint64_t byte_len = 0;
  std::uint32_t imm = 0;
  bool has_imm = false;
  /// For recv completions: where the data landed.
  std::uint64_t local_addr = 0;
};

/// Completion queue: a deterministic channel of Wc entries that host
/// pollers consume. Crash handling resets the channel (wakes pollers
/// with nullopt) rather than destroying it.
class Cq {
 public:
  explicit Cq(sim::Simulator& sim) : ch_(sim) {}

  void push(const Wc& wc) {
    ++pushed_;
    ch_.send(wc);
  }

  [[nodiscard]] sim::Channel<Wc>& channel() { return ch_; }
  [[nodiscard]] std::uint64_t pushed() const { return pushed_; }
  [[nodiscard]] std::size_t depth() const { return ch_.size(); }

  /// Crash: drop queued completions and wake pollers with nullopt.
  void reset() { ch_.reset(); }

 private:
  sim::Channel<Wc> ch_;
  std::uint64_t pushed_ = 0;
};

}  // namespace prdma::rnic
