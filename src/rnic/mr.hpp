#pragma once

#include <cstdint>
#include <vector>

namespace prdma::rnic {

/// Remote-access rights of a registered memory region (the moral
/// equivalent of IBV_ACCESS_REMOTE_WRITE / _READ, plus the Flush
/// right the IBTA memory-placement extensions add for persistent
/// memory regions).
enum class Access : std::uint8_t {
  kRemoteWrite = 1u << 0,
  kRemoteRead = 1u << 1,
  kRemoteFlush = 1u << 2,
};

[[nodiscard]] constexpr std::uint8_t operator|(Access a, Access b) {
  return static_cast<std::uint8_t>(a) | static_cast<std::uint8_t>(b);
}
[[nodiscard]] constexpr std::uint8_t operator|(std::uint8_t a, Access b) {
  return a | static_cast<std::uint8_t>(b);
}

inline constexpr std::uint8_t kAccessAll =
    Access::kRemoteWrite | Access::kRemoteRead | Access::kRemoteFlush;

/// One registered region.
struct MemoryRegion {
  std::uint32_t rkey = 0;
  std::uint64_t addr = 0;
  std::uint64_t len = 0;
  std::uint8_t access = 0;
};

/// The RNIC's region-protection table. When enforcement is enabled
/// (RnicParams::enforce_mr), every incoming one-sided operation must
/// land entirely inside a region carrying the required right;
/// violations are NAKed and surface at the sender as a
/// kRemoteAccessError work completion — exactly how a bad rkey fails
/// on real verbs.
class MrTable {
 public:
  std::uint32_t register_mr(std::uint64_t addr, std::uint64_t len,
                            std::uint8_t access) {
    const std::uint32_t rkey = next_rkey_++;
    regions_.push_back(MemoryRegion{rkey, addr, len, access});
    return rkey;
  }

  void deregister(std::uint32_t rkey) {
    std::erase_if(regions_,
                  [rkey](const MemoryRegion& r) { return r.rkey == rkey; });
  }

  /// True when [addr, addr+len) lies entirely within one region that
  /// grants `need`.
  [[nodiscard]] bool allows(std::uint64_t addr, std::uint64_t len,
                            Access need) const {
    for (const MemoryRegion& r : regions_) {
      const bool within = addr >= r.addr && addr + len <= r.addr + r.len;
      if (within && (r.access & static_cast<std::uint8_t>(need)) != 0) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const { return regions_.size(); }

  /// Crash: protection state is NIC-volatile; applications re-register
  /// after restart.
  void clear() { regions_.clear(); }

 private:
  std::uint32_t next_rkey_ = 1;
  std::vector<MemoryRegion> regions_;
};

}  // namespace prdma::rnic
