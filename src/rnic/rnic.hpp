#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "mem/node_memory.hpp"
#include "net/fabric.hpp"
#include "net/packet.hpp"
#include "rnic/completion.hpp"
#include "rnic/mr.hpp"
#include "rnic/params.hpp"
#include "rnic/qp.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "trace/tracer.hpp"

namespace prdma::rnic {

/// Completion callback for the DMA engine and the local persistence
/// engine. Move-only with 104 B of inline storage: these callbacks ride
/// inside scheduled events on the hottest path in the simulator, and
/// the previous std::function cost a heap allocation per DMA
/// completion. The budget covers every capture in the tree (the largest
/// is the smartNIC auto-persist continuation) with room for the
/// enclosing event to stay within sim::kEventInlineBytes.
using DmaCallback = sim::InlineFunction<void(sim::SimTime), 104>;

/// Simulated RDMA NIC.
///
/// Models the hardware behaviours the paper's analysis depends on:
///  * a volatile SRAM packet buffer — RC ACKs are generated when data
///    reaches this buffer (time T_A), *before* it is persistent (T_B);
///  * a FIFO DMA engine draining SRAM into host memory across PCIe,
///    steered by DDIO (LLC) or straight into the persist domain;
///  * reads and flushes that must order behind in-flight DMA writes;
///  * the proposed Flush primitives (§4.1): WFlush/SFlush executed on
///    behalf of the remote sender, and persist_range() as the local
///    building block for receiver-initiated RFlush;
///  * RC retransmission with a configurable interval (§5.4);
///  * crash semantics: everything in SRAM, the DMA queue and QP state
///    vanishes; only bytes already DMA-ed into the persist domain
///    survive.
class Rnic {
 public:
  Rnic(sim::Simulator& sim, sim::Rng& rng, net::Fabric& fabric,
       mem::NodeMemory& memory, net::NodeId id, RnicParams params);
  ~Rnic();

  Rnic(const Rnic&) = delete;
  Rnic& operator=(const Rnic&) = delete;

  [[nodiscard]] net::NodeId id() const { return id_; }
  [[nodiscard]] RnicParams& params() { return params_; }
  [[nodiscard]] mem::NodeMemory& memory() { return mem_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  // ---- verbs-level control path ----

  Qp& create_qp(Transport transport, Cq& send_cq, Cq& recv_cq);

  /// Registers [addr, +len) for remote access (ibv_reg_mr analogue).
  /// Enforcement is gated by params().enforce_mr.
  std::uint32_t register_mr(std::uint64_t addr, std::uint64_t len,
                            std::uint8_t access) {
    return mrs_.register_mr(addr, len, access);
  }
  void deregister_mr(std::uint32_t rkey) { mrs_.deregister(rkey); }
  [[nodiscard]] const MrTable& mr_table() const { return mrs_; }
  [[nodiscard]] Qp* find_qp(std::uint32_t qpn);
  void connect(Qp& qp, net::NodeId peer, std::uint32_t peer_qpn);

  // ---- verbs-level data path (posts are instantaneous; host software
  //      cost is charged by the host layer before calling these) ----

  void post_recv(Qp& qp, std::uint64_t addr, std::uint64_t len,
                 std::uint64_t wr_id);

  /// Two-sided send; data is read from local memory [local_addr, +len).
  void post_send(Qp& qp, std::uint64_t local_addr, std::uint64_t len,
                 std::uint64_t wr_id,
                 std::optional<std::uint32_t> imm = std::nullopt);

  /// One-sided write to peer memory.
  void post_write(Qp& qp, std::uint64_t local_addr, std::uint64_t len,
                  std::uint64_t remote_addr, std::uint64_t wr_id,
                  std::optional<std::uint32_t> imm = std::nullopt);

  /// One-sided read of peer memory into local memory.
  void post_read(Qp& qp, std::uint64_t remote_addr, std::uint64_t len,
                 std::uint64_t local_addr, std::uint64_t wr_id);

  /// Sender-initiated WFlush (§4.1.1): asks the peer RNIC to persist
  /// [remote_addr, +len) and ACK. RC only.
  void post_wflush(Qp& qp, std::uint64_t remote_addr, std::uint64_t len,
                   std::uint64_t wr_id);

  /// Sender-initiated SFlush (§4.1.1): asks the peer RNIC to resolve
  /// the landing address of the QP's most recent send and persist it
  /// into PM at `pm_dest_addr` (the redo-log slot). RC only.
  void post_sflush(Qp& qp, std::uint64_t pm_dest_addr, std::uint64_t len,
                   std::uint64_t wr_id);

  // ---- local persistence engine (used by RFlush emulation, §4.1.2) ----

  /// Invokes `on_done(t)` at the simulated time t when every byte of
  /// [addr, +len) is in the persist domain: waits for in-flight DMA
  /// over the range, then writes back any dirty LLC lines.
  void persist_range(std::uint64_t addr, std::uint64_t len,
                     DmaCallback on_done);

  /// §4.5 smartNIC RFlush: registers [addr, +len) in the NIC's lookup
  /// table. After each incoming RDMA write into the region completes
  /// its DMA, the NIC persists it and RDMA-writes a monotonically
  /// increasing persisted-entry counter to `notify_addr` at the peer
  /// of `qp` — with no receiver-CPU involvement. Requires
  /// params.smartnic_rflush.
  void configure_auto_persist(Qp& qp, std::uint64_t addr, std::uint64_t len,
                              std::uint64_t notify_addr,
                              std::uint64_t initial_counter = 0);

  /// Drops all smartNIC auto-persist configurations (crash).
  void clear_auto_persist() { auto_persist_.clear(); }

  // ---- failure model ----

  /// Power failure: drops SRAM contents, in-flight DMA, backlogged
  /// packets and QP state; detaches from the fabric.
  void crash();

  /// Restart after a crash: re-attaches to the fabric with empty
  /// state. QPs must be re-created by the application layer.
  void restart();

  /// Drops every buffered packet (unacked windows, out-of-order and
  /// RNR queues) without any other state change. Cluster teardown
  /// calls this on every node before any node is destroyed: buffered
  /// packets hold PayloadRefs into their *sender's* buffer pool, so a
  /// lossy run that ends with parked duplicates must release them
  /// while all pools are still alive.
  void release_packet_buffers() {
    for (auto& [qpn, qp] : qps_) {
      qp->unacked.clear();
      qp->ooo.clear();
      qp->rnr_queue.clear();
    }
  }

  [[nodiscard]] bool alive() const { return alive_; }

  // ---- introspection / stats ----

  [[nodiscard]] std::uint64_t sram_used() const { return sram_used_; }
  [[nodiscard]] std::size_t pending_dma() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t bytes_lost_in_crashes() const {
    return bytes_lost_;
  }
  [[nodiscard]] std::uint64_t packets_received() const { return rx_packets_; }
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::uint64_t rnr_events() const { return rnr_events_; }
  [[nodiscard]] std::uint64_t flushes_executed() const { return flushes_; }

  /// Attaches a tracer: records SRAM occupancy samples, DMA drain
  /// spans and WFlush/SFlush/RFlush execution spans on track id().
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct PendingDma {
    std::uint64_t addr;
    std::uint64_t len;
    sim::SimTime done;
    /// Crash-tearing model: when power fails mid-transfer, the
    /// line-aligned prefix proportional to elapsed transfer time has
    /// physically reached the media (non-DDIO PM writes only; DDIO
    /// fills and DRAM are volatile and simply vanish).
    sim::SimTime begin = 0;
    net::PayloadRef payload = nullptr;
    bool ddio = false;
  };

  // -- receive path --
  void on_packet(net::Packet p);
  void dispatch(net::Packet p);
  void admit_data(net::Packet p);
  void process_admitted(net::Packet p);
  void deliver_send(Qp& qp, net::Packet p);
  void handle_read_req(net::Packet p);
  void handle_wflush(net::Packet p);
  void handle_sflush(net::Packet p);
  void handle_ack(const net::Packet& p);
  void release_sram(std::uint64_t bytes);
  void try_admit_backlog();

  // -- transmit path --
  /// Pushes a data packet through the TX pipeline (WQE fetch + PCIe
  /// data read), then onto the wire. Returns the wire-accepted time.
  sim::SimTime transmit_data(net::Packet p);
  /// RNIC-generated control packet (ACK, flush-ACK, read response).
  void transmit_control(net::Packet p);
  void arm_retransmit(std::uint32_t qpn, std::uint64_t seq);
  void arm_retransmit_after(std::uint32_t qpn, std::uint64_t seq,
                            sim::SimTime delay);
  /// The rearm delay after `timeouts` consecutive head-of-window
  /// timeout rounds: interval * backoff^timeouts, capped.
  [[nodiscard]] sim::SimTime backoff_delay(int timeouts) const;
  /// Bounded-retry escalation: puts `qp` in the error state, completes
  /// the head WR kRetryExceeded and flushes every later pending WR so
  /// upper layers (Completer::fail_pending via their CQ polling) see a
  /// clean failure instead of a hang.
  void fail_qp(Qp& qp);
  void complete_send_wr(Qp& qp, std::uint64_t seq, const net::Packet& ack);

  // -- DMA engine --
  void enqueue_dma_write(std::uint64_t addr, net::PayloadRef payload,
                         std::uint64_t len, bool ddio, DmaCallback on_done);
  [[nodiscard]] sim::SimTime drain_time(std::uint64_t addr,
                                        std::uint64_t len) const;
  void prune_pending();

  [[nodiscard]] bool is_rc(const Qp& qp) const {
    return qp.transport == Transport::kRC;
  }

  sim::Simulator& sim_;
  sim::Rng& rng_;
  net::Fabric& fabric_;
  mem::NodeMemory& mem_;
  net::NodeId id_;
  RnicParams params_;
  trace::Tracer* tracer_ = nullptr;

  /// Samples the SRAM gauge after every occupancy change.
  void trace_sram() {
    if (tracer_) {
      tracer_->counter(trace::Component::kRnicSram, sim_.now(), sram_used_,
                       static_cast<std::uint16_t>(id_));
    }
  }
  void trace_span(trace::Component c, std::uint64_t corr, sim::SimTime t0,
                  sim::SimTime t1) {
    if (tracer_) {
      tracer_->span(c, corr, t0, t1, static_cast<std::uint16_t>(id_));
    }
  }

  bool alive_ = true;
  std::uint64_t epoch_ = 0;  ///< bumped on crash; stale callbacks no-op

  std::uint32_t next_qpn_ = 1;
  std::map<std::uint32_t, std::unique_ptr<Qp>> qps_;

  std::uint64_t sram_used_ = 0;
  std::deque<net::Packet> backlog_;

  sim::SimTime tx_busy_until_ = 0;
  sim::SimTime dma_busy_until_ = 0;
  std::vector<PendingDma> pending_;

  struct AutoPersist {
    std::uint32_t qpn;
    std::uint64_t addr;
    std::uint64_t len;
    std::uint64_t notify_addr;
    std::uint64_t counter = 0;
  };
  std::vector<AutoPersist> auto_persist_;
  void maybe_auto_persist(std::uint64_t addr, std::uint64_t len);

  /// True when the op may proceed (permission granted or enforcement
  /// off); otherwise NAKs the packet back to its sender.
  bool check_access_or_nak(const net::Packet& p, Access need);

  MrTable mrs_;
  std::uint64_t bytes_lost_ = 0;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t rnr_events_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t access_violations_ = 0;

 public:
  [[nodiscard]] std::uint64_t access_violations() const {
    return access_violations_;
  }
};

}  // namespace prdma::rnic
