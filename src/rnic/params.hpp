#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace prdma::rnic {

/// RNIC hardware model parameters (defaults: ConnectX-4 class, PCIe
/// 3.0 x8; provenance table in DESIGN.md §5).
struct RnicParams {
  /// Volatile on-NIC packet buffer (the root cause of the paper's
  /// persistence problem, §2.4).
  std::uint64_t sram_capacity = 2ull << 20;  // 2 MiB

  sim::SimTime rx_process = 60;   ///< per-packet receive pipeline occupancy
  sim::SimTime tx_process = 60;   ///< per-packet transmit pipeline occupancy

  sim::SimTime pcie_setup = 450;       ///< DMA transaction setup
  double pcie_bw_bytes_per_s = 12.5e9; ///< PCIe 3.0 x8 effective

  /// DDIO: incoming DMA lands in the (volatile) LLC instead of the
  /// persist domain. Disabled by default, as in the paper's testbed.
  bool ddio = false;

  /// When true (default), Flush primitives charge the *emulation*
  /// costs of §4.1.3 (read-after-write for WFlush, +7 µs addressing
  /// for SFlush). When false, an idealised hardware implementation is
  /// modeled instead (ablation: bench/ablation_flush_hw).
  bool emulate_flush = true;

  sim::SimTime hw_flush_cost = 300;        ///< hardware flush execution
  sim::SimTime hw_addressing_cost = 500;   ///< smartNIC address lookup
  sim::SimTime sflush_addressing = 7000;   ///< emulated addressing (§4.1.3)

  /// RC reliability (paper §5.4 uses 100 ms). A retransmission timeout
  /// of the oldest unacked packet replays the whole unacked window in
  /// sequence order (go-back-N; PayloadRef replays stay zero-copy) and
  /// rearms with exponential backoff: interval * backoff^(round-1),
  /// capped at retransmit_cap. backoff = 1.0 reproduces the paper's
  /// fixed timer. After max_retransmits consecutive timeouts of the
  /// same head-of-window packet the QP enters the error state: the
  /// head WR completes kRetryExceeded, every later pending WR flushes,
  /// and subsequent posts fail immediately (the Completer turns those
  /// into failed RPCs instead of a hang).
  sim::SimTime retransmit_interval = 100 * sim::kMillisecond;
  double retransmit_backoff = 2.0;
  sim::SimTime retransmit_cap = 1600 * sim::kMillisecond;
  int max_retransmits = 50;

  /// UD maximum transmission unit (FaSST constraint, §5.1).
  std::uint64_t ud_mtu = 4096;

  /// Enforce memory-region protection on incoming one-sided ops
  /// (register_mr + rkey semantics). Off by default: the paper's
  /// protocols pre-arrange their regions; tests enable it to pin the
  /// NAK/error paths.
  bool enforce_mr = false;

  /// FAULT-INJECTION MUTANT (off in every real configuration): the
  /// RNIC acknowledges a WFlush immediately on receipt, *before* the
  /// covered data drained out of its volatile buffers into the persist
  /// domain — exactly the ack-vs-durability window broken remote-
  /// persistence implementations exhibit. Exists so the durability
  /// oracle (src/check/) can prove it detects the bug class.
  bool ack_before_persist = false;

  /// §4.5 smartNIC mode: the RNIC itself issues receiver-initiated
  /// RFlushes for configured regions (lookup-table driven) and
  /// notifies the sender — zero receiver-CPU involvement. Off by
  /// default (the paper emulates RFlush with the receiver CPU).
  bool smartnic_rflush = false;
};

}  // namespace prdma::rnic
