#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "rpcs/registry.hpp"
#include "sim/rng.hpp"

namespace prdma::graph {

/// The three datasets of §5.1. The real graphs (law.di.unimi.it) are
/// not redistributable here; we substitute synthetic power-law graphs
/// with the paper's node/edge counts — PageRank's RPC traffic depends
/// on graph size and degree distribution, not on the specific edges
/// (substitution table in DESIGN.md §1).
struct GraphSpec {
  std::string_view name;
  std::uint32_t nodes;
  std::uint64_t edges;
};

inline constexpr GraphSpec kWordAssociation{"wordassociation-2011", 10'000,
                                            72'000};
inline constexpr GraphSpec kEnron{"enron", 69'000, 276'000};
inline constexpr GraphSpec kDblp{"dblp-2010", 326'000, 1'615'000};

/// CSR graph with a power-law-ish out-degree distribution produced by
/// preferential attachment over a fixed edge budget.
class SyntheticGraph {
 public:
  SyntheticGraph(const GraphSpec& spec, std::uint64_t seed);

  [[nodiscard]] std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(offsets_.size() - 1);
  }
  [[nodiscard]] std::uint64_t edge_count() const { return targets_.size(); }

  [[nodiscard]] std::uint32_t out_degree(std::uint32_t u) const {
    return static_cast<std::uint32_t>(offsets_[u + 1] - offsets_[u]);
  }
  [[nodiscard]] const std::uint32_t* neighbors(std::uint32_t u) const {
    return targets_.data() + offsets_[u];
  }

  /// Serialized CSR size in bytes (what the remote PM stores).
  [[nodiscard]] std::uint64_t csr_bytes() const {
    return offsets_.size() * 8 + targets_.size() * 4;
  }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<std::uint32_t> targets_;
};

/// PageRank-over-RPC configuration (§5.3): the graph lives in the
/// remote server's PM; the client fetches CSR pages via RPC reads each
/// iteration and keeps ranks in its local memory.
struct PageRankConfig {
  std::uint32_t iterations = 10;
  double damping = 0.85;
  std::uint32_t page_bytes = 16 * 1024;  ///< CSR fetch granularity
  std::uint64_t seed = 1;
  /// Client-side compute charged per edge per iteration (the paper
  /// calls PageRank compute-intensive).
  sim::SimTime ns_per_edge = 3;
  /// Fabric shape (default point-to-point; --topology).
  net::TopologyConfig topology;
};

struct PageRankResult {
  sim::SimTime duration = 0;
  std::uint64_t rpcs = 0;
  std::uint32_t iterations = 0;
  double rank_sum = 1.0;     ///< invariant: sums to ~1 (validation)
  double top_rank = 0.0;
};

/// Runs PageRank on `spec` with graph data served through `system`.
PageRankResult run_pagerank(rpcs::System system, const GraphSpec& spec,
                            const PageRankConfig& cfg);

}  // namespace prdma::graph
