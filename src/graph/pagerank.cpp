#include "graph/pagerank.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "bench_util/micro.hpp"
#include "sim/task.hpp"

namespace prdma::graph {

using core::RpcOp;
using core::RpcRequest;
using sim::Task;

SyntheticGraph::SyntheticGraph(const GraphSpec& spec, std::uint64_t seed) {
  sim::Rng rng(seed);
  const std::uint32_t n = spec.nodes;
  // Preferential attachment: draw each edge target either uniformly or
  // from the tail of already-used targets, yielding a heavy-tailed
  // in-degree distribution like the paper's web/citation graphs.
  std::vector<std::vector<std::uint32_t>> adj(n);
  std::vector<std::uint32_t> pool;
  pool.reserve(spec.edges);
  for (std::uint64_t e = 0; e < spec.edges; ++e) {
    const auto src = static_cast<std::uint32_t>(rng.uniform(0, n - 1));
    std::uint32_t dst;
    if (!pool.empty() && rng.bernoulli(0.6)) {
      dst = pool[rng.uniform(0, pool.size() - 1)];
    } else {
      dst = static_cast<std::uint32_t>(rng.uniform(0, n - 1));
    }
    adj[src].push_back(dst);
    pool.push_back(dst);
  }
  offsets_.resize(n + 1, 0);
  targets_.reserve(spec.edges);
  for (std::uint32_t u = 0; u < n; ++u) {
    offsets_[u] = targets_.size();
    targets_.insert(targets_.end(), adj[u].begin(), adj[u].end());
  }
  offsets_[n] = targets_.size();
}

PageRankResult run_pagerank(rpcs::System system, const GraphSpec& spec,
                            const PageRankConfig& cfg) {
  const SyntheticGraph graph(spec, cfg.seed);

  // The server's PM stores the CSR image; the client fetches it in
  // pages. Model the remote store as page-sized objects.
  const std::uint64_t pages =
      (graph.csr_bytes() + cfg.page_bytes - 1) / cfg.page_bytes;

  bench::MicroConfig mc;
  mc.objects = std::max<std::uint64_t>(pages, 64);
  mc.object_size = cfg.page_bytes;
  mc.seed = cfg.seed;
  mc.topology = cfg.topology;
  const core::ModelParams params = bench::params_for(mc);

  core::Cluster cluster(params, 2);
  const std::size_t clients[] = {1};
  auto dep = rpcs::make_deployment(cluster, system, 0, clients, params);

  PageRankResult result;

  auto driver = [](core::RpcClient& client, core::Node& client_node,
                   const SyntheticGraph& g, PageRankConfig config,
                   std::uint64_t page_count, PageRankResult& out) -> Task<> {
    const std::uint32_t n = g.node_count();
    std::vector<double> rank(n, 1.0 / n);
    std::vector<double> next(n, 0.0);

    for (std::uint32_t iter = 0; iter < config.iterations; ++iter) {
      // Fetch the CSR pages for this iteration from remote PM.
      for (std::uint64_t p = 0; p < page_count; ++p) {
        const auto r = co_await client.call(
            RpcRequest{RpcOp::kRead, p, config.page_bytes});
        if (r.ok) ++out.rpcs;
      }
      // Local compute over the (locally known) topology; the charged
      // time models the rank propagation pass.
      std::fill(next.begin(), next.end(), (1.0 - config.damping) / n);
      double dangling = 0.0;
      for (std::uint32_t u = 0; u < n; ++u) {
        const std::uint32_t deg = g.out_degree(u);
        if (deg == 0) {
          dangling += rank[u];
          continue;
        }
        const double share = config.damping * rank[u] / deg;
        const std::uint32_t* nbr = g.neighbors(u);
        for (std::uint32_t k = 0; k < deg; ++k) next[nbr[k]] += share;
      }
      const double redistribute = config.damping * dangling / n;
      for (std::uint32_t u = 0; u < n; ++u) next[u] += redistribute;
      rank.swap(next);

      co_await client_node.host().exec(config.ns_per_edge * g.edge_count());
      ++out.iterations;
    }
    out.rank_sum = std::accumulate(rank.begin(), rank.end(), 0.0);
    out.top_rank = *std::max_element(rank.begin(), rank.end());
    // Timestamp at completion: the simulator keeps running briefly to
    // drain armed (and long-acked) retransmission timers.
    out.duration = client_node.rnic().simulator().now();
  };

  sim::spawn(driver(*dep.clients[0], cluster.node(1), graph, cfg, pages,
                    result));
  cluster.sim().run();
  return result;
}

}  // namespace prdma::graph
