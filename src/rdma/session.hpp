#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>

#include "rdma/completer.hpp"
#include "rnic/rnic.hpp"
#include "sim/task.hpp"

namespace prdma::rdma {

/// Client-side convenience wrapper over one connected QP: every verb
/// becomes an awaitable that resolves with its work completion.
///
/// The QP's send CQ must be drained by the provided Completer (one
/// completer can serve several sessions sharing a CQ).
class QpSession {
 public:
  QpSession(rnic::Rnic& nic, rnic::Qp& qp, Completer& completer)
      : nic_(nic), qp_(qp), completer_(completer) {}

  [[nodiscard]] rnic::Qp& qp() { return qp_; }
  [[nodiscard]] rnic::Rnic& nic() { return nic_; }

  sim::Task<std::optional<rnic::Wc>> send(
      std::uint64_t local_addr, std::uint64_t len,
      std::optional<std::uint32_t> imm = std::nullopt) {
    const std::uint64_t wr = completer_.fresh_wr();
    nic_.post_send(qp_, local_addr, len, wr, imm);
    co_return co_await completer_.wait(wr);
  }

  sim::Task<std::optional<rnic::Wc>> write(
      std::uint64_t local_addr, std::uint64_t len, std::uint64_t remote_addr,
      std::optional<std::uint32_t> imm = std::nullopt) {
    const std::uint64_t wr = completer_.fresh_wr();
    nic_.post_write(qp_, local_addr, len, remote_addr, wr, imm);
    co_return co_await completer_.wait(wr);
  }

  sim::Task<std::optional<rnic::Wc>> read(std::uint64_t remote_addr,
                                          std::uint64_t len,
                                          std::uint64_t local_addr) {
    const std::uint64_t wr = completer_.fresh_wr();
    nic_.post_read(qp_, remote_addr, len, local_addr, wr);
    co_return co_await completer_.wait(wr);
  }

  sim::Task<std::optional<rnic::Wc>> wflush(std::uint64_t remote_addr,
                                            std::uint64_t len) {
    const std::uint64_t wr = completer_.fresh_wr();
    nic_.post_wflush(qp_, remote_addr, len, wr);
    co_return co_await completer_.wait(wr);
  }

  sim::Task<std::optional<rnic::Wc>> sflush(std::uint64_t pm_dest_addr,
                                            std::uint64_t len) {
    const std::uint64_t wr = completer_.fresh_wr();
    nic_.post_sflush(qp_, pm_dest_addr, len, wr);
    co_return co_await completer_.wait(wr);
  }

  /// Fire-and-forget post variants (completion intentionally ignored;
  /// used when a later flush or response subsumes the ACK).
  void post_write_nowait(std::uint64_t local_addr, std::uint64_t len,
                         std::uint64_t remote_addr,
                         std::optional<std::uint32_t> imm = std::nullopt) {
    nic_.post_write(qp_, local_addr, len, remote_addr, Completer::kSilentWr,
                    imm);
  }

  void post_send_nowait(std::uint64_t local_addr, std::uint64_t len,
                        std::optional<std::uint32_t> imm = std::nullopt) {
    nic_.post_send(qp_, local_addr, len, Completer::kSilentWr, imm);
  }

 private:
  rnic::Rnic& nic_;
  rnic::Qp& qp_;
  Completer& completer_;
};

/// Establishes a connected QP pair between two RNICs (the connection
/// manager handshake, instantaneous at setup time).
inline std::pair<rnic::Qp*, rnic::Qp*> connect_pair(
    rnic::Rnic& a, rnic::Transport ta, rnic::Cq& a_scq, rnic::Cq& a_rcq,
    rnic::Rnic& b, rnic::Transport tb, rnic::Cq& b_scq, rnic::Cq& b_rcq) {
  rnic::Qp& qa = a.create_qp(ta, a_scq, a_rcq);
  rnic::Qp& qb = b.create_qp(tb, b_scq, b_rcq);
  a.connect(qa, b.id(), qb.qpn);
  b.connect(qb, a.id(), qa.qpn);
  return {&qa, &qb};
}

}  // namespace prdma::rdma
