#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <utility>

#include "rdma/completer.hpp"
#include "rnic/rnic.hpp"
#include "sim/task.hpp"

namespace prdma::rdma {

/// Protocol phases a QpSession passes through; the crash-schedule
/// explorer (src/check/) records their timestamps to derive targeted
/// crash points ("just after the write posted, just before the flush
/// completed", ...).
enum class Phase : std::uint8_t {
  kWritePosted,
  kSendPosted,
  kReadPosted,
  kWFlushPosted,
  kSFlushPosted,
  kWriteDone,
  kSendDone,
  kReadDone,
  kFlushDone,
};

[[nodiscard]] constexpr const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kWritePosted: return "write-posted";
    case Phase::kSendPosted: return "send-posted";
    case Phase::kReadPosted: return "read-posted";
    case Phase::kWFlushPosted: return "wflush-posted";
    case Phase::kSFlushPosted: return "sflush-posted";
    case Phase::kWriteDone: return "write-done";
    case Phase::kSendDone: return "send-done";
    case Phase::kReadDone: return "read-done";
    case Phase::kFlushDone: return "flush-done";
  }
  return "?";
}

/// Client-side convenience wrapper over one connected QP: every verb
/// becomes an awaitable that resolves with its work completion.
///
/// The QP's send CQ must be drained by the provided Completer (one
/// completer can serve several sessions sharing a CQ).
class QpSession {
 public:
  using TraceFn = std::function<void(Phase)>;

  QpSession(rnic::Rnic& nic, rnic::Qp& qp, Completer& completer)
      : nic_(nic), qp_(qp), completer_(completer) {}

  [[nodiscard]] rnic::Qp& qp() { return qp_; }
  [[nodiscard]] rnic::Rnic& nic() { return nic_; }

  /// Installs (or clears, with nullptr) the phase trace hook. The
  /// callback runs at the simulated instant of the transition; read
  /// nic().simulator().now() for the timestamp.
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  sim::Task<std::optional<rnic::Wc>> send(
      std::uint64_t local_addr, std::uint64_t len,
      std::optional<std::uint32_t> imm = std::nullopt) {
    const std::uint64_t wr = completer_.fresh_wr();
    trace(Phase::kSendPosted);
    nic_.post_send(qp_, local_addr, len, wr, imm);
    auto wc = co_await completer_.wait(wr);
    trace(Phase::kSendDone);
    co_return wc;
  }

  sim::Task<std::optional<rnic::Wc>> write(
      std::uint64_t local_addr, std::uint64_t len, std::uint64_t remote_addr,
      std::optional<std::uint32_t> imm = std::nullopt) {
    const std::uint64_t wr = completer_.fresh_wr();
    trace(Phase::kWritePosted);
    nic_.post_write(qp_, local_addr, len, remote_addr, wr, imm);
    auto wc = co_await completer_.wait(wr);
    trace(Phase::kWriteDone);
    co_return wc;
  }

  sim::Task<std::optional<rnic::Wc>> read(std::uint64_t remote_addr,
                                          std::uint64_t len,
                                          std::uint64_t local_addr) {
    const std::uint64_t wr = completer_.fresh_wr();
    trace(Phase::kReadPosted);
    nic_.post_read(qp_, remote_addr, len, local_addr, wr);
    auto wc = co_await completer_.wait(wr);
    trace(Phase::kReadDone);
    co_return wc;
  }

  sim::Task<std::optional<rnic::Wc>> wflush(std::uint64_t remote_addr,
                                            std::uint64_t len) {
    const std::uint64_t wr = completer_.fresh_wr();
    trace(Phase::kWFlushPosted);
    nic_.post_wflush(qp_, remote_addr, len, wr);
    auto wc = co_await completer_.wait(wr);
    trace(Phase::kFlushDone);
    co_return wc;
  }

  sim::Task<std::optional<rnic::Wc>> sflush(std::uint64_t pm_dest_addr,
                                            std::uint64_t len) {
    const std::uint64_t wr = completer_.fresh_wr();
    trace(Phase::kSFlushPosted);
    nic_.post_sflush(qp_, pm_dest_addr, len, wr);
    auto wc = co_await completer_.wait(wr);
    trace(Phase::kFlushDone);
    co_return wc;
  }

  /// Fire-and-forget post variants (completion intentionally ignored;
  /// used when a later flush or response subsumes the ACK).
  void post_write_nowait(std::uint64_t local_addr, std::uint64_t len,
                         std::uint64_t remote_addr,
                         std::optional<std::uint32_t> imm = std::nullopt) {
    trace(Phase::kWritePosted);
    nic_.post_write(qp_, local_addr, len, remote_addr, Completer::kSilentWr,
                    imm);
  }

  void post_send_nowait(std::uint64_t local_addr, std::uint64_t len,
                        std::optional<std::uint32_t> imm = std::nullopt) {
    trace(Phase::kSendPosted);
    nic_.post_send(qp_, local_addr, len, Completer::kSilentWr, imm);
  }

 private:
  void trace(Phase p) {
    if (trace_) trace_(p);
  }

  rnic::Rnic& nic_;
  rnic::Qp& qp_;
  Completer& completer_;
  TraceFn trace_;
};

/// Establishes a connected QP pair between two RNICs (the connection
/// manager handshake, instantaneous at setup time).
inline std::pair<rnic::Qp*, rnic::Qp*> connect_pair(
    rnic::Rnic& a, rnic::Transport ta, rnic::Cq& a_scq, rnic::Cq& a_rcq,
    rnic::Rnic& b, rnic::Transport tb, rnic::Cq& b_scq, rnic::Cq& b_rcq) {
  rnic::Qp& qa = a.create_qp(ta, a_scq, a_rcq);
  rnic::Qp& qb = b.create_qp(tb, b_scq, b_rcq);
  a.connect(qa, b.id(), qb.qpn);
  b.connect(qb, a.id(), qa.qpn);
  return {&qa, &qb};
}

}  // namespace prdma::rdma
