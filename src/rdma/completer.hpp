#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "rnic/completion.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace prdma::rdma {

/// Demultiplexes one completion queue into per-work-request futures.
///
/// Protocol coroutines post several outstanding verbs on one QP and
/// await each completion by wr_id; a single dispatcher task drains the
/// CQ channel and resolves the matching waiter (or stashes the WC if
/// the waiter has not arrived yet).
///
/// Lifetime: the dispatcher coroutine co-owns the internal state via a
/// shared_ptr, so a Completer can be destroyed (e.g. replaced during
/// crash recovery) while its dispatcher is still parked on the CQ
/// channel — the dispatcher observes the stop flag on its next wake
/// and winds down without touching freed memory.
class Completer {
 public:
  Completer(sim::Simulator& sim, rnic::Cq& cq)
      : state_(std::make_shared<State>(sim, cq)) {
    sim::spawn(run(state_));
  }

  Completer(const Completer&) = delete;
  Completer& operator=(const Completer&) = delete;

  ~Completer() {
    state_->stopped = true;
    abort_waiters(*state_);
  }

  /// Resolves with the completion for `wr_id`. Each wr_id must be
  /// awaited at most once. Returns std::nullopt if the CQ was torn
  /// down (crash) before the completion arrived.
  sim::Task<std::optional<rnic::Wc>> wait(std::uint64_t wr_id) {
    // Keep the state alive for the whole await, even if the Completer
    // object itself is destroyed mid-flight (crash recovery).
    const std::shared_ptr<State> st = state_;
    if (const auto it = st->ready.find(wr_id); it != st->ready.end()) {
      const rnic::Wc wc = it->second;
      st->ready.erase(it);
      co_return wc;
    }
    if (st->stopped) co_return std::nullopt;
    Waiter w{sim::Event(st->sim), {}};
    st->waiters.emplace(wr_id, &w);
    const bool ok = co_await w.event.wait();
    st->waiters.erase(wr_id);
    if (!ok || !w.result.has_value()) co_return std::nullopt;
    co_return w.result;
  }

  /// Crash path: fail every currently-parked waiter immediately. A CQ
  /// reset alone can be swallowed when a completion is already in
  /// flight to the dispatcher (the channel wake for that completion
  /// races the reset), leaving waiters parked forever; callers tearing
  /// down an endpoint pair the reset with this.
  void fail_pending() { abort_waiters(*state_); }

  /// Allocates a fresh work-request id.
  std::uint64_t fresh_wr() { return state_->next_wr++; }

  /// First wr id a future fresh_wr() would hand out.
  [[nodiscard]] std::uint64_t next_wr() const { return state_->next_wr; }

  /// Recovery: a successor completer must never reuse a predecessor's
  /// wr ids — a stale completion that raced the teardown would match a
  /// fresh post and acknowledge it without any wire round-trip.
  void advance_wr(std::uint64_t floor) {
    if (state_->next_wr < floor) state_->next_wr = floor;
  }

  /// wr_id for fire-and-forget posts: the dispatcher discards its
  /// completion instead of stashing it forever.
  static constexpr std::uint64_t kSilentWr = 0;

 private:
  struct Waiter {
    sim::Event event;
    std::optional<rnic::Wc> result;
  };

  struct State {
    State(sim::Simulator& s, rnic::Cq& q) : sim(s), cq(q) {}
    sim::Simulator& sim;
    rnic::Cq& cq;
    bool stopped = false;
    std::uint64_t next_wr = 1;
    std::map<std::uint64_t, rnic::Wc> ready;
    std::map<std::uint64_t, Waiter*> waiters;
  };

  static void abort_waiters(State& st) {
    // Waiters erase themselves on resume; iterate over a snapshot.
    std::map<std::uint64_t, Waiter*> pending;
    pending.swap(st.waiters);
    for (auto& [id, w] : pending) w->event.abort();
  }

  static sim::Task<> run(std::shared_ptr<State> st) {
    for (;;) {
      auto wc = co_await st->cq.channel().recv();
      if (st->stopped) {
        // Owner replaced this completer (crash recovery). A value we
        // were woken with belongs to the successor — hand it back.
        if (wc.has_value()) st->cq.channel().send(*wc);
        co_return;
      }
      if (!wc.has_value()) break;  // CQ closed or crash-reset
      if (wc->wr_id == kSilentWr) continue;  // fire-and-forget post
      if (const auto it = st->waiters.find(wc->wr_id);
          it != st->waiters.end()) {
        it->second->result = *wc;
        it->second->event.set();
        st->waiters.erase(it);
      } else {
        st->ready.emplace(wc->wr_id, *wc);
      }
    }
    // Wake any remaining waiters with "no completion".
    abort_waiters(*st);
  }

  std::shared_ptr<State> state_;
};

}  // namespace prdma::rdma
