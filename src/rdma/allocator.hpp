#pragma once

#include <cstdint>
#include <stdexcept>

namespace prdma::rdma {

/// Bump allocator carving registered regions out of a node's PM or
/// DRAM window (the moral equivalent of ibv_reg_mr over a DAX mapping).
class RegionAllocator {
 public:
  RegionAllocator(std::uint64_t base, std::uint64_t size)
      : base_(base), end_(base + size), cursor_(base) {}

  /// Allocates `len` bytes aligned to `align` (power of two).
  std::uint64_t alloc(std::uint64_t len, std::uint64_t align = 64) {
    std::uint64_t a = (cursor_ + align - 1) & ~(align - 1);
    if (a + len > end_) {
      throw std::runtime_error("RegionAllocator: out of space");
    }
    cursor_ = a + len;
    return a;
  }

  [[nodiscard]] std::uint64_t remaining() const { return end_ - cursor_; }
  [[nodiscard]] std::uint64_t base() const { return base_; }
  [[nodiscard]] std::uint64_t end() const { return end_; }

 private:
  std::uint64_t base_;
  std::uint64_t end_;
  std::uint64_t cursor_;
};

}  // namespace prdma::rdma
