#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "trace/tracer.hpp"

namespace prdma::host {

/// Software-path cost model of one server/client host (provenance for
/// the defaults in DESIGN.md §5).
struct HostParams {
  unsigned cores = 4;                 ///< cores available to RPC workers
  sim::SimTime post_cost = 300;       ///< posting one verb (WQE + doorbell)
  sim::SimTime poll_cost = 250;       ///< detecting work by polling
  sim::SimTime recv_handler_cost = 1600;  ///< two-sided recv dispatch path
  sim::SimTime handler_cost = 1200;   ///< one-sided request parse/bookkeeping
  sim::SimTime dispatch_cost = 3'000;  ///< handing a logged RPC to a worker
                                       ///< thread (§4.2 "a thread is created")
  double memcpy_bw_bytes_per_s = 12e9;    ///< CPU copy bandwidth
  double jitter_sigma = 0.12;             ///< lognormal tail on software paths
};

/// CPU model: a pool of cores plus a background-load multiplier.
///
/// set_load(l) models the paper's "busy" sender/receiver experiments
/// (Figs. 15/16): a compute-intensive background program inflates
/// every software path by (1 + l) and adds scheduling jitter.
class Host {
 public:
  Host(sim::Simulator& sim, sim::Rng& rng, HostParams params)
      : sim_(sim), rng_(rng), params_(params), cores_(sim, params.cores) {}

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] const HostParams& params() const { return params_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] sim::Semaphore& cores() { return cores_; }

  void set_load(double load) { load_ = load < 0.0 ? 0.0 : load; }
  [[nodiscard]] double load() const { return load_; }

  /// Attaches a tracer: every exec/sleep charge becomes a span of
  /// `role` on track `track` (run_micro marks client hosts kSenderSw).
  void set_tracer(trace::Tracer* tracer, trace::Component role,
                  std::uint16_t track) {
    tracer_ = tracer;
    trace_role_ = role;
    trace_track_ = track;
  }

  /// A software path of base cost `c`, inflated by background load and
  /// given a latency tail.
  [[nodiscard]] sim::SimTime scaled(sim::SimTime c) {
    const double mult = (1.0 + load_) * rng_.lognormal_jitter(params_.jitter_sigma);
    return static_cast<sim::SimTime>(static_cast<double>(c) * mult);
  }

  /// Occupies one core for the scaled cost (queues if all cores busy).
  sim::Task<> exec(sim::SimTime base_cost) {
    co_await cores_.acquire();
    sim::SemaphoreGuard guard(cores_);
    const sim::SimTime c = scaled(base_cost);
    charged_ += c;
    if (tracer_) {
      tracer_->span(trace_role_, 0, sim_.now(), sim_.now() + c, trace_track_);
    }
    co_await sim::delay(sim_, c);
  }

  /// Time passes but no core is consumed (e.g. waiting on a doorbell
  /// that another model component accounts for).
  sim::Task<> sleep(sim::SimTime base_cost) {
    const sim::SimTime c = scaled(base_cost);
    charged_ += c;
    if (tracer_) {
      tracer_->span(trace_role_, 0, sim_.now(), sim_.now() + c, trace_track_);
    }
    co_await sim::delay(sim_, c);
  }

  /// Total software time charged on this host (Fig. 20 accounting).
  [[nodiscard]] std::uint64_t charged_ns() const { return charged_; }

  /// CPU memcpy of `bytes` (core-occupying).
  sim::Task<> memcpy_exec(std::uint64_t bytes) {
    co_await exec(sim::transfer_time(bytes, params_.memcpy_bw_bytes_per_s));
  }

  [[nodiscard]] sim::SimTime memcpy_cost(std::uint64_t bytes) const {
    return sim::transfer_time(bytes, params_.memcpy_bw_bytes_per_s);
  }

  // Convenience costed paths used by every protocol implementation.
  sim::Task<> charge_post() { co_await exec(params_.post_cost); }
  sim::Task<> charge_poll() { co_await exec(params_.poll_cost); }
  sim::Task<> charge_recv_handler() { co_await exec(params_.recv_handler_cost); }

 private:
  sim::Simulator& sim_;
  sim::Rng& rng_;
  HostParams params_;
  sim::Semaphore cores_;
  double load_ = 0.0;
  std::uint64_t charged_ = 0;
  trace::Tracer* tracer_ = nullptr;
  trace::Component trace_role_ = trace::Component::kHostSw;
  std::uint16_t trace_track_ = 0;
};

}  // namespace prdma::host
