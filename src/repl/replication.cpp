#include "repl/replication.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "sim/task.hpp"
#include "trace/tracer.hpp"

namespace prdma::repl {

using core::RpcOp;
using core::RpcRequest;
using core::RpcResult;
using sim::SimTime;
using sim::Task;

std::string_view protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kNone: return "none";
    case Protocol::kChain: return "chain";
    case Protocol::kMirror: return "mirror";
  }
  return "?";
}

std::optional<Protocol> protocol_from_name(std::string_view s) {
  if (s == "none") return Protocol::kNone;
  if (s == "chain") return Protocol::kChain;
  if (s == "mirror") return Protocol::kMirror;
  return std::nullopt;
}

// ===================================================================
// ReplicaSet
// ===================================================================

ReplicaSet::ReplicaSet(core::Cluster& cluster, core::FlushVariant v,
                       const ReplicationConfig& cfg,
                       const core::ModelParams& params)
    : cluster_(cluster), variant_(v), cfg_(cfg) {
  if (!cfg_.active()) {
    throw std::invalid_argument("ReplicaSet requires chain or mirror");
  }
  if (cfg_.replicas < 2) {
    throw std::invalid_argument("replication needs at least 2 replicas");
  }
  if (cfg_.replicas >= cluster_.size()) {
    throw std::invalid_argument(
        "cluster too small: need one node per replica plus the client(s)");
  }
  name_ = std::string(protocol_name(cfg_.protocol)) + "/" +
          std::string(core::variant_name(v));
  for (std::size_t r = 0; r < cfg_.replicas; ++r) {
    servers_.push_back(
        std::make_unique<core::DurableRpcServer>(cluster_, r, v, params));
    up_.push_back(std::make_unique<sim::Event>(cluster_.sim_of(r)));
    up_.back()->set();
    server_up_.push_back(true);
    node_alive_.push_back(true);
    down_epoch_.push_back(0);
    watermark_at_crash_.emplace_back();
  }
}

ReplicaSet::~ReplicaSet() = default;

void ReplicaSet::start() {
  for (auto& s : servers_) s->start();
  started_ = true;
}

std::unique_ptr<ReplicatedClient> ReplicaSet::connect_client(
    std::size_t app_idx) {
  assert(!started_ && "connect clients before start()");
  if (app_idx < cfg_.replicas) {
    throw std::invalid_argument("client node collides with a replica node");
  }
  auto client =
      std::unique_ptr<ReplicatedClient>(new ReplicatedClient(*this, app_idx));
  clients_.push_back(client.get());
  return client;
}

std::uint64_t ReplicaSet::watermark_at_crash(std::size_t r,
                                             std::size_t conn) const {
  const auto& marks = watermark_at_crash_.at(r);
  return conn < marks.size() ? marks[conn] : 0;
}

void ReplicaSet::add_crash_observer(std::function<void(std::size_t)> fn) {
  crash_observers_.push_back(std::move(fn));
}

void ReplicaSet::add_recovery_observer(std::function<void(std::size_t)> fn) {
  recovery_observers_.push_back(std::move(fn));
}

void ReplicaSet::crash_replica(std::size_t r, SimTime restart_delay) {
  assert(r < servers_.size());
  assert(restart_delay > 0 && "a crashed replica must come back");
  if (cluster_.node(r).mem().content_mode() == mem::ContentMode::kShadow) {
    // Same contract as Node::attach_crash_hook: post-crash media state
    // is only byte-exact with full content.
    throw std::logic_error(
        "crash hooks require ContentMode::kFull (run with "
        "--content-mode=full)");
  }
  const std::uint64_t my_epoch = ++down_epoch_[r];
  server_up_[r] = false;
  up_[r]->reset();
  servers_[r]->on_crash();
  if (node_alive_[r]) {
    cluster_.node(r).crash();  // in-flight DMA lands torn on r's PM
    node_alive_[r] = false;
  }
  for (ReplicatedClient* c : clients_) c->on_replica_crash(r);
  // Media snapshot after the hardware settled: exactly the entries r's
  // recovery will replay. Monotone across crashes, so a retry loop can
  // trust a snapshot taken at any earlier crash of r.
  auto& marks = watermark_at_crash_[r];
  if (marks.size() < clients_.size()) marks.resize(clients_.size(), 0);
  for (std::size_t conn = 0; conn < clients_.size(); ++conn) {
    marks[conn] = servers_[r]->durable_watermark(conn);
  }
  ++crashes_;
  for (auto& fn : crash_observers_) fn(r);
  cluster_.sim_of(r).schedule(restart_delay, [this, r, my_epoch] {
    sim::spawn(recover_replica(r, my_epoch));
  });
}

Task<> ReplicaSet::recover_replica(std::size_t r, std::uint64_t my_epoch) {
  if (down_epoch_[r] != my_epoch) co_return;  // superseded by a later crash
  cluster_.node(r).restart();
  node_alive_[r] = true;
  co_await servers_[r]->recover_and_restart();
  if (down_epoch_[r] != my_epoch) co_return;  // crashed again mid-replay
  server_up_[r] = true;
  // Reconnect hops BEFORE waking waiters: a woken retry must never see
  // an aborted endpoint while the replica claims to be up.
  for (ReplicatedClient* c : clients_) c->repair_hops();
  for (auto& fn : recovery_observers_) fn(r);
  up_[r]->set();
}

// ===================================================================
// ReplicatedClient
// ===================================================================

ReplicatedClient::ReplicatedClient(ReplicaSet& set, std::size_t app_idx)
    : set_(set), app_idx_(app_idx), conn_idx_(set.clients_.size()) {
  name_ = std::string(set_.name()) + "-client";
  const std::size_t replicas = set_.cfg_.replicas;
  for (std::size_t r = 0; r < replicas; ++r) {
    // Chain forwards store-and-forward style: hop r>=1 is issued from
    // replica r-1's node. Mirror fans every hop out from the app node.
    const std::size_t host =
        (set_.cfg_.protocol == Protocol::kChain && r > 0) ? r - 1 : app_idx_;
    hops_.push_back(set_.servers_[r]->connect_client(host));
    hop_host_.push_back(host);
    hop_dirty_.push_back(false);
    assert(hops_.back()->conn_index() == conn_idx_);
  }
}

Task<RpcResult> ReplicatedClient::call(const RpcRequest& req) {
  if (req.op == RpcOp::kRead) co_return co_await read_head(req);
  co_return co_await write_txn(req);
}

void ReplicatedClient::abort_pending() {
  for (auto& h : hops_) h->abort_pending();
}

Task<RpcResult> ReplicatedClient::read_head(RpcRequest req) {
  for (;;) {
    RpcResult r = co_await hops_[0]->call(req);
    if (r.ok) co_return r;
    co_await wait_hop_usable(0);
    ++resends_;  // reads are idempotent: always re-issue
  }
}

Task<RpcResult> ReplicatedClient::write_txn(RpcRequest req) {
  auto& sim = set_.cluster_.sim_of(app_idx_);
  trace::Tracer& tracer = set_.cluster_.tracer_of(app_idx_);
  const std::size_t replicas = hops_.size();

  const std::uint64_t txn = next_txn_++;
  TxnRecord& rec = txns_[txn];
  rec.txn = txn;
  rec.payload_len = req.len;
  rec.seq_on.assign(replicas, 0);

  RpcResult res;
  res.issued_at = sim.now();
  res.tag = txn;

  const bool mutant = set_.cfg_.ack_before_replica_persist;
  if (set_.cfg_.protocol == Protocol::kChain) {
    for (std::size_t h = 0; h < replicas; ++h) {
      const SimTime f0 = sim.now();
      const RpcResult hop = co_await hop_write(h, req);
      rec.seq_on[h] = hop.tag;
      if (h > 0) {
        tracer.span(trace::Component::kReplForward, txn, f0, sim.now(),
                    track_of(hop_host_[h]));
      }
      if (mutant && h == 0) {
        sim::spawn(chain_tail(req, txn));
        break;
      }
    }
    if (!mutant) {
      // Ack travels back from the tail as a small control message.
      const SimTime a0 = sim.now();
      co_await sim::delay(sim, set_.cluster_.params().link.propagation);
      tracer.span(trace::Component::kReplAck, txn, a0, sim.now(),
                  track_of(app_idx_));
    } else {
      tracer.span(trace::Component::kReplAck, txn, sim.now(), sim.now(),
                  track_of(app_idx_));
    }
  } else {  // kMirror
    if (mutant) {
      const RpcResult head = co_await hop_write(0, req);
      rec.seq_on[0] = head.tag;
      for (std::size_t h = 1; h < replicas; ++h) {
        sim::spawn(mirror_tail(h, req, txn));
      }
    } else {
      sim::WaitGroup wg(sim);
      wg.add(replicas);
      for (std::size_t h = 0; h < replicas; ++h) {
        sim::spawn(mirror_hop(h, req, txn, wg));
      }
      co_await wg.wait();
    }
    // Persist-ACKs already arrived at the app node; no extra wire hop.
    tracer.span(trace::Component::kReplAck, txn, sim.now(), sim.now(),
                track_of(app_idx_));
  }

  res.ok = true;
  res.durable_at = sim.now();
  res.completed_at = sim.now();
  rec.acked = true;
  rec.acked_at = sim.now();
  ++acked_;
  if (txn_ack_hook_) txn_ack_hook_(rec);
  co_return res;
}

Task<> ReplicatedClient::mirror_hop(std::size_t h, RpcRequest req,
                                    std::uint64_t txn, sim::WaitGroup& wg) {
  const SimTime f0 = set_.cluster_.sim_of(hop_host_[h]).now();
  const RpcResult r = co_await hop_write(h, req);
  txns_[txn].seq_on[h] = r.tag;
  if (h > 0) {
    set_.cluster_.tracer_of(hop_host_[h])
        .span(trace::Component::kReplForward, txn, f0,
              set_.cluster_.sim_of(hop_host_[h]).now(),
              track_of(hop_host_[h]));
  }
  wg.done();
}

Task<> ReplicatedClient::chain_tail(RpcRequest req, std::uint64_t txn) {
  for (std::size_t h = 1; h < hops_.size(); ++h) {
    const SimTime f0 = set_.cluster_.sim_of(hop_host_[h]).now();
    const RpcResult r = co_await hop_write(h, req);
    txns_[txn].seq_on[h] = r.tag;
    set_.cluster_.tracer_of(hop_host_[h])
        .span(trace::Component::kReplForward, txn, f0,
              set_.cluster_.sim_of(hop_host_[h]).now(),
              track_of(hop_host_[h]));
  }
}

Task<> ReplicatedClient::mirror_tail(std::size_t h, RpcRequest req,
                                     std::uint64_t txn) {
  const SimTime f0 = set_.cluster_.sim_of(hop_host_[h]).now();
  const RpcResult r = co_await hop_write(h, req);
  txns_[txn].seq_on[h] = r.tag;
  set_.cluster_.tracer_of(hop_host_[h])
      .span(trace::Component::kReplForward, txn, f0,
            set_.cluster_.sim_of(hop_host_[h]).now(),
            track_of(hop_host_[h]));
}

Task<RpcResult> ReplicatedClient::hop_write(std::size_t h, RpcRequest req) {
  for (;;) {
    RpcResult r = co_await hops_[h]->call(req);
    if (r.ok) co_return r;
    co_await wait_hop_usable(h);
    if (r.tag != 0 && r.tag <= set_.watermark_at_crash(h, conn_idx_)) {
      // On the replica's media before the lights went out: recovery
      // replayed it, nothing to re-send (§4.2).
      r.ok = true;
      r.durable_at = set_.cluster_.sim_of(hop_host_[h]).now();
      r.completed_at = r.durable_at;
      co_return r;
    }
    ++resends_;
  }
}

Task<> ReplicatedClient::wait_hop_usable(std::size_t h) {
  // Both endpoints of the hop must be alive: the target replica and —
  // for chain's forwarded hops — the replica node issuing it. Loop:
  // while we wait for one, the other may go down.
  for (;;) {
    if (!set_.is_up(h)) {
      (void)co_await set_.up_event(h).wait();
      continue;
    }
    const std::size_t host = hop_host_[h];
    if (host < set_.replica_count() && !set_.is_up(host)) {
      (void)co_await set_.up_event(host).wait();
      continue;
    }
    co_return;
  }
}

void ReplicatedClient::on_replica_crash(std::size_t r) {
  for (std::size_t h = 0; h < hops_.size(); ++h) {
    if (h == r || hop_host_[h] == r) {
      hops_[h]->abort_pending();
      hop_dirty_[h] = true;
    }
  }
}

void ReplicatedClient::repair_hops() {
  for (std::size_t h = 0; h < hops_.size(); ++h) {
    if (!hop_dirty_[h]) continue;
    if (!set_.is_up(h)) continue;  // target still down
    const std::size_t host = hop_host_[h];
    if (host < set_.replica_count() && !set_.is_up(host)) continue;
    set_.server(h).reconnect_client(*hops_[h]);
    hop_dirty_[h] = false;
  }
}

// ===================================================================

core::RpcDeployment make_replicated_deployment(
    core::Cluster& cluster, core::FlushVariant v, const ReplicationConfig& cfg,
    std::span<const std::size_t> client_nodes,
    const core::ModelParams& params) {
  core::RpcDeployment d;
  auto set = std::make_unique<ReplicaSet>(cluster, v, cfg, params);
  for (const std::size_t idx : client_nodes) {
    d.clients.push_back(set->connect_client(idx));
  }
  set->start();
  d.server = std::move(set);
  return d;
}

}  // namespace prdma::repl
