#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/durable_rpc.hpp"
#include "core/node.hpp"
#include "core/params.hpp"
#include "core/rpc.hpp"
#include "sim/sync.hpp"

namespace prdma::repl {

/// Multi-replica durability protocols layered over the durable RPCs.
///
/// Both protocols ship every redo-log transaction to R replicas, each
/// of which is a full DurableRpcServer (own PM log ring, own recovery
/// path). The durable-RPC variant — WFlush / SFlush / W-RFlush /
/// S-RFlush — is the per-hop persistence primitive; the protocol
/// decides hop ordering and when the application ACK fires:
///
///  * kChain — chain replication in the style of FaRM/CR: the entry is
///    persisted on the head, then forwarded hop by hop down the chain
///    (each forward re-issues the durable RPC from the previous
///    replica's node), and the ACK travels back once the tail is
///    durable. Latency grows with R; each link moves the payload once.
///  * kMirror — synchronous mirroring (Tavakkol et al.): the client
///    issues all R durable RPCs in parallel from its own node and ACKs
///    at the latest persist-ACK. Latency ~ the slowest single replica.
enum class Protocol : std::uint8_t {
  kNone,    ///< no replication: plain single-primary durable RPC
  kChain,
  kMirror,
};

[[nodiscard]] std::string_view protocol_name(Protocol p);
[[nodiscard]] std::optional<Protocol> protocol_from_name(std::string_view s);

struct ReplicationConfig {
  Protocol protocol = Protocol::kNone;
  std::size_t replicas = 2;  ///< replica count R (nodes [0, R))
  /// FAULT-INJECTION MUTANT: acknowledge the transaction as soon as
  /// the HEAD replica persisted it and complete the remaining hops in
  /// the background — the classic "local durability equals cluster
  /// durability" bug. A crash of the head inside the forwarding window
  /// then loses an acked transaction cluster-wide; the replicated
  /// oracle must catch it.
  bool ack_before_replica_persist = false;

  [[nodiscard]] bool active() const { return protocol != Protocol::kNone; }
};

class ReplicatedClient;

/// Server side of a replicated deployment: R DurableRpcServers on
/// nodes [0, R), plus per-replica crash/recovery orchestration. The
/// bench harnesses talk to it through the plain RpcServer interface
/// (stats() reports the head replica).
class ReplicaSet : public core::RpcServer {
 public:
  ReplicaSet(core::Cluster& cluster, core::FlushVariant v,
             const ReplicationConfig& cfg, const core::ModelParams& params);
  ~ReplicaSet() override;

  void start() override;
  [[nodiscard]] const core::ServerStats& stats() const override {
    return servers_.front()->stats();
  }
  [[nodiscard]] std::string_view name() const override { return name_; }

  /// Connects a replicated client on node `app_idx` (must not be a
  /// replica node). One durable-RPC connection per replica is opened;
  /// call before start(), like DurableRpcServer::connect_client.
  std::unique_ptr<ReplicatedClient> connect_client(std::size_t app_idx);

  [[nodiscard]] std::size_t replica_count() const { return servers_.size(); }
  [[nodiscard]] Protocol protocol() const { return cfg_.protocol; }
  [[nodiscard]] core::FlushVariant variant() const { return variant_; }
  [[nodiscard]] core::Cluster& cluster() { return cluster_; }
  [[nodiscard]] core::DurableRpcServer& server(std::size_t r) {
    return *servers_.at(r);
  }
  [[nodiscard]] const core::DurableRpcServer& server(std::size_t r) const {
    return *servers_.at(r);
  }

  // ---- per-replica fault injection ----

  /// Full power-failure sequence for replica `r` at the current
  /// instant: software teardown, node hardware loss (torn DMA lands on
  /// its PM), client hop aborts, and a scheduled recovery after
  /// `restart_delay` (> 0 — a dead replica always restarts, so every
  /// waiting coroutine eventually resumes). Crashing an already-down
  /// replica is allowed and restarts its recovery clock
  /// (crash-during-recovery schedules do exactly this). Refused in
  /// kShadow content mode, like Node::attach_crash_hook.
  void crash_replica(std::size_t r, sim::SimTime restart_delay);

  /// True once replica `r`'s server recovered and is serving again.
  [[nodiscard]] bool is_up(std::size_t r) const { return server_up_.at(r); }
  /// Set while replica `r` is up; clients wait on it before re-sending.
  [[nodiscard]] sim::Event& up_event(std::size_t r) { return *up_.at(r); }

  /// Media durable watermark of (replica r, connection conn) captured
  /// at r's most recent crash instant — exactly what r's recovery will
  /// replay. Monotone across repeated crashes of the same replica.
  [[nodiscard]] std::uint64_t watermark_at_crash(std::size_t r,
                                                 std::size_t conn) const;

  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }

  /// Observers fire synchronously inside crash_replica (after the
  /// node's hardware state settled) / at the end of a successful
  /// recovery, with the replica index. The cluster oracle audits here.
  void add_crash_observer(std::function<void(std::size_t)> fn);
  void add_recovery_observer(std::function<void(std::size_t)> fn);

 private:
  friend class ReplicatedClient;

  sim::Task<> recover_replica(std::size_t r, std::uint64_t my_epoch);

  core::Cluster& cluster_;
  core::FlushVariant variant_;
  ReplicationConfig cfg_;
  std::string name_;
  std::vector<std::unique_ptr<core::DurableRpcServer>> servers_;
  std::vector<std::unique_ptr<sim::Event>> up_;
  std::vector<bool> server_up_;   ///< server recovered (set before up_)
  std::vector<bool> node_alive_;  ///< hardware state (guards double crash)
  /// Bumped per crash of the replica; a scheduled recovery whose epoch
  /// is stale abandons — the superseding crash scheduled its own.
  std::vector<std::uint64_t> down_epoch_;
  std::vector<std::vector<std::uint64_t>> watermark_at_crash_;
  std::vector<ReplicatedClient*> clients_;
  std::vector<std::function<void(std::size_t)>> crash_observers_;
  std::vector<std::function<void(std::size_t)>> recovery_observers_;
  std::uint64_t crashes_ = 0;
  bool started_ = false;
};

/// One replicated transaction as the client tracked it. seq_on[r] is
/// the redo-log sequence the transaction got on replica r's connection
/// (0 while that hop is still in flight) — the join key between the
/// cluster-level ACK and each replica's media view.
struct TxnRecord {
  std::uint64_t txn = 0;
  std::uint32_t payload_len = 0;
  std::vector<std::uint64_t> seq_on;
  sim::SimTime acked_at = 0;
  bool acked = false;
};

/// Client half: owns one DurableRpcClient per replica ("hop").
///
/// Hop placement models where the protocol runs: mirror issues every
/// hop from the application's node; chain issues hop 0 from the
/// application and hop j>=1 from replica j-1's node (the forwarder),
/// so chain latency includes the store-and-forward path and a tail->
/// client ack propagation.
///
/// Writes self-heal across replica crashes: a failed hop waits for the
/// target (and, for chain, the forwarding host) to come back, then
/// either observes the entry in the crash-instant media watermark
/// (recovery replayed it) or re-sends. Reads go to the head replica.
class ReplicatedClient : public core::RpcClient {
 public:
  sim::Task<core::RpcResult> call(const core::RpcRequest& req) override;
  [[nodiscard]] std::string_view name() const override { return name_; }
  void abort_pending() override;

  /// The per-replica durable-RPC hop (per-replica oracles attach their
  /// persist-ACK hooks here).
  [[nodiscard]] core::DurableRpcClient& hop(std::size_t r) {
    return *hops_.at(r);
  }
  /// Node index the hop to replica `r` is issued from.
  [[nodiscard]] std::size_t hop_host(std::size_t r) const {
    return hop_host_.at(r);
  }
  [[nodiscard]] std::size_t conn_index() const { return conn_idx_; }

  /// Fires at the instant the replicated transaction is acknowledged
  /// to the application (all hops durable; head hop only under the
  /// ack_before_replica_persist mutant).
  using TxnAckHook = std::function<void(const TxnRecord&)>;
  void set_txn_ack_hook(TxnAckHook fn) { txn_ack_hook_ = std::move(fn); }

  [[nodiscard]] const std::map<std::uint64_t, TxnRecord>& txns() const {
    return txns_;
  }
  [[nodiscard]] std::uint64_t acked() const { return acked_; }
  [[nodiscard]] std::uint64_t resends() const { return resends_; }

 private:
  friend class ReplicaSet;
  ReplicatedClient(ReplicaSet& set, std::size_t app_idx);

  sim::Task<core::RpcResult> write_txn(core::RpcRequest req);
  sim::Task<core::RpcResult> read_head(core::RpcRequest req);
  /// One durable RPC to replica `h` with crash-healing retry.
  sim::Task<core::RpcResult> hop_write(std::size_t h, core::RpcRequest req);
  sim::Task<> mirror_hop(std::size_t h, core::RpcRequest req,
                         std::uint64_t txn, sim::WaitGroup& wg);
  /// Mutant background completions (detached; no stack references).
  sim::Task<> chain_tail(core::RpcRequest req, std::uint64_t txn);
  sim::Task<> mirror_tail(std::size_t h, core::RpcRequest req,
                          std::uint64_t txn);
  sim::Task<> wait_hop_usable(std::size_t h);
  void on_replica_crash(std::size_t r);
  void repair_hops();
  [[nodiscard]] std::uint16_t track_of(std::size_t node_idx) const {
    return static_cast<std::uint16_t>(node_idx);
  }

  ReplicaSet& set_;
  std::size_t app_idx_;
  std::size_t conn_idx_;
  std::string name_;
  std::vector<std::unique_ptr<core::DurableRpcClient>> hops_;
  std::vector<std::size_t> hop_host_;
  std::vector<bool> hop_dirty_;  ///< endpoint died; reconnect when possible
  std::uint64_t next_txn_ = 1;
  std::uint64_t acked_ = 0;
  std::uint64_t resends_ = 0;
  std::map<std::uint64_t, TxnRecord> txns_;
  TxnAckHook txn_ack_hook_;
};

/// Builds a started ReplicaSet deployment: replicas on nodes [0, R),
/// one ReplicatedClient per entry of `client_nodes` (each must be >= R).
core::RpcDeployment make_replicated_deployment(
    core::Cluster& cluster, core::FlushVariant v, const ReplicationConfig& cfg,
    std::span<const std::size_t> client_nodes, const core::ModelParams& params);

}  // namespace prdma::repl
