#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "mem/node_memory.hpp"

namespace prdma::core {

/// Little-endian encoder for building message/log-entry images, either
/// into an owned vector (size the reserve from the known layout at the
/// call site — the default only covers small control images) or into a
/// caller-provided fixed sink (e.g. a pooled payload block's data
/// area) with no heap traffic at all.
class ByteWriter {
 public:
  explicit ByteWriter(std::size_t reserve = 128) { buf_.reserve(reserve); }

  /// External-sink mode: writes land in `sink` and must fit.
  explicit ByteWriter(std::span<std::byte> sink)
      : sink_(sink.data()), sink_cap_(sink.size()) {}

  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void bytes(std::span<const std::byte> data) {
    raw(data.data(), data.size());
  }
  /// Zero padding up to absolute offset `off`.
  void pad_to(std::size_t off) {
    if (sink_ != nullptr) {
      assert(off <= sink_cap_);
      if (pos_ < off) {
        std::memset(sink_ + pos_, 0, off - pos_);
        pos_ = off;
      }
    } else if (buf_.size() < off) {
      buf_.resize(off, std::byte{0});
    }
  }

  [[nodiscard]] std::span<const std::byte> view() const {
    return sink_ != nullptr ? std::span<const std::byte>(sink_, pos_)
                            : std::span<const std::byte>(buf_);
  }
  [[nodiscard]] std::size_t size() const {
    return sink_ != nullptr ? pos_ : buf_.size();
  }
  /// Owned-vector mode only.
  std::vector<std::byte> take() {
    assert(sink_ == nullptr);
    return std::move(buf_);
  }

 private:
  void raw(const void* p, std::size_t n) {
    if (sink_ != nullptr) {
      assert(pos_ + n <= sink_cap_);
      std::memcpy(sink_ + pos_, p, n);
      pos_ += n;
      return;
    }
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::byte> buf_;
  std::byte* sink_ = nullptr;
  std::size_t sink_cap_ = 0;
  std::size_t pos_ = 0;
};

/// Little-endian decoder over a byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }
  std::span<const std::byte> bytes(std::size_t n) {
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  void skip_to(std::size_t off) { pos_ = off; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T read() {
    T v{};
    std::memcpy(&v, data_.data() + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Direct scalar accessors into simulated node memory (data plane).
inline std::uint64_t load_u64(const mem::NodeMemory& mem, std::uint64_t addr) {
  std::byte raw[8];
  mem.cpu_read(addr, raw);
  std::uint64_t v;
  std::memcpy(&v, raw, 8);
  return v;
}

inline void store_u64(mem::NodeMemory& mem, std::uint64_t addr,
                      std::uint64_t v) {
  std::byte raw[8];
  std::memcpy(raw, &v, 8);
  mem.cpu_write(addr, raw);
}

/// FNV-1a checksum used to validate redo-log entries during recovery
/// (detects torn writes where data landed but the entry is partial).
inline std::uint64_t fnv1a(std::span<const std::byte> data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace prdma::core
