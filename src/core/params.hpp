#pragma once

#include <cstdint>

#include "host/host.hpp"
#include "mem/node_memory.hpp"
#include "net/fabric.hpp"
#include "rnic/params.hpp"
#include "sim/time.hpp"

namespace prdma::core {

/// Everything the model is calibrated by, in one place (provenance for
/// each default in DESIGN.md §5). Benchmarks construct one of these,
/// tweak the knobs the experiment sweeps, and build a Cluster from it.
struct ModelParams {
  mem::NodeMemoryParams memory{};
  net::LinkParams link{};
  /// Fabric shape (DESIGN.md §7.6): point-to-point by default —
  /// byte-identical to the historical flat fabric — or a switched
  /// rack / leaf-spine preset built from `link` as the host cable.
  net::TopologyConfig topology{};
  /// Deterministic network-fault schedule (link flaps, switch crashes,
  /// partitions, loss bursts) installed into the fabric when non-empty
  /// (DESIGN.md §7.8). Fault state is a pure function of simulated
  /// time, so an active plan stays byte-identical at any engine thread
  /// count.
  net::FaultPlan faults{};
  rnic::RnicParams rnic{};
  host::HostParams host{};

  // ---- RPC-layer knobs (paper §5.1/§5.2) ----

  /// Injected per-request processing time at the receiver; 100 µs for
  /// the paper's "heavy load" micro-benchmarks, 0 for "light load".
  sim::SimTime rpc_processing = 0;

  /// Worker threads processing RPCs at the server.
  unsigned server_workers = 2;

  /// Redo-log ring slots per connection (also the durable RPCs'
  /// pipelining window; §4.2 flow control).
  std::uint32_t log_slots = 32;

  /// Outstanding-unprocessed threshold before the sender throttles
  /// (§4.2). Effective window = min(log_slots, flow_threshold).
  std::uint32_t flow_threshold = 16;

  /// Largest object the micro-benchmarks move (sizes the log slots,
  /// message buffers and object-store slots).
  std::uint64_t max_payload = 64 * 1024;

  /// Objects in the server's store (paper §5.1: 50 K). Benchmarks with
  /// large objects reduce this to fit the modeled PM window; the
  /// zipfian access pattern is unaffected in any measurable way.
  std::uint64_t object_count = 50'000;

  /// ScaleRPC interleaves one warm-up phase per this many process
  /// phases (§5.1).
  std::uint32_t scalerpc_process_per_warmup = 100;

  /// LITE is kernel-level (§3): extra syscall/trap cost on both sides.
  sim::SimTime lite_kernel_cost = 1500;

  /// Seed for the simulation's RNG (benchmark flag --seed).
  std::uint64_t seed = 1;
};

/// Paper §5.2 "heavy load": RPCs emulate real request processing by an
/// injected 100 µs of work, as in DaRPC.
inline ModelParams heavy_load_params() {
  ModelParams p;
  p.rpc_processing = 100 * sim::kMicrosecond;
  return p;
}

/// Paper §5.2 "light load": RPCs only perform the read/write itself.
inline ModelParams light_load_params() { return ModelParams{}; }

}  // namespace prdma::core
