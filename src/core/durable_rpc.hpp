#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string_view>
#include <utility>
#include <vector>

#include "core/node.hpp"
#include "core/object_store.hpp"
#include "core/params.hpp"
#include "core/redo_log.hpp"
#include "core/rpc.hpp"
#include "rdma/completer.hpp"
#include "rdma/session.hpp"
#include "sim/sync.hpp"

namespace prdma::core {

/// The four durable RPC designs of §4 (Fig. 4).
enum class FlushVariant : std::uint8_t {
  kWFlush,   ///< RDMA write + sender-initiated WFlush
  kSFlush,   ///< RDMA send + sender-initiated SFlush
  kWRFlush,  ///< RDMA write + receiver-initiated RFlush
  kSRFlush,  ///< RDMA send + receiver-initiated RFlush
};

[[nodiscard]] constexpr bool is_send_based(FlushVariant v) {
  return v == FlushVariant::kSFlush || v == FlushVariant::kSRFlush;
}
[[nodiscard]] constexpr bool is_receiver_initiated(FlushVariant v) {
  return v == FlushVariant::kWRFlush || v == FlushVariant::kSRFlush;
}
[[nodiscard]] std::string_view variant_name(FlushVariant v);

class DurableRpcServer;

/// Client half of a durable RPC connection.
///
/// Write path: stage a redo-log entry image, ship it (write+WFlush /
/// send+SFlush / write-or-send + receiver RFlush notification), and
/// complete as soon as remote persistence is visible — *before* the
/// server has processed the request (§4.2). Reads queue through the
/// same log for FIFO ordering and complete when the response lands.
class DurableRpcClient : public RpcClient {
 public:
  sim::Task<RpcResult> call(const RpcRequest& req) override;
  sim::Task<RpcResult> call_batch(const std::vector<RpcRequest>& reqs) override;
  [[nodiscard]] std::string_view name() const override;

  /// Sequence of the next entry this client will emit.
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

  /// Which server-side connection this client is (index into the
  /// server's redo logs).
  [[nodiscard]] std::size_t conn_index() const { return conn_idx_; }

  /// The client's verbs session (the durability oracle installs phase
  /// traces here to derive targeted crash timestamps).
  [[nodiscard]] rdma::QpSession* session() { return session_.get(); }

  /// Persist-ACK hook: fires at the simulated instant this client
  /// observes remote persistence for write `seq` (the moment it would
  /// report durability to its application). Payload bytes are the
  /// deterministic pattern for `seq`, so (seq, payload_len) fully
  /// determines the acknowledged content.
  using AckHook = std::function<void(std::uint64_t seq,
                                     std::uint32_t payload_len)>;
  void set_ack_hook(AckHook fn) { ack_hook_ = std::move(fn); }

  /// Highest sequence the server has acknowledged as persisted/consumed
  /// (from the notify words mirrored into client memory).
  [[nodiscard]] std::uint64_t consumed_seen() const;

  /// Fault support: wake every pending call with a failure result
  /// (server died; the fault harness decides what to re-send).
  void abort_pending() override;

 private:
  friend class DurableRpcServer;
  DurableRpcClient(DurableRpcServer& server, Node& node, std::size_t conn_idx);

  sim::Task<RpcResult> transmit_entry(RpcOp op, std::uint64_t obj_id,
                                      std::uint32_t len, std::uint32_t batch);
  sim::Task<> credit_pump();

  DurableRpcServer& server_;
  Node& node_;
  std::size_t conn_idx_;

  rnic::Cq scq_;
  rnic::Cq rcq_;  // unused (no recvs needed) but QPs require one
  std::unique_ptr<rdma::Completer> completer_;
  std::unique_ptr<rdma::QpSession> session_;

  sim::Semaphore window_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t credits_released_ = 0;

  // client DRAM regions
  std::uint64_t staging_base_ = 0;   ///< ring of entry images
  std::uint64_t notify_base_ = 0;    ///< [0,8) consumed, [8,16) persisted
  std::uint64_t resp_base_ = 0;      ///< response ring (reads)

  std::uint32_t window_size_ = 0;
  std::uint64_t staging_slot_bytes_ = 0;
  std::uint64_t resp_slot_bytes_ = 0;
  bool aborted_ = false;
  AckHook ack_hook_;
};

/// Server half: per-connection redo logs in PM, arrival pumps
/// (ring-polling for write-based variants, recv completions for
/// send-based ones), the RFlush persist+notify path, a shared worker
/// pool that processes log entries asynchronously, and the redo-log
/// recovery path (§4.2, Fig. 5).
class DurableRpcServer : public RpcServer {
 public:
  DurableRpcServer(Cluster& cluster, std::size_t server_idx, FlushVariant v,
                   const ModelParams& params);
  ~DurableRpcServer() override;

  /// Connects a client on node `client_idx`; allocates its log ring,
  /// message buffers and notify/response regions.
  std::unique_ptr<DurableRpcClient> connect_client(std::size_t client_idx);

  void start() override;
  [[nodiscard]] const ServerStats& stats() const override { return stats_; }
  [[nodiscard]] std::string_view name() const override {
    return variant_name(variant_);
  }

  [[nodiscard]] FlushVariant variant() const { return variant_; }
  [[nodiscard]] ObjectStore& store() { return *store_; }
  [[nodiscard]] Node& node() { return server_; }
  [[nodiscard]] std::uint64_t backlog() const;

  // ---- fault-injection interface (Fig. 12 experiments) ----

  /// Software teardown after the node crashed: stops pumps/workers.
  void on_crash() override;

  /// After Node::restart(): replays committed-but-unconsumed log
  /// entries (without any client involvement), rebuilds QPs and
  /// arrival pumps, and resumes. Resolves when recovery is complete.
  sim::Task<> recover_and_restart() override;

  /// Re-wires a client to the server's post-restart QP endpoint.
  void reconnect_client(DurableRpcClient& client);
  void reconnect_client(RpcClient& client) override {
    reconnect_client(dynamic_cast<DurableRpcClient&>(client));
  }

  /// Highest entry sequence of connection `conn_idx` that is durable in
  /// the log (used by clients to decide what needs re-sending). Media
  /// view — never counts bytes stuck in volatile caches or NIC SRAM.
  [[nodiscard]] std::uint64_t durable_watermark(std::size_t conn_idx) const;

  /// Read-only view of connection `conn_idx`'s redo log (oracle use).
  [[nodiscard]] const RedoLog& log(std::size_t conn_idx) const {
    return conns_.at(conn_idx)->log;
  }

  /// Replay hook: fires for every log entry recovery is about to
  /// re-execute (before its side effects are applied).
  using ReplayHook =
      std::function<void(std::size_t conn_idx, const LogEntryView& e)>;
  void set_replay_hook(ReplayHook fn) { replay_hook_ = std::move(fn); }

 private:
  friend class DurableRpcClient;

  struct Conn {
    std::size_t idx = 0;
    Node* client = nullptr;
    rnic::Qp* qp = nullptr;  // server-side endpoint
    std::unique_ptr<rnic::Cq> scq;
    std::unique_ptr<rnic::Cq> rcq;
    std::unique_ptr<rdma::Completer> completer;
    std::unique_ptr<rdma::QpSession> session;
    RedoLog log;
    std::uint64_t msg_base = 0;   ///< DRAM recv ring (send-based variants)
    std::uint32_t msg_slots = 0;
    std::uint64_t stage_addr = 0; ///< server staging (notify words, responses)
    std::uint64_t next_seq = 1;   ///< next entry expected from this client
    std::unique_ptr<sim::Channel<std::uint64_t>> arrivals;
    mem::NodeMemory::WatchId watch = 0;
    std::uint64_t backlog = 0;
    // out-of-order completion tracking for the consumed watermark
    std::uint64_t completed_floor = 0;
    std::set<std::uint64_t> completed_oo;
    // client-side addresses (client DRAM)
    std::uint64_t notify_consumed_addr = 0;
    std::uint64_t notify_persist_addr = 0;
    std::uint64_t resp_base = 0;

    Conn(Node& server_node, LogLayout layout) : log(server_node, layout) {}
  };

  struct WorkItem {
    Conn* conn;
    LogEntryView entry;
    bool recovered = false;
    /// Fast-path read answered inline by the poller (no worker spawn).
    bool fast = false;
  };

  void install_ring_watch(Conn& conn);
  sim::Task<> conn_loop_write_based(Conn& conn);
  sim::Task<> conn_loop_send_based(Conn& conn);
  sim::Task<> worker_loop();
  sim::Task<> process_item(WorkItem item);
  sim::Task<> advance_consumed(Conn& conn, std::uint64_t seq);
  void notify_word(Conn& conn, std::uint64_t client_addr, std::uint64_t value);
  sim::Task<> persist_slot(Conn& conn, const LogEntryView& e);

  /// Trace track (Chrome "tid") of the server node.
  [[nodiscard]] std::uint16_t trace_track() const {
    return static_cast<std::uint16_t>(server_.id());
  }

  Cluster& cluster_;
  Node& server_;
  FlushVariant variant_;
  ModelParams params_;
  std::uint32_t window_;
  std::unique_ptr<ObjectStore> store_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::unique_ptr<sim::Channel<WorkItem>> work_q_;
  ServerStats stats_;
  ReplayHook replay_hook_;
  bool running_ = false;
  /// Bumped on every crash; coroutines resumed across the boundary
  /// observe the mismatch and abandon their work (zombie guard).
  std::uint64_t epoch_ = 0;
};

}  // namespace prdma::core
