#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/params.hpp"
#include "host/host.hpp"
#include "mem/node_memory.hpp"
#include "net/fabric.hpp"
#include "rdma/allocator.hpp"
#include "rnic/rnic.hpp"
#include "sim/partitioned_engine.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "trace/tracer.hpp"

namespace prdma::core {

/// One machine: memory system (PM + DRAM + LLC), RNIC, CPU model and
/// region allocators. Composition root for the substrates.
class Node {
 public:
  Node(sim::Simulator& sim, sim::Rng& rng, net::Fabric& fabric,
       net::NodeId id, const ModelParams& params, bool partitioned = false)
      : id_(id),
        partitioned_(partitioned),
        sim_(sim),
        rng_(rng.fork()),
        mem_(sim, params.memory),
        rnic_(sim, rng_, fabric, mem_, id, params.rnic),
        host_(sim, rng_, params.host),
        pm_alloc_(0, params.memory.pm_capacity),
        dram_alloc_(mem::NodeMemory::kDramBase, params.memory.dram_capacity) {}

  ~Node() { detach_crash_hook(); }

  [[nodiscard]] net::NodeId id() const { return id_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] mem::NodeMemory& mem() { return mem_; }
  [[nodiscard]] rnic::Rnic& rnic() { return rnic_; }
  [[nodiscard]] host::Host& host() { return host_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] rdma::RegionAllocator& pm_alloc() { return pm_alloc_; }
  [[nodiscard]] rdma::RegionAllocator& dram_alloc() { return dram_alloc_; }

  /// Power failure of this machine. Crash listeners run first (software
  /// teardown — an RPC server stopping its pumps), then the hardware
  /// loses its volatile state: in-flight DMA lands torn, SRAM, dirty
  /// LLC lines and DRAM vanish, PM survives.
  void crash() {
    for (const auto& listener : crash_listeners_) listener();
    rnic_.crash();
    mem_.crash();
  }

  /// Power-up after a crash; PM contents are intact, everything
  /// volatile is gone. The application layer re-creates QPs and runs
  /// recovery from the redo log.
  void restart() { rnic_.restart(); }

  // ---- crash-hook interface (crash-schedule exploration) ----

  /// Registers software that must be torn down when this node loses
  /// power; invoked (registration order) at the start of crash().
  void add_crash_listener(std::function<void()> fn) {
    crash_listeners_.push_back(std::move(fn));
  }

  void clear_crash_listeners() { crash_listeners_.clear(); }

  /// Wires this node to the simulator's crash-hook registry: every
  /// Simulator::trigger_crash() now power-fails this node. Idempotent.
  /// Refused in kShadow content mode: crash fidelity (torn entries,
  /// post-crash byte checks) requires the full content plane.
  void attach_crash_hook() {
    if (crash_hook_ != 0) return;
    if (mem_.content_mode() == mem::ContentMode::kShadow) {
      throw std::logic_error(
          "crash hooks require ContentMode::kFull (run with "
          "--content-mode=full)");
    }
    if (partitioned_) {
      // Crash coherence rule (DESIGN.md §7.5): a power failure tears
      // down software on *other* nodes' partitions mid-epoch, which a
      // conservative engine cannot order. Exploration pins one thread.
      throw std::logic_error(
          "crash hooks require a single-partition engine (run with "
          "--engine-threads 1)");
    }
    crash_hook_ = sim_.add_crash_hook([this] { crash(); });
  }

  void detach_crash_hook() {
    if (crash_hook_ == 0) return;
    sim_.remove_crash_hook(crash_hook_);
    crash_hook_ = 0;
  }

  /// Schedules a power failure of this node at absolute simulated time
  /// `t` — any nanosecond, including mid-RDMA-write or mid-persist.
  void schedule_crash_at(sim::SimTime t) {
    attach_crash_hook();
    sim_.schedule_crash_at(t);
  }

 private:
  net::NodeId id_;
  bool partitioned_;
  sim::Simulator& sim_;
  sim::Rng rng_;
  mem::NodeMemory mem_;
  rnic::Rnic rnic_;
  host::Host host_;
  rdma::RegionAllocator pm_alloc_;
  rdma::RegionAllocator dram_alloc_;
  std::vector<std::function<void()>> crash_listeners_;
  sim::Simulator::CrashHookId crash_hook_ = 0;
};

/// A simulated testbed: event engine + fabric + N nodes, built from one
/// ModelParams. Node 0 is conventionally the server in point-to-point
/// experiments.
///
/// The engine always owns the Simulator shards. With the default
/// EngineConfig (1 thread) there is exactly one shard and every byte of
/// behaviour matches the historical single-Simulator cluster; with more
/// threads each node gets its own partition, its own tracer shard and
/// its own fabric RNG streams, and run() drives the conservative
/// epoch loop (DESIGN.md §7.5).
class Cluster {
 public:
  /// Resolves an EngineConfig against the declared topology before the
  /// engine is built (member-init order: engine_ precedes fabric_):
  /// kAuto promotes to kPerRack whenever the worker count and the
  /// fabric allow it (threads > 1, switched preset, >= 2 racks), and a
  /// kPerRack request with no explicit map derives one from the
  /// topology's rack striping (net::rack_partition_map) — each ToR and
  /// its hosts share a partition; spines follow their deterministic
  /// owner host (Topology::switch_owner).
  [[nodiscard]] static sim::EngineConfig resolve_engine_config(
      const ModelParams& params, std::size_t node_count,
      sim::EngineConfig engine) {
    using Partitioning = sim::EngineConfig::Partitioning;
    if (engine.partitioning == Partitioning::kAuto && engine.threads > 1 &&
        params.topology.switched() &&
        net::rack_count(params.topology, node_count) >= 2) {
      engine.partitioning = Partitioning::kPerRack;
    }
    if (engine.partitioning == Partitioning::kPerRack &&
        engine.partition_map.empty()) {
      const std::vector<std::uint32_t> racks =
          net::rack_partition_map(params.topology, node_count);
      engine.partition_map.assign(racks.begin(), racks.end());
    }
    return engine;
  }

  explicit Cluster(const ModelParams& params, std::size_t node_count = 2,
                   sim::EngineConfig engine = {})
      : params_(params),
        engine_(node_count,
                resolve_engine_config(params, node_count, std::move(engine))),
        rng_(params.seed),
        fabric_(engine_.shard(0), rng_, params.link) {
    fabric_.bind_engine(&engine_, params.seed);
    // After bind_engine (ports inherit partitions + the link seed),
    // before any node registers. Point-to-point is a no-op beyond
    // storing the config, keeping the flat fabric byte-identical.
    fabric_.set_topology(params.topology, node_count);
    if (!params.faults.empty()) fabric_.set_fault_plan(params.faults);
    fabric_.set_tracer(&tracer_);
    const std::size_t parts = engine_.partitions();
    for (std::size_t p = 1; p < parts; ++p) {
      shard_tracers_.push_back(std::make_unique<trace::Tracer>());
    }
    nodes_.reserve(node_count);
    for (std::size_t i = 0; i < node_count; ++i) {
      trace::Tracer& t = tracer_of(i);
      nodes_.push_back(std::make_unique<Node>(
          engine_.shard_of_node(i), rng_, fabric_,
          static_cast<net::NodeId>(i), params_, parts > 1));
      nodes_.back()->rnic().set_tracer(&t);
      nodes_.back()->host().set_tracer(&t, trace::Component::kHostSw,
                                       static_cast<std::uint16_t>(i));
      nodes_.back()->mem().pool().set_tracer(&t,
                                             static_cast<std::uint16_t>(i));
      fabric_.set_node_tracer(static_cast<net::NodeId>(i), &t);
    }
    for (std::size_t p = 0; p < parts; ++p) {
      std::vector<Node*> owned;
      for (const auto& n : nodes_) {
        if (engine_.partition_of_node(n->id()) == p) owned.push_back(n.get());
      }
      engine_.set_epoch_hook(p, [owned = std::move(owned)] {
        for (Node* n : owned) n->mem().pool().drain_remote_frees();
      });
    }
  }

  /// Buffered packets (ooo / RNR / unacked windows) hold PayloadRefs
  /// into their sender's pool; release them all before the first node
  /// (and its pool) goes away — a lossy run can end with duplicates
  /// still parked in another node's reorder buffer.
  ~Cluster() {
    for (auto& n : nodes_) {
      if (n) n->rnic().release_packet_buffers();
    }
  }

  /// The single Simulator of a serial cluster. Throws on a
  /// multi-partition engine — serial-only harnesses (crash explorers,
  /// fault experiments) fail fast instead of scheduling on the wrong
  /// shard; partition-aware code uses sim_of().
  [[nodiscard]] sim::Simulator& sim() {
    if (engine_.partitions() > 1) {
      throw std::logic_error(
          "Cluster::sim() is ambiguous with a multi-partition engine; "
          "use sim_of(node) or run with --engine-threads 1");
    }
    return engine_.shard(0);
  }
  /// The Simulator shard node `i`'s events run on.
  [[nodiscard]] sim::Simulator& sim_of(std::size_t i) {
    return engine_.shard_of_node(i);
  }
  [[nodiscard]] sim::PartitionedEngine& engine() { return engine_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] net::Fabric& fabric() { return fabric_; }

  /// The cluster's deterministic tracer (mode kOff until enabled; the
  /// instrumented layers then record into it with zero timing impact).
  /// After a multi-partition run() the per-shard totals have been
  /// merged in here; read aggregates from this one only.
  [[nodiscard]] trace::Tracer& tracer() { return tracer_; }
  /// The tracer shard node `i`'s layers record into (== tracer() for
  /// partition 0 and for every serial cluster).
  [[nodiscard]] trace::Tracer& tracer_of(std::size_t i) {
    const std::size_t p = engine_.partition_of_node(i);
    return p == 0 ? tracer_ : *shard_tracers_[p - 1];
  }

  /// Enables tracing on the main tracer and every shard tracer. kFull
  /// (per-event ring) is confined to single-partition engines.
  void enable_tracing(trace::Mode mode,
                      std::size_t capacity = trace::Tracer::kDefaultCapacity) {
    if (mode == trace::Mode::kFull && engine_.partitions() > 1) {
      throw std::logic_error(
          "kFull tracing (event ring) requires --engine-threads 1");
    }
    trace_capacity_ = capacity;
    tracer_.enable(mode, capacity);
    for (auto& t : shard_tracers_) t->enable(mode, capacity);
  }

  /// Runs the engine to completion: derives the conservative lookahead
  /// from the fabric, drives the epoch loop (or the plain serial run),
  /// then folds shard tracer totals into tracer().
  void run() {
    if (engine_.partitions() > 1) {
      // Lookahead from the cables that can actually cross a partition
      // boundary: under per-rack partitioning only the trunks do, so L
      // grows with the inter-rack propagation instead of being pinned
      // to the shortest intra-rack cable (DESIGN.md §7.7). Falls back
      // to the global minimum when nothing is known to cross.
      sim::SimTime min_prop = fabric_.min_cross_partition_propagation();
      if (min_prop == std::numeric_limits<sim::SimTime>::max()) {
        min_prop = fabric_.min_propagation();
      }
      if (min_prop < 2) {
        throw std::logic_error(
            "multi-partition run requires link propagation >= 2 ns "
            "(lookahead is half the minimum propagation)");
      }
      engine_.set_lookahead(std::max<sim::SimTime>(1, min_prop / 2));
    }
    engine_.run();
    // Epoch/barrier telemetry: the epoch count is deterministic (a
    // pure function of the schedule); barrier wall-ns is host noise and
    // excluded from every model-identity comparison.
    tracer_.counter(trace::Component::kEngineEpochs, engine_.max_now(),
                    engine_.epochs(), 0);
    tracer_.counter(trace::Component::kEngineBarrierNs, engine_.max_now(),
                    engine_.barrier_wall_ns(), 0);
    for (auto& t : shard_tracers_) {
      if (!t->enabled()) continue;
      tracer_.merge_totals_from(*t);
      // Reset so a later run() does not double-count, keeping the
      // capacity requested by enable_tracing().
      t->enable(t->mode(), trace_capacity_);
    }
  }

  [[nodiscard]] std::uint64_t events_executed() const {
    return engine_.events_executed();
  }
  [[nodiscard]] std::uint64_t sim_pool_allocations() const {
    return engine_.pool_allocations();
  }

  [[nodiscard]] const ModelParams& params() const { return params_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Node& node(std::size_t i) { return *nodes_.at(i); }

 private:
  ModelParams params_;
  sim::PartitionedEngine engine_;
  sim::Rng rng_;
  trace::Tracer tracer_;  ///< before fabric_/nodes_: outlives its users
  /// Tracers of partitions 1..P-1 (partition 0 records into tracer_).
  std::vector<std::unique_ptr<trace::Tracer>> shard_tracers_;
  /// Ring capacity from the last enable_tracing(); shard tracers are
  /// re-enabled with it when run() resets their totals.
  std::size_t trace_capacity_ = trace::Tracer::kDefaultCapacity;
  net::Fabric fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace prdma::core
