#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/params.hpp"
#include "host/host.hpp"
#include "mem/node_memory.hpp"
#include "net/fabric.hpp"
#include "rdma/allocator.hpp"
#include "rnic/rnic.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "trace/tracer.hpp"

namespace prdma::core {

/// One machine: memory system (PM + DRAM + LLC), RNIC, CPU model and
/// region allocators. Composition root for the substrates.
class Node {
 public:
  Node(sim::Simulator& sim, sim::Rng& rng, net::Fabric& fabric,
       net::NodeId id, const ModelParams& params)
      : id_(id),
        sim_(sim),
        rng_(rng.fork()),
        mem_(sim, params.memory),
        rnic_(sim, rng_, fabric, mem_, id, params.rnic),
        host_(sim, rng_, params.host),
        pm_alloc_(0, params.memory.pm_capacity),
        dram_alloc_(mem::NodeMemory::kDramBase, params.memory.dram_capacity) {}

  ~Node() { detach_crash_hook(); }

  [[nodiscard]] net::NodeId id() const { return id_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] mem::NodeMemory& mem() { return mem_; }
  [[nodiscard]] rnic::Rnic& rnic() { return rnic_; }
  [[nodiscard]] host::Host& host() { return host_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] rdma::RegionAllocator& pm_alloc() { return pm_alloc_; }
  [[nodiscard]] rdma::RegionAllocator& dram_alloc() { return dram_alloc_; }

  /// Power failure of this machine. Crash listeners run first (software
  /// teardown — an RPC server stopping its pumps), then the hardware
  /// loses its volatile state: in-flight DMA lands torn, SRAM, dirty
  /// LLC lines and DRAM vanish, PM survives.
  void crash() {
    for (const auto& listener : crash_listeners_) listener();
    rnic_.crash();
    mem_.crash();
  }

  /// Power-up after a crash; PM contents are intact, everything
  /// volatile is gone. The application layer re-creates QPs and runs
  /// recovery from the redo log.
  void restart() { rnic_.restart(); }

  // ---- crash-hook interface (crash-schedule exploration) ----

  /// Registers software that must be torn down when this node loses
  /// power; invoked (registration order) at the start of crash().
  void add_crash_listener(std::function<void()> fn) {
    crash_listeners_.push_back(std::move(fn));
  }

  void clear_crash_listeners() { crash_listeners_.clear(); }

  /// Wires this node to the simulator's crash-hook registry: every
  /// Simulator::trigger_crash() now power-fails this node. Idempotent.
  /// Refused in kShadow content mode: crash fidelity (torn entries,
  /// post-crash byte checks) requires the full content plane.
  void attach_crash_hook() {
    if (crash_hook_ != 0) return;
    if (mem_.content_mode() == mem::ContentMode::kShadow) {
      throw std::logic_error(
          "crash hooks require ContentMode::kFull (run with "
          "--content-mode=full)");
    }
    crash_hook_ = sim_.add_crash_hook([this] { crash(); });
  }

  void detach_crash_hook() {
    if (crash_hook_ == 0) return;
    sim_.remove_crash_hook(crash_hook_);
    crash_hook_ = 0;
  }

  /// Schedules a power failure of this node at absolute simulated time
  /// `t` — any nanosecond, including mid-RDMA-write or mid-persist.
  void schedule_crash_at(sim::SimTime t) {
    attach_crash_hook();
    sim_.schedule_crash_at(t);
  }

 private:
  net::NodeId id_;
  sim::Simulator& sim_;
  sim::Rng rng_;
  mem::NodeMemory mem_;
  rnic::Rnic rnic_;
  host::Host host_;
  rdma::RegionAllocator pm_alloc_;
  rdma::RegionAllocator dram_alloc_;
  std::vector<std::function<void()>> crash_listeners_;
  sim::Simulator::CrashHookId crash_hook_ = 0;
};

/// A simulated testbed: simulator + fabric + N nodes, built from one
/// ModelParams. Node 0 is conventionally the server in point-to-point
/// experiments.
class Cluster {
 public:
  explicit Cluster(const ModelParams& params, std::size_t node_count = 2)
      : params_(params), rng_(params.seed), fabric_(sim_, rng_, params.link) {
    fabric_.set_tracer(&tracer_);
    nodes_.reserve(node_count);
    for (std::size_t i = 0; i < node_count; ++i) {
      nodes_.push_back(std::make_unique<Node>(
          sim_, rng_, fabric_, static_cast<net::NodeId>(i), params_));
      nodes_.back()->rnic().set_tracer(&tracer_);
      nodes_.back()->host().set_tracer(&tracer_, trace::Component::kHostSw,
                                       static_cast<std::uint16_t>(i));
      nodes_.back()->mem().pool().set_tracer(&tracer_,
                                             static_cast<std::uint16_t>(i));
    }
  }

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] net::Fabric& fabric() { return fabric_; }

  /// The cluster's deterministic tracer (mode kOff until enabled; the
  /// instrumented layers then record into it with zero timing impact).
  [[nodiscard]] trace::Tracer& tracer() { return tracer_; }
  [[nodiscard]] const ModelParams& params() const { return params_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Node& node(std::size_t i) { return *nodes_.at(i); }

 private:
  ModelParams params_;
  sim::Simulator sim_;
  sim::Rng rng_;
  trace::Tracer tracer_;  ///< before fabric_/nodes_: outlives its users
  net::Fabric fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace prdma::core
