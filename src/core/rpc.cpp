#include "core/rpc.hpp"

#include "sim/sync.hpp"

namespace prdma::core {

sim::Task<> poll_until(Node& node, std::uint64_t addr, std::uint64_t len,
                       std::function<bool()> ready) {
  if (!ready()) {
    sim::Event ev(node.rnic().simulator());
    const auto watch = node.mem().add_watch(addr, len, [&ev, &ready] {
      if (ready()) ev.set();
    });
    co_await ev.wait();
    node.mem().remove_watch(watch);
  }
  co_await node.host().charge_poll();
}

}  // namespace prdma::core
