#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "core/node.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace prdma::core {

/// Operation kinds the micro-benchmarks issue (§5.1).
enum class RpcOp : std::uint32_t {
  kRead = 1,
  kWrite = 2,
};

/// One client request against the remote object store.
struct RpcRequest {
  RpcOp op = RpcOp::kWrite;
  std::uint64_t obj_id = 0;
  std::uint32_t len = 0;  ///< object bytes to move
};

/// Client-observed outcome of one RPC.
struct RpcResult {
  bool ok = false;
  sim::SimTime issued_at = 0;
  /// When remote persistence became visible to the sender (writes
  /// only; equals completed_at for traditional RPCs, earlier for the
  /// durable RPCs — the paper's headline mechanism).
  sim::SimTime durable_at = 0;
  sim::SimTime completed_at = 0;
  /// System-specific identifier of the request (the wire sequence
  /// number); lets fault harnesses match failed calls against the
  /// server's durable watermark.
  std::uint64_t tag = 0;

  [[nodiscard]] sim::SimTime latency() const { return completed_at - issued_at; }
};

/// Interface every RPC system implements at the client side. The
/// micro/macro-benchmarks only ever talk to this.
class RpcClient {
 public:
  virtual ~RpcClient() = default;

  /// Executes one operation; resolves when the RPC is complete from
  /// the application's perspective (see RpcResult::completed_at).
  virtual sim::Task<RpcResult> call(const RpcRequest& req) = 0;

  /// Executes a batch of operations as one flow-controlled unit (§4.3).
  /// Default: sequential calls; systems with native batching override.
  virtual sim::Task<RpcResult> call_batch(const std::vector<RpcRequest>& reqs) {
    RpcResult last{};
    for (const auto& r : reqs) {
      last = co_await call(r);
      if (!last.ok) break;
    }
    co_return last;
  }

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Fault support: wake every pending call with a failure result
  /// (server died; the fault harness decides what to re-send).
  virtual void abort_pending() {}
};

/// Aggregate server-side accounting shared by all server models.
struct ServerStats {
  std::uint64_t ops_processed = 0;
  /// Receiver software time spent on the client-visible critical path
  /// (Fig. 20 decomposition): request detection + any work the client
  /// waits on. Asynchronous (decoupled) processing is excluded.
  std::uint64_t critical_sw_ns = 0;
  std::uint64_t bytes_applied = 0;
  std::uint64_t backlog_peak = 0;   ///< max logged-but-unprocessed entries
  std::uint64_t throttle_events = 0;
  std::uint64_t recoveries = 0;     ///< entries replayed from the redo log
};

/// Interface for the server half of an RPC system.
class RpcServer {
 public:
  virtual ~RpcServer() = default;

  /// Spawns the server's poller/worker processes.
  virtual void start() = 0;

  [[nodiscard]] virtual const ServerStats& stats() const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  // ---- fault-injection interface (Fig. 12 experiments) ----

  /// Software teardown after the node crashed: stops pumps/workers.
  virtual void on_crash() {}

  /// After Node::restart(): rebuild state (durable servers replay the
  /// redo log first) and resume serving.
  virtual sim::Task<> recover_and_restart() { co_return; }

  /// Re-wires a client to the server's post-restart endpoints.
  virtual void reconnect_client(RpcClient& client) { (void)client; }
};

/// A connected client/server deployment of one RPC system.
struct RpcDeployment {
  std::unique_ptr<RpcServer> server;
  std::vector<std::unique_ptr<RpcClient>> clients;
};

/// Suspends until a write lands in [addr, +len) making `ready` true,
/// then charges one poll detection on `poller`'s host. Resolves
/// immediately (cost only) if `ready` already holds. Client-side
/// helper; server loops use channel-based pumps so crashes can cancel
/// them.
sim::Task<> poll_until(Node& node, std::uint64_t addr, std::uint64_t len,
                       std::function<bool()> ready);

}  // namespace prdma::core
