#include "core/redo_log.hpp"

#include <cstring>

#include "core/wire.hpp"

namespace prdma::core {

std::vector<std::byte> deterministic_payload(std::uint64_t seq,
                                             std::uint32_t len) {
  std::vector<std::byte> p(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    p[i] = static_cast<std::byte>((seq * 131 + i * 7) & 0xFF);
  }
  return p;
}

std::vector<std::byte> encode_log_entry(std::uint64_t seq, RpcOp op,
                                        std::uint64_t obj_id,
                                        std::span<const std::byte> payload,
                                        std::uint64_t resp_slot,
                                        std::uint32_t batch,
                                        std::uint32_t req_len) {
  ByteWriter w(LogLayout::kEntryHeaderBytes + payload.size() +
               LogLayout::kCommitBytes);
  w.u32(static_cast<std::uint32_t>(op));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u64(obj_id);
  w.u64(fnv1a(payload));
  w.u64(resp_slot);
  w.u32(batch);
  w.u32(req_len);
  w.pad_to(LogLayout::kEntryHeaderBytes);
  w.bytes(payload);
  w.u64(seq);  // commit word, after the data (§4.2 ordering)
  return w.take();
}

std::optional<LogEntryView> decode_entry_at(const mem::NodeMemory& mem,
                                            std::uint64_t addr,
                                            std::uint64_t payload_cap,
                                            bool persisted_view) {
  const auto load = [&mem, persisted_view](std::uint64_t a,
                                           std::span<std::byte> out) {
    if (persisted_view) {
      mem.persisted_read(a, out);
    } else {
      mem.cpu_read(a, out);
    }
  };
  std::vector<std::byte> header(LogLayout::kEntryHeaderBytes);
  load(addr, header);
  ByteReader r(header);

  LogEntryView e;
  const std::uint32_t op = r.u32();
  e.payload_len = r.u32();
  e.obj_id = r.u64();
  r.u64();  // checksum (validated separately by RedoLog::checksum_ok)
  e.resp_slot = r.u64();
  e.batch = r.u32();
  e.req_len = r.u32();
  e.payload_addr = addr + LogLayout::kEntryHeaderBytes;

  if (op != static_cast<std::uint32_t>(RpcOp::kRead) &&
      op != static_cast<std::uint32_t>(RpcOp::kWrite)) {
    return std::nullopt;
  }
  e.op = static_cast<RpcOp>(op);
  if (e.payload_len > payload_cap) return std::nullopt;
  if (e.batch == 0) return std::nullopt;

  std::byte commit_raw[8];
  load(addr + LogLayout::kEntryHeaderBytes + e.payload_len, commit_raw);
  std::memcpy(&e.seq, commit_raw, 8);
  if (e.seq == 0) return std::nullopt;
  return e;
}

RedoLog::RedoLog(Node& server, LogLayout layout)
    : node_(server), layout_(layout) {}

std::optional<LogEntryView> RedoLog::peek(std::uint64_t seq) const {
  auto e = decode_entry_at(node_.mem(), layout_.slot_addr(seq),
                           layout_.payload_capacity);
  if (!e.has_value() || e->seq != seq) return std::nullopt;
  return e;
}

bool RedoLog::checksum_ok(const LogEntryView& e) const {
  const std::uint64_t slot = layout_.slot_addr(e.seq);
  std::byte sum_raw[8];
  node_.mem().cpu_read(slot + 16, sum_raw);
  std::uint64_t stored = 0;
  std::memcpy(&stored, sum_raw, 8);

  std::vector<std::byte> payload(e.payload_len);
  node_.mem().cpu_read(e.payload_addr, payload);
  return fnv1a(payload) == stored;
}

std::uint64_t RedoLog::consumed() const {
  return load_u64(node_.mem(), layout_.consumed_addr());
}

sim::Task<> RedoLog::mark_consumed(std::uint64_t seq) {
  auto& mem = node_.mem();
  auto& sim = node_.rnic().simulator();
  store_u64(mem, layout_.consumed_addr(), seq);
  const auto done = mem.clflush(sim.now(), layout_.consumed_addr(), 8);
  co_await sim::delay(sim, done - sim.now());
  trace(TracePoint::kMarkConsumed, seq);
}

std::vector<LogEntryView> RedoLog::recover() const {
  std::vector<LogEntryView> out;
  const std::uint64_t from = consumed();
  for (std::uint64_t seq = from + 1; seq <= from + layout_.slots; ++seq) {
    auto e = peek(seq);
    if (!e.has_value()) break;        // first gap terminates the scan
    if (!checksum_ok(*e)) break;      // torn entry: data not fully down
    trace(TracePoint::kRecoverReplay, seq);
    out.push_back(*e);
  }
  return out;
}

// ------------------------------------------------- physical-media views

std::uint64_t RedoLog::consumed_persisted() const {
  std::byte raw[8];
  node_.mem().persisted_read(layout_.consumed_addr(), raw);
  std::uint64_t v = 0;
  std::memcpy(&v, raw, 8);
  return v;
}

std::optional<LogEntryView> RedoLog::peek_persisted(std::uint64_t seq) const {
  auto e = decode_entry_at(node_.mem(), layout_.slot_addr(seq),
                           layout_.payload_capacity, /*persisted_view=*/true);
  if (!e.has_value() || e->seq != seq) return std::nullopt;
  return e;
}

bool RedoLog::checksum_ok_persisted(const LogEntryView& e) const {
  const std::uint64_t slot = layout_.slot_addr(e.seq);
  std::byte sum_raw[8];
  node_.mem().persisted_read(slot + 16, sum_raw);
  std::uint64_t stored = 0;
  std::memcpy(&stored, sum_raw, 8);

  std::vector<std::byte> payload(e.payload_len);
  node_.mem().persisted_read(e.payload_addr, payload);
  return fnv1a(payload) == stored;
}

std::uint64_t RedoLog::durable_watermark() const {
  const std::uint64_t from = consumed_persisted();
  std::uint64_t mark = from;
  for (std::uint64_t seq = from + 1; seq <= from + layout_.slots; ++seq) {
    auto e = peek_persisted(seq);
    if (!e.has_value() || !checksum_ok_persisted(*e)) break;
    mark = seq;
  }
  return mark;
}

}  // namespace prdma::core
