#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/node.hpp"
#include "core/rpc.hpp"
#include "sim/task.hpp"

namespace prdma::core {

/// Byte layout of one connection's redo-log ring in server PM (§4.2,
/// Fig. 5). Shared between the client (which computes slot addresses
/// for its RDMA writes / SFlush destinations), the server (which scans
/// and consumes entries) and recovery (which replays them).
///
/// Ring header:
///   [0, 8)    consumed_seq — last processed entry (persisted watermark)
///   [8, 128)  reserved
/// Slot i (seq s maps to slot (s-1) % slots):
///   [0, 4)    op (RpcOp)
///   [4, 8)    payload_len
///   [8, 16)   obj_id
///   [16, 24)  payload checksum (FNV-1a)
///   [24, 32)  resp_slot (client response ring index, reads)
///   [32, 36)  batch count (sub-operations aggregated per §4.3)
///   [36, 40)  req_len (bytes requested by a read operation)
///   [64, 64+len)          payload
///   [64+len, 64+len+8)    commit word == seq
///
/// The commit word sits *after* the payload, so "data is always
/// persisted before the RPC operator" (§4.2): an entry is valid only
/// if its commit word matches the expected sequence number AND the
/// payload checksum verifies — a torn entry is discarded by recovery.
struct LogLayout {
  static constexpr std::uint64_t kHeaderBytes = 128;
  static constexpr std::uint64_t kEntryHeaderBytes = 64;
  static constexpr std::uint64_t kCommitBytes = 8;

  std::uint64_t base = 0;           ///< PM address of the ring
  std::uint32_t slots = 32;
  std::uint64_t payload_capacity = 64 * 1024;

  [[nodiscard]] std::uint64_t slot_bytes() const {
    const std::uint64_t raw =
        kEntryHeaderBytes + payload_capacity + kCommitBytes;
    return (raw + 255) & ~255ull;
  }
  [[nodiscard]] std::uint64_t total_bytes() const {
    return kHeaderBytes + static_cast<std::uint64_t>(slots) * slot_bytes();
  }
  [[nodiscard]] std::uint64_t consumed_addr() const { return base; }
  [[nodiscard]] std::uint64_t slot_addr(std::uint64_t seq) const {
    return base + kHeaderBytes + ((seq - 1) % slots) * slot_bytes();
  }
  [[nodiscard]] std::uint64_t payload_addr(std::uint64_t seq) const {
    return slot_addr(seq) + kEntryHeaderBytes;
  }
  /// Size of the one-RDMA-write image carrying an entry with `len`
  /// payload bytes (header + payload + trailing commit word).
  [[nodiscard]] std::uint64_t entry_bytes(std::uint32_t len) const {
    return kEntryHeaderBytes + len + kCommitBytes;
  }
};

/// Builds the single-write image of a log entry (client side).
std::vector<std::byte> encode_log_entry(std::uint64_t seq, RpcOp op,
                                        std::uint64_t obj_id,
                                        std::span<const std::byte> payload,
                                        std::uint64_t resp_slot,
                                        std::uint32_t batch = 1,
                                        std::uint32_t req_len = 0);

/// A decoded view of one committed log entry.
struct LogEntryView {
  std::uint64_t seq = 0;
  RpcOp op = RpcOp::kWrite;
  std::uint64_t obj_id = 0;
  std::uint32_t payload_len = 0;
  std::uint64_t resp_slot = 0;
  std::uint32_t batch = 1;
  std::uint32_t req_len = 0;  ///< read request: bytes to return
  std::uint64_t payload_addr = 0;  ///< address of the payload bytes

  [[nodiscard]] std::uint64_t image_bytes() const {
    return LogLayout::kEntryHeaderBytes + payload_len + LogLayout::kCommitBytes;
  }
};

/// Decodes an entry image at `addr` (log slot or message buffer).
/// Returns nullopt if the header is implausible or no commit word is
/// present. `payload_cap` bounds the length field.
std::optional<LogEntryView> decode_entry_at(const mem::NodeMemory& mem,
                                            std::uint64_t addr,
                                            std::uint64_t payload_cap);

/// Server-side view of one connection's redo log.
class RedoLog {
 public:
  RedoLog(Node& server, LogLayout layout);

  [[nodiscard]] const LogLayout& layout() const { return layout_; }

  /// Decodes the entry with sequence `seq` if its commit word is
  /// present (does NOT verify the checksum — see checksum_ok).
  [[nodiscard]] std::optional<LogEntryView> peek(std::uint64_t seq) const;

  /// Validates the payload checksum (used by recovery to reject torn
  /// entries; skipped on the hot path).
  [[nodiscard]] bool checksum_ok(const LogEntryView& e) const;

  [[nodiscard]] std::uint64_t consumed() const;

  /// Durably advances the consumed watermark (8-byte store + flush),
  /// charged on the calling worker's core.
  sim::Task<> mark_consumed(std::uint64_t seq);

  /// Post-crash scan: returns committed-but-unconsumed entries in
  /// sequence order, stopping at the first gap or torn entry. These
  /// are exactly the RPCs that can be re-executed without re-sending
  /// data from the client (§4.2).
  [[nodiscard]] std::vector<LogEntryView> recover() const;

 private:
  Node& node_;
  LogLayout layout_;
};

}  // namespace prdma::core
