#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/node.hpp"
#include "core/rpc.hpp"
#include "sim/task.hpp"

namespace prdma::core {

/// Byte layout of one connection's redo-log ring in server PM (§4.2,
/// Fig. 5). Shared between the client (which computes slot addresses
/// for its RDMA writes / SFlush destinations), the server (which scans
/// and consumes entries) and recovery (which replays them).
///
/// Ring header:
///   [0, 8)    consumed_seq — last processed entry (persisted watermark)
///   [8, 128)  reserved
/// Slot i (seq s maps to slot (s-1) % slots):
///   [0, 4)    op (RpcOp)
///   [4, 8)    payload_len
///   [8, 16)   obj_id
///   [16, 24)  payload checksum (FNV-1a)
///   [24, 32)  resp_slot (client response ring index, reads)
///   [32, 36)  batch count (sub-operations aggregated per §4.3)
///   [36, 40)  req_len (bytes requested by a read operation)
///   [64, 64+len)          payload
///   [64+len, 64+len+8)    commit word == seq
///
/// The commit word sits *after* the payload, so "data is always
/// persisted before the RPC operator" (§4.2): an entry is valid only
/// if its commit word matches the expected sequence number AND the
/// payload checksum verifies — a torn entry is discarded by recovery.
struct LogLayout {
  static constexpr std::uint64_t kHeaderBytes = 128;
  static constexpr std::uint64_t kEntryHeaderBytes = 64;
  static constexpr std::uint64_t kCommitBytes = 8;

  std::uint64_t base = 0;           ///< PM address of the ring
  std::uint32_t slots = 32;
  std::uint64_t payload_capacity = 64 * 1024;

  [[nodiscard]] std::uint64_t slot_bytes() const {
    const std::uint64_t raw =
        kEntryHeaderBytes + payload_capacity + kCommitBytes;
    return (raw + 255) & ~255ull;
  }
  [[nodiscard]] std::uint64_t total_bytes() const {
    return kHeaderBytes + static_cast<std::uint64_t>(slots) * slot_bytes();
  }
  [[nodiscard]] std::uint64_t consumed_addr() const { return base; }
  [[nodiscard]] std::uint64_t slot_addr(std::uint64_t seq) const {
    return base + kHeaderBytes + ((seq - 1) % slots) * slot_bytes();
  }
  [[nodiscard]] std::uint64_t payload_addr(std::uint64_t seq) const {
    return slot_addr(seq) + kEntryHeaderBytes;
  }
  /// Size of the one-RDMA-write image carrying an entry with `len`
  /// payload bytes (header + payload + trailing commit word).
  [[nodiscard]] std::uint64_t entry_bytes(std::uint32_t len) const {
    return kEntryHeaderBytes + len + kCommitBytes;
  }
};

/// Deterministic per-sequence payload pattern shared by the durable
/// RPC client and the crash-consistency oracle: because every write's
/// bytes are a pure function of its sequence number, a post-crash
/// checker can recompute what *should* be in the log and compare it
/// against what physically survived.
std::vector<std::byte> deterministic_payload(std::uint64_t seq,
                                             std::uint32_t len);

/// Builds the single-write image of a log entry (client side).
std::vector<std::byte> encode_log_entry(std::uint64_t seq, RpcOp op,
                                        std::uint64_t obj_id,
                                        std::span<const std::byte> payload,
                                        std::uint64_t resp_slot,
                                        std::uint32_t batch = 1,
                                        std::uint32_t req_len = 0);

/// Pooled entry image with the deterministic payload for `seq`. In
/// kFull content mode the block is byte-for-byte what encode_log_entry
/// produces (header + deterministic_payload + commit word); in kShadow
/// the payload interior is a content-free shadow extent (generator =
/// seq) and the header checksum is shadow_digest(seq, 0, len) — the
/// 72 data bytes of header+commit are all that get copied. Same sizes
/// and addresses either way, so timing is identical.
mem::PayloadRef encode_log_entry_image(mem::NodeMemory& mem, std::uint64_t seq,
                                       RpcOp op, std::uint64_t obj_id,
                                       std::uint32_t payload_len,
                                       std::uint64_t resp_slot,
                                       std::uint32_t batch = 1,
                                       std::uint32_t req_len = 0);

/// A decoded view of one committed log entry.
struct LogEntryView {
  std::uint64_t seq = 0;
  RpcOp op = RpcOp::kWrite;
  std::uint64_t obj_id = 0;
  std::uint32_t payload_len = 0;
  std::uint64_t resp_slot = 0;
  std::uint32_t batch = 1;
  std::uint32_t req_len = 0;  ///< read request: bytes to return
  std::uint64_t payload_addr = 0;  ///< address of the payload bytes

  [[nodiscard]] std::uint64_t image_bytes() const {
    return LogLayout::kEntryHeaderBytes + payload_len + LogLayout::kCommitBytes;
  }
};

/// Decodes an entry image at `addr` (log slot or message buffer).
/// Returns nullopt if the header is implausible or no commit word is
/// present. `payload_cap` bounds the length field. With
/// `persisted_view` the bytes come from the physical media
/// (NodeMemory::persisted_read) instead of the coherent view — what a
/// post-crash reader would find.
std::optional<LogEntryView> decode_entry_at(const mem::NodeMemory& mem,
                                            std::uint64_t addr,
                                            std::uint64_t payload_cap,
                                            bool persisted_view = false);

/// Server-side view of one connection's redo log.
class RedoLog {
 public:
  RedoLog(Node& server, LogLayout layout);

  [[nodiscard]] const LogLayout& layout() const { return layout_; }

  /// Protocol-phase trace points the crash-schedule explorer derives
  /// targeted crash timestamps from.
  enum class TracePoint : std::uint8_t {
    kMarkConsumed,   ///< consumed watermark durably advanced to `seq`
    kRecoverReplay,  ///< recovery scan returned `seq` for replay
  };
  using TraceFn = std::function<void(TracePoint, std::uint64_t seq)>;

  /// Installs (or clears, with nullptr) the trace hook.
  void set_trace(TraceFn fn) const { trace_ = std::move(fn); }

  /// Decodes the entry with sequence `seq` if its commit word is
  /// present (does NOT verify the checksum — see checksum_ok).
  [[nodiscard]] std::optional<LogEntryView> peek(std::uint64_t seq) const;

  /// Validates the payload checksum (used by recovery to reject torn
  /// entries; skipped on the hot path).
  [[nodiscard]] bool checksum_ok(const LogEntryView& e) const;

  [[nodiscard]] std::uint64_t consumed() const;

  /// Durably advances the consumed watermark (8-byte store + flush),
  /// charged on the calling worker's core.
  sim::Task<> mark_consumed(std::uint64_t seq);

  /// Post-crash scan: returns committed-but-unconsumed entries in
  /// sequence order, stopping at the first gap or torn entry. These
  /// are exactly the RPCs that can be re-executed without re-sending
  /// data from the client (§4.2).
  [[nodiscard]] std::vector<LogEntryView> recover() const;

  // ---- physical-media (persist domain) views ----
  //
  // The coherent accessors above can overstate durability mid-run:
  // a dirty LLC line satisfies cpu_read but would not survive a crash.
  // These variants read the media directly and are therefore valid at
  // ANY simulated instant, which is what the durability oracle and the
  // client-facing watermark need. Post-crash (LLC empty) the two views
  // coincide.

  /// Consumed watermark as physically persisted.
  [[nodiscard]] std::uint64_t consumed_persisted() const;

  /// Entry decode from the persist domain only.
  [[nodiscard]] std::optional<LogEntryView> peek_persisted(
      std::uint64_t seq) const;

  /// Payload checksum validation against media bytes.
  [[nodiscard]] bool checksum_ok_persisted(const LogEntryView& e) const;

  /// Honest durable watermark: the highest sequence S such that every
  /// entry in (consumed_persisted, S] is fully in the persist domain
  /// with a valid checksum. Never exceeds what a crash at this instant
  /// would leave recoverable — the invariant the oracle enforces.
  [[nodiscard]] std::uint64_t durable_watermark() const;

 private:
  void trace(TracePoint p, std::uint64_t seq) const {
    if (trace_) trace_(p, seq);
  }

  Node& node_;
  LogLayout layout_;
  /// Mutable: recover() is logically const but must still be traceable.
  mutable TraceFn trace_;
};

}  // namespace prdma::core
