#pragma once

#include <cstdint>
#include <vector>

#include "core/node.hpp"
#include "sim/task.hpp"

namespace prdma::core {

/// Server-side object table living in persistent memory: the target of
/// every micro/macro-benchmark operation (§5.1: 50 K objects).
///
/// Application semantics: a *durable* object write is a CPU memcpy
/// into the slot followed by a cache-line flush of the written range —
/// the SNIA PM programming model the paper builds on (§2.1).
class ObjectStore {
 public:
  ObjectStore(Node& node, std::uint64_t object_count, std::uint64_t slot_bytes)
      : node_(node),
        count_(object_count),
        slot_(slot_bytes),
        base_(node.pm_alloc().alloc(object_count * slot_bytes, 256)) {}

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t slot_bytes() const { return slot_; }
  [[nodiscard]] std::uint64_t addr_of(std::uint64_t obj_id) const {
    return base_ + (obj_id % count_) * slot_;
  }

  /// Durably applies `len` bytes sitting at server-local `src_addr`
  /// to object `obj_id`: memcpy (core-occupying) + clflush. Resolves
  /// when the object bytes are in the persist domain.
  sim::Task<> apply_write(std::uint64_t obj_id, std::uint64_t src_addr,
                          std::uint32_t len) {
    auto& host = node_.host();
    auto& mem = node_.mem();
    co_await host.memcpy_exec(len);
    const std::uint64_t dst = addr_of(obj_id);
    mem.cpu_write_payload(dst, mem.read_payload(src_addr, len));
    const auto done = mem.clflush(node_.rnic().simulator().now(), dst, len);
    co_await sim::delay(node_.rnic().simulator(),
                        done - node_.rnic().simulator().now());
    bytes_applied_ += len;
  }

  /// Reads `len` object bytes into server-local `dst_addr` (staging a
  /// response); charges the copy.
  sim::Task<> read_into(std::uint64_t obj_id, std::uint64_t dst_addr,
                        std::uint32_t len) {
    auto& mem = node_.mem();
    co_await node_.host().memcpy_exec(len);
    mem.cpu_write_payload(dst_addr, mem.read_payload(addr_of(obj_id), len));
  }

  [[nodiscard]] std::uint64_t bytes_applied() const { return bytes_applied_; }

 private:
  Node& node_;
  std::uint64_t count_;
  std::uint64_t slot_;
  std::uint64_t base_;
  std::uint64_t bytes_applied_ = 0;
};

}  // namespace prdma::core
