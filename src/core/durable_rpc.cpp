#include "core/durable_rpc.hpp"

#include <algorithm>
#include <cassert>

#include "core/wire.hpp"

namespace prdma::core {

using sim::SimTime;
using sim::Task;

std::string_view variant_name(FlushVariant v) {
  switch (v) {
    case FlushVariant::kWFlush:
      return "WFlush-RPC";
    case FlushVariant::kSFlush:
      return "SFlush-RPC";
    case FlushVariant::kWRFlush:
      return "W-RFlush-RPC";
    case FlushVariant::kSRFlush:
      return "S-RFlush-RPC";
  }
  return "?";
}

namespace {

/// Awaitable wrapper over Rnic::persist_range (the RFlush building
/// block, §4.1.2). If the node crashes mid-flush the event never
/// fires; the caller's loop is already torn down by channel resets.
Task<> persist_range_task(rnic::Rnic& nic, std::uint64_t addr,
                          std::uint64_t len) {
  sim::Event ev(nic.simulator());
  nic.persist_range(addr, len, [&ev](SimTime) { ev.set(); });
  co_await ev.wait();
}

}  // namespace

// ===================================================================
// Server
// ===================================================================

DurableRpcServer::DurableRpcServer(Cluster& cluster, std::size_t server_idx,
                                   FlushVariant v, const ModelParams& params)
    : cluster_(cluster),
      server_(cluster.node(server_idx)),
      variant_(v),
      params_(params),
      window_(std::min(params.log_slots, params.flow_threshold)),
      store_(std::make_unique<ObjectStore>(server_, params.object_count,
                                           std::max<std::uint64_t>(
                                               params.max_payload, 64))),
      work_q_(std::make_unique<sim::Channel<WorkItem>>(server_.simulator())) {}

DurableRpcServer::~DurableRpcServer() = default;

std::unique_ptr<DurableRpcClient> DurableRpcServer::connect_client(
    std::size_t client_idx) {
  assert(!running_ && "connect all clients before start()");
  Node& client_node = cluster_.node(client_idx);

  LogLayout layout;
  layout.slots = params_.log_slots;
  layout.payload_capacity = params_.max_payload;
  layout.base = server_.pm_alloc().alloc(layout.total_bytes(), 256);

  auto conn = std::make_unique<Conn>(server_, layout);
  conn->idx = conns_.size();
  conn->client = &client_node;
  conn->scq = std::make_unique<rnic::Cq>(server_.simulator());
  conn->rcq = std::make_unique<rnic::Cq>(server_.simulator());
  conn->arrivals =
      std::make_unique<sim::Channel<std::uint64_t>>(server_.simulator());

  // Server-side staging: [0,8) notify scratch; response staging ring
  // at +64, one slot per window entry.
  const std::uint64_t resp_stage_bytes =
      64 + static_cast<std::uint64_t>(window_) * (params_.max_payload + 16);
  conn->stage_addr = server_.dram_alloc().alloc(resp_stage_bytes, 64);

  if (is_send_based(variant_)) {
    conn->msg_slots = 2 * window_;
    const std::uint64_t msg_slot_bytes = layout.slot_bytes();
    conn->msg_base =
        server_.dram_alloc().alloc(conn->msg_slots * msg_slot_bytes, 256);
  }

  // Build the client object (allocates client-side regions).
  auto client = std::unique_ptr<DurableRpcClient>(
      new DurableRpcClient(*this, client_node, conn->idx));
  conn->notify_consumed_addr = client->notify_base_;
  conn->notify_persist_addr = client->notify_base_ + 8;
  conn->resp_base = client->resp_base_;

  conns_.push_back(std::move(conn));
  Conn& c = *conns_.back();
  c.completer = std::make_unique<rdma::Completer>(server_.simulator(), *c.scq);

  // Region registration (ibv_reg_mr analogue): the client may write
  // and flush the redo-log ring; the server may write the client's
  // notify words and response ring.
  server_.rnic().register_mr(layout.base, layout.total_bytes(),
                             rnic::Access::kRemoteWrite |
                                 rnic::Access::kRemoteFlush);
  client_node.rnic().register_mr(client->notify_base_, 64,
                                 static_cast<std::uint8_t>(
                                     rnic::Access::kRemoteWrite));
  client_node.rnic().register_mr(
      client->resp_base_,
      static_cast<std::uint64_t>(client->window_size_) *
          client->resp_slot_bytes_,
      static_cast<std::uint8_t>(rnic::Access::kRemoteWrite));

  // Fresh QP pair and sessions on both ends.
  auto [client_qp, server_qp] = rdma::connect_pair(
      client_node.rnic(), rnic::Transport::kRC, client->scq_, client->rcq_,
      server_.rnic(), rnic::Transport::kRC, *c.scq, *c.rcq);
  c.qp = server_qp;
  c.session = std::make_unique<rdma::QpSession>(server_.rnic(), *server_qp,
                                                *c.completer);
  client->completer_ =
      std::make_unique<rdma::Completer>(client_node.simulator(), client->scq_);
  client->session_ = std::make_unique<rdma::QpSession>(
      client_node.rnic(), *client_qp, *client->completer_);
  sim::spawn(client->credit_pump());
  return client;
}

void DurableRpcServer::install_ring_watch(Conn& conn) {
  const LogLayout& lay = conn.log.layout();
  Conn* c = &conn;
  conn.watch = server_.mem().add_watch(
      lay.base + LogLayout::kHeaderBytes,
      lay.total_bytes() - LogLayout::kHeaderBytes, [this, c] {
        while (auto e = c->log.peek(c->next_seq)) {
          c->arrivals->send(c->next_seq);
          ++c->next_seq;
        }
      });
}

void DurableRpcServer::start() {
  assert(!running_);
  running_ = true;
  for (auto& conn : conns_) {
    if (is_send_based(variant_)) {
      // Pre-post the receive ring.
      const std::uint64_t slot_bytes = conn->log.layout().slot_bytes();
      for (std::uint32_t i = 0; i < conn->msg_slots; ++i) {
        server_.rnic().post_recv(*conn->qp, conn->msg_base + i * slot_bytes,
                                 slot_bytes, /*wr_id=*/i);
      }
      sim::spawn(conn_loop_send_based(*conn));
    } else {
      install_ring_watch(*conn);
      if (variant_ == FlushVariant::kWRFlush && params_.rnic.smartnic_rflush) {
        // §4.5: the smartNIC's lookup table covers the redo-log ring;
        // the NIC persists incoming entries and notifies the sender
        // itself — the CPU persist path in conn_loop is bypassed.
        const LogLayout& lay = conn->log.layout();
        server_.rnic().configure_auto_persist(
            *conn->qp, lay.base + LogLayout::kHeaderBytes,
            lay.total_bytes() - LogLayout::kHeaderBytes,
            conn->notify_persist_addr, conn->completed_floor);
      }
      sim::spawn(conn_loop_write_based(*conn));
    }
  }
  for (unsigned i = 0; i < params_.server_workers; ++i) {
    sim::spawn(worker_loop());
  }
}

std::uint64_t DurableRpcServer::backlog() const {
  std::uint64_t total = 0;
  for (const auto& c : conns_) total += c->backlog;
  return total;
}

void DurableRpcServer::notify_word(Conn& conn, std::uint64_t client_addr,
                                   std::uint64_t value) {
  store_u64(server_.mem(), conn.stage_addr, value);
  conn.session->post_write_nowait(conn.stage_addr, 8, client_addr);
}

sim::Task<> DurableRpcServer::persist_slot(Conn& conn, const LogEntryView& e) {
  const std::uint64_t slot = conn.log.layout().slot_addr(e.seq);
  co_await persist_range_task(server_.rnic(), slot, e.image_bytes());
}

sim::Task<> DurableRpcServer::conn_loop_write_based(Conn& conn) {
  auto& host = server_.host();
  const std::uint64_t epoch = epoch_;
  for (;;) {
    if (epoch != epoch_) break;  // zombie guard (see worker_loop)
    auto seq = co_await conn.arrivals->recv();
    if (!seq.has_value() || epoch != epoch_) break;  // crash/stop
    co_await host.charge_poll();
    if (epoch != epoch_) break;
    co_await host.exec(host.params().handler_cost);
    if (epoch != epoch_) break;
    auto e = conn.log.peek(*seq);
    if (!e.has_value()) continue;

    if (variant_ == FlushVariant::kWRFlush && e->op == RpcOp::kWrite &&
        !params_.rnic.smartnic_rflush) {
      // Receiver-initiated flush: persist the slot, then notify the
      // sender immediately — *before* processing (§4.1.2, Fig. 4c).
      // (In smartNIC mode the NIC already did both, §4.5.)
      const std::uint64_t sw0 = host.charged_ns();
      const sim::SimTime persist_t0 = server_.simulator().now();
      co_await persist_slot(conn, *e);
      co_await host.exec(host.params().post_cost);
      notify_word(conn, conn.notify_persist_addr, *seq);
      stats_.critical_sw_ns += host.charged_ns() - sw0;
      auto& tr = cluster_.tracer_of(server_.id());
      const sim::SimTime done = server_.simulator().now();
      tr.span(trace::Component::kOpPersist, *seq, persist_t0, done, trace_track());
      tr.span(trace::Component::kPersistAck, *seq, done, done, trace_track());
      tr.span_charged(trace::Component::kReceiverSw, *seq, persist_t0,
                      host.charged_ns() - sw0, trace_track());
    }

    if (e->op == RpcOp::kRead && conn.backlog == 0) {
      // Fast path: an idle log means FIFO order is trivially kept, so
      // the poller answers reads inline — no worker thread is spawned
      // (dispatch cost is a write/queued-read artifact).
      const std::uint64_t sw0 = host.charged_ns();
      const sim::SimTime fast_t0 = server_.simulator().now();
      co_await process_item(WorkItem{&conn, *e, false, /*fast=*/true});
      stats_.critical_sw_ns += host.charged_ns() - sw0;
      cluster_.tracer_of(server_.id())
          .span_charged(trace::Component::kReceiverSw, *seq, fast_t0,
                        host.charged_ns() - sw0, trace_track());
      continue;
    }
    ++conn.backlog;
    stats_.backlog_peak = std::max(stats_.backlog_peak, backlog());
    if (backlog() > params_.flow_threshold) ++stats_.throttle_events;
    work_q_->send(WorkItem{&conn, *e, false});
  }
}

sim::Task<> DurableRpcServer::conn_loop_send_based(Conn& conn) {
  auto& host = server_.host();
  const std::uint64_t slot_bytes = conn.log.layout().slot_bytes();
  const std::uint64_t epoch = epoch_;
  for (;;) {
    if (epoch != epoch_) break;  // zombie guard (see worker_loop)
    auto wc = co_await conn.rcq->channel().recv();
    if (!wc.has_value() || epoch != epoch_) break;  // crash/stop
    if (wc->status != rnic::WcStatus::kSuccess) continue;
    co_await host.charge_recv_handler();
    if (epoch != epoch_) break;

    auto e = decode_entry_at(server_.mem(), wc->local_addr,
                             conn.log.layout().payload_capacity);
    // Recycle the message-buffer slot for future sends.
    server_.rnic().post_recv(*conn.qp, wc->local_addr, slot_bytes, 0);
    if (!e.has_value()) continue;
    conn.next_seq = e->seq + 1;

    const std::uint64_t sw0 = host.charged_ns();
    const sim::SimTime crit_t0 = server_.simulator().now();
    if (variant_ == FlushVariant::kSRFlush && e->op == RpcOp::kWrite) {
      // Receiver-initiated persist of a send: the CPU streams the
      // message image into the redo log with non-temporal stores
      // (straight into the ADR persist domain, no cache flush needed),
      // then notifies the sender before processing (§4.1.2).
      const std::uint64_t image = e->image_bytes();
      auto img = server_.mem().read_payload(wc->local_addr, image);
      const std::uint64_t slot = conn.log.layout().slot_addr(e->seq);
      const auto done = server_.mem().pm().write_complete_at(
          server_.simulator().now(), image);
      co_await host.exec(done - server_.simulator().now());
      if (epoch != epoch_) break;
      // ntstore: persist-domain direct
      server_.mem().poke_payload_pm(slot, img);
      co_await host.exec(host.params().post_cost);
      notify_word(conn, conn.notify_persist_addr, e->seq);
      auto& tr = cluster_.tracer_of(server_.id());
      const sim::SimTime ack_at = server_.simulator().now();
      tr.span(trace::Component::kOpPersist, e->seq, crit_t0, ack_at,
              trace_track());
      tr.span(trace::Component::kPersistAck, e->seq, ack_at, ack_at,
              trace_track());
    }
    // For SFlush the RNIC copies the message into the log slot on its
    // own schedule (client's SFlush, Fig. 5 step B). The worker
    // processes "from the message buffer": mirror the image into the
    // slot through the cache so the payload is readable immediately —
    // still volatile (dirty LLC lines), so crash fidelity holds until
    // the RNIC's DMA makes it durable.
    if (variant_ == FlushVariant::kSFlush) {
      server_.mem().cpu_write_payload(
          conn.log.layout().slot_addr(e->seq),
          server_.mem().read_payload(wc->local_addr, e->image_bytes()));
    }

    // Process from the log copy: the message slot may be recycled.
    e->payload_addr = conn.log.layout().payload_addr(e->seq);
    if (e->op == RpcOp::kRead && conn.backlog == 0) {
      co_await process_item(WorkItem{&conn, *e, false, /*fast=*/true});
      stats_.critical_sw_ns += host.charged_ns() - sw0;
      cluster_.tracer_of(server_.id())
          .span_charged(trace::Component::kReceiverSw, e->seq, crit_t0,
                        host.charged_ns() - sw0, trace_track());
      continue;
    }
    stats_.critical_sw_ns += host.charged_ns() - sw0;
    cluster_.tracer_of(server_.id())
        .span_charged(trace::Component::kReceiverSw, e->seq, crit_t0,
                      host.charged_ns() - sw0, trace_track());
    ++conn.backlog;
    stats_.backlog_peak = std::max(stats_.backlog_peak, backlog());
    if (backlog() > params_.flow_threshold) ++stats_.throttle_events;
    work_q_->send(WorkItem{&conn, *e, false});
  }
}

sim::Task<> DurableRpcServer::worker_loop() {
  const std::uint64_t epoch = epoch_;
  for (;;) {
    // Zombie guard: a worker resuming from pre-crash processing must
    // not re-enter the (reopened) queue and steal a new-epoch item.
    if (epoch != epoch_) break;
    auto item = co_await work_q_->recv();
    if (!item.has_value() || epoch != epoch_) break;
    co_await process_item(*item);
  }
}

sim::Task<> DurableRpcServer::process_item(WorkItem item) {
  Conn& conn = *item.conn;
  const LogEntryView& e = item.entry;
  auto& host = server_.host();
  const std::uint64_t epoch = epoch_;
  const sim::SimTime work_t0 = server_.simulator().now();

  if (params_.rpc_processing > 0) {
    if (!item.fast) {
      // §4.2: "a thread is created to handle the RPC requests" — the
      // hand-off cost matters when there is real processing to hand
      // off; fast-path reads are handled inline by the poller.
      co_await host.exec(host.params().dispatch_cost);
      if (epoch != epoch_) co_return;  // server crashed under us
    }
    co_await host.exec(params_.rpc_processing * e.batch);
    if (epoch != epoch_) co_return;
  }

  if (e.op == RpcOp::kWrite) {
    const std::uint32_t sub_len = e.payload_len / e.batch;
    for (std::uint32_t i = 0; i < e.batch; ++i) {
      co_await store_->apply_write(e.obj_id + i,
                                   e.payload_addr + i * sub_len, sub_len);
      if (epoch != epoch_) co_return;
    }
    stats_.bytes_applied += e.payload_len;
  } else {
    // Stage the object bytes and RDMA-write them (plus a trailing
    // commit word) into the client's response slot.
    const std::uint32_t rlen = e.req_len;
    const std::uint64_t stage =
        conn.stage_addr + 64 +
        (e.resp_slot % window_) * (params_.max_payload + 16);
    co_await store_->read_into(e.obj_id, stage, rlen);
    if (epoch != epoch_) co_return;
    store_u64(server_.mem(), stage + rlen, e.seq);
    co_await host.exec(host.params().post_cost);
    if (epoch != epoch_) co_return;
    const std::uint64_t resp_addr =
        conn.resp_base + e.resp_slot * (params_.max_payload + 16);
    conn.session->post_write_nowait(stage, rlen + 8, resp_addr);
  }

  stats_.ops_processed += e.batch;
  if (!item.fast && conn.backlog > 0) --conn.backlog;
  if (item.recovered) {
    ++stats_.recoveries;
  }
  cluster_.tracer_of(server_.id())
      .span(trace::Component::kWorker, e.seq, work_t0,
            server_.simulator().now(), trace_track());
  co_await advance_consumed(conn, e.seq);
}

sim::Task<> DurableRpcServer::advance_consumed(Conn& conn, std::uint64_t seq) {
  conn.completed_oo.insert(seq);
  const std::uint64_t old_floor = conn.completed_floor;
  while (conn.completed_oo.contains(conn.completed_floor + 1)) {
    ++conn.completed_floor;
    conn.completed_oo.erase(conn.completed_floor);
  }
  if (conn.completed_floor != old_floor) {
    co_await conn.log.mark_consumed(conn.completed_floor);
    co_await server_.host().exec(server_.host().params().post_cost);
    notify_word(conn, conn.notify_consumed_addr, conn.completed_floor);
  }
}

// ------------------------------------------------------------- failures

void DurableRpcServer::on_crash() {
  running_ = false;
  ++epoch_;
  for (auto& conn : conns_) {
    if (conn->watch != 0) {
      server_.mem().remove_watch(conn->watch);
      conn->watch = 0;
    }
    conn->arrivals->reset();
    conn->scq->reset();
    conn->rcq->reset();
    conn->backlog = 0;
    conn->completed_oo.clear();
  }
  work_q_->reset();
}

std::uint64_t DurableRpcServer::durable_watermark(std::size_t conn_idx) const {
  // Media view, not the coherent one: consumed() + recover() can count
  // entries whose bytes are still dirty in the LLC (SFlush's cache
  // mirror) or torn on media — durable only in appearance.
  return conns_.at(conn_idx)->log.durable_watermark();
}

sim::Task<> DurableRpcServer::recover_and_restart() {
  assert(!running_ && server_.rnic().alive());
  // A crash DURING recovery (replicated schedules do this) bumps
  // epoch_; this replay must then abandon instead of advancing the
  // consumed word while the node is powered off again.
  const std::uint64_t epoch = epoch_;
  // Replay committed-but-unconsumed entries, oldest first, without any
  // client involvement — the paper's headline recovery property.
  for (auto& conn : conns_) {
    conn->completer =
        std::make_unique<rdma::Completer>(server_.simulator(), *conn->scq);
    const auto entries = conn->log.recover();
    conn->completed_floor = conn->log.consumed();
    conn->next_seq = conn->completed_floor + entries.size() + 1;
    for (const auto& e : entries) {
      if (epoch != epoch_) co_return;
      if (replay_hook_) replay_hook_(conn->idx, e);
      co_await process_item(WorkItem{conn.get(), e, true});
    }
  }
  if (epoch != epoch_) co_return;
  running_ = true;
  for (auto& conn : conns_) {
    if (is_send_based(variant_)) {
      sim::spawn(conn_loop_send_based(*conn));
    } else {
      install_ring_watch(*conn);
      sim::spawn(conn_loop_write_based(*conn));
    }
  }
  for (unsigned i = 0; i < params_.server_workers; ++i) {
    sim::spawn(worker_loop());
  }
}

void DurableRpcServer::reconnect_client(DurableRpcClient& client) {
  Conn& conn = *conns_.at(client.conn_idx_);

  // The crash wiped the NIC's protection table: re-register.
  const LogLayout& relay = conn.log.layout();
  server_.rnic().register_mr(relay.base, relay.total_bytes(),
                             rnic::Access::kRemoteWrite |
                                 rnic::Access::kRemoteFlush);

  // Fresh QP pair (the old endpoints died with the crash).
  auto [client_qp, server_qp] = rdma::connect_pair(
      client.node_.rnic(), rnic::Transport::kRC, client.scq_, client.rcq_,
      server_.rnic(), rnic::Transport::kRC, *conn.scq, *conn.rcq);
  conn.qp = server_qp;
  conn.session = std::make_unique<rdma::QpSession>(server_.rnic(), *server_qp,
                                                   *conn.completer);
  // Completions that arrived while no dispatcher was attached (flush
  // ACKs already on the wire when the crash hit) belong to the dead
  // endpoint: drop them, and keep the wr-id space monotone so a stale
  // straggler can never match a post-recovery post.
  client.scq_.reset();
  auto fresh_completer =
      std::make_unique<rdma::Completer>(client.node_.simulator(), client.scq_);
  fresh_completer->advance_wr(client.completer_->next_wr());
  client.completer_ = std::move(fresh_completer);
  client.session_ = std::make_unique<rdma::QpSession>(client.node_.rnic(),
                                                      *client_qp,
                                                      *client.completer_);
  if (is_send_based(variant_)) {
    const std::uint64_t slot_bytes = conn.log.layout().slot_bytes();
    for (std::uint32_t i = 0; i < conn.msg_slots; ++i) {
      server_.rnic().post_recv(*conn.qp, conn.msg_base + i * slot_bytes,
                               slot_bytes, i);
    }
  }

  // Sequences the client sent but that never reached the log are gone;
  // treat them as consumed no-ops so the watermark stays contiguous.
  conn.next_seq = client.next_seq_;
  conn.completed_floor = client.next_seq_ - 1;
  conn.completed_oo.clear();
  store_u64(server_.mem(), conn.log.layout().consumed_addr(),
            conn.completed_floor);

  client.credits_released_ = conn.completed_floor;
  client.window_.reset(window_);
  client.aborted_ = false;
}

// ===================================================================
// Client
// ===================================================================

DurableRpcClient::DurableRpcClient(DurableRpcServer& server, Node& node,
                                   std::size_t conn_idx)
    : server_(server),
      node_(node),
      conn_idx_(conn_idx),
      scq_(node.simulator()),
      rcq_(node.simulator()),
      window_(node.simulator(), server.window_) {
  window_size_ = server.window_;
  const auto& p = server.params_;
  staging_slot_bytes_ = LogLayout{0, p.log_slots, p.max_payload}.slot_bytes();
  resp_slot_bytes_ = p.max_payload + 16;
  staging_base_ =
      node_.dram_alloc().alloc(window_size_ * staging_slot_bytes_, 256);
  notify_base_ = node_.dram_alloc().alloc(64, 64);
  resp_base_ = node_.dram_alloc().alloc(window_size_ * resp_slot_bytes_, 256);
}

std::string_view DurableRpcClient::name() const {
  return variant_name(server_.variant_);
}

std::uint64_t DurableRpcClient::consumed_seen() const {
  return load_u64(node_.mem(), notify_base_);
}

void DurableRpcClient::abort_pending() {
  aborted_ = true;
  // Wake read/persist waiters parked on memory watches: touching the
  // watched ranges fires their predicates, which observe aborted_.
  std::vector<std::byte> zeros(16, std::byte{0});
  node_.mem().cpu_write(notify_base_, zeros);
  std::vector<std::byte> ring_zeros(window_size_ * resp_slot_bytes_,
                                    std::byte{0});
  node_.mem().cpu_write(resp_base_, ring_zeros);
  // Wake verbs waiters (flush ACKs that will never come). The CQ
  // reset can race a completion already in flight to the dispatcher,
  // so fail the parked waiters directly as well.
  scq_.reset();
  if (completer_) completer_->fail_pending();
}

sim::Task<> DurableRpcClient::credit_pump() {
  for (;;) {
    co_await poll_until(node_, notify_base_, 8, [this] {
      return load_u64(node_.mem(), notify_base_) > credits_released_;
    });
    const std::uint64_t v = load_u64(node_.mem(), notify_base_);
    if (v > credits_released_) {
      window_.release(v - credits_released_);
      credits_released_ = v;
    }
  }
}

sim::Task<RpcResult> DurableRpcClient::call(const RpcRequest& req) {
  co_return co_await transmit_entry(req.op, req.obj_id, req.len, 1);
}

sim::Task<RpcResult> DurableRpcClient::call_batch(
    const std::vector<RpcRequest>& reqs) {
  // §4.3: one large transfer + one trailing Flush for the whole batch.
  if (reqs.empty()) co_return RpcResult{};
  co_return co_await transmit_entry(reqs.front().op, reqs.front().obj_id,
                                    reqs.front().len,
                                    static_cast<std::uint32_t>(reqs.size()));
}

sim::Task<RpcResult> DurableRpcClient::transmit_entry(RpcOp op,
                                                      std::uint64_t obj_id,
                                                      std::uint32_t len,
                                                      std::uint32_t batch) {
  auto& sim = node_.simulator();
  auto& tracer = server_.cluster_.tracer_of(node_.id());
  const auto track = static_cast<std::uint16_t>(node_.id());
  RpcResult res;
  res.issued_at = sim.now();
  if (aborted_) co_return res;

  const SimTime stall_t0 = sim.now();
  co_await window_.acquire();
  if (aborted_) {
    window_.release();
    co_return res;
  }
  if (sim.now() > stall_t0) {
    // §4.4 flow control: the window was full and the sender stalled.
    tracer.span(trace::Component::kFlowStall, next_seq_, stall_t0, sim.now(),
                track);
  }
  const SimTime append_t0 = sim.now();
  co_await node_.host().charge_post();
  if (aborted_) {
    // The crash landed while this coroutine was suspended in the host
    // charge: posting now would park it in a completer that the abort
    // already drained — nothing would wake it until recovery replaces
    // the session under its feet.
    window_.release();
    co_return res;
  }

  // -- No suspension between sequence assignment and the posts: the
  //    wire order must equal the sequence order.
  const std::uint64_t seq = next_seq_++;
  res.tag = seq;
  const std::uint32_t payload_len = op == RpcOp::kWrite ? len * batch : 0;
  const std::uint64_t resp_slot = (seq - 1) % window_size_;
  const auto image = encode_log_entry_image(node_.mem(), seq, op, obj_id,
                                            payload_len, resp_slot, batch,
                                            op == RpcOp::kRead ? len : 0);
  const std::uint64_t stage =
      staging_base_ + ((seq - 1) % window_size_) * staging_slot_bytes_;
  const std::uint64_t resp_addr = resp_base_ + resp_slot * resp_slot_bytes_;
  const std::uint64_t resp_len = op == RpcOp::kRead ? len : 0;
  if (op == RpcOp::kRead) {
    // Clear the commit word of the response slot before reuse.
    store_u64(node_.mem(), resp_addr + resp_len, 0);
  }
  node_.mem().cpu_write_payload(stage, image);

  const LogLayout& lay = server_.conns_[conn_idx_]->log.layout();
  const std::uint64_t slot = lay.slot_addr(seq);
  const std::uint64_t image_len = image.size();

  // Staging + post of the redo-log entry (all branches post without
  // suspending, so [append_t0, now] covers the whole append section).
  tracer.span(trace::Component::kLogAppend, seq, append_t0, sim.now(), track);
  const SimTime persist_t0 = sim.now();

  bool durable_ok = false;
  if (op == RpcOp::kRead) {
    // Reads need no persistence (§5.5: Flush primitives are only
    // needed for writes); ship the request and await the response.
    if (is_send_based(server_.variant_)) {
      session_->post_send_nowait(stage, image_len);
    } else {
      session_->post_write_nowait(stage, image_len, slot);
    }
    durable_ok = true;
  } else switch (server_.variant_) {
    case FlushVariant::kWFlush: {
      session_->post_write_nowait(stage, image_len, slot);
      const auto wc = co_await session_->wflush(slot, image_len);
      durable_ok = wc.has_value() && wc->status == rnic::WcStatus::kSuccess;
      break;
    }
    case FlushVariant::kSFlush: {
      session_->post_send_nowait(stage, image_len);
      const auto wc = co_await session_->sflush(slot, image_len);
      durable_ok = wc.has_value() && wc->status == rnic::WcStatus::kSuccess;
      break;
    }
    case FlushVariant::kWRFlush:
    case FlushVariant::kSRFlush: {
      if (is_send_based(server_.variant_)) {
        session_->post_send_nowait(stage, image_len);
      } else {
        session_->post_write_nowait(stage, image_len, slot);
      }
      co_await poll_until(node_, notify_base_ + 8, 8, [this, seq] {
        return aborted_ ||
               load_u64(node_.mem(), notify_base_ + 8) >= seq;
      });
      durable_ok = !aborted_;
      break;
    }
  }

  if (!durable_ok || aborted_) co_return res;  // res.ok == false
  res.durable_at = sim.now();
  if (op == RpcOp::kWrite) {
    // Post end -> remote durability point (T_B, Fig. 4): the span the
    // Flush primitive is responsible for.
    tracer.span(trace::Component::kDataPersist, seq, persist_t0,
                res.durable_at, track);
    // Remote persistence is visible: the RPC is complete for the
    // sender even though the server processes it asynchronously.
    if (ack_hook_) ack_hook_(seq, payload_len);
    res.completed_at = sim.now();
    res.ok = true;
    co_return res;
  }

  // Reads wait for the response payload (FIFO behind logged entries).
  co_await poll_until(node_, resp_addr + resp_len, 8, [this, resp_addr,
                                                       resp_len, seq] {
    return aborted_ || load_u64(node_.mem(), resp_addr + resp_len) == seq;
  });
  if (aborted_) co_return res;
  res.completed_at = sim.now();
  res.durable_at = 0;
  res.ok = true;
  co_return res;
}

}  // namespace prdma::core
