#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/simulator.hpp"
#include "sim/thread_pool.hpp"
#include "sim/time.hpp"

namespace prdma::sim {

/// How a PartitionedEngine maps nodes to event-queue partitions.
struct EngineConfig {
  /// Worker threads advancing the partitions. 1 keeps the engine on a
  /// single partition — bit-identical to a plain Simulator run.
  unsigned threads = 1;

  enum class Partitioning : std::uint8_t {
    /// threads <= 1 -> one partition (legacy-exact); otherwise one
    /// partition per node.
    kAuto,
    /// Force every node into partition 0 regardless of thread count.
    /// Used by workloads whose coroutines migrate between nodes (chain
    /// replication hosts hop clients on forwarder nodes), where
    /// conservative per-node partitioning cannot apply.
    kSingle,
    /// One partition per node even at threads == 1 (tests).
    kPerNode,
    /// Partition per topology rack via `partition_map` (node ->
    /// partition, dense ids): a ToR and its hosts share one shard, so
    /// the conservative lookahead derives from the *inter-rack* trunk
    /// latency instead of the shortest intra-rack cable — longer
    /// epochs, far fewer barriers. Applied at every thread count
    /// (including 1) so the layout — and therefore every merged-tie
    /// order — is identical across --engine-threads.
    kPerRack,
  };
  Partitioning partitioning = Partitioning::kAuto;

  /// Node -> partition for kPerRack (ignored otherwise). Must cover
  /// every node and use dense partition ids 0..P-1 (see
  /// net::rack_partition_map, which derives it from the topology).
  std::vector<std::size_t> partition_map;

  /// Adaptive epoch length (DESIGN.md §7.7): at every barrier the
  /// horizon of partition p extends to
  ///   H_p = min( min over active q != p of (e_q + L),  next + 2L )
  /// where e_q is q's earliest pending event and next = min e_q —
  /// instead of the static next + L. A pure function of the schedule,
  /// so runs stay byte-identical at any thread count; the 2L cap keeps
  /// every horizon sound across epochs (a lone active partition may
  /// otherwise race past replies routed through currently-idle
  /// partitions). Off -> every epoch is the static next + L window.
  bool adaptive_epochs = true;
};

/// Shard token of the worker thread currently executing simulation
/// events: the partition's Simulator*, or nullptr outside engine
/// phases (setup, teardown, plain serial runs). Layers that hand
/// resources between nodes (BufferPool recycling) use it to detect a
/// foreign-partition release.
[[nodiscard]] const void* current_engine_shard() noexcept;

namespace detail {
void set_current_engine_shard(const void* shard) noexcept;
}

/// Conservative-lookahead parallel discrete-event engine (DESIGN.md
/// §7.5): one Simulator shard per partition, advanced in epochs by a
/// worker pool. Every epoch executes events in [T, T+L) where T is the
/// global minimum pending timestamp and L the fabric lookahead (half
/// the minimum propagation over every cable — direct links *and*
/// topology ports, so multi-hop switched fabrics keep the bound from
/// their shortest trunk), then merges cross-partition
/// events at a barrier. Cross-partition schedules are routed through
/// per-(src,dst) outboxes and merged in (time arrival order is handled
/// by the destination heap; same-timestamp ties resolve in (src
/// partition, push index) order) — a pure function of the schedule, so
/// every multi-partition run is byte-identical at any thread count,
/// and noise-free runs (jitter sigma 0, no loss/load draws) over
/// direct-link fabrics are additionally byte-identical to the serial
/// engine. Noisy cells are deterministic but draw from per-link RNG
/// streams instead of the serial engine's shared stream, so their
/// serial output differs (DESIGN.md §7.5). Switched fabrics funnel
/// many nodes through shared ports, where merged-vs-local ties at one
/// timestamp order differently than the serial heap — run_micro pins
/// such cells to one fixed layout at every thread count instead
/// (per-rack when the topology has >= 2 racks, else per-node;
/// DESIGN.md §7.6/§7.7). Adaptive epochs (EngineConfig::
/// adaptive_epochs, DESIGN.md §7.7) lengthen each partition's phase-A
/// window beyond the static L whenever the other partitions' earliest
/// pending events allow it; merge order is canonicalized by
/// (timestamp, creation time, src, push index), so stats are identical
/// with the extension on or off.
///
/// With one partition the engine is exactly a Simulator: run() calls
/// shard(0).run() with no epoch machinery, no barriers and no atomics
/// on the hot path.
class PartitionedEngine {
 public:
  PartitionedEngine(std::size_t node_count, EngineConfig cfg);
  PartitionedEngine(const PartitionedEngine&) = delete;
  PartitionedEngine& operator=(const PartitionedEngine&) = delete;

  [[nodiscard]] std::size_t partitions() const { return shards_.size(); }
  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Node-to-partition mapping is the engine's only placement policy;
  /// entities without a node of their own map through a deterministic
  /// anchor node (fabric switches run on Topology::switch_owner's
  /// shard), so every event lands on the same shard at any thread
  /// count.
  [[nodiscard]] Simulator& shard(std::size_t p) { return *shards_[p]; }
  [[nodiscard]] Simulator& shard_of_node(std::size_t node) {
    return *shards_[part_of_[node]];
  }
  [[nodiscard]] std::size_t partition_of_node(std::size_t node) const {
    return part_of_[node];
  }

  /// Conservative lookahead window L in simulated ns. Derived from the
  /// fabric (half the minimum link propagation); must be >= 1 before a
  /// multi-partition run.
  void set_lookahead(SimTime l) { lookahead_ = l; }
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }

  /// Per-partition epoch hook, run by the partition's worker at every
  /// epoch barrier (phase B) and once after the run drains. Used to
  /// hand back cross-partition resources (payload-pool remote frees).
  /// Hooks must NOT schedule events (schedule_remote/schedule_at):
  /// termination is decided from the shard heaps alone, so a
  /// hook-scheduled event could be dropped or merged behind the
  /// destination's clock; run() asserts all outboxes are empty at
  /// termination to catch this.
  void set_epoch_hook(std::size_t partition, std::function<void()> fn);

  /// Routes a cross-partition schedule_at: called from `src`'s worker
  /// during phase A, merged into `dst`'s shard at the next barrier.
  /// Throws std::logic_error when `t` is below the current epoch
  /// horizon — a lookahead violation would break conservative order.
  void schedule_remote(std::size_t src, std::size_t dst, SimTime t,
                       InlineTask fn);

  /// Runs every shard to completion. Single partition: a plain
  /// Simulator::run(). Multiple partitions: the epoch loop, using
  /// `threads()` workers from an internal ThreadPool.
  void run();

  // ---- aggregate counters (sums over shards) ----

  [[nodiscard]] std::uint64_t events_executed() const;
  [[nodiscard]] std::uint64_t pool_allocations() const;
  /// Max shard clock — an upper bound, not the last event time (idle
  /// shards fast-forward to each epoch horizon).
  [[nodiscard]] SimTime max_now() const;

  /// Epoch barriers completed by the last run (0 for a single
  /// partition). Deterministic: a pure function of the schedule,
  /// identical at any thread count.
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  /// Wall-clock ns the workers spent inside epoch barriers during the
  /// last run, summed over workers. Telemetry only — nondeterministic,
  /// never part of a model-identity comparison.
  [[nodiscard]] std::uint64_t barrier_wall_ns() const {
    return barrier_wall_ns_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  void run_partitioned();
  void merge_outboxes_into(std::size_t dst);
  /// Moves every staged item with t < horizons_[p] into p's heap in
  /// canonical order. Called by p's owner worker before phase A.
  void flush_staged_into(std::size_t p);

  unsigned threads_;
  bool adaptive_;
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<std::size_t> part_of_;  ///< node -> partition
  /// Outbox (src * P + dst): filled single-producer by src's worker in
  /// phase A, drained by dst's worker in phase B; the epoch barriers
  /// order every access. `created` is the source shard clock at push —
  /// part of the canonical merge key, so same-timestamp ties order the
  /// same way no matter how adaptive horizons batch the epochs.
  struct OutItem {
    SimTime t;
    SimTime created;
    InlineTask fn;
  };
  struct Outbox {
    std::vector<OutItem> items;
  };
  std::vector<Outbox> out_;
  /// Per-destination inbound staging calendar. Outboxes drain into it
  /// at every barrier; items enter the destination heap only once the
  /// epoch horizon reaches them (flush_staged_into, at the top of
  /// phase A), sorted by the canonical key (t, created, src, arrival
  /// seq). The destination heap breaks same-timestamp ties by
  /// insertion order, and deferring insertion until the horizon
  /// requires it guarantees every same-timestamp group is inserted
  /// together in canonical order — a pure function of the schedule,
  /// independent of how adaptive horizons batch the epochs (two equal
  /// ties can otherwise arrive at *different* barriers under one epoch
  /// structure and the same barrier under another).
  struct StagedItem {
    SimTime t;
    SimTime created;
    std::uint32_t src;
    std::uint64_t seq;
    InlineTask fn;
  };
  struct Staging {
    std::vector<StagedItem> items;
    std::uint64_t next_seq = 0;
    [[nodiscard]] SimTime min_time() const;
  };
  std::vector<Staging> staged_;
  std::vector<std::function<void()>> hooks_;
  SimTime lookahead_ = 0;
  /// Per-partition phase-A horizons for the current epoch; written by
  /// the epoch barrier's last arriver, read by every worker after the
  /// barrier releases (the sense-reversing release/acquire pair orders
  /// the accesses, like local_min).
  std::vector<SimTime> horizons_;
  std::atomic<SimTime> horizon_{0};  ///< next + L: schedule_remote guard
  std::uint64_t epochs_ = 0;
  std::atomic<std::uint64_t> barrier_wall_ns_{0};
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace prdma::sim
