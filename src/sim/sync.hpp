#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace prdma::sim {

/// One-shot (resettable) event for task synchronization.
///
/// Waiters resume through the event queue at the signalling timestamp,
/// never inline, which keeps resume order deterministic and the native
/// stack flat. wait() resumes with `true` on set() and `false` on
/// abort() — the abort path models node crashes tearing down pending
/// operations without destroying the synchronization object itself.
class Event {
 public:
  explicit Event(Simulator& sim) noexcept : sim_(sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  [[nodiscard]] bool is_set() const noexcept { return set_; }

  void set() { fire(true); }
  void abort() { fire(false); }

  /// Re-arms an already fired event.
  void reset() noexcept { set_ = false; }

  [[nodiscard]] std::size_t waiter_count() const noexcept { return waiters_.size(); }

  class Awaiter {
   public:
    explicit Awaiter(Event& ev) noexcept : ev_(ev) {}
    bool await_ready() const noexcept { return ev_.set_; }
    void await_suspend(std::coroutine_handle<> h) {
      handle_ = h;
      ev_.waiters_.push_back(this);
    }
    bool await_resume() const noexcept { return ok_; }

   private:
    friend class Event;
    Event& ev_;
    std::coroutine_handle<> handle_{};
    bool ok_ = true;
  };

  [[nodiscard]] Awaiter wait() noexcept { return Awaiter{*this}; }

 private:
  void fire(bool ok) {
    if (ok) set_ = true;
    std::vector<Awaiter*> pending;
    pending.swap(waiters_);
    for (Awaiter* w : pending) {
      w->ok_ = ok;
      sim_.schedule(0, [h = w->handle_] { h.resume(); });
    }
  }

  Simulator& sim_;
  bool set_ = false;
  std::vector<Awaiter*> waiters_;
};

/// Unbounded FIFO channel between simulation tasks.
///
/// recv() yields std::nullopt once the channel is closed and drained
/// (or was reset while waiting). send() never blocks; backpressure in
/// the models is expressed explicitly (flow-control thresholds), not by
/// channel capacity.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) noexcept : sim_(sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void send(T v) {
    if (closed_) return;  // messages to a closed channel are dropped
    if (!waiters_.empty()) {
      RecvAwaiter* w = waiters_.front();
      waiters_.pop_front();
      w->slot_ = std::move(v);
      sim_.schedule(0, [h = w->handle_] { h.resume(); });
      return;
    }
    queue_.push_back(std::move(v));
  }

  /// Closes the channel: queued items remain receivable; once drained,
  /// recv() returns std::nullopt. Pending waiters wake with nullopt.
  void close() {
    closed_ = true;
    wake_all_empty();
  }

  /// Crash helper: drops queued items and wakes waiters with nullopt,
  /// then re-opens the channel for the post-restart epoch.
  void reset() {
    queue_.clear();
    wake_all_empty();
    closed_ = false;
  }

  [[nodiscard]] bool closed() const noexcept { return closed_; }
  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }

  std::optional<T> try_recv() {
    if (queue_.empty()) return std::nullopt;
    std::optional<T> v{std::move(queue_.front())};
    queue_.pop_front();
    return v;
  }

  class RecvAwaiter {
   public:
    explicit RecvAwaiter(Channel& ch) noexcept : ch_(ch) {}
    bool await_ready() const noexcept { return !ch_.queue_.empty() || ch_.closed_; }
    void await_suspend(std::coroutine_handle<> h) {
      handle_ = h;
      ch_.waiters_.push_back(this);
    }
    std::optional<T> await_resume() {
      if (slot_.has_value()) return std::move(slot_);
      return ch_.try_recv();
    }

   private:
    friend class Channel;
    Channel& ch_;
    std::coroutine_handle<> handle_{};
    std::optional<T> slot_;
  };

  [[nodiscard]] RecvAwaiter recv() noexcept { return RecvAwaiter{*this}; }

 private:
  void wake_all_empty() {
    std::deque<RecvAwaiter*> pending;
    pending.swap(waiters_);
    for (RecvAwaiter* w : pending) {
      sim_.schedule(0, [h = w->handle_] { h.resume(); });
    }
  }

  Simulator& sim_;
  bool closed_ = false;
  std::deque<T> queue_;
  std::deque<RecvAwaiter*> waiters_;
};

/// Counting semaphore for tasks; models bounded resources such as CPU
/// cores, DMA engines and flow-control windows.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::size_t initial) noexcept
      : sim_(sim), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  [[nodiscard]] std::size_t available() const noexcept { return count_; }
  [[nodiscard]] std::size_t waiting() const noexcept { return waiters_.size(); }

  void release(std::size_t n = 1) {
    while (n > 0 && !waiters_.empty()) {
      std::coroutine_handle<> h = waiters_.front();
      waiters_.pop_front();
      sim_.schedule(0, [h] { h.resume(); });
      --n;
    }
    count_ += n;
  }

  /// Fault-recovery helper: forces the available count. Tasks already
  /// waiting are served first (a crash can strand waiters whose
  /// credits died with the server).
  void reset(std::size_t count) {
    count_ = 0;
    release(count);
  }

  class Awaiter {
   public:
    explicit Awaiter(Semaphore& s) noexcept : sem_(s) {}
    bool await_ready() const noexcept {
      if (sem_.count_ > 0) {
        --sem_.count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { sem_.waiters_.push_back(h); }
    void await_resume() const noexcept {}

   private:
    Semaphore& sem_;
  };

  [[nodiscard]] Awaiter acquire() noexcept { return Awaiter{*this}; }

 private:
  Simulator& sim_;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// RAII guard pairing a Semaphore acquire with its release.
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore& s) noexcept : sem_(&s) {}
  SemaphoreGuard(SemaphoreGuard&& o) noexcept : sem_(std::exchange(o.sem_, nullptr)) {}
  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(SemaphoreGuard&&) = delete;
  ~SemaphoreGuard() {
    if (sem_ != nullptr) sem_->release();
  }

 private:
  Semaphore* sem_;
};

/// Join-point for a dynamic set of tasks (like Go's WaitGroup).
class WaitGroup {
 public:
  explicit WaitGroup(Simulator& sim) noexcept : sim_(sim), done_(sim) {}

  void add(std::size_t n = 1) noexcept { outstanding_ += n; }

  void done() {
    if (outstanding_ == 0) return;
    if (--outstanding_ == 0) {
      done_.set();
    }
  }

  /// Resolves once all add()ed tasks called done(). Resolves
  /// immediately when nothing is outstanding.
  Task<> wait() {
    if (outstanding_ > 0) {
      co_await done_.wait();
    } else {
      co_await delay(sim_, 0);
    }
  }

  [[nodiscard]] std::size_t outstanding() const noexcept { return outstanding_; }

 private:
  Simulator& sim_;
  Event done_;
  std::size_t outstanding_ = 0;
};

}  // namespace prdma::sim
