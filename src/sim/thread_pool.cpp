#include "sim/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace prdma::sim {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::enqueue(Job job) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  // One strip per worker, each pulling indices from a shared atomic
  // counter. The caller blocks until *every strip* has finished, so no
  // queued strip can outlive this stack frame's shared state.
  struct Shared {
    const std::function<void(std::size_t)>* fn;
    std::atomic<std::size_t> next{0};
    std::size_t n;
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t strips_done = 0;
    std::size_t strips = 0;
    std::exception_ptr error;
    std::size_t error_index = 0;
  };
  Shared shared;
  shared.fn = &fn;
  shared.n = n;
  shared.strips = std::min(n, workers_.size());

  for (std::size_t s = 0; s < shared.strips; ++s) {
    enqueue(Job([state = &shared] {
      for (;;) {
        const std::size_t i =
            state->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= state->n) break;
        try {
          (*state->fn)(i);
        } catch (...) {
          // Keep the failure from the lowest index so the exception the
          // caller sees is independent of worker interleaving.
          std::lock_guard lock(state->mu);
          if (!state->error || i < state->error_index) {
            state->error = std::current_exception();
            state->error_index = i;
          }
        }
      }
      std::lock_guard lock(state->mu);
      if (++state->strips_done == state->strips) state->done_cv.notify_all();
    }));
  }

  std::unique_lock lock(shared.mu);
  shared.done_cv.wait(lock,
                      [&shared] { return shared.strips_done == shared.strips; });
  if (shared.error) std::rethrow_exception(shared.error);
}

}  // namespace prdma::sim
