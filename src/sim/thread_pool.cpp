#include "sim/thread_pool.hpp"

#include <algorithm>

namespace prdma::sim {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futs.push_back(submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace prdma::sim
