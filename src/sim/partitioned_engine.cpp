#include "sim/partitioned_engine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace prdma::sim {

namespace {

thread_local const void* t_current_shard = nullptr;

/// Sense-reversing spin barrier. Workers spin a short budget before
/// yielding, so an oversubscribed host (CI runners, TSan builds) makes
/// progress instead of burning whole quanta.
class SpinBarrier {
 public:
  explicit SpinBarrier(int total) : total_(total) {}

  /// `local_sense` is per-thread per-barrier state (starts at 0).
  /// The last arriver runs `last_fn` before releasing the others.
  template <typename F>
  void arrive(int& local_sense, F&& last_fn) {
    local_sense ^= 1;
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == total_) {
      count_.store(0, std::memory_order_relaxed);
      last_fn();
      sense_.store(local_sense, std::memory_order_release);
    } else {
      int spins = 0;
      while (sense_.load(std::memory_order_acquire) != local_sense) {
        if (++spins > 128) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

 private:
  std::atomic<int> count_{0};
  std::atomic<int> sense_{0};
  int total_;
};

}  // namespace

const void* current_engine_shard() noexcept { return t_current_shard; }

namespace detail {
void set_current_engine_shard(const void* shard) noexcept {
  t_current_shard = shard;
}
}  // namespace detail

PartitionedEngine::PartitionedEngine(std::size_t node_count, EngineConfig cfg)
    : threads_(std::max(1u, cfg.threads)), adaptive_(cfg.adaptive_epochs) {
  const std::size_t nodes = std::max<std::size_t>(1, node_count);
  part_of_.resize(nodes);
  std::size_t partitions = 1;
  if (cfg.partitioning == EngineConfig::Partitioning::kPerRack) {
    if (cfg.partition_map.size() < nodes) {
      throw std::invalid_argument(
          "kPerRack requires a partition_map covering every node (" +
          std::to_string(cfg.partition_map.size()) + " entries for " +
          std::to_string(nodes) + " nodes)");
    }
    std::size_t max_part = 0;
    for (std::size_t n = 0; n < nodes; ++n) {
      part_of_[n] = cfg.partition_map[n];
      max_part = std::max(max_part, cfg.partition_map[n]);
    }
    partitions = max_part + 1;
    std::vector<char> seen(partitions, 0);
    for (std::size_t n = 0; n < nodes; ++n) seen[part_of_[n]] = 1;
    for (std::size_t p = 0; p < partitions; ++p) {
      if (!seen[p]) {
        throw std::invalid_argument(
            "kPerRack partition_map must use dense partition ids: id " +
            std::to_string(p) + " of " + std::to_string(partitions) +
            " is unused");
      }
    }
  } else {
    bool per_node = false;
    switch (cfg.partitioning) {
      case EngineConfig::Partitioning::kAuto:
        per_node = threads_ > 1;
        break;
      case EngineConfig::Partitioning::kSingle:
        per_node = false;
        break;
      case EngineConfig::Partitioning::kPerNode:
        per_node = true;
        break;
      case EngineConfig::Partitioning::kPerRack:
        break;  // handled above
    }
    partitions = per_node ? nodes : 1;
    for (std::size_t n = 0; n < nodes; ++n) part_of_[n] = per_node ? n : 0;
  }
  shards_.reserve(partitions);
  for (std::size_t p = 0; p < partitions; ++p) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  out_.resize(partitions * partitions);
  staged_.resize(partitions);
  hooks_.resize(partitions);
  horizons_.assign(partitions, 0);
}

void PartitionedEngine::set_epoch_hook(std::size_t partition,
                                       std::function<void()> fn) {
  hooks_[partition] = std::move(fn);
}

void PartitionedEngine::schedule_remote(std::size_t src, std::size_t dst,
                                        SimTime t, InlineTask fn) {
  const SimTime h = horizon_.load(std::memory_order_relaxed);
  if (t < h) {
    throw std::logic_error(
        "lookahead violation: cross-partition event at t=" + std::to_string(t) +
        " is below the epoch horizon " + std::to_string(h) +
        " (link propagation shorter than the conservative lookahead?)");
  }
  out_[src * shards_.size() + dst].items.push_back(
      OutItem{t, shards_[src]->now(), std::move(fn)});
}

SimTime PartitionedEngine::Staging::min_time() const {
  SimTime m = kNever;
  for (const StagedItem& it : items) m = std::min(m, it.t);
  return m;
}

void PartitionedEngine::merge_outboxes_into(std::size_t dst) {
  const std::size_t P = shards_.size();
  Staging& st = staged_[dst];
  for (std::size_t src = 0; src < P; ++src) {
    Outbox& box = out_[src * P + dst];
    for (OutItem& it : box.items) {
      st.items.push_back(StagedItem{it.t, it.created,
                                    static_cast<std::uint32_t>(src),
                                    st.next_seq++, std::move(it.fn)});
    }
    box.items.clear();
  }
}

void PartitionedEngine::flush_staged_into(std::size_t p) {
  Staging& st = staged_[p];
  if (st.items.empty()) return;
  const SimTime h = horizons_[p];
  // Keep not-yet-due items in front (their relative order is
  // irrelevant — every comparison uses the explicit canonical key).
  const auto mid =
      std::partition(st.items.begin(), st.items.end(),
                     [h](const StagedItem& it) { return it.t >= h; });
  if (mid == st.items.end()) return;
  // Equal (t, created, src) implies the same source epoch, so the
  // arrival seq is consistent across epoch structures; every earlier
  // key component is epoch-independent by construction.
  std::sort(mid, st.items.end(),
            [](const StagedItem& a, const StagedItem& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.created != b.created) return a.created < b.created;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (auto it = mid; it != st.items.end(); ++it) {
    shards_[p]->schedule_at(it->t, std::move(it->fn));
  }
  st.items.erase(mid, st.items.end());
}

void PartitionedEngine::run() {
  epochs_ = 0;
  barrier_wall_ns_.store(0, std::memory_order_relaxed);
  if (shards_.size() == 1) {
    shards_[0]->run();
    if (hooks_[0]) hooks_[0]();
    return;
  }
  run_partitioned();
}

void PartitionedEngine::run_partitioned() {
  const std::size_t P = shards_.size();
  if (lookahead_ < 1) {
    throw std::logic_error(
        "partitioned run requires a lookahead >= 1 ns (links with zero "
        "propagation delay cannot be partitioned conservatively)");
  }
  const auto T = static_cast<std::size_t>(std::min<unsigned>(
      threads_, static_cast<unsigned>(P)));
  if (!pool_ || pool_->size() < T) pool_ = std::make_unique<ThreadPool>(T);

  // Setup-phase sends (coroutines started eagerly before run) may have
  // parked cross-partition events already; stage them before computing
  // the first epoch so none lands behind a shard clock.
  for (std::size_t p = 0; p < P; ++p) merge_outboxes_into(p);

  const auto earliest_pending = [&](std::size_t p) {
    const SimTime heap_min =
        shards_[p]->pending() > 0 ? shards_[p]->next_event_time() : kNever;
    return std::min(heap_min, staged_[p].min_time());
  };

  std::vector<SimTime> local_min(P, kNever);
  for (std::size_t p = 0; p < P; ++p) local_min[p] = earliest_pending(p);

  // Horizons for the next epoch, from the per-partition earliest
  // pending times (DESIGN.md §7.7). Static mode: every partition stops
  // at next + L. Adaptive mode: partition p may run until the earliest
  // instant a cross-partition event could still reach it — one L past
  // the earliest *other* active partition — capped at next + 2L so the
  // bound stays sound across epochs (events routed through a partition
  // that is idle *this* epoch arrive at >= next + 2L, never earlier).
  const auto update_horizons = [&](SimTime next) {
    horizon_.store(next + lookahead_, std::memory_order_relaxed);
    if (!adaptive_) {
      for (std::size_t p = 0; p < P; ++p) horizons_[p] = next + lookahead_;
      return;
    }
    const SimTime cap = next + 2 * lookahead_;
    // Smallest and second-smallest pending times, so min over q != p
    // is O(1) per partition.
    SimTime m1 = kNever;
    SimTime m2 = kNever;
    std::size_t i1 = SIZE_MAX;
    for (std::size_t q = 0; q < P; ++q) {
      if (local_min[q] < m1) {
        m2 = m1;
        m1 = local_min[q];
        i1 = q;
      } else {
        m2 = std::min(m2, local_min[q]);
      }
    }
    for (std::size_t p = 0; p < P; ++p) {
      const SimTime others = p == i1 ? m2 : m1;
      horizons_[p] =
          others == kNever ? cap : std::min(others + lookahead_, cap);
    }
  };

  SimTime t0 = kNever;
  for (const SimTime m : local_min) t0 = std::min(t0, m);
  if (t0 == kNever) {
    for (std::size_t p = 0; p < P; ++p) {
      if (hooks_[p]) hooks_[p]();
    }
    return;
  }
  update_horizons(t0);

  SpinBarrier phase_a_done(static_cast<int>(T));
  SpinBarrier epoch_done(static_cast<int>(T));
  std::atomic<bool> done{false};
  std::atomic<bool> abort{false};
  std::mutex err_mu;
  std::exception_ptr err;
  std::size_t err_part = SIZE_MAX;

  const auto record_error = [&](std::size_t p) {
    std::lock_guard lock(err_mu);
    if (!err || p < err_part) {
      err = std::current_exception();
      err_part = p;
    }
    abort.store(true, std::memory_order_relaxed);
  };

  const auto worker = [&](std::size_t w) {
    int sense_a = 0;
    int sense_b = 0;
    std::uint64_t barrier_ns = 0;
    for (;;) {
      // Phase A: release due staged arrivals, then advance owned
      // partitions through [now, H_p).
      if (!abort.load(std::memory_order_relaxed)) {
        for (std::size_t p = w; p < P; p += T) {
          detail::set_current_engine_shard(shards_[p].get());
          try {
            flush_staged_into(p);
            shards_[p]->run_until(horizons_[p] - 1);
          } catch (...) {
            record_error(p);
          }
          detail::set_current_engine_shard(nullptr);
        }
      }
      const auto wait_a = std::chrono::steady_clock::now();
      phase_a_done.arrive(sense_a, [] {});
      barrier_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - wait_a)
              .count());
      // Phase B: merge inbound events, run epoch hooks, report the
      // local minimum for the next epoch's horizons.
      for (std::size_t p = w; p < P; p += T) {
        detail::set_current_engine_shard(shards_[p].get());
        try {
          merge_outboxes_into(p);
          if (hooks_[p]) hooks_[p]();
        } catch (...) {
          record_error(p);
        }
        local_min[p] = earliest_pending(p);
        detail::set_current_engine_shard(nullptr);
      }
      const auto wait_b = std::chrono::steady_clock::now();
      epoch_done.arrive(sense_b, [&] {
        ++epochs_;
        SimTime next = kNever;
        for (const SimTime m : local_min) next = std::min(next, m);
        if (next == kNever || abort.load(std::memory_order_relaxed)) {
          done.store(true, std::memory_order_relaxed);
        } else {
          update_horizons(next);
        }
      });
      barrier_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - wait_b)
              .count());
      if (done.load(std::memory_order_relaxed)) {
        barrier_wall_ns_.fetch_add(barrier_ns, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::future<void>> running;
  running.reserve(T);
  for (std::size_t w = 0; w < T; ++w) {
    running.push_back(pool_->submit([&worker, w] { worker(w); }));
  }
  for (auto& f : running) f.get();
  horizon_.store(0, std::memory_order_relaxed);
  if (err) std::rethrow_exception(err);
  // Termination only inspects shard heaps (local_min), so an epoch
  // hook that pushed into an outbox after its destination merged would
  // be silently dropped — hooks must not schedule events; fail loudly
  // if one did.
  for (const Outbox& box : out_) {
    if (!box.items.empty()) {
      throw std::logic_error(
          "partitioned run terminated with unmerged cross-partition "
          "events: epoch hooks must not call schedule_remote/schedule_at");
    }
  }
  // Staged items are part of every termination decision (local_min
  // counts them), so leftovers here mean the decision logic is broken.
  for (const Staging& st : staged_) {
    if (!st.items.empty()) {
      throw std::logic_error(
          "partitioned run terminated with staged cross-partition events");
    }
  }
}

std::uint64_t PartitionedEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->events_executed();
  return total;
}

std::uint64_t PartitionedEngine::pool_allocations() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->pool_allocations();
  return total;
}

SimTime PartitionedEngine::max_now() const {
  SimTime t = 0;
  for (const auto& s : shards_) t = std::max(t, s->now());
  return t;
}

}  // namespace prdma::sim
