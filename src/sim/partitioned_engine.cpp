#include "sim/partitioned_engine.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace prdma::sim {

namespace {

thread_local const void* t_current_shard = nullptr;

/// Sense-reversing spin barrier. Workers spin a short budget before
/// yielding, so an oversubscribed host (CI runners, TSan builds) makes
/// progress instead of burning whole quanta.
class SpinBarrier {
 public:
  explicit SpinBarrier(int total) : total_(total) {}

  /// `local_sense` is per-thread per-barrier state (starts at 0).
  /// The last arriver runs `last_fn` before releasing the others.
  template <typename F>
  void arrive(int& local_sense, F&& last_fn) {
    local_sense ^= 1;
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == total_) {
      count_.store(0, std::memory_order_relaxed);
      last_fn();
      sense_.store(local_sense, std::memory_order_release);
    } else {
      int spins = 0;
      while (sense_.load(std::memory_order_acquire) != local_sense) {
        if (++spins > 128) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

 private:
  std::atomic<int> count_{0};
  std::atomic<int> sense_{0};
  int total_;
};

}  // namespace

const void* current_engine_shard() noexcept { return t_current_shard; }

namespace detail {
void set_current_engine_shard(const void* shard) noexcept {
  t_current_shard = shard;
}
}  // namespace detail

PartitionedEngine::PartitionedEngine(std::size_t node_count, EngineConfig cfg)
    : threads_(std::max(1u, cfg.threads)) {
  bool per_node = false;
  switch (cfg.partitioning) {
    case EngineConfig::Partitioning::kAuto:
      per_node = threads_ > 1;
      break;
    case EngineConfig::Partitioning::kSingle:
      per_node = false;
      break;
    case EngineConfig::Partitioning::kPerNode:
      per_node = true;
      break;
  }
  const std::size_t partitions =
      per_node ? std::max<std::size_t>(1, node_count) : 1;
  shards_.reserve(partitions);
  for (std::size_t p = 0; p < partitions; ++p) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  part_of_.resize(std::max<std::size_t>(1, node_count));
  for (std::size_t n = 0; n < part_of_.size(); ++n) {
    part_of_[n] = per_node ? n : 0;
  }
  out_.resize(partitions * partitions);
  hooks_.resize(partitions);
}

void PartitionedEngine::set_epoch_hook(std::size_t partition,
                                       std::function<void()> fn) {
  hooks_[partition] = std::move(fn);
}

void PartitionedEngine::schedule_remote(std::size_t src, std::size_t dst,
                                        SimTime t, InlineTask fn) {
  const SimTime h = horizon_.load(std::memory_order_relaxed);
  if (t < h) {
    throw std::logic_error(
        "lookahead violation: cross-partition event at t=" + std::to_string(t) +
        " is below the epoch horizon " + std::to_string(h) +
        " (link propagation shorter than the conservative lookahead?)");
  }
  out_[src * shards_.size() + dst].items.emplace_back(t, std::move(fn));
}

void PartitionedEngine::merge_outboxes_into(std::size_t dst) {
  const std::size_t P = shards_.size();
  for (std::size_t src = 0; src < P; ++src) {
    Outbox& box = out_[src * P + dst];
    for (auto& [t, fn] : box.items) {
      shards_[dst]->schedule_at(t, std::move(fn));
    }
    box.items.clear();
  }
}

void PartitionedEngine::run() {
  if (shards_.size() == 1) {
    shards_[0]->run();
    if (hooks_[0]) hooks_[0]();
    return;
  }
  run_partitioned();
}

void PartitionedEngine::run_partitioned() {
  const std::size_t P = shards_.size();
  if (lookahead_ < 1) {
    throw std::logic_error(
        "partitioned run requires a lookahead >= 1 ns (links with zero "
        "propagation delay cannot be partitioned conservatively)");
  }
  const auto T = static_cast<std::size_t>(std::min<unsigned>(
      threads_, static_cast<unsigned>(P)));
  if (!pool_ || pool_->size() < T) pool_ = std::make_unique<ThreadPool>(T);

  // Setup-phase sends (coroutines started eagerly before run) may have
  // parked cross-partition events already; merge them before computing
  // the first epoch so none lands behind a shard clock.
  for (std::size_t p = 0; p < P; ++p) merge_outboxes_into(p);

  SimTime t0 = kNever;
  for (const auto& s : shards_) {
    if (s->pending() > 0) t0 = std::min(t0, s->next_event_time());
  }
  if (t0 == kNever) {
    for (std::size_t p = 0; p < P; ++p) {
      if (hooks_[p]) hooks_[p]();
    }
    return;
  }
  horizon_.store(t0 + lookahead_, std::memory_order_relaxed);

  SpinBarrier phase_a_done(static_cast<int>(T));
  SpinBarrier epoch_done(static_cast<int>(T));
  std::vector<SimTime> local_min(P, kNever);
  std::atomic<bool> done{false};
  std::atomic<bool> abort{false};
  std::mutex err_mu;
  std::exception_ptr err;
  std::size_t err_part = SIZE_MAX;

  const auto record_error = [&](std::size_t p) {
    std::lock_guard lock(err_mu);
    if (!err || p < err_part) {
      err = std::current_exception();
      err_part = p;
    }
    abort.store(true, std::memory_order_relaxed);
  };

  const auto worker = [&](std::size_t w) {
    int sense_a = 0;
    int sense_b = 0;
    for (;;) {
      const SimTime horizon = horizon_.load(std::memory_order_relaxed);
      // Phase A: advance owned partitions through [now, horizon).
      if (!abort.load(std::memory_order_relaxed)) {
        for (std::size_t p = w; p < P; p += T) {
          detail::set_current_engine_shard(shards_[p].get());
          try {
            shards_[p]->run_until(horizon - 1);
          } catch (...) {
            record_error(p);
          }
          detail::set_current_engine_shard(nullptr);
        }
      }
      phase_a_done.arrive(sense_a, [] {});
      // Phase B: merge inbound events, run epoch hooks, report the
      // local minimum for the next epoch's horizon.
      for (std::size_t p = w; p < P; p += T) {
        detail::set_current_engine_shard(shards_[p].get());
        try {
          merge_outboxes_into(p);
          if (hooks_[p]) hooks_[p]();
        } catch (...) {
          record_error(p);
        }
        local_min[p] =
            shards_[p]->pending() > 0 ? shards_[p]->next_event_time() : kNever;
        detail::set_current_engine_shard(nullptr);
      }
      epoch_done.arrive(sense_b, [&] {
        SimTime next = kNever;
        for (const SimTime m : local_min) next = std::min(next, m);
        if (next == kNever || abort.load(std::memory_order_relaxed)) {
          done.store(true, std::memory_order_relaxed);
        } else {
          horizon_.store(next + lookahead_, std::memory_order_relaxed);
        }
      });
      if (done.load(std::memory_order_relaxed)) return;
    }
  };

  std::vector<std::future<void>> running;
  running.reserve(T);
  for (std::size_t w = 0; w < T; ++w) {
    running.push_back(pool_->submit([&worker, w] { worker(w); }));
  }
  for (auto& f : running) f.get();
  horizon_.store(0, std::memory_order_relaxed);
  if (err) std::rethrow_exception(err);
  // Termination only inspects shard heaps (local_min), so an epoch
  // hook that pushed into an outbox after its destination merged would
  // be silently dropped — hooks must not schedule events; fail loudly
  // if one did.
  for (const Outbox& box : out_) {
    if (!box.items.empty()) {
      throw std::logic_error(
          "partitioned run terminated with unmerged cross-partition "
          "events: epoch hooks must not call schedule_remote/schedule_at");
    }
  }
}

std::uint64_t PartitionedEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->events_executed();
  return total;
}

std::uint64_t PartitionedEngine::pool_allocations() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->pool_allocations();
  return total;
}

SimTime PartitionedEngine::max_now() const {
  SimTime t = 0;
  for (const auto& s : shards_) t = std::max(t, s->now());
  return t;
}

}  // namespace prdma::sim
