#pragma once

#include <cstdio>
#include <string_view>

#include "sim/time.hpp"

namespace prdma::sim {

/// Trace verbosity for the simulation. Off by default: the hot path of
/// a benchmark run executes tens of millions of events.
enum class LogLevel : int { kOff = 0, kError = 1, kInfo = 2, kDebug = 3 };

class Log {
 public:
  static LogLevel& level() {
    static LogLevel lvl = LogLevel::kOff;
    return lvl;
  }

  static bool enabled(LogLevel lvl) {
    return static_cast<int>(lvl) <= static_cast<int>(level());
  }

  template <typename... Args>
  static void write(LogLevel lvl, SimTime now, const char* fmt, Args... args) {
    if (!enabled(lvl)) return;
    std::fprintf(stderr, "[%12.3fus] ", to_us(now));
    std::fprintf(stderr, fmt, args...);
    std::fputc('\n', stderr);
  }
};

}  // namespace prdma::sim
