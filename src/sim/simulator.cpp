#include "sim/simulator.hpp"

#include <cstdio>

namespace prdma::sim {

void Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;  // never schedule into the past
  heap_.push_back(Event{t, next_seq_++, std::move(fn)});
  sift_up(heap_.size() - 1);
}

void Simulator::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_[i].before(heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Simulator::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && heap_[l].before(heap_[smallest])) smallest = l;
    if (r < n && heap_[r].before(heap_[smallest])) smallest = r;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

Simulator::CrashHookId Simulator::add_crash_hook(std::function<void()> fn) {
  const CrashHookId id = next_crash_hook_++;
  crash_hooks_.push_back(CrashHook{id, std::move(fn)});
  return id;
}

void Simulator::remove_crash_hook(CrashHookId id) {
  std::erase_if(crash_hooks_,
                [id](const CrashHook& h) { return h.id == id; });
}

void Simulator::trigger_crash() {
  ++crashes_triggered_;
  // A hook may register/remove hooks (e.g. a restart re-arming); run
  // over a snapshot so iteration stays well-defined.
  std::vector<std::function<void()>> fns;
  fns.reserve(crash_hooks_.size());
  for (const CrashHook& h : crash_hooks_) fns.push_back(h.fn);
  for (auto& fn : fns) fn();
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  Event ev = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

void Simulator::run() {
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(SimTime t) {
  while (!stopped_ && !heap_.empty() && heap_.front().time <= t) {
    step();
  }
  if (now_ < t && !stopped_) now_ = t;
}

std::string format_time(SimTime t) {
  char buf[48];
  if (t < kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%lluns", static_cast<unsigned long long>(t));
  } else if (t < kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.2fus", to_us(t));
  } else if (t < kSecond) {
    std::snprintf(buf, sizeof buf, "%.2fms", to_ms(t));
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", to_s(t));
  }
  return buf;
}

}  // namespace prdma::sim
