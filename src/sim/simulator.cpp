#include "sim/simulator.hpp"

#include <cstdio>
#include <string>

namespace prdma::sim {

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t s = free_head_;
    free_head_ = slot(s).next_free;
    slot(s).next_free = kNoSlot;
    return s;
  }
  if (slab_size_ == slab_.size() * kSlabChunkSlots) {
    slab_.push_back(std::make_unique<Slot[]>(kSlabChunkSlots));
    ++pool_allocs_;
  }
  return static_cast<std::uint32_t>(slab_size_++);
}

void Simulator::release_slot(std::uint32_t s) {
  slot(s).fn.reset();
  slot(s).next_free = free_head_;
  free_head_ = s;
}

void Simulator::schedule_at(SimTime t, InlineTask fn) {
  const std::uint32_t s = acquire_slot();
  slot(s).fn = std::move(fn);
  push_entry(t, s);
}

void Simulator::push_entry(SimTime t, std::uint32_t slot) {
  if (t < now_) t = now_;  // never schedule into the past
  if (heap_.size() == heap_.capacity()) ++pool_allocs_;
  heap_.push_back(HeapEntry{t, next_seq_++, slot});
  sift_up(heap_.size() - 1);
}

// 4-ary hole-insertion heap: half the levels of a binary heap and one
// entry store per level instead of a swap — both matter when sifting is
// the hot loop. (time, seq) is a total order, so the pop sequence is
// identical for any heap arity; determinism does not depend on layout.

void Simulator::sift_up(std::size_t i) {
  const HeapEntry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!entry.before(heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void Simulator::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapEntry entry = heap_[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    // Pull the likely next level in while this one is compared.
    if (4 * first + 1 < n) {
      __builtin_prefetch(static_cast<const void*>(&heap_[4 * first + 1]));
    }
    std::size_t smallest = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (heap_[c].before(heap_[smallest])) smallest = c;
    }
    if (!heap_[smallest].before(entry)) break;
    heap_[i] = heap_[smallest];
    i = smallest;
  }
  heap_[i] = entry;
}

Simulator::CrashHookId Simulator::add_crash_hook(std::function<void()> fn) {
  const CrashHookId id = next_crash_hook_++;
  crash_hooks_.push_back(CrashHook{id, std::move(fn)});
  return id;
}

void Simulator::remove_crash_hook(CrashHookId id) {
  std::erase_if(crash_hooks_,
                [id](const CrashHook& h) { return h.id == id; });
}

void Simulator::trigger_crash() {
  ++crashes_triggered_;
  // A hook may register/remove hooks (e.g. a restart re-arming); run
  // over a snapshot so iteration stays well-defined.
  std::vector<std::function<void()>> fns;
  fns.reserve(crash_hooks_.size());
  for (const CrashHook& h : crash_hooks_) fns.push_back(h.fn);
  for (auto& fn : fns) fn();
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_.front();
  // Start pulling the task's slot into cache while the sift below runs;
  // the slab is large enough that this fetch otherwise stalls invoke.
  __builtin_prefetch(static_cast<const void*>(&slot(top.slot)));
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  now_ = top.time;
  ++executed_;
  // Invoke in place — the chunked slab keeps the slot's address stable
  // even when the callback schedules enough new events to grow the
  // slab. The slot is recycled right after, so steady state holds the
  // high-water mark of pending events plus one.
  slot(top.slot).fn.consume();
  release_slot(top.slot);
  return true;
}

void Simulator::run() {
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(SimTime t) {
  while (!stopped_ && !heap_.empty() && heap_.front().time <= t) {
    step();
  }
  if (now_ < t && !stopped_) now_ = t;
}

std::string format_time(SimTime t) {
  char buf[48];
  if (t < kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%lluns", static_cast<unsigned long long>(t));
  } else if (t < kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.2fus", to_us(t));
  } else if (t < kSecond) {
    std::snprintf(buf, sizeof buf, "%.2fms", to_ms(t));
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", to_s(t));
  }
  return buf;
}

}  // namespace prdma::sim
