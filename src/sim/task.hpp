#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "sim/simulator.hpp"

namespace prdma::sim {

/// Lazy coroutine task used to express simulated protocol flows.
///
/// A Task<T> does not run until it is either co_awaited by another task
/// (which chains the awaiter as its continuation, symmetric-transfer
/// style) or handed to spawn() to run as a detached top-level process.
/// Exceptions thrown inside the coroutine propagate to the awaiter.
///
/// Tasks are single-owner move-only handles: the handle owns the frame
/// and destroys it when the Task goes out of scope after completion.
template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) const noexcept {
      auto& cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() const noexcept { return {}; }
  FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T, typename Promise>
struct TaskAwaiter {
  std::coroutine_handle<Promise> handle;

  bool await_ready() const noexcept { return !handle || handle.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) const noexcept {
    handle.promise().continuation = cont;
    return handle;  // start the child coroutine now
  }
  T await_resume() const {
    if (handle.promise().exception) {
      std::rethrow_exception(handle.promise().exception);
    }
    if constexpr (!std::is_void_v<T>) {
      return std::move(*handle.promise().value_ptr());
    }
  }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    alignas(T) unsigned char storage[sizeof(T)];
    bool has_value = false;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U = T>
    void return_value(U&& v) {
      ::new (static_cast<void*>(storage)) T(std::forward<U>(v));
      has_value = true;
    }
    T* value_ptr() { return std::launder(reinterpret_cast<T*>(storage)); }
    ~promise_type() {
      if (has_value) value_ptr()->~T();
    }
  };

  Task() noexcept = default;
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }
  [[nodiscard]] bool done() const noexcept { return !handle_ || handle_.done(); }

  auto operator co_await() const& noexcept {
    return detail::TaskAwaiter<T, promise_type>{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_{};
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() const noexcept {}
  };

  Task() noexcept = default;
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }
  [[nodiscard]] bool done() const noexcept { return !handle_ || handle_.done(); }

  auto operator co_await() const& noexcept {
    return detail::TaskAwaiter<void, promise_type>{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_{};
};

namespace detail {

/// Self-destroying top-level coroutine used to run detached tasks.
struct Detached {
  struct promise_type {
    Detached get_return_object() const noexcept { return {}; }
    std::suspend_never initial_suspend() const noexcept { return {}; }
    std::suspend_never final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    void unhandled_exception() const { std::terminate(); }
  };
};

inline Detached spawn_impl(Task<> t) { co_await t; }

}  // namespace detail

/// Runs `t` as a detached simulation process. The coroutine frame (and
/// the Task's ownership of it) lives inside an internal wrapper frame
/// that self-destroys on completion. Unhandled exceptions terminate —
/// detached processes must handle their own failures.
inline void spawn(Task<> t) { detail::spawn_impl(std::move(t)); }

/// Awaitable that suspends the current task for `d` simulated time.
/// A zero delay still round-trips through the event queue, acting as a
/// deterministic yield point.
class DelayAwaiter {
 public:
  DelayAwaiter(Simulator& sim, SimTime d) noexcept : sim_(sim), delay_(d) {}
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    sim_.schedule(delay_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Simulator& sim_;
  SimTime delay_;
};

inline DelayAwaiter delay(Simulator& sim, SimTime d) { return {sim, d}; }

}  // namespace prdma::sim
