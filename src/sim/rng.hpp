#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace prdma::sim {

/// Deterministic random source for one simulation.
///
/// A single Rng instance is threaded through every stochastic model in
/// a run (jitter, workload keys, failures); the seed is a benchmark
/// flag, so runs are fully reproducible. Never share an Rng between
/// host threads — parallel sweeps give each simulation its own.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Derives an independent child stream (e.g. one per client).
  [[nodiscard]] Rng fork() { return Rng(next_u64() ^ 0xD1B54A32D192ED03ull); }

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Exponential with the given mean (>0).
  double exponential(double mean) {
    assert(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Log-normal multiplicative jitter with median 1.0 and shape sigma;
  /// used to give software paths a realistic latency tail.
  double lognormal_jitter(double sigma) {
    if (sigma <= 0.0) return 1.0;
    return std::lognormal_distribution<double>(0.0, sigma)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipfian key-popularity generator (Gray et al., as used by YCSB).
///
/// Generates values in [0, n) where rank-0 items are the most popular.
/// theta=0.99 matches the paper's "zipfian distribution (99% skewness)".
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta) {
    assert(n > 0);
    zetan_ = zeta(n_, theta_);
    const double zeta2 = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  std::uint64_t next(Rng& rng) const {
    const double u = rng.uniform01();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

  [[nodiscard]] std::uint64_t range() const { return n_; }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
};

/// "Latest" distribution used by YCSB workload D: skews towards the
/// most recently inserted record.
class LatestGenerator {
 public:
  explicit LatestGenerator(std::uint64_t n, double theta = 0.99)
      : zipf_(n, theta), max_(n) {}

  /// Records that a new item was inserted (extends the key space).
  void grow() { ++max_; }

  std::uint64_t next(Rng& rng) const {
    // Rank-0 of the zipfian maps to the newest key.
    const std::uint64_t off = zipf_.next(rng) % max_;
    return max_ - 1 - off;
  }

  [[nodiscard]] std::uint64_t size() const { return max_; }

 private:
  ZipfianGenerator zipf_;
  std::uint64_t max_;
};

}  // namespace prdma::sim
