#pragma once

#include <cstdint>
#include <string>

namespace prdma::sim {

/// Simulated time in nanoseconds since simulation start.
///
/// All latency/bandwidth model parameters and all measurements in this
/// project are expressed in SimTime ticks (1 tick == 1 ns). 64 bits of
/// nanoseconds cover ~584 years of simulated time, far beyond any run.
using SimTime = std::uint64_t;

/// Signed difference between two SimTime points.
using SimDuration = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

namespace literals {

constexpr SimTime operator""_ns(unsigned long long v) { return v * kNanosecond; }
constexpr SimTime operator""_us(unsigned long long v) { return v * kMicrosecond; }
constexpr SimTime operator""_ms(unsigned long long v) { return v * kMillisecond; }
constexpr SimTime operator""_s(unsigned long long v) { return v * kSecond; }

}  // namespace literals

/// Converts a simulated time to fractional microseconds (for reporting).
constexpr double to_us(SimTime t) { return static_cast<double>(t) / 1e3; }

/// Converts a simulated time to fractional milliseconds (for reporting).
constexpr double to_ms(SimTime t) { return static_cast<double>(t) / 1e6; }

/// Converts a simulated time to fractional seconds (for reporting).
constexpr double to_s(SimTime t) { return static_cast<double>(t) / 1e9; }

/// Renders a simulated time with an adaptive unit ("12.3us", "4.5ms", ...).
std::string format_time(SimTime t);

/// Time taken to move `bytes` at `bytes_per_sec`, rounded up to >= 1 ns
/// for any non-zero transfer so that serialization is never free.
constexpr SimTime transfer_time(std::uint64_t bytes, double bytes_per_sec) {
  if (bytes == 0 || bytes_per_sec <= 0.0) return 0;
  const double ns = static_cast<double>(bytes) * 1e9 / bytes_per_sec;
  const auto t = static_cast<SimTime>(ns);
  return t == 0 ? 1 : t;
}

}  // namespace prdma::sim
