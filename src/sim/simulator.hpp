#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace prdma::sim {

/// Deterministic single-threaded discrete-event simulator.
///
/// Events scheduled for the same timestamp execute in scheduling order
/// (FIFO via a monotonically increasing sequence number), so a run is a
/// pure function of the initial schedule and the RNG seed. This property
/// is load-bearing: every benchmark in bench/ is reproducible bit-for-bit.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Only advances inside run()/step().
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at now() + delay.
  void schedule(SimTime delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` to run at absolute time `t` (clamped to now()).
  void schedule_at(SimTime t, std::function<void()> fn);

  /// Executes the next pending event, if any. Returns false when idle.
  bool step();

  /// Runs until the event queue drains or stop() is called.
  void run();

  /// Runs until simulated time would exceed `t` (events at exactly `t`
  /// still execute) or the queue drains. Advances now() to `t` even if
  /// the queue drained earlier.
  void run_until(SimTime t);

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Clears the stop flag so the simulation can be resumed.
  void clear_stop() { stopped_ = false; }

  // ---- crash hooks (fault injection) ----
  //
  // A crash hook is a callback the fault machinery registers to model a
  // power failure: the explorer (src/check/) schedules trigger_crash()
  // at an arbitrary simulated nanosecond and every registered hook runs
  // — in registration order — at that exact instant, mid-protocol if
  // need be. Hooks stay registered across crashes (a run may inject
  // several) and are removed explicitly.

  using CrashHookId = std::uint64_t;

  /// Registers `fn` to run on every trigger_crash(). Returns an id for
  /// remove_crash_hook().
  CrashHookId add_crash_hook(std::function<void()> fn);

  void remove_crash_hook(CrashHookId id);

  /// Fires every registered crash hook now, in registration order.
  void trigger_crash();

  /// Schedules trigger_crash() at absolute simulated time `t` — the
  /// entry point for nanosecond-precise crash schedules.
  void schedule_crash_at(SimTime t) {
    schedule_at(t, [this] { trigger_crash(); });
  }

  /// Number of trigger_crash() invocations since construction.
  [[nodiscard]] std::uint64_t crashes_triggered() const {
    return crashes_triggered_;
  }

  [[nodiscard]] std::size_t crash_hook_count() const {
    return crash_hooks_.size();
  }

  /// Number of events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending.
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Timestamp of the next pending event; only valid when pending() > 0.
  [[nodiscard]] SimTime next_event_time() const { return heap_.front().time; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;

    [[nodiscard]] bool before(const Event& o) const {
      return time != o.time ? time < o.time : seq < o.seq;
    }
  };

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  struct CrashHook {
    CrashHookId id;
    std::function<void()> fn;
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  CrashHookId next_crash_hook_ = 1;
  std::uint64_t crashes_triggered_ = 0;
  std::vector<CrashHook> crash_hooks_;
  // Hand-rolled binary min-heap: std::priority_queue's const top() blocks
  // moving the callable out, and events are pure move-only traffic here.
  std::vector<Event> heap_;
};

}  // namespace prdma::sim
