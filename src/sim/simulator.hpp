#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/time.hpp"

namespace prdma::sim {

/// Deterministic single-threaded discrete-event simulator.
///
/// Events scheduled for the same timestamp execute in scheduling order
/// (FIFO via a monotonically increasing sequence number), so a run is a
/// pure function of the initial schedule and the RNG seed. This property
/// is load-bearing: every benchmark in bench/ is reproducible bit-for-bit.
///
/// Hot-path layout: callables are move-only InlineTasks (no per-event
/// heap allocation for captures within the inline budget) parked in a
/// slab of recycled slots, while the priority queue orders 24-byte
/// (time, seq, slot) entries. Once the slab and heap vectors reach
/// their high-water marks, steady-state scheduling performs zero
/// allocations — measured by bench/engine_perf and pinned by sim_test.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Only advances inside run()/step().
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at now() + delay.
  template <typename F>
  void schedule(SimTime delay, F&& fn) {
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules `fn` to run at absolute time `t` (clamped to now()).
  /// The capture is constructed directly inside a recycled slab slot —
  /// no intermediate InlineTask moves on the hot path.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineTask>>>
  void schedule_at(SimTime t, F&& fn) {
    const std::uint32_t s = acquire_slot();
    slot(s).fn.emplace(std::forward<F>(fn));
    push_entry(t, s);
  }

  /// Overload for a pre-built task (move-assigned into the slot).
  void schedule_at(SimTime t, InlineTask fn);

  /// Executes the next pending event, if any. Returns false when idle.
  bool step();

  /// Runs until the event queue drains or stop() is called.
  void run();

  /// Runs until simulated time would exceed `t` (events at exactly `t`
  /// still execute) or the queue drains. Advances now() to `t` even if
  /// the queue drained earlier.
  void run_until(SimTime t);

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Clears the stop flag so the simulation can be resumed.
  void clear_stop() { stopped_ = false; }

  // ---- crash hooks (fault injection) ----
  //
  // A crash hook is a callback the fault machinery registers to model a
  // power failure: the explorer (src/check/) schedules trigger_crash()
  // at an arbitrary simulated nanosecond and every registered hook runs
  // — in registration order — at that exact instant, mid-protocol if
  // need be. Hooks stay registered across crashes (a run may inject
  // several) and are removed explicitly. Registration is rare and the
  // snapshot in trigger_crash() needs copies, so hooks stay
  // std::function rather than InlineTask.

  using CrashHookId = std::uint64_t;

  /// Registers `fn` to run on every trigger_crash(). Returns an id for
  /// remove_crash_hook().
  CrashHookId add_crash_hook(std::function<void()> fn);

  void remove_crash_hook(CrashHookId id);

  /// Fires every registered crash hook now, in registration order.
  void trigger_crash();

  /// Schedules trigger_crash() at absolute simulated time `t` — the
  /// entry point for nanosecond-precise crash schedules.
  void schedule_crash_at(SimTime t) {
    schedule_at(t, [this] { trigger_crash(); });
  }

  /// Number of trigger_crash() invocations since construction.
  [[nodiscard]] std::uint64_t crashes_triggered() const {
    return crashes_triggered_;
  }

  [[nodiscard]] std::size_t crash_hook_count() const {
    return crash_hooks_.size();
  }

  /// Number of events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending.
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Timestamp of the next pending event. Calling this with
  /// pending() == 0 is a contract violation (asserts in debug builds).
  [[nodiscard]] SimTime next_event_time() const {
    assert(!heap_.empty() && "next_event_time() requires pending() > 0");
    return heap_.front().time;
  }

  /// Times the event-storage vectors (slot slab / heap) had to grow.
  /// Flat after warm-up: the free-list recycles slots, so a steady
  /// workload schedules forever without touching the allocator.
  [[nodiscard]] std::uint64_t pool_allocations() const { return pool_allocs_; }

  /// Event slots currently owned by the slab (high-water mark of
  /// concurrently pending events, plus the one executing).
  [[nodiscard]] std::size_t slab_slots() const { return slab_size_; }

 private:
  static constexpr std::uint32_t kNoSlot = UINT32_MAX;
  /// Slab chunk geometry: fixed-size chunks give every slot a stable
  /// address, so step() can invoke a task in place while the callback
  /// grows the slab underneath it.
  static constexpr std::size_t kSlabChunkShift = 8;
  static constexpr std::size_t kSlabChunkSlots = std::size_t{1}
                                                << kSlabChunkShift;

  /// One recycled event slot. `next_free` threads the free-list when
  /// the slot is vacant.
  struct Slot {
    InlineTask fn;
    std::uint32_t next_free = kNoSlot;
  };

  /// Compact heap entry: ordering data only, so sift operations move
  /// 24 bytes instead of whole events.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;

    [[nodiscard]] bool before(const HeapEntry& o) const {
      return time != o.time ? time < o.time : seq < o.seq;
    }
  };

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  /// Links an occupied slot into the queue at time `t` (clamped to now()).
  void push_entry(SimTime t, std::uint32_t slot);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  [[nodiscard]] Slot& slot(std::uint32_t i) {
    return slab_[i >> kSlabChunkShift][i & (kSlabChunkSlots - 1)];
  }

  struct CrashHook {
    CrashHookId id;
    std::function<void()> fn;
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  CrashHookId next_crash_hook_ = 1;
  std::uint64_t crashes_triggered_ = 0;
  std::uint64_t pool_allocs_ = 0;
  std::vector<CrashHook> crash_hooks_;
  std::vector<std::unique_ptr<Slot[]>> slab_;
  std::size_t slab_size_ = 0;  ///< slots handed out across all chunks
  std::uint32_t free_head_ = kNoSlot;
  // Hand-rolled 4-ary min-heap: std::priority_queue's const top() blocks
  // moving entries out, and (time, seq) FIFO needs the explicit tie-break.
  // Arity does not affect the pop order — the comparator is total.
  std::vector<HeapEntry> heap_;
};

}  // namespace prdma::sim
