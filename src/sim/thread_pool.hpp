#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace prdma::sim {

/// Fixed-size worker pool used to run *independent simulations* in
/// parallel (benchmark sweep points, multi-seed replicas).
///
/// The simulator itself is strictly single-threaded; parallelism is
/// applied only across whole runs so results stay deterministic
/// regardless of host scheduling (DESIGN.md §7.1).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a callable; the future resolves with its result.
  template <typename F, typename R = std::invoke_result_t<F>>
  std::future<R> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n), blocking until every call finished.
  /// Exceptions from any call propagate (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace prdma::sim
