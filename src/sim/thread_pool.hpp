#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/inline_function.hpp"

namespace prdma::sim {

/// Fixed-size worker pool used to run *independent simulations* in
/// parallel (benchmark sweep points, multi-seed replicas).
///
/// The simulator itself is strictly single-threaded; parallelism is
/// applied only across whole runs so results stay deterministic
/// regardless of host scheduling (DESIGN.md §7.1).
class ThreadPool {
 public:
  /// Queued unit of work. Move-only so a packaged_task can live in the
  /// job directly — submit() used to wrap it in a shared_ptr purely to
  /// make the closure copyable for std::function, paying two heap
  /// allocations per job.
  using Job = InlineFunction<void(), 56>;

  explicit ThreadPool(std::size_t threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a callable; the future resolves with its result.
  template <typename F, typename R = std::invoke_result_t<F>>
  std::future<R> submit(F&& fn) {
    std::packaged_task<R()> task(std::forward<F>(fn));
    std::future<R> fut = task.get_future();
    enqueue(Job([t = std::move(task)]() mutable { t(); }));
    return fut;
  }

  /// Runs fn(i) for i in [0, n), blocking until every call finished.
  /// Every index runs even if some throw; afterwards the exception from
  /// the *lowest-index* failing call is rethrown, so the propagated
  /// error does not depend on worker scheduling.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void enqueue(Job job);
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace prdma::sim
