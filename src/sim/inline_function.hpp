#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace prdma::sim {

namespace detail {

/// Process-wide count of InlineFunction heap fallbacks (captures larger
/// than the inline capacity). Atomic: independent simulations run on
/// SweepRunner worker threads. The engine's steady-state contract is
/// that this never moves while events execute — pinned by sim_test and
/// measured by bench/engine_perf.
inline std::atomic<std::uint64_t> g_inline_fn_heap_allocs{0};

}  // namespace detail

/// Total InlineFunction heap-fallback allocations since process start.
inline std::uint64_t inline_fn_heap_allocs() {
  return detail::g_inline_fn_heap_allocs.load(std::memory_order_relaxed);
}

/// Move-only callable with small-buffer-optimised storage, the engine's
/// replacement for std::function on every per-event path.
///
/// Captures up to `Capacity` bytes live inline — scheduling such a
/// callable performs zero heap allocations. Larger captures fall back
/// to the heap (counted, see inline_fn_heap_allocs()) so correctness
/// never depends on a capture fitting; only performance does. Unlike
/// std::function the wrapper is move-only, so move-only captures
/// (unique_ptr, packaged_task) work directly.
template <typename Sig, std::size_t Capacity>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  static constexpr std::size_t kCapacity = Capacity;
  static constexpr std::size_t kAlign = alignof(std::max_align_t);
  static_assert(Capacity >= sizeof(void*), "capacity below pointer size");

  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-*)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-*): drop-in for lambdas
    init(std::forward<F>(fn));
  }

  /// Constructs the callable in place, replacing any held one. The
  /// scheduling hot path uses this to build captures directly inside a
  /// slab slot — one construction per event, no intermediate moves.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  void emplace(F&& fn) {
    reset();
    init(std::forward<F>(fn));
  }

  InlineFunction(InlineFunction&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) ops_->relocate(buf_, o.buf_);
    o.ops_ = nullptr;
  }

  InlineFunction& operator=(InlineFunction&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

  /// Invokes the callable and destroys it through a single indirection,
  /// leaving *this empty — the engine's per-event epilogue (every event
  /// runs exactly once, so invoke and destroy always pair up).
  R consume(Args... args) {
    const Ops* ops = ops_;
    ops_ = nullptr;
    return ops->invoke_destroy(buf_, std::forward<Args>(args)...);
  }

  /// True when the held callable lives in the inline buffer (testing).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_storage;
  }

 private:
  template <typename D>
  static constexpr bool fits_inline = sizeof(D) <= Capacity &&
                                      alignof(D) <= kAlign &&
                                      std::is_nothrow_move_constructible_v<D>;

  template <typename F, typename D = std::decay_t<F>>
  void init(F&& fn) {
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      detail::g_inline_fn_heap_allocs.fetch_add(1, std::memory_order_relaxed);
      ops_ = &kHeapOps<D>;
    }
  }

  struct Ops {
    R (*invoke)(void*, Args&&...);
    /// Invokes, then destroys the callable (see consume()).
    R (*invoke_destroy)(void*, Args&&...);
    /// Move-constructs the callable at dst from src, destroys src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <typename D>
  static D* object(void* buf) noexcept {
    return std::launder(reinterpret_cast<D*>(buf));
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* buf, Args&&... args) -> R {
        return (*object<D>(buf))(std::forward<Args>(args)...);
      },
      [](void* buf, Args&&... args) -> R {
        D* d = object<D>(buf);
        if constexpr (std::is_void_v<R>) {
          (*d)(std::forward<Args>(args)...);
          d->~D();
        } else {
          R r = (*d)(std::forward<Args>(args)...);
          d->~D();
          return r;
        }
      },
      [](void* dst, void* src) noexcept {
        D* s = object<D>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* buf) noexcept { object<D>(buf)->~D(); },
      true,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* buf, Args&&... args) -> R {
        return (**object<D*>(buf))(std::forward<Args>(args)...);
      },
      [](void* buf, Args&&... args) -> R {
        D* p = *object<D*>(buf);
        if constexpr (std::is_void_v<R>) {
          (*p)(std::forward<Args>(args)...);
          delete p;
        } else {
          R r = (*p)(std::forward<Args>(args)...);
          delete p;
          return r;
        }
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*object<D*>(src));
      },
      [](void* buf) noexcept { delete *object<D*>(buf); },
      false,
  };

  const Ops* ops_ = nullptr;
  alignas(kAlign) unsigned char buf_[Capacity];
};

/// Inline budget for simulator events. Sized to the largest hot-path
/// capture in the tree: the RNIC DMA-completion continuation — `this`,
/// epoch, address/offset/length bookkeeping, a PayloadRef and a nested
/// DMA-done InlineFunction (~192 B with padding). sim_test pins the
/// zero-allocation property end-to-end through a full micro cell, so a
/// capture outgrowing this budget fails a test instead of silently
/// reintroducing a per-event malloc.
inline constexpr std::size_t kEventInlineBytes = 232;

/// The simulator's event callable: one scheduled unit of work.
using InlineTask = InlineFunction<void(), kEventInlineBytes>;

}  // namespace prdma::sim
