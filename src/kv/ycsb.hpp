#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/rpc.hpp"
#include "rpcs/registry.hpp"
#include "sim/rng.hpp"
#include "stats/histogram.hpp"

namespace prdma::kv {

/// The six standard YCSB core workloads (§5.1 of the paper):
///   A: 50% update / 50% read, zipfian
///   B: 95% read / 5% update, zipfian
///   C: 100% read, zipfian
///   D: 95% read / 5% insert, "latest" distribution
///   E: 95% scan / 5% insert, zipfian
///   F: 50% read / 50% read-modify-write, zipfian
enum class Workload : std::uint8_t { kA, kB, kC, kD, kE, kF };

std::string_view workload_name(Workload w);

/// One logical KV operation produced by the generator.
struct KvOp {
  enum class Kind : std::uint8_t { kRead, kUpdate, kInsert, kScan, kRmw };
  Kind kind = Kind::kRead;
  std::uint64_t key = 0;
  std::uint32_t scan_len = 0;  ///< records touched by a scan
};

std::string_view kind_name(KvOp::Kind k);

/// Workload generator: produces the operation stream of one YCSB
/// workload over a growing key space.
class YcsbGenerator {
 public:
  YcsbGenerator(Workload w, std::uint64_t records, std::uint64_t seed,
                double zipf_theta = 0.99, std::uint32_t max_scan = 20);

  KvOp next();

  [[nodiscard]] std::uint64_t key_space() const { return records_; }
  [[nodiscard]] Workload workload() const { return workload_; }

 private:
  std::uint64_t pick_key();

  Workload workload_;
  std::uint64_t records_;
  sim::Rng rng_;
  sim::ZipfianGenerator zipf_;
  sim::LatestGenerator latest_;
  std::uint32_t max_scan_;
};

/// Configuration of one YCSB run (§5.1: 50 K objects, 8 B keys, 4 KB
/// values, 300 K ops; benches scale the op count down by default).
struct YcsbConfig {
  Workload workload = Workload::kA;
  std::uint64_t records = 50'000;
  std::uint32_t value_size = 4096;
  std::uint64_t ops = 8'000;
  std::uint64_t seed = 1;
  std::uint32_t max_scan = 20;
  /// Fabric shape (default point-to-point; --topology).
  net::TopologyConfig topology;
};

/// Outcome of one YCSB run against one RPC system.
struct YcsbResult {
  stats::LatencyHistogram latency;   ///< per-KV-op latency (scans count once)
  std::uint64_t ops_completed = 0;
  std::uint64_t rpcs_issued = 0;
  sim::SimTime duration = 0;

  [[nodiscard]] double avg_us() const { return latency.mean() / 1e3; }
};

/// Runs one YCSB workload over the given RPC system: the client keeps
/// the KV index locally (paper §5.1) and reaches values in the remote
/// PM through the RPC layer. A scan of n records issues n consecutive
/// reads; a read-modify-write issues read + write.
YcsbResult run_ycsb(rpcs::System system, const YcsbConfig& cfg);

}  // namespace prdma::kv
