#include "kv/ycsb.hpp"

#include <algorithm>

#include "bench_util/micro.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace prdma::kv {

using core::RpcOp;
using core::RpcRequest;
using sim::Task;

std::string_view workload_name(Workload w) {
  switch (w) {
    case Workload::kA: return "A";
    case Workload::kB: return "B";
    case Workload::kC: return "C";
    case Workload::kD: return "D";
    case Workload::kE: return "E";
    case Workload::kF: return "F";
  }
  return "?";
}

std::string_view kind_name(KvOp::Kind k) {
  switch (k) {
    case KvOp::Kind::kRead: return "read";
    case KvOp::Kind::kUpdate: return "update";
    case KvOp::Kind::kInsert: return "insert";
    case KvOp::Kind::kScan: return "scan";
    case KvOp::Kind::kRmw: return "rmw";
  }
  return "?";
}

YcsbGenerator::YcsbGenerator(Workload w, std::uint64_t records,
                             std::uint64_t seed, double zipf_theta,
                             std::uint32_t max_scan)
    : workload_(w),
      records_(records),
      rng_(seed),
      zipf_(records, zipf_theta),
      latest_(records, zipf_theta),
      max_scan_(max_scan) {}

std::uint64_t YcsbGenerator::pick_key() {
  if (workload_ == Workload::kD) return latest_.next(rng_);
  return zipf_.next(rng_) % records_;
}

KvOp YcsbGenerator::next() {
  KvOp op;
  const double p = rng_.uniform01();
  switch (workload_) {
    case Workload::kA:
      op.kind = p < 0.5 ? KvOp::Kind::kUpdate : KvOp::Kind::kRead;
      break;
    case Workload::kB:
      op.kind = p < 0.05 ? KvOp::Kind::kUpdate : KvOp::Kind::kRead;
      break;
    case Workload::kC:
      op.kind = KvOp::Kind::kRead;
      break;
    case Workload::kD:
      op.kind = p < 0.05 ? KvOp::Kind::kInsert : KvOp::Kind::kRead;
      break;
    case Workload::kE:
      op.kind = p < 0.05 ? KvOp::Kind::kInsert : KvOp::Kind::kScan;
      break;
    case Workload::kF:
      op.kind = p < 0.5 ? KvOp::Kind::kRmw : KvOp::Kind::kRead;
      break;
  }
  if (op.kind == KvOp::Kind::kInsert) {
    op.key = records_++;
    latest_.grow();
  } else {
    op.key = pick_key();
  }
  if (op.kind == KvOp::Kind::kScan) {
    op.scan_len = static_cast<std::uint32_t>(rng_.uniform(1, max_scan_));
  }
  return op;
}

YcsbResult run_ycsb(rpcs::System system, const YcsbConfig& cfg) {
  // Reuse the micro-bench parameter derivation: same memory sizing and
  // calibration, with the KV value size as the object size.
  bench::MicroConfig mc;
  mc.objects = cfg.records * 2;  // headroom for inserts (D/E)
  mc.object_size = cfg.value_size;
  mc.seed = cfg.seed;
  mc.topology = cfg.topology;
  const core::ModelParams params = bench::params_for(mc);

  core::Cluster cluster(params, 2);
  const std::size_t clients[] = {1};
  auto dep = rpcs::make_deployment(cluster, system, 0, clients, params);

  YcsbResult result;
  bool finished = false;

  auto driver = [](core::RpcClient& client, YcsbConfig config,
                   YcsbResult& out, bool& done) -> Task<> {
    YcsbGenerator gen(config.workload, config.records, config.seed);
    auto& histogram = out.latency;
    for (std::uint64_t i = 0; i < config.ops; ++i) {
      const KvOp op = gen.next();
      const sim::SimTime start_issue = 0;
      (void)start_issue;
      sim::SimTime t0 = 0;
      sim::SimTime t1 = 0;
      switch (op.kind) {
        case KvOp::Kind::kRead: {
          const auto r = co_await client.call(
              RpcRequest{RpcOp::kRead, op.key, config.value_size});
          t0 = r.issued_at;
          t1 = r.completed_at;
          out.rpcs_issued += 1;
          break;
        }
        case KvOp::Kind::kUpdate:
        case KvOp::Kind::kInsert: {
          const auto r = co_await client.call(
              RpcRequest{RpcOp::kWrite, op.key, config.value_size});
          t0 = r.issued_at;
          t1 = r.completed_at;
          out.rpcs_issued += 1;
          break;
        }
        case KvOp::Kind::kScan: {
          // Range query: consecutive keys, sequential reads.
          for (std::uint32_t k = 0; k < op.scan_len; ++k) {
            const auto r = co_await client.call(RpcRequest{
                RpcOp::kRead, op.key + k, config.value_size});
            if (k == 0) t0 = r.issued_at;
            t1 = r.completed_at;
            ++out.rpcs_issued;
          }
          break;
        }
        case KvOp::Kind::kRmw: {
          const auto r0 = co_await client.call(
              RpcRequest{RpcOp::kRead, op.key, config.value_size});
          const auto r1 = co_await client.call(
              RpcRequest{RpcOp::kWrite, op.key, config.value_size});
          t0 = r0.issued_at;
          t1 = r1.completed_at;
          out.rpcs_issued += 2;
          break;
        }
      }
      if (t1 > t0) {
        histogram.record(t1 - t0);
        ++out.ops_completed;
        out.duration = t1;  // completion time of the last finished op
      }
    }
    done = true;
  };

  sim::spawn(driver(*dep.clients[0], cfg, result, finished));
  cluster.sim().run();
  return result;
}

}  // namespace prdma::kv
