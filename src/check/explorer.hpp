#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "core/durable_rpc.hpp"
#include "net/faults.hpp"
#include "sim/time.hpp"

namespace prdma::check {

/// Workload + model knobs shared by every schedule of one exploration.
struct ExplorerConfig {
  core::FlushVariant variant = core::FlushVariant::kWFlush;
  std::uint64_t seed = 1;
  std::uint64_t ops = 48;              ///< write operations to drive
  std::uint32_t window = 8;            ///< outstanding requests
  std::uint32_t value_size = 4096;
  std::uint32_t random_schedules = 32;
  /// Cap on distinct protocol-phase timestamps turned into targeted
  /// schedules (each is probed at t-1, t, t+1).
  std::uint32_t max_boundary_points = 16;
  /// FAULT-INJECTION MUTANT (RnicParams::ack_before_persist): the
  /// server RNIC acknowledges WFlush before its DMA drained. The
  /// explorer must find a schedule that proves the resulting data loss.
  bool ack_before_persist = false;
  bool heavy_processing = false;
  sim::SimTime restart_delay = 1 * sim::kMillisecond;
  sim::SimTime retransmit_interval = 100 * sim::kMillisecond;
  /// Uniform packet-loss probability on the client-server cable
  /// (degraded-fabric exploration, DESIGN.md §7.8). Schedules stay a
  /// pure function of (cfg, s): loss draws replay identically.
  double loss_probability = 0.0;
  /// Deterministic network-fault schedule installed into the fabric of
  /// every schedule (link flaps, partitions, loss bursts). Combine
  /// with crash instants to probe crash-during-retransmit windows; use
  /// with_net_faults() for the canned families.
  net::FaultPlan faults;
  /// Worker threads for independent schedules (0 = hardware
  /// concurrency). Every schedule is a pure function of (cfg, s), so
  /// the report is byte-identical at any jobs value; only wall-clock
  /// changes (DESIGN.md §7.1).
  std::size_t jobs = 1;
};

/// One point in crash-schedule space: with this config, crash the
/// server at exactly `crash_at` simulated nanoseconds (0 = never).
/// Together with ExplorerConfig this is a complete, re-runnable
/// reproducer.
struct Schedule {
  std::uint64_t seed = 1;
  sim::SimTime crash_at = 0;
  std::uint64_t ops = 48;
};

struct ScheduleResult {
  Schedule schedule;
  bool crash_fired = false;
  std::uint64_t ops_completed = 0;
  std::uint64_t resends = 0;
  std::uint64_t acks = 0;
  std::uint64_t replays = 0;
  sim::SimTime end_time = 0;
  std::vector<Violation> violations;

  [[nodiscard]] bool failed() const { return !violations.empty(); }
};

struct ExplorerReport {
  std::uint64_t schedules_run = 0;
  std::uint64_t schedules_failed = 0;
  sim::SimTime clean_end = 0;                 ///< crash-free run length
  std::vector<sim::SimTime> boundary_points;  ///< targeted timestamps
  std::optional<ScheduleResult> first_failure;
  /// Shrunken minimal reproducer of the first failure (fewest ops that
  /// still violate an invariant at the same crash instant).
  std::optional<ScheduleResult> minimal;
  /// "seed=<s> crash_at=<t>ns ops=<n>" — feed to parse_reproducer() /
  /// run_schedule() to replay the minimal failure.
  std::string reproducer;
};

/// Runs ONE crash schedule deterministically: builds a fresh cluster +
/// deployment of cfg.variant, drives cfg-many pipelined writes, crashes
/// the server node at s.crash_at (torn DMA and all), recovers, and
/// audits with a DurabilityOracle. Identical (cfg, s) inputs give a
/// bit-identical result. When `boundaries` is non-null the client's
/// QpSession phase transitions and the redo log's trace points are
/// recorded into it (timestamps).
ScheduleResult run_schedule(const ExplorerConfig& cfg, const Schedule& s,
                            std::vector<sim::SimTime>* boundaries = nullptr);

/// Full exploration: one traced dry run to harvest protocol-phase
/// boundary timestamps, targeted schedules at each boundary (t-1, t,
/// t+1), then cfg.random_schedules seeded-random crash instants. The
/// first failing schedule is shrunk to a minimal reproducer.
ExplorerReport explore(const ExplorerConfig& cfg);

/// Canned degraded-fabric schedule families (DESIGN.md §7.8). Each
/// overlays a deterministic FaultPlan on the exploration so the crash
/// instants the explorer probes land inside the degraded window:
///  * kCrashDuringRetransmit — a loss/corruption burst covers most of
///    the run, so crashes interleave with go-back-N replays;
///  * kFlapDuringRecovery    — the client-server cable flaps over the
///    window where post-crash recovery traffic flows;
///  * kPartitionThenHeal     — the client is partitioned away for a
///    stretch of the run, then the partition heals.
enum class NetFaultFamily {
  kCrashDuringRetransmit,
  kFlapDuringRecovery,
  kPartitionThenHeal,
};

[[nodiscard]] const char* net_fault_family_name(NetFaultFamily family);

/// Derives a faulted ExplorerConfig from `cfg`: dry-runs one clean
/// schedule to size the windows, shrinks the RC timer so lost packets
/// recover inside the run, and installs the family's FaultPlan.
/// Deterministic: same (cfg, family) in, same config out.
[[nodiscard]] ExplorerConfig with_net_faults(ExplorerConfig cfg,
                                             NetFaultFamily family);

/// Formats / parses the re-runnable reproducer line.
[[nodiscard]] std::string format_reproducer(const Schedule& s);
[[nodiscard]] std::optional<Schedule> parse_reproducer(const std::string& line);

}  // namespace prdma::check
