#include "check/cluster_oracle.hpp"

#include <sstream>

namespace prdma::check {

ClusterOracle::ClusterOracle(repl::ReplicaSet& set,
                             std::vector<repl::ReplicatedClient*> clients)
    : set_(set), clients_(std::move(clients)) {
  for (std::size_t r = 0; r < set_.replica_count(); ++r) {
    oracles_.push_back(std::make_unique<DurabilityOracle>(set_.server(r)));
    for (repl::ReplicatedClient* c : clients_) {
      oracles_[r]->attach_client(c->hop(r));
    }
  }
  set_.add_crash_observer([this](std::size_t r) { on_replica_crash(r); });
  set_.add_recovery_observer(
      [this](std::size_t r) { oracles_[r]->after_recovery(); });
}

bool ClusterOracle::settled_on(std::size_t q, std::size_t conn,
                               std::uint64_t seq, std::uint32_t len) const {
  if (seq == 0) return false;  // hop still in flight: not on this media
  if (seq <= set_.server(q).log(conn).consumed_persisted()) {
    // Applied to the object store and durably consumed. Ring reuse is
    // safe here: flow control keeps live seqs within log_slots of the
    // consumed word, so an overwritten slot's seq is always below it.
    return true;
  }
  return seq <= oracles_[q]->media_watermark(conn) &&
         oracles_[q]->media_entry_exact(conn, seq, len);
}

void ClusterOracle::on_replica_crash(std::size_t r) {
  oracles_[r]->on_crash();

  bool any_up = false;
  for (std::size_t q = 0; q < set_.replica_count(); ++q) {
    any_up = any_up || set_.is_up(q);
  }
  for (std::size_t k = 0; k < clients_.size(); ++k) {
    const std::size_t conn = clients_[k]->conn_index();
    for (const auto& [txn, rec] : clients_[k]->txns()) {
      if (!rec.acked) continue;
      const std::uint64_t key = (static_cast<std::uint64_t>(k) << 48) | txn;
      if (flagged_.contains(key)) continue;
      ++audited_;
      bool on_survivor = false;
      bool anywhere = false;
      for (std::size_t q = 0; q < set_.replica_count(); ++q) {
        const bool present = settled_on(q, conn, rec.seq_on[q],
                                        rec.payload_len);
        anywhere = anywhere || present;
        if (set_.is_up(q)) on_survivor = on_survivor || present;
      }
      if (any_up ? on_survivor : anywhere) continue;

      flagged_.insert(key);
      std::ostringstream os;
      os << "txn " << txn << " (client " << k << ", acked at " << rec.acked_at
         << "ns) unrecoverable after crash of replica " << r << ": seqs [";
      for (std::size_t q = 0; q < rec.seq_on.size(); ++q) {
        os << (q ? "," : "") << rec.seq_on[q];
      }
      os << "] " << (any_up ? "on no surviving replica" : "on no replica");
      Violation v;
      v.kind = any_up ? ViolationKind::kReplicaLost : ViolationKind::kTxnLost;
      v.conn = k;
      v.seq = txn;
      v.at = set_.cluster().sim().now();
      v.detail = os.str();
      cluster_violations_.push_back(std::move(v));
    }
  }
}

std::vector<Violation> ClusterOracle::violations() const {
  std::vector<Violation> out = cluster_violations_;
  for (const auto& o : oracles_) {
    out.insert(out.end(), o->violations().begin(), o->violations().end());
  }
  return out;
}

bool ClusterOracle::ok() const {
  if (!cluster_violations_.empty()) return false;
  for (const auto& o : oracles_) {
    if (!o->ok()) return false;
  }
  return true;
}

std::uint64_t ClusterOracle::acks_recorded() const {
  std::uint64_t n = 0;
  for (const auto& o : oracles_) n += o->acks_recorded();
  return n;
}

std::uint64_t ClusterOracle::replays_observed() const {
  std::uint64_t n = 0;
  for (const auto& o : oracles_) n += o->replays_observed();
  return n;
}

std::string ClusterOracle::report() const {
  std::ostringstream os;
  for (const Violation& v : violations()) {
    os << violation_name(v.kind) << " conn=" << v.conn << " seq=" << v.seq
       << " at=" << v.at << "ns: " << v.detail << "\n";
  }
  return os.str();
}

}  // namespace prdma::check
