#include "check/oracle.hpp"

#include <cstring>
#include <sstream>

#include "core/wire.hpp"

namespace prdma::check {

using core::LogEntryView;
using core::RedoLog;

DurabilityOracle::DurabilityOracle(core::DurableRpcServer& server)
    : server_(server) {
  server_.set_replay_hook([this](std::size_t conn, const LogEntryView& e) {
    on_replay(conn, e);
  });
}

void DurabilityOracle::attach_client(core::DurableRpcClient& client) {
  const std::size_t conn = client.conn_index();
  if (conn >= conns_.size()) conns_.resize(conn + 1);
  client.set_ack_hook([this, conn](std::uint64_t seq, std::uint32_t len) {
    record_ack(conn, seq, len);
  });
}

void DurabilityOracle::flag(ViolationKind kind, std::size_t conn,
                            std::uint64_t seq, std::string detail) {
  Violation v;
  v.kind = kind;
  v.conn = conn;
  v.seq = seq;
  v.at = server_.node().simulator().now();
  v.detail = std::move(detail);
  violations_.push_back(std::move(v));
}

void DurabilityOracle::record_ack(std::size_t conn, std::uint64_t seq,
                                  std::uint32_t len) {
  ++acks_;
  auto& state = conns_.at(conn);
  state.acked[seq] = AckRecord{len, server_.node().simulator().now()};
  observe_watermark();
}

std::uint64_t DurabilityOracle::independent_scan(std::size_t conn) const {
  const RedoLog& log = server_.log(conn);
  const auto& mem = server_.node().mem();
  const std::uint64_t from = log.consumed_persisted();
  std::uint64_t mark = from;
  for (std::uint64_t seq = from + 1; seq <= from + log.layout().slots; ++seq) {
    const auto e = log.peek_persisted(seq);
    if (!e.has_value()) break;
    // Recompute the checksum from media payload bytes; do not trust the
    // stored checksum word alone (both could be stale together only if
    // the whole entry is stale, which the commit word check rules out).
    std::byte sum_raw[8];
    mem.persisted_read(log.layout().slot_addr(seq) + 16, sum_raw);
    std::uint64_t stored = 0;
    std::memcpy(&stored, sum_raw, 8);
    std::vector<std::byte> payload(e->payload_len);
    mem.persisted_read(e->payload_addr, payload);
    if (core::fnv1a(payload) != stored) break;
    mark = seq;
  }
  return mark;
}

bool DurabilityOracle::media_payload_exact(std::size_t conn, std::uint64_t seq,
                                           std::uint32_t len) const {
  const RedoLog& log = server_.log(conn);
  const auto e = log.peek_persisted(seq);
  if (!e.has_value() || e->payload_len != len) return false;
  std::vector<std::byte> media(len);
  server_.node().mem().persisted_read(e->payload_addr, media);
  return media == core::deterministic_payload(seq, len);
}

void DurabilityOracle::observe_watermark() {
  ++samples_;
  for (std::size_t conn = 0; conn < conns_.size(); ++conn) {
    auto& state = conns_[conn];
    const std::uint64_t claimed = server_.durable_watermark(conn);
    if (claimed < state.last_watermark) {
      std::ostringstream os;
      os << "watermark went " << state.last_watermark << " -> " << claimed;
      flag(ViolationKind::kWatermarkRegressed, conn, claimed, os.str());
    }
    const std::uint64_t physical = independent_scan(conn);
    if (claimed > physical) {
      std::ostringstream os;
      os << "claimed " << claimed << " but media scan reaches only "
         << physical;
      flag(ViolationKind::kWatermarkOverclaim, conn, claimed, os.str());
    }
    state.last_watermark = std::max(state.last_watermark, claimed);
  }
}

void DurabilityOracle::on_crash() {
  observe_watermark();
  for (std::size_t conn = 0; conn < conns_.size(); ++conn) {
    auto& state = conns_[conn];
    const RedoLog& log = server_.log(conn);
    state.crashed = true;
    state.replayed.clear();
    state.consumed_at_crash = log.consumed_persisted();
    state.watermark_at_crash = independent_scan(conn);

    for (const auto& [seq, rec] : state.acked) {
      if (seq <= state.consumed_at_crash) continue;  // applied + consumed
      if (seq > state.watermark_at_crash) {
        std::ostringstream os;
        os << "acked at t=" << rec.acked_at << "ns but recovery chain ends at "
           << state.watermark_at_crash << " (consumed "
           << state.consumed_at_crash << ")";
        flag(ViolationKind::kAckedLost, conn, seq, os.str());
        continue;
      }
      if (!media_payload_exact(conn, seq, rec.payload_len)) {
        flag(ViolationKind::kAckedCorrupt, conn, seq,
             "media payload differs from the acknowledged bytes");
      }
    }
  }
}

void DurabilityOracle::on_replay(std::size_t conn, const LogEntryView& e) {
  ++replays_;
  if (conn >= conns_.size()) conns_.resize(conn + 1);
  auto& state = conns_[conn];
  state.replayed.insert(e.seq);

  const RedoLog& log = server_.log(conn);
  // Invariant (b): recovery must never re-execute torn bytes. Validate
  // against the media (post-crash the coherent view coincides, but the
  // oracle does not rely on that).
  std::byte sum_raw[8];
  server_.node().mem().persisted_read(log.layout().slot_addr(e.seq) + 16,
                                      sum_raw);
  std::uint64_t stored = 0;
  std::memcpy(&stored, sum_raw, 8);
  std::vector<std::byte> payload(e.payload_len);
  server_.node().mem().persisted_read(e.payload_addr, payload);
  if (core::fnv1a(payload) != stored) {
    flag(ViolationKind::kTornReplayed, conn, e.seq,
         "replayed entry fails its media checksum");
  }
}

void DurabilityOracle::after_recovery() {
  observe_watermark();
  for (std::size_t conn = 0; conn < conns_.size(); ++conn) {
    auto& state = conns_[conn];
    if (!state.crashed) continue;
    for (const auto& [seq, rec] : state.acked) {
      if (seq <= state.consumed_at_crash) continue;
      if (seq > state.watermark_at_crash) continue;  // flagged in on_crash
      if (!state.replayed.contains(seq)) {
        std::ostringstream os;
        os << "within the recoverable chain (<= " << state.watermark_at_crash
           << ") but recovery skipped it";
        flag(ViolationKind::kAckedLost, conn, seq, os.str());
      }
    }
    // Every recorded ACK is now settled: at or below the crash
    // watermark it was replay-audited above, beyond it it was flagged
    // lost in on_crash. Drop them so a later crash in the same run does
    // not re-audit entries whose ring slots were legitimately reused.
    state.acked.clear();
    state.crashed = false;
  }
}

std::string DurabilityOracle::report() const {
  std::ostringstream os;
  for (const auto& v : violations_) {
    os << violation_name(v.kind) << " conn=" << v.conn << " seq=" << v.seq
       << " t=" << v.at << "ns: " << v.detail << "\n";
  }
  return os.str();
}

}  // namespace prdma::check
