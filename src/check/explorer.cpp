#include "check/explorer.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "rpcs/registry.hpp"
#include "sim/rng.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace prdma::check {

using core::RpcOp;
using core::RpcRequest;
using core::RpcResult;
using sim::SimTime;
using sim::Task;

namespace {

/// Shared state between the write drivers and the recovery coroutine.
struct Harness {
  std::uint64_t remaining = 0;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t resends = 0;
  std::uint64_t object_count = 1;
  std::uint32_t value_size = 0;
  std::uint64_t durable_watermark = 0;  ///< media snapshot at the crash
  sim::Event* up = nullptr;
};

Task<> write_driver(core::DurableRpcClient& client, Harness& h,
                    sim::WaitGroup& wg) {
  for (;;) {
    if (h.remaining == 0) break;
    --h.remaining;

    RpcRequest req;
    req.op = RpcOp::kWrite;
    req.obj_id = h.issued++ % h.object_count;
    req.len = h.value_size;

    RpcResult res = co_await client.call(req);
    while (!res.ok) {
      if (!h.up->is_set()) {
        (void)co_await h.up->wait();
      }
      if (res.tag != 0 && res.tag <= h.durable_watermark) {
        // In the log before the lights went out: the server replayed it
        // during recovery, nothing to re-send (§4.2).
        res.ok = true;
        break;
      }
      ++h.resends;
      res = co_await client.call(req);
    }
    ++h.completed;
  }
  wg.done();
}

/// Waits for the crash (signalled from the simulator crash hook), then
/// walks the server through restart + log replay and reopens the gate.
Task<> recovery_loop(core::Cluster& cluster, core::DurableRpcServer& server,
                     std::vector<core::DurableRpcClient*> clients,
                     DurabilityOracle& oracle, Harness& h,
                     sim::Event& crashed, SimTime restart_delay) {
  if (!co_await crashed.wait()) co_return;
  co_await sim::delay(cluster.sim(), restart_delay);
  cluster.node(0).restart();
  co_await server.recover_and_restart();
  for (auto* c : clients) server.reconnect_client(*c);
  oracle.after_recovery();
  h.up->set();
}

}  // namespace

ScheduleResult run_schedule(const ExplorerConfig& cfg, const Schedule& s,
                            std::vector<SimTime>* boundaries) {
  bench::MicroConfig mc;
  mc.object_size = cfg.value_size;
  mc.objects = 4096;
  mc.seed = s.seed;
  mc.heavy_load = cfg.heavy_processing;
  // Crash schedules need byte-exact post-crash state (torn entries,
  // oracle byte checks) — shadow content is not enough.
  mc.content_mode = mem::ContentMode::kFull;
  core::ModelParams params = bench::params_for(mc);
  params.log_slots = std::max(cfg.window * 2, 8u);
  params.flow_threshold = std::max(cfg.window, 4u);
  params.rnic.retransmit_interval = cfg.retransmit_interval;
  params.rnic.ack_before_persist = cfg.ack_before_persist;
  params.link.loss_probability = cfg.loss_probability;
  params.faults = cfg.faults;
  params.seed = s.seed;

  core::Cluster cluster(params, 2);
  const std::size_t client_nodes[] = {1};
  auto dep = rpcs::make_deployment(cluster, rpcs::system_for(cfg.variant), 0,
                                   client_nodes, params);
  auto& server = dynamic_cast<core::DurableRpcServer&>(*dep.server);
  auto& client = dynamic_cast<core::DurableRpcClient&>(*dep.clients[0]);

  DurabilityOracle oracle(server);
  oracle.attach_client(client);

  if (boundaries != nullptr) {
    client.session()->set_trace([boundaries, &cluster](rdma::Phase) {
      boundaries->push_back(cluster.sim().now());
    });
    server.log(0).set_trace(
        [boundaries, &cluster](core::RedoLog::TracePoint, std::uint64_t) {
          boundaries->push_back(cluster.sim().now());
        });
  }

  ScheduleResult result;
  result.schedule = s;

  sim::Event up(cluster.sim());
  up.set();
  sim::Event crashed(cluster.sim());

  Harness h;
  h.remaining = s.ops;
  h.object_count = params.object_count;
  h.value_size = cfg.value_size;
  h.up = &up;

  if (s.crash_at > 0) {
    // The full power-failure sequence at one simulated nanosecond:
    // software teardown, then hardware state loss (in-flight DMA lands
    // torn on the PM media), then the crash-instant audit.
    cluster.sim().add_crash_hook([&] {
      up.reset();
      server.on_crash();
      cluster.node(0).crash();
      client.abort_pending();
      oracle.on_crash();
      h.durable_watermark = server.durable_watermark(0);
      crashed.set();
    });
    cluster.sim().schedule_crash_at(s.crash_at);
    sim::spawn(recovery_loop(cluster, server, {&client}, oracle, h, crashed,
                             cfg.restart_delay));
  }

  sim::WaitGroup wg(cluster.sim());
  wg.add(cfg.window);
  for (std::uint32_t d = 0; d < cfg.window; ++d) {
    sim::spawn(write_driver(client, h, wg));
  }

  bool finished = false;
  SimTime end = 0;
  sim::spawn([](sim::WaitGroup& w, bool& f, SimTime& t,
                sim::Simulator& sim) -> Task<> {
    co_await w.wait();
    f = true;
    t = sim.now();
  }(wg, finished, end, cluster.sim()));

  cluster.sim().run();

  result.crash_fired = cluster.sim().crashes_triggered() > 0;
  result.ops_completed = h.completed;
  result.resends = h.resends;
  result.acks = oracle.acks_recorded();
  result.replays = oracle.replays_observed();
  result.end_time = finished ? end : cluster.sim().now();
  result.violations = oracle.violations();

  if (boundaries != nullptr) {
    std::sort(boundaries->begin(), boundaries->end());
    boundaries->erase(std::unique(boundaries->begin(), boundaries->end()),
                      boundaries->end());
  }
  return result;
}

namespace {

/// Evenly samples at most `cap` timestamps out of `points` (keeps ends).
std::vector<SimTime> sample_boundaries(const std::vector<SimTime>& points,
                                       std::uint32_t cap) {
  if (points.size() <= cap) return points;
  std::vector<SimTime> out;
  out.reserve(cap);
  for (std::uint32_t i = 0; i < cap; ++i) {
    const std::size_t idx = (points.size() - 1) * i / (cap - 1);
    out.push_back(points[idx]);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

ExplorerReport explore(const ExplorerConfig& cfg) {
  ExplorerReport rep;

  // Phase 1: traced dry run — protocol-phase boundary timestamps.
  std::vector<SimTime> trace;
  const Schedule dry{cfg.seed, 0, cfg.ops};
  const ScheduleResult base = run_schedule(cfg, dry, &trace);
  rep.clean_end = base.end_time;
  rep.boundary_points = sample_boundaries(trace, cfg.max_boundary_points);

  // The candidate list is generated up front, in serial order (every
  // RNG draw happens here, before any schedule runs), then mapped over
  // SweepRunner workers. Results come back in submission order, so the
  // scan below — and with it first_failure, the reproducer, the whole
  // report — is byte-identical at any cfg.jobs value.
  std::vector<Schedule> candidates;

  // Phase 2: targeted schedules straddling each phase boundary.
  for (const SimTime t : rep.boundary_points) {
    for (const std::int64_t dt : {-1, 0, 1}) {
      const auto at = static_cast<std::int64_t>(t) + dt;
      if (at < 1) continue;
      candidates.push_back(Schedule{cfg.seed, static_cast<SimTime>(at),
                                    cfg.ops});
    }
  }

  // Phase 3: seeded random crash instants over the whole run.
  sim::Rng rng(cfg.seed ^ 0xC2B2AE3D27D4EB4Full);
  const SimTime span = std::max<SimTime>(base.end_time, 2);
  for (std::uint32_t i = 0; i < cfg.random_schedules; ++i) {
    candidates.push_back(Schedule{cfg.seed, rng.uniform(1, span - 1),
                                  cfg.ops});
  }

  bench::SweepRunner runner(cfg.jobs);
  std::vector<ScheduleResult> results = runner.map(
      candidates, [&cfg](const Schedule& s) { return run_schedule(cfg, s); });

  for (ScheduleResult& r : results) {
    ++rep.schedules_run;
    if (r.failed()) {
      ++rep.schedules_failed;
      if (!rep.first_failure.has_value()) rep.first_failure = std::move(r);
    }
  }

  // Phase 4: shrink the first failure to a minimal reproducer (fewest
  // driven ops that still violate an invariant at the same instant).
  if (rep.first_failure.has_value()) {
    Schedule best = rep.first_failure->schedule;
    ScheduleResult best_result = *rep.first_failure;
    std::uint64_t lo = 1;  // smallest op count not known to pass
    std::uint64_t ops = best.ops;
    while (ops > lo) {
      const std::uint64_t cand = lo + (ops - lo) / 2;
      Schedule t = best;
      t.ops = cand;
      ScheduleResult r = run_schedule(cfg, t);
      if (r.failed()) {
        ops = cand;
        best = t;
        best_result = std::move(r);
      } else {
        lo = cand + 1;
      }
    }
    rep.minimal = std::move(best_result);
    rep.reproducer = format_reproducer(best);
  }
  return rep;
}

const char* net_fault_family_name(NetFaultFamily family) {
  switch (family) {
    case NetFaultFamily::kCrashDuringRetransmit:
      return "crash-during-retransmit";
    case NetFaultFamily::kFlapDuringRecovery:
      return "flap-during-recovery";
    case NetFaultFamily::kPartitionThenHeal:
      return "partition-then-heal";
  }
  return "?";
}

ExplorerConfig with_net_faults(ExplorerConfig cfg, NetFaultFamily family) {
  // Size the fault windows off a clean dry run of the same workload.
  ExplorerConfig clean = cfg;
  clean.loss_probability = 0.0;
  clean.faults = net::FaultPlan{};
  const ScheduleResult base =
      run_schedule(clean, Schedule{cfg.seed, 0, cfg.ops});
  const SimTime span = std::max<SimTime>(base.end_time, 16);

  // Shrink the RC timer: recovery from a dropped packet should cost
  // backoff rounds inside the run, not the paper's 100 ms crash-
  // detection interval. The driver's crash-retry delay shrinks with it
  // (run_schedule reads params.rnic.retransmit_interval).
  cfg.retransmit_interval =
      std::min<SimTime>(cfg.retransmit_interval, 200 * sim::kMicrosecond);

  net::FaultPlan plan;
  switch (family) {
    case NetFaultFamily::kCrashDuringRetransmit: {
      // Lossy from early on: almost every crash instant the explorer
      // probes lands while go-back-N replays are in flight.
      net::LossBurst b;
      b.begin = span / 8;
      b.end = span * 4;  // outlasts post-crash recovery traffic too
      b.loss = 0.05;
      b.corrupt = 0.01;
      plan.bursts.push_back(b);
      break;
    }
    case NetFaultFamily::kFlapDuringRecovery: {
      // The cable goes dark across the middle of the run; crashes near
      // the flap probe recovery traffic racing a dead link.
      net::LinkFlap f;
      f.a = 0;
      f.b = 1;
      f.down_at = span / 3;
      f.up_at = span / 3 + span / 8 + 1;
      plan.link_flaps.push_back(f);
      break;
    }
    case NetFaultFamily::kPartitionThenHeal: {
      net::NetPartition p;
      p.island = {1};  // the client's island
      p.begin = span / 2;
      p.end = span / 2 + span / 8 + 1;
      plan.partitions.push_back(p);
      break;
    }
  }
  plan.validate();
  cfg.faults = std::move(plan);
  return cfg;
}

std::string format_reproducer(const Schedule& s) {
  std::ostringstream os;
  os << "seed=" << s.seed << " crash_at=" << s.crash_at << "ns ops=" << s.ops;
  return os.str();
}

std::optional<Schedule> parse_reproducer(const std::string& line) {
  Schedule s;
  unsigned long long seed = 0;
  unsigned long long crash_at = 0;
  unsigned long long ops = 0;
  if (std::sscanf(line.c_str(), "seed=%llu crash_at=%lluns ops=%llu", &seed,
                  &crash_at, &ops) != 3) {
    return std::nullopt;
  }
  s.seed = seed;
  s.crash_at = crash_at;
  s.ops = ops;
  return s;
}

}  // namespace prdma::check
