#include "check/repl_explorer.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "sim/rng.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace prdma::check {

using core::RpcOp;
using core::RpcRequest;
using core::RpcResult;
using sim::SimTime;
using sim::Task;

namespace {

struct ReplHarness {
  std::uint64_t remaining = 0;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t object_count = 1;
  std::uint32_t value_size = 0;
};

/// Replicated writes self-heal inside ReplicatedClient (per-hop
/// retry against the crash-instant media watermark), so the driver is
/// a plain pipelined issue loop.
Task<> repl_write_driver(repl::ReplicatedClient& client, ReplHarness& h,
                         sim::WaitGroup& wg) {
  for (;;) {
    if (h.remaining == 0) break;
    --h.remaining;

    RpcRequest req;
    req.op = RpcOp::kWrite;
    req.obj_id = h.issued++ % h.object_count;
    req.len = h.value_size;

    (void)co_await client.call(req);
    ++h.completed;
  }
  wg.done();
}

/// Evenly samples at most `cap` timestamps out of `points` (keeps ends).
std::vector<SimTime> sample_boundaries(const std::vector<SimTime>& points,
                                       std::uint32_t cap) {
  if (points.size() <= cap) return points;
  std::vector<SimTime> out;
  out.reserve(cap);
  for (std::uint32_t i = 0; i < cap; ++i) {
    const std::size_t idx = (points.size() - 1) * i / (cap - 1);
    out.push_back(points[idx]);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

ReplScheduleResult run_repl_schedule(const ReplExplorerConfig& cfg,
                                     const ReplSchedule& s,
                                     std::vector<SimTime>* boundaries) {
  bench::MicroConfig mc;
  mc.object_size = cfg.value_size;
  mc.objects = 4096;
  mc.seed = s.seed;
  // Crash schedules need byte-exact post-crash state on every replica.
  mc.content_mode = mem::ContentMode::kFull;
  core::ModelParams params = bench::params_for(mc);
  params.log_slots = std::max(cfg.window * 2, 8u);
  params.flow_threshold = std::max(cfg.window, 4u);
  params.rnic.retransmit_interval = cfg.retransmit_interval;
  params.link.loss_probability = cfg.loss_probability;
  params.faults = cfg.faults;
  params.seed = s.seed;

  core::Cluster cluster(params, cfg.replicas + 1);
  const std::size_t client_nodes[] = {cfg.replicas};
  repl::ReplicationConfig rcfg;
  rcfg.protocol = cfg.protocol;
  rcfg.replicas = cfg.replicas;
  rcfg.ack_before_replica_persist = cfg.ack_before_replica_persist;
  auto dep = repl::make_replicated_deployment(cluster, cfg.variant, rcfg,
                                              client_nodes, params);
  auto& set = dynamic_cast<repl::ReplicaSet&>(*dep.server);
  auto& client = dynamic_cast<repl::ReplicatedClient&>(*dep.clients[0]);

  ClusterOracle oracle(set, {&client});

  if (boundaries != nullptr) {
    for (std::size_t r = 0; r < set.replica_count(); ++r) {
      client.hop(r).session()->set_trace([boundaries, &cluster](rdma::Phase) {
        boundaries->push_back(cluster.sim().now());
      });
      set.server(r).log(0).set_trace(
          [boundaries, &cluster](core::RedoLog::TracePoint, std::uint64_t) {
            boundaries->push_back(cluster.sim().now());
          });
    }
  }

  ReplScheduleResult result;
  result.schedule = s;

  for (const CrashPoint& cp : s.crashes) {
    if (cp.at == 0 || cp.replica >= set.replica_count()) continue;
    cluster.sim().schedule_at(cp.at, [&set, &cfg, cp] {
      set.crash_replica(cp.replica, cfg.restart_delay);
    });
  }

  ReplHarness h;
  h.remaining = s.ops;
  h.object_count = params.object_count;
  h.value_size = cfg.value_size;

  sim::WaitGroup wg(cluster.sim());
  wg.add(cfg.window);
  for (std::uint32_t d = 0; d < cfg.window; ++d) {
    sim::spawn(repl_write_driver(client, h, wg));
  }

  bool finished = false;
  SimTime end = 0;
  sim::spawn([](sim::WaitGroup& w, bool& f, SimTime& t,
                sim::Simulator& sim) -> Task<> {
    co_await w.wait();
    f = true;
    t = sim.now();
  }(wg, finished, end, cluster.sim()));

  cluster.sim().run();

  result.crashes_fired = set.crashes();
  result.ops_completed = h.completed;
  result.resends = client.resends();
  result.txn_acks = client.acked();
  result.hop_acks = oracle.acks_recorded();
  result.replays = oracle.replays_observed();
  result.end_time = finished ? end : cluster.sim().now();
  result.violations = oracle.violations();

  if (boundaries != nullptr) {
    std::sort(boundaries->begin(), boundaries->end());
    boundaries->erase(std::unique(boundaries->begin(), boundaries->end()),
                      boundaries->end());
  }
  return result;
}

ReplExplorerReport explore_repl(const ReplExplorerConfig& cfg) {
  ReplExplorerReport rep;

  // Phase 1: traced dry run — protocol-phase boundaries across every
  // replica's hop session and redo log.
  std::vector<SimTime> trace;
  const ReplSchedule dry{cfg.seed, cfg.ops, {}};
  const ReplScheduleResult base = run_repl_schedule(cfg, dry, &trace);
  rep.clean_end = base.end_time;
  rep.boundary_points = sample_boundaries(trace, cfg.max_boundary_points);

  // Candidates are generated up front in serial order (every RNG draw
  // happens before any schedule runs), then mapped over SweepRunner
  // workers — the report is byte-identical at any cfg.jobs.
  std::vector<ReplSchedule> candidates;

  // Phase 2a: single-replica crashes straddling each phase boundary.
  for (std::size_t r = 0; r < cfg.replicas; ++r) {
    for (const SimTime t : rep.boundary_points) {
      for (const std::int64_t dt : {-1, 0, 1}) {
        const auto at = static_cast<std::int64_t>(t) + dt;
        if (at < 1) continue;
        candidates.push_back(
            ReplSchedule{cfg.seed, cfg.ops, {{r, static_cast<SimTime>(at)}}});
      }
    }
  }

  // Phase 2b: correlated crashes — every replica at the same instant.
  for (const SimTime t : rep.boundary_points) {
    ReplSchedule s{cfg.seed, cfg.ops, {}};
    for (std::size_t r = 0; r < cfg.replicas; ++r) s.crashes.push_back({r, t});
    candidates.push_back(std::move(s));
  }

  // Phase 2c: crash-during-recovery (re-kill the same replica while it
  // is down / replaying) and failover (second replica dies while the
  // first recovers).
  for (const SimTime t : rep.boundary_points) {
    candidates.push_back(ReplSchedule{
        cfg.seed, cfg.ops, {{0, t}, {0, t + cfg.restart_delay / 2}}});
    candidates.push_back(ReplSchedule{
        cfg.seed,
        cfg.ops,
        {{0, t}, {0, t + cfg.restart_delay + 2 * sim::kMicrosecond}}});
    candidates.push_back(ReplSchedule{
        cfg.seed, cfg.ops, {{0, t}, {1 % cfg.replicas, t + cfg.restart_delay / 2}}});
  }

  // Phase 3: seeded random singles and pairs over the whole run.
  sim::Rng rng(cfg.seed ^ 0xC2B2AE3D27D4EB4Full);
  const SimTime span = std::max<SimTime>(base.end_time, 2);
  for (std::uint32_t i = 0; i < cfg.random_schedules; ++i) {
    const auto r = static_cast<std::size_t>(
        rng.uniform(0, cfg.replicas - 1));
    candidates.push_back(
        ReplSchedule{cfg.seed, cfg.ops, {{r, rng.uniform(1, span - 1)}}});
  }
  for (std::uint32_t i = 0; i < cfg.random_schedules / 2; ++i) {
    const auto r1 = static_cast<std::size_t>(rng.uniform(0, cfg.replicas - 1));
    const auto r2 = static_cast<std::size_t>(rng.uniform(0, cfg.replicas - 1));
    const SimTime t1 = rng.uniform(1, span - 1);
    const SimTime t2 = rng.uniform(1, span + cfg.restart_delay);
    candidates.push_back(ReplSchedule{cfg.seed, cfg.ops, {{r1, t1}, {r2, t2}}});
  }

  bench::SweepRunner runner(cfg.jobs);
  std::vector<ReplScheduleResult> results =
      runner.map(candidates, [&cfg](const ReplSchedule& s) {
        return run_repl_schedule(cfg, s);
      });

  for (ReplScheduleResult& r : results) {
    ++rep.schedules_run;
    if (r.failed()) {
      ++rep.schedules_failed;
      if (!rep.first_failure.has_value()) rep.first_failure = std::move(r);
    }
  }

  // Phase 4: shrink the first failure — fewest driven ops that still
  // violate the cluster predicate under the same crash points.
  if (rep.first_failure.has_value()) {
    ReplSchedule best = rep.first_failure->schedule;
    ReplScheduleResult best_result = *rep.first_failure;
    std::uint64_t lo = 1;
    std::uint64_t ops = best.ops;
    while (ops > lo) {
      const std::uint64_t cand = lo + (ops - lo) / 2;
      ReplSchedule t = best;
      t.ops = cand;
      ReplScheduleResult r = run_repl_schedule(cfg, t);
      if (r.failed()) {
        ops = cand;
        best = t;
        best_result = std::move(r);
      } else {
        lo = cand + 1;
      }
    }
    rep.minimal = std::move(best_result);
    rep.reproducer = format_repl_reproducer(best);
  }
  return rep;
}

std::string format_repl_reproducer(const ReplSchedule& s) {
  std::ostringstream os;
  os << "seed=" << s.seed << " ops=" << s.ops << " crash=";
  if (s.crashes.empty()) {
    os << "none";
  } else {
    for (std::size_t i = 0; i < s.crashes.size(); ++i) {
      os << (i ? "," : "") << s.crashes[i].replica << "@" << s.crashes[i].at
         << "ns";
    }
  }
  return os.str();
}

std::optional<ReplSchedule> parse_repl_reproducer(const std::string& line) {
  ReplSchedule s;
  unsigned long long seed = 0;
  unsigned long long ops = 0;
  int pos = -1;
  if (std::sscanf(line.c_str(), "seed=%llu ops=%llu crash=%n", &seed, &ops,
                  &pos) != 2 ||
      pos < 0) {
    return std::nullopt;
  }
  s.seed = seed;
  s.ops = ops;
  const char* p = line.c_str() + pos;
  if (std::strcmp(p, "none") == 0) return s;
  while (*p != '\0') {
    unsigned long long replica = 0;
    unsigned long long at = 0;
    int used = 0;
    if (std::sscanf(p, "%llu@%lluns%n", &replica, &at, &used) != 2) {
      return std::nullopt;
    }
    s.crashes.push_back(
        {static_cast<std::size_t>(replica), static_cast<SimTime>(at)});
    p += used;
    if (*p == ',') {
      ++p;
    } else if (*p != '\0') {
      return std::nullopt;
    }
  }
  if (s.crashes.empty()) return std::nullopt;
  return s;
}

}  // namespace prdma::check
