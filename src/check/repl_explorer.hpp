#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/cluster_oracle.hpp"
#include "net/faults.hpp"
#include "repl/replication.hpp"
#include "sim/time.hpp"

namespace prdma::check {

/// Workload + model knobs shared by every schedule of one replicated
/// exploration (the multi-replica analogue of ExplorerConfig).
struct ReplExplorerConfig {
  core::FlushVariant variant = core::FlushVariant::kWFlush;
  repl::Protocol protocol = repl::Protocol::kChain;
  std::size_t replicas = 2;
  std::uint64_t seed = 1;
  std::uint64_t ops = 32;    ///< write transactions to drive
  std::uint32_t window = 4;  ///< outstanding transactions
  std::uint32_t value_size = 4096;
  std::uint32_t random_schedules = 16;
  /// Cap on distinct protocol-phase timestamps turned into targeted
  /// schedules (probed at t-1, t, t+1 per replica, plus correlated and
  /// crash-during-recovery combinations).
  std::uint32_t max_boundary_points = 8;
  /// PROTOCOL MUTANT (ReplicationConfig::ack_before_replica_persist):
  /// ack after the head replica persists and finish the remaining hops
  /// in the background. The explorer must find a schedule where the
  /// cluster predicate catches the resulting acked-transaction loss.
  bool ack_before_replica_persist = false;
  sim::SimTime restart_delay = 1 * sim::kMillisecond;
  sim::SimTime retransmit_interval = 100 * sim::kMillisecond;
  /// Uniform per-packet loss probability on every cable (DESIGN.md
  /// §7.8): replication hops ride the same lossy transport as clients.
  double loss_probability = 0.0;
  /// Deterministic fabric fault schedule (link flaps, partitions, loss
  /// bursts) active during every explored schedule.
  net::FaultPlan faults;
  /// Worker threads for independent schedules; the report is
  /// byte-identical at any value (DESIGN.md §7.1).
  std::size_t jobs = 1;
};

/// One crash instant: replica `replica` dies at `at` nanoseconds.
struct CrashPoint {
  std::size_t replica = 0;
  sim::SimTime at = 0;

  friend bool operator==(const CrashPoint&, const CrashPoint&) = default;
};

/// One point in replicated crash-schedule space. Together with
/// ReplExplorerConfig this is a complete, re-runnable reproducer.
struct ReplSchedule {
  std::uint64_t seed = 1;
  std::uint64_t ops = 32;
  std::vector<CrashPoint> crashes;
};

struct ReplScheduleResult {
  ReplSchedule schedule;
  std::uint64_t crashes_fired = 0;
  std::uint64_t ops_completed = 0;
  std::uint64_t resends = 0;
  std::uint64_t txn_acks = 0;  ///< replicated transactions acknowledged
  std::uint64_t hop_acks = 0;  ///< per-replica persist-ACKs (oracle view)
  std::uint64_t replays = 0;
  sim::SimTime end_time = 0;
  std::vector<Violation> violations;

  [[nodiscard]] bool failed() const { return !violations.empty(); }
};

struct ReplExplorerReport {
  std::uint64_t schedules_run = 0;
  std::uint64_t schedules_failed = 0;
  sim::SimTime clean_end = 0;
  std::vector<sim::SimTime> boundary_points;
  std::optional<ReplScheduleResult> first_failure;
  std::optional<ReplScheduleResult> minimal;
  /// "seed=<s> ops=<n> crash=<r>@<t>ns[,<r>@<t>ns…]" — feed to
  /// parse_repl_reproducer() / run_repl_schedule() to replay.
  std::string reproducer;
};

/// Runs ONE replicated crash schedule deterministically: fresh
/// cluster (R replicas + 1 app node, kFull content), a ClusterOracle,
/// cfg.window pipelined write drivers, and a crash_replica() at every
/// CrashPoint. Identical (cfg, s) inputs give a bit-identical result.
/// With `boundaries` non-null, every hop session's verb phases and
/// every replica's redo-log trace points are harvested.
ReplScheduleResult run_repl_schedule(const ReplExplorerConfig& cfg,
                                     const ReplSchedule& s,
                                     std::vector<sim::SimTime>* boundaries =
                                         nullptr);

/// Full exploration over per-replica crash instants: targeted
/// schedules straddling each harvested phase boundary for EACH
/// replica, correlated all-replica crashes, crash-during-recovery and
/// staggered double-crash pairs, then seeded random singles and pairs.
/// The first failing schedule is shrunk (bisection on op count, crash
/// points kept) to a minimal reproducer.
ReplExplorerReport explore_repl(const ReplExplorerConfig& cfg);

[[nodiscard]] std::string format_repl_reproducer(const ReplSchedule& s);
[[nodiscard]] std::optional<ReplSchedule> parse_repl_reproducer(
    const std::string& line);

}  // namespace prdma::check
