#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/durable_rpc.hpp"
#include "sim/time.hpp"

namespace prdma::check {

/// The durability invariants the oracle enforces (§4.2: a persist-ACK
/// is a promise that survives any power failure).
enum class ViolationKind : std::uint8_t {
  /// An acknowledged write is not reachable by recovery (its entry is
  /// missing, torn, or beyond a gap in the replay chain).
  kAckedLost,
  /// An acknowledged write's payload on the persist media differs from
  /// the bytes the client sent.
  kAckedCorrupt,
  /// Recovery replayed an entry whose media bytes fail the checksum
  /// (torn data must never be re-executed).
  kTornReplayed,
  /// The durable watermark moved backwards.
  kWatermarkRegressed,
  /// The server claims a watermark above what is physically in the
  /// persist domain.
  kWatermarkOverclaim,
  /// Cluster predicate (replicated deployments): an acknowledged
  /// transaction is not recoverable from any SURVIVING replica's media
  /// view at a crash instant (fail-stop: the crashed copies may never
  /// come back).
  kReplicaLost,
  /// Worse: the transaction is on no replica's media at all — not even
  /// the crashed ones could replay it.
  kTxnLost,
};

[[nodiscard]] constexpr const char* violation_name(ViolationKind k) {
  switch (k) {
    case ViolationKind::kAckedLost: return "acked-lost";
    case ViolationKind::kAckedCorrupt: return "acked-corrupt";
    case ViolationKind::kTornReplayed: return "torn-replayed";
    case ViolationKind::kWatermarkRegressed: return "watermark-regressed";
    case ViolationKind::kWatermarkOverclaim: return "watermark-overclaim";
    case ViolationKind::kReplicaLost: return "replica-lost";
    case ViolationKind::kTxnLost: return "txn-lost";
  }
  return "?";
}

struct Violation {
  ViolationKind kind = ViolationKind::kAckedLost;
  std::size_t conn = 0;
  std::uint64_t seq = 0;
  sim::SimTime at = 0;  ///< simulated instant the violation was detected
  std::string detail;
};

/// Records every persist-ACK a DurableRpcClient observes and checks,
/// at the crash instant and across recovery, that the system kept its
/// promises. The oracle never trusts the implementation under test: it
/// re-derives expected payload bytes from the deterministic pattern
/// (core::deterministic_payload) and scans the persist media itself
/// (NodeMemory::persisted_read), so a watermark computed from dirty
/// cache lines or an ACK sent before the DMA landed is caught.
///
/// The oracle is a pure observer: it charges no simulated time and
/// does not perturb the schedule, so attaching it keeps runs
/// bit-identical.
///
/// Scope: write durability. Reads carry no payload to lose and are
/// re-issued by clients after a crash (§5.5: flushes exist for writes);
/// the oracle therefore records write ACKs only and expects write-only
/// workloads when asserting the full invariant set.
class DurabilityOracle {
 public:
  explicit DurabilityOracle(core::DurableRpcServer& server);

  /// Installs the persist-ACK hook on `client`. Call once per client
  /// before driving load.
  void attach_client(core::DurableRpcClient& client);

  /// Crash-instant audit. Must run after the server node's hardware
  /// state settled (Node::crash() returned): every acknowledged,
  /// still-unconsumed write must be byte-exact on media and within the
  /// recoverable chain.
  void on_crash();

  /// Post-recovery audit: every acknowledged write that was unconsumed
  /// at the crash must have been replayed.
  void after_recovery();

  /// Watermark audit, valid at ANY simulated instant: monotone, and
  /// never above the oracle's independent media scan. Invoked
  /// automatically on every ACK; harnesses may call it extra.
  void observe_watermark();

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool ok() const { return violations_.empty(); }

  [[nodiscard]] std::uint64_t acks_recorded() const { return acks_; }
  [[nodiscard]] std::uint64_t replays_observed() const { return replays_; }
  [[nodiscard]] std::uint64_t watermark_samples() const { return samples_; }

  /// One line per violation (diagnostics / reproducer output).
  [[nodiscard]] std::string report() const;

  /// Media-only durable watermark of `conn` re-derived by the oracle's
  /// own checksum-verified scan (exposed for the cluster predicate).
  [[nodiscard]] std::uint64_t media_watermark(std::size_t conn) const {
    return independent_scan(conn);
  }
  /// Byte-exact media check of entry `seq` against the deterministic
  /// payload pattern (exposed for the cluster predicate).
  [[nodiscard]] bool media_entry_exact(std::size_t conn, std::uint64_t seq,
                                       std::uint32_t len) const {
    return media_payload_exact(conn, seq, len);
  }

 private:
  struct AckRecord {
    std::uint32_t payload_len = 0;
    sim::SimTime acked_at = 0;
  };

  struct ConnState {
    std::map<std::uint64_t, AckRecord> acked;  ///< seq -> record
    std::uint64_t last_watermark = 0;
    std::uint64_t consumed_at_crash = 0;
    std::uint64_t watermark_at_crash = 0;
    std::set<std::uint64_t> replayed;
    bool crashed = false;
  };

  void record_ack(std::size_t conn, std::uint64_t seq, std::uint32_t len);
  void on_replay(std::size_t conn, const core::LogEntryView& e);

  /// Re-derives the durable watermark from media bytes alone,
  /// recomputing payload checksums instead of trusting stored ones.
  [[nodiscard]] std::uint64_t independent_scan(std::size_t conn) const;

  /// Byte-exact media comparison of entry `seq` against the
  /// deterministic payload pattern.
  [[nodiscard]] bool media_payload_exact(std::size_t conn, std::uint64_t seq,
                                         std::uint32_t len) const;

  void flag(ViolationKind kind, std::size_t conn, std::uint64_t seq,
            std::string detail);

  core::DurableRpcServer& server_;
  std::vector<ConnState> conns_;
  std::vector<Violation> violations_;
  std::uint64_t acks_ = 0;
  std::uint64_t replays_ = 0;
  std::uint64_t samples_ = 0;
};

}  // namespace prdma::check
