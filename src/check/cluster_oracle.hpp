#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "repl/replication.hpp"

namespace prdma::check {

/// Cluster-level durability auditor for a replicated deployment.
///
/// Composes one single-node DurabilityOracle per replica (each hooked
/// to that replica's durable-RPC hop of every client, so per-hop
/// persist-ACK invariants keep holding verbatim) and adds the cluster
/// predicate on top: at every replica-crash instant, each transaction
/// the application saw acknowledged must be recoverable from SOME
/// surviving replica's media view — either already applied (at or
/// below the durably consumed watermark) or byte-exact in the
/// recoverable log chain. Under correlated crashes that take every
/// replica down, the requirement weakens to "on at least one replica's
/// persistent media" (PM survives power failure; fail-stop only rules
/// out the crashed copies while peers are alive to serve).
///
/// Like the single-node oracle, this is a pure observer: it charges no
/// simulated time, so attaching it keeps schedules bit-identical.
class ClusterOracle {
 public:
  ClusterOracle(repl::ReplicaSet& set,
                std::vector<repl::ReplicatedClient*> clients);

  /// Cluster-level violations first, then each replica oracle's, in
  /// replica order — a deterministic aggregation.
  [[nodiscard]] std::vector<Violation> violations() const;
  [[nodiscard]] bool ok() const;

  /// Per-hop persist-ACKs recorded, summed over replica oracles.
  [[nodiscard]] std::uint64_t acks_recorded() const;
  /// Replayed log entries observed, summed over replica oracles.
  [[nodiscard]] std::uint64_t replays_observed() const;
  /// Acked transactions audited against the cluster predicate (one
  /// count per transaction per crash instant).
  [[nodiscard]] std::uint64_t txns_audited() const { return audited_; }

  [[nodiscard]] const DurabilityOracle& replica_oracle(std::size_t r) const {
    return *oracles_.at(r);
  }

  [[nodiscard]] std::string report() const;

 private:
  void on_replica_crash(std::size_t r);
  /// Is (seq, len) of client connection `conn` settled on replica `q`:
  /// durably consumed, or byte-exact within the recoverable chain?
  [[nodiscard]] bool settled_on(std::size_t q, std::size_t conn,
                                std::uint64_t seq, std::uint32_t len) const;

  repl::ReplicaSet& set_;
  std::vector<repl::ReplicatedClient*> clients_;
  std::vector<std::unique_ptr<DurabilityOracle>> oracles_;
  std::vector<Violation> cluster_violations_;
  std::set<std::uint64_t> flagged_;  ///< (client, txn) already reported
  std::uint64_t audited_ = 0;
};

}  // namespace prdma::check
