#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace prdma::trace {

/// Interned category handle for spans, counters and breakdown slots.
/// Values below Component::kCount are the predefined components every
/// instrumented layer shares; a Tracer (or SpanBreakdown) can intern
/// additional names at runtime, which get ids starting at kCount.
using ComponentId = std::uint16_t;

/// Predefined span/counter categories — the phases the paper's
/// analysis names (Figs. 4/5/20): sender and receiver software,
/// network serialization and flight, RNIC SRAM/DMA/flush execution,
/// and the durable-RPC pipeline stages of §4.2.
enum class Component : ComponentId {
  kSenderSw = 0,   ///< client host software (Fig. 20 "sender SW")
  kReceiverSw,     ///< receiver critical-path software the client waits on
  kHostSw,         ///< host software not on the client critical path
  kRtt,            ///< derived hardware round-trip share (Fig. 20 remainder)
  kNetSerialize,   ///< link serialization (occupancy behind earlier packets)
  kNetFlight,      ///< propagation + queueing + jitter
  kRnicSram,       ///< SRAM packet-buffer occupancy (counter, bytes)
  kRnicDma,        ///< DMA engine drain SRAM -> host memory
  kRnicWFlush,     ///< WFlush execution at the receiver RNIC (§4.1.1)
  kRnicSFlush,     ///< SFlush addressing + copy at the receiver RNIC
  kRnicRFlush,     ///< persist_range: the RFlush building block (§4.1.2)
  kLogAppend,      ///< client post of the redo-log entry
  kDataPersist,    ///< post end -> remote durability point (T_B)
  kOpPersist,      ///< server-side persist of a logged entry
  kPersistAck,     ///< persist notification write to the sender
  kWorker,         ///< worker-thread processing of a logged RPC
  kFlowStall,      ///< client blocked on the flow-control window (§4.4)
  kPayloadPool,    ///< payload-pool occupancy (counter, blocks outstanding)
  kPayloadRefs,    ///< payload handle acquisitions per recycled block
  kReplForward,    ///< replication forwarding hop (chain/mirror, repl/)
  kReplAck,        ///< replication ack back to the application
  kNetSwitchHop,   ///< switch traversal + egress queue + serialization
  kNetPortQueue,   ///< egress-queue wait at a topology port (counter, ns)
  kEngineEpochs,   ///< partitioned-engine epochs completed (counter)
  kEngineBarrierNs,  ///< wall-clock ns spent at epoch barriers (counter)
  kNetDrop,        ///< packets dropped at a fabric egress (counter)
  kRnicRetransmit,  ///< RC packets replayed by a retransmission timer
  kCount
};

constexpr ComponentId to_id(Component c) {
  return static_cast<ComponentId>(c);
}

/// Number of predefined components.
inline constexpr ComponentId kPredefinedComponents = to_id(Component::kCount);

/// Stable name of a predefined component (what the Chrome trace and
/// the breakdown string shim use).
[[nodiscard]] std::string_view component_name(Component c);
[[nodiscard]] std::string_view component_name(ComponentId id);

/// Chrome trace "cat" group of a predefined component: "host", "net",
/// "rnic" or "rpc" (dynamic components report "user").
[[nodiscard]] std::string_view component_category(ComponentId id);

/// Reverse lookup over the predefined names; nullopt for unknown names.
[[nodiscard]] std::optional<Component> component_from_name(
    std::string_view name);

}  // namespace prdma::trace
