#pragma once

#include <iosfwd>
#include <string>

#include "trace/tracer.hpp"

namespace prdma::trace {

/// Renders the tracer's ring (oldest event first) as Chrome
/// trace-event JSON objects — the format chrome://tracing and Perfetto
/// open directly. Returns the comma-separated object list *without*
/// the enclosing `{"traceEvents":[...]}` wrapper, so fragments from
/// several cells (each with its own pid) can be concatenated in
/// deterministic cell order. Leads with a process_name metadata event.
///
/// Timestamps are microseconds rendered with integer math
/// (ns/1000 "." ns%1000), so output is bit-stable across platforms.
[[nodiscard]] std::string chrome_fragment(const Tracer& tracer,
                                          std::uint32_t pid,
                                          const std::string& process_name);

/// Writes a complete, self-contained Chrome trace JSON document.
void write_chrome_trace(const Tracer& tracer, std::ostream& os,
                        std::uint32_t pid = 1,
                        const std::string& process_name = "prdma");

/// Wraps pre-rendered fragments into `{"traceEvents":[...]}`.
[[nodiscard]] std::string wrap_fragments(const std::string& fragments);

}  // namespace prdma::trace
