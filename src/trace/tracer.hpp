#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "trace/component.hpp"

namespace prdma::trace {

/// Tracing depth. kCounters keeps exact per-component totals with no
/// event ring (the default for every micro cell — it is what the
/// Fig. 20 breakdown consumes); kFull additionally records every span
/// and counter sample into the preallocated ring for Chrome/Perfetto
/// export.
enum class Mode : std::uint8_t {
  kOff,       ///< every record call is a branch-on-disabled no-op
  kCounters,  ///< totals only (zero per-event memory traffic beyond 2 adds)
  kFull,      ///< totals + ring-buffered events for --trace export
};

/// One recorded event. Spans are closed intervals [t0, t1] of simulated
/// time; counter samples store the sampled value in `value`.
struct TraceEvent {
  sim::SimTime t0 = 0;
  sim::SimTime t1 = 0;          ///< span end (== t0 for instants)
  std::uint64_t corr = 0;       ///< op/RPC correlation id (seq) or value
  ComponentId comp = 0;
  std::uint16_t track = 0;      ///< renders as Chrome "tid" (node id)
  std::uint8_t kind = 0;        ///< 0 = span, 1 = counter sample
};

/// Deterministic simulation-time tracer.
///
/// Contract (DESIGN.md §7.2):
///  * records carry *simulated* timestamps only — the tracer never
///    reads wall-clocks, never consumes simulation RNG and never
///    schedules events, so enabling it cannot change a run;
///  * all storage is preallocated in enable(); recording a span or
///    counter sample performs zero heap allocations (the engine_perf
///    zero-allocs gate holds with tracing off *and* on);
///  * state is per-Tracer (one per Cluster), so parallel sweep cells
///    share nothing and trace output is byte-identical at any --jobs.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Switches mode and (re)allocates storage. kFull preallocates a
  /// ring of `capacity` events; older events are overwritten once it
  /// wraps (newest-kept, see dropped()). Resets all recorded state.
  void enable(Mode mode, std::size_t capacity = kDefaultCapacity);

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] bool enabled() const { return mode_ != Mode::kOff; }

  // ---- recording (hot path; no-ops unless enabled) ----

  /// Records a span of component `c` covering [t0, t1] simulated ns.
  void span(Component c, std::uint64_t corr, sim::SimTime t0, sim::SimTime t1,
            std::uint16_t track = 0) {
    if (mode_ == Mode::kOff) return;
    record_span(to_id(c), corr, t0, t1, track);
  }
  void span(ComponentId id, std::uint64_t corr, sim::SimTime t0,
            sim::SimTime t1, std::uint16_t track = 0) {
    if (mode_ == Mode::kOff) return;
    record_span(id, corr, t0, t1, track);
  }

  /// Records a span whose *duration* is a charged software cost rather
  /// than a wall interval: [t0, t0 + charged_ns]. This is how the
  /// receiver critical-path sections mirror the historical charged-ns
  /// accounting exactly (waits excluded).
  void span_charged(Component c, std::uint64_t corr, sim::SimTime t0,
                    std::uint64_t charged_ns, std::uint16_t track = 0) {
    if (mode_ == Mode::kOff) return;
    record_span(to_id(c), corr, t0, t0 + charged_ns, track);
  }

  /// Records a gauge sample (e.g. RNIC SRAM bytes) at time t.
  void counter(Component c, sim::SimTime t, std::uint64_t value,
               std::uint16_t track = 0) {
    if (mode_ == Mode::kOff) return;
    record_counter(to_id(c), t, value, track);
  }

  // ---- interning ----

  /// Returns the id for `name`: a predefined component when the name
  /// matches one, otherwise a per-tracer dynamic id (deterministic:
  /// first-intern order). May allocate — keep off hot paths.
  ComponentId intern(std::string_view name);

  [[nodiscard]] std::string_view name_of(ComponentId id) const;
  [[nodiscard]] ComponentId component_count() const {
    return static_cast<ComponentId>(totals_.size());
  }

  // ---- aggregates (exact regardless of ring wrap) ----

  [[nodiscard]] std::uint64_t total_ns(Component c) const {
    return total_ns(to_id(c));
  }
  [[nodiscard]] std::uint64_t total_ns(ComponentId id) const {
    return id < totals_.size() ? totals_[id].total_ns : 0;
  }
  [[nodiscard]] std::uint64_t samples(Component c) const {
    return samples(to_id(c));
  }
  [[nodiscard]] std::uint64_t samples(ComponentId id) const {
    return id < totals_.size() ? totals_[id].samples : 0;
  }
  [[nodiscard]] std::uint64_t last_counter(Component c) const {
    const ComponentId id = to_id(c);
    return id < totals_.size() ? totals_[id].last_value : 0;
  }

  /// Folds another tracer's aggregate totals into this one (partition
  /// shard tracers merging into the cluster's main tracer after a
  /// parallel run). Predefined components add slot-wise; dynamic
  /// components are matched by name (interned here on first sight), so
  /// merging in partition order is deterministic. Counter last-values
  /// and ring events are not merged — kFull tracing is confined to
  /// single-partition runs.
  void merge_totals_from(const Tracer& other);

  // ---- ring access (kFull only) ----

  /// Events still held by the ring, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t events_recorded() const { return head_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return head_ > ring_.size() ? head_ - ring_.size() : 0;
  }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

 private:
  struct Slot {
    std::uint64_t total_ns = 0;
    std::uint64_t samples = 0;
    std::uint64_t last_value = 0;
  };

  void record_span(ComponentId id, std::uint64_t corr, sim::SimTime t0,
                   sim::SimTime t1, std::uint16_t track);
  void record_counter(ComponentId id, sim::SimTime t, std::uint64_t value,
                      std::uint16_t track);
  void push(const TraceEvent& ev);

  Mode mode_ = Mode::kOff;
  std::vector<Slot> totals_;           ///< indexed by ComponentId
  std::vector<std::string> dynamic_;   ///< names of ids >= kPredefined
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;               ///< monotonic; ring index = head_ % cap
};

}  // namespace prdma::trace
