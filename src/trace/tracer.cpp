#include "trace/tracer.hpp"

#include <array>
#include <cassert>

namespace prdma::trace {

namespace {

struct NameEntry {
  std::string_view name;
  std::string_view category;
};

constexpr std::array<NameEntry, kPredefinedComponents> kNames{{
    {"sender_sw", "host"},      // kSenderSw
    {"receiver_sw", "host"},    // kReceiverSw
    {"host_sw", "host"},        // kHostSw
    {"rtt", "net"},             // kRtt
    {"net_serialize", "net"},   // kNetSerialize
    {"net_flight", "net"},      // kNetFlight
    {"rnic_sram", "rnic"},      // kRnicSram
    {"rnic_dma", "rnic"},       // kRnicDma
    {"rnic_wflush", "rnic"},    // kRnicWFlush
    {"rnic_sflush", "rnic"},    // kRnicSFlush
    {"rnic_rflush", "rnic"},    // kRnicRFlush
    {"log_append", "rpc"},      // kLogAppend
    {"data_persist", "rpc"},    // kDataPersist
    {"op_persist", "rpc"},      // kOpPersist
    {"persist_ack", "rpc"},     // kPersistAck
    {"worker", "rpc"},          // kWorker
    {"flow_stall", "rpc"},      // kFlowStall
    {"payload_pool", "mem"},    // kPayloadPool
    {"payload_refs", "mem"},    // kPayloadRefs
    {"repl_forward", "rpc"},    // kReplForward
    {"repl_ack", "rpc"},        // kReplAck
    {"net_switch_hop", "net"},  // kNetSwitchHop
    {"net_port_queue", "net"},  // kNetPortQueue
    {"engine_epochs", "sim"},   // kEngineEpochs
    {"engine_barrier_ns", "sim"},  // kEngineBarrierNs
    {"net_drop", "net"},        // kNetDrop
    {"rnic_retransmit", "rnic"},  // kRnicRetransmit
}};

}  // namespace

std::string_view component_name(Component c) {
  return kNames[to_id(c)].name;
}

std::string_view component_name(ComponentId id) {
  return id < kPredefinedComponents ? kNames[id].name
                                    : std::string_view("dynamic");
}

std::string_view component_category(ComponentId id) {
  return id < kPredefinedComponents ? kNames[id].category
                                    : std::string_view("user");
}

std::optional<Component> component_from_name(std::string_view name) {
  for (ComponentId i = 0; i < kPredefinedComponents; ++i) {
    if (kNames[i].name == name) return static_cast<Component>(i);
  }
  return std::nullopt;
}

void Tracer::enable(Mode mode, std::size_t capacity) {
  mode_ = mode;
  totals_.assign(kPredefinedComponents, Slot{});
  dynamic_.clear();
  ring_.clear();
  head_ = 0;
  if (mode_ == Mode::kFull) {
    ring_.resize(capacity == 0 ? 1 : capacity);
  }
  ring_.shrink_to_fit();
}

ComponentId Tracer::intern(std::string_view name) {
  if (const auto c = component_from_name(name)) return to_id(*c);
  for (std::size_t i = 0; i < dynamic_.size(); ++i) {
    if (dynamic_[i] == name) {
      return static_cast<ComponentId>(kPredefinedComponents + i);
    }
  }
  dynamic_.emplace_back(name);
  if (totals_.size() < kPredefinedComponents) {
    totals_.resize(kPredefinedComponents);
  }
  totals_.emplace_back();
  return static_cast<ComponentId>(totals_.size() - 1);
}

std::string_view Tracer::name_of(ComponentId id) const {
  if (id < kPredefinedComponents) return component_name(id);
  const std::size_t idx = id - kPredefinedComponents;
  return idx < dynamic_.size() ? std::string_view(dynamic_[idx])
                               : std::string_view("?");
}

void Tracer::record_span(ComponentId id, std::uint64_t corr, sim::SimTime t0,
                         sim::SimTime t1, std::uint16_t track) {
  assert(t1 >= t0);
  if (id < totals_.size()) {
    totals_[id].total_ns += t1 - t0;
    ++totals_[id].samples;
  }
  if (mode_ == Mode::kFull) {
    push(TraceEvent{t0, t1, corr, id, track, /*kind=*/0});
  }
}

void Tracer::record_counter(ComponentId id, sim::SimTime t,
                            std::uint64_t value, std::uint16_t track) {
  if (id < totals_.size()) {
    ++totals_[id].samples;
    totals_[id].last_value = value;
  }
  if (mode_ == Mode::kFull) {
    push(TraceEvent{t, t, value, id, track, /*kind=*/1});
  }
}

void Tracer::merge_totals_from(const Tracer& other) {
  for (ComponentId id = 0; id < other.component_count(); ++id) {
    const std::uint64_t total = other.total_ns(id);
    const std::uint64_t samples = other.samples(id);
    if (total == 0 && samples == 0) continue;
    const ComponentId mine =
        id < kPredefinedComponents ? id : intern(other.name_of(id));
    if (mine >= totals_.size()) totals_.resize(mine + 1);
    totals_[mine].total_ns += total;
    totals_[mine].samples += samples;
  }
}

void Tracer::push(const TraceEvent& ev) {
  ring_[head_ % ring_.size()] = ev;
  ++head_;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  const std::size_t n = head_ < ring_.size() ? head_ : ring_.size();
  out.reserve(n);
  for (std::size_t i = head_ - n; i < head_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

}  // namespace prdma::trace
