#include "trace/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace prdma::trace {

namespace {

/// Microseconds with fixed 3-decimal nanosecond remainder — integer
/// math only, no locale or float-formatting variance.
void append_us(std::string& out, sim::SimTime ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64,
                static_cast<std::uint64_t>(ns / 1000),
                static_cast<std::uint64_t>(ns % 1000));
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

}  // namespace

std::string chrome_fragment(const Tracer& tracer, std::uint32_t pid,
                            const std::string& process_name) {
  std::string out;
  out += R"({"name":"process_name","ph":"M","pid":)";
  append_u64(out, pid);
  out += R"(,"args":{"name":")" + process_name + "\"}}";

  for (const TraceEvent& ev : tracer.events()) {
    out += ",\n";
    if (ev.kind == 1) {
      out += R"({"name":")";
      out += tracer.name_of(ev.comp);
      out += R"(","cat":")";
      out += component_category(ev.comp);
      out += R"(","ph":"C","ts":)";
      append_us(out, ev.t0);
      out += R"(,"pid":)";
      append_u64(out, pid);
      out += R"(,"args":{"value":)";
      append_u64(out, ev.corr);
      out += "}}";
      continue;
    }
    out += R"({"name":")";
    out += tracer.name_of(ev.comp);
    out += R"(","cat":")";
    out += component_category(ev.comp);
    out += R"(","ph":"X","ts":)";
    append_us(out, ev.t0);
    out += R"(,"dur":)";
    append_us(out, ev.t1 - ev.t0);
    out += R"(,"pid":)";
    append_u64(out, pid);
    out += R"(,"tid":)";
    append_u64(out, ev.track);
    out += R"(,"args":{"corr":)";
    append_u64(out, ev.corr);
    out += "}}";
  }
  return out;
}

std::string wrap_fragments(const std::string& fragments) {
  return "{\"traceEvents\":[\n" + fragments + "\n]}\n";
}

void write_chrome_trace(const Tracer& tracer, std::ostream& os,
                        std::uint32_t pid, const std::string& process_name) {
  os << wrap_fragments(chrome_fragment(tracer, pid, process_name));
}

}  // namespace prdma::trace
