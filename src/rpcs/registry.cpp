#include "rpcs/registry.hpp"

#include <stdexcept>

namespace prdma::rpcs {

using core::FlushVariant;

const std::vector<SystemInfo>& all_systems() {
  static const std::vector<SystemInfo> kSystems = {
      {System::kL5, "L5", "write", "RC", false, false, false, 0},
      {System::kRFP, "RFP", "write", "RC", false, false, false, 0},
      {System::kFaSST, "FaSST", "send", "UD", false, true, false, 4000},
      {System::kOctopus, "Octopus", "write-imm", "RC", false, true, false, 0},
      {System::kFaRM, "FaRM", "write", "RC", false, false, false, 0},
      {System::kScaleRPC, "ScaleRPC", "write", "RC", false, false, false, 0},
      {System::kDaRPC, "DaRPC", "send", "RC", false, true, false, 0},
      {System::kHerd, "Herd", "write", "UC", false, false, false, 4000},
      {System::kLITE, "LITE", "write-imm", "RC", false, true, true, 0},
      {System::kSRFlushRpc, "S-RFlush-RPC", "send", "RC", true, true, false, 0},
      {System::kSFlushRpc, "SFlush-RPC", "send", "RC", true, true, false, 0},
      {System::kWRFlushRpc, "W-RFlush-RPC", "write", "RC", true, false, false,
       0},
      {System::kWFlushRpc, "WFlush-RPC", "write", "RC", true, false, false, 0},
  };
  return kSystems;
}

const SystemInfo& info_of(System s) {
  for (const auto& i : all_systems()) {
    if (i.system == s) return i;
  }
  throw std::invalid_argument("unknown system");
}

std::string_view name_of(System s) { return info_of(s).name; }

System system_for(core::FlushVariant v) {
  switch (v) {
    case FlushVariant::kWFlush: return System::kWFlushRpc;
    case FlushVariant::kSFlush: return System::kSFlushRpc;
    case FlushVariant::kWRFlush: return System::kWRFlushRpc;
    case FlushVariant::kSRFlush: return System::kSRFlushRpc;
  }
  throw std::invalid_argument("unknown flush variant");
}

std::vector<System> write_family() {
  return {System::kL5, System::kRFP, System::kOctopus, System::kFaRM,
          System::kScaleRPC};
}

std::vector<System> send_family() { return {System::kDaRPC, System::kFaSST}; }

std::vector<System> evaluation_lineup(std::uint64_t object_size) {
  // The paper's figure line-up: write-family baselines, send-family
  // baselines (FaSST only below the UD MTU), then the durable RPCs.
  std::vector<System> out = {System::kL5, System::kRFP};
  if (object_size <= info_of(System::kFaSST).max_object) {
    out.push_back(System::kFaSST);
  }
  out.insert(out.end(), {System::kOctopus, System::kFaRM, System::kScaleRPC,
                         System::kDaRPC, System::kSRFlushRpc,
                         System::kSFlushRpc, System::kWRFlushRpc,
                         System::kWFlushRpc});
  return out;
}

namespace {

core::RpcDeployment make_durable(core::Cluster& cluster, FlushVariant v,
                                 std::size_t server_idx,
                                 std::span<const std::size_t> client_nodes,
                                 const core::ModelParams& params) {
  core::RpcDeployment d;
  auto server = std::make_unique<core::DurableRpcServer>(cluster, server_idx,
                                                         v, params);
  for (const std::size_t idx : client_nodes) {
    d.clients.push_back(server->connect_client(idx));
  }
  server->start();
  d.server = std::move(server);
  return d;
}

core::RpcDeployment make_baseline(core::Cluster& cluster,
                                  BaselineConfig config,
                                  std::size_t server_idx,
                                  std::span<const std::size_t> client_nodes,
                                  const core::ModelParams& params) {
  core::RpcDeployment d;
  auto server = std::make_unique<BaselineServer>(cluster, server_idx,
                                                 std::move(config), params);
  for (const std::size_t idx : client_nodes) {
    d.clients.push_back(server->connect_client(idx));
  }
  server->start();
  d.server = std::move(server);
  return d;
}

}  // namespace

core::RpcDeployment make_deployment(core::Cluster& cluster, System s,
                                    std::size_t server_idx,
                                    std::span<const std::size_t> client_nodes,
                                    const core::ModelParams& params) {
  switch (s) {
    case System::kL5:
      return make_baseline(cluster, l5_config(), server_idx, client_nodes,
                           params);
    case System::kRFP:
      return make_baseline(cluster, rfp_config(), server_idx, client_nodes,
                           params);
    case System::kFaSST:
      return make_baseline(cluster, fasst_config(), server_idx, client_nodes,
                           params);
    case System::kOctopus:
      return make_baseline(cluster, octopus_config(), server_idx,
                           client_nodes, params);
    case System::kFaRM:
      return make_baseline(cluster, farm_config(), server_idx, client_nodes,
                           params);
    case System::kScaleRPC:
      return make_baseline(cluster,
                           scalerpc_config(params.scalerpc_process_per_warmup),
                           server_idx, client_nodes, params);
    case System::kDaRPC:
      return make_baseline(cluster, darpc_config(), server_idx, client_nodes,
                           params);
    case System::kHerd:
      return make_baseline(cluster, herd_config(), server_idx, client_nodes,
                           params);
    case System::kLITE:
      return make_baseline(cluster, lite_config(params.lite_kernel_cost),
                           server_idx, client_nodes, params);
    case System::kSRFlushRpc:
      return make_durable(cluster, FlushVariant::kSRFlush, server_idx,
                          client_nodes, params);
    case System::kSFlushRpc:
      return make_durable(cluster, FlushVariant::kSFlush, server_idx,
                          client_nodes, params);
    case System::kWRFlushRpc:
      return make_durable(cluster, FlushVariant::kWRFlush, server_idx,
                          client_nodes, params);
    case System::kWFlushRpc:
      return make_durable(cluster, FlushVariant::kWFlush, server_idx,
                          client_nodes, params);
  }
  throw std::invalid_argument("unknown system");
}

core::RpcDeployment make_deployment(core::Cluster& cluster, System s,
                                    const repl::ReplicationConfig& rcfg,
                                    std::span<const std::size_t> client_nodes,
                                    const core::ModelParams& params) {
  if (!rcfg.active()) {
    return make_deployment(cluster, s, 0, client_nodes, params);
  }
  if (!info_of(s).durable) {
    throw std::invalid_argument("replication requires a durable RPC (got " +
                                std::string(name_of(s)) + ")");
  }
  FlushVariant v = FlushVariant::kWFlush;
  switch (s) {
    case System::kWFlushRpc: v = FlushVariant::kWFlush; break;
    case System::kSFlushRpc: v = FlushVariant::kSFlush; break;
    case System::kWRFlushRpc: v = FlushVariant::kWRFlush; break;
    case System::kSRFlushRpc: v = FlushVariant::kSRFlush; break;
    default: throw std::invalid_argument("replication requires a durable RPC");
  }
  return repl::make_replicated_deployment(cluster, v, rcfg, client_nodes,
                                          params);
}

}  // namespace prdma::rpcs
