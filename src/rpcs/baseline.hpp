#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/node.hpp"
#include "core/object_store.hpp"
#include "core/params.hpp"
#include "core/redo_log.hpp"
#include "core/rpc.hpp"
#include "rdma/completer.hpp"
#include "rdma/session.hpp"
#include "sim/sync.hpp"

namespace prdma::rpcs {

/// Configuration matrix for the baseline RPC systems of Fig. 2 /
/// Table 1. The paper's own observation (§3) is that these systems all
/// share one flow — request, receiver-CPU handling with persistence,
/// response — and differ only in the primitives used at each step;
/// this struct encodes exactly those differences.
struct BaselineConfig {
  std::string_view name = "?";

  /// Transport of the request channel.
  rnic::Transport req_transport = rnic::Transport::kRC;

  /// How the request reaches the server CPU.
  enum class Detect {
    kPoll,      ///< one-sided write into a ring, CPU polls (FaRM/L5/RFP/...)
    kWriteImm,  ///< write-with-immediate, CPU gets a recv WC (Octopus/LITE)
    kRecv,      ///< two-sided send, CPU gets a recv WC (DaRPC/FaSST)
  };
  Detect detect = Detect::kPoll;

  /// How the response reaches the client.
  enum class Respond {
    kWrite,       ///< server RDMA-writes into the client's buffer; client polls
    kClientRead,  ///< client repeatedly RDMA-reads the server result slot (RFP)
    kWriteImm,    ///< server write-imm; client takes a recv WC (Octopus/LITE)
    kUdSend,      ///< response on a separate UD QP (Herd)
    kSend,        ///< two-sided send back (DaRPC/FaSST)
  };
  Respond respond = Respond::kWrite;

  /// Extra per-op software cost on each side (LITE kernel traps).
  sim::SimTime extra_client_cost = 0;
  sim::SimTime extra_server_cost = 0;

  /// Additional verbs posted per request (L5's separate valid-flag write).
  std::uint32_t extra_posts = 0;

  /// ScaleRPC: one warm-up exchange per this many process-phase ops
  /// (0 = no warm-up phases).
  std::uint32_t warmup_every = 0;

  /// UD MTU limit applies (FaSST/Herd responses).
  bool mtu_limited = false;

  /// §4.4.1 case study (Fig. 7a): follow the data write with a WFlush
  /// so remote persistence becomes visible at the flush ACK, before
  /// the RPC response. Only meaningful for write-request systems.
  bool wflush_after_write = false;
};

BaselineConfig farm_config();
BaselineConfig l5_config();
BaselineConfig rfp_config();
BaselineConfig scalerpc_config(std::uint32_t process_per_warmup);
BaselineConfig octopus_config();
BaselineConfig lite_config(sim::SimTime kernel_cost);
BaselineConfig herd_config();
BaselineConfig darpc_config();
BaselineConfig fasst_config();
/// Octopus retrofitted with the WFlush primitive (§4.4.1, Fig. 7a).
BaselineConfig octopus_wflush_config();

class BaselineServer;

/// Client half of a baseline RPC system. Traditional semantics: the
/// call completes when the *response* arrives; the server persisted
/// the data before responding, so completion == durability (the
/// coupling the paper's durable RPCs break).
class BaselineClient : public core::RpcClient {
 public:
  sim::Task<core::RpcResult> call(const core::RpcRequest& req) override;
  sim::Task<core::RpcResult> call_batch(
      const std::vector<core::RpcRequest>& reqs) override;
  [[nodiscard]] std::string_view name() const override;
  void abort_pending() override;

 private:
  friend class BaselineServer;
  BaselineClient(BaselineServer& server, core::Node& node, std::size_t idx);

  sim::Task<core::RpcResult> do_call(core::RpcOp op, std::uint64_t obj_id,
                                     std::uint32_t len, std::uint32_t batch);
  sim::Task<> maybe_warmup(std::uint64_t image_len);
  sim::Task<bool> await_response(std::uint64_t seq, std::uint32_t resp_len);

  BaselineServer& server_;
  core::Node& node_;
  std::size_t conn_idx_;

  rnic::Cq scq_;
  rnic::Cq rcq_;
  std::unique_ptr<rdma::Completer> completer_;
  std::unique_ptr<rdma::QpSession> session_;     // request channel
  std::unique_ptr<rdma::QpSession> ud_session_;  // Herd response channel
  rnic::Qp* ud_qp_ = nullptr;

  std::uint64_t next_seq_ = 1;
  std::uint64_t ops_since_warmup_ = 0;
  bool recvs_posted_ = false;
  bool aborted_ = false;
  std::uint64_t staging_base_ = 0;
  std::uint64_t resp_base_ = 0;       // client DRAM (write/write-imm paths)
  std::uint64_t warmup_ack_addr_ = 0;
};

/// Server half: per-connection request rings / recv buffers, inline
/// handling (persist + injected processing) and the configured
/// response path.
class BaselineServer : public core::RpcServer {
 public:
  BaselineServer(core::Cluster& cluster, std::size_t server_idx,
                 BaselineConfig config, const core::ModelParams& params);
  ~BaselineServer() override;

  std::unique_ptr<BaselineClient> connect_client(std::size_t client_idx);

  void start() override;
  [[nodiscard]] const core::ServerStats& stats() const override {
    return stats_;
  }
  [[nodiscard]] std::string_view name() const override { return config_.name; }

  // Fault-injection interface (traditional-RPC side of Fig. 12): the
  // server has no redo log, so a restart recovers nothing — clients
  // must re-send everything incomplete.
  void on_crash() override;
  sim::Task<> recover_and_restart() override;
  void reconnect_client(core::RpcClient& client) override;
  [[nodiscard]] core::ObjectStore& store() { return *store_; }
  [[nodiscard]] const BaselineConfig& config() const { return config_; }

 private:
  friend class BaselineClient;

  struct Conn {
    std::size_t idx = 0;
    core::Node* client = nullptr;
    rnic::Qp* qp = nullptr;         // request channel endpoint
    rnic::Qp* ud_qp = nullptr;      // Herd response endpoint
    std::unique_ptr<rnic::Cq> scq;
    std::unique_ptr<rnic::Cq> rcq;
    std::unique_ptr<rdma::Completer> completer;
    std::unique_ptr<rdma::QpSession> session;
    std::unique_ptr<rdma::QpSession> ud_session;
    core::RedoLog ring;             // request ring view (DRAM)
    std::uint64_t next_seq = 1;
    std::unique_ptr<sim::Channel<std::uint64_t>> arrivals;
    std::uint64_t msg_base = 0;     // recv buffers (send-based detect)
    std::uint32_t msg_slots = 0;
    std::uint64_t result_base = 0;  // server-side result slots (RFP)
    std::uint64_t stage_addr = 0;   // response staging
    std::uint64_t warmup_base = 0;  // ScaleRPC announcement slot
    std::uint64_t warmup_seen = 0;
    std::unique_ptr<sim::Channel<std::uint64_t>> warmup_ch;
    mem::NodeMemory::WatchId ring_watch = 0;
    mem::NodeMemory::WatchId warmup_watch = 0;
    // client-side addresses
    std::uint64_t client_resp_base = 0;
    std::uint64_t client_warmup_ack = 0;
    std::uint64_t client_staging = 0;

    Conn(core::Node& server_node, core::LogLayout layout)
        : ring(server_node, layout) {}
  };

  sim::Task<> conn_loop_poll(Conn& conn);
  sim::Task<> conn_loop_wc(Conn& conn);
  sim::Task<> warmup_loop(Conn& conn);
  sim::Task<> handle_and_respond(Conn& conn, core::LogEntryView e);

  core::Cluster& cluster_;
  core::Node& server_;
  BaselineConfig config_;
  core::ModelParams params_;
  std::unique_ptr<core::ObjectStore> store_;
  std::vector<std::unique_ptr<Conn>> conns_;
  core::ServerStats stats_;
  bool running_ = false;
  std::uint64_t epoch_ = 0;  ///< crash-zombie guard (see durable server)

  void install_detection(Conn& conn);
};

}  // namespace prdma::rpcs
