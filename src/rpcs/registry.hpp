#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/durable_rpc.hpp"
#include "core/params.hpp"
#include "core/rpc.hpp"
#include "repl/replication.hpp"
#include "rpcs/baseline.hpp"

namespace prdma::rpcs {

/// Every RPC system this repository implements: the nine baselines of
/// Table 1 / Fig. 2 plus the paper's four durable RPCs.
enum class System : std::uint8_t {
  kL5,
  kRFP,
  kFaSST,
  kOctopus,
  kFaRM,
  kScaleRPC,
  kDaRPC,
  kHerd,
  kLITE,
  kSRFlushRpc,
  kSFlushRpc,
  kWRFlushRpc,
  kWFlushRpc,
};

/// Static facts about a system (drives Table 1 and bench selection).
struct SystemInfo {
  System system;
  std::string_view name;
  std::string_view primitive;  ///< "write", "send", "write-imm"
  std::string_view transport;  ///< "RC", "UC", "UD"
  bool durable;                ///< decouples persistence from processing
  bool two_sided;              ///< interrupts the receiver CPU per request
  bool kernel_level;
  /// Object-size ceiling (UD MTU constraints); 0 = unlimited.
  std::uint64_t max_object = 0;
};

/// All implemented systems in the paper's presentation order.
const std::vector<SystemInfo>& all_systems();

const SystemInfo& info_of(System s);
std::string_view name_of(System s);

/// Maps a durable-RPC flush variant to its System enumerator (the
/// crash-schedule explorer iterates FlushVariants, the registry and
/// fault harness speak System).
System system_for(core::FlushVariant v);

/// Systems compared against the write-primitive durable RPCs in the
/// paper's figures (L5, RFP, Octopus, FaRM, ScaleRPC).
std::vector<System> write_family();
/// Systems compared against the send-primitive durable RPCs (DaRPC,
/// FaSST where the object size allows).
std::vector<System> send_family();
/// The evaluation line-up of Figs. 8-20 (baselines + durable RPCs).
std::vector<System> evaluation_lineup(std::uint64_t object_size);

/// Builds a connected server + clients deployment of `s` over
/// `cluster`. Node `server_idx` hosts the server; each entry of
/// `client_nodes` gets one client. The deployment is started.
core::RpcDeployment make_deployment(core::Cluster& cluster, System s,
                                    std::size_t server_idx,
                                    std::span<const std::size_t> client_nodes,
                                    const core::ModelParams& params);

/// Replication-aware deployment (the `--replication` axis every bench
/// binary can sweep). With rcfg.protocol == kNone this is exactly the
/// single-primary deployment above (server on node 0). Otherwise `s`
/// must be one of the four durable RPCs — replication forwards
/// redo-log transactions, which baselines do not have — and the
/// replicas occupy nodes [0, rcfg.replicas) with every client node
/// beyond them.
core::RpcDeployment make_deployment(core::Cluster& cluster, System s,
                                    const repl::ReplicationConfig& rcfg,
                                    std::span<const std::size_t> client_nodes,
                                    const core::ModelParams& params);

}  // namespace prdma::rpcs
