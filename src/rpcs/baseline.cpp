#include "rpcs/baseline.hpp"

#include <algorithm>
#include <cassert>

#include "core/wire.hpp"

namespace prdma::rpcs {

using core::LogEntryView;
using core::LogLayout;
using core::RpcOp;
using core::RpcRequest;
using core::RpcResult;
using sim::SimTime;
using sim::Task;

namespace {

constexpr std::uint32_t kRingSlots = 16;     ///< covers the pipelined fault harness
constexpr std::uint32_t kRecvSlots = 8;
constexpr SimTime kReadPollBackoff = 2000;   ///< RFP client re-read interval

}  // namespace

// ------------------------------------------------------------- configs

BaselineConfig farm_config() {
  BaselineConfig c;
  c.name = "FaRM";
  c.detect = BaselineConfig::Detect::kPoll;
  c.respond = BaselineConfig::Respond::kWrite;
  return c;
}

BaselineConfig l5_config() {
  BaselineConfig c;
  c.name = "L5";
  c.detect = BaselineConfig::Detect::kPoll;
  c.respond = BaselineConfig::Respond::kWrite;
  c.extra_posts = 1;  // data write + separate valid-flag write (Fig. 2e)
  return c;
}

BaselineConfig rfp_config() {
  BaselineConfig c;
  c.name = "RFP";
  c.detect = BaselineConfig::Detect::kPoll;
  c.respond = BaselineConfig::Respond::kClientRead;  // Fig. 2f
  return c;
}

BaselineConfig scalerpc_config(std::uint32_t process_per_warmup) {
  BaselineConfig c;
  c.name = "ScaleRPC";
  c.detect = BaselineConfig::Detect::kPoll;
  c.respond = BaselineConfig::Respond::kWrite;
  c.warmup_every = process_per_warmup;  // Fig. 2g
  return c;
}

BaselineConfig octopus_config() {
  BaselineConfig c;
  c.name = "Octopus";
  c.detect = BaselineConfig::Detect::kWriteImm;  // Fig. 2h
  c.respond = BaselineConfig::Respond::kWriteImm;
  return c;
}

BaselineConfig lite_config(sim::SimTime kernel_cost) {
  BaselineConfig c;
  c.name = "LITE";
  c.detect = BaselineConfig::Detect::kWriteImm;  // Fig. 2i (kernel-level)
  c.respond = BaselineConfig::Respond::kWriteImm;
  c.extra_client_cost = kernel_cost;
  c.extra_server_cost = kernel_cost;
  return c;
}

BaselineConfig herd_config() {
  BaselineConfig c;
  c.name = "Herd";
  c.req_transport = rnic::Transport::kUC;  // UC write request (Fig. 2c)
  c.detect = BaselineConfig::Detect::kPoll;
  c.respond = BaselineConfig::Respond::kUdSend;
  c.mtu_limited = true;
  return c;
}

BaselineConfig darpc_config() {
  BaselineConfig c;
  c.name = "DaRPC";
  c.detect = BaselineConfig::Detect::kRecv;  // RC send/recv (Fig. 2a)
  c.respond = BaselineConfig::Respond::kSend;
  return c;
}

BaselineConfig fasst_config() {
  BaselineConfig c;
  c.name = "FaSST";
  c.req_transport = rnic::Transport::kUD;  // UD datagram RPCs (Fig. 2d)
  c.detect = BaselineConfig::Detect::kRecv;
  c.respond = BaselineConfig::Respond::kSend;
  c.mtu_limited = true;
  return c;
}

BaselineConfig octopus_wflush_config() {
  BaselineConfig c = octopus_config();
  c.name = "Octopus+WFlush";
  c.wflush_after_write = true;
  return c;
}

// ================================================================ server

BaselineServer::BaselineServer(core::Cluster& cluster, std::size_t server_idx,
                               BaselineConfig config,
                               const core::ModelParams& params)
    : cluster_(cluster),
      server_(cluster.node(server_idx)),
      config_(config),
      params_(params),
      store_(std::make_unique<core::ObjectStore>(
          server_, params.object_count,
          std::max<std::uint64_t>(params.max_payload, 64))) {}

BaselineServer::~BaselineServer() = default;

std::unique_ptr<BaselineClient> BaselineServer::connect_client(
    std::size_t client_idx) {
  assert(!running_);
  core::Node& client_node = cluster_.node(client_idx);

  LogLayout layout;
  layout.slots = kRingSlots;
  layout.payload_capacity = params_.max_payload;
  layout.base = server_.dram_alloc().alloc(layout.total_bytes(), 256);

  auto conn = std::make_unique<Conn>(server_, layout);
  conn->idx = conns_.size();
  conn->client = &client_node;
  conn->scq = std::make_unique<rnic::Cq>(server_.simulator());
  conn->rcq = std::make_unique<rnic::Cq>(server_.simulator());
  conn->arrivals =
      std::make_unique<sim::Channel<std::uint64_t>>(server_.simulator());
  conn->stage_addr = server_.dram_alloc().alloc(params_.max_payload + 64, 64);
  conn->result_base = server_.dram_alloc().alloc(params_.max_payload + 64, 64);
  conn->warmup_base = server_.dram_alloc().alloc(64, 64);

  if (config_.detect == BaselineConfig::Detect::kRecv) {
    conn->msg_slots = kRecvSlots;
    conn->msg_base =
        server_.dram_alloc().alloc(conn->msg_slots * layout.slot_bytes(), 256);
  }

  auto client = std::unique_ptr<BaselineClient>(
      new BaselineClient(*this, client_node, conn->idx));

  conns_.push_back(std::move(conn));
  Conn& c = *conns_.back();
  c.completer = std::make_unique<rdma::Completer>(server_.simulator(), *c.scq);
  c.client_resp_base = client->resp_base_;
  c.client_warmup_ack = client->warmup_ack_addr_;
  c.client_staging = client->staging_base_;

  // Region registration: request ring + warm-up slot are client-
  // writable; the RFP result slot is client-readable; the client's
  // response ring, warm-up ack and (for ScaleRPC reads) staging are
  // accessible to the server.
  server_.rnic().register_mr(layout.base, layout.total_bytes(),
                             rnic::Access::kRemoteWrite |
                                 rnic::Access::kRemoteFlush);
  server_.rnic().register_mr(c.warmup_base, 64,
                             static_cast<std::uint8_t>(
                                 rnic::Access::kRemoteWrite));
  server_.rnic().register_mr(c.result_base, params_.max_payload + 64,
                             static_cast<std::uint8_t>(
                                 rnic::Access::kRemoteRead));
  const std::uint64_t image_cap =
      LogLayout{0, kRingSlots, params_.max_payload}.slot_bytes();
  client_node.rnic().register_mr(
      client->resp_base_, kRingSlots * (params_.max_payload + 16),
      static_cast<std::uint8_t>(rnic::Access::kRemoteWrite));
  client_node.rnic().register_mr(client->warmup_ack_addr_, 64,
                                 static_cast<std::uint8_t>(
                                     rnic::Access::kRemoteWrite));
  client_node.rnic().register_mr(client->staging_base_,
                                 kRingSlots * image_cap,
                                 static_cast<std::uint8_t>(
                                     rnic::Access::kRemoteRead));

  auto [client_qp, server_qp] = rdma::connect_pair(
      client_node.rnic(), config_.req_transport, client->scq_, client->rcq_,
      server_.rnic(), config_.req_transport, *c.scq, *c.rcq);
  c.qp = server_qp;
  c.session = std::make_unique<rdma::QpSession>(server_.rnic(), *server_qp,
                                                *c.completer);
  client->completer_ =
      std::make_unique<rdma::Completer>(client_node.simulator(), client->scq_);
  client->session_ = std::make_unique<rdma::QpSession>(
      client_node.rnic(), *client_qp, *client->completer_);

  if (config_.respond == BaselineConfig::Respond::kUdSend) {
    auto [cud, sud] = rdma::connect_pair(
        client_node.rnic(), rnic::Transport::kUD, client->scq_, client->rcq_,
        server_.rnic(), rnic::Transport::kUD, *c.scq, *c.rcq);
    c.ud_qp = sud;
    c.ud_session = std::make_unique<rdma::QpSession>(server_.rnic(), *sud,
                                                     *c.completer);
    client->ud_qp_ = cud;
    client->ud_session_ = std::make_unique<rdma::QpSession>(
        client_node.rnic(), *cud, *client->completer_);
  }
  return client;
}

void BaselineServer::install_detection(Conn& conn) {
  switch (config_.detect) {
    case BaselineConfig::Detect::kPoll: {
      // Watch the request ring: each committed entry wakes the poller.
      Conn* c = &conn;
      const LogLayout& lay = c->ring.layout();
      conn.ring_watch = server_.mem().add_watch(
          lay.base + LogLayout::kHeaderBytes,
          lay.total_bytes() - LogLayout::kHeaderBytes, [c] {
            while (auto e = c->ring.peek(c->next_seq)) {
              c->arrivals->send(c->next_seq);
              ++c->next_seq;
            }
          });
      sim::spawn(conn_loop_poll(conn));
      break;
    }
    case BaselineConfig::Detect::kWriteImm: {
      // Notification-only recv WQEs for write-imm.
      for (std::uint32_t i = 0; i < kRecvSlots; ++i) {
        server_.rnic().post_recv(*conn.qp, 0, 0, i);
      }
      sim::spawn(conn_loop_wc(conn));
      break;
    }
    case BaselineConfig::Detect::kRecv: {
      const std::uint64_t slot_bytes = conn.ring.layout().slot_bytes();
      for (std::uint32_t i = 0; i < conn.msg_slots; ++i) {
        server_.rnic().post_recv(*conn.qp, conn.msg_base + i * slot_bytes,
                                 slot_bytes, i);
      }
      sim::spawn(conn_loop_wc(conn));
      break;
    }
  }
  if (config_.warmup_every > 0) {
    sim::spawn(warmup_loop(conn));
  }
}

void BaselineServer::start() {
  assert(!running_);
  running_ = true;
  for (auto& conn : conns_) {
    install_detection(*conn);
  }
}

void BaselineServer::on_crash() {
  running_ = false;
  ++epoch_;
  for (auto& conn : conns_) {
    if (conn->ring_watch != 0) {
      server_.mem().remove_watch(conn->ring_watch);
      conn->ring_watch = 0;
    }
    if (conn->warmup_watch != 0) {
      server_.mem().remove_watch(conn->warmup_watch);
      conn->warmup_watch = 0;
    }
    conn->arrivals->reset();
    if (conn->warmup_ch) conn->warmup_ch->reset();
    conn->scq->reset();
    conn->rcq->reset();
  }
}

sim::Task<> BaselineServer::recover_and_restart() {
  // Traditional server: nothing survives the crash — the request ring
  // was volatile DRAM and there is no redo log. Clients must re-send.
  assert(!running_ && server_.rnic().alive());
  running_ = true;
  for (auto& conn : conns_) {
    conn->completer =
        std::make_unique<rdma::Completer>(server_.simulator(), *conn->scq);
  }
  co_return;
}

void BaselineServer::reconnect_client(core::RpcClient& rpc_client) {
  auto& client = dynamic_cast<BaselineClient&>(rpc_client);
  Conn& conn = *conns_.at(client.conn_idx_);

  // Re-register the server-side regions lost with the NIC state.
  const core::LogLayout& relay = conn.ring.layout();
  server_.rnic().register_mr(relay.base, relay.total_bytes(),
                             rnic::Access::kRemoteWrite |
                                 rnic::Access::kRemoteFlush);
  server_.rnic().register_mr(conn.warmup_base, 64,
                             static_cast<std::uint8_t>(
                                 rnic::Access::kRemoteWrite));
  server_.rnic().register_mr(conn.result_base, params_.max_payload + 64,
                             static_cast<std::uint8_t>(
                                 rnic::Access::kRemoteRead));

  auto [client_qp, server_qp] = rdma::connect_pair(
      client.node_.rnic(), config_.req_transport, client.scq_, client.rcq_,
      server_.rnic(), config_.req_transport, *conn.scq, *conn.rcq);
  conn.qp = server_qp;
  conn.session = std::make_unique<rdma::QpSession>(server_.rnic(), *server_qp,
                                                   *conn.completer);
  client.completer_ =
      std::make_unique<rdma::Completer>(client.node_.simulator(), client.scq_);
  client.session_ = std::make_unique<rdma::QpSession>(
      client.node_.rnic(), *client_qp, *client.completer_);
  if (config_.respond == BaselineConfig::Respond::kUdSend) {
    auto [cud, sud] = rdma::connect_pair(
        client.node_.rnic(), rnic::Transport::kUD, client.scq_, client.rcq_,
        server_.rnic(), rnic::Transport::kUD, *conn.scq, *conn.rcq);
    conn.ud_qp = sud;
    conn.ud_session = std::make_unique<rdma::QpSession>(server_.rnic(), *sud,
                                                        *conn.completer);
    client.ud_qp_ = cud;
    client.ud_session_ = std::make_unique<rdma::QpSession>(
        client.node_.rnic(), *cud, *client.completer_);
  }
  // The volatile ring restarted empty: resynchronise the expected
  // sequence with whatever the client will send next.
  conn.next_seq = client.next_seq_;
  client.recvs_posted_ = false;
  client.aborted_ = false;
  install_detection(conn);
}

sim::Task<> BaselineServer::conn_loop_poll(Conn& conn) {
  auto& host = server_.host();
  const std::uint64_t epoch = epoch_;
  for (;;) {
    if (epoch != epoch_) break;  // zombie guard
    auto seq = co_await conn.arrivals->recv();
    if (!seq.has_value() || epoch != epoch_) break;
    const std::uint64_t sw0 = host.charged_ns();
    const sim::SimTime crit_t0 = server_.simulator().now();
    co_await host.charge_poll();
    co_await host.exec(host.params().handler_cost);
    if (epoch != epoch_) break;
    auto e = conn.ring.peek(*seq);
    if (!e.has_value()) continue;
    co_await handle_and_respond(conn, *e);
    stats_.critical_sw_ns += host.charged_ns() - sw0;
    cluster_.tracer_of(server_.id())
        .span_charged(trace::Component::kReceiverSw, *seq, crit_t0,
                      host.charged_ns() - sw0,
                      static_cast<std::uint16_t>(server_.id()));
  }
}

sim::Task<> BaselineServer::conn_loop_wc(Conn& conn) {
  auto& host = server_.host();
  const std::uint64_t slot_bytes = conn.ring.layout().slot_bytes();
  const std::uint64_t epoch = epoch_;
  for (;;) {
    if (epoch != epoch_) break;  // zombie guard
    auto wc = co_await conn.rcq->channel().recv();
    if (!wc.has_value() || epoch != epoch_) break;
    if (wc->status != rnic::WcStatus::kSuccess) continue;
    const std::uint64_t sw0 = host.charged_ns();
    const sim::SimTime crit_t0 = server_.simulator().now();
    co_await host.charge_recv_handler();
    if (epoch != epoch_) break;

    std::optional<LogEntryView> e;
    if (config_.detect == BaselineConfig::Detect::kWriteImm) {
      // Immediate carries the seq; the data sits in the ring slot.
      server_.rnic().post_recv(*conn.qp, 0, 0, 0);  // recycle notify WQE
      e = conn.ring.peek(wc->imm);
    } else {
      e = core::decode_entry_at(server_.mem(), wc->local_addr,
                                conn.ring.layout().payload_capacity);
      if (e.has_value()) {
        // Copy semantics: process from the message buffer; recycle the
        // slot only after handling (serial per connection).
        e->payload_addr = wc->local_addr + LogLayout::kEntryHeaderBytes;
      }
    }
    if (e.has_value()) {
      co_await handle_and_respond(conn, *e);
    }
    stats_.critical_sw_ns += host.charged_ns() - sw0;
    cluster_.tracer_of(server_.id())
        .span_charged(trace::Component::kReceiverSw, e ? e->seq : 0, crit_t0,
                      host.charged_ns() - sw0,
                      static_cast<std::uint16_t>(server_.id()));
    if (config_.detect == BaselineConfig::Detect::kRecv) {
      server_.rnic().post_recv(*conn.qp, wc->local_addr, slot_bytes, 0);
    }
  }
}

sim::Task<> BaselineServer::warmup_loop(Conn& conn) {
  // ScaleRPC warm-up phase (Fig. 2g): the client announces (seq, len);
  // the server fetches the request data from client memory with an
  // RDMA read, then acknowledges with a small write.
  auto& host = server_.host();
  Conn* c = &conn;
  conn.warmup_ch =
      std::make_unique<sim::Channel<std::uint64_t>>(server_.simulator());
  conn.warmup_watch = server_.mem().add_watch(conn.warmup_base, 24, [this, c] {
    const std::uint64_t wseq = core::load_u64(server_.mem(), c->warmup_base);
    if (wseq > c->warmup_seen) {
      c->warmup_seen = wseq;
      c->warmup_ch->send(wseq);
    }
  });
  for (;;) {
    auto wseq = co_await conn.warmup_ch->recv();
    if (!wseq.has_value()) break;
    co_await host.charge_poll();
    const std::uint64_t len = core::load_u64(server_.mem(), conn.warmup_base + 8);
    const auto wc = co_await conn.session->read(conn.client_staging, len,
                                                conn.stage_addr);
    (void)wc;
    core::store_u64(server_.mem(), conn.stage_addr, *wseq);
    co_await host.exec(host.params().post_cost);
    conn.session->post_write_nowait(conn.stage_addr, 8, conn.client_warmup_ack);
  }
}

sim::Task<> BaselineServer::handle_and_respond(Conn& conn, LogEntryView e) {
  auto& host = server_.host();
  const std::uint64_t epoch = epoch_;
  if (config_.extra_server_cost > 0) {
    co_await host.exec(config_.extra_server_cost);
    if (epoch != epoch_) co_return;
  }
  if (params_.rpc_processing > 0) {
    co_await host.exec(params_.rpc_processing * e.batch);
    if (epoch != epoch_) co_return;
  }

  std::uint32_t resp_len = 0;
  if (e.op == RpcOp::kWrite) {
    // Durable apply BEFORE responding: this is how traditional RPCs
    // "naturally" guarantee remote persistence (§3) — and why their
    // completion is late.
    const std::uint32_t sub_len = e.payload_len / e.batch;
    for (std::uint32_t i = 0; i < e.batch; ++i) {
      co_await store_->apply_write(e.obj_id + i, e.payload_addr + i * sub_len,
                                   sub_len);
      if (epoch != epoch_) co_return;
    }
    stats_.bytes_applied += e.payload_len;
  } else {
    resp_len = e.req_len;
    co_await store_->read_into(e.obj_id, conn.stage_addr, resp_len);
    if (epoch != epoch_) co_return;
  }
  stats_.ops_processed += e.batch;

  // Response: [payload][commit seq] via the configured path.
  core::store_u64(server_.mem(), conn.stage_addr + resp_len, e.seq);
  switch (config_.respond) {
    case BaselineConfig::Respond::kWrite:
      co_await host.exec(host.params().post_cost);
      conn.session->post_write_nowait(
          conn.stage_addr, resp_len + 8,
          conn.client_resp_base + e.resp_slot * (params_.max_payload + 16));
      break;
    case BaselineConfig::Respond::kClientRead: {
      // Leave the result in server memory; the client RDMA-reads it.
      server_.mem().cpu_write_payload(
          conn.result_base,
          server_.mem().read_payload(conn.stage_addr, resp_len + 8));
      break;
    }
    case BaselineConfig::Respond::kWriteImm:
      co_await host.exec(host.params().post_cost);
      conn.session->post_write_nowait(
          conn.stage_addr, resp_len + 8,
          conn.client_resp_base + e.resp_slot * (params_.max_payload + 16),
          static_cast<std::uint32_t>(e.seq));
      break;
    case BaselineConfig::Respond::kUdSend:
      co_await host.exec(host.params().post_cost);
      conn.ud_session->post_send_nowait(conn.stage_addr, resp_len + 8);
      break;
    case BaselineConfig::Respond::kSend:
      co_await host.exec(host.params().post_cost);
      conn.session->post_send_nowait(conn.stage_addr, resp_len + 8);
      break;
  }
}

// ================================================================ client

BaselineClient::BaselineClient(BaselineServer& server, core::Node& node,
                               std::size_t idx)
    : server_(server),
      node_(node),
      conn_idx_(idx),
      scq_(node.simulator()),
      rcq_(node.simulator()) {
  const auto& p = server.params_;
  const std::uint64_t image_cap =
      LogLayout{0, kRingSlots, p.max_payload}.slot_bytes();
  staging_base_ = node_.dram_alloc().alloc(kRingSlots * image_cap, 256);
  resp_base_ =
      node_.dram_alloc().alloc(kRingSlots * (p.max_payload + 16), 256);
  warmup_ack_addr_ = node_.dram_alloc().alloc(64, 64);

  // Recv buffers for send-based / write-imm response paths.
  // (Posted lazily in do_call for the QP that exists by then.)
}

std::string_view BaselineClient::name() const { return server_.config_.name; }

void BaselineClient::abort_pending() {
  aborted_ = true;
  // Wake response pollers parked on memory watches by touching the
  // whole response ring (their predicates observe aborted_).
  std::vector<std::byte> zeros(kRingSlots * (server_.params_.max_payload + 16),
                               std::byte{0});
  node_.mem().cpu_write(resp_base_, zeros);
  core::store_u64(node_.mem(), warmup_ack_addr_, 0);
  // Wake verbs/recv waiters.
  scq_.reset();
  rcq_.reset();
}

sim::Task<RpcResult> BaselineClient::call(const RpcRequest& req) {
  co_return co_await do_call(req.op, req.obj_id, req.len, 1);
}

sim::Task<RpcResult> BaselineClient::call_batch(
    const std::vector<RpcRequest>& reqs) {
  if (reqs.empty()) co_return RpcResult{};
  co_return co_await do_call(reqs.front().op, reqs.front().obj_id,
                             reqs.front().len,
                             static_cast<std::uint32_t>(reqs.size()));
}

sim::Task<> BaselineClient::maybe_warmup(std::uint64_t image_len) {
  const auto& cfg = server_.config_;
  if (cfg.warmup_every == 0) co_return;
  if (ops_since_warmup_++ % cfg.warmup_every != 0) co_return;

  auto& conn = *server_.conns_[conn_idx_];
  const std::uint64_t wseq = ops_since_warmup_;  // monotonic
  core::store_u64(node_.mem(), warmup_ack_addr_, 0);
  // Announcement: [wseq][image_len][reserved] at the server slot.
  core::ByteWriter w(24);
  w.u64(wseq);
  w.u64(image_len);
  w.u64(0);
  const std::uint64_t scratch = warmup_ack_addr_ + 16;
  node_.mem().cpu_write(scratch, w.view());
  co_await node_.host().charge_post();
  session_->post_write_nowait(scratch, 24, conn.warmup_base);
  co_await core::poll_until(node_, warmup_ack_addr_, 8, [this, wseq] {
    return aborted_ ||
           core::load_u64(node_.mem(), warmup_ack_addr_) == wseq;
  });
}

sim::Task<bool> BaselineClient::await_response(std::uint64_t seq,
                                               std::uint32_t resp_len) {
  const auto& cfg = server_.config_;
  auto& conn = *server_.conns_[conn_idx_];
  const std::uint64_t resp_slot_addr =
      resp_base_ +
      ((seq - 1) % kRingSlots) * (server_.params_.max_payload + 16);

  switch (cfg.respond) {
    case BaselineConfig::Respond::kWrite:
      co_await core::poll_until(
          node_, resp_slot_addr + resp_len, 8, [this, resp_slot_addr,
                                                resp_len, seq] {
            return aborted_ ||
                   core::load_u64(node_.mem(), resp_slot_addr + resp_len) ==
                       seq;
          });
      co_return !aborted_;
    case BaselineConfig::Respond::kClientRead: {
      // RFP: poll the server-side result slot with repeated RDMA reads.
      for (;;) {
        if (aborted_) co_return false;
        const auto wc = co_await session_->read(conn.result_base,
                                                resp_len + 8, resp_slot_addr);
        if (!wc.has_value() || wc->status != rnic::WcStatus::kSuccess) {
          co_return false;
        }
        co_await node_.host().charge_poll();
        if (core::load_u64(node_.mem(), resp_slot_addr + resp_len) == seq) {
          co_return true;
        }
        co_await sim::delay(node_.simulator(), kReadPollBackoff);
      }
    }
    case BaselineConfig::Respond::kWriteImm: {
      for (;;) {
        auto wc = co_await rcq_.channel().recv();
        if (!wc.has_value()) co_return false;
        node_.rnic().post_recv(session_->qp(), 0, 0, 0);
        if (wc->has_imm && wc->imm == static_cast<std::uint32_t>(seq)) {
          co_await node_.host().charge_poll();
          co_return true;
        }
      }
    }
    case BaselineConfig::Respond::kUdSend:
    case BaselineConfig::Respond::kSend: {
      auto wc = co_await rcq_.channel().recv();
      if (!wc.has_value()) co_return false;
      co_await node_.host().charge_recv_handler();
      // Serial client: the next recv on this connection IS the reply.
      const std::uint64_t slot_bytes =
          server_.params_.max_payload + 16;
      node_.rnic().post_recv(
          cfg.respond == BaselineConfig::Respond::kUdSend ? *ud_qp_
                                                          : session_->qp(),
          wc->local_addr, slot_bytes, 0);
      co_return true;
    }
  }
  co_return false;
}

sim::Task<RpcResult> BaselineClient::do_call(RpcOp op, std::uint64_t obj_id,
                                             std::uint32_t len,
                                             std::uint32_t batch) {
  const auto& cfg = server_.config_;
  auto& conn = *server_.conns_[conn_idx_];
  auto& sim = node_.simulator();
  RpcResult res;
  res.issued_at = sim.now();

  // Lazily post recv buffers for response paths that need them.
  if (!recvs_posted_) {
    recvs_posted_ = true;
    const std::uint64_t slot_bytes = server_.params_.max_payload + 16;
    if (cfg.respond == BaselineConfig::Respond::kSend) {
      for (int i = 0; i < 4; ++i) {
        const std::uint64_t buf = node_.dram_alloc().alloc(slot_bytes, 64);
        node_.rnic().post_recv(session_->qp(), buf, slot_bytes, 0);
      }
    } else if (cfg.respond == BaselineConfig::Respond::kUdSend) {
      for (int i = 0; i < 4; ++i) {
        const std::uint64_t buf = node_.dram_alloc().alloc(slot_bytes, 64);
        node_.rnic().post_recv(*ud_qp_, buf, slot_bytes, 0);
      }
    } else if (cfg.respond == BaselineConfig::Respond::kWriteImm) {
      for (int i = 0; i < 4; ++i) {
        node_.rnic().post_recv(session_->qp(), 0, 0, 0);
      }
    }
  }

  const std::uint32_t payload_len = op == RpcOp::kWrite ? len * batch : 0;
  const std::uint64_t image_len =
      LogLayout::kEntryHeaderBytes + payload_len + LogLayout::kCommitBytes;
  co_await maybe_warmup(image_len);

  if (cfg.extra_client_cost > 0) {
    co_await node_.host().exec(cfg.extra_client_cost);
  }
  co_await node_.host().charge_post();
  for (std::uint32_t i = 0; i < cfg.extra_posts; ++i) {
    co_await node_.host().charge_post();
  }

  if (aborted_) co_return res;
  const std::uint64_t seq = next_seq_++;
  res.tag = seq;
  const std::uint64_t resp_slot = (seq - 1) % kRingSlots;
  const std::uint32_t resp_len = op == RpcOp::kRead ? len : 0;
  const auto image = core::encode_log_entry_image(
      node_.mem(), seq, op, obj_id, payload_len, resp_slot, batch,
      op == RpcOp::kRead ? len : 0);
  const std::uint64_t image_cap =
      LogLayout{0, kRingSlots, server_.params_.max_payload}.slot_bytes();
  const std::uint64_t stage = staging_base_ + resp_slot * image_cap;
  node_.mem().cpu_write_payload(stage, image);

  // Clear the local response commit word before reuse.
  const std::uint64_t resp_slot_addr =
      resp_base_ + resp_slot * (server_.params_.max_payload + 16);
  core::store_u64(node_.mem(), resp_slot_addr + resp_len, 0);

  const LogLayout& lay = conn.ring.layout();
  switch (cfg.detect) {
    case BaselineConfig::Detect::kPoll:
      session_->post_write_nowait(stage, image.size(), lay.slot_addr(seq));
      if (cfg.extra_posts > 0) {
        // L5's separate valid-flag write (rewrites the commit word).
        session_->post_write_nowait(stage + image.size() - 8, 8,
                                    lay.slot_addr(seq) + image.size() - 8);
      }
      break;
    case BaselineConfig::Detect::kWriteImm:
      session_->post_write_nowait(stage, image.size(), lay.slot_addr(seq),
                                  static_cast<std::uint32_t>(seq));
      break;
    case BaselineConfig::Detect::kRecv:
      session_->post_send_nowait(stage, image.size());
      break;
  }

  sim::SimTime durable_at = 0;
  if (cfg.wflush_after_write && op == RpcOp::kWrite &&
      cfg.detect != BaselineConfig::Detect::kRecv) {
    // §4.4.1: the WFlush ACK makes remote persistence visible before
    // the RPC response arrives.
    const auto fwc = co_await session_->wflush(lay.slot_addr(seq),
                                               image.size());
    if (fwc.has_value() && fwc->status == rnic::WcStatus::kSuccess) {
      durable_at = sim.now();
    }
  }

  const bool ok = co_await await_response(seq, resp_len);
  if (!ok || aborted_) co_return res;
  res.completed_at = sim.now();
  res.durable_at = op == RpcOp::kWrite
                       ? (durable_at != 0 ? durable_at : res.completed_at)
                       : 0;
  res.ok = true;
  co_return res;
}

}  // namespace prdma::rpcs
