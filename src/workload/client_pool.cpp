#include "workload/client_pool.hpp"

#include <algorithm>

namespace prdma::workload {

using core::RpcOp;
using core::RpcRequest;

ClientPool::ClientPool(sim::Simulator& sim, core::RpcClient& client,
                       ClientPoolConfig cfg)
    : sim_(sim),
      client_(client),
      cfg_(cfg),
      rng_(cfg.seed),
      zipf_(std::max<std::uint64_t>(1, cfg.object_count), cfg.zipf_theta),
      ready_(sim, 0) {
  cfg_.clients = std::max<std::uint64_t>(1, cfg_.clients);
  cfg_.max_outstanding = std::max<std::uint32_t>(1, cfg_.max_outstanding);
  ring_.resize(static_cast<std::size_t>(cfg_.clients), 0);
}

void ClientPool::start() {
  if (cfg_.total_ops == 0) {
    done_ = true;
    return;
  }
  for (std::uint32_t p = 0; p < cfg_.max_outstanding; ++p) {
    sim::spawn(puller());
  }
  // Every virtual client's first arrival goes through the same think
  // draw as its steady state, de-synchronizing the initial burst.
  for (std::uint64_t id = 0; id < cfg_.clients; ++id) {
    queue_next(static_cast<std::uint32_t>(id));
  }
}

void ClientPool::queue_next(std::uint32_t id) {
  if (cfg_.mean_think_ns == 0) {
    wake_client(id);
    return;
  }
  const auto think = static_cast<sim::SimTime>(
      rng_.exponential(static_cast<double>(cfg_.mean_think_ns)));
  sim_.schedule(think, [this, id] { wake_client(id); });
}

void ClientPool::wake_client(std::uint32_t id) {
  ring_[(ring_head_ + ring_size_) % ring_.size()] = id;
  ++ring_size_;
  ready_.release();
}

std::uint32_t ClientPool::ring_pop() {
  const std::uint32_t id = ring_[ring_head_];
  ring_head_ = (ring_head_ + 1) % ring_.size();
  --ring_size_;
  return id;
}

sim::Task<> ClientPool::puller() {
  for (;;) {
    co_await ready_.acquire();
    // The budget can drain while we waited (other pullers consumed
    // it, or the shutdown flush below woke us with an empty ring).
    if (issued_ >= cfg_.total_ops) co_return;
    const std::uint32_t id = ring_pop();
    ++issued_;

    RpcRequest req;
    req.obj_id = zipf_.next(rng_);
    req.op = rng_.bernoulli(cfg_.read_ratio) ? RpcOp::kRead : RpcOp::kWrite;
    req.len = cfg_.op_len;
    const core::RpcResult res = co_await client_.call(req);

    if (res.ok) {
      ++stats_.ops_completed;
      stats_.latency.record(res.latency());
      if (req.op == RpcOp::kWrite) {
        stats_.write_latency.record(res.latency());
        if (res.durable_at > res.issued_at) {
          stats_.durable_latency.record(res.durable_at - res.issued_at);
        }
      } else {
        stats_.read_latency.record(res.latency());
      }
    }

    ++attempts_done_;
    if (attempts_done_ == cfg_.total_ops) {
      finished_at_ = sim_.now();
      done_ = true;
      // Flush pullers parked on acquire so no coroutine frame
      // outlives the run suspended forever.
      ready_.release(cfg_.max_outstanding);
    } else if (issued_ < cfg_.total_ops) {
      queue_next(id);
    }
  }
}

}  // namespace prdma::workload
