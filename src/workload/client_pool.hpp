#pragma once

#include <cstdint>
#include <vector>

#include "core/rpc.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "stats/histogram.hpp"

namespace prdma::workload {

/// Knobs of one host's aggregated closed-loop client population.
struct ClientPoolConfig {
  std::uint64_t clients = 1;          ///< K virtual closed-loop clients
  std::uint64_t total_ops = 0;        ///< pool-wide operation budget
  std::uint32_t max_outstanding = 8;  ///< concurrent RPCs in flight
  sim::SimTime mean_think_ns = 0;     ///< exponential think time (0 = none)
  double read_ratio = 0.0;
  std::uint32_t op_len = 64;          ///< request payload bytes
  std::uint64_t object_count = 1;
  double zipf_theta = 0.99;
  std::uint64_t seed = 1;
};

/// What the pool's completed operations recorded. Field-compatible
/// with bench_util's per-driver shard accounting so run_micro merges
/// pools and classic drivers identically.
struct ClientPoolStats {
  std::uint64_t ops_completed = 0;  ///< ok responses only
  stats::LatencyHistogram latency;
  stats::LatencyHistogram write_latency;
  stats::LatencyHistogram read_latency;
  stats::LatencyHistogram durable_latency;
};

/// K closed-loop clients on one host, aggregated into a single
/// event-driven process (DESIGN.md §7.7).
///
/// One coroutine per client stops scaling long before the paper's
/// rack sizes: 512 hosts x 1000 clients would be half a million
/// coroutine frames plus a private mt19937 (~2.5 KB) each. The pool
/// keeps the closed-loop *semantics* — a virtual client has at most
/// one request outstanding, thinks for an exponential interval after
/// every completion, then queues again — while the *mechanics* are
/// K entries in a preallocated ready ring drained by
/// `max_outstanding` puller coroutines, all drawing from one shared
/// RNG in event order. Per virtual client the steady-state footprint
/// is one ring slot; issuing an op allocates nothing.
///
/// Determinism: the pool lives entirely on the owning host's
/// simulator shard, so ring pushes, RNG draws and semaphore wakeups
/// execute in event order — a pure function of config + seed,
/// byte-identical at every engine thread count.
class ClientPool {
 public:
  /// `sim` must be the shard of the node `client` issues from.
  ClientPool(sim::Simulator& sim, core::RpcClient& client,
             ClientPoolConfig cfg);
  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  /// Spawns the pullers and queues every virtual client's first
  /// arrival. Call before the cluster runs.
  void start();

  [[nodiscard]] const ClientPoolStats& stats() const { return stats_; }
  /// True once the pool completed its whole op budget.
  [[nodiscard]] bool done() const { return done_; }
  /// Simulated time of the budget's last completion.
  [[nodiscard]] sim::SimTime finished_at() const { return finished_at_; }

 private:
  sim::Task<> puller();
  /// Client `id` finished thinking: ready-ring push + puller wakeup.
  void wake_client(std::uint32_t id);
  /// Schedules client `id`'s next arrival after its think time.
  void queue_next(std::uint32_t id);
  [[nodiscard]] std::uint32_t ring_pop();

  sim::Simulator& sim_;
  core::RpcClient& client_;
  ClientPoolConfig cfg_;
  sim::Rng rng_;
  sim::ZipfianGenerator zipf_;
  sim::Semaphore ready_;            ///< counts queued ready clients
  std::vector<std::uint32_t> ring_; ///< ready client ids, FIFO
  std::size_t ring_head_ = 0;
  std::size_t ring_size_ = 0;
  std::uint64_t issued_ = 0;        ///< ops handed to pullers
  std::uint64_t attempts_done_ = 0; ///< responses back (ok or not)
  ClientPoolStats stats_;
  sim::SimTime finished_at_ = 0;
  bool done_ = false;
};

}  // namespace prdma::workload
