#include "bench_util/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <numeric>
#include <thread>

namespace prdma::bench {

std::size_t SweepRunner::default_jobs() {
  // Floor of 2: on a single-core host a defaulted "parallel" sweep
  // previously collapsed to jobs=1, so the jobs=1-vs-N determinism
  // gate in engine_perf compared a run against itself. Two timeshared
  // workers still exercise the pool scheduling + merge path. Cap of 4:
  // micro cells are memory-bound and wider pools stop helping.
  const auto hw = static_cast<std::size_t>(std::thread::hardware_concurrency());
  return std::clamp<std::size_t>(hw, 2, 4);
}

sim::ThreadPool& SweepRunner::pool() {
  if (!pool_) pool_ = std::make_unique<sim::ThreadPool>(jobs_);
  return *pool_;
}

void SweepRunner::for_each(std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  for_each_hinted(n, {}, fn);
}

void SweepRunner::for_each_hinted(std::size_t n,
                                  const std::vector<double>& hints,
                                  const std::function<void(std::size_t)>& fn) {
  cell_seconds_.assign(n, 0.0);
  if (n == 0) return;
  const auto timed = [&](std::size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn(i);
    cell_seconds_[i] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  };
  if (jobs_ <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) timed(i);
    return;
  }
  // Longest-expected-first: submission order k maps to cell order[k].
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (hints.size() == n) {
    std::stable_sort(order.begin(), order.end(),
                     [&hints](std::size_t a, std::size_t b) {
                       return hints[a] > hints[b];
                     });
  }
  // Collect failures per original index so the rethrown exception is
  // the lowest-index one regardless of the hint permutation.
  std::vector<std::exception_ptr> errors(n);
  pool().parallel_for(n, [&](std::size_t k) {
    const std::size_t i = order[k];
    try {
      timed(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::size_t jobs_from(const Flags& flags) {
  return static_cast<std::size_t>(flags.u64("jobs", 1));
}

}  // namespace prdma::bench
