#include "bench_util/sweep.hpp"

#include <algorithm>
#include <thread>

namespace prdma::bench {

std::size_t SweepRunner::default_jobs() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

sim::ThreadPool& SweepRunner::pool() {
  if (!pool_) pool_ = std::make_unique<sim::ThreadPool>(jobs_);
  return *pool_;
}

void SweepRunner::for_each(std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs_ <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool().parallel_for(n, fn);
}

std::size_t jobs_from(const Flags& flags) {
  return static_cast<std::size_t>(flags.u64("jobs", 1));
}

}  // namespace prdma::bench
