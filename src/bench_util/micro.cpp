#include "bench_util/micro.hpp"

#include "bench_util/flags.hpp"
#include "bench_util/sweep.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/node.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "trace/export.hpp"
#include "workload/client_pool.hpp"

namespace prdma::bench {

using core::ModelParams;
using core::RpcOp;
using core::RpcRequest;
using sim::SimTime;
using sim::Task;

std::uint64_t effective_objects(const MicroConfig& cfg) {
  // Fit the object store into a bounded PM window (the paper's testbed
  // had 1 TB of Optane; we model a window). Cap the store at 192 MiB.
  const std::uint64_t slot = std::max<std::uint64_t>(cfg.object_size, 64);
  const std::uint64_t budget = 192ull << 20;
  return std::min<std::uint64_t>(cfg.objects, std::max<std::uint64_t>(
                                                  budget / slot, 64));
}

core::ModelParams params_for(const MicroConfig& cfg) {
  ModelParams p;
  p.seed = cfg.seed;
  p.max_payload = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(cfg.object_size) * cfg.batch, 64);
  p.object_count = effective_objects(cfg);
  p.rpc_processing = cfg.heavy_load ? 100 * sim::kMicrosecond : 0;
  p.link.background_load = cfg.net_load;
  p.link.jitter_sigma = cfg.jitter_sigma;
  p.link.loss_probability = cfg.loss_probability;
  p.topology = cfg.topology;
  p.faults = cfg.faults;
  if (cfg.retransmit_interval > 0) {
    p.rnic.retransmit_interval = cfg.retransmit_interval;
  }
  p.rnic.ddio = cfg.ddio;
  p.rnic.emulate_flush = cfg.emulate_flush;
  p.rnic.smartnic_rflush = cfg.smartnic_rflush;
  if (cfg.sflush_addressing_us != UINT64_MAX) {
    p.rnic.sflush_addressing = cfg.sflush_addressing_us * sim::kMicrosecond;
  }
  if (cfg.server_cores > 0) p.host.cores = cfg.server_cores;
  if (cfg.server_workers > 0) p.server_workers = cfg.server_workers;
  p.memory.content_mode = cfg.content_mode;

  // Size the PM window: object store + one redo log ring per client +
  // slack for headers/alignment.
  core::LogLayout lay;
  lay.slots = p.log_slots;
  lay.payload_capacity = p.max_payload;
  const std::uint64_t store_bytes =
      p.object_count * std::max<std::uint64_t>(p.max_payload, 64);
  const std::uint64_t log_bytes = cfg.clients * lay.total_bytes();
  p.memory.pm_capacity = store_bytes + log_bytes + (32ull << 20);

  // DRAM: staging/resp rings per client-side window + server buffers.
  // A replicated client opens one durable-RPC hop per replica, each
  // with its own staging/response rings (chain spreads them over the
  // forwarder nodes; sizing every node for the fan-out keeps the
  // parameter set uniform).
  const std::uint64_t fan_out =
      cfg.replication.active() ? cfg.replication.replicas : 1;
  const std::uint64_t per_conn =
      4 * static_cast<std::uint64_t>(p.flow_threshold) *
      (p.max_payload + 256);
  p.memory.dram_capacity = cfg.clients * fan_out * per_conn + (64ull << 20);
  return p;
}

namespace {

/// Per-driver slice of the result. Each driver coroutine lives on its
/// client's node/partition and records only here, so a partitioned run
/// has no cross-thread stat writes; the shards merge in spawn order
/// after the run (histogram merges are commutative bucket adds — the
/// merged stats equal the historical shared-result accounting).
struct DriverShard {
  MicroResult res;
  SimTime finished_at = 0;
  bool done = false;
};

struct ClientDriver {
  core::RpcClient* client;
  std::uint64_t ops;
  DriverShard* shard;
  sim::Rng rng;
};

Task<> drive_client(ClientDriver drv, const MicroConfig cfg,
                    std::uint64_t object_count, sim::Simulator& sim) {
  MicroResult* result = &drv.shard->res;
  sim::ZipfianGenerator zipf(object_count, cfg.zipf_theta);
  for (std::uint64_t i = 0; i < drv.ops; ++i) {
    RpcRequest req;
    req.obj_id = zipf.next(drv.rng);
    req.op = drv.rng.bernoulli(cfg.read_ratio) ? RpcOp::kRead : RpcOp::kWrite;
    req.len = cfg.object_size;

    core::RpcResult res;
    if (cfg.batch > 1) {
      std::vector<RpcRequest> batch(cfg.batch, req);
      res = co_await drv.client->call_batch(batch);
    } else {
      res = co_await drv.client->call(req);
    }
    if (res.ok) {
      ++result->ops_completed;
      result->latency.record(res.latency());
      if (req.op == RpcOp::kWrite) {
        result->write_latency.record(res.latency());
        if (res.durable_at > res.issued_at) {
          result->durable_latency.record(res.durable_at - res.issued_at);
        }
      } else {
        result->read_latency.record(res.latency());
      }
    }
  }
  drv.shard->finished_at = sim.now();
  drv.shard->done = true;
}

}  // namespace

MicroResult run_micro(rpcs::System system, const MicroConfig& cfg) {
  const ModelParams params = params_for(cfg);
  const std::size_t server_nodes =
      cfg.replication.active() ? cfg.replication.replicas : 1;
  sim::EngineConfig ecfg;
  ecfg.threads = std::max(1u, cfg.engine_threads);
  // Chain replication hops clients on forwarder nodes (coroutines that
  // span nodes) and kFull tracing needs one event ring: both pin the
  // whole cluster into a single partition, which is trivially
  // thread-count independent.
  const bool chain =
      cfg.replication.active() &&
      cfg.replication.protocol == repl::Protocol::kChain;
  // A lossy or faulty fabric draws loss/corruption decisions at every
  // egress; the per-node layout gives each link its own RNG stream so
  // those draws replay identically at every thread count (§7.8).
  const bool lossy = cfg.loss_probability > 0.0 || !cfg.faults.empty();
  if (chain || cfg.trace_mode == trace::Mode::kFull) {
    ecfg.partitioning = sim::EngineConfig::Partitioning::kSingle;
  } else if (cfg.partitioning != sim::EngineConfig::Partitioning::kAuto) {
    // Explicit layout override (rack_scale's per-node vs per-rack
    // barrier-count A/B). Cluster fills the per-rack map if needed.
    ecfg.partitioning = cfg.partitioning;
  } else if (cfg.topology.switched() &&
             net::rack_count(cfg.topology, server_nodes + cfg.clients) >= 2) {
    // Multi-rack fabrics partition per rack (DESIGN.md §7.7): only
    // the ToR-spine trunks cross partitions, so the conservative
    // lookahead grows from half the shortest cable to half the trunk
    // propagation and whole racks advance without a barrier. Pinned
    // at every thread count, like per-node below.
    ecfg.partitioning = sim::EngineConfig::Partitioning::kPerRack;
  } else if (cfg.topology.switched() || lossy) {
    // Switched fabrics interleave many nodes' packets through shared
    // egress ports, so same-timestamp ties between merged cross-
    // partition hops and locally scheduled events are common — and the
    // serial heap orders them differently than the epoch merge. Pin
    // the per-node layout even at one thread: every --engine-threads
    // value then replays the identical partitioned schedule. Lossy
    // point-to-point cells pin it too, for the per-link RNGs.
    ecfg.partitioning = sim::EngineConfig::Partitioning::kPerNode;
  }
  ecfg.adaptive_epochs = cfg.adaptive_epochs;
  core::Cluster cluster(params, server_nodes + cfg.clients, ecfg);
  cluster.enable_tracing(cfg.trace_mode, cfg.trace_capacity);
  trace::Tracer& tracer = cluster.tracer();

  std::vector<std::size_t> client_nodes;
  for (std::size_t i = 0; i < cfg.clients; ++i) {
    client_nodes.push_back(server_nodes + i);
  }
  auto dep = rpcs::make_deployment(cluster, system, cfg.replication,
                                   client_nodes, params);

  for (std::size_t r = 0; r < server_nodes; ++r) {
    cluster.node(r).host().set_load(cfg.server_cpu_load);
  }
  for (const std::size_t i : client_nodes) {
    cluster.node(i).host().set_load(cfg.client_cpu_load);
    // Client host software is the sender side of the Fig. 20 breakdown.
    cluster.node(i).host().set_tracer(&cluster.tracer_of(i),
                                      trace::Component::kSenderSw,
                                      static_cast<std::uint16_t>(i));
  }

  MicroResult result;
  // Durable RPCs pipeline (persist-ack completion lets the sender run
  // ahead, §4.2); traditional RPCs are closed-loop serial.
  const std::uint32_t depth = rpcs::info_of(system).durable
                                  ? std::max<std::uint32_t>(
                                        1, cfg.durable_pipeline)
                                  : 1;
  const std::uint64_t ops_per_loop =
      std::max<std::uint64_t>(1, cfg.ops / (cfg.clients * depth));
  std::vector<std::unique_ptr<DriverShard>> shards;
  std::vector<std::unique_ptr<workload::ClientPool>> pools;
  if (cfg.clients_per_host > 0) {
    // Aggregated closed-loop mode (DESIGN.md §7.7): one ClientPool per
    // host stands in for clients_per_host virtual clients — the 512-
    // host rack_scale points drive half a million clients this way.
    if (cfg.batch > 1) {
      throw std::invalid_argument(
          "clients_per_host mode issues single-op RPCs; batch must be 1");
    }
    const std::uint64_t ops_per_host =
        std::max<std::uint64_t>(1, cfg.ops / cfg.clients);
    pools.reserve(cfg.clients);
    for (std::size_t c = 0; c < cfg.clients; ++c) {
      workload::ClientPoolConfig pc;
      pc.clients = cfg.clients_per_host;
      pc.total_ops = ops_per_host;
      pc.max_outstanding = std::max<std::uint32_t>(1, cfg.client_outstanding);
      pc.mean_think_ns = cfg.client_think_ns;
      pc.read_ratio = cfg.read_ratio;
      pc.op_len = cfg.object_size;
      pc.object_count = params.object_count;
      pc.zipf_theta = cfg.zipf_theta;
      pc.seed = cfg.seed * 7919 + c * 64;  // same stream family as classic
      pools.push_back(std::make_unique<workload::ClientPool>(
          cluster.sim_of(client_nodes[c]), *dep.clients[c], std::move(pc)));
      pools.back()->start();
    }
  } else {
    shards.reserve(cfg.clients * depth);
    for (std::size_t c = 0; c < cfg.clients; ++c) {
      for (std::uint32_t d = 0; d < depth; ++d) {
        shards.push_back(std::make_unique<DriverShard>());
        ClientDriver drv{dep.clients[c].get(), ops_per_loop,
                         shards.back().get(),
                         sim::Rng(cfg.seed * 7919 + c * 64 + d)};
        sim::spawn(drive_client(drv, cfg, params.object_count,
                                cluster.sim_of(client_nodes[c])));
      }
    }
  }

  cluster.run();

  // Merge driver shards in spawn order. Every shard finishing is the
  // historical WaitGroup end condition: the cell ends when the last
  // driver records its final completion.
  bool finished = true;
  SimTime end_time = 0;
  for (const auto& shard : shards) {
    finished = finished && shard->done;
    end_time = std::max(end_time, shard->finished_at);
    result.ops_completed += shard->res.ops_completed;
    result.latency.merge(shard->res.latency);
    result.write_latency.merge(shard->res.write_latency);
    result.read_latency.merge(shard->res.read_latency);
    result.durable_latency.merge(shard->res.durable_latency);
  }
  for (const auto& pool : pools) {
    finished = finished && pool->done();
    end_time = std::max(end_time, pool->finished_at());
    const workload::ClientPoolStats& s = pool->stats();
    result.ops_completed += s.ops_completed;
    result.latency.merge(s.latency);
    result.write_latency.merge(s.write_latency);
    result.read_latency.merge(s.read_latency);
    result.durable_latency.merge(s.durable_latency);
  }
  if (!finished) {
    // Deadlock/bug guard: report what completed.
    end_time = std::max(end_time, cluster.engine().max_now());
  }

  result.duration = end_time;
  result.server = dep.server->stats();
  result.sim_events = cluster.events_executed();
  result.sim_pool_allocs = cluster.sim_pool_allocations();
  result.engine_partitions = cluster.engine().partitions();
  result.engine_epochs = cluster.engine().epochs();
  result.engine_barrier_wall_ns = cluster.engine().barrier_wall_ns();
  result.net_switch_hops = cluster.fabric().switch_hops();
  result.net_max_port_queue_ns = cluster.fabric().max_port_queue_ns();
  result.net_pfc_pauses = cluster.fabric().pfc_pauses();
  result.net_drops = cluster.fabric().packets_dropped();
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    result.rnic_retransmits += cluster.node(i).rnic().retransmits();
    auto& mem = cluster.node(i).mem();
    result.bytes_copied += mem.pm().bytes_copied() + mem.dram().bytes_copied();
    const mem::BufferPoolStats s = mem.pool().stats();
    result.pool.acquires += s.acquires;
    result.pool.recycles += s.recycles;
    result.pool.outstanding += s.outstanding;
    result.pool.outstanding_peak += s.outstanding_peak;
    result.pool.slab_bytes += s.slab_bytes;
    result.pool.oversize_allocs += s.oversize_allocs;
  }
  if (result.ops_completed > 0) {
    const auto ops = static_cast<double>(result.ops_completed);
    if (tracer.enabled()) {
      // Span-derived accounting: exact parity with the counter-based
      // fallback below (pinned by trace_test), but decomposed per
      // component.
      result.sender_sw_ns =
          static_cast<double>(tracer.total_ns(trace::Component::kSenderSw)) /
          ops;
      result.receiver_sw_ns =
          static_cast<double>(tracer.total_ns(trace::Component::kReceiverSw)) /
          ops;
    } else {
      // Tracing off: the host charged-ns / ServerStats counters carry
      // the same totals the spans would have recorded.
      std::uint64_t client_sw = 0;
      for (const std::size_t i : client_nodes) {
        client_sw += cluster.node(i).host().charged_ns();
      }
      result.sender_sw_ns = static_cast<double>(client_sw) / ops;
      result.receiver_sw_ns =
          static_cast<double>(result.server.critical_sw_ns) / ops;
    }
  }
  if (tracer.enabled()) {
    for (trace::ComponentId id = 0; id < tracer.component_count(); ++id) {
      const std::uint64_t total = tracer.total_ns(id);
      if (total == 0) continue;  // counters and idle components
      const trace::ComponentId mine =
          id < trace::kPredefinedComponents
              ? id
              : result.breakdown.intern(tracer.name_of(id));
      result.breakdown.add_total(mine, total, tracer.samples(id));
    }
    if (tracer.mode() == trace::Mode::kFull) {
      result.trace_json = trace::chrome_fragment(
          tracer, cfg.trace_pid, std::string(rpcs::name_of(system)));
    }
  }
  if (end_time > 0) {
    result.kops = static_cast<double>(result.ops_completed) * cfg.batch /
                  sim::to_ms(end_time);
  }
  return result;
}

std::vector<MicroResult> run_micro_cells(SweepRunner& runner,
                                         const std::vector<MicroCell>& cells) {
  // Expected cost of a cell scales with op count and object size; the
  // hint only orders scheduling, results stay in cell order.
  std::vector<double> hints;
  hints.reserve(cells.size());
  for (const MicroCell& c : cells) {
    hints.push_back(static_cast<double>(c.cfg.ops) *
                    (1000.0 + static_cast<double>(c.cfg.object_size)));
  }
  std::vector<MicroResult> out(cells.size());
  runner.for_each_hinted(cells.size(), hints, [&](std::size_t i) {
    out[i] = run_micro(cells[i].system, cells[i].cfg);
  });
  return out;
}

repl::ReplicationConfig replication_from(const Flags& flags) {
  repl::ReplicationConfig cfg;
  const std::string v = flags.str("replication", {});
  if (!v.empty()) {
    const auto p = repl::protocol_from_name(v);
    if (!p.has_value()) {
      throw std::invalid_argument(
          "--replication must be none, chain or mirror, got: " + v);
    }
    cfg.protocol = *p;
  }
  cfg.replicas = static_cast<std::size_t>(flags.u64("replicas", 2));
  return cfg;
}

net::TopologyConfig topology_from(const Flags& flags) {
  net::TopologyConfig cfg;
  const std::string v = flags.str("topology", {});
  if (!v.empty()) {
    const auto p = net::preset_from_name(v);
    if (!p.has_value()) {
      throw std::invalid_argument(
          "--topology must be point-to-point, rack or leaf-spine, got: " + v);
    }
    cfg.preset = *p;
  }
  cfg.racks = static_cast<std::uint32_t>(flags.u64("racks", cfg.racks));
  cfg.hosts_per_rack =
      static_cast<std::uint32_t>(flags.u64("hosts-per-rack", 0));
  cfg.spines = static_cast<std::uint32_t>(flags.u64("spines", cfg.spines));
  cfg.pfc = flags.flag("pfc");
  return cfg;
}

unsigned engine_threads_from(const Flags& flags, unsigned def) {
  const std::uint64_t t = flags.u64("engine-threads", def);
  return static_cast<unsigned>(std::max<std::uint64_t>(1, t));
}

mem::ContentMode content_mode_from(const Flags& flags, mem::ContentMode def) {
  const std::string v = flags.str("content-mode", {});
  if (v.empty()) return def;
  if (v == "full") return mem::ContentMode::kFull;
  if (v == "shadow") return mem::ContentMode::kShadow;
  throw std::invalid_argument("--content-mode must be full or shadow, got: " +
                              v);
}

}  // namespace prdma::bench
