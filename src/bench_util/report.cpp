#include "bench_util/report.hpp"

#include <fstream>
#include <iostream>
#include <utility>

#include "trace/export.hpp"

namespace prdma::bench {

Json micro_result_json(const std::string& name, const MicroResult& res) {
  Json row = Json::object();
  row.set("name", Json::str(name))
      .set("kops", Json::num(res.kops))
      .set("ops", Json::num(res.ops_completed))
      .set("avg_us", Json::num(res.avg_us()))
      .set("p95_us", Json::num(res.p95_us()))
      .set("p99_us", Json::num(res.p99_us()))
      .set("duration_ns", Json::num(static_cast<std::uint64_t>(res.duration)))
      .set("sim_events", Json::num(res.sim_events))
      .set("sender_sw_ns", Json::num(res.sender_sw_ns))
      .set("receiver_sw_ns", Json::num(res.receiver_sw_ns));
  // Topology keys only when the cell actually crossed a switch, so the
  // point-to-point rows stay byte-identical to the pre-topology JSON.
  if (res.net_switch_hops > 0) {
    row.set("switch_hops", Json::num(res.net_switch_hops))
        .set("max_port_queue_ns",
             Json::num(static_cast<std::uint64_t>(res.net_max_port_queue_ns)))
        .set("pfc_pauses", Json::num(res.net_pfc_pauses));
  }
  // Lossy-fabric keys likewise only on degraded runs: clean cells keep
  // the historical JSON byte for byte.
  if (res.net_drops > 0 || res.rnic_retransmits > 0) {
    row.set("net_drops", Json::num(res.net_drops))
        .set("rnic_retransmits", Json::num(res.rnic_retransmits));
  }

  Json comps = Json::object();
  for (const std::string& comp : res.breakdown.component_names()) {
    Json slot = Json::object();
    slot.set("mean_ns", Json::num(res.breakdown.mean_ns(
                 comp, std::max<std::uint64_t>(res.ops_completed, 1))))
        .set("share", Json::num(res.breakdown.share(comp)));
    comps.set(comp, std::move(slot));
  }
  row.set("breakdown", std::move(comps));
  return row;
}

Report::Report(const Flags& flags, std::string bench_name)
    : bench_name_(std::move(bench_name)),
      json_path_(flags.str("json", "")),
      trace_path_(flags.str("trace", "")),
      content_mode_(content_mode_from(flags)),
      topology_(topology_from(flags)) {
  if (topology_.switched()) {
    meta("topology", Json::str(std::string(
                         net::preset_name(topology_.preset))));
  }
}

void Report::configure(MicroConfig& cfg) {
  cfg.content_mode = content_mode_;
  cfg.topology = topology_;
  if (trace_enabled()) {
    cfg.trace_mode = trace::Mode::kFull;
    cfg.trace_pid = next_pid_++;
  }
}

void Report::meta(std::string key, Json value) {
  meta_.set(std::move(key), std::move(value));
}

void Report::add(const std::string& name, const MicroResult& res) {
  if (json_enabled()) rows_.push(micro_result_json(name, res));
  if (trace_enabled() && !res.trace_json.empty()) {
    if (!fragments_.empty()) fragments_ += ",\n";
    fragments_ += res.trace_json;
  }
}

bool Report::write() {
  bool ok = true;
  if (json_enabled()) {
    Json doc = Json::object();
    doc.set("bench", Json::str(bench_name_));
    if (!meta_.is_null()) doc.set("meta", meta_);
    doc.set("rows", rows_);
    ok = emit_json(json_path_, doc) && ok;
  }
  if (trace_enabled()) {
    std::ofstream os(trace_path_);
    if (!os) {
      std::cerr << "trace: cannot open " << trace_path_ << "\n";
      ok = false;
    } else {
      os << trace::wrap_fragments(fragments_);
      ok = static_cast<bool>(os) && ok;
    }
  }
  return ok;
}

}  // namespace prdma::bench
