#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace prdma::bench {

/// Tiny deterministic JSON document builder for bench outputs
/// (`--json`, BENCH_engine.json). Objects keep insertion order and
/// numbers render through fixed snprintf formats, so a result document
/// is byte-identical for identical inputs — the same contract the
/// sweep runner gives the console tables (DESIGN.md §7.1).
class Json {
 public:
  Json() = default;  ///< null

  static Json object();
  static Json array();
  static Json str(std::string v);
  static Json num(double v);
  static Json num(std::uint64_t v);
  static Json num(int v) { return num(static_cast<std::uint64_t>(v)); }
  static Json boolean(bool v);

  /// Object member (insertion order preserved). Returns *this to chain.
  Json& set(std::string key, Json v);
  /// Array element. Returns *this to chain.
  Json& push(Json v);

  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  /// Renders the document; `indent` spaces per level (0 = compact).
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// JSON string escaping (exposed for the trace exporter/tests).
  static std::string escape(const std::string& s);

 private:
  enum class Kind : std::uint8_t { kNull, kBool, kU64, kF64, kStr, kArr, kObj };

  void render(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool b_ = false;
  std::uint64_t u_ = 0;
  double d_ = 0.0;
  std::string s_;
  std::vector<Json> items_;                           // kArr
  std::vector<std::pair<std::string, Json>> members_; // kObj
};

/// Writes `doc.dump()` (plus trailing newline) to `path`. Returns
/// false (and prints to stderr) when the file cannot be written.
bool emit_json(const std::string& path, const Json& doc);

}  // namespace prdma::bench
