#include "bench_util/flags.hpp"

#include <iostream>

namespace prdma::bench {

const std::vector<FlagSpec>& Flags::common_flags() {
  static const std::vector<FlagSpec> common{
      {"ops", "N", "operations per cell (binary-specific default)"},
      {"seed", "N", "base RNG seed (default 1)"},
      {"jobs", "N", "parallel sweep cells; 0 = one per hardware thread, "
                    "absent = serial. Output is byte-identical at any N."},
      {"quick", "", "smaller grid / fewer ops for a fast smoke run"},
      {"content-mode", "full|shadow",
       "payload content fidelity (default shadow: elide payload "
       "copies; full is required for crash injection)"},
      {"topology", "point-to-point|rack|leaf-spine",
       "fabric preset (default point-to-point, byte-identical to the "
       "historical two-server fabric; rack = one ToR switch, "
       "leaf-spine = 2-tier Clos with ECMP)"},
      {"racks", "N", "leaf-spine: rack (ToR) count (default 2; "
                     "ignored when --hosts-per-rack is set)"},
      {"hosts-per-rack", "N",
       "hosts attached per ToR (0 = spread evenly over --racks)"},
      {"spines", "N", "leaf-spine: spine switch count (default 2)"},
      {"pfc", "", "model PFC pauses at congested egress ports"},
      {"json", "PATH", "also write the result table as JSON"},
      {"trace", "PATH", "write a Chrome/Perfetto trace of every cell "
                        "(open at ui.perfetto.dev)"},
      {"help", "", "print this help and exit"},
  };
  return common;
}

Flags::Flags(int argc, char** argv) : Flags(argc, argv, {}, {}) {}

Flags::Flags(int argc, char** argv, std::vector<FlagSpec> extra,
             std::string synopsis)
    : specs_(std::move(extra)), synopsis_(std::move(synopsis)) {
  if (argc > 0) argv0_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_[arg.substr(2)] = "1";
    } else {
      kv_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

std::uint64_t Flags::u64(const std::string& key, std::uint64_t def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::stoull(it->second);
}

double Flags::f64(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::stod(it->second);
}

bool Flags::flag(const std::string& key) const { return kv_.contains(key); }

std::string Flags::str(const std::string& key, std::string def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? std::move(def) : it->second;
}

std::string Flags::usage(const std::string& argv0) const {
  const std::string& name = argv0_.empty() ? argv0 : argv0_;
  std::string out = "Usage: " + name + " [flags]\n";
  if (!synopsis_.empty()) out += synopsis_ + "\n";
  const auto render = [&out](const FlagSpec& s) {
    std::string lhs = "  --" + s.name;
    if (!s.value_hint.empty()) lhs += "=" + s.value_hint;
    if (lhs.size() < 24) lhs.resize(24, ' ');
    out += lhs + " " + s.help + "\n";
  };
  if (!specs_.empty()) {
    out += "\nFlags:\n";
    for (const FlagSpec& s : specs_) render(s);
  }
  out += "\nCommon flags:\n";
  for (const FlagSpec& s : common_flags()) render(s);
  return out;
}

void Flags::print_help(std::ostream& os) const { os << usage(); }

void Flags::print_help() const { print_help(std::cout); }

}  // namespace prdma::bench
