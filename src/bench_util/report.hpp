#pragma once

#include <cstdint>
#include <string>

#include "bench_util/flags.hpp"
#include "bench_util/json.hpp"
#include "bench_util/micro.hpp"

namespace prdma::bench {

/// Renders one micro-benchmark result as a JSON row: throughput,
/// latency percentiles, span-derived software costs and the full
/// per-component breakdown (name -> {total_ns, samples}).
[[nodiscard]] Json micro_result_json(const std::string& name,
                                     const MicroResult& res);

/// The shared --json / --trace output layer of the bench binaries.
///
/// Wire-up per cell:
///   Report report(flags, "fig20_breakdown");
///   report.configure(cfg);            // kFull + per-cell Chrome pid
///   auto res = run_micro(sys, cfg);
///   report.add(cell_name, res);       // row JSON + trace fragment
///   ...
///   report.write();                   // emits the requested files
///
/// Rows and trace fragments are collected in add() call order, so the
/// emitted files inherit the sweep runner's determinism: byte-identical
/// at any --jobs value.
class Report {
 public:
  Report(const Flags& flags, std::string bench_name);

  [[nodiscard]] bool json_enabled() const { return !json_path_.empty(); }
  [[nodiscard]] bool trace_enabled() const { return !trace_path_.empty(); }

  /// Prepares `cfg` for collection: applies --content-mode (shadow by
  /// default) and the --topology flag family, and when --trace is
  /// given the cell is upgraded to full tracing and assigned the next
  /// Chrome pid (one process lane per cell in the Perfetto UI).
  void configure(MicroConfig& cfg);

  /// The parsed --topology flag family (point-to-point when absent).
  [[nodiscard]] const net::TopologyConfig& topology() const {
    return topology_;
  }

  /// Adds a run-level metadata entry (grid knobs, --quick, ...).
  void meta(std::string key, Json value);

  /// Collects one finished cell under `name`.
  void add(const std::string& name, const MicroResult& res);

  /// Writes the requested files; returns false if any write failed.
  /// No-op (true) when neither --json nor --trace was given.
  bool write();

 private:
  std::string bench_name_;
  std::string json_path_;
  std::string trace_path_;
  mem::ContentMode content_mode_;
  net::TopologyConfig topology_;
  std::uint32_t next_pid_ = 1;
  std::string fragments_;
  Json meta_ = Json::object();
  Json rows_ = Json::array();
};

}  // namespace prdma::bench
