#include "bench_util/json.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

namespace prdma::bench {

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObj;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArr;
  return j;
}

Json Json::str(std::string v) {
  Json j;
  j.kind_ = Kind::kStr;
  j.s_ = std::move(v);
  return j;
}

Json Json::num(double v) {
  Json j;
  j.kind_ = Kind::kF64;
  j.d_ = v;
  return j;
}

Json Json::num(std::uint64_t v) {
  Json j;
  j.kind_ = Kind::kU64;
  j.u_ = v;
  return j;
}

Json Json::boolean(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.b_ = v;
  return j;
}

Json& Json::set(std::string key, Json v) {
  kind_ = Kind::kObj;
  members_.emplace_back(std::move(key), std::move(v));
  return *this;
}

Json& Json::push(Json v) {
  kind_ = Kind::kArr;
  items_.push_back(std::move(v));
  return *this;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void Json::render(std::string& out, int indent, int depth) const {
  char buf[64];
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += b_ ? "true" : "false";
      break;
    case Kind::kU64:
      std::snprintf(buf, sizeof(buf), "%" PRIu64, u_);
      out += buf;
      break;
    case Kind::kF64:
      if (!std::isfinite(d_)) {
        out += "null";  // JSON has no inf/nan
      } else {
        // %.10g: enough for bench stats, short, and bit-stable for
        // identical doubles — the determinism contract needs no more.
        std::snprintf(buf, sizeof(buf), "%.10g", d_);
        out += buf;
      }
      break;
    case Kind::kStr:
      out += '"';
      out += escape(s_);
      out += '"';
      break;
    case Kind::kArr: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        append_newline_indent(out, indent, depth + 1);
        items_[i].render(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObj: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        append_newline_indent(out, indent, depth + 1);
        out += '"';
        out += escape(members_[i].first);
        out += indent > 0 ? "\": " : "\":";
        members_[i].second.render(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  render(out, indent, 0);
  return out;
}

bool emit_json(const std::string& path, const Json& doc) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "emit_json: cannot open " << path << "\n";
    return false;
  }
  os << doc.dump() << "\n";
  return static_cast<bool>(os);
}

}  // namespace prdma::bench
