#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace prdma::bench {

/// Fixed-width console table, the output format of every bench binary.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    widths_.reserve(headers_.size());
    for (const auto& h : headers_) widths_.push_back(h.size());
  }

  void add_row(std::vector<std::string> cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  static std::string num(double v, int precision = 1) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os = std::cout) const {
    print_row(os, headers_);
    std::string sep;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      sep += std::string(widths_[i] + 2, '-');
      if (i + 1 < headers_.size()) sep += "+";
    }
    os << sep << "\n";
    for (const auto& r : rows_) print_row(os, r);
    os.flush();
  }

 private:
  void print_row(std::ostream& os, const std::vector<std::string>& cells) const {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << " " << std::setw(static_cast<int>(widths_[i])) << std::left
         << cells[i] << " ";
      if (i + 1 < cells.size()) os << "|";
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace prdma::bench
