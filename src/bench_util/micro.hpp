#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/rpc.hpp"
#include "mem/buffer_pool.hpp"
#include "mem/device.hpp"
#include "repl/replication.hpp"
#include "rpcs/registry.hpp"
#include "sim/partitioned_engine.hpp"
#include "stats/breakdown.hpp"
#include "stats/histogram.hpp"
#include "trace/tracer.hpp"

namespace prdma::bench {

/// Configuration of one micro-benchmark cell (§5.1/§5.2 defaults:
/// 50 K objects, 300 K ops, zipfian with R:W 1:1, 64 KB objects;
/// bench binaries scale `ops` down by default — pass --ops to change).
struct MicroConfig {
  std::uint64_t objects = 50'000;
  std::uint32_t object_size = 64 * 1024;
  std::uint64_t ops = 8'000;       ///< total across all clients
  double read_ratio = 0.5;
  double zipf_theta = 0.99;
  std::uint64_t seed = 1;
  std::size_t clients = 1;
  std::uint32_t batch = 1;         ///< ops aggregated per RPC (§4.3)
  bool heavy_load = false;         ///< +100 µs processing per op (§5.2)
  double net_load = 0.0;           ///< background network traffic (Fig. 14)
  /// Link latency jitter (log-normal sigma). The model default; parity
  /// tests pin 0 so a run consumes no fabric noise draws at all and is
  /// byte-identical across engine thread counts.
  double jitter_sigma = 0.03;
  /// Worker threads of the partitioned event engine (DESIGN.md §7.5).
  /// 1 (the default) is the bit-exact serial engine; >1 shards the
  /// cluster one partition per node under conservative lookahead.
  /// Chain replication and kFull tracing force a single partition
  /// regardless (their coroutines/ring span nodes). Switched
  /// topologies force the per-node layout even at one thread, so a
  /// rack/leaf-spine cell replays the identical partitioned schedule
  /// at every --engine-threads value (DESIGN.md §7.6).
  unsigned engine_threads = 1;
  /// Engine partition layout override. kAuto (the default) applies the
  /// policy above: chain replication / kFull tracing pin a single
  /// partition, switched cells with >= 2 racks pin the per-rack layout
  /// at every thread count, remaining switched cells pin per-node.
  /// kPerRack / kPerNode / kSingle force a layout for A/B comparisons
  /// (rack_scale's barrier-count experiment); chain/kFull still win.
  sim::EngineConfig::Partitioning partitioning =
      sim::EngineConfig::Partitioning::kAuto;
  /// Adaptive epoch extension (DESIGN.md §7.7): per-partition horizons
  /// grow beyond the static lookahead whenever the other partitions'
  /// earliest pending work allows. A pure function of the schedule —
  /// stats are pinned byte-identical on vs off (engine_test).
  bool adaptive_epochs = true;
  /// Aggregated closed-loop load (DESIGN.md §7.7): when > 0, every
  /// client host drives this many virtual closed-loop clients through
  /// one workload::ClientPool (shared RNG, exponential think times,
  /// at most client_outstanding requests in flight per host) instead
  /// of spawning one coroutine per client × pipeline-depth. This is
  /// what lets rack_scale reach 512 hosts × 1000 clients. 0 keeps the
  /// classic per-coroutine driver. Requires batch == 1.
  std::uint64_t clients_per_host = 0;
  /// Mean exponential think time between a virtual client's completion
  /// and its next request (clients_per_host mode only).
  prdma::sim::SimTime client_think_ns = 0;
  /// Bound on concurrently outstanding requests per host pool
  /// (clients_per_host mode only).
  std::uint32_t client_outstanding = 8;
  /// Fabric shape (DESIGN.md §7.6). The default point-to-point preset
  /// reproduces the historical flat fabric byte for byte; rack /
  /// leaf-spine route packets over switches with per-port egress
  /// queues (incast, ECMP, optional PFC). Wired from --topology
  /// --racks --hosts-per-rack --spines --pfc via topology_from().
  net::TopologyConfig topology;
  /// Uniform packet-loss probability on every cable (lossy-fabric axis,
  /// DESIGN.md §7.8). Non-zero loss pins the per-node engine layout so
  /// the per-link RNG loss draws replay identically at every
  /// --engine-threads value.
  double loss_probability = 0.0;
  /// Deterministic network-fault schedule (link flaps, switch crashes,
  /// partitions, loss bursts; DESIGN.md §7.8). Installed into the
  /// fabric when non-empty; pins the per-node layout like loss above.
  net::FaultPlan faults;
  /// Override of the RC retransmission timer base interval (0 = keep
  /// the model default). Loss sweeps shrink this so recovery cost, not
  /// the paper's 100 ms crash-detection timer, dominates.
  prdma::sim::SimTime retransmit_interval = 0;
  double server_cpu_load = 0.0;    ///< busy receiver (Fig. 15)
  double client_cpu_load = 0.0;    ///< busy sender (Fig. 16)
  bool ddio = false;
  bool emulate_flush = true;       ///< paper's emulation vs ideal hardware
  bool smartnic_rflush = false;    ///< §4.5 NIC-issued RFlush
  /// Override of the SFlush addressing emulation delay in µs
  /// (UINT64_MAX = keep the model default of 7 µs, §4.1.3).
  std::uint64_t sflush_addressing_us = UINT64_MAX;
  /// Override of server cores / durable worker threads (0 = model
  /// defaults). Fig. 17 uses the testbed's 20-core server.
  unsigned server_cores = 0;
  unsigned server_workers = 0;
  /// Outstanding requests per durable-RPC client (§4.2: "the sender
  /// can issue other RPC requests without waiting for the completion
  /// event"). Baselines are always closed-loop serial (their client
  /// must wait for the response). Latency benches keep this at 1;
  /// throughput benches (Fig. 8) raise it.
  std::uint32_t durable_pipeline = 1;
  // ---- tracing (DESIGN.md §7.2) ----
  /// kCounters by default: exact per-component totals feed the span
  /// breakdown and sender/receiver software accounting of every cell;
  /// Report::configure upgrades to kFull when --trace is given.
  trace::Mode trace_mode = trace::Mode::kCounters;
  std::size_t trace_capacity = trace::Tracer::kDefaultCapacity;
  std::uint32_t trace_pid = 1;  ///< Chrome pid of this cell's fragment
  /// Content fidelity of every node's memory (DESIGN.md §7.3). Shadow
  /// by default: timing, stats and JSON output are pinned identical to
  /// kFull, only the payload byte copies are elided. Harnesses that
  /// inject crashes (check/, fault/) pin kFull — Node refuses to arm
  /// crash hooks in shadow mode.
  mem::ContentMode content_mode = mem::ContentMode::kShadow;
  /// Multi-replica durability axis (src/repl). kNone (the default)
  /// reproduces the single-primary deployment bit for bit; chain or
  /// mirror replicate every write across `replication.replicas`
  /// durable servers on nodes [0, R) with clients beyond them.
  /// Durable systems only.
  repl::ReplicationConfig replication;
};

/// Outcome of one micro-benchmark cell.
struct MicroResult {
  double kops = 0.0;                        ///< completed ops per ms
  stats::LatencyHistogram latency;          ///< per-op completion latency
  stats::LatencyHistogram write_latency;
  stats::LatencyHistogram read_latency;
  stats::LatencyHistogram durable_latency;  ///< writes: persist visibility
  prdma::sim::SimTime duration = 0;
  core::ServerStats server;
  std::uint64_t ops_completed = 0;
  std::uint64_t sim_events = 0;  ///< simulator events the cell replayed
  /// Span-derived (tracer) software costs per op — what Fig. 20 plots.
  /// With tracing off they fall back to the host charged-ns /
  /// ServerStats counters (exact parity, pinned by trace_test).
  double sender_sw_ns = 0.0;    ///< client software per op (kSenderSw spans)
  double receiver_sw_ns = 0.0;  ///< receiver critical path (kReceiverSw spans)
  // ---- topology / congestion accounting (DESIGN.md §7.6) ----
  /// Switch traversals the cell's packets executed (0 = point-to-point).
  std::uint64_t net_switch_hops = 0;
  /// Worst single egress-queue wait at any topology port (incast).
  prdma::sim::SimTime net_max_port_queue_ns = 0;
  /// PFC pauses recorded across all ports (0 unless topology.pfc).
  std::uint64_t net_pfc_pauses = 0;
  // ---- lossy-fabric accounting (DESIGN.md §7.8) ----
  /// Packets the fabric dropped (loss, corruption, downed links,
  /// partitions, dead nodes) — every drop is accounted, never silent.
  std::uint64_t net_drops = 0;
  /// RC data packets the RNICs replayed after retransmission timeouts.
  std::uint64_t rnic_retransmits = 0;
  /// Per-component time totals from the cell's tracer.
  stats::SpanBreakdown breakdown;
  /// Chrome trace-event fragment (kFull cells only; see Report).
  std::string trace_json;
  // ---- data-plane accounting (DESIGN.md §7.3) ----
  /// Content bytes actually moved by the cell's devices (poke/peek);
  /// this is what kShadow shrinks while the timing plane is unchanged.
  std::uint64_t bytes_copied = 0;
  /// Payload-pool traffic summed over all nodes.
  mem::BufferPoolStats pool;
  /// Event-pool heap refills in the simulator (steady state: 0 per op).
  std::uint64_t sim_pool_allocs = 0;
  // ---- partitioned-engine accounting (DESIGN.md §7.7) ----
  /// Partitions the cell's engine sharded the cluster into (1 = serial).
  std::uint64_t engine_partitions = 0;
  /// Lookahead epochs (barrier rounds) the run executed. Deterministic:
  /// a pure function of config + seed, identical at every thread count.
  std::uint64_t engine_epochs = 0;
  /// Wall-clock nanoseconds workers spent inside epoch barriers. Host
  /// telemetry — excluded from every determinism/identity comparison.
  std::uint64_t engine_barrier_wall_ns = 0;

  [[nodiscard]] double avg_us() const { return latency.mean() / 1e3; }
  [[nodiscard]] double p95_us() const {
    return static_cast<double>(latency.p95()) / 1e3;
  }
  [[nodiscard]] double p99_us() const {
    return static_cast<double>(latency.p99()) / 1e3;
  }
};

/// Derives the full model-parameter set for a cell: sizes the PM
/// window to fit the object store + redo logs, wires the load knobs.
core::ModelParams params_for(const MicroConfig& cfg);

/// Effective object count after fitting the store into the modeled PM
/// window (large-object cells shrink the store; access skew is
/// unaffected).
std::uint64_t effective_objects(const MicroConfig& cfg);

/// Runs one cell of the §5.2 micro-benchmark for `system`.
MicroResult run_micro(rpcs::System system, const MicroConfig& cfg);

/// One (system, config) cell of a sweep grid, for SweepRunner::map.
struct MicroCell {
  rpcs::System system;
  MicroConfig cfg;
};

class SweepRunner;

/// Runs every cell (in parallel per `runner`) and returns the results
/// in cell order — byte-identical to calling run_micro serially.
/// Cells are scheduled longest-expected-first (ops × object size) so a
/// huge cell submitted last cannot serialize the tail of the sweep.
std::vector<MicroResult> run_micro_cells(SweepRunner& runner,
                                         const std::vector<MicroCell>& cells);

class Flags;

/// Shared --content-mode flag convention: absent → `def` (benches pass
/// kShadow), --content-mode=full|shadow overrides.
mem::ContentMode content_mode_from(const Flags& flags,
                                   mem::ContentMode def =
                                       mem::ContentMode::kShadow);

/// Shared replication flags: --replication=none|chain|mirror (default
/// none) and --replicas=N (default 2).
repl::ReplicationConfig replication_from(const Flags& flags);

/// Shared --engine-threads flag: worker threads of the partitioned
/// event engine (DESIGN.md §7.5). Absent or 0 → `def` (benches pass 1,
/// the bit-exact serial engine). Crash-injecting harnesses must keep
/// the default — Node refuses crash hooks on a partitioned engine.
unsigned engine_threads_from(const Flags& flags, unsigned def = 1);

/// Shared topology flag family: --topology=point-to-point|rack|
/// leaf-spine (default point-to-point) plus --racks, --hosts-per-rack,
/// --spines and --pfc. Throws std::invalid_argument on unknown preset
/// names.
net::TopologyConfig topology_from(const Flags& flags);

}  // namespace prdma::bench
