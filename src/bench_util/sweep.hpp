#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "bench_util/flags.hpp"
#include "sim/thread_pool.hpp"

namespace prdma::bench {

/// Runs independent sweep cells (whole run_micro calls, explorer
/// schedules, multi-seed replicas) on sim::ThreadPool workers and
/// merges the results in deterministic submission order.
///
/// The determinism contract (DESIGN.md §7.1): each cell must be a pure
/// function of its inputs — it builds its own Simulator/Cluster and
/// touches no shared mutable state. Under that contract the result
/// vector is byte-identical at any --jobs value; only wall-clock
/// changes. Parallelism never reaches inside a single simulation.
///
/// jobs == 1 runs cells inline on the calling thread with no pool at
/// all, so the serial path is exactly the pre-SweepRunner code path.
class SweepRunner {
 public:
  /// `jobs` as given by the --jobs flag; 0 means hardware concurrency.
  explicit SweepRunner(std::size_t jobs = 1)
      : jobs_(jobs == 0 ? default_jobs() : jobs) {}

  [[nodiscard]] std::size_t jobs() const { return jobs_; }

  /// Hardware concurrency clamped to [2, 4]: never degenerates to the
  /// serial path on a single-core host, never over-fans memory-bound
  /// cells.
  static std::size_t default_jobs();

  /// Runs fn(i) for every i in [0, n). Blocks until all cells finish.
  /// Parallel runs execute every cell even if one throws and then
  /// rethrow the exception from the lowest-index failing cell, so error
  /// propagation is scheduling-independent too.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// for_each with a per-cell cost hint (any monotone proxy for
  /// expected wall-clock). Parallel runs start cells in descending-hint
  /// order so one long cell submitted late cannot serialize the sweep
  /// tail; results/errors are still reported in index order, and the
  /// serial path ignores the hints entirely. hints.size() != n falls
  /// back to submission order.
  void for_each_hinted(std::size_t n, const std::vector<double>& hints,
                       const std::function<void(std::size_t)>& fn);

  /// Wall-clock seconds of each cell of the last for_each* call, in
  /// index order (steady_clock; diagnostic only, not deterministic).
  [[nodiscard]] const std::vector<double>& cell_seconds() const {
    return cell_seconds_;
  }

  /// Runs fn(i) for i in [0, n); returns {fn(0), fn(1), ..., fn(n-1)}.
  /// R must be default-constructible and movable.
  template <typename F,
            typename R = std::invoke_result_t<F&, std::size_t>>
  std::vector<R> map_n(std::size_t n, F fn) {
    std::vector<R> out(n);
    for_each(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Runs fn(item) over `items`; results come back in item order.
  template <typename Item, typename F,
            typename R = std::invoke_result_t<F&, const Item&>>
  std::vector<R> map(const std::vector<Item>& items, F fn) {
    return map_n(items.size(),
                 [&](std::size_t i) { return fn(items[i]); });
  }

 private:
  sim::ThreadPool& pool();

  std::size_t jobs_;
  std::unique_ptr<sim::ThreadPool> pool_;  // lazy: never built at jobs==1
  std::vector<double> cell_seconds_;
};

/// Shared --jobs flag convention for every bench binary: absent → 1
/// (serial, bit-identical to the historical behaviour), --jobs=0 → one
/// worker per hardware thread, --jobs=N → N workers.
std::size_t jobs_from(const Flags& flags);

}  // namespace prdma::bench
