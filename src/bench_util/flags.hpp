#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace prdma::bench {

/// One documented flag: `--name=<value_hint>` (or `--name` when
/// value_hint is empty) plus its help line.
struct FlagSpec {
  std::string name;
  std::string value_hint;
  std::string help;
};

/// --key=value flag parser shared by every bench binary.
///
/// Beyond the historical bare parser this carries a declarative
/// registry: the common knobs every binary answers (--seed --ops
/// --jobs --json --trace --quick) plus per-binary extras, from which
/// --help output is generated. Unknown flags are still silently
/// ignored (pre-existing idiom; see the verify notes).
class Flags {
 public:
  Flags(int argc, char** argv);
  Flags(int argc, char** argv, std::vector<FlagSpec> extra,
        std::string synopsis = {});

  // ---- typed accessors ----

  [[nodiscard]] std::uint64_t u64(const std::string& key,
                                  std::uint64_t def) const;
  [[nodiscard]] double f64(const std::string& key, double def) const;
  /// Deprecated alias of f64 (one release, migration shim).
  [[nodiscard]] double real(const std::string& key, double def) const {
    return f64(key, def);
  }
  [[nodiscard]] bool flag(const std::string& key) const;
  [[nodiscard]] std::string str(const std::string& key,
                                std::string def) const;

  // ---- generated help ----

  [[nodiscard]] bool help_requested() const { return flag("help"); }
  [[nodiscard]] std::string usage(const std::string& argv0 = "bench") const;
  void print_help(std::ostream& os) const;
  void print_help() const;  ///< to stdout

  /// The registry of common knobs every bench binary understands.
  static const std::vector<FlagSpec>& common_flags();

 private:
  std::map<std::string, std::string> kv_;
  std::vector<FlagSpec> specs_;
  std::string synopsis_;
  std::string argv0_;
};

}  // namespace prdma::bench
