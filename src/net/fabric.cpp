#include "net/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace prdma::net {

Fabric::NodeCtx& Fabric::ctx(NodeId id) {
  if (id >= nodes_.size()) nodes_.resize(id + 1);
  return nodes_[id];
}

void Fabric::register_node(NodeId id, sim::Simulator& sim,
                           std::function<void(Packet)> deliver) {
  NodeCtx& c = ctx(id);
  c.sim = &sim;
  c.sink = std::move(deliver);
  if (c.tracer == nullptr) c.tracer = tracer_;
  c.partition = engine_ != nullptr ? engine_->partition_of_node(id) : 0;
  if (partitioned_) precreate_links(id);
}

void Fabric::unregister_node(NodeId id) { ctx(id).sink = nullptr; }

void Fabric::precreate_links(NodeId id) {
  // Worker threads of a multi-partition run probe links_ concurrently
  // (one directed link's state is only ever *mutated* by its source
  // partition, but the open-addressing probe walks shared slots), so
  // the table must be frozen before run(): materialize both directions
  // between `id` and every known node now, while still single-threaded.
  // Pairs the switch graph routes never reach the flat table (send()
  // prefers a non-empty route), so only unrouted pairs materialize —
  // a 512-host leaf-spine would otherwise eagerly build ~260 K dead
  // links, each with a private RNG stream.
  const std::size_t hosts = topo_ != nullptr ? topo_->host_count() : 0;
  for (std::size_t other = 0; other < nodes_.size(); ++other) {
    if (other == id) continue;
    const auto o = static_cast<NodeId>(other);
    if (routed() && id < hosts && other < hosts) {
      if (!topo_->route(id, o).ports.empty() &&
          !topo_->route(o, id).ports.empty()) {
        continue;
      }
    }
    state(id, o);
    state(o, id);
  }
}

void Fabric::bind_engine(sim::PartitionedEngine* engine, std::uint64_t seed) {
  engine_ = engine;
  link_seed_ = seed;
  partitioned_ = engine != nullptr && engine->partitions() > 1;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    nodes_[id].partition =
        partitioned_ ? engine_->partition_of_node(id) : 0;
  }
  if (partitioned_) {
    for (std::size_t id = 0; id < nodes_.size(); ++id) {
      precreate_links(static_cast<NodeId>(id));
    }
  }
}

void Fabric::set_topology(const TopologyConfig& cfg, std::size_t hosts) {
  topo_cfg_ = cfg;
  topo_ = std::make_unique<Topology>(build_topology(cfg, hosts, defaults_));
  ports_.clear();
  if (!topo_->switched()) return;  // point-to-point: flat table untouched
  ports_.reserve(topo_->edge_count());
  for (std::uint32_t e = 0; e < topo_->edge_count(); ++e) {
    const Topology::Edge& edge = topo_->edge(e);
    Port port;
    port.params = edge.params;
    port.from = edge.from;
    port.to = edge.to;
    port.owner = topo_->is_switch(edge.from)
                     ? topo_->switch_owner(
                           static_cast<std::uint32_t>(edge.from - hosts))
                     : static_cast<NodeId>(edge.from);
    port.partition =
        engine_ != nullptr ? engine_->partition_of_node(port.owner) : 0;
    port.sim = engine_ != nullptr ? &engine_->shard_of_node(port.owner) : &sim_;
    // Routed hops always draw from per-port streams (never the shared
    // setup RNG), seeded order-independently from (seed, edge id) —
    // edge ids are construction order, a pure function of the config —
    // so a switched run is byte-identical at any engine thread count.
    port.rng = std::make_unique<sim::Rng>(
        hash_key(link_seed_ ^ ((e + 0x51ed2701ULL) * 0x9e3779b97f4a7c15ULL)));
    ports_.push_back(std::move(port));
  }
}

void Fabric::grow_links() {
  std::vector<LinkSlot> old = std::move(links_);
  links_ = std::vector<LinkSlot>(std::max<std::size_t>(16, old.size() * 2));
  for (LinkSlot& slot : old) {
    if (slot.key == kEmptyKey) continue;
    std::size_t i = hash_key(slot.key) & (links_.size() - 1);
    while (links_[i].key != kEmptyKey) i = (i + 1) & (links_.size() - 1);
    links_[i] = std::move(slot);
  }
}

Fabric::LinkState& Fabric::state(NodeId from, NodeId to) {
  const std::uint64_t key = pack(from, to);
  if (!links_.empty()) {
    std::size_t i = hash_key(key) & (links_.size() - 1);
    while (links_[i].key != kEmptyKey) {
      if (links_[i].key == key) return links_[i].state;
      i = (i + 1) & (links_.size() - 1);
    }
  }
  // Miss: insert. On a multi-partition engine the table is frozen once
  // workers run (register_node pre-created every directed pair), so an
  // insert here from a worker thread is a bug — growing or writing the
  // shared slot vector would race other partitions' probes.
  if (partitioned_ && sim::current_engine_shard() != nullptr) {
    throw std::logic_error(
        "fabric link table insert during a partitioned run: packets may "
        "only flow between nodes registered before Cluster::run()");
  }
  if (links_.empty() || (link_count_ + 1) * 4 > links_.size() * 3) {
    grow_links();
  }
  std::size_t i = hash_key(key) & (links_.size() - 1);
  while (links_[i].key != kEmptyKey) i = (i + 1) & (links_.size() - 1);
  LinkSlot& slot = links_[i];
  slot.key = key;
  slot.state.params = defaults_;
  if (partitioned_) {
    // Order-independent per-link stream: a link's draws depend only on
    // (seed, from, to), never on which partition touched it first.
    slot.state.rng = std::make_unique<sim::Rng>(
        hash_key(link_seed_ ^ (key * 0x9e3779b97f4a7c15ULL)));
  }
  ++link_count_;
  return slot.state;
}

LinkParams& Fabric::direct_link(NodeId from, NodeId to) {
  return state(from, to).params;
}

sim::SimTime Fabric::min_cross_partition_propagation() const {
  constexpr sim::SimTime kNever = std::numeric_limits<sim::SimTime>::max();
  if (!partitioned_) return kNever;
  sim::SimTime m = kNever;

  const auto host_partition = [&](NodeId id) -> std::size_t {
    return id < nodes_.size() ? nodes_[id].partition
                              : engine_->partition_of_node(id);
  };

  // Routed ports: the conservative floor guarantees a hop's arrival
  // lands >= propagation/2 after the send executes (jitter clamp), so
  // a port bounds the lookahead only when the arrival can execute on a
  // different partition than the send.
  for (const Port& port : ports_) {
    bool crosses = false;
    if (!topo_->is_switch(port.to)) {
      crosses = host_partition(static_cast<NodeId>(port.to)) != port.partition;
    } else {
      for (const Port& next : ports_) {
        if (next.from == port.to && next.partition != port.partition) {
          crosses = true;
          break;
        }
      }
    }
    if (crosses) m = std::min(m, port.params.propagation);
  }

  // Direct links: only host pairs the routed graph does not cover can
  // reach the flat table (send() prefers a non-empty route), so the
  // precreated default-propagation entries between routed hosts are
  // unreachable and excluded.
  const std::size_t hosts = topo_ != nullptr ? topo_->host_count() : 0;
  for (const LinkSlot& slot : links_) {
    if (slot.key == kEmptyKey) continue;
    const auto from = static_cast<NodeId>(slot.key >> 32);
    const auto to = static_cast<NodeId>(slot.key & 0xffffffffu);
    if (routed() && from != to && from < hosts && to < hosts &&
        !topo_->route(from, to).ports.empty()) {
      continue;
    }
    if (from >= nodes_.size() || to >= nodes_.size() ||
        nodes_[from].partition != nodes_[to].partition) {
      m = std::min(m, slot.state.params.propagation);
    }
  }
  return m;
}

sim::SimTime Fabric::min_propagation() const {
  sim::SimTime m = defaults_.propagation;
  for (const LinkSlot& slot : links_) {
    if (slot.key != kEmptyKey) m = std::min(m, slot.state.params.propagation);
  }
  for (const Port& port : ports_) {
    m = std::min(m, port.params.propagation);
  }
  return m;
}

Fabric::PortStats Fabric::port_stats(std::size_t i) const {
  const Port& port = ports_[i];
  PortStats s;
  s.from = port.from;
  s.to = port.to;
  s.packets = port.packets;
  s.bytes = port.bytes;
  s.queue_ns_total = port.queue_ns_total;
  s.queue_ns_peak = port.queue_ns_peak;
  s.pfc_events = port.pfc_events;
  s.pfc_pause_ns = port.pfc_pause_ns;
  return s;
}

sim::SimTime Fabric::max_port_queue_ns() const {
  sim::SimTime m = 0;
  for (const Port& port : ports_) m = std::max(m, port.queue_ns_peak);
  return m;
}

std::uint64_t Fabric::pfc_pauses() const {
  std::uint64_t n = 0;
  for (const Port& port : ports_) n += port.pfc_events;
  return n;
}

sim::SimTime Fabric::pfc_pause_ns_total() const {
  sim::SimTime n = 0;
  for (const Port& port : ports_) n += port.pfc_pause_ns;
  return n;
}

sim::SimTime Fabric::send(Packet p) {
  if (routed() && p.src != p.dst && p.src < topo_->host_count() &&
      p.dst < topo_->host_count()) {
    const Route& route = topo_->route(p.src, p.dst);
    if (!route.ports.empty()) {
      NodeCtx& src = ctx(p.src);
      sim::Simulator& ssim = src.sim != nullptr ? *src.sim : sim_;
      return hop_transmit(std::move(p), route, 0, ssim.now());
    }
    // Host pair the graph leaves disconnected: fall through to the
    // direct point-to-point link, like the pre-topology fabric.
  }
  return send_direct(std::move(p));
}

sim::SimTime Fabric::hop_transmit(Packet p, const Route& route,
                                  std::size_t hop, sim::SimTime t_in) {
  Port& port = ports_[route.ports[hop]];
  // Store-and-forward: a switch charges its traversal latency before
  // the packet can contend for the egress queue.
  const sim::SimTime ready =
      hop == 0 ? t_in : t_in + topo_cfg_.switch_latency;
  if (hop > 0) switch_hops_.fetch_add(1, std::memory_order_relaxed);

  const LinkParams& lp = port.params;
  const std::uint64_t bytes = p.wire_bytes();
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  port.packets += 1;
  port.bytes += bytes;

  // Residual bandwidth after background traffic (same model as the
  // direct path, applied per cable).
  const double load = std::clamp(lp.background_load, 0.0, 0.95);
  const double residual_bw = lp.bandwidth_bytes_per_s * (1.0 - load);
  const sim::SimTime service = sim::transfer_time(bytes, residual_bw);

  // Egress-queue occupancy: the wait behind earlier packets out of
  // this port is where incast at fan-in ports becomes visible.
  const sim::SimTime tx_begin = std::max(ready, port.busy_until);
  const sim::SimTime queued = tx_begin - ready;
  port.busy_until = tx_begin + service;
  port.queue_ns_total += queued;
  port.queue_ns_peak = std::max(port.queue_ns_peak, queued);

  sim::Rng& rng = *port.rng;
  sim::SimTime queueing = 0;
  if (load > 0.0) {
    const double mean_wait =
        load / (1.0 - load) *
        static_cast<double>(std::max<sim::SimTime>(service, 200));
    queueing = static_cast<sim::SimTime>(rng.exponential(mean_wait));
  }
  double jitter = rng.lognormal_jitter(lp.jitter_sigma);
  // Routed paths always honor the conservative lookahead floor (half
  // the propagation), partitioned or not, so a switched run is
  // byte-identical at any engine thread count.
  if (jitter < 0.5) jitter = 0.5;

  // PFC pause (opt-in): backlog past the threshold pauses the
  // upstream sender. Modeled as an arrival-gated penalty at this port
  // — the excess wait is charged to the packet and counted — instead
  // of literal pause frames walking upstream, which would mutate
  // foreign ports' state across partitions mid-epoch.
  sim::SimTime pfc_hold = 0;
  if (topo_cfg_.pfc) {
    const sim::SimTime threshold_ns =
        sim::transfer_time(topo_cfg_.pfc_threshold, residual_bw);
    if (queued > threshold_ns) {
      pfc_hold = queued - threshold_ns;
      port.pfc_events += 1;
      port.pfc_pause_ns += pfc_hold;
    }
  }

  const auto flight = static_cast<sim::SimTime>(
                          static_cast<double>(lp.propagation + queueing) *
                          jitter) +
                      pfc_hold;
  const sim::SimTime arrival = port.busy_until + flight;

  trace::Tracer* tracer =
      port.owner < nodes_.size() ? nodes_[port.owner].tracer : tracer_;
  if (tracer != nullptr) {
    if (hop == 0) {
      tracer->span(trace::Component::kNetSerialize, p.seq, tx_begin,
                   port.busy_until, static_cast<std::uint16_t>(p.src));
    } else {
      tracer->span(trace::Component::kNetSwitchHop, p.seq, t_in,
                   port.busy_until, static_cast<std::uint16_t>(port.owner));
    }
    tracer->span(trace::Component::kNetFlight, p.seq, port.busy_until, arrival,
                 static_cast<std::uint16_t>(port.owner));
    if (queued > 0) {
      tracer->counter(trace::Component::kNetPortQueue, ready,
                      static_cast<std::uint64_t>(queued),
                      static_cast<std::uint16_t>(route.ports[hop]));
    }
  }

  if (lp.loss_probability > 0.0 && rng.bernoulli(lp.loss_probability)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return port.busy_until;
  }

  const sim::SimTime accepted = port.busy_until;
  if (hop + 1 < route.ports.size()) {
    const Port& next = ports_[route.ports[hop + 1]];
    auto forward = [this, p = std::move(p), r = &route, next_hop = hop + 1,
                    t = arrival]() mutable {
      hop_transmit(std::move(p), *r, next_hop, t);
    };
    if (!partitioned_ || next.partition == port.partition) {
      next.sim->schedule_at(arrival, std::move(forward));
    } else {
      engine_->schedule_remote(port.partition, next.partition, arrival,
                               sim::InlineTask(std::move(forward)));
    }
    return accepted;
  }

  NodeCtx& dst = ctx(p.dst);
  auto deliver = [this, p = std::move(p)]() mutable {
    const NodeCtx& d = nodes_[p.dst];
    if (!d.sink) {
      // destination crashed/unregistered
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    delivered_.fetch_add(1, std::memory_order_relaxed);
    d.sink(std::move(p));
  };
  sim::Simulator& dsim = dst.sim != nullptr ? *dst.sim : sim_;
  if (!partitioned_ || dst.partition == port.partition) {
    dsim.schedule_at(arrival, std::move(deliver));
  } else {
    engine_->schedule_remote(port.partition, dst.partition, arrival,
                             sim::InlineTask(std::move(deliver)));
  }
  return accepted;
}

sim::SimTime Fabric::send_direct(Packet p) {
  NodeCtx& src = ctx(p.src);
  // Unregistered senders (raw-fabric tests) run on the fabric's own
  // simulator, matching the pre-partitioning behaviour.
  sim::Simulator& ssim = src.sim != nullptr ? *src.sim : sim_;
  LinkState& lk = state(p.src, p.dst);
  const LinkParams& lp = lk.params;

  const std::uint64_t bytes = p.wire_bytes();
  bytes_.fetch_add(bytes, std::memory_order_relaxed);

  // Residual bandwidth after background traffic.
  const double load = std::clamp(lp.background_load, 0.0, 0.95);
  const double residual_bw = lp.bandwidth_bytes_per_s * (1.0 - load);
  const sim::SimTime service = sim::transfer_time(bytes, residual_bw);

  // Serialization: this packet queues behind earlier ones in the same
  // direction.
  const sim::SimTime tx_begin = std::max(ssim.now(), lk.busy_until);
  lk.busy_until = tx_begin + service;

  sim::Rng& rng = lk.rng != nullptr ? *lk.rng : rng_;

  // M/M/1-flavoured queueing behind background traffic: expected wait
  // of load/(1-load) service times, sampled exponentially.
  sim::SimTime queueing = 0;
  if (load > 0.0) {
    const double mean_wait =
        load / (1.0 - load) *
        static_cast<double>(std::max<sim::SimTime>(service, 200));
    queueing = static_cast<sim::SimTime>(rng.exponential(mean_wait));
  }

  double jitter = rng.lognormal_jitter(lp.jitter_sigma);
  // Conservative lookahead floor: a partitioned run promises every
  // arrival lands at least propagation/2 after the send, so the jitter
  // multiplier cannot shrink the flight below half the nominal delay
  // (an astronomically rare tail at the modelled sigmas).
  if (partitioned_ && jitter < 0.5) jitter = 0.5;
  const auto flight = static_cast<sim::SimTime>(
      static_cast<double>(lp.propagation + queueing) * jitter);
  const sim::SimTime arrival = tx_begin + service + flight;

  if (src.tracer != nullptr) {
    src.tracer->span(trace::Component::kNetSerialize, p.seq, tx_begin,
                     tx_begin + service, static_cast<std::uint16_t>(p.src));
    src.tracer->span(trace::Component::kNetFlight, p.seq, tx_begin + service,
                     arrival, static_cast<std::uint16_t>(p.src));
  }

  if (lp.loss_probability > 0.0 && rng.bernoulli(lp.loss_probability)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return lk.busy_until;
  }

  NodeCtx& dst = ctx(p.dst);
  auto deliver = [this, p = std::move(p)]() mutable {
    const NodeCtx& d = nodes_[p.dst];
    if (!d.sink) {
      // destination crashed/unregistered
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    delivered_.fetch_add(1, std::memory_order_relaxed);
    d.sink(std::move(p));
  };
  if (!partitioned_ || dst.partition == src.partition) {
    ssim.schedule_at(arrival, std::move(deliver));
  } else {
    engine_->schedule_remote(src.partition, dst.partition, arrival,
                             sim::InlineTask(std::move(deliver)));
  }
  return lk.busy_until;
}

}  // namespace prdma::net
