#include "net/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace prdma::net {

Fabric::NodeCtx& Fabric::ctx(NodeId id) {
  if (id >= nodes_.size()) nodes_.resize(id + 1);
  return nodes_[id];
}

void Fabric::register_node(NodeId id, sim::Simulator& sim,
                           std::function<void(Packet)> deliver) {
  NodeCtx& c = ctx(id);
  c.sim = &sim;
  c.sink = std::move(deliver);
  if (c.tracer == nullptr) c.tracer = tracer_;
  c.partition = engine_ != nullptr ? engine_->partition_of_node(id) : 0;
  if (partitioned_) precreate_links(id);
}

void Fabric::unregister_node(NodeId id) { ctx(id).sink = nullptr; }

void Fabric::precreate_links(NodeId id) {
  // Worker threads of a multi-partition run probe links_ concurrently
  // (one directed link's state is only ever *mutated* by its source
  // partition, but the open-addressing probe walks shared slots), so
  // the table must be frozen before run(): materialize both directions
  // between `id` and every known node now, while still single-threaded.
  // Pairs the switch graph routes never reach the flat table (send()
  // prefers a non-empty route), so only unrouted pairs materialize —
  // a 512-host leaf-spine would otherwise eagerly build ~260 K dead
  // links, each with a private RNG stream.
  const std::size_t hosts = topo_ != nullptr ? topo_->host_count() : 0;
  for (std::size_t other = 0; other < nodes_.size(); ++other) {
    if (other == id) continue;
    const auto o = static_cast<NodeId>(other);
    if (routed() && id < hosts && other < hosts) {
      if (!topo_->route(id, o).ports.empty() &&
          !topo_->route(o, id).ports.empty()) {
        continue;
      }
    }
    state(id, o);
    state(o, id);
  }
}

void Fabric::bind_engine(sim::PartitionedEngine* engine, std::uint64_t seed) {
  engine_ = engine;
  link_seed_ = seed;
  partitioned_ = engine != nullptr && engine->partitions() > 1;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    nodes_[id].partition =
        partitioned_ ? engine_->partition_of_node(id) : 0;
  }
  if (partitioned_) {
    for (std::size_t id = 0; id < nodes_.size(); ++id) {
      precreate_links(static_cast<NodeId>(id));
    }
  }
}

void Fabric::set_topology(const TopologyConfig& cfg, std::size_t hosts) {
  topo_cfg_ = cfg;
  topo_ = std::make_unique<Topology>(build_topology(cfg, hosts, defaults_));
  ports_.clear();
  if (!topo_->switched()) return;  // point-to-point: flat table untouched
  ports_.reserve(topo_->edge_count());
  for (std::uint32_t e = 0; e < topo_->edge_count(); ++e) {
    const Topology::Edge& edge = topo_->edge(e);
    Port port;
    port.params = edge.params;
    port.from = edge.from;
    port.to = edge.to;
    port.owner = topo_->is_switch(edge.from)
                     ? topo_->switch_owner(
                           static_cast<std::uint32_t>(edge.from - hosts))
                     : static_cast<NodeId>(edge.from);
    port.partition =
        engine_ != nullptr ? engine_->partition_of_node(port.owner) : 0;
    port.sim = engine_ != nullptr ? &engine_->shard_of_node(port.owner) : &sim_;
    // Routed hops always draw from per-port streams (never the shared
    // setup RNG), seeded order-independently from (seed, edge id) —
    // edge ids are construction order, a pure function of the config —
    // so a switched run is byte-identical at any engine thread count.
    port.rng = std::make_unique<sim::Rng>(
        hash_key(link_seed_ ^ ((e + 0x51ed2701ULL) * 0x9e3779b97f4a7c15ULL)));
    ports_.push_back(std::move(port));
  }
}

void Fabric::set_fault_plan(FaultPlan plan) {
  plan.validate();
  plan_ = std::move(plan);
  have_faults_ = !plan_.empty();
  edge_down_.clear();
  direct_down_.clear();
  epoch_starts_.clear();
  epoch_routes_.clear();
  if (!have_faults_) return;

  // With no installed topology (bare fabric) every vertex names a
  // host, so all flaps act on the direct point-to-point table.
  const std::size_t hosts =
      topo_ != nullptr ? topo_->host_count() : ~std::size_t{0};

  // Host<->host flaps act on the direct point-to-point table.
  const auto add_direct = [&](NodeId a, NodeId b, sim::SimTime lo,
                              sim::SimTime hi) {
    for (const std::uint64_t key : {pack(a, b), pack(b, a)}) {
      auto it = std::find_if(direct_down_.begin(), direct_down_.end(),
                             [&](const auto& e) { return e.first == key; });
      if (it == direct_down_.end()) {
        direct_down_.emplace_back(key, DownSpans{});
        it = direct_down_.end() - 1;
      }
      it->second.spans.emplace_back(lo, hi);
    }
  };
  for (const LinkFlap& f : plan_.link_flaps) {
    if (f.a < hosts && f.b < hosts) {
      add_direct(static_cast<NodeId>(f.a), static_cast<NodeId>(f.b),
                 f.down_at, f.up_at);
    }
  }
  for (auto& [key, spans] : direct_down_) {
    std::sort(spans.spans.begin(), spans.spans.end());
  }

  if (topo_ == nullptr || !topo_->switched()) return;

  // Map flaps and switch crashes onto the cables they take down — both
  // directions of each full-duplex pair.
  edge_down_.resize(topo_->edge_count());
  const auto add_edge_span = [&](std::uint32_t e, sim::SimTime lo,
                                 sim::SimTime hi) {
    edge_down_[e].spans.emplace_back(lo, hi);
  };
  for (std::uint32_t e = 0; e < topo_->edge_count(); ++e) {
    const Topology::Edge& edge = topo_->edge(e);
    for (const LinkFlap& f : plan_.link_flaps) {
      if ((edge.from == f.a && edge.to == f.b) ||
          (edge.from == f.b && edge.to == f.a)) {
        add_edge_span(e, f.down_at, f.up_at);
      }
    }
    for (const SwitchFault& f : plan_.switch_faults) {
      const Vertex sw = topo_->switch_vertex(f.switch_index);
      if (edge.from == sw || edge.to == sw) {
        add_edge_span(e, f.down_at, f.up_at);
      }
    }
  }
  bool any_edge = false;
  for (DownSpans& d : edge_down_) {
    std::sort(d.spans.begin(), d.spans.end());
    any_edge = any_edge || !d.spans.empty();
  }
  if (!any_edge) {
    edge_down_.clear();
    return;
  }

  // Fault epochs: the cable up/down state is constant between
  // transition instants, so one failover route table per epoch covers
  // every send in it. Tables are precomputed here (single-threaded,
  // before the run) and only read afterwards.
  std::vector<sim::SimTime> cuts;
  for (const DownSpans& d : edge_down_) {
    for (const auto& [lo, hi] : d.spans) {
      cuts.push_back(lo);
      cuts.push_back(hi);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  epoch_starts_.push_back(0);
  for (const sim::SimTime t : cuts) {
    if (t > 0) epoch_starts_.push_back(t);
  }
  epoch_routes_.resize(epoch_starts_.size());
  for (std::size_t i = 0; i < epoch_starts_.size(); ++i) {
    std::vector<bool> mask(topo_->edge_count(), false);
    bool any = false;
    for (std::uint32_t e = 0; e < topo_->edge_count(); ++e) {
      if (edge_down_[e].down_at(epoch_starts_[i])) {
        mask[e] = true;
        any = true;
      }
    }
    if (any) epoch_routes_[i] = topo_->compute_routes_masked(mask);
  }
}

void Fabric::count_drop(DropReason r, sim::SimTime t, NodeId track,
                        trace::Tracer* tracer) {
  dropped_.fetch_add(1, std::memory_order_relaxed);
  drops_by_reason_[static_cast<std::size_t>(r)].fetch_add(
      1, std::memory_order_relaxed);
  if (tracer != nullptr) {
    tracer->counter(trace::Component::kNetDrop, t, 1,
                    static_cast<std::uint16_t>(track));
  }
}

bool Fabric::direct_is_down(NodeId from, NodeId to, sim::SimTime t) const {
  const std::uint64_t key = pack(from, to);
  for (const auto& [k, spans] : direct_down_) {
    if (k == key) return spans.down_at(t);
  }
  return false;
}

bool Fabric::partition_blocked(NodeId src, NodeId dst, sim::SimTime t) const {
  for (const NetPartition& p : plan_.partitions) {
    if (t < p.begin || t >= p.end) continue;
    const bool s = std::find(p.island.begin(), p.island.end(), src) !=
                   p.island.end();
    const bool d = std::find(p.island.begin(), p.island.end(), dst) !=
                   p.island.end();
    if (s != d) return true;
  }
  return false;
}

void Fabric::burst_rates(sim::SimTime t, double& loss, double& corrupt) const {
  for (const LossBurst& b : plan_.bursts) {
    if (t < b.begin || t >= b.end) continue;
    loss = std::max(loss, b.loss);
    corrupt = std::max(corrupt, b.corrupt);
  }
}

const Route& Fabric::route_at(NodeId from, NodeId to, sim::SimTime t) const {
  if (epoch_starts_.empty()) return topo_->route(from, to);
  std::size_t i =
      static_cast<std::size_t>(
          std::upper_bound(epoch_starts_.begin(), epoch_starts_.end(), t) -
          epoch_starts_.begin()) -
      1;
  const std::vector<Route>& table = epoch_routes_[i];
  if (table.empty()) return topo_->route(from, to);
  return table[static_cast<std::size_t>(from) * topo_->host_count() + to];
}

void Fabric::grow_links() {
  std::vector<LinkSlot> old = std::move(links_);
  links_ = std::vector<LinkSlot>(std::max<std::size_t>(16, old.size() * 2));
  for (LinkSlot& slot : old) {
    if (slot.key == kEmptyKey) continue;
    std::size_t i = hash_key(slot.key) & (links_.size() - 1);
    while (links_[i].key != kEmptyKey) i = (i + 1) & (links_.size() - 1);
    links_[i] = std::move(slot);
  }
}

Fabric::LinkState& Fabric::state(NodeId from, NodeId to) {
  const std::uint64_t key = pack(from, to);
  if (!links_.empty()) {
    std::size_t i = hash_key(key) & (links_.size() - 1);
    while (links_[i].key != kEmptyKey) {
      if (links_[i].key == key) return links_[i].state;
      i = (i + 1) & (links_.size() - 1);
    }
  }
  // Miss: insert. On a multi-partition engine the table is frozen once
  // workers run (register_node pre-created every directed pair), so an
  // insert here from a worker thread is a bug — growing or writing the
  // shared slot vector would race other partitions' probes.
  if (partitioned_ && sim::current_engine_shard() != nullptr) {
    throw std::logic_error(
        "fabric link table insert during a partitioned run: packets may "
        "only flow between nodes registered before Cluster::run()");
  }
  if (links_.empty() || (link_count_ + 1) * 4 > links_.size() * 3) {
    grow_links();
  }
  std::size_t i = hash_key(key) & (links_.size() - 1);
  while (links_[i].key != kEmptyKey) i = (i + 1) & (links_.size() - 1);
  LinkSlot& slot = links_[i];
  slot.key = key;
  slot.state.params = defaults_;
  if (partitioned_) {
    // Order-independent per-link stream: a link's draws depend only on
    // (seed, from, to), never on which partition touched it first.
    slot.state.rng = std::make_unique<sim::Rng>(
        hash_key(link_seed_ ^ (key * 0x9e3779b97f4a7c15ULL)));
  }
  ++link_count_;
  return slot.state;
}

LinkParams& Fabric::direct_link(NodeId from, NodeId to) {
  return state(from, to).params;
}

sim::SimTime Fabric::min_cross_partition_propagation() const {
  constexpr sim::SimTime kNever = std::numeric_limits<sim::SimTime>::max();
  if (!partitioned_) return kNever;
  sim::SimTime m = kNever;

  const auto host_partition = [&](NodeId id) -> std::size_t {
    return id < nodes_.size() ? nodes_[id].partition
                              : engine_->partition_of_node(id);
  };

  // Routed ports: the conservative floor guarantees a hop's arrival
  // lands >= propagation/2 after the send executes (jitter clamp), so
  // a port bounds the lookahead only when the arrival can execute on a
  // different partition than the send.
  for (const Port& port : ports_) {
    bool crosses = false;
    if (!topo_->is_switch(port.to)) {
      crosses = host_partition(static_cast<NodeId>(port.to)) != port.partition;
    } else {
      for (const Port& next : ports_) {
        if (next.from == port.to && next.partition != port.partition) {
          crosses = true;
          break;
        }
      }
    }
    if (crosses) m = std::min(m, port.params.propagation);
  }

  // Direct links: only host pairs the routed graph does not cover can
  // reach the flat table (send() prefers a non-empty route), so the
  // precreated default-propagation entries between routed hosts are
  // unreachable and excluded.
  const std::size_t hosts = topo_ != nullptr ? topo_->host_count() : 0;
  for (const LinkSlot& slot : links_) {
    if (slot.key == kEmptyKey) continue;
    const auto from = static_cast<NodeId>(slot.key >> 32);
    const auto to = static_cast<NodeId>(slot.key & 0xffffffffu);
    if (routed() && from != to && from < hosts && to < hosts &&
        !topo_->route(from, to).ports.empty()) {
      continue;
    }
    if (from >= nodes_.size() || to >= nodes_.size() ||
        nodes_[from].partition != nodes_[to].partition) {
      m = std::min(m, slot.state.params.propagation);
    }
  }
  return m;
}

sim::SimTime Fabric::min_propagation() const {
  sim::SimTime m = defaults_.propagation;
  for (const LinkSlot& slot : links_) {
    if (slot.key != kEmptyKey) m = std::min(m, slot.state.params.propagation);
  }
  for (const Port& port : ports_) {
    m = std::min(m, port.params.propagation);
  }
  return m;
}

Fabric::PortStats Fabric::port_stats(std::size_t i) const {
  const Port& port = ports_[i];
  PortStats s;
  s.from = port.from;
  s.to = port.to;
  s.packets = port.packets;
  s.bytes = port.bytes;
  s.queue_ns_total = port.queue_ns_total;
  s.queue_ns_peak = port.queue_ns_peak;
  s.pfc_events = port.pfc_events;
  s.pfc_pause_ns = port.pfc_pause_ns;
  s.drops = port.drops;
  s.corrupt_drops = port.corrupt_drops;
  return s;
}

sim::SimTime Fabric::max_port_queue_ns() const {
  sim::SimTime m = 0;
  for (const Port& port : ports_) m = std::max(m, port.queue_ns_peak);
  return m;
}

std::uint64_t Fabric::pfc_pauses() const {
  std::uint64_t n = 0;
  for (const Port& port : ports_) n += port.pfc_events;
  return n;
}

sim::SimTime Fabric::pfc_pause_ns_total() const {
  sim::SimTime n = 0;
  for (const Port& port : ports_) n += port.pfc_pause_ns;
  return n;
}

sim::SimTime Fabric::send(Packet p) {
  if (routed() && p.src != p.dst && p.src < topo_->host_count() &&
      p.dst < topo_->host_count()) {
    const Route& base = topo_->route(p.src, p.dst);
    if (!base.ports.empty()) {
      NodeCtx& src = ctx(p.src);
      sim::Simulator& ssim = src.sim != nullptr ? *src.sim : sim_;
      const sim::SimTime now = ssim.now();
      if (have_faults_) {
        // Fault checks happen before the packet touches any port: the
        // down/partition state is a pure function of simulated time, so
        // a rejected packet perturbs no egress occupancy or RNG stream.
        if (partition_blocked(p.src, p.dst, now)) {
          count_drop(DropReason::kPartition, now, p.src, src.tracer);
          return now;
        }
        const Route& route = route_at(p.src, p.dst, now);
        if (route.ports.empty()) {
          // No surviving path this fault epoch. The destination stalls
          // rather than silently losing traffic: the drop is accounted
          // and the RC layer retries until a later epoch reconnects it
          // (never the flat direct table — that would teleport packets
          // around the fault).
          count_drop(DropReason::kUnreachable, now, p.src, src.tracer);
          return now;
        }
        return hop_transmit(std::move(p), route, 0, now);
      }
      return hop_transmit(std::move(p), base, 0, now);
    }
    // Host pair the graph leaves disconnected: fall through to the
    // direct point-to-point link, like the pre-topology fabric.
  }
  return send_direct(std::move(p));
}

sim::SimTime Fabric::hop_transmit(Packet p, const Route& route,
                                  std::size_t hop, sim::SimTime t_in) {
  Port& port = ports_[route.ports[hop]];
  // Store-and-forward: a switch charges its traversal latency before
  // the packet can contend for the egress queue.
  const sim::SimTime ready =
      hop == 0 ? t_in : t_in + topo_cfg_.switch_latency;
  if (have_faults_ && edge_is_down(route.ports[hop], ready)) {
    // Downed egress (flap or switch crash): rejected before occupying
    // the wire — no busy-until mutation, no RNG draw, no byte counted.
    // In-flight packets hit this mid-route when a cable dies under
    // them; fresh sends only reach a downed cable while their pinned
    // (stale) epoch route still crosses it.
    port.drops += 1;
    trace::Tracer* t =
        port.owner < nodes_.size() ? nodes_[port.owner].tracer : tracer_;
    count_drop(DropReason::kLinkDown, ready, port.owner, t);
    return port.busy_until;
  }
  if (hop > 0) switch_hops_.fetch_add(1, std::memory_order_relaxed);

  const LinkParams& lp = port.params;
  const std::uint64_t bytes = p.wire_bytes();
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  port.packets += 1;
  port.bytes += bytes;

  // Residual bandwidth after background traffic (same model as the
  // direct path, applied per cable).
  const double load = std::clamp(lp.background_load, 0.0, 0.95);
  const double residual_bw = lp.bandwidth_bytes_per_s * (1.0 - load);
  const sim::SimTime service = sim::transfer_time(bytes, residual_bw);

  // Egress-queue occupancy: the wait behind earlier packets out of
  // this port is where incast at fan-in ports becomes visible.
  const sim::SimTime tx_begin = std::max(ready, port.busy_until);
  const sim::SimTime queued = tx_begin - ready;
  port.busy_until = tx_begin + service;
  port.queue_ns_total += queued;
  port.queue_ns_peak = std::max(port.queue_ns_peak, queued);

  sim::Rng& rng = *port.rng;
  sim::SimTime queueing = 0;
  if (load > 0.0) {
    const double mean_wait =
        load / (1.0 - load) *
        static_cast<double>(std::max<sim::SimTime>(service, 200));
    queueing = static_cast<sim::SimTime>(rng.exponential(mean_wait));
  }
  double jitter = rng.lognormal_jitter(lp.jitter_sigma);
  // Routed paths always honor the conservative lookahead floor (half
  // the propagation), partitioned or not, so a switched run is
  // byte-identical at any engine thread count.
  if (jitter < 0.5) jitter = 0.5;

  // PFC pause (opt-in): backlog past the threshold pauses the
  // upstream sender. Modeled as an arrival-gated penalty at this port
  // — the excess wait is charged to the packet and counted — instead
  // of literal pause frames walking upstream, which would mutate
  // foreign ports' state across partitions mid-epoch.
  sim::SimTime pfc_hold = 0;
  if (topo_cfg_.pfc) {
    const sim::SimTime threshold_ns =
        sim::transfer_time(topo_cfg_.pfc_threshold, residual_bw);
    if (queued > threshold_ns) {
      pfc_hold = queued - threshold_ns;
      port.pfc_events += 1;
      port.pfc_pause_ns += pfc_hold;
    }
  }

  const auto flight = static_cast<sim::SimTime>(
                          static_cast<double>(lp.propagation + queueing) *
                          jitter) +
                      pfc_hold;
  const sim::SimTime arrival = port.busy_until + flight;

  trace::Tracer* tracer =
      port.owner < nodes_.size() ? nodes_[port.owner].tracer : tracer_;
  if (tracer != nullptr) {
    if (hop == 0) {
      tracer->span(trace::Component::kNetSerialize, p.seq, tx_begin,
                   port.busy_until, static_cast<std::uint16_t>(p.src));
    } else {
      tracer->span(trace::Component::kNetSwitchHop, p.seq, t_in,
                   port.busy_until, static_cast<std::uint16_t>(port.owner));
    }
    tracer->span(trace::Component::kNetFlight, p.seq, port.busy_until, arrival,
                 static_cast<std::uint16_t>(port.owner));
    if (queued > 0) {
      tracer->counter(trace::Component::kNetPortQueue, ready,
                      static_cast<std::uint64_t>(queued),
                      static_cast<std::uint16_t>(route.ports[hop]));
    }
  }

  double loss = lp.loss_probability;
  double corrupt = 0.0;
  if (have_faults_) burst_rates(ready, loss, corrupt);
  if (loss > 0.0 && rng.bernoulli(loss)) {
    port.drops += 1;
    count_drop(DropReason::kLoss, ready, port.owner, tracer);
    return port.busy_until;
  }
  if (corrupt > 0.0 && rng.bernoulli(corrupt)) {
    // A corrupted frame fails the link-layer CRC at the far end; to the
    // transport it is a loss, only the accounting differs.
    port.drops += 1;
    port.corrupt_drops += 1;
    count_drop(DropReason::kCorrupt, ready, port.owner, tracer);
    return port.busy_until;
  }

  const sim::SimTime accepted = port.busy_until;
  if (hop + 1 < route.ports.size()) {
    const Port& next = ports_[route.ports[hop + 1]];
    auto forward = [this, p = std::move(p), r = &route, next_hop = hop + 1,
                    t = arrival]() mutable {
      hop_transmit(std::move(p), *r, next_hop, t);
    };
    if (!partitioned_ || next.partition == port.partition) {
      next.sim->schedule_at(arrival, std::move(forward));
    } else {
      engine_->schedule_remote(port.partition, next.partition, arrival,
                               sim::InlineTask(std::move(forward)));
    }
    return accepted;
  }

  NodeCtx& dst = ctx(p.dst);
  auto deliver = [this, p = std::move(p), t = arrival]() mutable {
    const NodeCtx& d = nodes_[p.dst];
    if (!d.sink) {
      // Destination crashed/unregistered: same accounted path as every
      // other discard, attributed to the dead node.
      count_drop(DropReason::kDeadNode, t, p.dst, d.tracer);
      return;
    }
    delivered_.fetch_add(1, std::memory_order_relaxed);
    d.sink(std::move(p));
  };
  sim::Simulator& dsim = dst.sim != nullptr ? *dst.sim : sim_;
  if (!partitioned_ || dst.partition == port.partition) {
    dsim.schedule_at(arrival, std::move(deliver));
  } else {
    engine_->schedule_remote(port.partition, dst.partition, arrival,
                             sim::InlineTask(std::move(deliver)));
  }
  return accepted;
}

sim::SimTime Fabric::send_direct(Packet p) {
  NodeCtx& src = ctx(p.src);
  // Unregistered senders (raw-fabric tests) run on the fabric's own
  // simulator, matching the pre-partitioning behaviour.
  sim::Simulator& ssim = src.sim != nullptr ? *src.sim : sim_;
  if (have_faults_) {
    // Rejected before the link's busy-until or RNG stream is touched —
    // fault state is time-pure, so the surviving schedule is unchanged.
    const sim::SimTime now = ssim.now();
    if (partition_blocked(p.src, p.dst, now)) {
      count_drop(DropReason::kPartition, now, p.src, src.tracer);
      return now;
    }
    if (direct_is_down(p.src, p.dst, now)) {
      state(p.src, p.dst).drops += 1;
      count_drop(DropReason::kLinkDown, now, p.src, src.tracer);
      return now;
    }
  }
  LinkState& lk = state(p.src, p.dst);
  const LinkParams& lp = lk.params;

  const std::uint64_t bytes = p.wire_bytes();
  bytes_.fetch_add(bytes, std::memory_order_relaxed);

  // Residual bandwidth after background traffic.
  const double load = std::clamp(lp.background_load, 0.0, 0.95);
  const double residual_bw = lp.bandwidth_bytes_per_s * (1.0 - load);
  const sim::SimTime service = sim::transfer_time(bytes, residual_bw);

  // Serialization: this packet queues behind earlier ones in the same
  // direction.
  const sim::SimTime tx_begin = std::max(ssim.now(), lk.busy_until);
  lk.busy_until = tx_begin + service;

  sim::Rng& rng = lk.rng != nullptr ? *lk.rng : rng_;

  // M/M/1-flavoured queueing behind background traffic: expected wait
  // of load/(1-load) service times, sampled exponentially.
  sim::SimTime queueing = 0;
  if (load > 0.0) {
    const double mean_wait =
        load / (1.0 - load) *
        static_cast<double>(std::max<sim::SimTime>(service, 200));
    queueing = static_cast<sim::SimTime>(rng.exponential(mean_wait));
  }

  double jitter = rng.lognormal_jitter(lp.jitter_sigma);
  // Conservative lookahead floor: a partitioned run promises every
  // arrival lands at least propagation/2 after the send, so the jitter
  // multiplier cannot shrink the flight below half the nominal delay
  // (an astronomically rare tail at the modelled sigmas).
  if (partitioned_ && jitter < 0.5) jitter = 0.5;
  const auto flight = static_cast<sim::SimTime>(
      static_cast<double>(lp.propagation + queueing) * jitter);
  const sim::SimTime arrival = tx_begin + service + flight;

  if (src.tracer != nullptr) {
    src.tracer->span(trace::Component::kNetSerialize, p.seq, tx_begin,
                     tx_begin + service, static_cast<std::uint16_t>(p.src));
    src.tracer->span(trace::Component::kNetFlight, p.seq, tx_begin + service,
                     arrival, static_cast<std::uint16_t>(p.src));
  }

  double loss = lp.loss_probability;
  double corrupt = 0.0;
  if (have_faults_) burst_rates(tx_begin, loss, corrupt);
  if (loss > 0.0 && rng.bernoulli(loss)) {
    lk.drops += 1;
    count_drop(DropReason::kLoss, tx_begin, p.src, src.tracer);
    return lk.busy_until;
  }
  if (corrupt > 0.0 && rng.bernoulli(corrupt)) {
    lk.drops += 1;
    count_drop(DropReason::kCorrupt, tx_begin, p.src, src.tracer);
    return lk.busy_until;
  }

  NodeCtx& dst = ctx(p.dst);
  auto deliver = [this, p = std::move(p), t = arrival]() mutable {
    const NodeCtx& d = nodes_[p.dst];
    if (!d.sink) {
      // Destination crashed/unregistered: accounted, never silent.
      count_drop(DropReason::kDeadNode, t, p.dst, d.tracer);
      return;
    }
    delivered_.fetch_add(1, std::memory_order_relaxed);
    d.sink(std::move(p));
  };
  if (!partitioned_ || dst.partition == src.partition) {
    ssim.schedule_at(arrival, std::move(deliver));
  } else {
    engine_->schedule_remote(src.partition, dst.partition, arrival,
                             sim::InlineTask(std::move(deliver)));
  }
  return lk.busy_until;
}

}  // namespace prdma::net
