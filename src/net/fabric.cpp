#include "net/fabric.hpp"

#include <algorithm>
#include <cmath>

namespace prdma::net {

void Fabric::register_node(NodeId id, std::function<void(Packet)> deliver) {
  sinks_[id] = std::move(deliver);
}

void Fabric::unregister_node(NodeId id) { sinks_[id] = nullptr; }

Fabric::LinkState& Fabric::state(NodeId from, NodeId to) {
  auto [it, inserted] = links_.try_emplace({from, to});
  if (inserted) it->second.params = defaults_;
  return it->second;
}

LinkParams& Fabric::link(NodeId from, NodeId to) {
  return state(from, to).params;
}

void Fabric::for_all_links(const std::function<void(LinkParams&)>& fn) {
  fn(defaults_);
  for (auto& [key, st] : links_) fn(st.params);
}

sim::SimTime Fabric::send(Packet p) {
  LinkState& lk = state(p.src, p.dst);
  const LinkParams& lp = lk.params;

  const std::uint64_t bytes = p.wire_bytes();
  bytes_ += bytes;

  // Residual bandwidth after background traffic.
  const double load = std::clamp(lp.background_load, 0.0, 0.95);
  const double residual_bw = lp.bandwidth_bytes_per_s * (1.0 - load);
  const sim::SimTime service = sim::transfer_time(bytes, residual_bw);

  // Serialization: this packet queues behind earlier ones in the same
  // direction.
  const sim::SimTime tx_begin = std::max(sim_.now(), lk.busy_until);
  lk.busy_until = tx_begin + service;

  // M/M/1-flavoured queueing behind background traffic: expected wait
  // of load/(1-load) service times, sampled exponentially.
  sim::SimTime queueing = 0;
  if (load > 0.0) {
    const double mean_wait =
        load / (1.0 - load) *
        static_cast<double>(std::max<sim::SimTime>(service, 200));
    queueing = static_cast<sim::SimTime>(rng_.exponential(mean_wait));
  }

  const double jitter = rng_.lognormal_jitter(lp.jitter_sigma);
  const auto flight = static_cast<sim::SimTime>(
      static_cast<double>(lp.propagation + queueing) * jitter);
  const sim::SimTime arrival = tx_begin + service + flight;

  if (tracer_) {
    tracer_->span(trace::Component::kNetSerialize, p.seq, tx_begin,
                  tx_begin + service, static_cast<std::uint16_t>(p.src));
    tracer_->span(trace::Component::kNetFlight, p.seq, tx_begin + service,
                  arrival, static_cast<std::uint16_t>(p.src));
  }

  if (lp.loss_probability > 0.0 && rng_.bernoulli(lp.loss_probability)) {
    ++dropped_;
    return lk.busy_until;
  }

  sim_.schedule_at(arrival, [this, p = std::move(p)]() mutable {
    const auto it = sinks_.find(p.dst);
    if (it == sinks_.end() || !it->second) {
      ++dropped_;  // destination crashed/unregistered
      return;
    }
    ++delivered_;
    it->second(std::move(p));
  });
  return lk.busy_until;
}

}  // namespace prdma::net
