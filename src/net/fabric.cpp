#include "net/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prdma::net {

Fabric::NodeCtx& Fabric::ctx(NodeId id) {
  if (id >= nodes_.size()) nodes_.resize(id + 1);
  return nodes_[id];
}

void Fabric::register_node(NodeId id, sim::Simulator& sim,
                           std::function<void(Packet)> deliver) {
  NodeCtx& c = ctx(id);
  c.sim = &sim;
  c.sink = std::move(deliver);
  if (c.tracer == nullptr) c.tracer = tracer_;
  c.partition = engine_ != nullptr ? engine_->partition_of_node(id) : 0;
  if (partitioned_) precreate_links(id);
}

void Fabric::unregister_node(NodeId id) { ctx(id).sink = nullptr; }

void Fabric::precreate_links(NodeId id) {
  // Worker threads of a multi-partition run probe links_ concurrently
  // (one directed link's state is only ever *mutated* by its source
  // partition, but the open-addressing probe walks shared slots), so
  // the table must be frozen before run(): materialize both directions
  // between `id` and every known node now, while still single-threaded.
  for (std::size_t other = 0; other < nodes_.size(); ++other) {
    if (other == id) continue;
    state(id, static_cast<NodeId>(other));
    state(static_cast<NodeId>(other), id);
  }
}

void Fabric::bind_engine(sim::PartitionedEngine* engine, std::uint64_t seed) {
  engine_ = engine;
  link_seed_ = seed;
  partitioned_ = engine != nullptr && engine->partitions() > 1;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    nodes_[id].partition =
        partitioned_ ? engine_->partition_of_node(id) : 0;
  }
  if (partitioned_) {
    for (std::size_t id = 0; id < nodes_.size(); ++id) {
      precreate_links(static_cast<NodeId>(id));
    }
  }
}

void Fabric::grow_links() {
  std::vector<LinkSlot> old = std::move(links_);
  links_ = std::vector<LinkSlot>(std::max<std::size_t>(16, old.size() * 2));
  for (LinkSlot& slot : old) {
    if (slot.key == kEmptyKey) continue;
    std::size_t i = hash_key(slot.key) & (links_.size() - 1);
    while (links_[i].key != kEmptyKey) i = (i + 1) & (links_.size() - 1);
    links_[i] = std::move(slot);
  }
}

Fabric::LinkState& Fabric::state(NodeId from, NodeId to) {
  const std::uint64_t key = pack(from, to);
  if (!links_.empty()) {
    std::size_t i = hash_key(key) & (links_.size() - 1);
    while (links_[i].key != kEmptyKey) {
      if (links_[i].key == key) return links_[i].state;
      i = (i + 1) & (links_.size() - 1);
    }
  }
  // Miss: insert. On a multi-partition engine the table is frozen once
  // workers run (register_node pre-created every directed pair), so an
  // insert here from a worker thread is a bug — growing or writing the
  // shared slot vector would race other partitions' probes.
  if (partitioned_ && sim::current_engine_shard() != nullptr) {
    throw std::logic_error(
        "fabric link table insert during a partitioned run: packets may "
        "only flow between nodes registered before Cluster::run()");
  }
  if (links_.empty() || (link_count_ + 1) * 4 > links_.size() * 3) {
    grow_links();
  }
  std::size_t i = hash_key(key) & (links_.size() - 1);
  while (links_[i].key != kEmptyKey) i = (i + 1) & (links_.size() - 1);
  LinkSlot& slot = links_[i];
  slot.key = key;
  slot.state.params = defaults_;
  if (partitioned_) {
    // Order-independent per-link stream: a link's draws depend only on
    // (seed, from, to), never on which partition touched it first.
    slot.state.rng = std::make_unique<sim::Rng>(
        hash_key(link_seed_ ^ (key * 0x9e3779b97f4a7c15ULL)));
  }
  ++link_count_;
  return slot.state;
}

LinkParams& Fabric::link(NodeId from, NodeId to) {
  return state(from, to).params;
}

void Fabric::for_all_links(const std::function<void(LinkParams&)>& fn) {
  fn(defaults_);
  for (LinkSlot& slot : links_) {
    if (slot.key != kEmptyKey) fn(slot.state.params);
  }
}

sim::SimTime Fabric::min_propagation() const {
  sim::SimTime m = defaults_.propagation;
  for (const LinkSlot& slot : links_) {
    if (slot.key != kEmptyKey) m = std::min(m, slot.state.params.propagation);
  }
  return m;
}

sim::SimTime Fabric::send(Packet p) {
  NodeCtx& src = ctx(p.src);
  // Unregistered senders (raw-fabric tests) run on the fabric's own
  // simulator, matching the pre-partitioning behaviour.
  sim::Simulator& ssim = src.sim != nullptr ? *src.sim : sim_;
  LinkState& lk = state(p.src, p.dst);
  const LinkParams& lp = lk.params;

  const std::uint64_t bytes = p.wire_bytes();
  bytes_.fetch_add(bytes, std::memory_order_relaxed);

  // Residual bandwidth after background traffic.
  const double load = std::clamp(lp.background_load, 0.0, 0.95);
  const double residual_bw = lp.bandwidth_bytes_per_s * (1.0 - load);
  const sim::SimTime service = sim::transfer_time(bytes, residual_bw);

  // Serialization: this packet queues behind earlier ones in the same
  // direction.
  const sim::SimTime tx_begin = std::max(ssim.now(), lk.busy_until);
  lk.busy_until = tx_begin + service;

  sim::Rng& rng = lk.rng != nullptr ? *lk.rng : rng_;

  // M/M/1-flavoured queueing behind background traffic: expected wait
  // of load/(1-load) service times, sampled exponentially.
  sim::SimTime queueing = 0;
  if (load > 0.0) {
    const double mean_wait =
        load / (1.0 - load) *
        static_cast<double>(std::max<sim::SimTime>(service, 200));
    queueing = static_cast<sim::SimTime>(rng.exponential(mean_wait));
  }

  double jitter = rng.lognormal_jitter(lp.jitter_sigma);
  // Conservative lookahead floor: a partitioned run promises every
  // arrival lands at least propagation/2 after the send, so the jitter
  // multiplier cannot shrink the flight below half the nominal delay
  // (an astronomically rare tail at the modelled sigmas).
  if (partitioned_ && jitter < 0.5) jitter = 0.5;
  const auto flight = static_cast<sim::SimTime>(
      static_cast<double>(lp.propagation + queueing) * jitter);
  const sim::SimTime arrival = tx_begin + service + flight;

  if (src.tracer != nullptr) {
    src.tracer->span(trace::Component::kNetSerialize, p.seq, tx_begin,
                     tx_begin + service, static_cast<std::uint16_t>(p.src));
    src.tracer->span(trace::Component::kNetFlight, p.seq, tx_begin + service,
                     arrival, static_cast<std::uint16_t>(p.src));
  }

  if (lp.loss_probability > 0.0 && rng.bernoulli(lp.loss_probability)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return lk.busy_until;
  }

  NodeCtx& dst = ctx(p.dst);
  auto deliver = [this, p = std::move(p)]() mutable {
    const NodeCtx& d = nodes_[p.dst];
    if (!d.sink) {
      // destination crashed/unregistered
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    delivered_.fetch_add(1, std::memory_order_relaxed);
    d.sink(std::move(p));
  };
  if (!partitioned_ || dst.partition == src.partition) {
    ssim.schedule_at(arrival, std::move(deliver));
  } else {
    engine_->schedule_remote(src.partition, dst.partition, arrival,
                             sim::InlineTask(std::move(deliver)));
  }
  return lk.busy_until;
}

}  // namespace prdma::net
