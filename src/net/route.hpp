#pragma once

#include <cstdint>
#include <vector>

namespace prdma::net {

using NodeId = std::uint32_t;

/// Topology-graph vertex. Hosts occupy [0, host_count); switch `s`
/// (construction order) is vertex host_count + s. A NodeId is therefore
/// always a valid Vertex, never the other way around.
using Vertex = std::uint32_t;

/// One precomputed unidirectional path through the topology: the
/// directed cables ("ports" — each has its own egress queue) a packet
/// crosses from the source host to the destination host, in hop order.
/// Empty for src == dst and for host pairs the graph does not connect
/// (the fabric then falls back to the flat point-to-point link).
struct Route {
  std::vector<std::uint32_t> ports;
};

/// Deterministic ECMP flow hash: equal-cost next-hop selection is a
/// pure function of (flow src, flow dst, forwarding vertex), so a flow
/// is pinned to one path (no packet reordering across equal-cost
/// members) and the choice is stable across runs, platforms and engine
/// thread counts. splitmix64 finalizer — same mixer the fabric's link
/// table uses — so clustered ids spread over the equal-cost set.
[[nodiscard]] constexpr std::uint64_t ecmp_hash(NodeId src, NodeId dst,
                                                Vertex at) {
  std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) ^
                      (static_cast<std::uint64_t>(dst) << 20) ^ at;
  key ^= key >> 30;
  key *= 0xbf58476d1ce4e5b9ULL;
  key ^= key >> 27;
  key *= 0x94d049bb133111ebULL;
  key ^= key >> 31;
  return key;
}

}  // namespace prdma::net
