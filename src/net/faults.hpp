#pragma once

#include <cstdint>
#include <vector>

#include "net/route.hpp"
#include "sim/time.hpp"

namespace prdma::net {

class Topology;

/// One full-duplex cable going dark and coming back: both directed
/// edges between `a` and `b` reject packets at their egress during
/// [down_at, up_at). On a switched fabric (a, b) name graph vertices
/// (host or switch_vertex(s)); on the point-to-point preset they name
/// the two hosts of the direct link.
struct LinkFlap {
  Vertex a = 0;
  Vertex b = 0;
  sim::SimTime down_at = 0;
  sim::SimTime up_at = 0;
};

/// A switch crash: every cable incident to the switch is down during
/// [down_at, up_at) — ECMP failover routes around it where a path
/// survives; otherwise destinations become unreachable until it heals.
struct SwitchFault {
  std::uint32_t switch_index = 0;
  sim::SimTime down_at = 0;
  sim::SimTime up_at = 0;
};

/// A fabric-wide loss/corruption episode: during [begin, end) every
/// egress draws drops at max(link loss, `loss`) and additionally
/// discards packets with probability `corrupt` (a corrupted frame
/// fails its link-layer CRC, so to the transport it is a loss — the
/// distinction only shows up in the drop accounting).
struct LossBurst {
  sim::SimTime begin = 0;
  sim::SimTime end = 0;
  double loss = 0.0;
  double corrupt = 0.0;
};

/// A clean network partition: during [begin, end) no packet crosses
/// between `island` and the rest of the hosts (checked at egress, so
/// blocked traffic lands in the accounted drop path and the RC layer
/// keeps retrying until the partition heals).
struct NetPartition {
  std::vector<NodeId> island;
  sim::SimTime begin = 0;
  sim::SimTime end = 0;
};

/// A deterministic, seed-driven schedule of network faults, installed
/// into the Fabric before the run starts (Cluster does this when
/// ModelParams::faults is non-empty). The plan is consulted read-only
/// at packet egress — fault state is a pure function of simulated
/// time, so an active plan adds no events of its own and stays
/// byte-identical at any --engine-threads.
struct FaultPlan {
  std::vector<LinkFlap> link_flaps;
  std::vector<SwitchFault> switch_faults;
  std::vector<LossBurst> bursts;
  std::vector<NetPartition> partitions;

  [[nodiscard]] bool empty() const {
    return link_flaps.empty() && switch_faults.empty() && bursts.empty() &&
           partitions.empty();
  }

  /// Throws std::invalid_argument on inverted intervals, empty
  /// partition islands, or unbounded (never-healing) faults — a plan
  /// that never heals would leave the RC retransmission chains live
  /// forever and the run would not terminate.
  void validate() const;
};

/// Seed-driven random plan over `topo`'s actual cables (or the direct
/// host pairs of a switchless fabric): a couple of link flaps, one
/// switch crash when the fabric has switches, and one loss burst, all
/// inside [0, horizon) and all healed before `horizon`. Deterministic
/// in (topo, seed, horizon).
[[nodiscard]] FaultPlan random_fault_plan(const Topology& topo,
                                          std::uint64_t seed,
                                          sim::SimTime horizon);

}  // namespace prdma::net
