#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mem/buffer_pool.hpp"

namespace prdma::net {

using NodeId = std::uint32_t;

/// Wire opcodes exchanged between RNICs. The set mirrors the verbs the
/// paper's protocols use (Fig. 2) plus the proposed Flush extensions
/// (§4.1) and the transport-level control packets.
enum class WireOp : std::uint8_t {
  kSend,       ///< two-sided send (consumes a posted recv at the target)
  kSendImm,    ///< send with immediate data
  kWrite,      ///< one-sided write
  kWriteImm,   ///< write with immediate (consumes recv WQE for notify)
  kReadReq,    ///< one-sided read request
  kReadResp,   ///< read response carrying data
  kWFlushReq,  ///< sender-initiated flush after a write (§4.1.1)
  kSFlushReq,  ///< sender-initiated flush after a send (§4.1.1)
  kFlushAck,   ///< RNIC-generated "data is persistent" acknowledgement
  kAck,        ///< RC transport acknowledgement
  kNak,        ///< remote-access violation (bad rkey/permission)
};

[[nodiscard]] constexpr bool carries_payload(WireOp op) {
  return op == WireOp::kSend || op == WireOp::kSendImm ||
         op == WireOp::kWrite || op == WireOp::kWriteImm ||
         op == WireOp::kReadResp;
}

/// IB/RoCE-class per-packet header overhead charged on the wire.
inline constexpr std::uint64_t kHeaderBytes = 66;

/// Shared immutable payload image: retransmissions, multi-hop
/// deliveries and the final DMA reference the same scatter-gather
/// block (pooled when it came out of a node's BufferPool).
using PayloadRef = mem::PayloadRef;

inline PayloadRef make_payload(const std::vector<std::byte>& bytes) {
  return mem::make_heap_payload({bytes.data(), bytes.size()});
}

inline PayloadRef make_payload(std::span<const std::byte> bytes) {
  return mem::make_heap_payload(bytes);
}

/// One network packet between two RNICs.
struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t src_qp = 0;
  std::uint32_t dst_qp = 0;
  WireOp op = WireOp::kSend;

  std::uint64_t wr_id = 0;       ///< sender work-request id (echoed in ACKs)
  std::uint64_t remote_addr = 0; ///< target address for write/read/flush
  std::uint64_t length = 0;      ///< data length (payload or read size)
  std::uint32_t imm = 0;         ///< immediate value
  bool has_imm = false;
  std::uint64_t seq = 0;         ///< per-QP sequence number (RC ordering)
  /// Sender-side scratch (not on the wire): where a read response or
  /// recv should land in the initiator's memory.
  std::uint64_t local_addr = 0;

  PayloadRef payload;            ///< data image for payload-carrying ops

  /// Bytes occupying the wire (payload for data ops, header always).
  [[nodiscard]] std::uint64_t wire_bytes() const {
    return kHeaderBytes + (carries_payload(op) ? length : 0);
  }
};

}  // namespace prdma::net
