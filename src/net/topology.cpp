#include "net/topology.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace prdma::net {

std::optional<TopologyPreset> preset_from_name(std::string_view name) {
  if (name == "point-to-point" || name == "p2p") {
    return TopologyPreset::kPointToPoint;
  }
  if (name == "rack") return TopologyPreset::kRack;
  if (name == "leaf-spine") return TopologyPreset::kLeafSpine;
  return std::nullopt;
}

std::string_view preset_name(TopologyPreset preset) {
  switch (preset) {
    case TopologyPreset::kPointToPoint: return "point-to-point";
    case TopologyPreset::kRack: return "rack";
    case TopologyPreset::kLeafSpine: return "leaf-spine";
  }
  return "?";
}

std::uint32_t Topology::add_switch(std::string name) {
  switch_names_.push_back(std::move(name));
  adj_.emplace_back();
  return static_cast<std::uint32_t>(switch_names_.size() - 1);
}

std::uint32_t Topology::connect(Vertex a, Vertex b, const LinkParams& ab,
                                const LinkParams& ba) {
  if (a >= vertex_count() || b >= vertex_count() || a == b) {
    throw std::invalid_argument("topology connect: bad vertex pair");
  }
  const auto id = static_cast<std::uint32_t>(edges_.size());
  edges_.push_back(Edge{a, b, ab});
  adj_[a].push_back(id);
  edges_.push_back(Edge{b, a, ba});
  adj_[b].push_back(id + 1);
  return id;
}

// Hop distance from every vertex to one destination, by reverse BFS.
// Cables are declared in full-duplex pairs, so vertex adjacency is
// symmetric and the forward adjacency list serves both directions
// (edge_down masks are likewise set pairwise).
std::vector<std::uint32_t> Topology::distances_to(
    Vertex dst, const std::vector<bool>* edge_down) const {
  constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(vertex_count(), kUnreached);
  dist[dst] = 0;
  std::queue<Vertex> q;
  q.push(dst);
  while (!q.empty()) {
    const Vertex v = q.front();
    q.pop();
    for (const std::uint32_t e : adj_[v]) {
      if (edge_down != nullptr && (*edge_down)[e]) continue;
      const Vertex n = edges_[e].to;
      if (dist[n] == kUnreached) {
        dist[n] = dist[v] + 1;
        q.push(n);
      }
    }
  }
  return dist;
}

void Topology::fill_routes(const std::vector<bool>* edge_down,
                           std::vector<Route>& out) const {
  constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();
  out.assign(hosts_ * hosts_, Route{});
  for (Vertex to = 0; to < hosts_; ++to) {
    const std::vector<std::uint32_t> dist = distances_to(to, edge_down);
    for (Vertex from = 0; from < hosts_; ++from) {
      if (from == to || dist[from] == kUnreached) continue;
      Route& r = out[static_cast<std::size_t>(from) * hosts_ + to];
      r.ports.reserve(dist[from]);
      Vertex cur = from;
      while (cur != to) {
        // Equal-cost next hops, in edge-construction order; the flow
        // hash pins this (from,to) flow to one of them.
        std::vector<std::uint32_t> next;
        for (const std::uint32_t e : adj_[cur]) {
          if (edge_down != nullptr && (*edge_down)[e]) continue;
          if (dist[edges_[e].to] + 1 == dist[cur]) next.push_back(e);
        }
        const std::uint32_t e =
            next[ecmp_hash(from, to, cur) % next.size()];
        r.ports.push_back(e);
        cur = edges_[e].to;
      }
    }
  }
}

void Topology::compute_routes() {
  constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();

  // Switch owners: hosts at minimal hop distance, (s mod count)-th
  // smallest id. adj_ ids are construction-ordered, so the candidate
  // set — and therefore the owner — is a pure function of the graph.
  owners_.assign(switch_count(), 0);
  for (std::uint32_t s = 0; s < switch_count(); ++s) {
    const std::vector<std::uint32_t> dist =
        distances_to(switch_vertex(s), nullptr);
    std::uint32_t best = kUnreached;
    std::vector<NodeId> candidates;
    for (Vertex h = 0; h < hosts_; ++h) {
      if (dist[h] == kUnreached) continue;
      if (dist[h] < best) {
        best = dist[h];
        candidates.clear();
      }
      if (dist[h] == best) candidates.push_back(h);
    }
    if (candidates.empty()) {
      throw std::logic_error("topology: switch \"" + switch_names_[s] +
                             "\" is not reachable from any host");
    }
    owners_[s] = candidates[s % candidates.size()];
  }

  fill_routes(nullptr, routes_);
}

std::vector<Route> Topology::compute_routes_masked(
    const std::vector<bool>& edge_down) const {
  if (edge_down.size() != edges_.size()) {
    throw std::invalid_argument("compute_routes_masked: mask size mismatch");
  }
  std::vector<Route> out;
  fill_routes(&edge_down, out);
  return out;
}

sim::SimTime Topology::min_propagation() const {
  sim::SimTime m = std::numeric_limits<sim::SimTime>::max();
  for (const Edge& e : edges_) m = std::min(m, e.params.propagation);
  return m;
}

std::size_t Topology::max_route_hops() const {
  std::size_t m = 0;
  for (const Route& r : routes_) m = std::max(m, r.ports.size());
  return m;
}

Topology build_topology(const TopologyConfig& cfg, std::size_t hosts,
                        const LinkParams& host_link) {
  Topology topo(hosts);
  if (!cfg.switched() || hosts == 0) return topo;

  LinkParams trunk = host_link;
  trunk.bandwidth_bytes_per_s *= std::max(cfg.trunk_bw_scale, 0.01);
  trunk.propagation = std::max<sim::SimTime>(
      1, static_cast<sim::SimTime>(
             static_cast<double>(host_link.propagation) *
             std::max(cfg.trunk_prop_scale, 0.0)));

  if (cfg.preset == TopologyPreset::kRack) {
    const std::uint32_t tor = topo.add_switch("tor0");
    for (Vertex h = 0; h < hosts; ++h) {
      topo.connect(h, topo.switch_vertex(tor), host_link);
    }
    topo.compute_routes();
    return topo;
  }

  // leaf-spine: hosts striped over racks in id order, every ToR cabled
  // to every spine.
  std::uint32_t racks = cfg.hosts_per_rack > 0
                            ? static_cast<std::uint32_t>(
                                  (hosts + cfg.hosts_per_rack - 1) /
                                  cfg.hosts_per_rack)
                            : cfg.racks;
  racks = std::max(1u, std::min<std::uint32_t>(
                           racks, static_cast<std::uint32_t>(hosts)));
  const std::uint32_t per_rack =
      static_cast<std::uint32_t>((hosts + racks - 1) / racks);
  const std::uint32_t spines = std::max(1u, cfg.spines);

  std::vector<std::uint32_t> tors;
  tors.reserve(racks);
  for (std::uint32_t r = 0; r < racks; ++r) {
    tors.push_back(topo.add_switch("tor" + std::to_string(r)));
  }
  std::vector<std::uint32_t> spine_ids;
  spine_ids.reserve(spines);
  for (std::uint32_t s = 0; s < spines; ++s) {
    spine_ids.push_back(topo.add_switch("spine" + std::to_string(s)));
  }
  for (Vertex h = 0; h < hosts; ++h) {
    const std::uint32_t r = std::min<std::uint32_t>(
        static_cast<std::uint32_t>(h) / per_rack, racks - 1);
    topo.connect(h, topo.switch_vertex(tors[r]), host_link);
  }
  for (const std::uint32_t t : tors) {
    for (const std::uint32_t s : spine_ids) {
      topo.connect(topo.switch_vertex(t), topo.switch_vertex(s), trunk);
    }
  }
  topo.compute_routes();
  return topo;
}

std::uint32_t rack_count(const TopologyConfig& cfg, std::size_t hosts) {
  if (hosts == 0) return 0;
  if (!cfg.switched()) return static_cast<std::uint32_t>(hosts);
  if (cfg.preset == TopologyPreset::kRack) return 1;
  std::uint32_t racks = cfg.hosts_per_rack > 0
                            ? static_cast<std::uint32_t>(
                                  (hosts + cfg.hosts_per_rack - 1) /
                                  cfg.hosts_per_rack)
                            : cfg.racks;
  return std::max(1u, std::min<std::uint32_t>(
                          racks, static_cast<std::uint32_t>(hosts)));
}

std::vector<std::uint32_t> rack_partition_map(const TopologyConfig& cfg,
                                              std::size_t hosts) {
  std::vector<std::uint32_t> map(hosts, 0);
  if (hosts == 0) return map;
  if (!cfg.switched()) {
    for (std::size_t h = 0; h < hosts; ++h) {
      map[h] = static_cast<std::uint32_t>(h);
    }
    return map;
  }
  if (cfg.preset == TopologyPreset::kRack) return map;
  const std::uint32_t racks = rack_count(cfg, hosts);
  const std::uint32_t per_rack =
      static_cast<std::uint32_t>((hosts + racks - 1) / racks);
  for (std::size_t h = 0; h < hosts; ++h) {
    map[h] = std::min<std::uint32_t>(
        static_cast<std::uint32_t>(h / per_rack), racks - 1);
  }
  return map;
}

}  // namespace prdma::net
