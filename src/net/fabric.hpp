#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "trace/tracer.hpp"

namespace prdma::net {

/// Timing/behaviour of one directed link between two nodes.
struct LinkParams {
  sim::SimTime propagation = 1000;  ///< one-way latency (1 µs IB class)
  double bandwidth_bytes_per_s = 5e9;  ///< 40 GbE
  /// Fraction of the link consumed by background traffic [0, 1).
  /// Models the paper's Fig. 14 "busy network": less residual
  /// bandwidth plus M/M/1-style queueing delay.
  double background_load = 0.0;
  /// Log-normal sigma applied to propagation+queueing (latency tail).
  double jitter_sigma = 0.03;
  /// Per-packet drop probability (lossless IB default: 0).
  double loss_probability = 0.0;
};

/// Point-to-point switched fabric connecting RNICs.
///
/// Each directed node pair has its own serialization queue (a
/// busy-until horizon), so a large transfer delays packets behind it on
/// the same direction but not reverse traffic — matching full-duplex
/// links.
class Fabric {
 public:
  Fabric(sim::Simulator& sim, sim::Rng& rng, LinkParams defaults)
      : sim_(sim), rng_(rng), defaults_(defaults) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Registers the packet sink of a node's RNIC.
  void register_node(NodeId id, std::function<void(Packet)> deliver);

  /// Removes a node from the fabric (crashed); packets in flight to it
  /// are dropped on arrival until it re-registers.
  void unregister_node(NodeId id);

  [[nodiscard]] bool node_registered(NodeId id) const {
    return sinks_.contains(id) && sinks_.at(id) != nullptr;
  }

  /// Transmits `p`; delivery is scheduled per the link model. Returns
  /// the local "wire accepted" time (after serialization) so the
  /// sender can model TX-queue occupancy.
  sim::SimTime send(Packet p);

  /// Per-directed-pair parameter override (creates on first use).
  LinkParams& link(NodeId from, NodeId to);

  /// Applies `fn` to the default parameters and every existing link.
  void for_all_links(const std::function<void(LinkParams&)>& fn);

  [[nodiscard]] std::uint64_t packets_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t packets_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t bytes_carried() const { return bytes_; }

  /// Attaches a tracer; send() records serialization + flight spans.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct LinkState {
    LinkParams params;
    sim::SimTime busy_until = 0;
  };

  LinkState& state(NodeId from, NodeId to);

  sim::Simulator& sim_;
  sim::Rng& rng_;
  LinkParams defaults_;
  std::map<NodeId, std::function<void(Packet)>> sinks_;
  std::map<std::pair<NodeId, NodeId>, LinkState> links_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t bytes_ = 0;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace prdma::net
