#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "net/faults.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"
#include "sim/partitioned_engine.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "trace/tracer.hpp"

namespace prdma::net {

/// Why the fabric discarded a packet. Every discard — random loss,
/// fault injection, or delivery to a crashed node — goes through one
/// accounted path: a per-reason total, a per-port counter on switched
/// presets, and a kNetDrop tracer tick.
enum class DropReason : std::uint8_t {
  kLoss = 0,     ///< random per-packet loss (LinkParams / LossBurst)
  kCorrupt,      ///< corrupted frame discarded by the link-layer CRC
  kLinkDown,     ///< egress cable down per the FaultPlan
  kPartition,    ///< src and dst on opposite sides of a NetPartition
  kUnreachable,  ///< no surviving route in the current fault epoch
  kDeadNode,     ///< destination crashed/unregistered before arrival
  kCount
};

[[nodiscard]] constexpr const char* drop_reason_name(DropReason r) {
  switch (r) {
    case DropReason::kLoss: return "loss";
    case DropReason::kCorrupt: return "corrupt";
    case DropReason::kLinkDown: return "link-down";
    case DropReason::kPartition: return "partition";
    case DropReason::kUnreachable: return "unreachable";
    case DropReason::kDeadNode: return "dead-node";
    case DropReason::kCount: break;
  }
  return "?";
}

/// The packet engine of the simulated fabric.
///
/// Shape comes from a declarative net::Topology (set_topology): under
/// the degenerate point-to-point preset every directed node pair has
/// its own serialization queue (a busy-until horizon) in a flat
/// open-addressing table keyed on the packed 64-bit (from,to) id —
/// state() is the per-packet hot path and used to walk a red-black
/// tree per send (see engine_perf's data-plane section for the pinned
/// lookup cost). Under a switched preset (rack / leaf-spine) send()
/// instead walks the precomputed ECMP route hop by hop: every directed
/// cable is a Port with its own egress queue, noise stream and
/// congestion counters, switches charge a store-and-forward latency,
/// and contention at fan-in ports (incast) shows up as queue-occupancy
/// delay — optionally surfaced as PFC pauses past a backlog threshold.
///
/// Under a multi-partition engine (bind_engine), the fabric is the
/// cross-partition boundary: a hop whose next vertex lives in another
/// partition is routed through the engine's per-edge outboxes (switch
/// forwarding runs on the deterministic owner host's shard —
/// Topology::switch_owner), link noise draws come from per-link/per-
/// port RNG streams (seeded order-independently), and the jitter
/// multiplier is clamped to >= 0.5 so every arrival respects the
/// conservative lookahead of half the minimum propagation delay.
class Fabric {
 public:
  Fabric(sim::Simulator& sim, sim::Rng& rng, LinkParams defaults)
      : sim_(sim), rng_(rng), defaults_(defaults) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Registers the packet sink of a node's RNIC together with the
  /// simulator shard its events must run on.
  void register_node(NodeId id, sim::Simulator& sim,
                     std::function<void(Packet)> deliver);
  /// Legacy two-argument form: the node runs on the fabric's own
  /// (construction) simulator.
  void register_node(NodeId id, std::function<void(Packet)> deliver) {
    register_node(id, sim_, std::move(deliver));
  }

  /// Removes a node from the fabric (crashed); packets in flight to it
  /// are discarded on arrival until it re-registers — through the
  /// accounted drop path (DropReason::kDeadNode), never silently.
  void unregister_node(NodeId id);

  [[nodiscard]] bool node_registered(NodeId id) const {
    return id < nodes_.size() && nodes_[id].sink != nullptr;
  }

  /// Installs the fabric shape for `hosts` nodes (Cluster calls this
  /// right after bind_engine, before any node registers). The
  /// point-to-point preset keeps the flat direct-link table and is
  /// byte-identical to the historical fabric; switched presets build
  /// the graph, precompute ECMP routes and materialize one Port (with
  /// its own RNG stream seeded from the bind_engine seed) per directed
  /// cable.
  void set_topology(const TopologyConfig& cfg, std::size_t hosts);

  /// Installs a deterministic fault schedule (call after set_topology,
  /// before the run starts). Link flaps and switch crashes reject
  /// packets at the affected egress for their down interval and switch
  /// routing to precomputed per-epoch ECMP failover tables; partitions
  /// block at the source egress; loss/corruption bursts raise the
  /// effective drop rates inside their window. Fault state is a pure
  /// function of simulated time — the plan schedules no events — so an
  /// active plan stays byte-identical at any engine thread count.
  void set_fault_plan(FaultPlan plan);

  [[nodiscard]] const FaultPlan& fault_plan() const { return plan_; }
  [[nodiscard]] bool fault_plan_active() const { return have_faults_; }

  [[nodiscard]] const TopologyConfig& topology_config() const {
    return topo_cfg_;
  }
  /// The installed graph (nullptr before set_topology).
  [[nodiscard]] const Topology* topology() const { return topo_.get(); }
  /// True when send() walks switch routes instead of direct links.
  [[nodiscard]] bool routed() const {
    return topo_ != nullptr && topo_->switched();
  }

  /// Transmits `p`; delivery is scheduled per the link model (direct
  /// link or multi-hop route). Returns the local "wire accepted" time
  /// (after first-hop serialization) so the sender can model TX-queue
  /// occupancy.
  sim::SimTime send(Packet p);

  /// Per-directed-pair parameter override of the point-to-point table
  /// (creates on first use). Under a switched topology these links are
  /// only consulted for host pairs the graph leaves disconnected.
  LinkParams& direct_link(NodeId from, NodeId to);

  /// Minimum one-way propagation over every cable whose traversal can
  /// cross an engine-partition boundary — the basis of the per-rack
  /// conservative lookahead (DESIGN.md §7.7). A routed port crosses
  /// when any of its successors (the destination host, or the ports
  /// out of its destination switch) executes on a different partition;
  /// a direct link crosses when its endpoints' partitions differ *and*
  /// the graph leaves the pair unrouted (routed pairs never take the
  /// flat table, so its default-propagation entries must not shrink
  /// the bound below the trunks'). Returns SimTime max when no cable
  /// crosses (single partition, or not bound to an engine) — callers
  /// fall back to min_propagation().
  [[nodiscard]] sim::SimTime min_cross_partition_propagation() const;

  /// Applies `fn` (any LinkParams& callable) to the default
  /// parameters, every direct point-to-point link and every topology
  /// port — the setup-phase bulk-override hook. Template visitor: the
  /// historical const std::function& signature allocated per call.
  template <typename Fn>
  void for_each_link(Fn&& fn) {
    fn(defaults_);
    for (LinkSlot& slot : links_) {
      if (slot.key != kEmptyKey) fn(slot.state.params);
    }
    for (Port& port : ports_) fn(port.params);
  }

  /// Minimum one-way propagation over the defaults, every existing
  /// link override and every topology port — the engine's conservative
  /// lookahead is derived from it (links created after this call
  /// inherit the defaults, so the bound stays valid).
  [[nodiscard]] sim::SimTime min_propagation() const;

  [[nodiscard]] std::uint64_t packets_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t packets_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Drops attributed to one cause (sums to packets_dropped()).
  [[nodiscard]] std::uint64_t packets_dropped(DropReason r) const {
    return drops_by_reason_[static_cast<std::size_t>(r)].load(
        std::memory_order_relaxed);
  }
  /// Bytes that occupied a cable, summed over every hop a packet took
  /// (a 3-port route charges the packet three times — wire occupancy,
  /// not goodput).
  [[nodiscard]] std::uint64_t bytes_carried() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  /// Switch traversals executed (0 under point-to-point).
  [[nodiscard]] std::uint64_t switch_hops() const {
    return switch_hops_.load(std::memory_order_relaxed);
  }

  // ---- per-port congestion introspection (switched presets) ----

  struct PortStats {
    Vertex from = 0;
    Vertex to = 0;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    /// Egress-queue wait behind earlier packets, total / worst single.
    sim::SimTime queue_ns_total = 0;
    sim::SimTime queue_ns_peak = 0;
    std::uint64_t pfc_events = 0;
    sim::SimTime pfc_pause_ns = 0;
    /// Packets discarded at this egress, any reason / CRC discards.
    std::uint64_t drops = 0;
    std::uint64_t corrupt_drops = 0;
  };

  [[nodiscard]] std::size_t port_count() const { return ports_.size(); }
  /// Snapshot of port `i` (indexes match Topology edge ids). Only
  /// meaningful between runs — port counters are single-writer by the
  /// owner shard during a partitioned run.
  [[nodiscard]] PortStats port_stats(std::size_t i) const;
  /// Worst single egress-queue wait over all ports.
  [[nodiscard]] sim::SimTime max_port_queue_ns() const;
  /// PFC pauses recorded over all ports (0 unless cfg.pfc).
  [[nodiscard]] std::uint64_t pfc_pauses() const;
  [[nodiscard]] sim::SimTime pfc_pause_ns_total() const;

  /// Attaches the default tracer; send() records serialization +
  /// flight spans on the source node's track, and switch hops record
  /// kNetSwitchHop spans / kNetPortQueue gauges on the owner's tracer.
  void set_tracer(trace::Tracer* tracer) {
    tracer_ = tracer;
    for (auto& ctx : nodes_) {
      if (ctx.tracer == nullptr) ctx.tracer = tracer;
    }
  }

  /// Per-node tracer override: spans for packets *sent by* `id` (and
  /// for switches owned by `id`) are recorded here (each partition
  /// records into its own shard tracer).
  void set_node_tracer(NodeId id, trace::Tracer* tracer) {
    ctx(id).tracer = tracer;
  }

  /// Routes cross-partition sends through `engine` and switches link
  /// noise to per-link RNG streams derived from `seed`. Call before
  /// any link state exists (Cluster construction). On a multi-partition
  /// engine this also freezes the link table against insertion during
  /// run(): every directed pair is pre-created here and at each
  /// register_node(), and state() throws if a worker-thread send would
  /// insert (worker threads probe the open-addressing table
  /// concurrently, so it must not grow or gain slots mid-run).
  void bind_engine(sim::PartitionedEngine* engine, std::uint64_t seed);

 private:
  struct LinkState {
    LinkParams params;
    sim::SimTime busy_until = 0;
    /// Partitioned runs only: this link's private noise stream.
    std::unique_ptr<sim::Rng> rng;
    std::uint64_t drops = 0;
  };

  struct NodeCtx {
    sim::Simulator* sim = nullptr;
    std::function<void(Packet)> sink;
    trace::Tracer* tracer = nullptr;
    std::size_t partition = 0;
  };

  /// One directed cable of a switched topology. All mutable state is
  /// single-writer: forwarding out of a vertex always executes on the
  /// owner host's shard, so no atomics on the per-hop path.
  struct Port {
    LinkParams params;
    Vertex from = 0;
    Vertex to = 0;
    /// Host whose shard runs this port's egress (the vertex itself
    /// for host ports, Topology::switch_owner for switch ports).
    NodeId owner = 0;
    std::size_t partition = 0;
    sim::Simulator* sim = nullptr;
    sim::SimTime busy_until = 0;
    std::unique_ptr<sim::Rng> rng;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    sim::SimTime queue_ns_total = 0;
    sim::SimTime queue_ns_peak = 0;
    std::uint64_t pfc_events = 0;
    sim::SimTime pfc_pause_ns = 0;
    std::uint64_t drops = 0;
    std::uint64_t corrupt_drops = 0;
  };

  /// Sorted disjoint [down, up) spans during which one cable (or one
  /// direct pair) rejects packets at its egress.
  struct DownSpans {
    std::vector<std::pair<sim::SimTime, sim::SimTime>> spans;
    [[nodiscard]] bool down_at(sim::SimTime t) const {
      for (const auto& [lo, hi] : spans) {
        if (t < lo) return false;
        if (t < hi) return true;
      }
      return false;
    }
  };

  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  static std::uint64_t pack(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }
  static std::size_t hash_key(std::uint64_t key) {
    // splitmix64 finalizer — avalanches the packed id so linear
    // probing stays short for clustered node ids.
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ULL;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebULL;
    key ^= key >> 31;
    return static_cast<std::size_t>(key);
  }

  LinkState& state(NodeId from, NodeId to);
  void grow_links();
  void precreate_links(NodeId id);
  NodeCtx& ctx(NodeId id);
  sim::SimTime send_direct(Packet p);

  // ---- fault-plan queries (pure functions of simulated time) ----
  void count_drop(DropReason r, sim::SimTime t, NodeId track,
                  trace::Tracer* tracer);
  [[nodiscard]] bool edge_is_down(std::uint32_t e, sim::SimTime t) const {
    return e < edge_down_.size() && edge_down_[e].down_at(t);
  }
  [[nodiscard]] bool direct_is_down(NodeId from, NodeId to,
                                    sim::SimTime t) const;
  [[nodiscard]] bool partition_blocked(NodeId src, NodeId dst,
                                       sim::SimTime t) const;
  /// Effective loss/corruption rates at `t`: the link's own loss raised
  /// to any active burst's.
  void burst_rates(sim::SimTime t, double& loss, double& corrupt) const;
  /// The route of (from, to) in the fault epoch containing `t` — the
  /// base table outside fault epochs, a precomputed failover table
  /// inside one. Empty when the pair is unreachable in that epoch.
  [[nodiscard]] const Route& route_at(NodeId from, NodeId to,
                                      sim::SimTime t) const;
  /// Enqueues `p` on route hop `hop`, entering the port at `t_in`
  /// (switch hops add the store-and-forward latency first). Returns
  /// the port's busy-until after this packet serializes.
  sim::SimTime hop_transmit(Packet p, const Route& route, std::size_t hop,
                            sim::SimTime t_in);

  struct LinkSlot {
    std::uint64_t key = kEmptyKey;
    LinkState state;
  };

  sim::Simulator& sim_;
  sim::Rng& rng_;
  LinkParams defaults_;
  std::vector<NodeCtx> nodes_;  ///< indexed by NodeId
  std::vector<LinkSlot> links_;  ///< open addressing, power-of-two size
  std::size_t link_count_ = 0;
  TopologyConfig topo_cfg_;
  std::unique_ptr<Topology> topo_;
  std::vector<Port> ports_;  ///< indexed by Topology edge id
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> switch_hops_{0};
  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(DropReason::kCount)>
      drops_by_reason_{};
  FaultPlan plan_;
  bool have_faults_ = false;
  std::vector<DownSpans> edge_down_;  ///< per topology edge id
  /// Direct pairs named by host<->host flaps, keyed on pack(from, to).
  std::vector<std::pair<std::uint64_t, DownSpans>> direct_down_;
  /// Fault epochs: route table i applies in [epoch_starts_[i],
  /// epoch_starts_[i+1]). An empty inner table means "use the base
  /// routes". Built once by set_fault_plan, immutable during the run —
  /// hop lambdas hold pointers into these tables.
  std::vector<sim::SimTime> epoch_starts_;
  std::vector<std::vector<Route>> epoch_routes_;
  trace::Tracer* tracer_ = nullptr;
  sim::PartitionedEngine* engine_ = nullptr;
  std::uint64_t link_seed_ = 0;
  bool partitioned_ = false;
};

}  // namespace prdma::net
