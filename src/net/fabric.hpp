#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/partitioned_engine.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "trace/tracer.hpp"

namespace prdma::net {

/// Timing/behaviour of one directed link between two nodes.
struct LinkParams {
  sim::SimTime propagation = 1000;  ///< one-way latency (1 µs IB class)
  double bandwidth_bytes_per_s = 5e9;  ///< 40 GbE
  /// Fraction of the link consumed by background traffic [0, 1).
  /// Models the paper's Fig. 14 "busy network": less residual
  /// bandwidth plus M/M/1-style queueing delay.
  double background_load = 0.0;
  /// Log-normal sigma applied to propagation+queueing (latency tail).
  double jitter_sigma = 0.03;
  /// Per-packet drop probability (lossless IB default: 0).
  double loss_probability = 0.0;
};

/// Point-to-point switched fabric connecting RNICs.
///
/// Each directed node pair has its own serialization queue (a
/// busy-until horizon), so a large transfer delays packets behind it on
/// the same direction but not reverse traffic — matching full-duplex
/// links.
///
/// Link state lives in a flat open-addressing table keyed on the
/// packed 64-bit (from,to) id: state() is the per-packet hot path and
/// used to walk a red-black tree per send (see engine_perf's
/// data-plane section for the pinned lookup cost).
///
/// Under a multi-partition engine (bind_engine), the fabric is the
/// cross-partition boundary: a send whose destination lives in another
/// partition is routed through the engine's per-edge outboxes, link
/// noise draws come from per-link RNG streams (seeded order-
/// independently from (seed, from, to)), and the jitter multiplier is
/// clamped to >= 0.5 so every arrival respects the conservative
/// lookahead of half the propagation delay.
class Fabric {
 public:
  Fabric(sim::Simulator& sim, sim::Rng& rng, LinkParams defaults)
      : sim_(sim), rng_(rng), defaults_(defaults) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Registers the packet sink of a node's RNIC together with the
  /// simulator shard its events must run on.
  void register_node(NodeId id, sim::Simulator& sim,
                     std::function<void(Packet)> deliver);
  /// Legacy two-argument form: the node runs on the fabric's own
  /// (construction) simulator.
  void register_node(NodeId id, std::function<void(Packet)> deliver) {
    register_node(id, sim_, std::move(deliver));
  }

  /// Removes a node from the fabric (crashed); packets in flight to it
  /// are dropped on arrival until it re-registers.
  void unregister_node(NodeId id);

  [[nodiscard]] bool node_registered(NodeId id) const {
    return id < nodes_.size() && nodes_[id].sink != nullptr;
  }

  /// Transmits `p`; delivery is scheduled per the link model. Returns
  /// the local "wire accepted" time (after serialization) so the
  /// sender can model TX-queue occupancy.
  sim::SimTime send(Packet p);

  /// Per-directed-pair parameter override (creates on first use).
  LinkParams& link(NodeId from, NodeId to);

  /// Applies `fn` to the default parameters and every existing link.
  void for_all_links(const std::function<void(LinkParams&)>& fn);

  /// Minimum one-way propagation over the defaults and every existing
  /// link override — the engine's conservative lookahead is derived
  /// from it (links created after this call inherit the defaults, so
  /// the bound stays valid).
  [[nodiscard]] sim::SimTime min_propagation() const;

  [[nodiscard]] std::uint64_t packets_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t packets_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_carried() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// Attaches the default tracer; send() records serialization +
  /// flight spans on the source node's track.
  void set_tracer(trace::Tracer* tracer) {
    tracer_ = tracer;
    for (auto& ctx : nodes_) {
      if (ctx.tracer == nullptr) ctx.tracer = tracer;
    }
  }

  /// Per-node tracer override: spans for packets *sent by* `id` are
  /// recorded here (each partition records into its own shard tracer).
  void set_node_tracer(NodeId id, trace::Tracer* tracer) {
    ctx(id).tracer = tracer;
  }

  /// Routes cross-partition sends through `engine` and switches link
  /// noise to per-link RNG streams derived from `seed`. Call before
  /// any link state exists (Cluster construction). On a multi-partition
  /// engine this also freezes the link table against insertion during
  /// run(): every directed pair is pre-created here and at each
  /// register_node(), and state() throws if a worker-thread send would
  /// insert (worker threads probe the open-addressing table
  /// concurrently, so it must not grow or gain slots mid-run).
  void bind_engine(sim::PartitionedEngine* engine, std::uint64_t seed);

 private:
  struct LinkState {
    LinkParams params;
    sim::SimTime busy_until = 0;
    /// Partitioned runs only: this link's private noise stream.
    std::unique_ptr<sim::Rng> rng;
  };

  struct NodeCtx {
    sim::Simulator* sim = nullptr;
    std::function<void(Packet)> sink;
    trace::Tracer* tracer = nullptr;
    std::size_t partition = 0;
  };

  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  static std::uint64_t pack(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }
  static std::size_t hash_key(std::uint64_t key) {
    // splitmix64 finalizer — avalanches the packed id so linear
    // probing stays short for clustered node ids.
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ULL;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebULL;
    key ^= key >> 31;
    return static_cast<std::size_t>(key);
  }

  LinkState& state(NodeId from, NodeId to);
  void grow_links();
  void precreate_links(NodeId id);
  NodeCtx& ctx(NodeId id);

  struct LinkSlot {
    std::uint64_t key = kEmptyKey;
    LinkState state;
  };

  sim::Simulator& sim_;
  sim::Rng& rng_;
  LinkParams defaults_;
  std::vector<NodeCtx> nodes_;  ///< indexed by NodeId
  std::vector<LinkSlot> links_;  ///< open addressing, power-of-two size
  std::size_t link_count_ = 0;
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> bytes_{0};
  trace::Tracer* tracer_ = nullptr;
  sim::PartitionedEngine* engine_ = nullptr;
  std::uint64_t link_seed_ = 0;
  bool partitioned_ = false;
};

}  // namespace prdma::net
