#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/route.hpp"
#include "sim/time.hpp"

namespace prdma::net {

/// Timing/behaviour of one directed cable (host<->switch, switch<->
/// switch, or a direct host<->host link in the degenerate
/// point-to-point topology).
struct LinkParams {
  sim::SimTime propagation = 1000;  ///< one-way latency (1 µs IB class)
  double bandwidth_bytes_per_s = 5e9;  ///< 40 GbE
  /// Fraction of the link consumed by background traffic [0, 1).
  /// Models the paper's Fig. 14 "busy network": less residual
  /// bandwidth plus M/M/1-style queueing delay.
  double background_load = 0.0;
  /// Log-normal sigma applied to propagation+queueing (latency tail).
  double jitter_sigma = 0.03;
  /// Per-packet drop probability (lossless IB default: 0).
  double loss_probability = 0.0;
};

/// Preset fabric shapes selectable via --topology.
enum class TopologyPreset : std::uint8_t {
  /// Every host pair directly cabled — the paper's two-server testbed
  /// generalized; byte-identical to the historical flat fabric.
  kPointToPoint,
  /// One top-of-rack switch; every host hangs off it (incast at the
  /// ToR egress toward a popular server).
  kRack,
  /// Two-tier Clos: per-rack ToR switches fully meshed to a spine
  /// layer, ECMP over the spines.
  kLeafSpine,
};

[[nodiscard]] std::optional<TopologyPreset> preset_from_name(
    std::string_view name);
[[nodiscard]] std::string_view preset_name(TopologyPreset preset);

/// Declarative description of the fabric shape, carried by
/// core::ModelParams and filled from the --topology flag family.
/// Host<->ToR cables inherit the fabric's default LinkParams (so the
/// existing link knobs — background load, jitter sigma, bandwidth —
/// keep meaning the same thing under every preset); trunk cables
/// (ToR<->spine) scale them by the *_scale factors below.
struct TopologyConfig {
  TopologyPreset preset = TopologyPreset::kPointToPoint;
  /// leaf-spine: number of racks (ToR switches). Ignored when
  /// hosts_per_rack is set — the rack count then derives from it.
  std::uint32_t racks = 2;
  /// Hosts attached per ToR; 0 spreads the hosts evenly over `racks`.
  std::uint32_t hosts_per_rack = 0;
  /// leaf-spine: spine switches (ECMP width between any two racks).
  std::uint32_t spines = 2;
  /// Store-and-forward latency charged per switch traversal (ns).
  sim::SimTime switch_latency = 300;
  /// Trunk (ToR<->spine) bandwidth as a multiple of the host link —
  /// oversubscription control: hosts_per_rack / (spines * scale) : 1.
  double trunk_bw_scale = 4.0;
  /// Trunk propagation as a multiple of the host link (longer spine
  /// runs; < 1 shrinks the fabric-wide conservative lookahead).
  double trunk_prop_scale = 1.0;
  /// Priority-flow-control pause modeling at congested egress ports:
  /// once a port's backlog exceeds pfc_threshold bytes of occupancy,
  /// the excess wait is charged as an explicit pause (counted per
  /// port) instead of silently riding the queue.
  bool pfc = false;
  std::uint64_t pfc_threshold = 64 * 1024;

  /// True when packets traverse switches (rack / leaf-spine); the
  /// point-to-point preset keeps the flat direct-link fast path.
  [[nodiscard]] bool switched() const {
    return preset != TopologyPreset::kPointToPoint;
  }
};

/// The fabric graph: hosts, switches and the directed cables between
/// them, plus the precomputed shortest-path ECMP routes the packet
/// engine walks. Built once (single-threaded, before Cluster::run);
/// immutable afterwards, so every query is safe from any engine shard.
class Topology {
 public:
  struct Edge {
    Vertex from = 0;
    Vertex to = 0;
    LinkParams params;
  };

  explicit Topology(std::size_t hosts) : hosts_(hosts), adj_(hosts) {}

  /// Declares a switch; returns its index (vertex = host_count + s).
  std::uint32_t add_switch(std::string name);

  /// Declares a full-duplex cable between two vertices as a pair of
  /// directed edges with independent parameters (and egress queues).
  /// Returns the id of the a->b edge; b->a is the next id.
  std::uint32_t connect(Vertex a, Vertex b, const LinkParams& ab,
                        const LinkParams& ba);
  std::uint32_t connect(Vertex a, Vertex b, const LinkParams& both) {
    return connect(a, b, both, both);
  }

  /// Precomputes every host-pair route: BFS shortest-path distances
  /// per destination, then a hop-by-hop walk that picks among
  /// equal-cost next hops with ecmp_hash(src, dst, vertex) — flows
  /// stay path-pinned and the table is identical at any thread count.
  /// Also resolves each switch's owner host (see switch_owner).
  void compute_routes();

  [[nodiscard]] std::size_t host_count() const { return hosts_; }
  [[nodiscard]] std::size_t switch_count() const {
    return switch_names_.size();
  }
  [[nodiscard]] bool switched() const { return !switch_names_.empty(); }
  [[nodiscard]] std::size_t vertex_count() const {
    return hosts_ + switch_names_.size();
  }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] const Edge& edge(std::uint32_t id) const { return edges_[id]; }
  [[nodiscard]] Vertex switch_vertex(std::uint32_t s) const {
    return static_cast<Vertex>(hosts_ + s);
  }
  [[nodiscard]] bool is_switch(Vertex v) const { return v >= hosts_; }
  [[nodiscard]] const std::string& switch_name(std::uint32_t s) const {
    return switch_names_[s];
  }

  /// The host whose partition/shard executes forwarding events of
  /// switch `s` under a partitioned engine: among the hosts at minimal
  /// hop distance from the switch, the (s mod count)-th smallest id —
  /// deterministic, and spreads spine switches over the racks instead
  /// of serializing the whole spine layer on one shard.
  [[nodiscard]] NodeId switch_owner(std::uint32_t s) const {
    return owners_[s];
  }

  [[nodiscard]] bool routes_computed() const { return !routes_.empty(); }
  /// The precomputed path from host `from` to host `to` (empty when
  /// from == to or the pair is disconnected).
  [[nodiscard]] const Route& route(NodeId from, NodeId to) const {
    return routes_[static_cast<std::size_t>(from) * hosts_ + to];
  }

  /// The full host-major route table recomputed with the cables in
  /// `edge_down` (indexed by edge id, set pairwise — a cable is down in
  /// both directions) excluded: the deterministic ECMP failover table
  /// of a FaultPlan epoch. Same BFS + flow hash as compute_routes, so
  /// surviving-path choice is a pure function of the graph and mask;
  /// pairs with no surviving path get an empty route (the fabric turns
  /// those into accounted unreachable drops and the RC reliability
  /// layer keeps retrying until the fault heals).
  [[nodiscard]] std::vector<Route> compute_routes_masked(
      const std::vector<bool>& edge_down) const;

  /// Minimum one-way propagation over every cable — the conservative
  /// lookahead of a partitioned run is half of this. SimTime max when
  /// the graph has no edges.
  [[nodiscard]] sim::SimTime min_propagation() const;
  /// Longest precomputed route, in ports (0 before compute_routes).
  [[nodiscard]] std::size_t max_route_hops() const;

 private:
  /// Hop distance from every vertex to `dst` by reverse BFS, skipping
  /// edges marked in `edge_down` (nullptr = no mask).
  [[nodiscard]] std::vector<std::uint32_t> distances_to(
      Vertex dst, const std::vector<bool>* edge_down) const;
  void fill_routes(const std::vector<bool>* edge_down,
                   std::vector<Route>& out) const;

  std::size_t hosts_;
  std::vector<std::string> switch_names_;
  std::vector<NodeId> owners_;  ///< per switch, filled by compute_routes
  std::vector<Edge> edges_;
  std::vector<std::vector<std::uint32_t>> adj_;  ///< out-edge ids per vertex
  std::vector<Route> routes_;  ///< host-major [from * hosts_ + to]
};

/// Materializes a preset for `hosts` nodes. `host_link` parameterizes
/// every host<->switch cable; trunks scale it per the config. The
/// point-to-point preset returns a switchless graph (the fabric keeps
/// its flat direct-link table, byte-identical to the historical path).
[[nodiscard]] Topology build_topology(const TopologyConfig& cfg,
                                      std::size_t hosts,
                                      const LinkParams& host_link);

/// How many racks the preset materializes for `hosts` hosts — the same
/// derivation build_topology uses (hosts_per_rack wins over racks,
/// clamped to [1, hosts]). Point-to-point has no switches, so every
/// host is its own "rack" (per-rack partitioning degenerates to
/// per-node); the single-ToR rack preset is one rack.
[[nodiscard]] std::uint32_t rack_count(const TopologyConfig& cfg,
                                       std::size_t hosts);

/// Per-host rack index, mirroring build_topology's id-order striping
/// exactly (host h -> min(h / per_rack, racks - 1) under leaf-spine).
/// This is the engine partition map for Partitioning::kPerRack; switch
/// forwarding events already run on Topology::switch_owner's shard, so
/// a spine lands in the partition of its deterministic owner host.
[[nodiscard]] std::vector<std::uint32_t> rack_partition_map(
    const TopologyConfig& cfg, std::size_t hosts);

}  // namespace prdma::net
