#include "net/faults.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace prdma::net {

void FaultPlan::validate() const {
  for (const LinkFlap& f : link_flaps) {
    if (f.down_at >= f.up_at) {
      throw std::invalid_argument("fault plan: link flap never heals");
    }
    if (f.a == f.b) {
      throw std::invalid_argument("fault plan: link flap on a self-pair");
    }
  }
  for (const SwitchFault& f : switch_faults) {
    if (f.down_at >= f.up_at) {
      throw std::invalid_argument("fault plan: switch fault never heals");
    }
  }
  for (const LossBurst& b : bursts) {
    if (b.begin >= b.end) {
      throw std::invalid_argument("fault plan: loss burst never ends");
    }
    if (b.loss < 0.0 || b.loss > 1.0 || b.corrupt < 0.0 || b.corrupt > 1.0) {
      throw std::invalid_argument("fault plan: burst probability out of [0,1]");
    }
  }
  for (const NetPartition& p : partitions) {
    if (p.begin >= p.end) {
      throw std::invalid_argument("fault plan: partition never heals");
    }
    if (p.island.empty()) {
      throw std::invalid_argument("fault plan: partition with an empty island");
    }
  }
}

FaultPlan random_fault_plan(const Topology& topo, std::uint64_t seed,
                            sim::SimTime horizon) {
  FaultPlan plan;
  if (horizon < 8 || topo.host_count() < 2) return plan;
  sim::Rng rng(seed ^ 0xA24BAED4963EE407ULL);

  // An interval wholly inside [0, horizon): the plan always heals, so
  // RC retransmission chains drain and the run terminates.
  const auto interval = [&](sim::SimTime& down, sim::SimTime& up) {
    down = rng.uniform(1, horizon / 2);
    up = down + std::max<sim::SimTime>(
                    1, rng.uniform(horizon / 8, (horizon - down) - 1));
    up = std::min<sim::SimTime>(up, horizon - 1);
  };

  const std::size_t flaps = 1 + rng.uniform(0, 1);
  for (std::size_t i = 0; i < flaps; ++i) {
    LinkFlap f;
    if (topo.edge_count() > 0) {
      const Topology::Edge& e =
          topo.edge(static_cast<std::uint32_t>(
              rng.uniform(0, topo.edge_count() - 1)));
      f.a = e.from;
      f.b = e.to;
    } else {
      f.a = static_cast<Vertex>(rng.uniform(0, topo.host_count() - 1));
      f.b = static_cast<Vertex>(rng.uniform(0, topo.host_count() - 1));
      if (f.b == f.a) f.b = (f.a + 1) % static_cast<Vertex>(topo.host_count());
    }
    interval(f.down_at, f.up_at);
    plan.link_flaps.push_back(f);
  }

  if (topo.switch_count() > 1) {
    // Keep one switch alive so routed pairs stay reachable in most
    // epochs; a single-ToR rack losing its only switch is pure stall.
    SwitchFault f;
    f.switch_index = static_cast<std::uint32_t>(
        rng.uniform(0, topo.switch_count() - 1));
    interval(f.down_at, f.up_at);
    plan.switch_faults.push_back(f);
  }

  LossBurst burst;
  interval(burst.begin, burst.end);
  burst.loss = 0.05 + 0.1 * rng.uniform01();
  burst.corrupt = 0.01 * rng.uniform01();
  plan.bursts.push_back(burst);

  plan.validate();
  return plan;
}

}  // namespace prdma::net
