#include "fault/experiment.hpp"

#include <algorithm>
#include <memory>

#include "bench_util/micro.hpp"
#include "check/oracle.hpp"
#include "core/durable_rpc.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace prdma::fault {

using core::RpcOp;
using core::RpcRequest;
using core::RpcResult;
using sim::SimTime;
using sim::Task;

namespace {

/// Shared state between the drivers and the crash orchestrator.
struct Harness {
  std::uint64_t remaining = 0;
  std::uint64_t completed = 0;
  std::uint64_t resends = 0;
  std::vector<std::uint64_t> crash_at;  ///< completed-count trigger points
  std::size_t next_crash = 0;
  bool crash_requested = false;
  sim::Event* up = nullptr;
  sim::Event* crash_trigger = nullptr;
  std::uint64_t durable_watermark = 0;  ///< snapshot at last recovery
  bool durable = false;
  sim::Semaphore* retry_mutex = nullptr;
  /// Baseline per-retry wait. Single source of truth: read out of
  /// params.rnic.retransmit_interval, the same QP timer the transport's
  /// own go-back-N machinery runs on.
  sim::SimTime retry_delay = 0;
};

Task<> driver(core::RpcClient& client, Harness& h, FailureRunConfig cfg,
              std::uint64_t object_count, sim::Rng rng, sim::WaitGroup& wg,
              sim::Simulator& sim) {
  sim::ZipfianGenerator zipf(object_count, 0.99);
  for (;;) {
    if (h.remaining == 0) break;
    --h.remaining;

    RpcRequest req;
    req.obj_id = zipf.next(rng);
    req.op = rng.bernoulli(cfg.read_ratio) ? RpcOp::kRead : RpcOp::kWrite;
    req.len = cfg.value_size;

    RpcResult res = co_await client.call(req);
    while (!res.ok) {
      // The server died under this request. Wait out the outage…
      if (!h.up->is_set()) {
        (void)co_await h.up->wait();
      }
      // …then recover with the system's semantics.
      if (h.durable && req.op == RpcOp::kWrite &&
          res.tag != 0 && res.tag <= h.durable_watermark) {
        // The entry reached the redo log before the crash: the server
        // replayed it during recovery — nothing to re-send (§4.2).
        res.ok = true;
        break;
      }
      ++h.resends;
      if (!h.durable) {
        // Traditional RC stack: each lost work request surfaces on its
        // own retransmission-timer expiry; the client then re-sends
        // request AND data (§5.4: 100 ms interval — the QP timer).
        co_await h.retry_mutex->acquire();
        co_await sim::delay(sim, h.retry_delay);
        res = co_await client.call(req);
        h.retry_mutex->release();
      } else {
        // Durable RPCs: the log watermark told the client exactly what
        // was lost; re-issue immediately.
        res = co_await client.call(req);
      }
    }

    ++h.completed;
    if (h.next_crash < h.crash_at.size() &&
        h.completed >= h.crash_at[h.next_crash] && !h.crash_requested) {
      h.crash_requested = true;
      ++h.next_crash;
      h.crash_trigger->set();
    }
  }
  wg.done();
}

Task<> orchestrator(core::Cluster& cluster, core::RpcServer& server,
                    std::vector<core::RpcClient*> clients, Harness& h,
                    FailureRunConfig cfg, FailureRunResult& out,
                    check::DurabilityOracle* oracle) {
  auto* durable_server = dynamic_cast<core::DurableRpcServer*>(&server);
  for (std::uint32_t i = 0; i < cfg.crashes; ++i) {
    if (!co_await h.crash_trigger->wait()) break;
    h.crash_trigger->reset();
    h.up->reset();

    // Power failure at the server: the simulator's crash hook (wired
    // up in run_with_failures) runs the whole teardown — software
    // stop, hardware state loss, durability audit.
    cluster.sim().trigger_crash();
    ++out.crashes;

    // What made it into the redo log before the lights went out?
    h.durable_watermark =
        durable_server != nullptr ? durable_server->durable_watermark(0) : 0;

    // Unikernel restart (§5.4: ~300 ms), then recovery + reconnect.
    co_await sim::delay(cluster.sim(), cfg.restart_delay);
    cluster.node(0).restart();
    co_await server.recover_and_restart();
    for (auto* c : clients) server.reconnect_client(*c);
    if (oracle != nullptr) oracle->after_recovery();

    h.crash_requested = false;
    h.up->set();
  }
}

}  // namespace

FailureRunResult run_with_failures(rpcs::System system,
                                   const FailureRunConfig& cfg) {
  bench::MicroConfig mc;
  mc.object_size = cfg.value_size;
  mc.objects = 4096;
  mc.seed = cfg.seed;
  mc.heavy_load = cfg.heavy_processing;
  // Crash injection requires the full content plane (see Node::
  // attach_crash_hook).
  mc.content_mode = mem::ContentMode::kFull;
  mc.topology = cfg.topology;
  core::ModelParams params = bench::params_for(mc);
  params.log_slots = std::max(cfg.window * 2, 8u);
  params.flow_threshold = std::max(cfg.window, 4u);
  params.rnic.retransmit_interval = cfg.retransmit_interval;
  // Fig. 12 models the paper's fixed 100 ms timer (§5.4): every retry
  // round costs exactly one interval, so pin the QP backoff off.
  params.rnic.retransmit_backoff = 1.0;

  core::Cluster cluster(params, 2);
  const std::size_t client_nodes[] = {1};
  auto dep = rpcs::make_deployment(cluster, system, 0, client_nodes, params);

  // Audit durable systems with the durability oracle (a pure observer:
  // it charges no simulated time, so results stay bit-identical).
  std::unique_ptr<check::DurabilityOracle> oracle;
  if (auto* ds = dynamic_cast<core::DurableRpcServer*>(dep.server.get())) {
    oracle = std::make_unique<check::DurabilityOracle>(*ds);
    for (auto& c : dep.clients) {
      oracle->attach_client(dynamic_cast<core::DurableRpcClient&>(*c));
    }
  }

  // The full power-failure sequence, runnable at any simulated instant
  // via Simulator::trigger_crash().
  cluster.sim().add_crash_hook([&] {
    dep.server->on_crash();
    cluster.node(0).crash();
    for (auto& c : dep.clients) c->abort_pending();
    if (oracle) oracle->on_crash();
  });

  FailureRunResult result;
  sim::Event up(cluster.sim());
  up.set();
  sim::Event crash_trigger(cluster.sim());
  sim::Semaphore retry_mutex(cluster.sim(), 1);

  Harness h;
  h.remaining = cfg.ops;
  h.up = &up;
  h.crash_trigger = &crash_trigger;
  h.durable = rpcs::info_of(system).durable;
  h.retry_mutex = &retry_mutex;
  h.retry_delay = params.rnic.retransmit_interval;
  for (std::uint32_t i = 1; i <= cfg.crashes; ++i) {
    h.crash_at.push_back(cfg.ops * i / (cfg.crashes + 1));
  }

  sim::WaitGroup wg(cluster.sim());
  wg.add(cfg.window);
  for (std::uint32_t d = 0; d < cfg.window; ++d) {
    sim::spawn(driver(*dep.clients[0], h, cfg, params.object_count,
                      sim::Rng(cfg.seed * 31 + d), wg, cluster.sim()));
  }
  sim::spawn(orchestrator(cluster, *dep.server, {dep.clients[0].get()}, h,
                          cfg, result, oracle.get()));

  bool finished = false;
  SimTime end = 0;
  sim::spawn([](sim::WaitGroup& w, bool& f, SimTime& t,
                sim::Simulator& s) -> Task<> {
    co_await w.wait();
    f = true;
    t = s.now();
  }(wg, finished, end, cluster.sim()));

  cluster.sim().run();
  result.total = finished ? end : cluster.sim().now();
  result.ops_completed = h.completed;
  result.resends = h.resends;
  result.replayed = dep.server->stats().recoveries;
  result.oracle_violations = oracle ? oracle->violations().size() : 0;
  return result;
}

std::vector<AvailabilityPoint> compose_figure12(
    double read_ratio, const std::vector<double>& availabilities,
    std::uint64_t seed, std::uint64_t ops_per_measurement,
    const net::TopologyConfig& topology) {
  // Measure per-op time and per-crash overhead for both systems with
  // the real crash/recovery machinery, then compose paper-scale totals
  // (1e9 RPCs; simulating that directly is out of reach).
  struct Measured {
    double t_op_s;
    double o_crash_s;
  };
  const auto measure = [&](rpcs::System sys) {
    FailureRunConfig base;
    base.read_ratio = read_ratio;
    base.ops = ops_per_measurement;
    base.crashes = 0;
    base.seed = seed;
    base.topology = topology;
    const auto clean = run_with_failures(sys, base);

    FailureRunConfig crashy = base;
    crashy.crashes = 2;
    const auto faulty = run_with_failures(sys, crashy);

    Measured m;
    m.t_op_s = sim::to_s(clean.total) / static_cast<double>(clean.ops_completed);
    m.o_crash_s =
        (sim::to_s(faulty.total) - sim::to_s(clean.total)) /
        static_cast<double>(std::max(1u, faulty.crashes));
    m.o_crash_s = std::max(m.o_crash_s, 0.0);
    return m;
  };

  const Measured durable = measure(rpcs::System::kWFlushRpc);
  const Measured traditional = measure(rpcs::System::kFaRM);

  // Per-RPC failure model (§5.4: "we simulate unexpected failures for
  // the unikernels with different probabilities of server
  // availability"): an operation encounters a server failure with
  // probability (1 - a) and then pays the measured per-crash
  // client-visible overhead of its system.
  std::vector<AvailabilityPoint> out;
  for (const double a : availabilities) {
    const double p = 1.0 - a;
    const double t_d = durable.t_op_s + p * durable.o_crash_s;
    const double t_t = traditional.t_op_s + p * traditional.o_crash_s;
    out.push_back({a, t_d / t_t});
  }
  return out;
}

}  // namespace prdma::fault
