#pragma once

#include <cstdint>
#include <vector>

#include "rpcs/registry.hpp"
#include "sim/time.hpp"

namespace prdma::fault {

/// One crash/restart measurement (§5.4).
///
/// The driver keeps `window` requests outstanding (pipelined client),
/// injects `crashes` full power failures at the server (crash → 300 ms
/// unikernel restart → recovery → reconnect) and re-drives every
/// operation that did not complete, with the recovery semantics of the
/// system under test:
///
///  * durable RPCs: committed log entries replay server-side; writes
///    whose persist-ACK arrived need nothing from the client, and the
///    durable watermark tells the client exactly which in-flight
///    writes survived (no data re-send). Reads are re-issued directly.
///  * traditional RPCs: the server restarts empty; the client's RC
///    stack discovers each lost work request by its retransmission
///    timer (100 ms, §5.4) and re-sends request *and data*, one
///    timeout cycle after another.
struct FailureRunConfig {
  double read_ratio = 0.0;
  std::uint64_t ops = 1200;
  std::uint32_t crashes = 2;
  std::uint32_t window = 8;            ///< outstanding requests
  std::uint32_t value_size = 4096;
  std::uint64_t seed = 1;
  sim::SimTime restart_delay = 300 * sim::kMillisecond;  ///< unikernel boot
  sim::SimTime retransmit_interval = 100 * sim::kMillisecond;
  bool heavy_processing = true;        ///< 100 µs per request at the server
  /// Fabric shape (default point-to-point; --topology). Crash hooks
  /// pin a single engine partition, which any preset satisfies here.
  net::TopologyConfig topology;
};

struct FailureRunResult {
  sim::SimTime total = 0;
  std::uint64_t ops_completed = 0;
  std::uint64_t resends = 0;        ///< ops the client had to re-send
  std::uint64_t replayed = 0;       ///< server-side log replays (durable)
  std::uint32_t crashes = 0;
  /// Extra time attributable to failures: total minus the measured
  /// failure-free run of the same workload.
  sim::SimTime failure_overhead = 0;
  /// Durability-oracle violations across the run's crashes (durable
  /// systems only — a correct implementation reports 0; traditional
  /// baselines are not audited).
  std::uint64_t oracle_violations = 0;
};

/// Runs the crash/recovery experiment for `system` (a durable RPC or a
/// traditional baseline) and measures total completion time.
FailureRunResult run_with_failures(rpcs::System system,
                                   const FailureRunConfig& cfg);

/// Availability model of Fig. 12: converts a server-availability level
/// into a failure rate (one 300 ms outage per `uptime_per_failure`),
/// then composes paper-scale totals (1e9 RPCs) from the measured
/// per-op time and per-crash overhead.
struct AvailabilityPoint {
  double availability;        ///< e.g. 0.999
  double normalized_time;     ///< durable / traditional total time
};

std::vector<AvailabilityPoint> compose_figure12(
    double read_ratio, const std::vector<double>& availabilities,
    std::uint64_t seed, std::uint64_t ops_per_measurement = 1200,
    const net::TopologyConfig& topology = {});

}  // namespace prdma::fault
