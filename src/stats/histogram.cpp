#include "stats/histogram.hpp"

namespace prdma::stats {

void LatencyHistogram::record(std::uint64_t value) {
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  const std::size_t idx = index_for(value);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::reset() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

std::uint64_t LatencyHistogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based, at least 1.
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_) + 0.5);
  const std::uint64_t target = std::max<std::uint64_t>(1, rank);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      const auto [lo, hi] = bucket_range(i);
      const std::uint64_t mid = lo + (hi - lo) / 2;
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

}  // namespace prdma::stats
