#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

namespace prdma::stats {

/// Log-linear latency histogram (HDR-histogram style).
///
/// Values below 2^kSubBits are recorded exactly; above that each power
/// of two is split into 2^kSubBits linear sub-buckets, bounding the
/// relative quantile error at 2^-kSubBits (~1.6%). Suitable for
/// nanosecond latencies spanning nine orders of magnitude.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 6;
  static constexpr std::uint64_t kSubCount = 1ull << kSubBits;  // 64

  void record(std::uint64_t value);

  void merge(const LatencyHistogram& other);

  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }

  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Quantile in [0, 1]; e.g. percentile(0.99) is the p99 latency.
  /// Returns the representative (midpoint) value of the bucket holding
  /// the requested rank, clamped to the observed min/max.
  [[nodiscard]] std::uint64_t percentile(double q) const;

  [[nodiscard]] std::uint64_t p50() const { return percentile(0.50); }
  [[nodiscard]] std::uint64_t p95() const { return percentile(0.95); }
  [[nodiscard]] std::uint64_t p99() const { return percentile(0.99); }

  /// Maps a value to its bucket index. Exposed for tests.
  static std::size_t index_for(std::uint64_t v) {
    if (v < kSubCount) return static_cast<std::size_t>(v);
    const int msb = std::bit_width(v) - 1;  // >= kSubBits
    const int shift = msb - kSubBits;
    const std::uint64_t sub = v >> shift;  // in [kSubCount, 2*kSubCount)
    return static_cast<std::size_t>(shift) * kSubCount + sub;
  }

  /// Inclusive value range covered by bucket `idx`. Exposed for tests.
  static std::pair<std::uint64_t, std::uint64_t> bucket_range(std::size_t idx) {
    if (idx < kSubCount) return {idx, idx};
    const std::uint64_t shift = idx / kSubCount - 1;
    const std::uint64_t sub = idx - shift * kSubCount;  // in [kSubCount, 2k)
    const std::uint64_t lo = sub << shift;
    const std::uint64_t hi = lo + (1ull << shift) - 1;
    return {lo, hi};
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

}  // namespace prdma::stats
