#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace prdma::stats {

/// Streaming mean/variance accumulator (Welford's algorithm).
class Summary {
 public:
  void record(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const Summary& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double total = static_cast<double>(n_ + o.n_);
    const double d = o.mean_ - mean_;
    m2_ += o.m2_ + d * d * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / total;
    mean_ += d * static_cast<double>(o.n_) / total;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }

  [[nodiscard]] double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace prdma::stats
