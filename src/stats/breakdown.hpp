#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace prdma::stats {

/// Accumulates named latency components across many operations — used
/// to regenerate the paper's Fig. 20 (sender software / network RTT /
/// receiver software breakdown).
class SpanBreakdown {
 public:
  void add(const std::string& component, std::uint64_t ns) {
    auto& slot = components_[component];
    slot.total_ns += ns;
    ++slot.samples;
  }

  void merge(const SpanBreakdown& o) {
    for (const auto& [name, slot] : o.components_) {
      auto& mine = components_[name];
      mine.total_ns += slot.total_ns;
      mine.samples += slot.samples;
    }
  }

  /// Mean nanoseconds per *operation*, where ops is the divisor (an
  /// operation can contribute several spans of one component).
  [[nodiscard]] double mean_ns(const std::string& component,
                               std::uint64_t ops) const {
    const auto it = components_.find(component);
    if (it == components_.end() || ops == 0) return 0.0;
    return static_cast<double>(it->second.total_ns) / static_cast<double>(ops);
  }

  [[nodiscard]] std::uint64_t total_ns() const {
    std::uint64_t t = 0;
    for (const auto& [name, slot] : components_) t += slot.total_ns;
    return t;
  }

  /// Fraction of the total contributed by `component`, in [0,1].
  [[nodiscard]] double share(const std::string& component) const {
    const std::uint64_t t = total_ns();
    if (t == 0) return 0.0;
    const auto it = components_.find(component);
    if (it == components_.end()) return 0.0;
    return static_cast<double>(it->second.total_ns) / static_cast<double>(t);
  }

  [[nodiscard]] std::vector<std::string> component_names() const {
    std::vector<std::string> names;
    names.reserve(components_.size());
    for (const auto& [name, slot] : components_) names.push_back(name);
    return names;
  }

  void reset() { components_.clear(); }

 private:
  struct Slot {
    std::uint64_t total_ns = 0;
    std::uint64_t samples = 0;
  };
  std::map<std::string, Slot> components_;
};

}  // namespace prdma::stats
