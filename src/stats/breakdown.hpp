#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/component.hpp"

namespace prdma::stats {

/// Accumulates latency components across many operations — used to
/// regenerate the paper's Fig. 20 (sender software / network RTT /
/// receiver software breakdown).
///
/// Keyed by trace::ComponentId, the same interned handles the tracer
/// records spans under, so the hot path never hashes strings. The
/// string-accepting overloads are a compatibility shim (one release,
/// see DESIGN.md §7.2): they intern through the shared predefined
/// component table, falling back to per-instance dynamic ids.
class SpanBreakdown {
 public:
  using ComponentId = trace::ComponentId;

  void add(ComponentId id, std::uint64_t ns) { add_total(id, ns, 1); }
  void add(trace::Component c, std::uint64_t ns) { add(trace::to_id(c), ns); }

  /// Folds a pre-aggregated component total in (e.g. a Tracer slot).
  void add_total(ComponentId id, std::uint64_t total_ns,
                 std::uint64_t samples) {
    auto& slot = slots_[id];
    slot.total_ns += total_ns;
    slot.samples += samples;
  }

  // ---- string shim (deprecated; intern once and use ids instead) ----

  void add(const std::string& component, std::uint64_t ns) {
    add(intern(component), ns);
  }
  [[nodiscard]] double mean_ns(const std::string& component,
                               std::uint64_t ops) const {
    const auto id = find(component);
    return id ? mean_ns(*id, ops) : 0.0;
  }
  [[nodiscard]] double share(const std::string& component) const {
    const auto id = find(component);
    return id ? share(*id) : 0.0;
  }

  /// Returns the id `name` maps to in this breakdown, interning a
  /// dynamic id (first-use order) when it is not a predefined
  /// component. Deterministic per instance.
  ComponentId intern(std::string_view name) {
    if (const auto c = trace::component_from_name(name)) {
      return trace::to_id(*c);
    }
    for (std::size_t i = 0; i < dynamic_.size(); ++i) {
      if (dynamic_[i] == name) {
        return static_cast<ComponentId>(trace::kPredefinedComponents + i);
      }
    }
    dynamic_.emplace_back(name);
    return static_cast<ComponentId>(trace::kPredefinedComponents +
                                    dynamic_.size() - 1);
  }

  // ---- queries ----

  /// Mean nanoseconds per *operation*, where ops is the divisor (an
  /// operation can contribute several spans of one component).
  [[nodiscard]] double mean_ns(ComponentId id, std::uint64_t ops) const {
    const auto it = slots_.find(id);
    if (it == slots_.end() || ops == 0) return 0.0;
    return static_cast<double>(it->second.total_ns) / static_cast<double>(ops);
  }
  [[nodiscard]] double mean_ns(trace::Component c, std::uint64_t ops) const {
    return mean_ns(trace::to_id(c), ops);
  }

  [[nodiscard]] std::uint64_t total_ns() const {
    std::uint64_t t = 0;
    for (const auto& [id, slot] : slots_) t += slot.total_ns;
    return t;
  }

  [[nodiscard]] std::uint64_t samples(ComponentId id) const {
    const auto it = slots_.find(id);
    return it == slots_.end() ? 0 : it->second.samples;
  }

  /// Records folded in across every component (spans + counter samples).
  [[nodiscard]] std::uint64_t total_samples() const {
    std::uint64_t n = 0;
    for (const auto& [id, slot] : slots_) n += slot.samples;
    return n;
  }

  /// Fraction of the total contributed by `id`, in [0,1].
  [[nodiscard]] double share(ComponentId id) const {
    const std::uint64_t t = total_ns();
    if (t == 0) return 0.0;
    const auto it = slots_.find(id);
    if (it == slots_.end()) return 0.0;
    return static_cast<double>(it->second.total_ns) / static_cast<double>(t);
  }
  [[nodiscard]] double share(trace::Component c) const {
    return share(trace::to_id(c));
  }

  [[nodiscard]] std::string_view name_of(ComponentId id) const {
    if (id < trace::kPredefinedComponents) return trace::component_name(id);
    const std::size_t idx = id - trace::kPredefinedComponents;
    return idx < dynamic_.size() ? std::string_view(dynamic_[idx])
                                 : std::string_view("?");
  }

  /// Names of every populated component, sorted alphabetically (the
  /// historical std::map<string> iteration order).
  [[nodiscard]] std::vector<std::string> component_names() const {
    std::vector<std::string> names;
    names.reserve(slots_.size());
    for (const auto& [id, slot] : slots_) names.emplace_back(name_of(id));
    std::sort(names.begin(), names.end());
    return names;
  }

  void merge(const SpanBreakdown& o) {
    for (const auto& [id, slot] : o.slots_) {
      // Dynamic ids are per-instance: remap through the name so two
      // breakdowns that interned in different orders still merge right.
      const ComponentId mine =
          id < trace::kPredefinedComponents
              ? id
              : intern(std::string(o.name_of(id)));
      add_total(mine, slot.total_ns, slot.samples);
    }
  }

  void reset() {
    slots_.clear();
    dynamic_.clear();
  }

 private:
  struct Slot {
    std::uint64_t total_ns = 0;
    std::uint64_t samples = 0;
  };

  [[nodiscard]] std::optional<ComponentId> find(std::string_view name) const {
    if (const auto c = trace::component_from_name(name)) {
      return trace::to_id(*c);
    }
    for (std::size_t i = 0; i < dynamic_.size(); ++i) {
      if (dynamic_[i] == name) {
        return static_cast<ComponentId>(trace::kPredefinedComponents + i);
      }
    }
    return std::nullopt;
  }

  std::map<ComponentId, Slot> slots_;
  std::vector<std::string> dynamic_;
};

}  // namespace prdma::stats
