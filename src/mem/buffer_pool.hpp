#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/partitioned_engine.hpp"
#include "sim/simulator.hpp"
#include "trace/tracer.hpp"

namespace prdma::mem {

class BufferPool;

/// One scatter-gather extent of a payload image. `kBytes` extents are
/// real bytes inside the owning block's data area; `kShadow` extents
/// carry no bytes at all — just a length plus the deterministic
/// content generator (`seed` = the entry sequence that produced the
/// bytes, `off` = offset within that generator's stream), which is
/// everything the shadow content plane needs to track digests.
struct PayloadSeg {
  enum class Kind : std::uint8_t { kBytes, kShadow };
  Kind kind = Kind::kBytes;
  std::uint32_t len = 0;
  std::uint32_t data_off = 0;  ///< kBytes: offset into the block data area
  std::uint64_t seed = 0;      ///< kShadow: content-generator id
  std::uint64_t off = 0;       ///< kShadow: offset within the generator
};

/// Intrusively refcounted payload block: a fixed header (refcount +
/// inline segment descriptor array) followed by the data area. Blocks
/// come from a per-node BufferPool (recycled on last unref) or, for
/// the few non-pooled users, straight from the heap (pool == nullptr).
struct PayloadBuf {
  static constexpr std::uint32_t kMaxSegs = 8;

  BufferPool* pool = nullptr;     ///< null: plain heap block
  PayloadBuf* next_free = nullptr;
  /// Atomic because a packet's payload may be unreffed by the receiver
  /// node's partition worker while the owner still holds references
  /// (relaxed bumps, acq_rel on the final release — the same contract
  /// as shared_ptr's control block). Single-threaded runs pay only the
  /// uncontended lock-prefix cost.
  std::atomic<std::uint32_t> refs{0};
  std::atomic<std::uint32_t> ref_acquires{0};  ///< lifetime ref() count
  std::uint32_t size_class = 0;
  std::uint32_t data_cap = 0;
  std::uint32_t data_used = 0;
  std::uint32_t seg_count = 0;
  std::uint64_t total_len = 0;  ///< logical payload bytes across segments
  PayloadSeg segs[kMaxSegs];

  [[nodiscard]] std::byte* data() {
    return reinterpret_cast<std::byte*>(this) + sizeof(PayloadBuf);
  }
  [[nodiscard]] const std::byte* data() const {
    return reinterpret_cast<const std::byte*>(this) + sizeof(PayloadBuf);
  }

  [[nodiscard]] std::span<const std::byte> seg_bytes(const PayloadSeg& s) const {
    assert(s.kind == PayloadSeg::Kind::kBytes);
    return {data() + s.data_off, s.len};
  }

  /// Reserves `n` data bytes, extending the trailing kBytes segment or
  /// opening a new one; returns where to write them.
  std::byte* append_bytes_uninit(std::uint32_t n) {
    assert(data_used + n <= data_cap);
    std::byte* out = data() + data_used;
    if (seg_count > 0 && segs[seg_count - 1].kind == PayloadSeg::Kind::kBytes &&
        segs[seg_count - 1].data_off + segs[seg_count - 1].len == data_used) {
      segs[seg_count - 1].len += n;
    } else {
      assert(seg_count < kMaxSegs);
      segs[seg_count++] = PayloadSeg{PayloadSeg::Kind::kBytes, n, data_used, 0, 0};
    }
    data_used += n;
    total_len += n;
    return out;
  }

  void append_bytes(std::span<const std::byte> bytes) {
    std::byte* dst = append_bytes_uninit(static_cast<std::uint32_t>(bytes.size()));
    for (std::size_t i = 0; i < bytes.size(); ++i) dst[i] = bytes[i];
  }

  void append_shadow(std::uint32_t len, std::uint64_t seed, std::uint64_t off) {
    assert(seg_count < kMaxSegs);
    segs[seg_count++] = PayloadSeg{PayloadSeg::Kind::kShadow, len, 0, seed, off};
    total_len += len;
  }
};

namespace detail {
void release_payload(PayloadBuf* b);  // defined with BufferPool (below)
}

/// Shared handle to a PayloadBuf — the data plane's replacement for
/// `shared_ptr<const vector<byte>>`. Copies bump the intrusive
/// refcount (8 bytes, no control block); the last handle returns the
/// block to its pool. Lifetime rule (DESIGN.md §7.3): every hop that
/// may outlive its caller (packet in flight, retransmit queue, pending
/// DMA) holds its own PayloadRef; nobody frees bytes explicitly.
class PayloadRef {
 public:
  PayloadRef() noexcept = default;
  PayloadRef(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-*)

  /// Adopts the caller's reference (refs already counts it).
  explicit PayloadRef(PayloadBuf* adopt) noexcept : buf_(adopt) {}

  PayloadRef(const PayloadRef& o) noexcept : buf_(o.buf_) {
    if (buf_ != nullptr) {
      buf_->refs.fetch_add(1, std::memory_order_relaxed);
      buf_->ref_acquires.fetch_add(1, std::memory_order_relaxed);
    }
  }
  PayloadRef(PayloadRef&& o) noexcept : buf_(o.buf_) { o.buf_ = nullptr; }
  PayloadRef& operator=(const PayloadRef& o) noexcept {
    PayloadRef tmp(o);
    std::swap(buf_, tmp.buf_);
    return *this;
  }
  PayloadRef& operator=(PayloadRef&& o) noexcept {
    if (this != &o) {
      reset();
      buf_ = o.buf_;
      o.buf_ = nullptr;
    }
    return *this;
  }
  ~PayloadRef() { reset(); }

  void reset() noexcept {
    if (buf_ != nullptr) {
      if (buf_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        detail::release_payload(buf_);
      }
      buf_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return buf_ != nullptr;
  }
  friend bool operator==(const PayloadRef& r, std::nullptr_t) noexcept {
    return r.buf_ == nullptr;
  }
  friend bool operator!=(const PayloadRef& r, std::nullptr_t) noexcept {
    return r.buf_ != nullptr;
  }

  [[nodiscard]] PayloadBuf* buf() const noexcept { return buf_; }
  [[nodiscard]] std::uint64_t size() const noexcept {
    return buf_ != nullptr ? buf_->total_len : 0;
  }
  [[nodiscard]] std::uint32_t seg_count() const noexcept {
    return buf_ != nullptr ? buf_->seg_count : 0;
  }
  [[nodiscard]] std::span<const PayloadSeg> segs() const noexcept {
    return buf_ != nullptr ? std::span<const PayloadSeg>(buf_->segs,
                                                         buf_->seg_count)
                           : std::span<const PayloadSeg>{};
  }
  /// True when the whole payload is one contiguous bytes extent.
  [[nodiscard]] bool contiguous_bytes() const noexcept {
    return buf_ != nullptr && buf_->seg_count == 1 &&
           buf_->segs[0].kind == PayloadSeg::Kind::kBytes;
  }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    assert(contiguous_bytes());
    return buf_->seg_bytes(buf_->segs[0]);
  }

 private:
  PayloadBuf* buf_ = nullptr;
};

/// Aggregate pool counters (deterministic; BENCH_dataplane.json).
struct BufferPoolStats {
  std::uint64_t acquires = 0;
  std::uint64_t recycles = 0;
  std::uint64_t outstanding = 0;       ///< blocks currently referenced
  std::uint64_t outstanding_peak = 0;
  std::uint64_t slab_bytes = 0;        ///< total slab memory carved
  std::uint64_t oversize_allocs = 0;   ///< acquires too big for any class
};

/// Per-node deterministic slab allocator for payload blocks (the
/// chunked-slab pattern of sim/inline_function.hpp's engine slots):
/// power-of-two size classes, each growing by fixed slab chunks whose
/// blocks are recycled through an intrusive free list — zero
/// steady-state heap allocations once the working set is warm.
///
/// Escape hatch (one release): setting PRDMA_LEGACY_DATAPLANE in the
/// environment makes every acquire a fresh heap allocation (the
/// pre-pool allocation behaviour) so A/B runs can pin that pooling is
/// timing-inert; rpcs_test holds the stats byte-identical.
class BufferPool {
 public:
  explicit BufferPool(sim::Simulator& sim);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A block with data_cap >= `data_cap`, refs == 1, no segments.
  PayloadRef acquire(std::uint64_t data_cap);

  /// Pool-backed single-extent copy of `bytes`.
  PayloadRef make_bytes(std::span<const std::byte> bytes);

  /// Returns a block whose refcount hit zero (PayloadRef internal).
  /// From a foreign partition's worker thread the block is parked on a
  /// lock-free remote-free stack instead; the owner partition applies
  /// the frees at its next epoch barrier (drain_remote_frees), keeping
  /// every pool counter single-writer and the free lists thread-local.
  void recycle(PayloadBuf* b);

  /// Applies remote frees parked by other partitions. Called by the
  /// owner partition's epoch hook (and once after the run drains);
  /// the remote-free sets per epoch are a pure function of the
  /// schedule, so the resulting stats are thread-count independent.
  void drain_remote_frees();

  [[nodiscard]] const BufferPoolStats& stats() const { return stats_; }
  [[nodiscard]] bool legacy_mode() const { return legacy_; }

  /// Wires the pool to a tracer: occupancy (kPayloadPool) and
  /// per-recycle ref-acquisition (kPayloadRefs) gauges, recorded
  /// alloc-free in kCounters mode.
  void set_tracer(trace::Tracer* tracer, std::uint16_t track = 0) {
    tracer_ = tracer;
    track_ = track;
  }

  /// ASan builds poison free blocks' data areas; exposed for tests.
  [[nodiscard]] static bool poisoning_enabled();
  [[nodiscard]] static bool address_poisoned(const void* p);

 private:
  static constexpr std::uint32_t kMinClassBytes = 64;
  static constexpr std::uint32_t kClassCount = 22;  ///< up to 128 MiB
  static constexpr std::uint64_t kSlabChunkBytes = 256 * 1024;

  static std::uint32_t class_of(std::uint64_t cap);
  static std::uint64_t class_bytes(std::uint32_t cls) {
    return static_cast<std::uint64_t>(kMinClassBytes) << cls;
  }

  void grow_class(std::uint32_t cls);
  void note_acquire();
  void note_recycle(const PayloadBuf* b);

  struct Slab {
    void* base;
    std::uint64_t bytes;
  };

  sim::Simulator& sim_;
  trace::Tracer* tracer_ = nullptr;
  std::uint16_t track_ = 0;
  bool legacy_ = false;
  PayloadBuf* free_[kClassCount] = {};
  std::vector<Slab> slabs_;
  BufferPoolStats stats_;
  /// Treiber stack of blocks released by foreign partition workers
  /// (multi-producer push, single-consumer exchange in the owner's
  /// epoch hook — the only remover, so no ABA window).
  std::atomic<PayloadBuf*> remote_free_{nullptr};
};

/// Heap-owned (non-pooled) single-extent payload — for tests and the
/// few construction sites that have no node at hand.
PayloadRef make_heap_payload(std::span<const std::byte> bytes);

namespace detail {
/// Last unref: pooled blocks recycle, heap blocks free.
void release_payload_heap(PayloadBuf* b);
inline void release_payload(PayloadBuf* b) {
  if (b->pool != nullptr) {
    b->pool->recycle(b);
  } else {
    release_payload_heap(b);
  }
}
}  // namespace detail

}  // namespace prdma::mem
