#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "mem/device.hpp"
#include "sim/simulator.hpp"

namespace prdma::mem {

/// Timing/cost parameters of the cache model.
struct LlcParams {
  std::uint64_t capacity_lines = 2048;   ///< DDIO-usable LLC portion (2 ways)
  sim::SimTime clflush_per_line = 10;    ///< clwb streaming rate (~6.4 GB/s)
  sim::SimTime sfence_cost = 250;        ///< trailing fence / drain latency
};

/// Last-level cache front of a persistent-memory device.
///
/// Two producers write through it:
///  * the receiver CPU's stores (always cached), and
///  * the RNIC's DMA when DDIO is enabled (§2.3 of the paper).
///
/// Dirty lines are *volatile*: a crash drops them, and that is exactly
/// why read-after-write fails as a persistence check under DDIO — a
/// coherent read returns the cached line even though PM still holds the
/// stale bytes. clflush() writes lines back into the persist domain.
/// Capacity pressure evicts the oldest dirty line to PM (physically
/// persisting it, but invisibly to any remote observer).
class Llc {
 public:
  Llc(sim::Simulator& sim, Device& backing, LlcParams params)
      : sim_(sim), backing_(backing), params_(params) {}

  Llc(const Llc&) = delete;
  Llc& operator=(const Llc&) = delete;

  /// Store through the cache: lines become dirty; backing content is
  /// NOT updated until clflush or eviction.
  void write(std::uint64_t addr, std::span<const std::byte> data);

  /// Content-elided store (ContentMode::kShadow payload interiors):
  /// identical line presence / dirtiness / eviction / flush-cost
  /// bookkeeping as write(), but no backing fault-in and no byte
  /// copies. Shadow-only lines also write back content-free.
  void write_shadow(std::uint64_t addr, std::uint64_t len);

  /// Coherent load: dirty lines shadow the backing device.
  void read(std::uint64_t addr, std::span<std::byte> out) const;

  /// True if any line overlapping [addr, addr+len) is dirty.
  [[nodiscard]] bool is_dirty(std::uint64_t addr, std::uint64_t len) const;

  /// Writes every dirty line overlapping [addr, addr+len) back to the
  /// backing device. Returns the simulated completion time of the
  /// flush + fence that starts at `start`.
  sim::SimTime clflush(sim::SimTime start, std::uint64_t addr, std::uint64_t len);

  /// Power failure: dirty lines are lost. Counts the casualties.
  void crash();

  [[nodiscard]] std::size_t dirty_lines() const { return lines_.size(); }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::uint64_t lines_flushed() const { return lines_flushed_; }
  [[nodiscard]] std::uint64_t lines_lost_to_crash() const { return lines_lost_; }

 private:
  struct Line {
    std::array<std::byte, kCacheLine> data;  // inline: no per-line heap alloc
    /// Tag of this line's live FIFO entry (see FifoEntry): flushing a
    /// line no longer scans the eviction queue, it just orphans the
    /// entry, and eviction skips entries whose tag no longer matches.
    std::uint64_t fifo_seq = 0;
    /// False for lines only ever touched by write_shadow: their
    /// content is meaningless, so write-back skips the byte copy
    /// (accounting is unchanged — see Device::poke_shadow).
    bool has_bytes = true;
  };

  /// One eviction-queue entry; stale once the line was flushed (or
  /// re-dirtied, which re-enqueues it with a fresh seq).
  struct FifoEntry {
    std::uint64_t addr;
    std::uint64_t seq;
  };

  using LineMap = std::unordered_map<std::uint64_t, Line>;

  /// Returns the cached line for `line_addr`, faulting it in from the
  /// backing device if needed (`fill` — shadow stores skip the fill),
  /// and marks it dirty.
  Line& dirty_line(std::uint64_t line_addr, bool fill);

  void write_back(std::uint64_t line_addr, const Line& line);
  void evict_if_needed();
  /// Drops stale FIFO entries once they dominate the queue, so lazy
  /// deletion stays O(1) amortized without unbounded growth.
  void compact_fifo();
  /// Erases `it` from the line map, stashing the node for reuse so the
  /// steady-state write->flush cycle performs no map allocations.
  void erase_line(LineMap::iterator it);

  sim::Simulator& sim_;
  Device& backing_;
  LlcParams params_;
  LineMap lines_;
  std::vector<LineMap::node_type> spare_nodes_;  // recycled map nodes
  std::deque<FifoEntry> fifo_;  // insertion order for eviction
  std::uint64_t next_fifo_seq_ = 1;
  std::uint64_t evictions_ = 0;
  std::uint64_t lines_flushed_ = 0;
  std::uint64_t lines_lost_ = 0;
};

}  // namespace prdma::mem
