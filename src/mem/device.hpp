#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace prdma::mem {

/// How faithfully a node's memory system models payload *content*
/// (timing is identical in both modes — DESIGN.md §7.3):
///  * kFull   — every byte is stored and copied (required by check/,
///              the durability oracle and any crash injection);
///  * kShadow — payload interiors are tracked as per-range lengths +
///              digests only; poke/peek copies of payload bytes are
///              elided. Benchmarks default to kShadow; arming a crash
///              hook in kShadow throws.
enum class ContentMode : std::uint8_t { kFull, kShadow };

inline constexpr std::uint64_t kCacheLine = 64;

/// Rounds an address down / a length up to cache-line granularity.
constexpr std::uint64_t line_down(std::uint64_t a) { return a & ~(kCacheLine - 1); }
constexpr std::uint64_t line_up(std::uint64_t a) {
  return (a + kCacheLine - 1) & ~(kCacheLine - 1);
}

/// Timing parameters of a memory device (calibrated in core/params.hpp).
struct DeviceTiming {
  sim::SimTime read_latency = 0;     ///< fixed per-access read latency
  sim::SimTime write_latency = 0;    ///< fixed per-access write latency
  double read_bw_bytes_per_s = 0.0;  ///< sustained read bandwidth
  double write_bw_bytes_per_s = 0.0; ///< sustained write bandwidth
};

/// Byte-addressable memory device with a bandwidth-occupancy timing
/// model. The data plane (content bytes) is updated instantaneously by
/// callers at the simulated instant the model says the access
/// completes; the timing plane serializes accesses against the
/// device's bandwidth.
class Device {
 public:
  Device(sim::Simulator& sim, std::string name, std::uint64_t capacity,
         DeviceTiming timing)
      : sim_(sim),
        name_(std::move(name)),
        timing_(timing),
        capacity_(capacity),
        // calloc: content pages stay untouched (kernel zero pages)
        // until first written — constructing a 256 MiB device costs
        // nothing, which is what lets sweep cells scale across cores.
        content_(static_cast<std::byte*>(std::calloc(capacity, 1))) {}

  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }

  /// True when contents survive a power failure (the persist domain).
  [[nodiscard]] virtual bool persistent() const = 0;

  /// Power failure: volatile devices lose their contents.
  virtual void crash() = 0;

  // --- data plane (instantaneous; timing charged separately) ---

  void poke(std::uint64_t addr, std::span<const std::byte> data) {
    assert(addr + data.size() <= capacity_);
    std::copy(data.begin(), data.end(), content_.get() + addr);
    bytes_written_ += data.size();
    bytes_copied_ += data.size();
  }

  /// Content-elided store (ContentMode::kShadow payload interiors):
  /// identical write accounting, no bytes moved.
  void poke_shadow(std::uint64_t addr, std::uint64_t len) {
    assert(addr + len <= capacity_);
    (void)addr;
    bytes_written_ += len;
  }

  void peek(std::uint64_t addr, std::span<std::byte> out) const {
    assert(addr + out.size() <= capacity_);
    std::copy_n(content_.get() + addr, out.size(), out.begin());
    bytes_copied_ += out.size();
  }

  [[nodiscard]] std::span<const std::byte> view(std::uint64_t addr,
                                                std::uint64_t len) const {
    assert(addr + len <= capacity_);
    return {content_.get() + addr, len};
  }

  // --- timing plane ---

  /// Completion time of a write of `bytes` that arrives at the device
  /// at `start`; serializes against earlier accesses (bandwidth).
  sim::SimTime write_complete_at(sim::SimTime start, std::uint64_t bytes) {
    const sim::SimTime begin = std::max(start, busy_until_);
    const sim::SimTime xfer =
        sim::transfer_time(bytes, timing_.write_bw_bytes_per_s);
    busy_until_ = begin + xfer;
    return begin + timing_.write_latency + xfer;
  }

  /// Pure cost of a write of `bytes` (latency + transfer), without
  /// claiming device occupancy — used by paths whose serialization is
  /// modeled elsewhere (the RNIC's DMA engine queue).
  [[nodiscard]] sim::SimTime write_cost(std::uint64_t bytes) const {
    return timing_.write_latency +
           sim::transfer_time(bytes, timing_.write_bw_bytes_per_s);
  }

  [[nodiscard]] sim::SimTime read_cost(std::uint64_t bytes) const {
    return timing_.read_latency +
           sim::transfer_time(bytes, timing_.read_bw_bytes_per_s);
  }

  /// Completion time of a read of `bytes` beginning at `start`.
  sim::SimTime read_complete_at(sim::SimTime start, std::uint64_t bytes) {
    const sim::SimTime begin = std::max(start, busy_until_);
    const sim::SimTime xfer =
        sim::transfer_time(bytes, timing_.read_bw_bytes_per_s);
    busy_until_ = begin + xfer;
    return begin + timing_.read_latency + xfer;
  }

  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  /// Bytes physically moved through poke/peek — the data-plane copy
  /// traffic the shadow content mode elides (BENCH_dataplane.json).
  [[nodiscard]] std::uint64_t bytes_copied() const { return bytes_copied_; }
  [[nodiscard]] const DeviceTiming& timing() const { return timing_; }

 protected:
  void zero_content() { std::memset(content_.get(), 0, capacity_); }

  sim::Simulator& sim_;

 private:
  struct FreeDeleter {
    void operator()(std::byte* p) const { std::free(p); }
  };

  std::string name_;
  DeviceTiming timing_;
  std::uint64_t capacity_;
  std::unique_ptr<std::byte[], FreeDeleter> content_;
  sim::SimTime busy_until_ = 0;
  std::uint64_t bytes_written_ = 0;
  mutable std::uint64_t bytes_copied_ = 0;
};

/// Persistent-memory device: its contents *are* the persist domain.
/// Once a DMA or cache write-back lands here it survives crashes (the
/// ADR guarantee covers the iMC write-pending queue; we model the
/// domain boundary at the device interface).
class PmDevice final : public Device {
 public:
  PmDevice(sim::Simulator& sim, std::string name, std::uint64_t capacity,
           DeviceTiming timing)
      : Device(sim, std::move(name), capacity, timing) {}

  [[nodiscard]] bool persistent() const override { return true; }
  void crash() override { /* contents retained by definition */ }

  /// Crash-instant landing of an in-flight DMA write: only the
  /// cache-line-aligned prefix that physically reached the media
  /// before the power failed is applied; the tail of `data` is lost.
  /// Models a torn entry — recovery must detect it by checksum (§4.2).
  void torn_write(std::uint64_t addr, std::span<const std::byte> data,
                  std::uint64_t persisted_bytes) {
    persisted_bytes = std::min<std::uint64_t>(persisted_bytes, data.size());
    persisted_bytes = line_down(persisted_bytes);
    if (persisted_bytes < data.size()) ++torn_writes_;
    if (persisted_bytes > 0) poke(addr, data.first(persisted_bytes));
  }

  /// Number of in-flight writes that landed partially across crashes.
  [[nodiscard]] std::uint64_t torn_writes() const { return torn_writes_; }

  /// Torn-landing bookkeeping for scatter-gather DMA images whose
  /// prefix application is walked segment-by-segment in NodeMemory
  /// (one torn write per in-flight DMA, like torn_write()).
  void count_torn_write() { ++torn_writes_; }

 private:
  std::uint64_t torn_writes_ = 0;
};

/// Volatile DRAM: contents are lost on power failure.
class DramDevice final : public Device {
 public:
  DramDevice(sim::Simulator& sim, std::string name, std::uint64_t capacity,
             DeviceTiming timing)
      : Device(sim, std::move(name), capacity, timing) {}

  [[nodiscard]] bool persistent() const override { return false; }
  void crash() override { zero_content(); }
};

}  // namespace prdma::mem
