#include "mem/node_memory.hpp"

#include <algorithm>
#include <cassert>

namespace prdma::mem {

namespace {

/// One planned extent of a payload reconstruction.
struct Piece {
  bool shadow;
  std::uint64_t start;
  std::uint64_t len;
  std::uint64_t seed;
  std::uint64_t off;
};

}  // namespace

void NodeMemory::write_bytes_nofire(std::uint64_t addr,
                                    std::span<const std::byte> data,
                                    WritePath path, bool ddio) {
  if (data.empty()) return;
  if (mode_ == ContentMode::kShadow && !shadow_.empty()) {
    // Byte content is now authoritative over this range: drop/trim any
    // shadow extents it overlaps so digest lookups fail closed.
    trim_shadow(addr, data.size());
  }
  if (is_pm(addr)) {
    switch (path) {
      case WritePath::kCpu:
        llc_.write(addr, data);
        break;
      case WritePath::kDma:
        if (ddio) {
          llc_.write(addr, data);
        } else {
          pm_.poke(addr, data);
        }
        break;
      case WritePath::kNtStore:
        pm_.poke(addr, data);
        break;
    }
  } else {
    dram_.poke(addr - kDramBase, data);
  }
}

void NodeMemory::write_shadow_seg(std::uint64_t addr, std::uint64_t len,
                                  std::uint64_t seed, std::uint64_t off,
                                  WritePath path, bool ddio) {
  if (len == 0) return;
  if (is_pm(addr)) {
    switch (path) {
      case WritePath::kCpu:
        llc_.write_shadow(addr, len);
        break;
      case WritePath::kDma:
        if (ddio) {
          llc_.write_shadow(addr, len);
        } else {
          pm_.poke_shadow(addr, len);
        }
        break;
      case WritePath::kNtStore:
        pm_.poke_shadow(addr, len);
        break;
    }
  } else {
    dram_.poke_shadow(addr - kDramBase, len);
  }
  trim_shadow(addr, len);
  shadow_.insert_or_assign(addr, ShadowRange{len, seed, off});
}

void NodeMemory::trim_shadow(std::uint64_t addr, std::uint64_t len) {
  const std::uint64_t end = addr + len;
  auto it = shadow_.upper_bound(addr);
  if (it != shadow_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.len > addr) it = prev;
  }
  while (it != shadow_.end() && it->first < end) {
    const std::uint64_t r_start = it->first;
    const ShadowRange r = it->second;
    const std::uint64_t r_end = r_start + r.len;
    it = shadow_.erase(it);
    if (r_start < addr) {
      // Keep the untouched head of the range.
      shadow_.insert_or_assign(r_start,
                               ShadowRange{addr - r_start, r.seed, r.off});
    }
    if (r_end > end) {
      // Keep the untouched tail (stream offset advances accordingly).
      it = shadow_
               .insert_or_assign(end, ShadowRange{r_end - end, r.seed,
                                                  r.off + (end - r_start)})
               .first;
      ++it;
    }
  }
}

std::uint64_t NodeMemory::write_payload_nofire(std::uint64_t addr,
                                               const PayloadRef& p,
                                               std::uint64_t limit,
                                               WritePath path, bool ddio) {
  const PayloadBuf* b = p.buf();
  if (b == nullptr) return 0;
  const std::uint64_t total = std::min<std::uint64_t>(b->total_len, limit);
  std::uint64_t pos = 0;
  for (const PayloadSeg& seg : p.segs()) {
    if (pos >= total) break;
    const std::uint64_t n = std::min<std::uint64_t>(seg.len, total - pos);
    if (seg.kind == PayloadSeg::Kind::kBytes) {
      write_bytes_nofire(addr + pos, b->seg_bytes(seg).first(n), path, ddio);
    } else {
      write_shadow_seg(addr + pos, n, seg.seed, seg.off, path, ddio);
    }
    pos += n;
  }
  return pos;
}

PayloadRef NodeMemory::read_payload(std::uint64_t addr, std::uint64_t len) {
  if (len == 0) return {};
  if (mode_ == ContentMode::kFull || shadow_.empty()) {
    PayloadRef r = pool_.acquire(len);
    std::byte* dst =
        r.buf()->append_bytes_uninit(static_cast<std::uint32_t>(len));
    cpu_read(addr, {dst, static_cast<std::size_t>(len)});
    return r;
  }

  // Plan the extents: shadow ranges pass through by reference, the
  // gaps between them are byte-copied from the coherent view.
  Piece pieces[PayloadBuf::kMaxSegs];
  std::uint32_t np = 0;
  bool overflow = false;
  std::uint64_t gap_bytes = 0;
  const std::uint64_t end = addr + len;
  std::uint64_t cur = addr;
  auto it = shadow_.upper_bound(cur);
  if (it != shadow_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.len > cur) it = prev;
  }
  while (cur < end) {
    if (np == PayloadBuf::kMaxSegs) {
      overflow = true;
      break;
    }
    if (it != shadow_.end() && it->first <= cur &&
        cur < it->first + it->second.len) {
      const std::uint64_t n =
          std::min(end, it->first + it->second.len) - cur;
      pieces[np++] = Piece{true, cur, n, it->second.seed,
                           it->second.off + (cur - it->first)};
      cur += n;
      ++it;
    } else {
      const std::uint64_t next =
          (it == shadow_.end()) ? end : std::min(end, it->first);
      pieces[np++] = Piece{false, cur, next - cur, 0, 0};
      gap_bytes += next - cur;
      cur = next;
    }
  }
  if (overflow) {
    // Too fragmented for one block's descriptor array: fall back to a
    // plain byte image (shadow interiors read as garbage, which only a
    // digest lookup could notice — and those fail closed).
    PayloadRef r = pool_.acquire(len);
    std::byte* dst =
        r.buf()->append_bytes_uninit(static_cast<std::uint32_t>(len));
    cpu_read(addr, {dst, static_cast<std::size_t>(len)});
    return r;
  }

  PayloadRef r = pool_.acquire(gap_bytes);
  PayloadBuf* b = r.buf();
  for (std::uint32_t i = 0; i < np; ++i) {
    const Piece& pc = pieces[i];
    if (pc.shadow) {
      b->append_shadow(static_cast<std::uint32_t>(pc.len), pc.seed, pc.off);
    } else {
      std::byte* dst =
          b->append_bytes_uninit(static_cast<std::uint32_t>(pc.len));
      cpu_read(pc.start, {dst, static_cast<std::size_t>(pc.len)});
    }
  }
  return r;
}

void NodeMemory::dma_torn_write(std::uint64_t addr, const PayloadRef& p,
                                std::uint64_t len,
                                std::uint64_t persisted_bytes) {
  assert(is_pm(addr));
  const PayloadBuf* b = p.buf();
  const std::uint64_t total =
      std::min<std::uint64_t>(b != nullptr ? b->total_len : 0, len);
  const std::uint64_t landed =
      line_down(std::min<std::uint64_t>(persisted_bytes, total));
  if (landed < total) pm_.count_torn_write();
  if (landed == 0 || b == nullptr) return;
  std::uint64_t pos = 0;
  for (const PayloadSeg& seg : p.segs()) {
    if (pos >= landed) break;
    const std::uint64_t n = std::min<std::uint64_t>(seg.len, landed - pos);
    if (seg.kind == PayloadSeg::Kind::kBytes) {
      pm_.poke(addr + pos, b->seg_bytes(seg).first(n));
    } else {
      write_shadow_seg(addr + pos, n, seg.seed, seg.off, WritePath::kNtStore,
                       false);
    }
    pos += n;
  }
}

std::optional<std::uint64_t> NodeMemory::shadow_digest_at(
    std::uint64_t addr, std::uint64_t len) const {
  if (mode_ != ContentMode::kShadow || len == 0) return std::nullopt;
  const auto it = shadow_.find(addr);
  if (it == shadow_.end() || it->second.len < len) return std::nullopt;
  return shadow_digest(it->second.seed, it->second.off, len);
}

}  // namespace prdma::mem
