#include "mem/buffer_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <new>

#include "trace/component.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PRDMA_ASAN 1
#endif
#endif
#if !defined(PRDMA_ASAN) && defined(__SANITIZE_ADDRESS__)
#define PRDMA_ASAN 1
#endif
#ifdef PRDMA_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace prdma::mem {

namespace {

void poison(void* p, std::size_t n) {
#ifdef PRDMA_ASAN
  __asan_poison_memory_region(p, n);
#else
  (void)p;
  (void)n;
#endif
}

void unpoison(void* p, std::size_t n) {
#ifdef PRDMA_ASAN
  __asan_unpoison_memory_region(p, n);
#else
  (void)p;
  (void)n;
#endif
}

PayloadBuf* new_block(std::uint64_t data_cap) {
  void* raw = ::operator new(sizeof(PayloadBuf) + data_cap);
  auto* b = ::new (raw) PayloadBuf{};
  b->data_cap = static_cast<std::uint32_t>(data_cap);
  return b;
}

}  // namespace

bool BufferPool::poisoning_enabled() {
#ifdef PRDMA_ASAN
  return true;
#else
  return false;
#endif
}

bool BufferPool::address_poisoned(const void* p) {
#ifdef PRDMA_ASAN
  return __asan_address_is_poisoned(p) != 0;
#else
  (void)p;
  return false;
#endif
}

BufferPool::BufferPool(sim::Simulator& sim)
    : sim_(sim), legacy_(std::getenv("PRDMA_LEGACY_DATAPLANE") != nullptr) {}

BufferPool::~BufferPool() {
  for (const Slab& s : slabs_) {
    unpoison(s.base, s.bytes);  // free blocks keep poisoned data areas
    ::operator delete(s.base);
  }
}

std::uint32_t BufferPool::class_of(std::uint64_t cap) {
  std::uint32_t cls = 0;
  while (cls < kClassCount && class_bytes(cls) < cap) ++cls;
  return cls;
}

void BufferPool::grow_class(std::uint32_t cls) {
  const std::uint64_t bytes = class_bytes(cls);
  const std::uint64_t block = sizeof(PayloadBuf) + bytes;
  const std::uint64_t count = std::max<std::uint64_t>(1, kSlabChunkBytes / block);
  void* slab = ::operator new(block * count);
  slabs_.push_back(Slab{slab, block * count});
  stats_.slab_bytes += block * count;
  auto* base = static_cast<std::byte*>(slab);
  for (std::uint64_t i = 0; i < count; ++i) {
    auto* b = ::new (base + i * block) PayloadBuf{};
    b->size_class = cls;
    b->data_cap = static_cast<std::uint32_t>(bytes);
    b->next_free = free_[cls];
    free_[cls] = b;
    poison(b->data(), bytes);
  }
}

void BufferPool::note_acquire() {
  ++stats_.acquires;
  ++stats_.outstanding;
  stats_.outstanding_peak =
      std::max(stats_.outstanding_peak, stats_.outstanding);
  if (tracer_ != nullptr) {
    tracer_->counter(trace::Component::kPayloadPool, sim_.now(),
                     stats_.outstanding, track_);
  }
}

void BufferPool::note_recycle(const PayloadBuf* b) {
  ++stats_.recycles;
  --stats_.outstanding;
  if (tracer_ != nullptr) {
    tracer_->counter(trace::Component::kPayloadPool, sim_.now(),
                     stats_.outstanding, track_);
    tracer_->counter(trace::Component::kPayloadRefs, sim_.now(),
                     b->ref_acquires.load(std::memory_order_relaxed), track_);
  }
}

PayloadRef BufferPool::acquire(std::uint64_t data_cap) {
  const std::uint32_t cls = class_of(data_cap);
  PayloadBuf* b = nullptr;
  if (legacy_ || cls >= kClassCount) {
    if (cls >= kClassCount) ++stats_.oversize_allocs;
    b = new_block(data_cap);
    b->size_class = cls;
  } else {
    if (free_[cls] == nullptr) grow_class(cls);
    b = free_[cls];
    free_[cls] = b->next_free;
    unpoison(b->data(), b->data_cap);
  }
  b->pool = this;
  b->next_free = nullptr;
  b->refs.store(1, std::memory_order_relaxed);
  b->ref_acquires.store(1, std::memory_order_relaxed);
  b->data_used = 0;
  b->seg_count = 0;
  b->total_len = 0;
  note_acquire();
  return PayloadRef(b);
}

PayloadRef BufferPool::make_bytes(std::span<const std::byte> bytes) {
  PayloadRef r = acquire(bytes.size());
  if (!bytes.empty()) r.buf()->append_bytes(bytes);
  return r;
}

void BufferPool::recycle(PayloadBuf* b) {
  // A final unref on another partition's worker must not touch this
  // pool's counters or free lists; park the block for the owner to
  // apply at the next epoch barrier.
  const void* shard = sim::current_engine_shard();
  if (shard != nullptr && shard != static_cast<const void*>(&sim_)) {
    PayloadBuf* head = remote_free_.load(std::memory_order_relaxed);
    do {
      b->next_free = head;
    } while (!remote_free_.compare_exchange_weak(
        head, b, std::memory_order_release, std::memory_order_relaxed));
    return;
  }
  note_recycle(b);
  if (legacy_ || b->size_class >= kClassCount) {
    ::operator delete(static_cast<void*>(b));
    return;
  }
  poison(b->data(), b->data_cap);
  b->next_free = free_[b->size_class];
  free_[b->size_class] = b;
}

void BufferPool::drain_remote_frees() {
  PayloadBuf* b = remote_free_.exchange(nullptr, std::memory_order_acquire);
  while (b != nullptr) {
    PayloadBuf* next = b->next_free;
    recycle(b);  // caller is the owner partition: takes the local path
    b = next;
  }
}

PayloadRef make_heap_payload(std::span<const std::byte> bytes) {
  PayloadBuf* b = new_block(bytes.size());
  b->refs.store(1, std::memory_order_relaxed);
  b->ref_acquires.store(1, std::memory_order_relaxed);
  if (!bytes.empty()) b->append_bytes(bytes);
  return PayloadRef(b);
}

namespace detail {
void release_payload_heap(PayloadBuf* b) {
  ::operator delete(static_cast<void*>(b));
}
}  // namespace detail

}  // namespace prdma::mem
