#include "mem/llc.hpp"

#include <algorithm>

namespace prdma::mem {

Llc::Line& Llc::dirty_line(std::uint64_t line_addr) {
  auto it = lines_.find(line_addr);
  if (it == lines_.end()) {
    Line line;
    line.data.resize(kCacheLine);
    backing_.peek(line_addr, line.data);
    it = lines_.emplace(line_addr, std::move(line)).first;
    fifo_.push_back(line_addr);
    evict_if_needed();
  }
  return it->second;
}

void Llc::write(std::uint64_t addr, std::span<const std::byte> data) {
  std::uint64_t pos = addr;
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    const std::uint64_t la = line_down(pos);
    const std::uint64_t off = pos - la;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(kCacheLine - off, data.size() - consumed));
    Line& line = dirty_line(la);
    std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(consumed), n,
                line.data.begin() + static_cast<std::ptrdiff_t>(off));
    pos += n;
    consumed += n;
  }
}

void Llc::read(std::uint64_t addr, std::span<std::byte> out) const {
  backing_.peek(addr, out);  // baseline from PM
  // Overlay any dirty lines (coherent view).
  const std::uint64_t first = line_down(addr);
  const std::uint64_t last = line_up(addr + out.size());
  for (std::uint64_t la = first; la < last; la += kCacheLine) {
    const auto it = lines_.find(la);
    if (it == lines_.end()) continue;
    const std::uint64_t lo = std::max(la, addr);
    const std::uint64_t hi = std::min(la + kCacheLine, addr + out.size());
    std::copy_n(it->second.data.begin() + static_cast<std::ptrdiff_t>(lo - la),
                hi - lo,
                out.begin() + static_cast<std::ptrdiff_t>(lo - addr));
  }
}

bool Llc::is_dirty(std::uint64_t addr, std::uint64_t len) const {
  const std::uint64_t first = line_down(addr);
  const std::uint64_t last = line_up(addr + len);
  for (std::uint64_t la = first; la < last; la += kCacheLine) {
    if (lines_.contains(la)) return true;
  }
  return false;
}

sim::SimTime Llc::clflush(sim::SimTime start, std::uint64_t addr,
                          std::uint64_t len) {
  // clwb-style streaming flush: per-line issue cost, with the media
  // writes pipelined — one bandwidth charge for the whole range, the
  // trailing fence waits for the last write-back to land.
  const std::uint64_t first = line_down(addr);
  const std::uint64_t last = line_up(addr + len);
  sim::SimTime t = start;
  std::uint64_t flushed = 0;
  for (std::uint64_t la = first; la < last; la += kCacheLine) {
    const auto it = lines_.find(la);
    if (it == lines_.end()) continue;
    write_back(la, it->second);
    lines_.erase(it);
    std::erase(fifo_, la);
    t += params_.clflush_per_line;
    ++flushed;
  }
  lines_flushed_ += flushed;
  if (flushed > 0) {
    t = std::max(t, backing_.write_complete_at(start, flushed * kCacheLine));
  }
  return t + params_.sfence_cost;
}

void Llc::crash() {
  lines_lost_ += lines_.size();
  lines_.clear();
  fifo_.clear();
}

void Llc::write_back(std::uint64_t line_addr, const Line& line) {
  backing_.poke(line_addr, line.data);
}

void Llc::evict_if_needed() {
  while (lines_.size() > params_.capacity_lines && !fifo_.empty()) {
    const std::uint64_t victim = fifo_.front();
    fifo_.pop_front();
    const auto it = lines_.find(victim);
    if (it == lines_.end()) continue;
    write_back(victim, it->second);
    lines_.erase(it);
    ++evictions_;
  }
}

}  // namespace prdma::mem
