#include "mem/llc.hpp"

#include <algorithm>

namespace prdma::mem {

Llc::Line& Llc::dirty_line(std::uint64_t line_addr, bool fill) {
  auto it = lines_.find(line_addr);
  if (it == lines_.end()) {
    if (!spare_nodes_.empty()) {
      auto nh = std::move(spare_nodes_.back());
      spare_nodes_.pop_back();
      nh.key() = line_addr;
      nh.mapped() = Line{};
      it = lines_.insert(std::move(nh)).position;
    } else {
      it = lines_.emplace(line_addr, Line{}).first;
    }
    if (fill) {
      backing_.peek(line_addr, it->second.data);
    } else {
      it->second.has_bytes = false;
    }
    it->second.fifo_seq = next_fifo_seq_++;
    fifo_.push_back(FifoEntry{line_addr, it->second.fifo_seq});
    evict_if_needed();
  } else if (fill && !it->second.has_bytes) {
    // A byte store is landing in a shadow-only line: from here on its
    // content matters (for the stored range), so write it back as bytes.
    it->second.has_bytes = true;
  }
  return it->second;
}

void Llc::erase_line(LineMap::iterator it) {
  auto nh = lines_.extract(it);
  if (spare_nodes_.size() < 4096) spare_nodes_.push_back(std::move(nh));
}

void Llc::write(std::uint64_t addr, std::span<const std::byte> data) {
  std::uint64_t pos = addr;
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    const std::uint64_t la = line_down(pos);
    const std::uint64_t off = pos - la;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(kCacheLine - off, data.size() - consumed));
    Line& line = dirty_line(la, /*fill=*/true);
    std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(consumed), n,
                line.data.begin() + static_cast<std::ptrdiff_t>(off));
    pos += n;
    consumed += n;
  }
}

void Llc::write_shadow(std::uint64_t addr, std::uint64_t len) {
  const std::uint64_t first = line_down(addr);
  const std::uint64_t last = line_up(addr + len);
  for (std::uint64_t la = first; la < last; la += kCacheLine) {
    (void)dirty_line(la, /*fill=*/false);
  }
}

void Llc::read(std::uint64_t addr, std::span<std::byte> out) const {
  backing_.peek(addr, out);  // baseline from PM
  // Overlay any dirty lines (coherent view).
  const std::uint64_t first = line_down(addr);
  const std::uint64_t last = line_up(addr + out.size());
  for (std::uint64_t la = first; la < last; la += kCacheLine) {
    const auto it = lines_.find(la);
    if (it == lines_.end()) continue;
    const std::uint64_t lo = std::max(la, addr);
    const std::uint64_t hi = std::min(la + kCacheLine, addr + out.size());
    std::copy_n(it->second.data.begin() + static_cast<std::ptrdiff_t>(lo - la),
                hi - lo,
                out.begin() + static_cast<std::ptrdiff_t>(lo - addr));
  }
}

bool Llc::is_dirty(std::uint64_t addr, std::uint64_t len) const {
  const std::uint64_t first = line_down(addr);
  const std::uint64_t last = line_up(addr + len);
  for (std::uint64_t la = first; la < last; la += kCacheLine) {
    if (lines_.contains(la)) return true;
  }
  return false;
}

sim::SimTime Llc::clflush(sim::SimTime start, std::uint64_t addr,
                          std::uint64_t len) {
  // clwb-style streaming flush: per-line issue cost, with the media
  // writes pipelined — one bandwidth charge for the whole range, the
  // trailing fence waits for the last write-back to land.
  const std::uint64_t first = line_down(addr);
  const std::uint64_t last = line_up(addr + len);
  sim::SimTime t = start;
  std::uint64_t flushed = 0;
  for (std::uint64_t la = first; la < last; la += kCacheLine) {
    const auto it = lines_.find(la);
    if (it == lines_.end()) continue;
    write_back(la, it->second);
    erase_line(it);  // the FIFO entry goes stale; eviction skips it
    t += params_.clflush_per_line;
    ++flushed;
  }
  compact_fifo();
  lines_flushed_ += flushed;
  if (flushed > 0) {
    t = std::max(t, backing_.write_complete_at(start, flushed * kCacheLine));
  }
  return t + params_.sfence_cost;
}

void Llc::crash() {
  lines_lost_ += lines_.size();
  lines_.clear();
  fifo_.clear();
}

void Llc::write_back(std::uint64_t line_addr, const Line& line) {
  if (line.has_bytes) {
    backing_.poke(line_addr, line.data);
  } else {
    backing_.poke_shadow(line_addr, kCacheLine);
  }
}

void Llc::evict_if_needed() {
  while (lines_.size() > params_.capacity_lines && !fifo_.empty()) {
    const FifoEntry victim = fifo_.front();
    fifo_.pop_front();
    const auto it = lines_.find(victim.addr);
    // Stale entry: the line was flushed (and possibly re-dirtied,
    // which re-enqueued it with a fresh seq) since this was pushed.
    if (it == lines_.end() || it->second.fifo_seq != victim.seq) continue;
    write_back(victim.addr, it->second);
    erase_line(it);
    ++evictions_;
  }
}

void Llc::compact_fifo() {
  if (fifo_.size() < 64 || fifo_.size() < 4 * lines_.size()) return;
  std::erase_if(fifo_, [this](const FifoEntry& e) {
    const auto it = lines_.find(e.addr);
    return it == lines_.end() || it->second.fifo_seq != e.seq;
  });
}

}  // namespace prdma::mem
