#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "mem/device.hpp"
#include "mem/llc.hpp"
#include "sim/simulator.hpp"

namespace prdma::mem {

/// Sizing/timing of one node's memory system.
struct NodeMemoryParams {
  std::uint64_t pm_capacity = 256ull << 20;    ///< 256 MiB modeled PM window
  std::uint64_t dram_capacity = 128ull << 20;  ///< DRAM (message buffers etc.)
  DeviceTiming pm_timing{
      /*read_latency=*/170, /*write_latency=*/90,
      /*read_bw=*/6.6e9, /*write_bw=*/12.0e9};  // 6-DIMM interleaved DCPMM
  DeviceTiming dram_timing{
      /*read_latency=*/80, /*write_latency=*/80,
      /*read_bw=*/38.0e9, /*write_bw=*/38.0e9};
  LlcParams llc{};
};

/// One node's physical memory: a PM window, a DRAM window and the LLC
/// fronting the PM. Flat 64-bit addressing:
///   [0, pm_capacity)               -> persistent memory
///   [kDramBase, kDramBase + cap)   -> DRAM
///
/// Two access paths matter for persistence semantics:
///  * cpu_write / cpu_read — receiver-CPU stores, always cached (PM
///    stores stay volatile in the LLC until clflush);
///  * dma_write / dma_read — RNIC DMA; steering depends on DDIO
///    (LLC when enabled, straight into the persist domain when not).
class NodeMemory {
 public:
  static constexpr std::uint64_t kDramBase = 1ull << 40;

  NodeMemory(sim::Simulator& sim, const NodeMemoryParams& params)
      : pm_(sim, "pm", params.pm_capacity, params.pm_timing),
        dram_(sim, "dram", params.dram_capacity, params.dram_timing),
        llc_(sim, pm_, params.llc) {}

  [[nodiscard]] bool is_pm(std::uint64_t addr) const {
    return addr < pm_.capacity();
  }

  [[nodiscard]] PmDevice& pm() { return pm_; }
  [[nodiscard]] DramDevice& dram() { return dram_; }
  [[nodiscard]] Llc& llc() { return llc_; }
  [[nodiscard]] const Llc& llc() const { return llc_; }

  // ---- CPU path (cached stores) ----

  void cpu_write(std::uint64_t addr, std::span<const std::byte> data) {
    if (is_pm(addr)) {
      llc_.write(addr, data);
    } else {
      dram_.poke(addr - kDramBase, data);
    }
    fire_watches(addr, data.size());
  }

  void cpu_read(std::uint64_t addr, std::span<std::byte> out) const {
    if (is_pm(addr)) {
      llc_.read(addr, out);
    } else {
      dram_.peek(addr - kDramBase, out);
    }
  }

  // ---- DMA path (RNIC) ----

  /// RNIC DMA store. With DDIO the line lands dirty in the LLC
  /// (volatile!); without DDIO it goes through the iMC into the
  /// persist domain (for PM) or DRAM.
  void dma_write(std::uint64_t addr, std::span<const std::byte> data, bool ddio) {
    if (is_pm(addr)) {
      if (ddio) {
        llc_.write(addr, data);
      } else {
        pm_.poke(addr, data);
      }
    } else {
      dram_.poke(addr - kDramBase, data);
    }
    fire_watches(addr, data.size());
  }

  /// RNIC DMA load — cache-coherent, so it sees dirty LLC lines. This
  /// is why read-after-write cannot prove persistence under DDIO.
  void dma_read(std::uint64_t addr, std::span<std::byte> out) const {
    cpu_read(addr, out);
  }

  /// Physical-media load: bypasses the LLC and returns exactly what is
  /// in the persist domain *right now* — what a post-crash reader would
  /// see. DRAM addresses read as zeros (they do not survive). This is
  /// the honest basis for durable watermarks and the durability oracle:
  /// a coherent read can overstate persistence (dirty lines), a media
  /// read cannot.
  void persisted_read(std::uint64_t addr, std::span<std::byte> out) const {
    if (is_pm(addr)) {
      pm_.peek(addr, out);
    } else {
      std::fill(out.begin(), out.end(), std::byte{0});
    }
  }

  /// True iff every byte of [addr, addr+len) is in the persist domain
  /// right now (PM address and no dirty cache line over it).
  [[nodiscard]] bool range_persistent(std::uint64_t addr, std::uint64_t len) const {
    if (!is_pm(addr)) return false;
    return !llc_.is_dirty(addr, len);
  }

  /// CPU clflush of a PM range; returns completion time. No-op (start)
  /// for DRAM addresses.
  sim::SimTime clflush(sim::SimTime start, std::uint64_t addr, std::uint64_t len) {
    if (!is_pm(addr)) return start;
    return llc_.clflush(start, addr, len);
  }

  /// Timing helper: completion time of a device write of `bytes` to
  /// `addr` starting at `start` (used by the RNIC DMA engine).
  sim::SimTime device_write_complete_at(sim::SimTime start, std::uint64_t addr,
                                        std::uint64_t bytes) {
    return is_pm(addr) ? pm_.write_complete_at(start, bytes)
                       : dram_.write_complete_at(start, bytes);
  }

  sim::SimTime device_read_complete_at(sim::SimTime start, std::uint64_t addr,
                                       std::uint64_t bytes) {
    return is_pm(addr) ? pm_.read_complete_at(start, bytes)
                       : dram_.read_complete_at(start, bytes);
  }

  /// Pure device write cost (no occupancy claim; see Device::write_cost).
  [[nodiscard]] sim::SimTime device_write_cost(std::uint64_t addr,
                                               std::uint64_t bytes) const {
    return is_pm(addr) ? pm_.write_cost(bytes) : dram_.write_cost(bytes);
  }

  /// Power failure: DRAM and dirty LLC lines are lost; PM survives.
  /// Watches persist (they model software that re-polls after restart).
  void crash() {
    llc_.crash();
    dram_.crash();
    pm_.crash();
  }

  // ---- write watches ----
  //
  // Software polling (a CPU spinning on a message buffer or log slot)
  // is modeled event-style: register a watch over the polled range and
  // the callback fires whenever any write lands in it. The *cost* of
  // polling is charged separately by the host layer; the watch only
  // supplies the wake-up edge. This keeps simulated polling O(1) per
  // write instead of one event per poll iteration.

  using WatchId = std::uint64_t;

  WatchId add_watch(std::uint64_t addr, std::uint64_t len,
                    std::function<void()> on_write) {
    const WatchId id = next_watch_++;
    watches_.push_back(Watch{id, addr, len, std::move(on_write)});
    return id;
  }

  void remove_watch(WatchId id) {
    std::erase_if(watches_, [id](const Watch& w) { return w.id == id; });
  }

  [[nodiscard]] std::size_t watch_count() const { return watches_.size(); }

 private:
  struct Watch {
    WatchId id;
    std::uint64_t addr;
    std::uint64_t len;
    std::function<void()> on_write;
  };

  void fire_watches(std::uint64_t addr, std::uint64_t len) {
    if (watches_.empty()) return;
    // A callback may add/remove watches; iterate over a snapshot of ids.
    std::vector<const Watch*> hits;
    for (const Watch& w : watches_) {
      if (w.addr < addr + len && addr < w.addr + w.len) hits.push_back(&w);
    }
    if (hits.empty()) return;
    std::vector<std::function<void()>> cbs;
    cbs.reserve(hits.size());
    for (const Watch* w : hits) cbs.push_back(w->on_write);
    for (auto& cb : cbs) cb();
  }

  PmDevice pm_;
  DramDevice dram_;
  Llc llc_;
  std::uint64_t next_watch_ = 1;
  std::vector<Watch> watches_;
};

}  // namespace prdma::mem
