#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "mem/buffer_pool.hpp"
#include "mem/device.hpp"
#include "mem/llc.hpp"
#include "sim/simulator.hpp"

namespace prdma::mem {

/// Digest of a deterministic payload range in shadow content mode: a
/// cheap FNV-style mix of (generator seed, stream offset, length) that
/// composes under sub-slicing — the digest of bytes [off, off+len) of
/// generator `seed` is computable without the bytes. Stands in for
/// FNV-1a over the real bytes everywhere shadow mode elides them.
inline std::uint64_t shadow_digest(std::uint64_t seed, std::uint64_t off,
                                   std::uint64_t len) {
  std::uint64_t h = 0xcbf29ce484222325ull ^ (seed * 0x100000001b3ull);
  h ^= off + 0x9e3779b97f4a7c15ull;
  h *= 0x100000001b3ull;
  h ^= len;
  h *= 0x100000001b3ull;
  return h;
}

/// Sizing/timing of one node's memory system.
struct NodeMemoryParams {
  std::uint64_t pm_capacity = 256ull << 20;    ///< 256 MiB modeled PM window
  std::uint64_t dram_capacity = 128ull << 20;  ///< DRAM (message buffers etc.)
  DeviceTiming pm_timing{
      /*read_latency=*/170, /*write_latency=*/90,
      /*read_bw=*/6.6e9, /*write_bw=*/12.0e9};  // 6-DIMM interleaved DCPMM
  DeviceTiming dram_timing{
      /*read_latency=*/80, /*write_latency=*/80,
      /*read_bw=*/38.0e9, /*write_bw=*/38.0e9};
  LlcParams llc{};
  /// Content fidelity (DESIGN.md §7.3): kFull stores every payload
  /// byte; kShadow elides payload copies (crash injection requires
  /// kFull — Node refuses to arm crash hooks in kShadow).
  ContentMode content_mode = ContentMode::kFull;
};

/// One node's physical memory: a PM window, a DRAM window and the LLC
/// fronting the PM. Flat 64-bit addressing:
///   [0, pm_capacity)               -> persistent memory
///   [kDramBase, kDramBase + cap)   -> DRAM
///
/// Two access paths matter for persistence semantics:
///  * cpu_write / cpu_read — receiver-CPU stores, always cached (PM
///    stores stay volatile in the LLC until clflush);
///  * dma_write / dma_read — RNIC DMA; steering depends on DDIO
///    (LLC when enabled, straight into the persist domain when not).
///
/// Scatter-gather payload images (PayloadRef) take the *_payload
/// entry points: byte extents follow the plain byte paths; shadow
/// extents update only the shadow content plane (range -> generator
/// map) with identical timing/accounting and no copies.
class NodeMemory {
 public:
  static constexpr std::uint64_t kDramBase = 1ull << 40;

  NodeMemory(sim::Simulator& sim, const NodeMemoryParams& params)
      : mode_(params.content_mode),
        pool_(sim),
        pm_(sim, "pm", params.pm_capacity, params.pm_timing),
        dram_(sim, "dram", params.dram_capacity, params.dram_timing),
        llc_(sim, pm_, params.llc) {}

  [[nodiscard]] bool is_pm(std::uint64_t addr) const {
    return addr < pm_.capacity();
  }

  [[nodiscard]] ContentMode content_mode() const { return mode_; }
  [[nodiscard]] BufferPool& pool() { return pool_; }
  [[nodiscard]] PmDevice& pm() { return pm_; }
  [[nodiscard]] DramDevice& dram() { return dram_; }
  [[nodiscard]] Llc& llc() { return llc_; }
  [[nodiscard]] const Llc& llc() const { return llc_; }

  // ---- CPU path (cached stores) ----

  void cpu_write(std::uint64_t addr, std::span<const std::byte> data) {
    write_bytes_nofire(addr, data, WritePath::kCpu, /*ddio=*/false);
    fire_watches(addr, data.size());
  }

  void cpu_read(std::uint64_t addr, std::span<std::byte> out) const {
    if (is_pm(addr)) {
      llc_.read(addr, out);
    } else {
      dram_.peek(addr - kDramBase, out);
    }
  }

  // ---- DMA path (RNIC) ----

  /// RNIC DMA store. With DDIO the line lands dirty in the LLC
  /// (volatile!); without DDIO it goes through the iMC into the
  /// persist domain (for PM) or DRAM.
  void dma_write(std::uint64_t addr, std::span<const std::byte> data, bool ddio) {
    write_bytes_nofire(addr, data, WritePath::kDma, ddio);
    fire_watches(addr, data.size());
  }

  /// RNIC DMA load — cache-coherent, so it sees dirty LLC lines. This
  /// is why read-after-write cannot prove persistence under DDIO.
  void dma_read(std::uint64_t addr, std::span<std::byte> out) const {
    cpu_read(addr, out);
  }

  // ---- scatter-gather payload paths ----

  /// Reconstructs [addr, addr+len) as a payload image: shadow ranges
  /// come back as shadow extents (no bytes moved), everything else is
  /// byte-copied from the coherent view into one pooled block. In
  /// kFull mode this is exactly "cpu_read into a pooled buffer".
  [[nodiscard]] PayloadRef read_payload(std::uint64_t addr, std::uint64_t len);

  /// CPU store of (a prefix of) a payload image at `addr`; watches
  /// fire once over the whole written range, like one cpu_write.
  void cpu_write_payload(std::uint64_t addr, const PayloadRef& p,
                         std::uint64_t limit = UINT64_MAX) {
    const std::uint64_t n = write_payload_nofire(addr, p, limit,
                                                 WritePath::kCpu, false);
    fire_watches(addr, n);
  }

  /// DMA store of (a prefix of) a payload image at `addr`.
  void dma_write_payload(std::uint64_t addr, const PayloadRef& p, bool ddio,
                         std::uint64_t limit = UINT64_MAX) {
    const std::uint64_t n = write_payload_nofire(addr, p, limit,
                                                 WritePath::kDma, ddio);
    fire_watches(addr, n);
  }

  /// Non-temporal store of a payload image straight into the persist
  /// domain, bypassing the LLC (the SRFlush server's ntstore path).
  /// PM addresses only.
  void poke_payload_pm(std::uint64_t addr, const PayloadRef& p) {
    const std::uint64_t n = write_payload_nofire(addr, p, UINT64_MAX,
                                                 WritePath::kNtStore, false);
    fire_watches(addr, n);
  }

  /// Crash-instant landing of an in-flight payload DMA: only the
  /// line-aligned prefix that reached the media persists (cf.
  /// PmDevice::torn_write — one torn-write count per in-flight DMA).
  void dma_torn_write(std::uint64_t addr, const PayloadRef& p,
                      std::uint64_t len, std::uint64_t persisted_bytes);

  /// Shadow-plane digest of [addr, addr+len) if the range is tracked
  /// (kShadow payload writes record it); nullopt when untracked (byte
  /// content is authoritative then).
  [[nodiscard]] std::optional<std::uint64_t> shadow_digest_at(
      std::uint64_t addr, std::uint64_t len) const;

  /// Physical-media load: bypasses the LLC and returns exactly what is
  /// in the persist domain *right now* — what a post-crash reader would
  /// see. DRAM addresses read as zeros (they do not survive). This is
  /// the honest basis for durable watermarks and the durability oracle:
  /// a coherent read can overstate persistence (dirty lines), a media
  /// read cannot.
  void persisted_read(std::uint64_t addr, std::span<std::byte> out) const {
    if (is_pm(addr)) {
      pm_.peek(addr, out);
    } else {
      std::fill(out.begin(), out.end(), std::byte{0});
    }
  }

  /// True iff every byte of [addr, addr+len) is in the persist domain
  /// right now (PM address and no dirty cache line over it).
  [[nodiscard]] bool range_persistent(std::uint64_t addr, std::uint64_t len) const {
    if (!is_pm(addr)) return false;
    return !llc_.is_dirty(addr, len);
  }

  /// CPU clflush of a PM range; returns completion time. No-op (start)
  /// for DRAM addresses.
  sim::SimTime clflush(sim::SimTime start, std::uint64_t addr, std::uint64_t len) {
    if (!is_pm(addr)) return start;
    return llc_.clflush(start, addr, len);
  }

  /// Timing helper: completion time of a device write of `bytes` to
  /// `addr` starting at `start` (used by the RNIC DMA engine).
  sim::SimTime device_write_complete_at(sim::SimTime start, std::uint64_t addr,
                                        std::uint64_t bytes) {
    return is_pm(addr) ? pm_.write_complete_at(start, bytes)
                       : dram_.write_complete_at(start, bytes);
  }

  sim::SimTime device_read_complete_at(sim::SimTime start, std::uint64_t addr,
                                       std::uint64_t bytes) {
    return is_pm(addr) ? pm_.read_complete_at(start, bytes)
                       : dram_.read_complete_at(start, bytes);
  }

  /// Pure device write cost (no occupancy claim; see Device::write_cost).
  [[nodiscard]] sim::SimTime device_write_cost(std::uint64_t addr,
                                               std::uint64_t bytes) const {
    return is_pm(addr) ? pm_.write_cost(bytes) : dram_.write_cost(bytes);
  }

  /// Power failure: DRAM and dirty LLC lines are lost; PM survives.
  /// Watches persist (they model software that re-polls after restart).
  void crash() {
    llc_.crash();
    dram_.crash();
    pm_.crash();
  }

  // ---- write watches ----
  //
  // Software polling (a CPU spinning on a message buffer or log slot)
  // is modeled event-style: register a watch over the polled range and
  // the callback fires whenever any write lands in it. The *cost* of
  // polling is charged separately by the host layer; the watch only
  // supplies the wake-up edge. This keeps simulated polling O(1) per
  // write instead of one event per poll iteration.

  using WatchId = std::uint64_t;

  WatchId add_watch(std::uint64_t addr, std::uint64_t len,
                    std::function<void()> on_write) {
    const WatchId id = next_watch_++;
    watches_.push_back(Watch{id, addr, len, std::move(on_write)});
    return id;
  }

  void remove_watch(WatchId id) {
    std::erase_if(watches_, [id](const Watch& w) { return w.id == id; });
  }

  [[nodiscard]] std::size_t watch_count() const { return watches_.size(); }

 private:
  struct Watch {
    WatchId id;
    std::uint64_t addr;
    std::uint64_t len;
    std::function<void()> on_write;
  };

  enum class WritePath : std::uint8_t { kCpu, kDma, kNtStore };

  /// Tracked shadow extent: [start, start+len) holds the bytes of
  /// generator `seed` at stream offset `off`.
  struct ShadowRange {
    std::uint64_t len;
    std::uint64_t seed;
    std::uint64_t off;
  };

  void write_bytes_nofire(std::uint64_t addr, std::span<const std::byte> data,
                          WritePath path, bool ddio);
  /// Lands one shadow extent (timing/accounting like a byte write of
  /// `len`, no copies) and records it in the shadow plane.
  void write_shadow_seg(std::uint64_t addr, std::uint64_t len,
                        std::uint64_t seed, std::uint64_t off, WritePath path,
                        bool ddio);
  /// Removes/clips shadow extents overlapping [addr, addr+len).
  void trim_shadow(std::uint64_t addr, std::uint64_t len);
  /// Writes min(p.size(), limit) bytes of `p` at `addr`; returns the
  /// count. Watches are NOT fired (callers fire once over the range).
  std::uint64_t write_payload_nofire(std::uint64_t addr, const PayloadRef& p,
                                     std::uint64_t limit, WritePath path,
                                     bool ddio);

  void fire_watches(std::uint64_t addr, std::uint64_t len) {
    if (watches_.empty() || len == 0) return;
    // A callback may add/remove watches; run over a snapshot. The
    // snapshot buffers are reused across calls (fire_watches sits on
    // the per-RPC hot path) unless a callback re-enters.
    std::vector<std::function<void()>> local;
    std::vector<std::function<void()>>& cbs =
        fire_depth_ == 0 ? scratch_cbs_ : local;
    ++fire_depth_;
    cbs.clear();
    for (const Watch& w : watches_) {
      if (w.addr < addr + len && addr < w.addr + w.len) {
        cbs.push_back(w.on_write);
      }
    }
    for (auto& cb : cbs) cb();
    cbs.clear();
    --fire_depth_;
  }

  ContentMode mode_;
  BufferPool pool_;
  PmDevice pm_;
  DramDevice dram_;
  Llc llc_;
  std::map<std::uint64_t, ShadowRange> shadow_;  ///< kShadow plane
  std::uint64_t next_watch_ = 1;
  std::vector<Watch> watches_;
  std::vector<std::function<void()>> scratch_cbs_;
  int fire_depth_ = 0;
};

}  // namespace prdma::mem
