# Empty dependencies file for durable_kv_store.
# This may be replaced when dependencies are built.
