file(REMOVE_RECURSE
  "CMakeFiles/raw_verbs_persistence.dir/raw_verbs_persistence.cpp.o"
  "CMakeFiles/raw_verbs_persistence.dir/raw_verbs_persistence.cpp.o.d"
  "raw_verbs_persistence"
  "raw_verbs_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_verbs_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
