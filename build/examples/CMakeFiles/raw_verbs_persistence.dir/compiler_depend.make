# Empty compiler generated dependencies file for raw_verbs_persistence.
# This may be replaced when dependencies are built.
