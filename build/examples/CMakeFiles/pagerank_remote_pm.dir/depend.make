# Empty dependencies file for pagerank_remote_pm.
# This may be replaced when dependencies are built.
