file(REMOVE_RECURSE
  "CMakeFiles/pagerank_remote_pm.dir/pagerank_remote_pm.cpp.o"
  "CMakeFiles/pagerank_remote_pm.dir/pagerank_remote_pm.cpp.o.d"
  "pagerank_remote_pm"
  "pagerank_remote_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_remote_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
