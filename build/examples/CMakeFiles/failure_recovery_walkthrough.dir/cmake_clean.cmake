file(REMOVE_RECURSE
  "CMakeFiles/failure_recovery_walkthrough.dir/failure_recovery_walkthrough.cpp.o"
  "CMakeFiles/failure_recovery_walkthrough.dir/failure_recovery_walkthrough.cpp.o.d"
  "failure_recovery_walkthrough"
  "failure_recovery_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_recovery_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
