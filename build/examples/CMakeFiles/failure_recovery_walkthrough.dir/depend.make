# Empty dependencies file for failure_recovery_walkthrough.
# This may be replaced when dependencies are built.
