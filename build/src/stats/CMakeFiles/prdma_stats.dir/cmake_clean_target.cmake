file(REMOVE_RECURSE
  "libprdma_stats.a"
)
