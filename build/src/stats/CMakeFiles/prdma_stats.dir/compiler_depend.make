# Empty compiler generated dependencies file for prdma_stats.
# This may be replaced when dependencies are built.
