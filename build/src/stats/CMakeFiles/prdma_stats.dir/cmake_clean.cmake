file(REMOVE_RECURSE
  "CMakeFiles/prdma_stats.dir/histogram.cpp.o"
  "CMakeFiles/prdma_stats.dir/histogram.cpp.o.d"
  "libprdma_stats.a"
  "libprdma_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prdma_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
