file(REMOVE_RECURSE
  "CMakeFiles/prdma_mem.dir/llc.cpp.o"
  "CMakeFiles/prdma_mem.dir/llc.cpp.o.d"
  "libprdma_mem.a"
  "libprdma_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prdma_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
