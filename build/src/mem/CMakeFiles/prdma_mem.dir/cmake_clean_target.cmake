file(REMOVE_RECURSE
  "libprdma_mem.a"
)
