# Empty dependencies file for prdma_mem.
# This may be replaced when dependencies are built.
