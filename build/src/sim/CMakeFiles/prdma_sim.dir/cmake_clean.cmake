file(REMOVE_RECURSE
  "CMakeFiles/prdma_sim.dir/simulator.cpp.o"
  "CMakeFiles/prdma_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/prdma_sim.dir/thread_pool.cpp.o"
  "CMakeFiles/prdma_sim.dir/thread_pool.cpp.o.d"
  "libprdma_sim.a"
  "libprdma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prdma_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
