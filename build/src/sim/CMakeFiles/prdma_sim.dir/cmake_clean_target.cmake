file(REMOVE_RECURSE
  "libprdma_sim.a"
)
