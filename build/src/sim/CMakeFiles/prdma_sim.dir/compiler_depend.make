# Empty compiler generated dependencies file for prdma_sim.
# This may be replaced when dependencies are built.
