file(REMOVE_RECURSE
  "libprdma_kv.a"
)
