file(REMOVE_RECURSE
  "CMakeFiles/prdma_kv.dir/ycsb.cpp.o"
  "CMakeFiles/prdma_kv.dir/ycsb.cpp.o.d"
  "libprdma_kv.a"
  "libprdma_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prdma_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
