# Empty compiler generated dependencies file for prdma_kv.
# This may be replaced when dependencies are built.
