file(REMOVE_RECURSE
  "CMakeFiles/prdma_rnic.dir/rnic.cpp.o"
  "CMakeFiles/prdma_rnic.dir/rnic.cpp.o.d"
  "libprdma_rnic.a"
  "libprdma_rnic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prdma_rnic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
