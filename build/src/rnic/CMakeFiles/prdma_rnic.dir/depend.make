# Empty dependencies file for prdma_rnic.
# This may be replaced when dependencies are built.
