file(REMOVE_RECURSE
  "libprdma_rnic.a"
)
