file(REMOVE_RECURSE
  "libprdma_fault.a"
)
