# Empty compiler generated dependencies file for prdma_fault.
# This may be replaced when dependencies are built.
