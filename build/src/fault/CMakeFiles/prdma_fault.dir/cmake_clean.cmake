file(REMOVE_RECURSE
  "CMakeFiles/prdma_fault.dir/experiment.cpp.o"
  "CMakeFiles/prdma_fault.dir/experiment.cpp.o.d"
  "libprdma_fault.a"
  "libprdma_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prdma_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
