# Empty compiler generated dependencies file for prdma_core.
# This may be replaced when dependencies are built.
