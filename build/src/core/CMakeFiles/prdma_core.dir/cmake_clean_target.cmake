file(REMOVE_RECURSE
  "libprdma_core.a"
)
