file(REMOVE_RECURSE
  "CMakeFiles/prdma_core.dir/durable_rpc.cpp.o"
  "CMakeFiles/prdma_core.dir/durable_rpc.cpp.o.d"
  "CMakeFiles/prdma_core.dir/redo_log.cpp.o"
  "CMakeFiles/prdma_core.dir/redo_log.cpp.o.d"
  "CMakeFiles/prdma_core.dir/rpc.cpp.o"
  "CMakeFiles/prdma_core.dir/rpc.cpp.o.d"
  "libprdma_core.a"
  "libprdma_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prdma_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
