file(REMOVE_RECURSE
  "CMakeFiles/prdma_bench_util.dir/micro.cpp.o"
  "CMakeFiles/prdma_bench_util.dir/micro.cpp.o.d"
  "libprdma_bench_util.a"
  "libprdma_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prdma_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
