file(REMOVE_RECURSE
  "libprdma_bench_util.a"
)
