# Empty compiler generated dependencies file for prdma_bench_util.
# This may be replaced when dependencies are built.
