file(REMOVE_RECURSE
  "libprdma_graph.a"
)
