# Empty compiler generated dependencies file for prdma_graph.
# This may be replaced when dependencies are built.
