file(REMOVE_RECURSE
  "CMakeFiles/prdma_graph.dir/pagerank.cpp.o"
  "CMakeFiles/prdma_graph.dir/pagerank.cpp.o.d"
  "libprdma_graph.a"
  "libprdma_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prdma_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
