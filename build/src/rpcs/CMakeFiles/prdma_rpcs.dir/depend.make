# Empty dependencies file for prdma_rpcs.
# This may be replaced when dependencies are built.
