file(REMOVE_RECURSE
  "libprdma_rpcs.a"
)
