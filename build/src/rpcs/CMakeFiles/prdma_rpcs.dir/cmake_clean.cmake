file(REMOVE_RECURSE
  "CMakeFiles/prdma_rpcs.dir/baseline.cpp.o"
  "CMakeFiles/prdma_rpcs.dir/baseline.cpp.o.d"
  "CMakeFiles/prdma_rpcs.dir/registry.cpp.o"
  "CMakeFiles/prdma_rpcs.dir/registry.cpp.o.d"
  "libprdma_rpcs.a"
  "libprdma_rpcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prdma_rpcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
