# Empty compiler generated dependencies file for prdma_net.
# This may be replaced when dependencies are built.
