file(REMOVE_RECURSE
  "libprdma_net.a"
)
