file(REMOVE_RECURSE
  "CMakeFiles/prdma_net.dir/fabric.cpp.o"
  "CMakeFiles/prdma_net.dir/fabric.cpp.o.d"
  "libprdma_net.a"
  "libprdma_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prdma_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
