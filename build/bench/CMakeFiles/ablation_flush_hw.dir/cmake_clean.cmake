file(REMOVE_RECURSE
  "CMakeFiles/ablation_flush_hw.dir/ablation_flush_hw.cpp.o"
  "CMakeFiles/ablation_flush_hw.dir/ablation_flush_hw.cpp.o.d"
  "ablation_flush_hw"
  "ablation_flush_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flush_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
