# Empty compiler generated dependencies file for ablation_flush_hw.
# This may be replaced when dependencies are built.
