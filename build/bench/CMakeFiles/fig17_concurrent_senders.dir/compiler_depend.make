# Empty compiler generated dependencies file for fig17_concurrent_senders.
# This may be replaced when dependencies are built.
