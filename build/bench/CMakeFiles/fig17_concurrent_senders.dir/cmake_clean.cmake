file(REMOVE_RECURSE
  "CMakeFiles/fig17_concurrent_senders.dir/fig17_concurrent_senders.cpp.o"
  "CMakeFiles/fig17_concurrent_senders.dir/fig17_concurrent_senders.cpp.o.d"
  "fig17_concurrent_senders"
  "fig17_concurrent_senders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_concurrent_senders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
