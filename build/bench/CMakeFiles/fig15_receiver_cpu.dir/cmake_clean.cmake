file(REMOVE_RECURSE
  "CMakeFiles/fig15_receiver_cpu.dir/fig15_receiver_cpu.cpp.o"
  "CMakeFiles/fig15_receiver_cpu.dir/fig15_receiver_cpu.cpp.o.d"
  "fig15_receiver_cpu"
  "fig15_receiver_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_receiver_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
