# Empty dependencies file for fig15_receiver_cpu.
# This may be replaced when dependencies are built.
