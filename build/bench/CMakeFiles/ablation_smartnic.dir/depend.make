# Empty dependencies file for ablation_smartnic.
# This may be replaced when dependencies are built.
