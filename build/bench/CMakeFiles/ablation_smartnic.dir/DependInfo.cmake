
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_smartnic.cpp" "bench/CMakeFiles/ablation_smartnic.dir/ablation_smartnic.cpp.o" "gcc" "bench/CMakeFiles/ablation_smartnic.dir/ablation_smartnic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench_util/CMakeFiles/prdma_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rpcs/CMakeFiles/prdma_rpcs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/prdma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rnic/CMakeFiles/prdma_rnic.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/prdma_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/prdma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prdma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/prdma_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
