file(REMOVE_RECURSE
  "CMakeFiles/ablation_smartnic.dir/ablation_smartnic.cpp.o"
  "CMakeFiles/ablation_smartnic.dir/ablation_smartnic.cpp.o.d"
  "ablation_smartnic"
  "ablation_smartnic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smartnic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
