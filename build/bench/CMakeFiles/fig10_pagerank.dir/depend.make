# Empty dependencies file for fig10_pagerank.
# This may be replaced when dependencies are built.
