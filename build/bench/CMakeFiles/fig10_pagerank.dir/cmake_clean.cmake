file(REMOVE_RECURSE
  "CMakeFiles/fig10_pagerank.dir/fig10_pagerank.cpp.o"
  "CMakeFiles/fig10_pagerank.dir/fig10_pagerank.cpp.o.d"
  "fig10_pagerank"
  "fig10_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
