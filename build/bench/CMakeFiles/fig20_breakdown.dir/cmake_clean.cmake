file(REMOVE_RECURSE
  "CMakeFiles/fig20_breakdown.dir/fig20_breakdown.cpp.o"
  "CMakeFiles/fig20_breakdown.dir/fig20_breakdown.cpp.o.d"
  "fig20_breakdown"
  "fig20_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
