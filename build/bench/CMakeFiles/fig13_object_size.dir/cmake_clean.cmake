file(REMOVE_RECURSE
  "CMakeFiles/fig13_object_size.dir/fig13_object_size.cpp.o"
  "CMakeFiles/fig13_object_size.dir/fig13_object_size.cpp.o.d"
  "fig13_object_size"
  "fig13_object_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_object_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
