# Empty compiler generated dependencies file for ext_replication.
# This may be replaced when dependencies are built.
