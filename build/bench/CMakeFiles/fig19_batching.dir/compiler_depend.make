# Empty compiler generated dependencies file for fig19_batching.
# This may be replaced when dependencies are built.
