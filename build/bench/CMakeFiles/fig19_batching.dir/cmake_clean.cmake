file(REMOVE_RECURSE
  "CMakeFiles/fig19_batching.dir/fig19_batching.cpp.o"
  "CMakeFiles/fig19_batching.dir/fig19_batching.cpp.o.d"
  "fig19_batching"
  "fig19_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
