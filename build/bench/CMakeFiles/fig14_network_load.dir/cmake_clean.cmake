file(REMOVE_RECURSE
  "CMakeFiles/fig14_network_load.dir/fig14_network_load.cpp.o"
  "CMakeFiles/fig14_network_load.dir/fig14_network_load.cpp.o.d"
  "fig14_network_load"
  "fig14_network_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_network_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
