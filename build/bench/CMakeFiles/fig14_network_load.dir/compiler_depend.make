# Empty compiler generated dependencies file for fig14_network_load.
# This may be replaced when dependencies are built.
