file(REMOVE_RECURSE
  "CMakeFiles/case_octopus_wflush.dir/case_octopus_wflush.cpp.o"
  "CMakeFiles/case_octopus_wflush.dir/case_octopus_wflush.cpp.o.d"
  "case_octopus_wflush"
  "case_octopus_wflush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_octopus_wflush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
