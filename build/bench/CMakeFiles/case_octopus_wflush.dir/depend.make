# Empty dependencies file for case_octopus_wflush.
# This may be replaced when dependencies are built.
