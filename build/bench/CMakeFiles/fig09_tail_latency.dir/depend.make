# Empty dependencies file for fig09_tail_latency.
# This may be replaced when dependencies are built.
