# Empty dependencies file for fig16_sender_cpu.
# This may be replaced when dependencies are built.
