file(REMOVE_RECURSE
  "CMakeFiles/fig16_sender_cpu.dir/fig16_sender_cpu.cpp.o"
  "CMakeFiles/fig16_sender_cpu.dir/fig16_sender_cpu.cpp.o.d"
  "fig16_sender_cpu"
  "fig16_sender_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_sender_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
