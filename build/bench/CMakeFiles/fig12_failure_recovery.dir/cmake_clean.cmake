file(REMOVE_RECURSE
  "CMakeFiles/fig12_failure_recovery.dir/fig12_failure_recovery.cpp.o"
  "CMakeFiles/fig12_failure_recovery.dir/fig12_failure_recovery.cpp.o.d"
  "fig12_failure_recovery"
  "fig12_failure_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_failure_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
