# Empty dependencies file for fig18_access_pattern.
# This may be replaced when dependencies are built.
