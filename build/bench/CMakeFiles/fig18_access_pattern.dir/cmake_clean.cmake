file(REMOVE_RECURSE
  "CMakeFiles/fig18_access_pattern.dir/fig18_access_pattern.cpp.o"
  "CMakeFiles/fig18_access_pattern.dir/fig18_access_pattern.cpp.o.d"
  "fig18_access_pattern"
  "fig18_access_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_access_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
