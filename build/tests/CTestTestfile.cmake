# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/rnic_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/rpcs_test[1]_include.cmake")
include("/root/repo/build/tests/host_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/bench_util_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
