# Empty dependencies file for rpcs_test.
# This may be replaced when dependencies are built.
