file(REMOVE_RECURSE
  "CMakeFiles/rpcs_test.dir/rpcs_test.cpp.o"
  "CMakeFiles/rpcs_test.dir/rpcs_test.cpp.o.d"
  "rpcs_test"
  "rpcs_test.pdb"
  "rpcs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
