// Topology-graph network API (src/net/topology.*, DESIGN.md §7.6):
// preset construction, deterministic shortest-path ECMP routing, the
// per-port congestion model (incast queueing, PFC pauses) — and the
// headline contracts: the point-to-point preset is byte-identical to
// the historical flat fabric, and a switched cell is byte-identical
// at --engine-threads 1, 2 and 8 (conservative lookahead included).

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_util/micro.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "rpcs/registry.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace prdma {
namespace {

using net::LinkParams;
using net::Topology;
using net::TopologyConfig;
using net::TopologyPreset;

// ------------------------------------------------------ preset names

TEST(TopologyPreset_, NamesRoundTripAndAliasesParse) {
  EXPECT_EQ(net::preset_from_name("point-to-point"),
            TopologyPreset::kPointToPoint);
  EXPECT_EQ(net::preset_from_name("p2p"), TopologyPreset::kPointToPoint);
  EXPECT_EQ(net::preset_from_name("rack"), TopologyPreset::kRack);
  EXPECT_EQ(net::preset_from_name("leaf-spine"), TopologyPreset::kLeafSpine);
  EXPECT_FALSE(net::preset_from_name("torus").has_value());
  EXPECT_FALSE(net::preset_from_name("").has_value());
  for (const auto p : {TopologyPreset::kPointToPoint, TopologyPreset::kRack,
                       TopologyPreset::kLeafSpine}) {
    EXPECT_EQ(net::preset_from_name(net::preset_name(p)), p);
  }
}

// ---------------------------------------------------------- routing

TEST(TopologyGraph, RackRoutesEveryPairThroughTheSingleTor) {
  TopologyConfig cfg;
  cfg.preset = TopologyPreset::kRack;
  const Topology t = net::build_topology(cfg, 5, LinkParams{});
  ASSERT_TRUE(t.switched());
  EXPECT_EQ(t.switch_count(), 1u);
  EXPECT_TRUE(t.routes_computed());
  EXPECT_EQ(t.max_route_hops(), 2u);
  const net::Vertex tor = t.switch_vertex(0);
  for (net::NodeId from = 0; from < 5; ++from) {
    for (net::NodeId to = 0; to < 5; ++to) {
      const net::Route& r = t.route(from, to);
      if (from == to) {
        EXPECT_TRUE(r.ports.empty());
        continue;
      }
      ASSERT_EQ(r.ports.size(), 2u) << from << "->" << to;
      EXPECT_EQ(t.edge(r.ports[0]).from, from);
      EXPECT_EQ(t.edge(r.ports[0]).to, tor);
      EXPECT_EQ(t.edge(r.ports[1]).from, tor);
      EXPECT_EQ(t.edge(r.ports[1]).to, to);
    }
  }
  // Host cables inherit the fabric defaults unchanged.
  EXPECT_EQ(t.min_propagation(), LinkParams{}.propagation);
}

TEST(TopologyGraph, LeafSpineRoutesAreDeterministicAndEcmpSpreads) {
  TopologyConfig cfg;
  cfg.preset = TopologyPreset::kLeafSpine;
  cfg.racks = 2;
  cfg.spines = 4;
  constexpr std::size_t kHosts = 8;
  const Topology a = net::build_topology(cfg, kHosts, LinkParams{});
  const Topology b = net::build_topology(cfg, kHosts, LinkParams{});
  ASSERT_EQ(a.switch_count(), 2u + 4u);  // 2 ToRs + 4 spines
  EXPECT_EQ(a.max_route_hops(), 4u);

  std::set<net::Vertex> spines_used;
  for (net::NodeId from = 0; from < kHosts; ++from) {
    for (net::NodeId to = 0; to < kHosts; ++to) {
      const net::Route& ra = a.route(from, to);
      const net::Route& rb = b.route(from, to);
      // Same graph, same seeds: the table is reproducible build to
      // build (ECMP choices are pure functions of (src, dst, vertex)).
      EXPECT_EQ(ra.ports, rb.ports) << from << "->" << to;
      if (from == to) continue;
      const bool same_rack = (from / 4) == (to / 4);
      ASSERT_EQ(ra.ports.size(), same_rack ? 2u : 4u) << from << "->" << to;
      if (!same_rack) {
        const net::Vertex spine = a.edge(ra.ports[1]).to;
        EXPECT_TRUE(a.is_switch(spine));
        spines_used.insert(spine);
      }
    }
  }
  // 32 directed inter-rack flows hashed over 4 spines must not all
  // collapse onto one trunk.
  EXPECT_GE(spines_used.size(), 2u);

  // Forwarding ownership: every switch is anchored to a host at
  // minimal hop distance, deterministically.
  for (std::uint32_t s = 0; s < a.switch_count(); ++s) {
    EXPECT_EQ(a.switch_owner(s), b.switch_owner(s));
    EXPECT_LT(a.switch_owner(s), kHosts);
  }
}

// --------------------------------------- point-to-point byte parity

struct DriveLog {
  std::vector<std::pair<sim::SimTime, std::uint64_t>> arrivals;
  std::vector<sim::SimTime> accepted;
  std::uint64_t delivered = 0;
  std::uint64_t bytes = 0;
  sim::SimTime min_prop = 0;

  bool operator==(const DriveLog&) const = default;
};

/// Runs the same packet program against a fabric with (or without) the
/// point-to-point topology installed. Background load + jitter make
/// the run consume queueing and noise draws from the shared RNG, so
/// any divergence in draw order or arithmetic shows up as a different
/// arrival timestamp.
DriveLog drive_p2p(bool install_topology) {
  sim::Simulator s;
  sim::Rng rng(11);
  LinkParams def;
  def.background_load = 0.3;
  net::Fabric f(s, rng, def);
  if (install_topology) f.set_topology(TopologyConfig{}, 3);

  DriveLog log;
  for (net::NodeId n = 0; n < 3; ++n) {
    f.register_node(n, [&log, &s](net::Packet p) {
      log.arrivals.emplace_back(s.now(), p.wr_id);
    });
  }
  const auto send_at = [&s, &f, &log](sim::SimTime t, net::NodeId src,
                                      net::NodeId dst, std::uint64_t wr,
                                      std::uint64_t len) {
    s.schedule_at(t, [&f, &log, src, dst, wr, len] {
      net::Packet p;
      p.src = src;
      p.dst = dst;
      p.wr_id = wr;
      p.op = net::WireOp::kWrite;
      p.length = len;
      log.accepted.push_back(f.send(std::move(p)));
    });
  };
  send_at(0, 1, 0, 1, 8192);     // two senders racing for node 0
  send_at(0, 2, 0, 2, 4096);
  send_at(100, 1, 0, 3, 256);    // queues behind wr 1 on the same link
  send_at(5000, 0, 2, 4, 64 * 1024);
  send_at(5000, 0, 1, 5, 512);
  s.run();

  log.delivered = f.packets_delivered();
  log.bytes = f.bytes_carried();
  log.min_prop = f.min_propagation();
  return log;
}

TEST(FabricParity, PointToPointPresetIsByteIdenticalToTheFlatFabric) {
  const DriveLog flat = drive_p2p(false);
  const DriveLog preset = drive_p2p(true);
  EXPECT_EQ(flat, preset);
  ASSERT_EQ(flat.arrivals.size(), 5u);
  ASSERT_EQ(flat.accepted.size(), 5u);
}

TEST(FabricParity, PointToPointInstallsTheGraphButKeepsTheDirectPath) {
  sim::Simulator s;
  sim::Rng rng(1);
  net::Fabric f(s, rng, LinkParams{});
  f.set_topology(TopologyConfig{}, 4);
  ASSERT_NE(f.topology(), nullptr);
  EXPECT_FALSE(f.routed());
  EXPECT_EQ(f.port_count(), 0u);
  EXPECT_EQ(f.switch_hops(), 0u);
}

TEST(RackPartitionMap, MirrorsTheLeafSpineStriping) {
  TopologyConfig cfg;
  cfg.preset = TopologyPreset::kLeafSpine;
  cfg.hosts_per_rack = 4;
  EXPECT_EQ(net::rack_count(cfg, 10), 3u);  // ceil(10/4)
  const auto map = net::rack_partition_map(cfg, 10);
  ASSERT_EQ(map.size(), 10u);
  EXPECT_EQ(map, (std::vector<std::uint32_t>{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}));
  // The striping must match build_topology exactly: host h hangs off
  // tor{map[h]}.
  net::Topology topo = net::build_topology(cfg, 10, LinkParams{});
  for (net::Vertex h = 0; h < 10; ++h) {
    const net::Route& r = topo.route(h, h == 0 ? 9 : 0);
    const net::Vertex first_switch = topo.edge(r.ports[0]).to;
    EXPECT_EQ(topo.switch_name(
                  static_cast<std::uint32_t>(first_switch - 10)),
              "tor" + std::to_string(map[h]));
  }
}

TEST(RackPartitionMap, DegeneratePresetsCoverPerNodeAndSingleRack) {
  TopologyConfig p2p;  // no switches: every host its own rack
  EXPECT_EQ(net::rack_count(p2p, 4), 4u);
  EXPECT_EQ(net::rack_partition_map(p2p, 4),
            (std::vector<std::uint32_t>{0, 1, 2, 3}));
  TopologyConfig rack;
  rack.preset = TopologyPreset::kRack;
  EXPECT_EQ(net::rack_count(rack, 4), 1u);
  EXPECT_EQ(net::rack_partition_map(rack, 4),
            (std::vector<std::uint32_t>{0, 0, 0, 0}));
  TopologyConfig wide;  // more racks than hosts clamps to one per host
  wide.preset = TopologyPreset::kLeafSpine;
  wide.racks = 9;
  EXPECT_EQ(net::rack_count(wide, 3), 3u);
}

// ------------------------------------------------ congestion model

struct IncastStats {
  sim::SimTime peak_queue = 0;
  std::uint64_t switch_hops = 0;
  std::uint64_t pfc_pauses = 0;
};

/// `clients` hosts fire one 64 KB write at host 0 at t=0 through a
/// single ToR: the fan-in port (ToR -> host 0) serializes them and the
/// backlog is the incast signal.
IncastStats incast(std::uint32_t clients, bool pfc) {
  sim::Simulator s;
  sim::Rng rng(5);
  LinkParams def;
  def.jitter_sigma = 0.0;
  net::Fabric f(s, rng, def);
  TopologyConfig cfg;
  cfg.preset = TopologyPreset::kRack;
  cfg.pfc = pfc;
  cfg.pfc_threshold = 1024;
  f.set_topology(cfg, clients + 1);
  for (net::NodeId n = 0; n <= clients; ++n) {
    f.register_node(n, [](net::Packet) {});
  }
  for (net::NodeId c = 1; c <= clients; ++c) {
    s.schedule_at(0, [&f, c] {
      net::Packet p;
      p.src = c;
      p.dst = 0;
      p.op = net::WireOp::kWrite;
      p.length = 64 * 1024;
      (void)f.send(std::move(p));
    });
  }
  s.run();
  IncastStats out;
  out.peak_queue = f.max_port_queue_ns();
  out.switch_hops = f.switch_hops();
  out.pfc_pauses = f.pfc_pauses();
  EXPECT_EQ(f.packets_delivered(), clients);
  return out;
}

TEST(Congestion, IncastGrowsThePortQueueMonotonically) {
  const IncastStats one = incast(1, false);
  const IncastStats two = incast(2, false);
  const IncastStats eight = incast(8, false);
  EXPECT_EQ(one.peak_queue, 0u);   // a lone packet never waits
  EXPECT_GT(two.peak_queue, one.peak_queue);
  EXPECT_GT(eight.peak_queue, two.peak_queue);
  // Each packet traverses the ToR exactly once.
  EXPECT_EQ(one.switch_hops, 1u);
  EXPECT_EQ(eight.switch_hops, 8u);
  EXPECT_EQ(eight.pfc_pauses, 0u);  // pfc off: backlog rides the queue
}

TEST(Congestion, PfcSurfacesPausesPastTheBacklogThreshold) {
  EXPECT_EQ(incast(1, true).pfc_pauses, 0u);
  EXPECT_GT(incast(8, true).pfc_pauses, 0u);
}

// --------------------------------- switched cells x engine threads

bench::MicroConfig switched_cell(const TopologyConfig& topology,
                                 unsigned threads, double sigma = 0.0) {
  bench::MicroConfig mc;
  mc.objects = 512;
  mc.object_size = 4096;
  mc.ops = 600;
  mc.clients = 3;
  mc.jitter_sigma = sigma;
  mc.engine_threads = threads;
  mc.topology = topology;
  return mc;
}

/// Every model-visible field, plus the topology counters (engine_test
/// owns the same check for the point-to-point fabric).
void expect_model_identical(const bench::MicroResult& a,
                            const bench::MicroResult& b,
                            std::string_view what) {
  EXPECT_EQ(a.duration, b.duration) << what;
  EXPECT_EQ(a.ops_completed, b.ops_completed) << what;
  EXPECT_EQ(a.sim_events, b.sim_events) << what;
  EXPECT_EQ(a.latency.count(), b.latency.count()) << what;
  EXPECT_EQ(a.latency.sum(), b.latency.sum()) << what;
  EXPECT_EQ(a.latency.min(), b.latency.min()) << what;
  EXPECT_EQ(a.latency.max(), b.latency.max()) << what;
  EXPECT_EQ(a.durable_latency.sum(), b.durable_latency.sum()) << what;
  EXPECT_EQ(a.server.ops_processed, b.server.ops_processed) << what;
  EXPECT_EQ(a.server.critical_sw_ns, b.server.critical_sw_ns) << what;
  EXPECT_EQ(a.sender_sw_ns, b.sender_sw_ns) << what;
  EXPECT_EQ(a.receiver_sw_ns, b.receiver_sw_ns) << what;
  EXPECT_EQ(a.kops, b.kops) << what;
  EXPECT_EQ(a.net_switch_hops, b.net_switch_hops) << what;
  EXPECT_EQ(a.net_max_port_queue_ns, b.net_max_port_queue_ns) << what;
  EXPECT_EQ(a.net_pfc_pauses, b.net_pfc_pauses) << what;
  EXPECT_EQ(a.net_drops, b.net_drops) << what;
  EXPECT_EQ(a.rnic_retransmits, b.rnic_retransmits) << what;
}

TEST(SwitchedParity, LeafSpineCellsAreByteIdenticalAcrossThreadCounts) {
  TopologyConfig topo;
  topo.preset = TopologyPreset::kLeafSpine;
  topo.racks = 2;
  const auto r1 =
      bench::run_micro(rpcs::System::kWFlushRpc, switched_cell(topo, 1));
  const auto r2 =
      bench::run_micro(rpcs::System::kWFlushRpc, switched_cell(topo, 2));
  const auto r8 =
      bench::run_micro(rpcs::System::kWFlushRpc, switched_cell(topo, 8));
  ASSERT_GT(r1.ops_completed, 0u);
  EXPECT_GT(r1.net_switch_hops, 0u);
  expect_model_identical(r1, r2, "leaf-spine x2");
  expect_model_identical(r1, r8, "leaf-spine x8");
}

TEST(SwitchedParity, JitteredRackCellMatchesSerialExactly) {
  // Per-port RNG streams are seeded from the bind_engine seed and the
  // edge id (never the shared serial stream), and the jitter clamp is
  // unconditional on routed paths — so even a noisy switched cell is
  // reproducible across thread counts.
  TopologyConfig topo;
  topo.preset = TopologyPreset::kRack;
  const auto r1 = bench::run_micro(rpcs::System::kWFlushRpc,
                                   switched_cell(topo, 1, 0.03));
  const auto r2 = bench::run_micro(rpcs::System::kWFlushRpc,
                                   switched_cell(topo, 2, 0.03));
  ASSERT_GT(r1.ops_completed, 0u);
  expect_model_identical(r1, r2, "rack jittered x2");
}

// ------------------------------------- fault routing (DESIGN.md §7.8)

TEST(FaultRouting, MaskedRoutesSteerAroundDownedTrunks) {
  TopologyConfig cfg;
  cfg.preset = TopologyPreset::kLeafSpine;
  cfg.racks = 2;
  cfg.spines = 2;
  constexpr std::size_t kHosts = 8;
  const Topology t = net::build_topology(cfg, kHosts, LinkParams{});

  // An all-up mask reproduces the base table bit for bit.
  std::vector<bool> up(t.edge_count(), false);
  const auto base = t.compute_routes_masked(up);
  for (net::NodeId from = 0; from < kHosts; ++from) {
    for (net::NodeId to = 0; to < kHosts; ++to) {
      EXPECT_EQ(base[from * kHosts + to].ports, t.route(from, to).ports);
    }
  }

  // Kill the trunk the 0 -> 4 inter-rack route rides (ToR -> spine,
  // hop index 1) in both directions: every surviving route must avoid
  // it, and cross-rack pairs must still be connected via the other
  // spine.
  const net::Route& victim = t.route(0, 4);
  ASSERT_EQ(victim.ports.size(), 4u);
  const std::uint32_t dead = victim.ports[1];
  std::vector<bool> mask(t.edge_count(), false);
  mask[dead] = true;
  for (std::uint32_t e = 0; e < t.edge_count(); ++e) {
    if (t.edge(e).from == t.edge(dead).to && t.edge(e).to == t.edge(dead).from) {
      mask[e] = true;
    }
  }
  const auto rerouted = t.compute_routes_masked(mask);
  for (net::NodeId from = 0; from < kHosts; ++from) {
    for (net::NodeId to = 0; to < kHosts; ++to) {
      const net::Route& r = rerouted[from * kHosts + to];
      if (from == to) continue;
      ASSERT_FALSE(r.ports.empty()) << from << "->" << to;
      for (const std::uint32_t e : r.ports) {
        EXPECT_FALSE(mask[e]) << "route " << from << "->" << to
                              << " rides a downed edge";
      }
    }
  }
  // Deterministic: the same mask yields the same table.
  const auto again = t.compute_routes_masked(mask);
  for (std::size_t i = 0; i < rerouted.size(); ++i) {
    EXPECT_EQ(rerouted[i].ports, again[i].ports);
  }
}

TEST(FaultRouting, FullyMaskedDestinationBecomesUnreachable) {
  TopologyConfig cfg;
  cfg.preset = TopologyPreset::kRack;
  const Topology t = net::build_topology(cfg, 3, LinkParams{});
  // Down every cable touching host 2: no route may reach it, and the
  // empty route is the explicit unreachable marker (no silent fallback
  // onto the flat direct table).
  std::vector<bool> mask(t.edge_count(), false);
  for (std::uint32_t e = 0; e < t.edge_count(); ++e) {
    if (t.edge(e).from == 2 || t.edge(e).to == 2) mask[e] = true;
  }
  const auto routes = t.compute_routes_masked(mask);
  EXPECT_TRUE(routes[0 * 3 + 2].ports.empty());
  EXPECT_TRUE(routes[1 * 3 + 2].ports.empty());
  // The rest of the fabric still routes.
  EXPECT_FALSE(routes[0 * 3 + 1].ports.empty());
}

TEST(FaultInjection, SwitchCrashIsAccountedAndHeals) {
  // Single-ToR rack: while the switch is down every destination is
  // unreachable (accounted kUnreachable drops — never silent); after
  // it heals, traffic flows again.
  sim::Simulator s;
  sim::Rng rng(5);
  LinkParams def;
  def.jitter_sigma = 0.0;
  net::Fabric f(s, rng, def);
  TopologyConfig cfg;
  cfg.preset = TopologyPreset::kRack;
  f.set_topology(cfg, 3);
  net::FaultPlan plan;
  net::SwitchFault fault;
  fault.switch_index = 0;
  fault.down_at = 0;
  fault.up_at = 50'000;
  plan.switch_faults.push_back(fault);
  f.set_fault_plan(plan);

  std::uint64_t got = 0;
  for (net::NodeId n = 0; n < 3; ++n) {
    f.register_node(n, [&got](net::Packet) { ++got; });
  }
  const auto fire = [&s, &f](sim::SimTime t) {
    s.schedule_at(t, [&f] {
      net::Packet p;
      p.src = 1;
      p.dst = 0;
      p.op = net::WireOp::kWrite;
      p.length = 4096;
      (void)f.send(std::move(p));
    });
  };
  fire(1000);    // during the crash: unreachable
  fire(60'000);  // after heal: delivered
  s.run();
  EXPECT_EQ(got, 1u);
  EXPECT_EQ(f.packets_dropped(net::DropReason::kUnreachable), 1u);
  EXPECT_EQ(f.packets_dropped(), 1u);
  EXPECT_EQ(f.packets_delivered(), 1u);
}

TEST(FaultParity, FaultedLeafSpineCellIsByteIdenticalAcrossThreadCounts) {
  // The full degraded stack at once — uniform loss, a flapping access
  // cable, a partition that heals — replayed at 1, 2 and 8 engine
  // threads. Fault state is a pure function of simulated time and
  // loss draws come from per-port RNG streams, so every drop and every
  // go-back-N replay must land identically.
  TopologyConfig topo;
  topo.preset = TopologyPreset::kLeafSpine;
  topo.racks = 2;
  const auto cell = [&topo](unsigned threads) {
    bench::MicroConfig mc = switched_cell(topo, threads);
    mc.loss_probability = 0.01;
    mc.retransmit_interval = 500 * sim::kMicrosecond;
    net::LinkFlap flap;
    flap.a = 1;             // client host 1…
    flap.b = 4;             // …to its ToR (switch vertex 0 of 4 hosts)
    flap.down_at = 200 * sim::kMicrosecond;
    flap.up_at = 400 * sim::kMicrosecond;
    mc.faults.link_flaps.push_back(flap);
    net::NetPartition part;
    part.island = {2};
    part.begin = 600 * sim::kMicrosecond;
    part.end = 800 * sim::kMicrosecond;
    mc.faults.partitions.push_back(part);
    return bench::run_micro(rpcs::System::kWFlushRpc, mc);
  };
  const auto r1 = cell(1);
  const auto r2 = cell(2);
  const auto r8 = cell(8);
  ASSERT_GT(r1.ops_completed, 0u);
  EXPECT_GT(r1.net_drops, 0u);
  EXPECT_GT(r1.rnic_retransmits, 0u);
  expect_model_identical(r1, r2, "faulted leaf-spine x2");
  expect_model_identical(r1, r8, "faulted leaf-spine x8");
}

TEST(SwitchedParity, ShortTrunksStayInsideTheConservativeLookahead) {
  // trunk_prop_scale < 1 shrinks the fabric-wide minimum propagation:
  // the engine's lookahead must follow it (min over topology ports,
  // not just direct links), or a spine hop lands below the horizon and
  // the violation guard throws.
  TopologyConfig topo;
  topo.preset = TopologyPreset::kLeafSpine;
  topo.racks = 2;
  topo.trunk_prop_scale = 0.25;
  const auto r1 =
      bench::run_micro(rpcs::System::kWFlushRpc, switched_cell(topo, 1));
  const auto r2 =
      bench::run_micro(rpcs::System::kWFlushRpc, switched_cell(topo, 2));
  ASSERT_GT(r1.ops_completed, 0u);
  expect_model_identical(r1, r2, "short trunks x2");
}

}  // namespace
}  // namespace prdma
