// Tests for the discrete-event engine, coroutine tasks and sync
// primitives — the deterministic substrate everything else builds on.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/thread_pool.hpp"

namespace prdma::sim {
namespace {

using namespace prdma::sim::literals;

// ---------------------------------------------------------------- Simulator

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, SameTimestampRunsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    sim.schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  std::vector<int> expect(50);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(Simulator, NestedSchedulingAdvancesTime) {
  Simulator sim;
  SimTime seen = 0;
  sim.schedule(10, [&] {
    sim.schedule(15, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 25u);
}

TEST(Simulator, SchedulingInThePastClampsToNow) {
  Simulator sim;
  SimTime seen = UINT64_MAX;
  sim.schedule(10, [&] {
    sim.schedule_at(3, [&] { seen = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(seen, 10u);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int ran = 0;
  sim.schedule(10, [&] { ++ran; });
  sim.schedule(20, [&] { ++ran; });
  sim.schedule(21, [&] { ++ran; });
  sim.run_until(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.now(), 20u);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500u);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int ran = 0;
  sim.schedule(1, [&] {
    ++ran;
    sim.stop();
  });
  sim.schedule(2, [&] { ++ran; });
  sim.run();
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.stopped());
  sim.clear_stop();
  sim.run();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  Rng rng(42);
  SimTime last = 0;
  bool monotonic = true;
  for (int i = 0; i < 20000; ++i) {
    sim.schedule(rng.uniform(0, 1'000'000), [&] {
      if (sim.now() < last) monotonic = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(sim.events_executed(), 20000u);
}

TEST(Simulator, SameTimestampFifoStressAcrossCollidingTimes) {
  // Heavy duplicate-timestamp load: 200 events on each of 64 distinct
  // times, scheduled round-robin so collisions interleave in the heap.
  // Within a timestamp, execution order must equal scheduling order —
  // the (time, seq) contract — regardless of heap arity or slot reuse.
  Simulator sim;
  std::vector<std::vector<int>> per_time(64);
  for (int round = 0; round < 200; ++round) {
    for (int t = 0; t < 64; ++t) {
      sim.schedule_at(static_cast<SimTime>(t * 10), [&per_time, t, round] {
        per_time[static_cast<std::size_t>(t)].push_back(round);
      });
    }
  }
  sim.run();
  for (const auto& order : per_time) {
    ASSERT_EQ(order.size(), 200u);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  }
  EXPECT_EQ(sim.events_executed(), 200u * 64u);
}

TEST(Simulator, SteadyStateSchedulingIsAllocationFree) {
  // Warm up to the high-water mark, then keep a self-rescheduling ring
  // running: the slab free-list and heap capacity must absorb all
  // further churn with zero growth of either counter.
  Simulator sim;
  std::uint64_t remaining = 50'000;
  struct Ballast {  // big enough to defeat any std::function-style SSO
    unsigned char bytes[64] = {};
  };
  const Ballast ballast;
  std::function<void()> pump = [&] {
    if (remaining == 0) return;
    --remaining;
    sim.schedule((remaining % 13) + 1, [&sim, &pump, ballast] { pump(); });
  };
  for (int i = 0; i < 100; ++i) pump();
  for (int i = 0; i < 5'000; ++i) sim.step();  // warm-up window
  const std::uint64_t pool0 = sim.pool_allocations();
  const std::uint64_t heap0 = inline_fn_heap_allocs();
  sim.run();
  EXPECT_EQ(remaining, 0u);
  EXPECT_EQ(sim.pool_allocations(), pool0) << "slab or heap vector grew";
  EXPECT_EQ(inline_fn_heap_allocs(), heap0) << "a capture fell back to heap";
}

TEST(Simulator, SlabRecyclesSlotsAcrossEventWaves) {
  Simulator sim;
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 100; ++i) sim.schedule(i, [] {});
    sim.run();
  }
  // Ten waves of 100 concurrent events each: the slab never needs more
  // than one wave's worth of slots (rounded up to the chunk size).
  EXPECT_LE(sim.slab_slots(), 256u);
  EXPECT_EQ(sim.events_executed(), 1000u);
}

// -------------------------------------------------------- InlineFunction

TEST(InlineFunction, SmallCaptureStaysInlineWithoutAllocating) {
  const std::uint64_t heap0 = inline_fn_heap_allocs();
  int hits = 0;
  unsigned char payload[kEventInlineBytes - 16] = {};
  InlineTask task([&hits, payload] { hits += 1 + payload[0]; });
  EXPECT_TRUE(task.is_inline());
  EXPECT_EQ(inline_fn_heap_allocs(), heap0);
  task();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFunction, OversizedCaptureFallsBackToHeapAndStillRuns) {
  const std::uint64_t heap0 = inline_fn_heap_allocs();
  int hits = 0;
  unsigned char payload[kEventInlineBytes + 64] = {};
  InlineTask task([&hits, payload] { hits += 1 + payload[0]; });
  EXPECT_FALSE(task.is_inline());
  EXPECT_EQ(inline_fn_heap_allocs(), heap0 + 1);
  task();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFunction, MoveTransfersTheCallable) {
  int hits = 0;
  InlineTask a([&hits] { ++hits; });
  InlineTask b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  InlineTask c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, MoveOnlyCapturesWork) {
  // std::function rejects move-only captures; the engine's tasks and
  // the pool's jobs rely on them (packaged_task, unique_ptr).
  auto value = std::make_unique<int>(41);
  InlineFunction<int(), 64> fn([v = std::move(value)] { return *v + 1; });
  EXPECT_EQ(fn(), 42);
}

TEST(InlineFunction, DestroysTheCaptureExactlyOnce) {
  const auto token = std::make_shared<int>(7);
  EXPECT_EQ(token.use_count(), 1);
  {
    InlineTask task([token] {});
    EXPECT_EQ(token.use_count(), 2);
    InlineTask moved(std::move(task));
    EXPECT_EQ(token.use_count(), 2) << "relocate must not duplicate";
    moved.reset();
    EXPECT_EQ(token.use_count(), 1);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineFunction, ConsumeInvokesAndLeavesEmpty) {
  const auto token = std::make_shared<int>(0);
  InlineTask task([token] { ++*token; });
  EXPECT_EQ(token.use_count(), 2);
  task.consume();
  EXPECT_EQ(*token, 1);
  EXPECT_FALSE(static_cast<bool>(task));
  EXPECT_EQ(token.use_count(), 1) << "consume must destroy the capture";
}

TEST(InlineFunction, EmplaceReplacesTheHeldCallable) {
  const auto old_token = std::make_shared<int>(0);
  InlineTask task([old_token] {});
  EXPECT_EQ(old_token.use_count(), 2);
  int hits = 0;
  task.emplace([&hits] { ++hits; });
  EXPECT_EQ(old_token.use_count(), 1) << "emplace must destroy the old";
  task();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFunction, PassesArgumentsThrough) {
  InlineFunction<int(int, int), 32> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(20, 22), 42);
}

// ---------------------------------------------------------------- Tasks

TEST(Task, DelayAdvancesSimTime) {
  Simulator sim;
  SimTime when = 0;
  spawn([](Simulator& s, SimTime& out) -> Task<> {
    co_await delay(s, 100_us);
    out = s.now();
  }(sim, when));
  sim.run();
  EXPECT_EQ(when, 100_us);
}

TEST(Task, NestedAwaitPropagatesValues) {
  Simulator sim;
  int result = 0;

  auto inner = [](Simulator& s) -> Task<int> {
    co_await delay(s, 10);
    co_return 21;
  };
  auto outer = [&inner](Simulator& s, int& out) -> Task<> {
    const int a = co_await inner(s);
    const int b = co_await inner(s);
    out = a + b;
  };
  spawn(outer(sim, result));
  sim.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(sim.now(), 20u);
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Simulator sim;
  bool caught = false;

  auto thrower = [](Simulator& s) -> Task<int> {
    co_await delay(s, 5);
    throw std::runtime_error("boom");
  };
  auto catcher = [&thrower](Simulator& s, bool& flag) -> Task<> {
    try {
      (void)co_await thrower(s);
    } catch (const std::runtime_error&) {
      flag = true;
    }
  };
  spawn(catcher(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Task, ImmediatelyReadyTaskCompletesWithoutDelay) {
  Simulator sim;
  std::string out;
  auto instant = []() -> Task<std::string> { co_return "done"; };
  auto runner = [&instant](std::string& o) -> Task<> {
    o = co_await instant();
  };
  spawn(runner(out));
  sim.run();
  EXPECT_EQ(out, "done");
  EXPECT_EQ(sim.now(), 0u);
}

TEST(Task, ManyConcurrentTasksInterleaveDeterministically) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    spawn([](Simulator& s, std::vector<int>& ord, int id) -> Task<> {
      co_await delay(s, static_cast<SimTime>(100 - id * 10));
      ord.push_back(id);
    }(sim, order, i));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}));
}

TEST(Task, MoveOnlyResultTypesWork) {
  Simulator sim;
  std::unique_ptr<int> got;
  auto maker = []() -> Task<std::unique_ptr<int>> {
    co_return std::make_unique<int>(7);
  };
  auto runner = [&maker](std::unique_ptr<int>& out) -> Task<> {
    out = co_await maker();
  };
  spawn(runner(got));
  sim.run();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, 7);
}

// ---------------------------------------------------------------- Event

TEST(Event, WaitersResumeOnSet) {
  Simulator sim;
  Event ev(sim);
  int resumed = 0;
  for (int i = 0; i < 3; ++i) {
    spawn([](Event& e, int& n) -> Task<> {
      const bool ok = co_await e.wait();
      if (ok) ++n;
    }(ev, resumed));
  }
  sim.schedule(50, [&] { ev.set(); });
  sim.run();
  EXPECT_EQ(resumed, 3);
  EXPECT_TRUE(ev.is_set());
}

TEST(Event, WaitOnSetEventIsImmediate) {
  Simulator sim;
  Event ev(sim);
  ev.set();
  bool ok = false;
  spawn([](Event& e, bool& o) -> Task<> { o = co_await e.wait(); }(ev, ok));
  sim.run();
  EXPECT_TRUE(ok);
}

TEST(Event, AbortWakesWaitersWithFalse) {
  Simulator sim;
  Event ev(sim);
  int aborted = 0;
  spawn([](Event& e, int& n) -> Task<> {
    if (!co_await e.wait()) ++n;
  }(ev, aborted));
  sim.schedule(10, [&] { ev.abort(); });
  sim.run();
  EXPECT_EQ(aborted, 1);
  EXPECT_FALSE(ev.is_set());
}

TEST(Event, ResetReArms) {
  Simulator sim;
  Event ev(sim);
  ev.set();
  ev.reset();
  EXPECT_FALSE(ev.is_set());
  bool ok = false;
  spawn([](Event& e, bool& o) -> Task<> { o = co_await e.wait(); }(ev, ok));
  sim.schedule(5, [&] { ev.set(); });
  sim.run();
  EXPECT_TRUE(ok);
}

// ---------------------------------------------------------------- Channel

TEST(Channel, DeliversInFifoOrder) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  spawn([](Channel<int>& c, std::vector<int>& out) -> Task<> {
    for (;;) {
      auto v = co_await c.recv();
      if (!v) break;
      out.push_back(*v);
    }
  }(ch, got));
  sim.schedule(1, [&] {
    ch.send(1);
    ch.send(2);
    ch.send(3);
  });
  sim.schedule(2, [&] { ch.close(); });
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Channel, RecvBeforeSendSuspends) {
  Simulator sim;
  Channel<int> ch(sim);
  SimTime when = 0;
  int got = 0;
  spawn([](Simulator& s, Channel<int>& c, SimTime& w, int& g) -> Task<> {
    auto v = co_await c.recv();
    w = s.now();
    g = v.value_or(-1);
  }(sim, ch, when, got));
  sim.schedule(77, [&] { ch.send(9); });
  sim.run();
  EXPECT_EQ(got, 9);
  EXPECT_EQ(when, 77u);
}

TEST(Channel, MultipleWaitersServedFifo) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<std::pair<int, int>> got;  // (waiter, value)
  for (int w = 0; w < 3; ++w) {
    spawn([](Channel<int>& c, std::vector<std::pair<int, int>>& out,
             int waiter) -> Task<> {
      auto v = co_await c.recv();
      if (v) out.emplace_back(waiter, *v);
    }(ch, got, w));
  }
  sim.schedule(1, [&] {
    ch.send(10);
    ch.send(20);
    ch.send(30);
  });
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], std::make_pair(0, 10));
  EXPECT_EQ(got[1], std::make_pair(1, 20));
  EXPECT_EQ(got[2], std::make_pair(2, 30));
}

TEST(Channel, CloseWakesPendingWaiterWithNullopt) {
  Simulator sim;
  Channel<int> ch(sim);
  bool got_nullopt = false;
  spawn([](Channel<int>& c, bool& flag) -> Task<> {
    auto v = co_await c.recv();
    flag = !v.has_value();
  }(ch, got_nullopt));
  sim.schedule(10, [&] { ch.close(); });
  sim.run();
  EXPECT_TRUE(got_nullopt);
}

TEST(Channel, SendToClosedChannelIsDropped) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.close();
  ch.send(5);
  EXPECT_EQ(ch.size(), 0u);
}

TEST(Channel, ResetDropsQueueAndReopens) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.send(1);
  ch.send(2);
  ch.reset();
  EXPECT_EQ(ch.size(), 0u);
  EXPECT_FALSE(ch.closed());
  ch.send(3);
  EXPECT_EQ(ch.size(), 1u);
}

TEST(Channel, TryRecvDoesNotBlock) {
  Simulator sim;
  Channel<int> ch(sim);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(4);
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 4);
}

// ---------------------------------------------------------------- Semaphore

TEST(Semaphore, LimitsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 2);
  int active = 0;
  int peak = 0;
  for (int i = 0; i < 6; ++i) {
    spawn([](Simulator& s, Semaphore& sm, int& act, int& pk) -> Task<> {
      co_await sm.acquire();
      SemaphoreGuard guard(sm);
      ++act;
      pk = std::max(pk, act);
      co_await delay(s, 100);
      --act;
    }(sim, sem, active, peak));
  }
  sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(active, 0);
  EXPECT_EQ(sem.available(), 2u);
}

TEST(Semaphore, ReleaseWithoutWaitersIncrementsCount) {
  Simulator sim;
  Semaphore sem(sim, 0);
  sem.release(3);
  EXPECT_EQ(sem.available(), 3u);
}

// ---------------------------------------------------------------- WaitGroup

TEST(WaitGroup, WaitsForAllTasks) {
  Simulator sim;
  WaitGroup wg(sim);
  SimTime done_at = 0;
  wg.add(3);
  for (int i = 1; i <= 3; ++i) {
    spawn([](Simulator& s, WaitGroup& w, int id) -> Task<> {
      co_await delay(s, static_cast<SimTime>(id * 100));
      w.done();
    }(sim, wg, i));
  }
  spawn([](Simulator& s, WaitGroup& w, SimTime& at) -> Task<> {
    co_await w.wait();
    at = s.now();
  }(sim, wg, done_at));
  sim.run();
  EXPECT_EQ(done_at, 300u);
}

TEST(WaitGroup, WaitWithNothingOutstandingResolves) {
  Simulator sim;
  WaitGroup wg(sim);
  bool resolved = false;
  spawn([](WaitGroup& w, bool& f) -> Task<> {
    co_await w.wait();
    f = true;
  }(wg, resolved));
  sim.run();
  EXPECT_TRUE(resolved);
}

// ---------------------------------------------------------------- Rng

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(7);
  Rng b(7);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 2.5);
}

TEST(Rng, LognormalJitterMedianNearOne) {
  Rng rng(13);
  std::vector<double> v;
  for (int i = 0; i < 10001; ++i) v.push_back(rng.lognormal_jitter(0.3));
  std::nth_element(v.begin(), v.begin() + 5000, v.end());
  EXPECT_NEAR(v[5000], 1.0, 0.05);
  EXPECT_EQ(rng.lognormal_jitter(0.0), 1.0);
}

// ---------------------------------------------------------------- Zipfian

class ZipfianTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfianTest, StaysInRangeAndIsSkewed) {
  const double theta = GetParam();
  const std::uint64_t n = 1000;
  ZipfianGenerator zipf(n, theta);
  Rng rng(17);
  std::vector<std::uint64_t> counts(n, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    const auto k = zipf.next(rng);
    ASSERT_LT(k, n);
    ++counts[k];
  }
  // Head (top 1% of keys) must take a disproportionate share.
  std::uint64_t head = 0;
  for (std::size_t i = 0; i < n / 100; ++i) head += counts[i];
  const double head_share = static_cast<double>(head) / draws;
  EXPECT_GT(head_share, 0.15) << "theta=" << theta;
  // Rank 0 should be the most popular key (within sampling noise).
  const auto most = std::max_element(counts.begin(), counts.end());
  EXPECT_LE(std::distance(counts.begin(), most), 3);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfianTest, ::testing::Values(0.7, 0.9, 0.99));

TEST(LatestGenerator, PrefersNewestKeys) {
  LatestGenerator latest(100);
  Rng rng(23);
  int newest_hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (latest.next(rng) >= 90) ++newest_hits;
  }
  EXPECT_GT(newest_hits, 5000);
  latest.grow();
  EXPECT_EQ(latest.size(), 101u);
  for (int i = 0; i < 100; ++i) EXPECT_LT(latest.next(rng), 101u);
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 7; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 7);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { hits[i]. fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("bad");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, SubmitAcceptsMoveOnlyCallables) {
  ThreadPool pool(2);
  auto p = std::make_unique<int>(9);
  auto f = pool.submit([p = std::move(p)] { return *p * 2; });
  EXPECT_EQ(f.get(), 18);
}

TEST(ThreadPool, ParallelForPropagatesLowestIndexException) {
  // Two cells throw; which one a worker reaches first is a race, but
  // the caller must always observe the LOWEST failing index so error
  // reports don't depend on thread scheduling.
  ThreadPool pool(4);
  for (int round = 0; round < 25; ++round) {
    try {
      pool.parallel_for(64, [](std::size_t i) {
        if (i == 11 || i == 47) {
          throw std::runtime_error("cell " + std::to_string(i));
        }
      });
      FAIL() << "parallel_for must rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "cell 11");
    }
  }
}

TEST(ThreadPool, ParallelForRunsEveryCellDespiteAnException) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(32);
  EXPECT_THROW(pool.parallel_for(32,
                                 [&](std::size_t i) {
                                   hits[i].fetch_add(1);
                                   if (i == 5) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ------------------------------------------------------------- format_time

TEST(FormatTime, AdaptiveUnits) {
  EXPECT_EQ(format_time(500), "500ns");
  EXPECT_EQ(format_time(1500), "1.50us");
  EXPECT_EQ(format_time(2'500'000), "2.50ms");
  EXPECT_EQ(format_time(3'000'000'000ull), "3.000s");
}

TEST(TransferTime, NeverFreeForNonZeroBytes) {
  EXPECT_EQ(transfer_time(0, 1e9), 0u);
  EXPECT_GE(transfer_time(1, 100e9), 1u);
  EXPECT_EQ(transfer_time(1000, 1e9), 1000u);  // 1 GB/s -> 1 ns/B
}

}  // namespace
}  // namespace prdma::sim

// ===================================================================
// End-to-end determinism: the engine's contract is that identical
// seeds give bit-identical runs. Hold it through the FULL stack — all
// thirteen RPC systems, through the crash/recovery harness and the
// micro-benchmark — so any hidden nondeterminism (iteration order,
// uninitialised state, wall-clock leakage) fails loudly here instead
// of surfacing as an unreproducible crash schedule.
// ===================================================================

#include "bench_util/micro.hpp"
#include "fault/experiment.hpp"

namespace prdma::sim {
namespace {

TEST(Determinism, FailureRunsAreBitIdenticalForEverySystem) {
  for (const auto& info : rpcs::all_systems()) {
    fault::FailureRunConfig cfg;
    cfg.ops = 160;
    cfg.crashes = 1;
    cfg.window = 4;
    cfg.value_size = 1024;
    cfg.seed = 7;
    cfg.heavy_processing = false;
    const auto a = fault::run_with_failures(info.system, cfg);
    const auto b = fault::run_with_failures(info.system, cfg);
    EXPECT_EQ(a.total, b.total) << info.name;
    EXPECT_EQ(a.ops_completed, b.ops_completed) << info.name;
    EXPECT_EQ(a.resends, b.resends) << info.name;
    EXPECT_EQ(a.replayed, b.replayed) << info.name;
    EXPECT_EQ(a.crashes, b.crashes) << info.name;
    EXPECT_EQ(a.oracle_violations, b.oracle_violations) << info.name;
  }
}

TEST(Determinism, MicroBenchIsBitIdenticalForEverySystem) {
  for (const auto& info : rpcs::all_systems()) {
    bench::MicroConfig cfg;
    cfg.objects = 512;
    cfg.object_size = 1024;
    cfg.ops = 300;
    cfg.seed = 11;
    const auto a = bench::run_micro(info.system, cfg);
    const auto b = bench::run_micro(info.system, cfg);
    EXPECT_EQ(a.duration, b.duration) << info.name;
    EXPECT_EQ(a.ops_completed, b.ops_completed) << info.name;
    EXPECT_EQ(a.kops, b.kops) << info.name;
    EXPECT_EQ(a.latency.mean(), b.latency.mean()) << info.name;
    EXPECT_EQ(a.latency.p99(), b.latency.p99()) << info.name;
    EXPECT_EQ(a.server.ops_processed, b.server.ops_processed) << info.name;
    EXPECT_EQ(a.server.critical_sw_ns, b.server.critical_sw_ns) << info.name;
  }
}

}  // namespace
}  // namespace prdma::sim
