// Tests for the memory substrate: device content + timing, the DDIO
// cache model, and the node memory map's persistence semantics.

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "mem/device.hpp"
#include "mem/llc.hpp"
#include "mem/node_memory.hpp"
#include "sim/simulator.hpp"

namespace prdma::mem {
namespace {

using prdma::sim::SimTime;
using prdma::sim::Simulator;

std::vector<std::byte> bytes(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  out.reserve(vals.size());
  for (int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed * 131 + i) & 0xFF);
  }
  return out;
}

DeviceTiming fast_timing() {
  return DeviceTiming{100, 50, 10e9, 5e9};
}

// ---------------------------------------------------------------- Device

TEST(Device, PokePeekRoundTrip) {
  Simulator sim;
  PmDevice pm(sim, "pm", 4096, fast_timing());
  const auto data = pattern(256);
  pm.poke(100, data);
  std::vector<std::byte> out(256);
  pm.peek(100, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(pm.bytes_written(), 256u);
}

TEST(Device, ViewAliasesContent) {
  Simulator sim;
  PmDevice pm(sim, "pm", 1024, fast_timing());
  pm.poke(0, bytes({1, 2, 3}));
  const auto v = pm.view(0, 3);
  EXPECT_EQ(static_cast<int>(v[1]), 2);
}

TEST(Device, WriteTimingIncludesLatencyAndBandwidth) {
  Simulator sim;
  PmDevice pm(sim, "pm", 1 << 20, DeviceTiming{0, 100, 1e9, 1e9});
  // 1 GB/s => 1 ns per byte. 1000 bytes at t=0 -> latency 100 + 1000.
  EXPECT_EQ(pm.write_complete_at(0, 1000), 1100u);
}

TEST(Device, BandwidthSerializesBackToBackWrites) {
  Simulator sim;
  PmDevice pm(sim, "pm", 1 << 20, DeviceTiming{0, 0, 1e9, 1e9});
  const SimTime t1 = pm.write_complete_at(0, 1000);
  const SimTime t2 = pm.write_complete_at(0, 1000);  // queues behind first
  EXPECT_EQ(t1, 1000u);
  EXPECT_EQ(t2, 2000u);
}

TEST(Device, IdleGapDoesNotCarryOccupancy) {
  Simulator sim;
  PmDevice pm(sim, "pm", 1 << 20, DeviceTiming{0, 0, 1e9, 1e9});
  (void)pm.write_complete_at(0, 1000);
  // Device free again by t=5000; a later write starts fresh.
  EXPECT_EQ(pm.write_complete_at(5000, 100), 5100u);
}

TEST(Device, PmSurvivesCrashDramDoesNot) {
  Simulator sim;
  PmDevice pm(sim, "pm", 1024, fast_timing());
  DramDevice dram(sim, "dram", 1024, fast_timing());
  const auto data = pattern(64);
  pm.poke(0, data);
  dram.poke(0, data);
  pm.crash();
  dram.crash();
  std::vector<std::byte> out(64);
  pm.peek(0, out);
  EXPECT_EQ(out, data);
  dram.peek(0, out);
  EXPECT_EQ(out, std::vector<std::byte>(64, std::byte{0}));
  EXPECT_TRUE(pm.persistent());
  EXPECT_FALSE(dram.persistent());
}

// ------------------------------------------------------------------- Llc

struct LlcFixture : ::testing::Test {
  Simulator sim;
  PmDevice pm{sim, "pm", 1 << 20, DeviceTiming{170, 90, 6e9, 2e9}};
  LlcParams params{};
  Llc llc{sim, pm, params};
};

TEST_F(LlcFixture, WriteIsDirtyUntilFlush) {
  const auto data = pattern(128);
  llc.write(256, data);
  EXPECT_TRUE(llc.is_dirty(256, 128));
  EXPECT_EQ(llc.dirty_lines(), 2u);

  // PM content must still be stale.
  std::vector<std::byte> raw(128);
  pm.peek(256, raw);
  EXPECT_EQ(raw, std::vector<std::byte>(128, std::byte{0}));

  // But a coherent read sees the new data (the DDIO trap).
  std::vector<std::byte> coherent(128);
  llc.read(256, coherent);
  EXPECT_EQ(coherent, data);
}

TEST_F(LlcFixture, ClflushPersistsAndCleans) {
  const auto data = pattern(64);
  llc.write(0, data);
  const SimTime done = llc.clflush(1000, 0, 64);
  EXPECT_GT(done, 1000u);
  EXPECT_FALSE(llc.is_dirty(0, 64));
  std::vector<std::byte> raw(64);
  pm.peek(0, raw);
  EXPECT_EQ(raw, data);
  EXPECT_EQ(llc.lines_flushed(), 1u);
}

TEST_F(LlcFixture, ClflushOfCleanRangeOnlyCostsFence) {
  const SimTime done = llc.clflush(500, 4096, 64);
  EXPECT_EQ(done, 500 + params.sfence_cost);
}

TEST_F(LlcFixture, CrashDropsDirtyLines) {
  const auto data = pattern(64);
  llc.write(128, data);
  llc.crash();
  EXPECT_EQ(llc.dirty_lines(), 0u);
  EXPECT_EQ(llc.lines_lost_to_crash(), 1u);
  std::vector<std::byte> raw(64);
  pm.peek(128, raw);
  EXPECT_EQ(raw, std::vector<std::byte>(64, std::byte{0}))
      << "crash must not persist dirty lines";
}

TEST_F(LlcFixture, PartialLineWritePreservesRestOfLine) {
  // Pre-existing persistent data in the middle of a line.
  const auto old_data = pattern(64, 3);
  pm.poke(0, old_data);
  llc.write(10, bytes({0xAA, 0xBB}));
  std::vector<std::byte> out(64);
  llc.read(0, out);
  auto expect = old_data;
  expect[10] = std::byte{0xAA};
  expect[11] = std::byte{0xBB};
  EXPECT_EQ(out, expect) << "line fill must merge with backing contents";
}

TEST_F(LlcFixture, EvictionWritesBackOldestLine) {
  LlcParams small;
  small.capacity_lines = 4;
  Llc tiny(sim, pm, small);
  for (std::uint64_t i = 0; i < 6; ++i) {
    tiny.write(i * kCacheLine, pattern(kCacheLine, static_cast<int>(i)));
  }
  EXPECT_EQ(tiny.evictions(), 2u);
  EXPECT_EQ(tiny.dirty_lines(), 4u);
  // The first (evicted) line is now physically in PM.
  std::vector<std::byte> raw(kCacheLine);
  pm.peek(0, raw);
  EXPECT_EQ(raw, pattern(kCacheLine, 0));
}

TEST_F(LlcFixture, FlushTimingScalesWithLineCount) {
  llc.write(0, pattern(64));
  const SimTime one = llc.clflush(0, 0, 64) ;
  llc.write(1024, pattern(256));
  const SimTime four = llc.clflush(100000, 1024, 256) - 100000;
  EXPECT_GT(four, one);
}

// ------------------------------------------------------------ NodeMemory

struct NodeMemFixture : ::testing::Test {
  Simulator sim;
  NodeMemoryParams params;
  NodeMemFixture() {
    params.pm_capacity = 1 << 20;
    params.dram_capacity = 1 << 20;
  }
};

TEST_F(NodeMemFixture, AddressMapRoutesPmAndDram) {
  NodeMemory mem(sim, params);
  EXPECT_TRUE(mem.is_pm(0));
  EXPECT_TRUE(mem.is_pm(params.pm_capacity - 1));
  EXPECT_FALSE(mem.is_pm(NodeMemory::kDramBase));

  const auto data = pattern(32);
  mem.cpu_write(NodeMemory::kDramBase + 64, data);
  std::vector<std::byte> out(32);
  mem.cpu_read(NodeMemory::kDramBase + 64, out);
  EXPECT_EQ(out, data);
}

TEST_F(NodeMemFixture, CpuStoreToPmIsVolatileUntilFlush) {
  NodeMemory mem(sim, params);
  const auto data = pattern(64);
  mem.cpu_write(512, data);
  EXPECT_FALSE(mem.range_persistent(512, 64));
  mem.clflush(0, 512, 64);
  EXPECT_TRUE(mem.range_persistent(512, 64));
  std::vector<std::byte> raw(64);
  mem.pm().peek(512, raw);
  EXPECT_EQ(raw, data);
}

TEST_F(NodeMemFixture, DmaWithoutDdioLandsInPersistDomain) {
  NodeMemory mem(sim, params);
  const auto data = pattern(128);
  mem.dma_write(1024, data, /*ddio=*/false);
  EXPECT_TRUE(mem.range_persistent(1024, 128));
  std::vector<std::byte> raw(128);
  mem.pm().peek(1024, raw);
  EXPECT_EQ(raw, data);
}

TEST_F(NodeMemFixture, DmaWithDdioIsVolatileButCoherent) {
  NodeMemory mem(sim, params);
  const auto data = pattern(128);
  mem.dma_write(1024, data, /*ddio=*/true);
  EXPECT_FALSE(mem.range_persistent(1024, 128));

  // A read-after-write check would succeed even though nothing is
  // persistent yet — the paper's §2.4 failure mode.
  std::vector<std::byte> readback(128);
  mem.dma_read(1024, readback);
  EXPECT_EQ(readback, data);

  mem.crash();
  std::vector<std::byte> raw(128);
  mem.pm().peek(1024, raw);
  EXPECT_EQ(raw, std::vector<std::byte>(128, std::byte{0}))
      << "DDIO-buffered data must be lost on crash";
}

TEST_F(NodeMemFixture, CrashWipesDramKeepsPm) {
  NodeMemory mem(sim, params);
  const auto data = pattern(64);
  mem.dma_write(0, data, /*ddio=*/false);
  mem.cpu_write(NodeMemory::kDramBase, data);
  mem.crash();
  std::vector<std::byte> out(64);
  mem.cpu_read(0, out);
  EXPECT_EQ(out, data);
  mem.cpu_read(NodeMemory::kDramBase, out);
  EXPECT_EQ(out, std::vector<std::byte>(64, std::byte{0}));
}

TEST_F(NodeMemFixture, RangePersistentFalseForDram) {
  NodeMemory mem(sim, params);
  EXPECT_FALSE(mem.range_persistent(NodeMemory::kDramBase, 8));
}

TEST_F(NodeMemFixture, DeviceTimingHelpersRouteByAddress) {
  NodeMemory mem(sim, params);
  const SimTime pm_t = mem.device_write_complete_at(0, 0, 4096);
  NodeMemory mem2(sim, params);
  const SimTime dram_t =
      mem2.device_write_complete_at(0, NodeMemory::kDramBase, 4096);
  EXPECT_GT(pm_t, dram_t) << "PM writes are slower than DRAM";
}

}  // namespace
}  // namespace prdma::mem
