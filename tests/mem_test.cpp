// Tests for the memory substrate: device content + timing, the DDIO
// cache model, and the node memory map's persistence semantics.

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "mem/buffer_pool.hpp"
#include "mem/device.hpp"
#include "mem/llc.hpp"
#include "mem/node_memory.hpp"
#include "sim/simulator.hpp"

namespace prdma::mem {
namespace {

using prdma::sim::SimTime;
using prdma::sim::Simulator;

std::vector<std::byte> bytes(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  out.reserve(vals.size());
  for (int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed * 131 + i) & 0xFF);
  }
  return out;
}

DeviceTiming fast_timing() {
  return DeviceTiming{100, 50, 10e9, 5e9};
}

// ---------------------------------------------------------------- Device

TEST(Device, PokePeekRoundTrip) {
  Simulator sim;
  PmDevice pm(sim, "pm", 4096, fast_timing());
  const auto data = pattern(256);
  pm.poke(100, data);
  std::vector<std::byte> out(256);
  pm.peek(100, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(pm.bytes_written(), 256u);
}

TEST(Device, ViewAliasesContent) {
  Simulator sim;
  PmDevice pm(sim, "pm", 1024, fast_timing());
  pm.poke(0, bytes({1, 2, 3}));
  const auto v = pm.view(0, 3);
  EXPECT_EQ(static_cast<int>(v[1]), 2);
}

TEST(Device, WriteTimingIncludesLatencyAndBandwidth) {
  Simulator sim;
  PmDevice pm(sim, "pm", 1 << 20, DeviceTiming{0, 100, 1e9, 1e9});
  // 1 GB/s => 1 ns per byte. 1000 bytes at t=0 -> latency 100 + 1000.
  EXPECT_EQ(pm.write_complete_at(0, 1000), 1100u);
}

TEST(Device, BandwidthSerializesBackToBackWrites) {
  Simulator sim;
  PmDevice pm(sim, "pm", 1 << 20, DeviceTiming{0, 0, 1e9, 1e9});
  const SimTime t1 = pm.write_complete_at(0, 1000);
  const SimTime t2 = pm.write_complete_at(0, 1000);  // queues behind first
  EXPECT_EQ(t1, 1000u);
  EXPECT_EQ(t2, 2000u);
}

TEST(Device, IdleGapDoesNotCarryOccupancy) {
  Simulator sim;
  PmDevice pm(sim, "pm", 1 << 20, DeviceTiming{0, 0, 1e9, 1e9});
  (void)pm.write_complete_at(0, 1000);
  // Device free again by t=5000; a later write starts fresh.
  EXPECT_EQ(pm.write_complete_at(5000, 100), 5100u);
}

TEST(Device, PmSurvivesCrashDramDoesNot) {
  Simulator sim;
  PmDevice pm(sim, "pm", 1024, fast_timing());
  DramDevice dram(sim, "dram", 1024, fast_timing());
  const auto data = pattern(64);
  pm.poke(0, data);
  dram.poke(0, data);
  pm.crash();
  dram.crash();
  std::vector<std::byte> out(64);
  pm.peek(0, out);
  EXPECT_EQ(out, data);
  dram.peek(0, out);
  EXPECT_EQ(out, std::vector<std::byte>(64, std::byte{0}));
  EXPECT_TRUE(pm.persistent());
  EXPECT_FALSE(dram.persistent());
}

// ------------------------------------------------------------------- Llc

struct LlcFixture : ::testing::Test {
  Simulator sim;
  PmDevice pm{sim, "pm", 1 << 20, DeviceTiming{170, 90, 6e9, 2e9}};
  LlcParams params{};
  Llc llc{sim, pm, params};
};

TEST_F(LlcFixture, WriteIsDirtyUntilFlush) {
  const auto data = pattern(128);
  llc.write(256, data);
  EXPECT_TRUE(llc.is_dirty(256, 128));
  EXPECT_EQ(llc.dirty_lines(), 2u);

  // PM content must still be stale.
  std::vector<std::byte> raw(128);
  pm.peek(256, raw);
  EXPECT_EQ(raw, std::vector<std::byte>(128, std::byte{0}));

  // But a coherent read sees the new data (the DDIO trap).
  std::vector<std::byte> coherent(128);
  llc.read(256, coherent);
  EXPECT_EQ(coherent, data);
}

TEST_F(LlcFixture, ClflushPersistsAndCleans) {
  const auto data = pattern(64);
  llc.write(0, data);
  const SimTime done = llc.clflush(1000, 0, 64);
  EXPECT_GT(done, 1000u);
  EXPECT_FALSE(llc.is_dirty(0, 64));
  std::vector<std::byte> raw(64);
  pm.peek(0, raw);
  EXPECT_EQ(raw, data);
  EXPECT_EQ(llc.lines_flushed(), 1u);
}

TEST_F(LlcFixture, ClflushOfCleanRangeOnlyCostsFence) {
  const SimTime done = llc.clflush(500, 4096, 64);
  EXPECT_EQ(done, 500 + params.sfence_cost);
}

TEST_F(LlcFixture, CrashDropsDirtyLines) {
  const auto data = pattern(64);
  llc.write(128, data);
  llc.crash();
  EXPECT_EQ(llc.dirty_lines(), 0u);
  EXPECT_EQ(llc.lines_lost_to_crash(), 1u);
  std::vector<std::byte> raw(64);
  pm.peek(128, raw);
  EXPECT_EQ(raw, std::vector<std::byte>(64, std::byte{0}))
      << "crash must not persist dirty lines";
}

TEST_F(LlcFixture, PartialLineWritePreservesRestOfLine) {
  // Pre-existing persistent data in the middle of a line.
  const auto old_data = pattern(64, 3);
  pm.poke(0, old_data);
  llc.write(10, bytes({0xAA, 0xBB}));
  std::vector<std::byte> out(64);
  llc.read(0, out);
  auto expect = old_data;
  expect[10] = std::byte{0xAA};
  expect[11] = std::byte{0xBB};
  EXPECT_EQ(out, expect) << "line fill must merge with backing contents";
}

TEST_F(LlcFixture, EvictionWritesBackOldestLine) {
  LlcParams small;
  small.capacity_lines = 4;
  Llc tiny(sim, pm, small);
  for (std::uint64_t i = 0; i < 6; ++i) {
    tiny.write(i * kCacheLine, pattern(kCacheLine, static_cast<int>(i)));
  }
  EXPECT_EQ(tiny.evictions(), 2u);
  EXPECT_EQ(tiny.dirty_lines(), 4u);
  // The first (evicted) line is now physically in PM.
  std::vector<std::byte> raw(kCacheLine);
  pm.peek(0, raw);
  EXPECT_EQ(raw, pattern(kCacheLine, 0));
}

TEST_F(LlcFixture, FlushTimingScalesWithLineCount) {
  llc.write(0, pattern(64));
  const SimTime one = llc.clflush(0, 0, 64) ;
  llc.write(1024, pattern(256));
  const SimTime four = llc.clflush(100000, 1024, 256) - 100000;
  EXPECT_GT(four, one);
}

// ------------------------------------------------------------ NodeMemory

struct NodeMemFixture : ::testing::Test {
  Simulator sim;
  NodeMemoryParams params;
  NodeMemFixture() {
    params.pm_capacity = 1 << 20;
    params.dram_capacity = 1 << 20;
  }
};

TEST_F(NodeMemFixture, AddressMapRoutesPmAndDram) {
  NodeMemory mem(sim, params);
  EXPECT_TRUE(mem.is_pm(0));
  EXPECT_TRUE(mem.is_pm(params.pm_capacity - 1));
  EXPECT_FALSE(mem.is_pm(NodeMemory::kDramBase));

  const auto data = pattern(32);
  mem.cpu_write(NodeMemory::kDramBase + 64, data);
  std::vector<std::byte> out(32);
  mem.cpu_read(NodeMemory::kDramBase + 64, out);
  EXPECT_EQ(out, data);
}

TEST_F(NodeMemFixture, CpuStoreToPmIsVolatileUntilFlush) {
  NodeMemory mem(sim, params);
  const auto data = pattern(64);
  mem.cpu_write(512, data);
  EXPECT_FALSE(mem.range_persistent(512, 64));
  mem.clflush(0, 512, 64);
  EXPECT_TRUE(mem.range_persistent(512, 64));
  std::vector<std::byte> raw(64);
  mem.pm().peek(512, raw);
  EXPECT_EQ(raw, data);
}

TEST_F(NodeMemFixture, DmaWithoutDdioLandsInPersistDomain) {
  NodeMemory mem(sim, params);
  const auto data = pattern(128);
  mem.dma_write(1024, data, /*ddio=*/false);
  EXPECT_TRUE(mem.range_persistent(1024, 128));
  std::vector<std::byte> raw(128);
  mem.pm().peek(1024, raw);
  EXPECT_EQ(raw, data);
}

TEST_F(NodeMemFixture, DmaWithDdioIsVolatileButCoherent) {
  NodeMemory mem(sim, params);
  const auto data = pattern(128);
  mem.dma_write(1024, data, /*ddio=*/true);
  EXPECT_FALSE(mem.range_persistent(1024, 128));

  // A read-after-write check would succeed even though nothing is
  // persistent yet — the paper's §2.4 failure mode.
  std::vector<std::byte> readback(128);
  mem.dma_read(1024, readback);
  EXPECT_EQ(readback, data);

  mem.crash();
  std::vector<std::byte> raw(128);
  mem.pm().peek(1024, raw);
  EXPECT_EQ(raw, std::vector<std::byte>(128, std::byte{0}))
      << "DDIO-buffered data must be lost on crash";
}

TEST_F(NodeMemFixture, CrashWipesDramKeepsPm) {
  NodeMemory mem(sim, params);
  const auto data = pattern(64);
  mem.dma_write(0, data, /*ddio=*/false);
  mem.cpu_write(NodeMemory::kDramBase, data);
  mem.crash();
  std::vector<std::byte> out(64);
  mem.cpu_read(0, out);
  EXPECT_EQ(out, data);
  mem.cpu_read(NodeMemory::kDramBase, out);
  EXPECT_EQ(out, std::vector<std::byte>(64, std::byte{0}));
}

TEST_F(NodeMemFixture, RangePersistentFalseForDram) {
  NodeMemory mem(sim, params);
  EXPECT_FALSE(mem.range_persistent(NodeMemory::kDramBase, 8));
}

TEST_F(NodeMemFixture, DeviceTimingHelpersRouteByAddress) {
  NodeMemory mem(sim, params);
  const SimTime pm_t = mem.device_write_complete_at(0, 0, 4096);
  NodeMemory mem2(sim, params);
  const SimTime dram_t =
      mem2.device_write_complete_at(0, NodeMemory::kDramBase, 4096);
  EXPECT_GT(pm_t, dram_t) << "PM writes are slower than DRAM";
}

// ------------------------------------------------------------ BufferPool

TEST(BufferPool, AcquireRecycleReusesBlocks) {
  Simulator sim;
  BufferPool pool(sim);
  PayloadRef a = pool.acquire(100);
  PayloadBuf* const first = a.buf();
  EXPECT_EQ(pool.stats().acquires, 1u);
  EXPECT_EQ(pool.stats().outstanding, 1u);
  a.reset();
  EXPECT_EQ(pool.stats().recycles, 1u);
  EXPECT_EQ(pool.stats().outstanding, 0u);

  // Same size class -> the freed block comes straight back; no slab
  // growth in steady state.
  const std::uint64_t slab0 = pool.stats().slab_bytes;
  PayloadRef b = pool.acquire(100);
  EXPECT_EQ(b.buf(), first);
  EXPECT_EQ(pool.stats().slab_bytes, slab0);
}

TEST(BufferPool, RefcountKeepsBlockAliveUntilLastHandle) {
  Simulator sim;
  BufferPool pool(sim);
  PayloadRef a = pool.make_bytes(pattern(64));
  PayloadRef b = a;  // shared
  EXPECT_EQ(a.buf(), b.buf());
  EXPECT_EQ(a.buf()->refs, 2u);
  EXPECT_EQ(a.buf()->ref_acquires, 2u);
  a.reset();
  EXPECT_EQ(pool.stats().recycles, 0u) << "b still holds the block";
  EXPECT_EQ(std::vector<std::byte>(b.bytes().begin(), b.bytes().end()),
            pattern(64));
  b.reset();
  EXPECT_EQ(pool.stats().recycles, 1u);
}

TEST(BufferPool, AppendMergesTrailingBytesSegment) {
  Simulator sim;
  BufferPool pool(sim);
  PayloadRef r = pool.acquire(256);
  r.buf()->append_bytes(pattern(100, 1));
  r.buf()->append_bytes(pattern(100, 2));
  EXPECT_EQ(r.seg_count(), 1u);
  EXPECT_TRUE(r.contiguous_bytes());
  EXPECT_EQ(r.size(), 200u);
}

TEST(BufferPool, ShadowSegmentsCarryNoData) {
  Simulator sim;
  BufferPool pool(sim);
  PayloadRef r = pool.acquire(64);
  r.buf()->append_bytes(pattern(16));
  r.buf()->append_shadow(1000, /*seed=*/7, /*off=*/0);
  EXPECT_EQ(r.size(), 1016u);
  EXPECT_EQ(r.seg_count(), 2u);
  EXPECT_EQ(r.buf()->data_used, 16u) << "shadow extents consume no data area";
  EXPECT_FALSE(r.contiguous_bytes());
}

TEST(BufferPool, OversizeAcquireFallsBackToHeap) {
  Simulator sim;
  BufferPool pool(sim);
  // One byte past the largest class (128 MiB). The data area is never
  // touched, so the allocation stays virtual.
  PayloadRef r = pool.acquire((64ull << 21) + 1);
  EXPECT_EQ(pool.stats().oversize_allocs, 1u);
  r.buf()->append_bytes(pattern(16));
  r.reset();
  EXPECT_EQ(pool.stats().recycles, 1u);
  EXPECT_EQ(pool.stats().slab_bytes, 0u) << "oversize must not grow a class";
}

TEST(BufferPool, LegacyEnvDisablesPooling) {
  ::setenv("PRDMA_LEGACY_DATAPLANE", "1", 1);
  Simulator sim;
  BufferPool pool(sim);
  ::unsetenv("PRDMA_LEGACY_DATAPLANE");
  EXPECT_TRUE(pool.legacy_mode());
  PayloadRef r = pool.make_bytes(pattern(64));
  EXPECT_EQ(std::vector<std::byte>(r.bytes().begin(), r.bytes().end()),
            pattern(64));
  r.reset();
  EXPECT_EQ(pool.stats().slab_bytes, 0u) << "legacy mode never builds slabs";
  EXPECT_EQ(pool.stats().acquires, 1u);
  EXPECT_EQ(pool.stats().recycles, 1u);
}

TEST(BufferPool, AsanPoisonsRecycledDataAreas) {
  if (!BufferPool::poisoning_enabled()) {
    GTEST_SKIP() << "not an ASan build";
  }
  Simulator sim;
  BufferPool pool(sim);
  PayloadRef r = pool.acquire(64);
  const std::byte* data = r.buf()->data();
  EXPECT_FALSE(BufferPool::address_poisoned(data));
  r.reset();
  EXPECT_TRUE(BufferPool::address_poisoned(data))
      << "freed blocks must be poisoned: stale PayloadRef reads should trap";
  PayloadRef again = pool.acquire(64);
  EXPECT_FALSE(BufferPool::address_poisoned(again.buf()->data()));
}

// --------------------------------------------- content modes (shadow)

NodeMemoryParams small_params(ContentMode mode) {
  NodeMemoryParams p;
  p.pm_capacity = 1 << 20;
  p.dram_capacity = 1 << 20;
  p.content_mode = mode;
  return p;
}

/// Builds the same logical payload in both modes: [16B header][1 KB
/// interior][8B commit] — bytes everywhere in kFull, a shadow extent
/// interior in kShadow, as encode_log_entry_image does.
PayloadRef build_image(NodeMemory& mem, std::uint64_t seed) {
  if (mem.content_mode() == ContentMode::kShadow) {
    PayloadRef r = mem.pool().acquire(24);
    r.buf()->append_bytes(pattern(16, static_cast<int>(seed)));
    r.buf()->append_shadow(1024, seed, 0);
    r.buf()->append_bytes(pattern(8, static_cast<int>(seed) + 1));
    return r;
  }
  PayloadRef r = mem.pool().acquire(16 + 1024 + 8);
  r.buf()->append_bytes(pattern(16, static_cast<int>(seed)));
  r.buf()->append_bytes(pattern(1024, 99));
  r.buf()->append_bytes(pattern(8, static_cast<int>(seed) + 1));
  return r;
}

TEST(ContentModeParity, TimingAndAccountingMatchAcrossModes) {
  Simulator sim_full;
  Simulator sim_shadow;
  NodeMemory full(sim_full, small_params(ContentMode::kFull));
  NodeMemory shadow(sim_shadow, small_params(ContentMode::kShadow));

  for (auto* m : {&full, &shadow}) {
    PayloadRef img = build_image(*m, 3);
    m->cpu_write_payload(4096, img);
    m->dma_write_payload(65536, img, /*ddio=*/false);
  }
  // Identical line presence and dirtiness...
  EXPECT_EQ(full.llc().dirty_lines(), shadow.llc().dirty_lines());
  EXPECT_EQ(full.range_persistent(4096, 1048),
            shadow.range_persistent(4096, 1048));
  // ...identical flush timing...
  const SimTime t_full = full.clflush(0, 4096, 1048);
  const SimTime t_shadow = shadow.clflush(0, 4096, 1048);
  EXPECT_EQ(t_full, t_shadow);
  // ...and identical device write accounting (shadow writes charge the
  // same bytes_written; only bytes_copied diverges).
  EXPECT_EQ(full.pm().bytes_written(), shadow.pm().bytes_written());
  EXPECT_LT(shadow.pm().bytes_copied(), full.pm().bytes_copied());
}

TEST(ContentModeParity, TornWriteCountsMatchAcrossModes) {
  Simulator sim_full;
  Simulator sim_shadow;
  NodeMemory full(sim_full, small_params(ContentMode::kFull));
  NodeMemory shadow(sim_shadow, small_params(ContentMode::kShadow));
  for (auto* m : {&full, &shadow}) {
    PayloadRef img = build_image(*m, 5);
    // Only 100 bytes reached the media: the line-aligned prefix lands,
    // the entry is torn.
    m->dma_torn_write(8192, img, img.size(), /*persisted_bytes=*/100);
    EXPECT_EQ(m->pm().torn_writes(), 1u);
  }
  EXPECT_EQ(full.pm().bytes_written(), shadow.pm().bytes_written());
}

TEST(ShadowPlane, DigestTracksWrittenExtents) {
  Simulator sim;
  NodeMemory mem(sim, small_params(ContentMode::kShadow));
  PayloadRef r = mem.pool().acquire(0);
  r.buf()->append_shadow(1024, /*seed=*/42, /*off=*/0);
  mem.cpu_write_payload(4096, r);
  const auto d = mem.shadow_digest_at(4096, 1024);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, shadow_digest(42, 0, 1024));
  // Untracked ranges have no digest — byte content is authoritative.
  EXPECT_FALSE(mem.shadow_digest_at(4096 + 64, 64).has_value());
}

TEST(ShadowPlane, ReplicatedFanOutSharesOnePooledPayload) {
  // Replication pin (DESIGN.md §7.4): forwarding one transaction to R
  // replicas moves ONE pooled payload image by reference — every hop
  // holds its own PayloadRef to the same block, and in shadow mode the
  // per-replica stores land the digest with zero pool traffic and zero
  // payload bytes on any node.
  Simulator sim;
  NodeMemory head(sim, small_params(ContentMode::kShadow));
  NodeMemory tail(sim, small_params(ContentMode::kShadow));

  PayloadRef img = head.pool().acquire(0);
  img.buf()->append_shadow(4096, /*seed=*/9, /*off=*/0);
  EXPECT_EQ(img.buf()->data_used, 0u) << "shadow extents carry no bytes";

  // Each hop takes its own reference to the one block.
  PayloadRef hop_head = img;
  PayloadRef hop_tail = img;
  EXPECT_EQ(img.buf()->refs, 3u);

  head.poke_payload_pm(4096, hop_head);
  tail.poke_payload_pm(4096, hop_tail);

  // Identical content on both replicas, derivable without bytes...
  const auto dh = head.shadow_digest_at(4096, 4096);
  const auto dt = tail.shadow_digest_at(4096, 4096);
  ASSERT_TRUE(dh.has_value());
  ASSERT_TRUE(dt.has_value());
  EXPECT_EQ(*dh, *dt);
  EXPECT_EQ(*dh, shadow_digest(9, 0, 4096));
  // ...full timing-plane accounting but no copies on either device...
  EXPECT_EQ(head.pm().bytes_written(), 4096u);
  EXPECT_EQ(tail.pm().bytes_written(), 4096u);
  EXPECT_EQ(head.pm().bytes_copied(), 0u);
  EXPECT_EQ(tail.pm().bytes_copied(), 0u);
  // ...and the head's acquire was the only pool traffic anywhere.
  EXPECT_EQ(head.pool().stats().acquires, 1u);
  EXPECT_EQ(tail.pool().stats().acquires, 0u);
}

TEST(ShadowPlane, ByteOverwriteTrimsTheExtent) {
  Simulator sim;
  NodeMemory mem(sim, small_params(ContentMode::kShadow));
  PayloadRef r = mem.pool().acquire(0);
  r.buf()->append_shadow(1024, /*seed=*/42, /*off=*/0);
  mem.cpu_write_payload(4096, r);
  // A plain byte store into the middle invalidates the tracked range:
  // the digest fails closed rather than report stale content.
  mem.cpu_write(4096 + 512, pattern(8));
  EXPECT_FALSE(mem.shadow_digest_at(4096, 1024).has_value());
}

TEST(ShadowPlane, ReadPayloadRoundTripsExtents) {
  Simulator sim;
  NodeMemory mem(sim, small_params(ContentMode::kShadow));
  PayloadRef r = mem.pool().acquire(0);
  r.buf()->append_shadow(2048, /*seed=*/7, /*off=*/0);
  mem.cpu_write_payload(4096, r);

  // Reconstructing the range must come back as a shadow extent (no
  // bytes moved), and copying it elsewhere must preserve the digest.
  const std::uint64_t copied0 = mem.pm().bytes_copied();
  PayloadRef back = mem.read_payload(4096, 2048);
  EXPECT_EQ(mem.pm().bytes_copied(), copied0) << "shadow read moves no bytes";
  ASSERT_EQ(back.seg_count(), 1u);
  EXPECT_EQ(back.segs()[0].kind, PayloadSeg::Kind::kShadow);

  mem.cpu_write_payload(65536, back);
  const auto d = mem.shadow_digest_at(65536, 2048);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, shadow_digest(7, 0, 2048));
}

TEST(ShadowPlane, FullModeNeverTracksDigests) {
  Simulator sim;
  NodeMemory mem(sim, small_params(ContentMode::kFull));
  PayloadRef r = mem.pool().make_bytes(pattern(256));
  mem.cpu_write_payload(4096, r);
  EXPECT_FALSE(mem.shadow_digest_at(4096, 256).has_value());
}

}  // namespace
}  // namespace prdma::mem
