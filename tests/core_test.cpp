// Tests for the paper's contribution layer: redo-log ring, object
// store, the four durable RPC variants, flow control and crash
// recovery (§4.2).

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/durable_rpc.hpp"
#include "core/node.hpp"
#include "core/object_store.hpp"
#include "core/params.hpp"
#include "core/redo_log.hpp"
#include "core/rpc.hpp"
#include "core/wire.hpp"
#include "sim/task.hpp"

namespace prdma::core {
namespace {

using namespace prdma::sim::literals;
using sim::SimTime;
using sim::Task;

ModelParams small_params() {
  ModelParams p;
  p.memory.pm_capacity = 64ull << 20;
  p.memory.dram_capacity = 32ull << 20;
  p.max_payload = 4096;
  p.object_count = 256;
  p.log_slots = 16;
  p.flow_threshold = 8;
  return p;
}

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed * 31 + i) & 0xFF);
  }
  return out;
}

// ------------------------------------------------------------------ node

TEST(Node, CrashHooksRefusedInShadowContentMode) {
  ModelParams p = small_params();
  p.memory.content_mode = mem::ContentMode::kShadow;
  Cluster cluster(p, 1);
  // Shadow mode elides payload bytes, so post-crash state (torn
  // entries, oracle byte checks) would be fiction — arming must fail
  // loudly, not silently degrade crash fidelity.
  EXPECT_THROW(cluster.node(0).attach_crash_hook(), std::logic_error);
  EXPECT_THROW(cluster.node(0).schedule_crash_at(1000), std::logic_error);

  ModelParams pf = small_params();  // kFull default
  Cluster full(pf, 1);
  EXPECT_NO_THROW(full.node(0).attach_crash_hook());
}

// ------------------------------------------------------------------ wire

TEST(Wire, ByteWriterReaderRoundTrip) {
  ByteWriter w;
  w.u32(7);
  w.u64(0xDEADBEEFCAFEull);
  w.pad_to(32);
  w.bytes(pattern(16));
  const auto buf = w.take();
  EXPECT_EQ(buf.size(), 48u);
  ByteReader r(buf);
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.u64(), 0xDEADBEEFCAFEull);
  r.skip_to(32);
  const auto got = r.bytes(16);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), pattern(16).begin()));
}

TEST(Wire, Fnv1aDiscriminates) {
  const auto a = pattern(100, 1);
  auto b = a;
  b[50] = static_cast<std::byte>(0xFF);
  EXPECT_NE(fnv1a(a), fnv1a(b));
  EXPECT_EQ(fnv1a(a), fnv1a(pattern(100, 1)));
}

// --------------------------------------------------------------- redo log

struct LogFixture : ::testing::Test {
  ModelParams params = small_params();
  Cluster cluster{params, 1};
  LogLayout layout;
  std::unique_ptr<RedoLog> log;

  LogFixture() {
    layout.slots = 8;
    layout.payload_capacity = 1024;
    layout.base = cluster.node(0).pm_alloc().alloc(layout.total_bytes(), 256);
    log = std::make_unique<RedoLog>(cluster.node(0), layout);
  }

  /// Simulates the client's RDMA write of an entry image (data plane).
  void land_entry(std::uint64_t seq, RpcOp op, std::uint64_t obj,
                  std::span<const std::byte> payload) {
    const auto image = encode_log_entry(seq, op, obj, payload, 0);
    cluster.node(0).mem().pm().poke(layout.slot_addr(seq), image);
  }
};

TEST_F(LogFixture, EncodeDecodeRoundTrip) {
  const auto payload = pattern(100);
  land_entry(1, RpcOp::kWrite, 42, payload);
  const auto e = log->peek(1);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->seq, 1u);
  EXPECT_EQ(e->op, RpcOp::kWrite);
  EXPECT_EQ(e->obj_id, 42u);
  EXPECT_EQ(e->payload_len, 100u);
  EXPECT_TRUE(log->checksum_ok(*e));
  std::vector<std::byte> got(100);
  cluster.node(0).mem().cpu_read(e->payload_addr, got);
  EXPECT_EQ(got, payload);
}

TEST_F(LogFixture, PeekRejectsWrongSeq) {
  land_entry(1, RpcOp::kWrite, 1, pattern(64));
  EXPECT_FALSE(log->peek(2).has_value());
  // After wraparound the same slot holds seq 9; peeking 1 again fails.
  land_entry(9, RpcOp::kWrite, 2, pattern(64));
  EXPECT_FALSE(log->peek(1).has_value());
  EXPECT_TRUE(log->peek(9).has_value());
}

TEST_F(LogFixture, EmptySlotIsInvalid) {
  EXPECT_FALSE(log->peek(1).has_value());
}

TEST_F(LogFixture, RecoverReturnsContiguousUnconsumed) {
  for (std::uint64_t s = 1; s <= 5; ++s) {
    land_entry(s, RpcOp::kWrite, s, pattern(32, static_cast<int>(s)));
  }
  // Entries 1..2 already consumed.
  store_u64(cluster.node(0).mem(), layout.consumed_addr(), 2);
  cluster.node(0).mem().clflush(0, layout.consumed_addr(), 8);
  const auto entries = log->recover();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries.front().seq, 3u);
  EXPECT_EQ(entries.back().seq, 5u);
}

TEST_F(LogFixture, RecoverStopsAtGap) {
  land_entry(1, RpcOp::kWrite, 1, pattern(32));
  land_entry(3, RpcOp::kWrite, 3, pattern(32));  // 2 is missing
  const auto entries = log->recover();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries.front().seq, 1u);
}

TEST_F(LogFixture, RecoverRejectsTornEntry) {
  land_entry(1, RpcOp::kWrite, 1, pattern(128));
  // Corrupt one payload byte after the commit word was written — a
  // torn write the checksum must catch.
  const std::byte junk[1] = {std::byte{0x5A}};
  cluster.node(0).mem().pm().poke(layout.payload_addr(1) + 64, junk);
  EXPECT_TRUE(log->peek(1).has_value()) << "commit word alone looks valid";
  EXPECT_TRUE(log->recover().empty()) << "checksum must reject the torn entry";
}

TEST_F(LogFixture, MarkConsumedPersists) {
  bool done = false;
  sim::spawn([](RedoLog& lg, bool& flag) -> Task<> {
    co_await lg.mark_consumed(7);
    flag = true;
  }(*log, done));
  cluster.sim().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(log->consumed(), 7u);
  // Must survive a crash (it went through clflush).
  cluster.node(0).mem().crash();
  EXPECT_EQ(log->consumed(), 7u);
}

TEST(LogLayoutMath, SlotAddressingWrapsRing) {
  LogLayout lay;
  lay.base = 4096;
  lay.slots = 4;
  lay.payload_capacity = 256;
  EXPECT_EQ(lay.slot_addr(1), lay.slot_addr(5));
  EXPECT_EQ(lay.slot_addr(2), lay.slot_addr(6));
  EXPECT_NE(lay.slot_addr(1), lay.slot_addr(2));
  EXPECT_EQ(lay.slot_bytes() % 256, 0u);
  EXPECT_GE(lay.slot_bytes(),
            LogLayout::kEntryHeaderBytes + 256 + LogLayout::kCommitBytes);
}

// ------------------------------------------------------------ object store

TEST(ObjectStoreTest, ApplyWriteIsDurable) {
  ModelParams p = small_params();
  Cluster cluster(p, 1);
  Node& node = cluster.node(0);
  ObjectStore store(node, 16, 4096);

  const auto data = pattern(1000, 5);
  const std::uint64_t src = node.dram_alloc().alloc(4096);
  node.mem().cpu_write(src, data);

  bool done = false;
  sim::spawn([](ObjectStore& st, std::uint64_t s, bool& flag) -> Task<> {
    co_await st.apply_write(3, s, 1000);
    flag = true;
  }(store, src, done));
  cluster.sim().run();
  EXPECT_TRUE(done);

  node.mem().crash();  // durable means it survives
  std::vector<std::byte> out(1000);
  node.mem().pm().peek(store.addr_of(3), out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(store.bytes_applied(), 1000u);
}

TEST(ObjectStoreTest, ReadIntoStagesBytes) {
  ModelParams p = small_params();
  Cluster cluster(p, 1);
  Node& node = cluster.node(0);
  ObjectStore store(node, 16, 4096);
  const auto data = pattern(512, 9);
  node.mem().pm().poke(store.addr_of(7), data);
  const std::uint64_t dst = node.dram_alloc().alloc(4096);

  sim::spawn([](ObjectStore& st, std::uint64_t d) -> Task<> {
    co_await st.read_into(7, d, 512);
  }(store, dst));
  cluster.sim().run();
  std::vector<std::byte> out(512);
  node.mem().cpu_read(dst, out);
  EXPECT_EQ(out, data);
}

TEST(ObjectStoreTest, IdsWrapModuloCount) {
  ModelParams p = small_params();
  Cluster cluster(p, 1);
  ObjectStore store(cluster.node(0), 8, 256);
  EXPECT_EQ(store.addr_of(0), store.addr_of(8));
  EXPECT_NE(store.addr_of(0), store.addr_of(7));
}

// ------------------------------------------------------- durable RPC e2e

struct DurableFixture : ::testing::TestWithParam<FlushVariant> {
  ModelParams params = small_params();

  struct Deployment {
    std::unique_ptr<Cluster> cluster;
    std::unique_ptr<DurableRpcServer> server;
    std::unique_ptr<DurableRpcClient> client;
  };

  Deployment deploy(FlushVariant v, ModelParams p) {
    Deployment d;
    d.cluster = std::make_unique<Cluster>(p, 2);
    d.server = std::make_unique<DurableRpcServer>(*d.cluster, 0, v, p);
    d.client = d.server->connect_client(1);
    d.server->start();
    return d;
  }
};

TEST_P(DurableFixture, WriteCompletesAndServerApplies) {
  auto d = deploy(GetParam(), params);
  RpcResult res;
  sim::spawn([](DurableRpcClient& c, RpcResult& out) -> Task<> {
    RpcRequest req{RpcOp::kWrite, 5, 700};
    out = co_await c.call(req);
  }(*d.client, res));
  d.cluster->sim().run();

  EXPECT_TRUE(res.ok);
  EXPECT_GT(res.durable_at, res.issued_at);
  EXPECT_EQ(res.completed_at, res.durable_at)
      << "durable writes complete at persist visibility";
  EXPECT_EQ(d.server->stats().ops_processed, 1u);

  // The object store holds the client's payload pattern (seq 1).
  std::vector<std::byte> got(700);
  d.cluster->node(0).mem().cpu_read(d.server->store().addr_of(5), got);
  for (std::uint32_t i = 0; i < 700; ++i) {
    ASSERT_EQ(got[i], static_cast<std::byte>((1 * 131 + i * 7) & 0xFF)) << i;
  }
}

TEST_P(DurableFixture, WriteIsDurableBeforeProcessing) {
  // The decoupling claim (§4.2): under heavy processing load, the
  // client's persist-ack must arrive long before processing finishes.
  ModelParams p = params;
  p.rpc_processing = 100_us;
  auto d = deploy(GetParam(), p);
  RpcResult res;
  sim::spawn([](DurableRpcClient& c, RpcResult& out) -> Task<> {
    out = co_await c.call(RpcRequest{RpcOp::kWrite, 1, 512});
  }(*d.client, res));
  d.cluster->sim().run();

  EXPECT_TRUE(res.ok);
  EXPECT_LT(res.durable_at - res.issued_at, 60_us)
      << "persist visibility must not wait for the 100 µs processing";
  EXPECT_EQ(d.server->stats().ops_processed, 1u);
}

TEST_P(DurableFixture, CrashAfterDurableAckRecoversWithoutResend) {
  // THE paper scenario (Fig. 5): client saw the persist ACK, server
  // dies before processing, restart replays the redo log — the data
  // reaches the object store with no client involvement.
  ModelParams p = params;
  p.rpc_processing = 10 * sim::kMillisecond;  // processing never finishes
  auto d = deploy(GetParam(), p);

  RpcResult res;
  bool crashed = false;
  sim::spawn([](Deployment& dep, RpcResult& out, bool& crash_flag) -> Task<> {
    out = co_await dep.client->call(RpcRequest{RpcOp::kWrite, 9, 600});
    // Durable ACK received; now the server dies mid-processing.
    dep.server->on_crash();
    dep.cluster->node(0).crash();
    dep.client->abort_pending();
    crash_flag = true;
    // Restart after 300 ms (unikernel, §5.4).
    co_await sim::delay(dep.cluster->sim(), 300 * sim::kMillisecond);
    dep.cluster->node(0).restart();
    co_await dep.server->recover_and_restart();
    dep.server->reconnect_client(*dep.client);
  }(d, res, crashed));
  d.cluster->sim().run();

  ASSERT_TRUE(crashed);
  EXPECT_TRUE(res.ok) << "client had the durable ACK before the crash";
  EXPECT_EQ(d.server->stats().recoveries, 1u) << "entry replayed from log";

  std::vector<std::byte> got(600);
  d.cluster->node(0).mem().cpu_read(d.server->store().addr_of(9), got);
  for (std::uint32_t i = 0; i < 600; ++i) {
    ASSERT_EQ(got[i], static_cast<std::byte>((1 * 131 + i * 7) & 0xFF)) << i;
  }
}

TEST_P(DurableFixture, ReadReturnsFreshlyWrittenData) {
  auto d = deploy(GetParam(), params);
  RpcResult wres;
  RpcResult rres;
  std::vector<std::byte> read_back(300);
  sim::spawn([](Deployment& dep, RpcResult& w, RpcResult& r,
                std::vector<std::byte>& rb) -> Task<> {
    w = co_await dep.client->call(RpcRequest{RpcOp::kWrite, 4, 300});
    r = co_await dep.client->call(RpcRequest{RpcOp::kRead, 4, 300});
    // Response slot for seq 2 holds the object bytes.
    const auto* client = dep.client.get();
    (void)client;
    rb.resize(300);
    // Slot index = (seq-1) % window; seq == 2.
    // Read from the client's response ring via the public result: we
    // verify through the object pattern of the *write* (seq 1).
  }(d, wres, rres, read_back));
  d.cluster->sim().run();

  EXPECT_TRUE(wres.ok);
  EXPECT_TRUE(rres.ok);
  EXPECT_GT(rres.completed_at, rres.issued_at);
  EXPECT_EQ(d.server->stats().ops_processed, 2u);
}

TEST_P(DurableFixture, ManyOpsPipelineWithinWindow) {
  ModelParams p = params;
  p.rpc_processing = 50_us;
  p.server_workers = 2;
  auto d = deploy(GetParam(), p);

  const int kOps = 40;
  int completed = 0;
  SimTime total_issue_span = 0;
  sim::spawn([](Deployment& dep, int n, int& done, SimTime& span) -> Task<> {
    const SimTime start = dep.cluster->sim().now();
    for (int i = 0; i < n; ++i) {
      const auto res = co_await dep.client->call(
          RpcRequest{RpcOp::kWrite, static_cast<std::uint64_t>(i), 256});
      if (res.ok) ++done;
    }
    span = dep.cluster->sim().now() - start;
  }(d, kOps, completed, total_issue_span));
  d.cluster->sim().run();

  EXPECT_EQ(completed, kOps);
  EXPECT_EQ(d.server->stats().ops_processed, static_cast<std::uint64_t>(kOps));
  // With 2 workers at 50 µs the serial processing floor is ~1 ms; the
  // client must have issued faster than serial baselines would allow
  // (issue span well under ops * (rtt + processing)).
  EXPECT_LT(total_issue_span, static_cast<SimTime>(kOps) * 55_us);
  EXPECT_GT(d.server->stats().backlog_peak, 1u) << "pipelining happened";
}

TEST_P(DurableFixture, FlowControlBoundsBacklog) {
  ModelParams p = params;
  p.rpc_processing = 200_us;
  p.server_workers = 1;
  p.log_slots = 8;
  p.flow_threshold = 4;
  auto d = deploy(GetParam(), p);

  int completed = 0;
  sim::spawn([](Deployment& dep, int& done) -> Task<> {
    for (int i = 0; i < 30; ++i) {
      const auto res = co_await dep.client->call(
          RpcRequest{RpcOp::kWrite, static_cast<std::uint64_t>(i), 128});
      if (res.ok) ++done;
    }
  }(d, completed));
  d.cluster->sim().run();

  EXPECT_EQ(completed, 30);
  EXPECT_LE(d.server->stats().backlog_peak, 5u)
      << "window must throttle the sender (§4.2 flow control)";
}

TEST_P(DurableFixture, BatchedCallAggregatesEntries) {
  auto d = deploy(GetParam(), params);
  RpcResult res;
  sim::spawn([](Deployment& dep, RpcResult& out) -> Task<> {
    std::vector<RpcRequest> batch(4, RpcRequest{RpcOp::kWrite, 10, 256});
    out = co_await dep.client->call_batch(batch);
  }(d, res));
  d.cluster->sim().run();
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(d.server->stats().ops_processed, 4u)
      << "one transfer, four sub-operations applied";
}

TEST_P(DurableFixture, DeterministicAcrossRuns) {
  SimTime first = 0;
  for (int run = 0; run < 2; ++run) {
    auto d = deploy(GetParam(), params);
    sim::spawn([](Deployment& dep) -> Task<> {
      for (int i = 0; i < 10; ++i) {
        (void)co_await dep.client->call(
            RpcRequest{i % 3 == 0 ? RpcOp::kRead : RpcOp::kWrite,
                       static_cast<std::uint64_t>(i), 512});
      }
    }(d));
    d.cluster->sim().run();
    if (run == 0) {
      first = d.cluster->sim().now();
    } else {
      EXPECT_EQ(d.cluster->sim().now(), first)
          << "same seed must give bit-identical runs";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, DurableFixture,
                         ::testing::Values(FlushVariant::kWFlush,
                                           FlushVariant::kSFlush,
                                           FlushVariant::kWRFlush,
                                           FlushVariant::kSRFlush),
                         [](const auto& inf) {
                           switch (inf.param) {
                             case FlushVariant::kWFlush: return "WFlush";
                             case FlushVariant::kSFlush: return "SFlush";
                             case FlushVariant::kWRFlush: return "WRFlush";
                             case FlushVariant::kSRFlush: return "SRFlush";
                           }
                           return "?";
                         });

TEST(DurableNames, MatchPaper) {
  EXPECT_EQ(variant_name(FlushVariant::kWFlush), "WFlush-RPC");
  EXPECT_EQ(variant_name(FlushVariant::kSFlush), "SFlush-RPC");
  EXPECT_EQ(variant_name(FlushVariant::kWRFlush), "W-RFlush-RPC");
  EXPECT_EQ(variant_name(FlushVariant::kSRFlush), "S-RFlush-RPC");
}

}  // namespace
}  // namespace prdma::core

namespace prdma::core {
namespace {

TEST(SmartNicDurable, WRFlushRunsWithNicIssuedNotifications) {
  ModelParams p;
  p.memory.pm_capacity = 64ull << 20;
  p.max_payload = 1024;
  p.object_count = 64;
  p.rnic.smartnic_rflush = true;
  Cluster cluster(p, 2);
  DurableRpcServer server(cluster, 0, FlushVariant::kWRFlush, p);
  auto client = server.connect_client(1);
  server.start();

  int ok_count = 0;
  sim::spawn([](DurableRpcClient& c, int& n) -> sim::Task<> {
    for (int i = 0; i < 30; ++i) {
      const auto res = co_await c.call(
          RpcRequest{RpcOp::kWrite, static_cast<std::uint64_t>(i % 16), 512});
      if (res.ok) ++n;
    }
  }(*client, ok_count));
  cluster.sim().run();
  EXPECT_EQ(ok_count, 30);
  EXPECT_EQ(server.stats().ops_processed, 30u);
  EXPECT_EQ(server.stats().critical_sw_ns, 0u)
      << "smartNIC mode: zero receiver software on the persistence path";
}

}  // namespace
}  // namespace prdma::core

namespace prdma::core {
namespace {

TEST(MrEnforcedRecovery, CrashRecoveryReRegistersRegions) {
  // The crash wipes the NIC's protection table; recovery + reconnect
  // must re-register everything or post-restart traffic gets NAKed.
  ModelParams p;
  p.memory.pm_capacity = 64ull << 20;
  p.max_payload = 1024;
  p.object_count = 64;
  p.rnic.enforce_mr = true;
  Cluster cluster(p, 2);
  DurableRpcServer server(cluster, 0, FlushVariant::kWFlush, p);
  auto client = server.connect_client(1);
  server.start();

  int before = 0;
  int after = 0;
  sim::spawn([](Cluster& c, DurableRpcServer& srv, DurableRpcClient& cli,
                int& pre, int& post) -> sim::Task<> {
    for (int i = 0; i < 5; ++i) {
      const auto res = co_await cli.call(RpcRequest{RpcOp::kWrite, 1, 256});
      if (res.ok) ++pre;
    }
    srv.on_crash();
    c.node(0).crash();
    cli.abort_pending();
    co_await sim::delay(c.sim(), 300 * sim::kMillisecond);
    c.node(0).restart();
    co_await srv.recover_and_restart();
    srv.reconnect_client(cli);
    for (int i = 0; i < 5; ++i) {
      const auto res = co_await cli.call(RpcRequest{RpcOp::kWrite, 2, 256});
      if (res.ok) ++post;
    }
  }(cluster, server, *client, before, after));
  cluster.sim().run();
  EXPECT_EQ(before, 5);
  EXPECT_EQ(after, 5) << "post-restart writes must not be NAKed";
}

}  // namespace
}  // namespace prdma::core
