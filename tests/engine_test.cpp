// Partitioned parallel event engine (src/sim/partitioned_engine.*,
// DESIGN.md §7.5): partition mapping, the conservative epoch loop and
// its per-edge outbox channels, the lookahead-violation guard, the
// fabric's flat link table, the crash-coherence rule — and the
// headline contract: a multi-node micro-benchmark cell is
// byte-identical at --engine-threads 1, 2 and 8.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bench_util/micro.hpp"
#include "core/node.hpp"
#include "net/fabric.hpp"
#include "rpcs/registry.hpp"
#include "sim/partitioned_engine.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace prdma {
namespace {

using sim::EngineConfig;
using sim::PartitionedEngine;
using Partitioning = sim::EngineConfig::Partitioning;

EngineConfig per_node(unsigned threads) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.partitioning = Partitioning::kPerNode;
  return cfg;
}

// ------------------------------------------------- partition mapping

TEST(Engine, DefaultConfigIsOnePartitionRunLikeAPlainSimulator) {
  PartitionedEngine eng(4, {});  // 1 thread, kAuto -> single partition
  EXPECT_EQ(eng.partitions(), 1u);
  for (std::size_t n = 0; n < 4; ++n) {
    EXPECT_EQ(eng.partition_of_node(n), 0u);
    EXPECT_EQ(&eng.shard_of_node(n), &eng.shard(0));
  }
  std::vector<int> order;
  eng.shard(0).schedule_at(50, [&order] { order.push_back(2); });
  eng.shard_of_node(3).schedule_at(10, [&order] { order.push_back(1); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(eng.events_executed(), 2u);
}

TEST(Engine, AutoPartitioningShardsPerNodeOnlyWhenThreaded) {
  EngineConfig threaded;
  threaded.threads = 4;
  PartitionedEngine eng(6, threaded);
  EXPECT_EQ(eng.partitions(), 6u);
  for (std::size_t n = 0; n < 6; ++n) EXPECT_EQ(eng.partition_of_node(n), n);

  EngineConfig single;
  single.threads = 4;
  single.partitioning = Partitioning::kSingle;
  PartitionedEngine forced(6, single);
  EXPECT_EQ(forced.partitions(), 1u);
}

// --------------------------------------- outbox channels & determinism

TEST(Engine, CrossPartitionTiesMergeInSrcThenPushOrder) {
  // Four same-timestamp events from three source partitions: the merge
  // must order them by (source partition, push index) — never by which
  // worker got there first.
  PartitionedEngine eng(3, per_node(2));
  eng.set_lookahead(10);
  std::vector<int> order;
  eng.schedule_remote(2, 0, 5, [&order] { order.push_back(20); });
  eng.schedule_remote(1, 0, 5, [&order] { order.push_back(10); });
  eng.schedule_remote(2, 0, 5, [&order] { order.push_back(21); });
  eng.schedule_remote(0, 0, 5, [&order] { order.push_back(1); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 10, 20, 21}));
  EXPECT_EQ(eng.events_executed(), 4u);
}

TEST(Engine, CrossPartitionChannelsStayFifoUnderConcurrentSenders) {
  // Three source partitions each stream 64 numbered events into
  // partition 0 from their own worker; every (src -> 0) channel must
  // deliver its sequence in push order across many epochs.
  constexpr int kSteps = 64;
  constexpr sim::SimTime kLookahead = 8;
  PartitionedEngine eng(4, per_node(4));
  eng.set_lookahead(kLookahead);
  std::array<std::vector<int>, 4> got;
  for (std::size_t src = 1; src < 4; ++src) {
    auto step = std::make_shared<std::function<void(int)>>();
    *step = [&eng, &got, src, step](int i) {
      sim::Simulator& s = eng.shard(src);
      // now + lookahead is always at/above the epoch horizon: legal.
      eng.schedule_remote(src, 0, s.now() + kLookahead,
                          [&got, src, i] { got[src].push_back(i); });
      if (i + 1 < kSteps) {
        s.schedule_at(s.now() + 3, [step, i] { (*step)(i + 1); });
      }
    };
    eng.shard(src).schedule_at(1 + src, [step] { (*step)(0); });
  }
  eng.run();
  for (std::size_t src = 1; src < 4; ++src) {
    ASSERT_EQ(got[src].size(), static_cast<std::size_t>(kSteps)) << src;
    for (int i = 0; i < kSteps; ++i) EXPECT_EQ(got[src][i], i) << src;
  }
}

TEST(Engine, LookaheadViolationThrows) {
  // An event at t=100 may not schedule into a sibling partition below
  // the epoch horizon (100 + L) — conservative order would break.
  PartitionedEngine eng(2, per_node(2));
  eng.set_lookahead(10);
  eng.shard(0).schedule_at(100, [&eng] {
    eng.schedule_remote(0, 1, 105, [] {});
  });
  EXPECT_THROW(eng.run(), std::logic_error);
}

TEST(Engine, MultiPartitionRunRequiresALookahead) {
  PartitionedEngine eng(2, per_node(2));
  eng.shard(0).schedule_at(1, [] {});
  EXPECT_THROW(eng.run(), std::logic_error);
}

TEST(Engine, EpochHooksRunOnEveryPartitionIncludingSerial) {
  PartitionedEngine serial(2, {});
  int serial_runs = 0;
  serial.set_epoch_hook(0, [&serial_runs] { ++serial_runs; });
  serial.run();
  EXPECT_EQ(serial_runs, 1);

  PartitionedEngine eng(2, per_node(2));
  eng.set_lookahead(5);
  std::array<int, 2> runs{0, 0};
  eng.set_epoch_hook(0, [&runs] { ++runs[0]; });
  eng.set_epoch_hook(1, [&runs] { ++runs[1]; });
  eng.shard(0).schedule_at(3, [] {});
  eng.shard(1).schedule_at(40, [] {});  // forces several epochs
  eng.run();
  EXPECT_GE(runs[0], 1);
  EXPECT_GE(runs[1], 1);
  EXPECT_EQ(eng.events_executed(), 2u);
}

TEST(Engine, EpochHookSchedulingIsCaughtAtTermination) {
  // Termination is decided from the shard heaps alone, so an epoch
  // hook that pushes into an outbox could have its event silently
  // dropped — the engine must fail loudly instead.
  PartitionedEngine eng(2, per_node(1));
  eng.set_lookahead(5);
  eng.shard(0).schedule_at(1, [] {});
  bool pushed = false;
  eng.set_epoch_hook(1, [&eng, &pushed] {
    if (pushed) return;
    pushed = true;
    // Partition 0 has already merged this phase; with every heap
    // drained the run would otherwise end with this event unmerged.
    eng.schedule_remote(1, 0, 1'000'000, [] {});
  });
  EXPECT_THROW(eng.run(), std::logic_error);
  EXPECT_TRUE(pushed);
}

// ------------------------------------------------- fabric link table

TEST(Fabric, LinkTableGrowthPreservesEveryOverride) {
  // Several hundred directed pairs force multiple rehashes of the flat
  // open-addressing table; every override must survive, and the
  // engine's lookahead bound must see the true minimum.
  sim::Simulator s;
  sim::Rng rng(7);
  net::LinkParams def;
  def.propagation = 2000;
  net::Fabric f(s, rng, def);
  constexpr std::uint32_t kPairs = 300;
  for (std::uint32_t i = 0; i < kPairs; ++i) {
    f.direct_link(i * 7, i * 13 + 1).propagation = 1000 + i;
  }
  for (std::uint32_t i = 0; i < kPairs; ++i) {
    EXPECT_EQ(f.direct_link(i * 7, i * 13 + 1).propagation, 1000 + i) << i;
  }
  EXPECT_EQ(f.min_propagation(), 1000u);
}

TEST(Fabric, LinkTableIsFrozenDuringAPartitionedRun) {
  // Worker threads probe the open-addressing table concurrently, so
  // registration pre-creates every directed pair and a first-touch
  // insert from inside a partitioned run must fail fast instead of
  // racing a rehash.
  sim::Rng rng(7);
  PartitionedEngine eng(2, per_node(1));
  eng.set_lookahead(5);
  net::Fabric f(eng.shard(0), rng, net::LinkParams{});
  f.bind_engine(&eng, 42);
  f.register_node(0, eng.shard(0), [](net::Packet) {});
  f.register_node(1, eng.shard(1), [](net::Packet) {});

  // Pre-created pairs: looking one up mid-run is fine.
  bool looked_up = false;
  eng.shard(0).schedule_at(1, [&f, &looked_up] {
    looked_up = f.direct_link(0, 1).propagation > 0;
  });
  eng.run();
  EXPECT_TRUE(looked_up);

  // A link to a node never registered does not exist; creating it from
  // a worker thread would mutate the shared table.
  PartitionedEngine eng2(2, per_node(1));
  eng2.set_lookahead(5);
  net::Fabric f2(eng2.shard(0), rng, net::LinkParams{});
  f2.bind_engine(&eng2, 42);
  f2.register_node(0, eng2.shard(0), [](net::Packet) {});
  f2.register_node(1, eng2.shard(1), [](net::Packet) {});
  eng2.shard(0).schedule_at(1, [&f2] { (void)f2.direct_link(0, 5); });
  EXPECT_THROW(eng2.run(), std::logic_error);
}

// ------------------------------------------------ crash-coherence rule

TEST(Engine, CrashHooksRefusedOnAPartitionedCluster) {
  bench::MicroConfig mc;
  mc.content_mode = mem::ContentMode::kFull;
  const auto params = bench::params_for(mc);

  EngineConfig cfg;
  cfg.threads = 2;
  core::Cluster parallel(params, 3, cfg);
  EXPECT_EQ(parallel.engine().partitions(), 3u);
  EXPECT_THROW(parallel.node(0).attach_crash_hook(), std::logic_error);
  EXPECT_THROW((void)parallel.sim(), std::logic_error);

  core::Cluster serial(params, 3);
  serial.node(0).attach_crash_hook();  // single partition: accepted
  EXPECT_EQ(&serial.sim(), &serial.sim_of(0));
}

// --------------------------------------------- end-to-end byte parity

/// Noise-free (zero jitter/load/loss) fig08-style cell: the run
/// consumes no fabric RNG draws at all, so serial and partitioned
/// engines must agree on every model-visible stat bit for bit.
bench::MicroConfig parity_config(unsigned threads, std::size_t clients = 3) {
  bench::MicroConfig mc;
  mc.objects = 512;
  mc.object_size = 4096;
  mc.ops = 600;
  mc.clients = clients;
  mc.jitter_sigma = 0.0;
  mc.engine_threads = threads;
  return mc;
}

/// Every model-visible field of a MicroResult. Host-allocator gauges
/// (sim_pool_allocs, pool.outstanding_peak, pool.slab_bytes) are
/// compared separately: sharding changes *where* slabs grow, not what
/// the model computes, so they match across thread counts of the
/// partitioned engine but not between serial and partitioned layouts.
void expect_model_identical(const bench::MicroResult& a,
                            const bench::MicroResult& b,
                            std::string_view what) {
  EXPECT_EQ(a.duration, b.duration) << what;
  EXPECT_EQ(a.ops_completed, b.ops_completed) << what;
  EXPECT_EQ(a.sim_events, b.sim_events) << what;
  EXPECT_EQ(a.latency.count(), b.latency.count()) << what;
  EXPECT_EQ(a.latency.sum(), b.latency.sum()) << what;
  EXPECT_EQ(a.latency.min(), b.latency.min()) << what;
  EXPECT_EQ(a.latency.max(), b.latency.max()) << what;
  EXPECT_EQ(a.write_latency.sum(), b.write_latency.sum()) << what;
  EXPECT_EQ(a.read_latency.sum(), b.read_latency.sum()) << what;
  EXPECT_EQ(a.durable_latency.sum(), b.durable_latency.sum()) << what;
  EXPECT_EQ(a.server.ops_processed, b.server.ops_processed) << what;
  EXPECT_EQ(a.server.critical_sw_ns, b.server.critical_sw_ns) << what;
  EXPECT_EQ(a.server.bytes_applied, b.server.bytes_applied) << what;
  EXPECT_EQ(a.server.backlog_peak, b.server.backlog_peak) << what;
  EXPECT_EQ(a.bytes_copied, b.bytes_copied) << what;
  EXPECT_EQ(a.pool.acquires, b.pool.acquires) << what;
  EXPECT_EQ(a.pool.recycles, b.pool.recycles) << what;
  EXPECT_EQ(a.pool.oversize_allocs, b.pool.oversize_allocs) << what;
  EXPECT_EQ(a.sender_sw_ns, b.sender_sw_ns) << what;
  EXPECT_EQ(a.receiver_sw_ns, b.receiver_sw_ns) << what;
  EXPECT_EQ(a.kops, b.kops) << what;
  EXPECT_EQ(a.net_drops, b.net_drops) << what;
  EXPECT_EQ(a.rnic_retransmits, b.rnic_retransmits) << what;
}

TEST(EngineParity, DurableCellsAreByteIdenticalAcrossThreadCounts) {
  for (const rpcs::System s :
       {rpcs::System::kWFlushRpc, rpcs::System::kSFlushRpc,
        rpcs::System::kFaRM}) {
    const auto r1 = bench::run_micro(s, parity_config(1));
    const auto r2 = bench::run_micro(s, parity_config(2));
    const auto r8 = bench::run_micro(s, parity_config(8));
    expect_model_identical(r1, r2, rpcs::name_of(s));
    expect_model_identical(r1, r8, rpcs::name_of(s));
    // Between two partitioned runs the shard layout is identical, so
    // even the allocator gauges must match exactly.
    EXPECT_EQ(r2.sim_pool_allocs, r8.sim_pool_allocs) << rpcs::name_of(s);
    EXPECT_EQ(r2.pool.outstanding_peak, r8.pool.outstanding_peak)
        << rpcs::name_of(s);
    EXPECT_EQ(r2.pool.slab_bytes, r8.pool.slab_bytes) << rpcs::name_of(s);
  }
}

TEST(EngineParity, LossyCellsAreByteIdenticalAcrossThreadCounts) {
  // A lossy point-to-point fabric pins the per-node layout even at one
  // thread (DESIGN.md §7.8): loss draws then come from per-link RNG
  // streams and every drop / go-back-N replay replays identically at
  // any --engine-threads value.
  const auto lossy = [](unsigned threads) {
    bench::MicroConfig mc = parity_config(threads);
    mc.loss_probability = 0.01;
    mc.retransmit_interval = 500 * sim::kMicrosecond;
    return mc;
  };
  const auto r1 = bench::run_micro(rpcs::System::kWFlushRpc, lossy(1));
  const auto r2 = bench::run_micro(rpcs::System::kWFlushRpc, lossy(2));
  const auto r8 = bench::run_micro(rpcs::System::kWFlushRpc, lossy(8));
  ASSERT_GT(r1.ops_completed, 0u);
  EXPECT_GT(r1.net_drops, 0u);
  EXPECT_GT(r1.rnic_retransmits, 0u);
  // The layout (not the thread count) defines the schedule: the lossy
  // cell is partitioned per node even on the single-threaded engine.
  EXPECT_GT(r1.engine_partitions, 1u);
  expect_model_identical(r1, r2, "lossy wflush x2");
  expect_model_identical(r1, r8, "lossy wflush x8");
}

TEST(EngineParity, FaultPlanCellsAreByteIdenticalAcrossThreadCounts) {
  // A fault plan alone (no uniform loss) also pins the per-node
  // layout; a loss burst plus a healed partition must replay the same
  // drops and retransmissions at every thread count.
  const auto faulted = [](unsigned threads) {
    bench::MicroConfig mc = parity_config(threads);
    mc.retransmit_interval = 500 * sim::kMicrosecond;
    net::LossBurst burst;
    burst.begin = 0;
    burst.end = 2 * sim::kMillisecond;
    burst.loss = 0.02;
    burst.corrupt = 0.005;
    mc.faults.bursts.push_back(burst);
    net::NetPartition part;
    part.island = {1};
    part.begin = 300 * sim::kMicrosecond;
    part.end = 500 * sim::kMicrosecond;
    mc.faults.partitions.push_back(part);
    return mc;
  };
  const auto r1 = bench::run_micro(rpcs::System::kWFlushRpc, faulted(1));
  const auto r2 = bench::run_micro(rpcs::System::kWFlushRpc, faulted(2));
  const auto r8 = bench::run_micro(rpcs::System::kWFlushRpc, faulted(8));
  ASSERT_GT(r1.ops_completed, 0u);
  EXPECT_GT(r1.net_drops, 0u);
  EXPECT_GT(r1.engine_partitions, 1u);
  expect_model_identical(r1, r2, "faulted wflush x2");
  expect_model_identical(r1, r8, "faulted wflush x8");
}

// ------------------------------------------- per-rack partition layout

TEST(Engine, PerRackMapGroupsNodesAndValidates) {
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.partitioning = Partitioning::kPerRack;
  cfg.partition_map = {0, 0, 1, 1, 2};
  PartitionedEngine eng(5, cfg);
  EXPECT_EQ(eng.partitions(), 3u);
  EXPECT_EQ(eng.partition_of_node(0), 0u);
  EXPECT_EQ(eng.partition_of_node(1), 0u);
  EXPECT_EQ(eng.partition_of_node(3), 1u);
  EXPECT_EQ(eng.partition_of_node(4), 2u);
  EXPECT_EQ(&eng.shard_of_node(0), &eng.shard_of_node(1));

  EngineConfig short_map = cfg;
  short_map.partition_map = {0, 0, 1};  // nodes 3, 4 unmapped
  EXPECT_THROW(PartitionedEngine(5, short_map), std::invalid_argument);

  EngineConfig gap = cfg;
  gap.partition_map = {0, 0, 2, 2, 2};  // partition id 1 never used
  EXPECT_THROW(PartitionedEngine(5, gap), std::invalid_argument);
}

TEST(Engine, AdaptiveEpochsKeepCrossPartitionTieOrder) {
  // Same-timestamp arrivals into rack 0 from two sibling racks must
  // execute in the canonical (time, send time, source, push order)
  // order — never in the order the epoch structure happened to merge
  // them. Adaptive epochs change the structure, so the observed
  // schedule must be identical with the extension on and off.
  std::array<std::vector<int>, 2> orders;
  for (const bool adaptive : {false, true}) {
    EngineConfig cfg;
    cfg.threads = 2;
    cfg.partitioning = Partitioning::kPerRack;
    cfg.partition_map = {0, 0, 1, 1, 2, 2};
    cfg.adaptive_epochs = adaptive;
    PartitionedEngine eng(6, cfg);
    eng.set_lookahead(10);
    std::vector<int>& order = orders[adaptive ? 1 : 0];
    // Both racks send at local time 6 for arrival 30: a full tie on
    // (time, send time) resolved by source partition, then push order.
    eng.shard(2).schedule_at(6, [&eng, &order] {
      eng.schedule_remote(2, 0, 30, [&order] { order.push_back(201); });
    });
    eng.shard(1).schedule_at(6, [&eng, &order] {
      eng.schedule_remote(1, 0, 30, [&order] { order.push_back(101); });
      eng.schedule_remote(1, 0, 30, [&order] { order.push_back(102); });
    });
    // A later send that still arrives at t=30 sorts after both.
    eng.shard(2).schedule_at(19, [&eng, &order] {
      eng.schedule_remote(2, 0, 30, [&order] { order.push_back(202); });
    });
    eng.shard(0).schedule_at(30, [&order] { order.push_back(1); });
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{1, 101, 102, 201, 202}))
        << "adaptive=" << adaptive;
  }
  EXPECT_EQ(orders[0], orders[1]);
}

bench::MicroConfig rack_parity_config(unsigned threads) {
  bench::MicroConfig mc = parity_config(threads);
  mc.topology.preset = net::TopologyPreset::kLeafSpine;
  mc.topology.racks = 2;
  mc.topology.spines = 2;
  return mc;
}

TEST(EngineParity, PerRackCellsAreByteIdenticalAcrossThreadCounts) {
  // Two-rack leaf-spine cells resolve to the per-rack layout (pinned
  // at every thread count); the whole-model schedule must not depend
  // on how many workers execute it.
  const auto r1 = bench::run_micro(rpcs::System::kWFlushRpc,
                                   rack_parity_config(1));
  const auto r2 = bench::run_micro(rpcs::System::kWFlushRpc,
                                   rack_parity_config(2));
  const auto r8 = bench::run_micro(rpcs::System::kWFlushRpc,
                                   rack_parity_config(8));
  EXPECT_EQ(r1.engine_partitions, 2u);
  EXPECT_EQ(r2.engine_partitions, 2u);
  expect_model_identical(r1, r2, "per-rack x2 threads");
  expect_model_identical(r1, r8, "per-rack x8 threads");
  // Epoch counts are part of the deterministic schedule.
  EXPECT_EQ(r1.engine_epochs, r2.engine_epochs);
  EXPECT_EQ(r1.engine_epochs, r8.engine_epochs);
}

TEST(EngineParity, ExplicitPerRackOnASingleRackMatchesTheDefaultLayout) {
  // The rack preset is one rack: the per-rack layout degenerates to a
  // single partition, and the model stats still match the default
  // (per-node) layout bit for bit.
  bench::MicroConfig def = parity_config(1);
  def.topology.preset = net::TopologyPreset::kRack;
  bench::MicroConfig forced = def;
  forced.engine_threads = 2;
  forced.partitioning = Partitioning::kPerRack;
  const auto a = bench::run_micro(rpcs::System::kWFlushRpc, def);
  const auto b = bench::run_micro(rpcs::System::kWFlushRpc, forced);
  EXPECT_EQ(b.engine_partitions, 1u);
  expect_model_identical(a, b, "rack preset per-rack vs default");
}

TEST(EngineParity, AdaptiveEpochsAreAPureScheduleOptimization) {
  // Adaptive extension changes how many barrier rounds the run takes —
  // never what the model computes.
  bench::MicroConfig on = rack_parity_config(4);
  bench::MicroConfig off = on;
  off.adaptive_epochs = false;
  const auto r_on = bench::run_micro(rpcs::System::kWFlushRpc, on);
  const auto r_off = bench::run_micro(rpcs::System::kWFlushRpc, off);
  expect_model_identical(r_on, r_off, "adaptive on vs off");
  EXPECT_LE(r_on.engine_epochs, r_off.engine_epochs);
  EXPECT_GT(r_on.engine_epochs, 0u);
}

// ------------------------------------------- aggregated client pools

TEST(ClientPool, MatchesExplicitCoroutineClientsOnCountStats) {
  // With reads disabled the op mix is RNG-independent: K virtual
  // clients aggregated into a pool must complete exactly the same
  // work as K explicit driver coroutines.
  bench::MicroConfig classic = parity_config(1);
  classic.read_ratio = 0.0;
  bench::MicroConfig pooled = classic;
  pooled.clients_per_host = 4;
  pooled.client_outstanding = 4;
  const auto a = bench::run_micro(rpcs::System::kWFlushRpc, classic);
  const auto b = bench::run_micro(rpcs::System::kWFlushRpc, pooled);
  EXPECT_EQ(a.ops_completed, b.ops_completed);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.durable_latency.count(), b.durable_latency.count());
  EXPECT_EQ(a.server.ops_processed, b.server.ops_processed);
  EXPECT_EQ(a.server.bytes_applied, b.server.bytes_applied);
}

TEST(ClientPool, PooledCellsAreByteIdenticalAcrossThreadCounts) {
  // The 512-host rack_scale identity gate in miniature: an aggregated
  // pool with think times on a two-rack fabric replays the identical
  // schedule at any worker count.
  bench::MicroConfig base = rack_parity_config(1);
  base.clients_per_host = 32;
  base.client_outstanding = 8;
  base.client_think_ns = 2000;
  bench::MicroConfig wide = base;
  wide.engine_threads = 8;
  const auto r1 = bench::run_micro(rpcs::System::kWFlushRpc, base);
  const auto r8 = bench::run_micro(rpcs::System::kWFlushRpc, wide);
  expect_model_identical(r1, r8, "pooled clients x8 threads");
  EXPECT_EQ(r1.engine_epochs, r8.engine_epochs);
}

TEST(ClientPool, RejectsBatchedRequests) {
  bench::MicroConfig mc = parity_config(1);
  mc.clients_per_host = 2;
  mc.batch = 4;
  EXPECT_THROW(bench::run_micro(rpcs::System::kWFlushRpc, mc),
               std::invalid_argument);
}

TEST(EngineParity, WiderClusterStaysIdenticalWithPipelinedClients) {
  // Fig. 13 shape: more clients, deeper pipeline, heavier server.
  bench::MicroConfig base = parity_config(1, 7);
  base.durable_pipeline = 4;
  base.server_cpu_load = 0.2;
  bench::MicroConfig wide = base;
  wide.engine_threads = 8;
  const auto r1 = bench::run_micro(rpcs::System::kWFlushRpc, base);
  const auto r8 = bench::run_micro(rpcs::System::kWFlushRpc, wide);
  expect_model_identical(r1, r8, "wflush x7 clients");
  // ops split evenly over clients x pipeline depth loops
  EXPECT_EQ(r1.ops_completed, (600 / (7 * 4)) * (7 * 4));
}

}  // namespace
}  // namespace prdma
