// Tests for the benchmark harness: parameter derivation, the
// micro-benchmark driver (including whole-stack determinism), table
// printing and flag parsing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <vector>

#include "bench_util/flags.hpp"
#include "bench_util/json.hpp"
#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/table.hpp"

namespace prdma::bench {
namespace {

// ------------------------------------------------------------ params_for

TEST(ParamsFor, SizesPmToFitStoreAndLogs) {
  MicroConfig cfg;
  cfg.object_size = 64 * 1024;
  cfg.clients = 10;
  const auto p = params_for(cfg);
  core::LogLayout lay;
  lay.slots = p.log_slots;
  lay.payload_capacity = p.max_payload;
  const std::uint64_t need =
      p.object_count * p.max_payload + 10 * lay.total_bytes();
  EXPECT_GE(p.memory.pm_capacity, need);
}

TEST(ParamsFor, LargeObjectsShrinkTheStore) {
  MicroConfig small;
  small.object_size = 1024;
  MicroConfig large;
  large.object_size = 64 * 1024;
  EXPECT_EQ(effective_objects(small), 50'000u);
  EXPECT_LT(effective_objects(large), 50'000u);
  EXPECT_GE(effective_objects(large), 64u);
}

TEST(ParamsFor, HeavyLoadSetsProcessing) {
  MicroConfig cfg;
  cfg.heavy_load = true;
  EXPECT_EQ(params_for(cfg).rpc_processing, 100 * sim::kMicrosecond);
  cfg.heavy_load = false;
  EXPECT_EQ(params_for(cfg).rpc_processing, 0u);
}

TEST(ParamsFor, KnobsPropagate) {
  MicroConfig cfg;
  cfg.net_load = 0.5;
  cfg.ddio = true;
  cfg.emulate_flush = false;
  cfg.sflush_addressing_us = 3;
  const auto p = params_for(cfg);
  EXPECT_DOUBLE_EQ(p.link.background_load, 0.5);
  EXPECT_TRUE(p.rnic.ddio);
  EXPECT_FALSE(p.rnic.emulate_flush);
  EXPECT_EQ(p.rnic.sflush_addressing, 3 * sim::kMicrosecond);
}

// -------------------------------------------------------------- run_micro

TEST(RunMicro, CompletesAllOpsAndMeasures) {
  MicroConfig cfg;
  cfg.object_size = 1024;
  cfg.ops = 200;
  const auto res = run_micro(rpcs::System::kFaRM, cfg);
  EXPECT_EQ(res.ops_completed, 200u);
  EXPECT_GT(res.kops, 0.0);
  EXPECT_GT(res.avg_us(), 0.0);
  EXPECT_GE(res.p99_us(), res.p95_us());
  EXPECT_EQ(res.server.ops_processed, 200u);
  EXPECT_GT(res.sender_sw_ns, 0.0);
  EXPECT_GT(res.receiver_sw_ns, 0.0);
}

TEST(RunMicro, DeterministicAcrossRuns) {
  MicroConfig cfg;
  cfg.object_size = 512;
  cfg.ops = 150;
  cfg.seed = 77;
  const auto a = run_micro(rpcs::System::kWFlushRpc, cfg);
  const auto b = run_micro(rpcs::System::kWFlushRpc, cfg);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_DOUBLE_EQ(a.kops, b.kops);
  EXPECT_EQ(a.latency.p99(), b.latency.p99());
}

TEST(RunMicro, SeedChangesOutcome) {
  MicroConfig cfg;
  cfg.object_size = 512;
  cfg.ops = 150;
  cfg.seed = 1;
  const auto a = run_micro(rpcs::System::kFaRM, cfg);
  cfg.seed = 2;
  const auto b = run_micro(rpcs::System::kFaRM, cfg);
  EXPECT_NE(a.duration, b.duration);
}

TEST(RunMicro, DurableWritesCompleteAtPersistVisibility) {
  MicroConfig cfg;
  cfg.object_size = 1024;
  cfg.ops = 100;
  cfg.read_ratio = 0.0;
  cfg.heavy_load = true;
  const auto res = run_micro(rpcs::System::kWFlushRpc, cfg);
  EXPECT_GT(res.durable_latency.count(), 0u);
  // Persist visibility is far below the 100 us processing injection.
  EXPECT_LT(res.durable_latency.mean(), 60'000.0);
}

TEST(RunMicro, MultipleClientsShareTheServer) {
  MicroConfig cfg;
  cfg.object_size = 256;
  cfg.ops = 300;
  cfg.clients = 3;
  const auto res = run_micro(rpcs::System::kOctopus, cfg);
  EXPECT_EQ(res.ops_completed, 300u);
}

TEST(RunMicro, BatchMultipliesProcessedOps) {
  MicroConfig cfg;
  cfg.object_size = 512;
  cfg.ops = 40;  // 40 batched calls of 4 sub-ops
  cfg.batch = 4;
  cfg.read_ratio = 0.0;
  const auto res = run_micro(rpcs::System::kWFlushRpc, cfg);
  EXPECT_EQ(res.server.ops_processed, 160u);
}

// ----------------------------------------------------------------- table

TEST(TablePrinter, AlignsColumnsAndSeparates) {
  TablePrinter t({"Name", "X"});
  t.add_row({"longer-name", "1.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Header pads to the widest cell.
  EXPECT_NE(out.find(" Name        "), std::string::npos);
}

TEST(TablePrinter, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(10.0, 0), "10");
}

// ----------------------------------------------------------------- flags

TEST(Flags, ParsesKeyValueAndBoolean) {
  const char* argv[] = {"prog", "--ops=500", "--seed=9", "--quick",
                        "ignored"};
  Flags f(5, const_cast<char**>(argv));
  EXPECT_EQ(f.u64("ops", 1), 500u);
  EXPECT_EQ(f.u64("seed", 1), 9u);
  EXPECT_TRUE(f.flag("quick"));
  EXPECT_FALSE(f.flag("missing"));
  EXPECT_EQ(f.u64("missing", 42), 42u);
  EXPECT_DOUBLE_EQ(f.real("missing", 1.5), 1.5);
}

TEST(Flags, ParsesReals) {
  const char* argv[] = {"prog", "--load=0.85"};
  Flags f(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(f.real("load", 0.0), 0.85);
  EXPECT_DOUBLE_EQ(f.f64("load", 0.0), 0.85);  // real() is the f64 shim
}

TEST(Flags, TypedStringAccessor) {
  const char* argv[] = {"prog", "--trace=out.json"};
  Flags f(2, const_cast<char**>(argv));
  EXPECT_EQ(f.str("trace", ""), "out.json");
  EXPECT_EQ(f.str("json", "fallback"), "fallback");
}

TEST(Flags, CommonRegistryCoversSharedKnobs) {
  const auto& specs = Flags::common_flags();
  for (const char* name : {"seed", "ops", "jobs", "json", "trace", "quick",
                           "help"}) {
    const bool present = std::any_of(
        specs.begin(), specs.end(),
        [name](const FlagSpec& s) { return s.name == name; });
    EXPECT_TRUE(present) << name;
  }
}

TEST(Flags, GeneratedHelpListsExtrasAndCommons) {
  const char* argv[] = {"prog", "--help"};
  Flags f(2, const_cast<char**>(argv),
          {{"variant", "NAME", "which flush variant to run"}},
          "Demo synopsis line.");
  EXPECT_TRUE(f.help_requested());
  const std::string usage = f.usage();
  EXPECT_NE(usage.find("Usage: prog"), std::string::npos);
  EXPECT_NE(usage.find("Demo synopsis line."), std::string::npos);
  EXPECT_NE(usage.find("--variant=NAME"), std::string::npos);
  EXPECT_NE(usage.find("which flush variant to run"), std::string::npos);
  EXPECT_NE(usage.find("--trace=PATH"), std::string::npos);
  EXPECT_NE(usage.find("--jobs=N"), std::string::npos);
}

// ------------------------------------------------------------------ json

TEST(Json, DumpsOrderedDeterministicDocuments) {
  Json doc = Json::object();
  doc.set("b_first", Json::num(std::uint64_t{3}))
      .set("a_second", Json::str("x\"y"))
      .set("arr", Json::array().push(Json::num(1.5)).push(Json::boolean(true)));
  const std::string compact = doc.dump(0);
  // Insertion order, not key order.
  EXPECT_LT(compact.find("b_first"), compact.find("a_second"));
  EXPECT_NE(compact.find("\"x\\\"y\""), std::string::npos);
  EXPECT_EQ(compact, doc.dump(0));  // stable
  EXPECT_NE(doc.dump(2).find('\n'), std::string::npos);
}

TEST(Json, EmitWritesFile) {
  const std::string path = "bench_util_test_emit.json";
  Json doc = Json::object();
  doc.set("bench", Json::str("unit"));
  ASSERT_TRUE(emit_json(path, doc));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"bench\": \"unit\""), std::string::npos);
  std::remove(path.c_str());
}

// ----------------------------------------------------------- SweepRunner

TEST(SweepRunner, JobsFromFlagsDefaultsToSerial) {
  const char* argv[] = {"prog"};
  EXPECT_EQ(jobs_from(Flags(1, const_cast<char**>(argv))), 1u);
  const char* argv4[] = {"prog", "--jobs=4"};
  EXPECT_EQ(jobs_from(Flags(2, const_cast<char**>(argv4))), 4u);
  const char* argv0[] = {"prog", "--jobs=0"};
  // 0 = hardware concurrency, resolved by the runner itself.
  EXPECT_EQ(SweepRunner(jobs_from(Flags(2, const_cast<char**>(argv0)))).jobs(),
            SweepRunner::default_jobs());
}

TEST(SweepRunner, MapReturnsResultsInSubmissionOrder) {
  SweepRunner runner(4);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  const std::vector<int> out =
      runner.map(items, [](const int& v) { return v * 3; });
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 3);
  }
}

TEST(SweepRunner, MapNParityAcrossJobCounts) {
  const auto cell = [](std::size_t i) {
    // Deterministic per-cell work with its own state, as the contract
    // (DESIGN.md §7.1) requires of every sweep cell.
    std::uint64_t h = 0x9E3779B97F4A7C15ull + i;
    for (int r = 0; r < 1000; ++r) h = h * 6364136223846793005ull + i;
    return h;
  };
  SweepRunner serial(1);
  SweepRunner wide(8);
  EXPECT_EQ(serial.map_n(64, cell), wide.map_n(64, cell));
}

TEST(SweepRunner, RunMicroCellsMatchesSerialRunMicro) {
  // The real thing end-to-end: whole simulations on worker threads must
  // merge byte-identically to the serial loop.
  std::vector<MicroCell> cells;
  for (const auto sys :
       {rpcs::System::kWFlushRpc, rpcs::System::kFaRM, rpcs::System::kSFlushRpc,
        rpcs::System::kWFlushRpc}) {
    MicroConfig cfg;
    cfg.object_size = 512;
    cfg.ops = 120;
    cfg.seed = 5 + cells.size();
    cells.push_back({sys, cfg});
  }
  SweepRunner parallel(4);
  const auto par = run_micro_cells(parallel, cells);
  ASSERT_EQ(par.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto ref = run_micro(cells[i].system, cells[i].cfg);
    EXPECT_EQ(par[i].duration, ref.duration) << i;
    EXPECT_EQ(par[i].ops_completed, ref.ops_completed) << i;
    EXPECT_DOUBLE_EQ(par[i].kops, ref.kops) << i;
    EXPECT_EQ(par[i].sim_events, ref.sim_events) << i;
    EXPECT_EQ(par[i].latency.p99(), ref.latency.p99()) << i;
  }
}

}  // namespace
}  // namespace prdma::bench
