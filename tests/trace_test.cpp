// Tracer determinism, ring-wrap, allocation and parity pins for the
// tracing layer (DESIGN.md §7.2):
//  * recording a span performs zero heap allocations in any mode;
//  * disabled tracers record nothing;
//  * the ring keeps the newest events and the totals stay exact after
//    a wrap;
//  * Chrome export fragments are byte-identical at --jobs 1 vs 4;
//  * the span-derived Fig. 20 accounting matches the legacy host
//    charged-ns / ServerStats counters exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"

// Counting operator new: lets the tests assert the record hot path is
// allocation-free (the same discipline engine_perf gates globally).
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace prdma {
namespace {

TEST(Tracer, DisabledRecordsNothing) {
  trace::Tracer t;  // default kOff, nothing preallocated
  t.span(trace::Component::kSenderSw, 1, 100, 200);
  t.counter(trace::Component::kRnicSram, 50, 4096);
  EXPECT_EQ(t.total_ns(trace::Component::kSenderSw), 0u);
  EXPECT_EQ(t.samples(trace::Component::kRnicSram), 0u);
  EXPECT_EQ(t.events_recorded(), 0u);
  EXPECT_FALSE(t.enabled());
}

TEST(Tracer, RecordingAllocatesNothing) {
  trace::Tracer t;
  t.enable(trace::Mode::kFull, 1024);  // all storage preallocated here
  const std::uint64_t before = g_allocs.load();
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    t.span(trace::Component::kRnicDma, i, i * 10, i * 10 + 5,
           static_cast<std::uint16_t>(i % 4));
    t.counter(trace::Component::kRnicSram, i * 10, i);
  }
  EXPECT_EQ(g_allocs.load(), before);
  EXPECT_EQ(t.samples(trace::Component::kRnicDma), 10'000u);
}

TEST(Tracer, DisabledSpanAllocatesNothing) {
  trace::Tracer t;
  const std::uint64_t before = g_allocs.load();
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    t.span(trace::Component::kWorker, i, i, i + 1);
  }
  EXPECT_EQ(g_allocs.load(), before);
}

TEST(Tracer, RingWrapKeepsNewestAndExactTotals) {
  trace::Tracer t;
  t.enable(trace::Mode::kFull, 8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    t.span(trace::Component::kNetFlight, i, i * 100, i * 100 + 7);
  }
  EXPECT_EQ(t.events_recorded(), 20u);
  EXPECT_EQ(t.dropped(), 12u);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 8u);
  // Oldest-first view of the newest 8 events: corr 12..19.
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].corr, 12 + i);
  }
  // Totals never wrap: 20 spans of 7 ns each.
  EXPECT_EQ(t.total_ns(trace::Component::kNetFlight), 20u * 7u);
  EXPECT_EQ(t.samples(trace::Component::kNetFlight), 20u);
}

TEST(Tracer, InternSharesPredefinedIdsAndAddsDynamicOnes) {
  trace::Tracer t;
  t.enable(trace::Mode::kCounters);
  EXPECT_EQ(t.intern("rnic_dma"), trace::to_id(trace::Component::kRnicDma));
  const auto a = t.intern("custom_a");
  const auto b = t.intern("custom_b");
  EXPECT_EQ(a, trace::kPredefinedComponents);
  EXPECT_EQ(b, trace::kPredefinedComponents + 1);
  EXPECT_EQ(t.intern("custom_a"), a);
  EXPECT_EQ(t.name_of(a), "custom_a");
  t.span(a, 0, 0, 42);
  EXPECT_EQ(t.total_ns(a), 42u);
}

TEST(TraceExport, FragmentContainsSpansCountersAndMetadata) {
  trace::Tracer t;
  t.enable(trace::Mode::kFull, 64);
  t.span(trace::Component::kOpPersist, 7, 1'000, 3'500, 2);
  t.counter(trace::Component::kRnicSram, 2'000, 4096, 1);
  const std::string frag = trace::chrome_fragment(t, 3, "wflush-rpc");
  EXPECT_NE(frag.find("\"process_name\""), std::string::npos);
  EXPECT_NE(frag.find("wflush-rpc"), std::string::npos);
  EXPECT_NE(frag.find("\"op_persist\""), std::string::npos);
  EXPECT_NE(frag.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(frag.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(frag.find("\"rnic_sram\""), std::string::npos);
  // 1000 ns -> "1.000" us, duration 2500 ns -> "2.500" us.
  EXPECT_NE(frag.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(frag.find("\"dur\":2.500"), std::string::npos);

  const std::string doc = trace::wrap_fragments(frag);
  EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(doc.substr(doc.size() - 3), "]}\n");
}

bench::MicroConfig small_cell(trace::Mode mode, std::uint32_t pid) {
  bench::MicroConfig cfg;
  cfg.object_size = 1024;
  cfg.ops = 300;
  cfg.trace_mode = mode;
  cfg.trace_pid = pid;
  return cfg;
}

TEST(TraceDeterminism, FragmentsByteIdenticalAcrossJobs) {
  std::vector<bench::MicroCell> cells;
  std::uint32_t pid = 1;
  for (const auto sys : {rpcs::System::kWFlushRpc, rpcs::System::kFaRM,
                         rpcs::System::kSRFlushRpc}) {
    cells.push_back({sys, small_cell(trace::Mode::kFull, pid++)});
  }

  bench::SweepRunner serial(1);
  bench::SweepRunner parallel(4);
  const auto a = bench::run_micro_cells(serial, cells);
  const auto b = bench::run_micro_cells(parallel, cells);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FALSE(a[i].trace_json.empty());
    EXPECT_EQ(a[i].trace_json, b[i].trace_json) << "cell " << i;
    EXPECT_EQ(a[i].ops_completed, b[i].ops_completed);
    EXPECT_EQ(a[i].duration, b[i].duration);
    EXPECT_DOUBLE_EQ(a[i].sender_sw_ns, b[i].sender_sw_ns);
    EXPECT_DOUBLE_EQ(a[i].receiver_sw_ns, b[i].receiver_sw_ns);
  }
}

TEST(TraceParity, SpanAccountingMatchesCounterFallback) {
  // The Fig. 20 regression pin: the span-derived sender/receiver
  // software costs (tracing on) equal the counter-fallback accounting
  // run_micro uses with tracing off, for both a durable RPC and a
  // traditional baseline.
  for (const auto sys : {rpcs::System::kWFlushRpc, rpcs::System::kSFlushRpc,
                         rpcs::System::kFaRM, rpcs::System::kFaSST}) {
    const auto spans =
        bench::run_micro(sys, small_cell(trace::Mode::kCounters, 1));
    const auto fallback =
        bench::run_micro(sys, small_cell(trace::Mode::kOff, 1));
    ASSERT_GT(spans.ops_completed, 0u);
    ASSERT_EQ(spans.ops_completed, fallback.ops_completed);
    EXPECT_DOUBLE_EQ(spans.sender_sw_ns, fallback.sender_sw_ns)
        << rpcs::name_of(sys);
    EXPECT_DOUBLE_EQ(spans.receiver_sw_ns, fallback.receiver_sw_ns)
        << rpcs::name_of(sys);
    EXPECT_GT(spans.sender_sw_ns, 0.0);
    // Breakdown carries the same totals under the shared component ids.
    const auto ops = spans.ops_completed;
    EXPECT_DOUBLE_EQ(spans.breakdown.mean_ns(trace::Component::kSenderSw, ops),
                     spans.sender_sw_ns);
  }
}

TEST(TraceParity, TracingModeDoesNotChangeTheSimulation) {
  const auto off =
      bench::run_micro(rpcs::System::kWFlushRpc,
                       small_cell(trace::Mode::kOff, 1));
  const auto counters =
      bench::run_micro(rpcs::System::kWFlushRpc,
                       small_cell(trace::Mode::kCounters, 1));
  const auto full =
      bench::run_micro(rpcs::System::kWFlushRpc,
                       small_cell(trace::Mode::kFull, 1));
  EXPECT_EQ(off.sim_events, counters.sim_events);
  EXPECT_EQ(off.sim_events, full.sim_events);
  EXPECT_EQ(off.duration, counters.duration);
  EXPECT_EQ(off.duration, full.duration);
  EXPECT_EQ(off.ops_completed, full.ops_completed);
}

}  // namespace
}  // namespace prdma
