// Multi-replica durability protocols (src/repl/) and their harness
// plumbing: chain/mirror commit ordering, the ack-after-every-replica
// pin (and its inverse under the ack_before_replica_persist mutant),
// crash self-healing, content-mode interaction, registry wiring and
// sweep determinism.

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <vector>

#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "check/repl_explorer.hpp"
#include "core/node.hpp"
#include "net/faults.hpp"
#include "repl/replication.hpp"
#include "rpcs/registry.hpp"
#include "sim/task.hpp"

namespace prdma::repl {
namespace {

using core::FlushVariant;
using core::RpcOp;
using core::RpcRequest;
using core::RpcResult;

constexpr std::uint32_t kValue = 4096;

bench::MicroConfig repl_config(Protocol p, std::size_t replicas,
                               bool mutant = false) {
  bench::MicroConfig mc;
  mc.object_size = kValue;
  mc.read_ratio = 0.0;
  mc.content_mode = mem::ContentMode::kFull;
  mc.replication.protocol = p;
  mc.replication.replicas = replicas;
  mc.replication.ack_before_replica_persist = mutant;
  return mc;
}

/// A fresh replicated deployment on its own cluster: replicas on
/// nodes [0, R), one client on node R.
struct Fixture {
  explicit Fixture(const bench::MicroConfig& mc,
                   FlushVariant v = FlushVariant::kWFlush)
      : params(bench::params_for(mc)),
        cluster(params, mc.replication.replicas + 1) {
    const std::size_t client_nodes[] = {mc.replication.replicas};
    dep = make_replicated_deployment(cluster, v, mc.replication, client_nodes,
                                     params);
    set = dynamic_cast<ReplicaSet*>(dep.server.get());
    client = dynamic_cast<ReplicatedClient*>(dep.clients.front().get());
  }

  core::ModelParams params;
  core::Cluster cluster;
  core::RpcDeployment dep;
  ReplicaSet* set = nullptr;
  ReplicatedClient* client = nullptr;
};

sim::Task<> write_serial(core::RpcClient& c, std::uint64_t n,
                         std::vector<RpcResult>& out, bool& done) {
  for (std::uint64_t i = 0; i < n; ++i) {
    const RpcRequest req{RpcOp::kWrite, i % 16, kValue};
    out.push_back(co_await c.call(req));
  }
  done = true;
}

// ------------------------------------------------------ commit ordering

class BothProtocols : public ::testing::TestWithParam<Protocol> {};

TEST_P(BothProtocols, SerialWritesGetIdenticalSequencesOnEveryReplica) {
  // A serial writer commits txn i as redo-log sequence i on EVERY
  // replica's connection — the protocols must not reorder or skip.
  Fixture f(repl_config(GetParam(), 3));
  std::vector<RpcResult> results;
  bool done = false;
  sim::spawn(write_serial(*f.client, 12, results, done));
  f.cluster.sim().run();

  ASSERT_TRUE(done);
  ASSERT_EQ(results.size(), 12u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok);
    EXPECT_GT(r.durable_at, r.issued_at);
  }
  ASSERT_EQ(f.client->txns().size(), 12u);
  EXPECT_EQ(f.client->acked(), 12u);
  for (const auto& [txn, rec] : f.client->txns()) {
    ASSERT_TRUE(rec.acked);
    ASSERT_EQ(rec.seq_on.size(), 3u);
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(rec.seq_on[r], txn)
          << "replica " << r << " of txn " << txn;
    }
  }
}

TEST_P(BothProtocols, AckFiresOnlyAfterEveryReplicaPersisted) {
  // The cluster ACK pin: a transaction completes no earlier than the
  // LAST replica's persist-ACK for its entry.
  Fixture f(repl_config(GetParam(), 2));
  // hop_ack[r][seq] = instant hop r observed remote persistence.
  std::map<std::uint64_t, sim::SimTime> hop_ack[2];
  for (std::size_t r = 0; r < 2; ++r) {
    f.client->hop(r).set_ack_hook(
        [&f, &hop_ack, r](std::uint64_t seq, std::uint32_t) {
          hop_ack[r][seq] = f.cluster.sim().now();
        });
  }
  std::vector<RpcResult> results;
  bool done = false;
  sim::spawn(write_serial(*f.client, 10, results, done));
  f.cluster.sim().run();

  ASSERT_TRUE(done);
  for (const auto& [txn, rec] : f.client->txns()) {
    ASSERT_TRUE(rec.acked);
    for (std::size_t r = 0; r < 2; ++r) {
      const auto it = hop_ack[r].find(rec.seq_on[r]);
      ASSERT_NE(it, hop_ack[r].end())
          << "txn " << txn << " never persisted on replica " << r;
      EXPECT_GE(rec.acked_at, it->second)
          << "txn " << txn << " acked before replica " << r << " persisted";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Repl, BothProtocols,
                         ::testing::Values(Protocol::kChain,
                                           Protocol::kMirror),
                         [](const auto& param_info) {
                           return param_info.param == Protocol::kChain
                                      ? "Chain"
                                      : "Mirror";
                         });

TEST(Mutant, AckBeforeReplicaPersistInvertsThePin) {
  // Same measurement as the pin above, mutant switched on: some
  // transaction must be acknowledged BEFORE the tail replica persisted
  // it — the window the replicated oracle exists to catch.
  Fixture f(repl_config(Protocol::kChain, 2, /*mutant=*/true));
  std::map<std::uint64_t, sim::SimTime> tail_ack;
  f.client->hop(1).set_ack_hook(
      [&f, &tail_ack](std::uint64_t seq, std::uint32_t) {
        tail_ack[seq] = f.cluster.sim().now();
      });
  std::vector<RpcResult> results;
  bool done = false;
  sim::spawn(write_serial(*f.client, 10, results, done));
  f.cluster.sim().run();

  ASSERT_TRUE(done);
  std::size_t early = 0;
  for (const auto& [txn, rec] : f.client->txns()) {
    ASSERT_TRUE(rec.acked);
    // Background completion still lands every hop eventually.
    ASSERT_NE(rec.seq_on[1], 0u) << "txn " << txn;
    const auto it = tail_ack.find(rec.seq_on[1]);
    ASSERT_NE(it, tail_ack.end());
    if (rec.acked_at < it->second) ++early;
  }
  EXPECT_GT(early, 0u) << "mutant must acknowledge ahead of the tail";
}

// -------------------------------------------------------- read routing

TEST(Repl, ReadsGoToTheHeadAndCreateNoTransactions) {
  Fixture f(repl_config(Protocol::kChain, 2));
  std::vector<RpcResult> results;
  bool done = false;
  sim::spawn([](core::RpcClient& c, std::vector<RpcResult>& out,
                bool& d) -> sim::Task<> {
    out.push_back(co_await c.call({RpcOp::kWrite, 1, kValue}));
    out.push_back(co_await c.call({RpcOp::kRead, 1, kValue}));
    d = true;
  }(*f.client, results, done));
  f.cluster.sim().run();

  ASSERT_TRUE(done);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_TRUE(results[1].ok);
  EXPECT_EQ(f.client->txns().size(), 1u) << "reads are not replicated";
}

// ------------------------------------------------- crash & self-healing

TEST(Repl, CrashedReplicaHealsAndEveryOpCompletes) {
  // Mid-run crash of the tail replica: drivers stall on the dead hop,
  // recovery replays its log, writes self-heal; nothing is lost.
  check::ReplExplorerConfig cfg;
  cfg.protocol = Protocol::kChain;
  cfg.replicas = 2;
  cfg.ops = 24;
  cfg.window = 4;
  const auto dry = check::run_repl_schedule(cfg, {cfg.seed, cfg.ops, {}});
  ASSERT_EQ(dry.ops_completed, cfg.ops);
  ASSERT_EQ(dry.crashes_fired, 0u);

  check::ReplSchedule s{cfg.seed, cfg.ops, {{1, dry.end_time / 2}}};
  const auto r = check::run_repl_schedule(cfg, s);
  EXPECT_GE(r.crashes_fired, 1u);
  EXPECT_EQ(r.ops_completed, cfg.ops) << "self-healing must finish the job";
  EXPECT_GT(r.end_time, dry.end_time) << "recovery costs simulated time";
  EXPECT_TRUE(r.violations.empty())
      << (r.violations.empty() ? "" : r.violations.front().detail);
}

TEST(Repl, CorrelatedCrashOfAllReplicasStillRecovers) {
  check::ReplExplorerConfig cfg;
  cfg.protocol = Protocol::kMirror;
  cfg.replicas = 2;
  cfg.ops = 16;
  const auto dry = check::run_repl_schedule(cfg, {cfg.seed, cfg.ops, {}});
  check::ReplSchedule s{cfg.seed,
                        cfg.ops,
                        {{0, dry.end_time / 2}, {1, dry.end_time / 2}}};
  const auto r = check::run_repl_schedule(cfg, s);
  EXPECT_EQ(r.crashes_fired, 2u);
  EXPECT_EQ(r.ops_completed, cfg.ops);
  EXPECT_TRUE(r.violations.empty())
      << (r.violations.empty() ? "" : r.violations.front().detail);
}

// ------------------------------------------------ content-mode contract

TEST(Repl, ShadowContentModeRefusesCrashInjection) {
  // Same fail-closed contract as Node::attach_crash_hook: shadow
  // stores cannot express torn DMA, so crash injection must throw
  // rather than silently pass a content-blind check.
  bench::MicroConfig mc = repl_config(Protocol::kChain, 2);
  mc.content_mode = mem::ContentMode::kShadow;
  Fixture f(mc);
  EXPECT_THROW(f.set->crash_replica(0, sim::kMillisecond), std::logic_error);
}

TEST(Repl, ShadowModeIsTimingIdenticalAndCopiesFewerBytes) {
  // DESIGN.md §7.3 extended to replication: the shadow data plane must
  // not perturb a replicated cell's timing — only elide payload copies
  // across every forwarding hop.
  bench::MicroConfig full = repl_config(Protocol::kChain, 2);
  full.ops = 200;
  bench::MicroConfig shadow = full;
  shadow.content_mode = mem::ContentMode::kShadow;
  const auto a = bench::run_micro(rpcs::System::kWFlushRpc, full);
  const auto b = bench::run_micro(rpcs::System::kWFlushRpc, shadow);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.ops_completed, b.ops_completed);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_LT(b.bytes_copied, a.bytes_copied);
}

// --------------------------------------------------- config validation

TEST(Repl, ReplicaSetRejectsDegenerateConfigs) {
  bench::MicroConfig mc = repl_config(Protocol::kChain, 2);
  const auto params = bench::params_for(mc);
  core::Cluster cluster(params, 3);

  ReplicationConfig none;  // protocol kNone
  EXPECT_THROW(ReplicaSet(cluster, FlushVariant::kWFlush, none, params),
               std::invalid_argument);

  ReplicationConfig one = mc.replication;
  one.replicas = 1;
  EXPECT_THROW(ReplicaSet(cluster, FlushVariant::kWFlush, one, params),
               std::invalid_argument);

  ReplicationConfig all = mc.replication;
  all.replicas = 3;  // no node left for a client
  EXPECT_THROW(ReplicaSet(cluster, FlushVariant::kWFlush, all, params),
               std::invalid_argument);

  // A client cannot live on a replica node.
  ReplicaSet set(cluster, FlushVariant::kWFlush, mc.replication, params);
  EXPECT_THROW((void)set.connect_client(1), std::invalid_argument);
}

// ------------------------------------------------------ registry wiring

TEST(Registry, InactiveReplicationIsThePlainSinglePrimaryPath) {
  bench::MicroConfig mc;
  mc.object_size = kValue;
  const auto params = bench::params_for(mc);
  core::Cluster cluster(params, 2);
  const std::size_t clients[] = {std::size_t{1}};
  auto dep = rpcs::make_deployment(cluster, rpcs::System::kWFlushRpc,
                                   repl::ReplicationConfig{}, clients, params);
  EXPECT_EQ(dep.server->name(), rpcs::name_of(rpcs::System::kWFlushRpc));
  EXPECT_EQ(dynamic_cast<ReplicaSet*>(dep.server.get()), nullptr);
}

TEST(Registry, ActiveReplicationBuildsAReplicaSet) {
  bench::MicroConfig mc = repl_config(Protocol::kMirror, 2);
  const auto params = bench::params_for(mc);
  core::Cluster cluster(params, 3);
  const std::size_t clients[] = {std::size_t{2}};
  auto dep = rpcs::make_deployment(cluster, rpcs::System::kSFlushRpc,
                                   mc.replication, clients, params);
  auto* set = dynamic_cast<ReplicaSet*>(dep.server.get());
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->replica_count(), 2u);
  EXPECT_EQ(set->variant(), FlushVariant::kSFlush);
  EXPECT_NE(std::string(set->name()).find("mirror"), std::string::npos);
}

TEST(Registry, ReplicationRequiresADurableRpc) {
  bench::MicroConfig mc = repl_config(Protocol::kChain, 2);
  const auto params = bench::params_for(mc);
  core::Cluster cluster(params, 3);
  const std::size_t clients[] = {std::size_t{2}};
  EXPECT_THROW((void)rpcs::make_deployment(cluster, rpcs::System::kFaRM,
                                           mc.replication, clients, params),
               std::invalid_argument);
}

TEST(Registry, ProtocolNamesRoundTrip) {
  for (const Protocol p :
       {Protocol::kNone, Protocol::kChain, Protocol::kMirror}) {
    const auto back = protocol_from_name(protocol_name(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(protocol_from_name("raid6").has_value());
}

// --------------------------------------------------------- determinism

TEST(Determinism, ReplicatedCellsAreByteIdenticalAtAnyJobCount) {
  // The sweep contract extends to replication: --jobs moves wall
  // clock only.
  std::vector<bench::MicroCell> cells;
  for (const Protocol p : {Protocol::kChain, Protocol::kMirror}) {
    bench::MicroConfig mc = repl_config(p, 2);
    mc.content_mode = mem::ContentMode::kShadow;
    mc.ops = 120;
    cells.push_back({rpcs::System::kWFlushRpc, mc});
    cells.push_back({rpcs::System::kSRFlushRpc, mc});
  }
  bench::SweepRunner serial(1);
  bench::SweepRunner wide(4);
  const auto a = bench::run_micro_cells(serial, cells);
  const auto b = bench::run_micro_cells(wide, cells);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].duration, b[i].duration) << "cell " << i;
    EXPECT_EQ(a[i].ops_completed, b[i].ops_completed) << "cell " << i;
    EXPECT_EQ(a[i].sim_events, b[i].sim_events) << "cell " << i;
    EXPECT_EQ(a[i].kops, b[i].kops) << "cell " << i;
  }
}

TEST(Determinism, ReplicatedStatsAreIdenticalAcrossEngineThreadCounts) {
  // DESIGN.md §7.5 applied to replication: a noise-free replicated
  // cell must produce the same stats whether the engine runs one
  // serial partition or one partition per node under 8 workers. Chain
  // exercises the forced-single-partition path (its hop clients live
  // on forwarder nodes); mirror genuinely shards across replicas.
  for (const Protocol p : {Protocol::kChain, Protocol::kMirror}) {
    bench::MicroConfig mc = repl_config(p, 2);
    mc.ops = 150;
    mc.jitter_sigma = 0.0;
    bench::MicroConfig wide = mc;
    wide.engine_threads = 8;
    const auto a = bench::run_micro(rpcs::System::kWFlushRpc, mc);
    const auto b = bench::run_micro(rpcs::System::kWFlushRpc, wide);
    EXPECT_EQ(a.duration, b.duration) << protocol_name(p);
    EXPECT_EQ(a.ops_completed, b.ops_completed) << protocol_name(p);
    EXPECT_EQ(a.sim_events, b.sim_events) << protocol_name(p);
    EXPECT_EQ(a.kops, b.kops) << protocol_name(p);
    EXPECT_EQ(a.latency.sum(), b.latency.sum()) << protocol_name(p);
    EXPECT_EQ(a.durable_latency.sum(), b.durable_latency.sum())
        << protocol_name(p);
    EXPECT_EQ(a.server.ops_processed, b.server.ops_processed)
        << protocol_name(p);
  }
}

// ------------------------------------------------------ degraded fabric

TEST(DegradedFabric, BothProtocolsCompleteEveryOpUnderLoss) {
  // RC go-back-N underneath the replication hops (DESIGN.md §7.8):
  // chain forwarding and mirror fan-out complete every transaction on
  // a lossy fabric, and at 1% loss the drop/retransmit accounting
  // shows the cables really were lossy.
  for (const Protocol p : {Protocol::kChain, Protocol::kMirror}) {
    for (const double loss : {1e-4, 1e-2}) {
      bench::MicroConfig mc = repl_config(p, 2);
      mc.ops = 150;
      mc.jitter_sigma = 0.0;
      mc.loss_probability = loss;
      mc.retransmit_interval = 500 * sim::kMicrosecond;
      const auto r = bench::run_micro(rpcs::System::kWFlushRpc, mc);
      EXPECT_EQ(r.ops_completed, mc.ops)
          << protocol_name(p) << " loss=" << loss;
      if (loss >= 1e-2) {
        EXPECT_GT(r.net_drops, 0u) << protocol_name(p);
        EXPECT_GT(r.rnic_retransmits, 0u) << protocol_name(p);
      }
    }
  }
}

TEST(DegradedFabric, LossyReplicatedStatsAreIdenticalAcrossThreadCounts) {
  // §7.8 determinism pin for replication: a lossy cell (with a client
  // partition layered on top) pins per-link RNG streams, so chain (a
  // single forced partition) and mirror (per-node partitions) both
  // stay byte-identical at 1 and 8 engine threads — including the
  // drop and retransmit counters.
  for (const Protocol p : {Protocol::kChain, Protocol::kMirror}) {
    bench::MicroConfig mc = repl_config(p, 2);
    mc.ops = 150;
    mc.jitter_sigma = 0.0;
    mc.loss_probability = 1e-2;
    mc.retransmit_interval = 500 * sim::kMicrosecond;
    net::FaultPlan plan;
    plan.partitions.push_back(
        {{2}, 100 * sim::kMicrosecond, 250 * sim::kMicrosecond});
    plan.validate();
    mc.faults = plan;
    bench::MicroConfig wide = mc;
    wide.engine_threads = 8;
    const auto a = bench::run_micro(rpcs::System::kWFlushRpc, mc);
    const auto b = bench::run_micro(rpcs::System::kWFlushRpc, wide);
    EXPECT_GT(a.net_drops, 0u) << protocol_name(p);
    EXPECT_GT(a.rnic_retransmits, 0u) << protocol_name(p);
    EXPECT_EQ(a.duration, b.duration) << protocol_name(p);
    EXPECT_EQ(a.ops_completed, b.ops_completed) << protocol_name(p);
    EXPECT_EQ(a.sim_events, b.sim_events) << protocol_name(p);
    EXPECT_EQ(a.kops, b.kops) << protocol_name(p);
    EXPECT_EQ(a.latency.sum(), b.latency.sum()) << protocol_name(p);
    EXPECT_EQ(a.durable_latency.sum(), b.durable_latency.sum())
        << protocol_name(p);
    EXPECT_EQ(a.net_drops, b.net_drops) << protocol_name(p);
    EXPECT_EQ(a.rnic_retransmits, b.rnic_retransmits) << protocol_name(p);
  }
}

// ---------------------------------------------------------- reproducer

TEST(Reproducer, FormatParseRoundTrip) {
  const check::ReplSchedule s{42, 17, {{0, 111}, {1, 222}}};
  const auto line = check::format_repl_reproducer(s);
  EXPECT_EQ(line, "seed=42 ops=17 crash=0@111ns,1@222ns");
  const auto back = check::parse_repl_reproducer(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seed, s.seed);
  EXPECT_EQ(back->ops, s.ops);
  EXPECT_EQ(back->crashes, s.crashes);
}

TEST(Reproducer, DryScheduleSaysCrashNone) {
  const check::ReplSchedule s{7, 8, {}};
  const auto line = check::format_repl_reproducer(s);
  EXPECT_EQ(line, "seed=7 ops=8 crash=none");
  const auto back = check::parse_repl_reproducer(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->crashes.empty());
}

TEST(Reproducer, ParseRejectsGarbage) {
  EXPECT_FALSE(check::parse_repl_reproducer("not a reproducer").has_value());
  EXPECT_FALSE(check::parse_repl_reproducer("seed=1 ops=2").has_value());
  EXPECT_FALSE(check::parse_repl_reproducer("seed=1 ops=2 crash=").has_value());
}

}  // namespace
}  // namespace prdma::repl
