// Property-style sweeps over the whole stack: system × size × mix
// grids asserting invariants that must hold for every configuration,
// plus randomized redo-log exercises.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "bench_util/micro.hpp"
#include "check/cluster_oracle.hpp"
#include "core/durable_rpc.hpp"
#include "core/redo_log.hpp"
#include "core/wire.hpp"
#include "repl/replication.hpp"
#include "sim/rng.hpp"

namespace prdma {
namespace {

// --------------------------------------------------- stack-wide invariants

using GridParam = std::tuple<rpcs::System, std::uint32_t /*size*/,
                             double /*read_ratio*/>;

class StackInvariants : public ::testing::TestWithParam<GridParam> {};

std::string grid_name(const ::testing::TestParamInfo<GridParam>& info) {
  std::string name{rpcs::name_of(std::get<0>(info.param))};
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name + "_" + std::to_string(std::get<1>(info.param)) + "B_r" +
         std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
}

TEST_P(StackInvariants, EveryOpCompletesAndAccountingBalances) {
  const auto [sys, size, read_ratio] = GetParam();
  bench::MicroConfig cfg;
  cfg.object_size = size;
  cfg.read_ratio = read_ratio;
  cfg.ops = 120;
  cfg.seed = 99;
  const auto res = bench::run_micro(sys, cfg);

  // Liveness: everything the driver issued completed.
  EXPECT_EQ(res.ops_completed, 120u);
  // Server-side accounting matches the client's view.
  EXPECT_EQ(res.server.ops_processed, 120u);
  // Time sanity.
  EXPECT_GT(res.duration, 0u);
  EXPECT_GT(res.latency.min(), 0u);
  EXPECT_GE(res.latency.max(), res.latency.min());
  EXPECT_EQ(res.latency.count(), 120u);
  // Write/read split covers all ops.
  EXPECT_EQ(res.write_latency.count() + res.read_latency.count(), 120u);
  // Durable systems must expose persist visibility for writes.
  if (rpcs::info_of(sys).durable && res.write_latency.count() > 0) {
    EXPECT_EQ(res.durable_latency.count(), res.write_latency.count());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StackInvariants,
    ::testing::Combine(
        ::testing::Values(rpcs::System::kFaRM, rpcs::System::kDaRPC,
                          rpcs::System::kRFP, rpcs::System::kOctopus,
                          rpcs::System::kWFlushRpc, rpcs::System::kSFlushRpc,
                          rpcs::System::kWRFlushRpc,
                          rpcs::System::kSRFlushRpc),
        ::testing::Values(64u, 4096u),
        ::testing::Values(0.0, 0.5)),
    grid_name);

// --------------------------------------------------- durable correctness

class DurableContent : public ::testing::TestWithParam<core::FlushVariant> {};

TEST_P(DurableContent, RandomOpStreamKeepsStoreConsistent) {
  // Property: after any random stream of durable writes, the object
  // store holds, for each object, exactly the payload pattern of the
  // *last* write to it (FIFO processing guarantees this).
  core::ModelParams params;
  params.memory.pm_capacity = 64ull << 20;
  params.max_payload = 1024;
  params.object_count = 16;
  core::Cluster cluster(params, 2);
  core::DurableRpcServer server(cluster, 0, GetParam(), params);
  auto client = server.connect_client(1);
  server.start();

  std::map<std::uint64_t, std::uint64_t> last_write_seq;
  sim::spawn([](core::DurableRpcClient& c, sim::Rng rng,
                std::map<std::uint64_t, std::uint64_t>& last) -> sim::Task<> {
    for (int i = 0; i < 120; ++i) {
      const std::uint64_t obj = rng.uniform(0, 15);
      const auto res = co_await c.call(
          core::RpcRequest{core::RpcOp::kWrite, obj, 256});
      EXPECT_TRUE(res.ok);
      last[obj] = res.tag;  // entry seq determines the payload pattern
    }
  }(*client, sim::Rng(5), last_write_seq));
  cluster.sim().run();

  for (const auto& [obj, seq] : last_write_seq) {
    std::vector<std::byte> got(256);
    cluster.node(0).mem().cpu_read(server.store().addr_of(obj), got);
    for (std::uint32_t i = 0; i < 256; ++i) {
      ASSERT_EQ(got[i], static_cast<std::byte>((seq * 131 + i * 7) & 0xFF))
          << "obj " << obj << " byte " << i;
    }
  }
}

TEST_P(DurableContent, CrashAtRandomPointsNeverLosesAckedWrites) {
  // Property: whatever instant the server dies, every write the client
  // saw a durable-ACK for is in the object store after recovery.
  for (const sim::SimTime crash_at : {500'000ull, 900'000ull, 1'500'000ull}) {
    core::ModelParams params;
    params.memory.pm_capacity = 64ull << 20;
    params.max_payload = 512;
    params.object_count = 4096;
    params.rpc_processing = 30 * sim::kMicrosecond;
    core::Cluster cluster(params, 2);
    core::DurableRpcServer server(cluster, 0, GetParam(), params);
    auto client = server.connect_client(1);
    server.start();

    // Each op writes a UNIQUE object, so "the last write to obj" is
    // unambiguous even for the one in-flight op the crash may or may
    // not have logged.
    std::map<std::uint64_t, std::uint64_t> acked;  // obj -> seq
    bool stop = false;
    sim::spawn([](core::DurableRpcClient& c,
                  std::map<std::uint64_t, std::uint64_t>& out,
                  bool& stopped) -> sim::Task<> {
      for (std::uint64_t i = 0; !stopped && i < 4'000; ++i) {
        const auto res = co_await c.call(
            core::RpcRequest{core::RpcOp::kWrite, i, 256});
        if (res.ok) out[i] = res.tag;
      }
    }(*client, acked, stop));

    cluster.sim().run_until(crash_at);
    stop = true;
    server.on_crash();
    cluster.node(0).crash();
    client->abort_pending();
    cluster.node(0).restart();
    sim::spawn([](core::DurableRpcServer& s) -> sim::Task<> {
      co_await s.recover_and_restart();
    }(server));
    cluster.sim().run();

    for (const auto& [obj, seq] : acked) {
      std::vector<std::byte> got(8);
      cluster.node(0).mem().cpu_read(server.store().addr_of(obj), got);
      // The store holds this seq's pattern OR a later write to the
      // same object that was also logged; either way byte 0 must match
      // SOME committed pattern — verify against the recorded seq only
      // when it was the last ack for that object.
      ASSERT_EQ(got[0], static_cast<std::byte>((seq * 131) & 0xFF))
          << "crash_at=" << crash_at << " obj=" << obj;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, DurableContent,
                         ::testing::Values(core::FlushVariant::kWFlush,
                                           core::FlushVariant::kSFlush,
                                           core::FlushVariant::kWRFlush,
                                           core::FlushVariant::kSRFlush),
                         [](const auto& inf) {
                           switch (inf.param) {
                             case core::FlushVariant::kWFlush: return "WFlush";
                             case core::FlushVariant::kSFlush: return "SFlush";
                             case core::FlushVariant::kWRFlush:
                               return "WRFlush";
                             case core::FlushVariant::kSRFlush:
                               return "SRFlush";
                           }
                           return "x";
                         });

// ------------------------------------------- replicated durability

TEST(ReplicatedDurability, AckedTxnsSurviveRandomReplicaCrashesOnEveryReplica) {
  // Property: under synchronous mirroring with both replicas crashing
  // at randomized instants, (a) every issued transaction is eventually
  // acknowledged and the set of acked transactions is exactly a prefix
  // of the txn-id order (the cluster oracle additionally audits the
  // prefix predicate at each crash instant, mid-run), and (b) after
  // healing, EVERY replica's object store holds each transaction's
  // payload pattern for the final per-replica log sequence — recovered
  // state equals the acked order, not some reordering or subset.
  constexpr std::uint64_t kOpsPerDriver = 20;
  constexpr std::uint32_t kVal = 1024;
  for (const std::uint64_t seed : {11ull, 23ull, 47ull}) {
    bench::MicroConfig mc;
    mc.objects = 64;
    mc.object_size = kVal;
    mc.read_ratio = 0.0;
    mc.content_mode = mem::ContentMode::kFull;
    mc.replication.protocol = repl::Protocol::kMirror;
    mc.replication.replicas = 2;
    const auto params = bench::params_for(mc);

    // Pass 0 runs crash-free to fix the time horizon the crash
    // instants randomize over; pass 1 injects the crashes.
    sim::SimTime horizon = 0;
    for (int pass = 0; pass < 2; ++pass) {
      core::Cluster cluster(params, 3);
      const std::size_t client_nodes[] = {std::size_t{2}};
      auto dep = repl::make_replicated_deployment(
          cluster, core::FlushVariant::kWFlush, mc.replication, client_nodes,
          params);
      auto* set = dynamic_cast<repl::ReplicaSet*>(dep.server.get());
      auto* client =
          dynamic_cast<repl::ReplicatedClient*>(dep.clients.front().get());
      ASSERT_NE(set, nullptr);
      ASSERT_NE(client, nullptr);
      check::ClusterOracle oracle(*set, {client});
      std::vector<std::uint64_t> ack_order;
      client->set_txn_ack_hook([&ack_order](const repl::TxnRecord& rec) {
        ack_order.push_back(rec.txn);
      });

      // Two pipelined drivers writing disjoint UNIQUE objects, so each
      // object is written by exactly one transaction and "the store
      // holds txn T's pattern" is unambiguous.
      std::map<std::uint64_t, std::uint64_t> obj_of;  // txn -> object
      int done = 0;
      for (std::uint64_t d = 0; d < 2; ++d) {
        sim::spawn([](core::RpcClient& c, std::uint64_t base,
                      std::map<std::uint64_t, std::uint64_t>& objs,
                      int& finished) -> sim::Task<> {
          for (std::uint64_t i = 0; i < kOpsPerDriver; ++i) {
            const auto res = co_await c.call(
                core::RpcRequest{core::RpcOp::kWrite, base + i, kVal});
            EXPECT_TRUE(res.ok);
            objs[res.tag] = base + i;
          }
          ++finished;
        }(*client, d * kOpsPerDriver, obj_of, done));
      }

      if (pass == 0) {
        cluster.sim().run();
        ASSERT_EQ(done, 2);
        horizon = cluster.sim().now();
        ASSERT_GT(horizon, 0u);
        continue;
      }

      // Both replicas die at independent instants inside the busy
      // window; fire in time order, then let healing finish the run.
      sim::Rng rng(seed);
      std::vector<std::pair<sim::SimTime, std::size_t>> crashes;
      for (std::size_t r = 0; r < 2; ++r) {
        crashes.emplace_back(rng.uniform(horizon / 5, (4 * horizon) / 5), r);
      }
      std::sort(crashes.begin(), crashes.end());
      for (const auto& [at, r] : crashes) {
        cluster.sim().run_until(at);
        set->crash_replica(r, sim::kMillisecond);
      }
      cluster.sim().run();

      ASSERT_EQ(done, 2) << "seed " << seed;
      EXPECT_EQ(set->crashes(), 2u);
      EXPECT_GT(oracle.txns_audited(), 0u) << "crashes must trigger audits";
      EXPECT_TRUE(oracle.ok()) << oracle.report();

      // Liveness + the acked-prefix shape: txn ids are dense from 1,
      // and every one of them completed.
      const std::uint64_t total = 2 * kOpsPerDriver;
      EXPECT_EQ(client->acked(), total);
      ASSERT_EQ(ack_order.size(), total);
      auto sorted = ack_order;
      std::sort(sorted.begin(), sorted.end());
      for (std::uint64_t t = 1; t <= total; ++t) {
        EXPECT_EQ(sorted[t - 1], t);
      }

      // Recovered state: each replica's store holds, for the one
      // transaction that wrote each object, the payload pattern of
      // that transaction's final sequence on THAT replica.
      for (const auto& [txn, rec] : client->txns()) {
        ASSERT_TRUE(rec.acked) << "txn " << txn;
        const auto obj_it = obj_of.find(txn);
        ASSERT_NE(obj_it, obj_of.end());
        for (std::size_t r = 0; r < 2; ++r) {
          const std::uint64_t seq = rec.seq_on[r];
          ASSERT_NE(seq, 0u) << "txn " << txn << " replica " << r;
          std::vector<std::byte> got(kVal);
          cluster.node(r).mem().cpu_read(
              set->server(r).store().addr_of(obj_it->second), got);
          for (std::uint32_t i = 0; i < kVal; ++i) {
            ASSERT_EQ(got[i],
                      static_cast<std::byte>((seq * 131 + i * 7) & 0xFF))
                << "seed " << seed << " txn " << txn << " replica " << r
                << " byte " << i;
          }
        }
      }
    }
  }
}

// ------------------------------------------------------- redo-log fuzzing

TEST(RedoLogProperty, RandomLandConsumeCyclesRecoverExactly) {
  core::ModelParams params;
  params.memory.pm_capacity = 16ull << 20;
  core::Cluster cluster(params, 1);
  core::LogLayout lay;
  lay.slots = 8;
  lay.payload_capacity = 256;
  lay.base = cluster.node(0).pm_alloc().alloc(lay.total_bytes(), 256);
  core::RedoLog log(cluster.node(0), lay);

  sim::Rng rng(31);
  std::uint64_t landed = 0;    // highest contiguously landed seq
  std::uint64_t consumed = 0;  // durable watermark
  for (int round = 0; round < 500; ++round) {
    if (rng.bernoulli(0.6) && landed - consumed < lay.slots) {
      // Land the next entry (client write reaching PM).
      ++landed;
      const auto payload = std::vector<std::byte>(
          static_cast<std::size_t>(rng.uniform(0, 256)), std::byte{0x5A});
      const auto image = core::encode_log_entry(
          landed, core::RpcOp::kWrite, rng.uniform(0, 99), payload, 0);
      cluster.node(0).mem().pm().poke(lay.slot_addr(landed), image);
    } else if (consumed < landed) {
      ++consumed;
      core::store_u64(cluster.node(0).mem(), lay.consumed_addr(), consumed);
    }
    // Invariant: recovery returns exactly the landed-but-unconsumed
    // contiguous suffix, in order.
    const auto entries = log.recover();
    ASSERT_EQ(entries.size(), landed - consumed) << "round " << round;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      ASSERT_EQ(entries[i].seq, consumed + 1 + i);
    }
  }
}

}  // namespace
}  // namespace prdma
