// Property-style sweeps over the whole stack: system × size × mix
// grids asserting invariants that must hold for every configuration,
// plus randomized redo-log exercises.

#include <gtest/gtest.h>

#include <tuple>

#include "bench_util/micro.hpp"
#include "core/durable_rpc.hpp"
#include "core/redo_log.hpp"
#include "core/wire.hpp"
#include "sim/rng.hpp"

namespace prdma {
namespace {

// --------------------------------------------------- stack-wide invariants

using GridParam = std::tuple<rpcs::System, std::uint32_t /*size*/,
                             double /*read_ratio*/>;

class StackInvariants : public ::testing::TestWithParam<GridParam> {};

std::string grid_name(const ::testing::TestParamInfo<GridParam>& info) {
  std::string name{rpcs::name_of(std::get<0>(info.param))};
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name + "_" + std::to_string(std::get<1>(info.param)) + "B_r" +
         std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
}

TEST_P(StackInvariants, EveryOpCompletesAndAccountingBalances) {
  const auto [sys, size, read_ratio] = GetParam();
  bench::MicroConfig cfg;
  cfg.object_size = size;
  cfg.read_ratio = read_ratio;
  cfg.ops = 120;
  cfg.seed = 99;
  const auto res = bench::run_micro(sys, cfg);

  // Liveness: everything the driver issued completed.
  EXPECT_EQ(res.ops_completed, 120u);
  // Server-side accounting matches the client's view.
  EXPECT_EQ(res.server.ops_processed, 120u);
  // Time sanity.
  EXPECT_GT(res.duration, 0u);
  EXPECT_GT(res.latency.min(), 0u);
  EXPECT_GE(res.latency.max(), res.latency.min());
  EXPECT_EQ(res.latency.count(), 120u);
  // Write/read split covers all ops.
  EXPECT_EQ(res.write_latency.count() + res.read_latency.count(), 120u);
  // Durable systems must expose persist visibility for writes.
  if (rpcs::info_of(sys).durable && res.write_latency.count() > 0) {
    EXPECT_EQ(res.durable_latency.count(), res.write_latency.count());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StackInvariants,
    ::testing::Combine(
        ::testing::Values(rpcs::System::kFaRM, rpcs::System::kDaRPC,
                          rpcs::System::kRFP, rpcs::System::kOctopus,
                          rpcs::System::kWFlushRpc, rpcs::System::kSFlushRpc,
                          rpcs::System::kWRFlushRpc,
                          rpcs::System::kSRFlushRpc),
        ::testing::Values(64u, 4096u),
        ::testing::Values(0.0, 0.5)),
    grid_name);

// --------------------------------------------------- durable correctness

class DurableContent : public ::testing::TestWithParam<core::FlushVariant> {};

TEST_P(DurableContent, RandomOpStreamKeepsStoreConsistent) {
  // Property: after any random stream of durable writes, the object
  // store holds, for each object, exactly the payload pattern of the
  // *last* write to it (FIFO processing guarantees this).
  core::ModelParams params;
  params.memory.pm_capacity = 64ull << 20;
  params.max_payload = 1024;
  params.object_count = 16;
  core::Cluster cluster(params, 2);
  core::DurableRpcServer server(cluster, 0, GetParam(), params);
  auto client = server.connect_client(1);
  server.start();

  std::map<std::uint64_t, std::uint64_t> last_write_seq;
  sim::spawn([](core::DurableRpcClient& c, sim::Rng rng,
                std::map<std::uint64_t, std::uint64_t>& last) -> sim::Task<> {
    for (int i = 0; i < 120; ++i) {
      const std::uint64_t obj = rng.uniform(0, 15);
      const auto res = co_await c.call(
          core::RpcRequest{core::RpcOp::kWrite, obj, 256});
      EXPECT_TRUE(res.ok);
      last[obj] = res.tag;  // entry seq determines the payload pattern
    }
  }(*client, sim::Rng(5), last_write_seq));
  cluster.sim().run();

  for (const auto& [obj, seq] : last_write_seq) {
    std::vector<std::byte> got(256);
    cluster.node(0).mem().cpu_read(server.store().addr_of(obj), got);
    for (std::uint32_t i = 0; i < 256; ++i) {
      ASSERT_EQ(got[i], static_cast<std::byte>((seq * 131 + i * 7) & 0xFF))
          << "obj " << obj << " byte " << i;
    }
  }
}

TEST_P(DurableContent, CrashAtRandomPointsNeverLosesAckedWrites) {
  // Property: whatever instant the server dies, every write the client
  // saw a durable-ACK for is in the object store after recovery.
  for (const sim::SimTime crash_at : {500'000ull, 900'000ull, 1'500'000ull}) {
    core::ModelParams params;
    params.memory.pm_capacity = 64ull << 20;
    params.max_payload = 512;
    params.object_count = 4096;
    params.rpc_processing = 30 * sim::kMicrosecond;
    core::Cluster cluster(params, 2);
    core::DurableRpcServer server(cluster, 0, GetParam(), params);
    auto client = server.connect_client(1);
    server.start();

    // Each op writes a UNIQUE object, so "the last write to obj" is
    // unambiguous even for the one in-flight op the crash may or may
    // not have logged.
    std::map<std::uint64_t, std::uint64_t> acked;  // obj -> seq
    bool stop = false;
    sim::spawn([](core::DurableRpcClient& c,
                  std::map<std::uint64_t, std::uint64_t>& out,
                  bool& stopped) -> sim::Task<> {
      for (std::uint64_t i = 0; !stopped && i < 4'000; ++i) {
        const auto res = co_await c.call(
            core::RpcRequest{core::RpcOp::kWrite, i, 256});
        if (res.ok) out[i] = res.tag;
      }
    }(*client, acked, stop));

    cluster.sim().run_until(crash_at);
    stop = true;
    server.on_crash();
    cluster.node(0).crash();
    client->abort_pending();
    cluster.node(0).restart();
    sim::spawn([](core::DurableRpcServer& s) -> sim::Task<> {
      co_await s.recover_and_restart();
    }(server));
    cluster.sim().run();

    for (const auto& [obj, seq] : acked) {
      std::vector<std::byte> got(8);
      cluster.node(0).mem().cpu_read(server.store().addr_of(obj), got);
      // The store holds this seq's pattern OR a later write to the
      // same object that was also logged; either way byte 0 must match
      // SOME committed pattern — verify against the recorded seq only
      // when it was the last ack for that object.
      ASSERT_EQ(got[0], static_cast<std::byte>((seq * 131) & 0xFF))
          << "crash_at=" << crash_at << " obj=" << obj;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, DurableContent,
                         ::testing::Values(core::FlushVariant::kWFlush,
                                           core::FlushVariant::kSFlush,
                                           core::FlushVariant::kWRFlush,
                                           core::FlushVariant::kSRFlush),
                         [](const auto& inf) {
                           switch (inf.param) {
                             case core::FlushVariant::kWFlush: return "WFlush";
                             case core::FlushVariant::kSFlush: return "SFlush";
                             case core::FlushVariant::kWRFlush:
                               return "WRFlush";
                             case core::FlushVariant::kSRFlush:
                               return "SRFlush";
                           }
                           return "x";
                         });

// ------------------------------------------------------- redo-log fuzzing

TEST(RedoLogProperty, RandomLandConsumeCyclesRecoverExactly) {
  core::ModelParams params;
  params.memory.pm_capacity = 16ull << 20;
  core::Cluster cluster(params, 1);
  core::LogLayout lay;
  lay.slots = 8;
  lay.payload_capacity = 256;
  lay.base = cluster.node(0).pm_alloc().alloc(lay.total_bytes(), 256);
  core::RedoLog log(cluster.node(0), lay);

  sim::Rng rng(31);
  std::uint64_t landed = 0;    // highest contiguously landed seq
  std::uint64_t consumed = 0;  // durable watermark
  for (int round = 0; round < 500; ++round) {
    if (rng.bernoulli(0.6) && landed - consumed < lay.slots) {
      // Land the next entry (client write reaching PM).
      ++landed;
      const auto payload = std::vector<std::byte>(
          static_cast<std::size_t>(rng.uniform(0, 256)), std::byte{0x5A});
      const auto image = core::encode_log_entry(
          landed, core::RpcOp::kWrite, rng.uniform(0, 99), payload, 0);
      cluster.node(0).mem().pm().poke(lay.slot_addr(landed), image);
    } else if (consumed < landed) {
      ++consumed;
      core::store_u64(cluster.node(0).mem(), lay.consumed_addr(), consumed);
    }
    // Invariant: recovery returns exactly the landed-but-unconsumed
    // contiguous suffix, in order.
    const auto entries = log.recover();
    ASSERT_EQ(entries.size(), landed - consumed) << "round " << round;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      ASSERT_EQ(entries[i].seq, consumed + 1 + i);
    }
  }
}

}  // namespace
}  // namespace prdma
