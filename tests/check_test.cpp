// Crash-schedule explorer + durability oracle (src/check/).
//
// The oracle's contract (§4.2): a persist-ACK is a promise that
// survives a power failure at ANY later nanosecond. These tests drive
// the explorer over all four durable RPC variants — random schedules
// plus targeted schedules straddling every protocol-phase boundary —
// and additionally prove the oracle has teeth by switching on the
// ack-before-persist RNIC mutant and demanding a caught, shrunken,
// re-runnable reproducer.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "check/explorer.hpp"
#include "check/oracle.hpp"
#include "check/repl_explorer.hpp"
#include "core/redo_log.hpp"
#include "core/wire.hpp"

namespace prdma::check {
namespace {

using core::FlushVariant;

ExplorerConfig small_config(FlushVariant v) {
  ExplorerConfig cfg;
  cfg.variant = v;
  cfg.seed = 17;
  cfg.ops = 48;
  cfg.window = 8;
  cfg.value_size = 4096;
  cfg.random_schedules = 32;
  cfg.restart_delay = 1 * sim::kMillisecond;
  return cfg;
}

/// The mutant is only observable when the ACK can outrun the DMA: a
/// 32 KB entry needs ~6 us of PCIe/media time while the flush ACK
/// round-trip is ~2 us, so an early ACK leaves a multi-microsecond
/// window in which a crash tears acknowledged data.
ExplorerConfig mutant_config() {
  ExplorerConfig cfg = small_config(FlushVariant::kWFlush);
  cfg.value_size = 32 * 1024;
  cfg.ops = 32;
  cfg.ack_before_persist = true;
  return cfg;
}

// ------------------------------------------------------------ reproducer

TEST(Reproducer, FormatParseRoundTrip) {
  const Schedule s{42, 123456789, 17};
  const auto line = format_reproducer(s);
  EXPECT_EQ(line, "seed=42 crash_at=123456789ns ops=17");
  const auto back = parse_reproducer(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seed, s.seed);
  EXPECT_EQ(back->crash_at, s.crash_at);
  EXPECT_EQ(back->ops, s.ops);
}

TEST(Reproducer, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_reproducer("not a reproducer").has_value());
  EXPECT_FALSE(parse_reproducer("seed=1 crash_at=2").has_value());
}

// ------------------------------------------------------- oracle plumbing

TEST(Oracle, CleanRunRecordsEveryAckAndStaysSilent) {
  const ExplorerConfig cfg = small_config(FlushVariant::kWFlush);
  const auto r = run_schedule(cfg, Schedule{cfg.seed, 0, cfg.ops});
  EXPECT_FALSE(r.crash_fired);
  EXPECT_EQ(r.ops_completed, cfg.ops);
  EXPECT_EQ(r.acks, cfg.ops);  // write-only workload: one ACK per op
  EXPECT_EQ(r.replays, 0u);
  EXPECT_TRUE(r.violations.empty()) << "clean run must not violate";
}

TEST(Oracle, CrashedRunReplaysAndCompletesEverything) {
  const ExplorerConfig cfg = small_config(FlushVariant::kWFlush);
  // Crash mid-run: half the clean run length.
  const auto dry = run_schedule(cfg, Schedule{cfg.seed, 0, cfg.ops});
  const auto r =
      run_schedule(cfg, Schedule{cfg.seed, dry.end_time / 2, cfg.ops});
  EXPECT_TRUE(r.crash_fired);
  EXPECT_EQ(r.ops_completed, cfg.ops);  // recovery + re-sends finish the job
  EXPECT_TRUE(r.violations.empty()) << "correct stack survives any schedule";
}

TEST(Oracle, DeterministicPayloadMatchesDurableClientPattern) {
  // The oracle recomputes acknowledged bytes from (seq, len) alone;
  // this pins the shared pattern so client and oracle cannot drift.
  const auto p = core::deterministic_payload(3, 8);
  ASSERT_EQ(p.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(p[i], static_cast<std::byte>((3 * 131 + i * 7) & 0xFF));
  }
}

// ---------------------------------------------------------- determinism

TEST(Explorer, IdenticalScheduleGivesBitIdenticalResult) {
  const ExplorerConfig cfg = small_config(FlushVariant::kSFlush);
  const auto dry = run_schedule(cfg, Schedule{cfg.seed, 0, cfg.ops});
  const Schedule s{cfg.seed, dry.end_time / 3, cfg.ops};
  const auto a = run_schedule(cfg, s);
  const auto b = run_schedule(cfg, s);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.ops_completed, b.ops_completed);
  EXPECT_EQ(a.acks, b.acks);
  EXPECT_EQ(a.replays, b.replays);
  EXPECT_EQ(a.resends, b.resends);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

TEST(Explorer, DryRunHarvestsPhaseBoundaries) {
  const ExplorerConfig cfg = small_config(FlushVariant::kWFlush);
  std::vector<sim::SimTime> boundaries;
  (void)run_schedule(cfg, Schedule{cfg.seed, 0, cfg.ops}, &boundaries);
  EXPECT_GE(boundaries.size(), 2 * cfg.ops)  // posted + done per op minimum
      << "phase traces should fire for every verb transition";
  EXPECT_TRUE(std::is_sorted(boundaries.begin(), boundaries.end()));
}

// ---------------------------------------- all variants survive schedules

class AllVariants : public ::testing::TestWithParam<FlushVariant> {};

TEST_P(AllVariants, Survives32RandomPlusTargetedSchedules) {
  const ExplorerConfig cfg = small_config(GetParam());
  const auto rep = explore(cfg);
  EXPECT_GE(rep.schedules_run,
            static_cast<std::uint64_t>(cfg.random_schedules));
  EXPECT_FALSE(rep.boundary_points.empty());
  EXPECT_EQ(rep.schedules_failed, 0u)
      << (rep.first_failure.has_value()
              ? format_reproducer(rep.first_failure->schedule)
              : std::string())
      << (rep.first_failure.has_value() && !rep.first_failure->violations.empty()
              ? rep.first_failure->violations.front().detail
              : std::string());
  EXPECT_FALSE(rep.minimal.has_value());
}

INSTANTIATE_TEST_SUITE_P(Check, AllVariants,
                         ::testing::Values(FlushVariant::kWFlush,
                                           FlushVariant::kSFlush,
                                           FlushVariant::kWRFlush,
                                           FlushVariant::kSRFlush),
                         [](const auto& info) {
                           switch (info.param) {
                             case FlushVariant::kWFlush: return "WFlush";
                             case FlushVariant::kSFlush: return "SFlush";
                             case FlushVariant::kWRFlush: return "WRFlush";
                             case FlushVariant::kSRFlush: return "SRFlush";
                           }
                           return "Unknown";
                         });

// ----------------------------------------------------- mutant detection

TEST(Mutant, AckBeforePersistIsCaughtAndShrunk) {
  const ExplorerConfig cfg = mutant_config();
  const auto rep = explore(cfg);
  ASSERT_GT(rep.schedules_failed, 0u)
      << "the explorer must find a schedule that exposes the early ACK";
  ASSERT_TRUE(rep.first_failure.has_value());
  ASSERT_TRUE(rep.minimal.has_value());
  EXPECT_LE(rep.minimal->schedule.ops, rep.first_failure->schedule.ops);
  EXPECT_FALSE(rep.reproducer.empty());

  // The violation is acknowledged-data loss (or corruption), at a
  // concrete sequence and instant.
  const auto& v = rep.minimal->violations.front();
  EXPECT_TRUE(v.kind == ViolationKind::kAckedLost ||
              v.kind == ViolationKind::kAckedCorrupt)
      << violation_name(v.kind) << ": " << v.detail;
  EXPECT_GT(v.seq, 0u);
  EXPECT_GT(v.at, 0u);
}

TEST(Explorer, ParallelJobsReportIsBitIdenticalToSerial) {
  // The whole point of the sweep runner: --jobs only changes wall
  // clock. Run the mutant hunt serial and 8-wide; every field of the
  // report — counts, boundary harvest, first failure, shrunken minimal
  // reproducer line — must match bit for bit.
  ExplorerConfig cfg = mutant_config();
  cfg.random_schedules = 12;
  ExplorerConfig wide = cfg;
  wide.jobs = 8;
  const auto a = explore(cfg);
  const auto b = explore(wide);
  EXPECT_EQ(a.schedules_run, b.schedules_run);
  EXPECT_EQ(a.schedules_failed, b.schedules_failed);
  EXPECT_EQ(a.clean_end, b.clean_end);
  EXPECT_EQ(a.boundary_points, b.boundary_points);
  ASSERT_EQ(a.first_failure.has_value(), b.first_failure.has_value());
  ASSERT_TRUE(a.first_failure.has_value())
      << "mutant config must fail under both job counts";
  EXPECT_EQ(a.first_failure->schedule.seed, b.first_failure->schedule.seed);
  EXPECT_EQ(a.first_failure->schedule.crash_at,
            b.first_failure->schedule.crash_at);
  EXPECT_EQ(a.first_failure->schedule.ops, b.first_failure->schedule.ops);
  ASSERT_EQ(a.first_failure->violations.size(),
            b.first_failure->violations.size());
  for (std::size_t i = 0; i < a.first_failure->violations.size(); ++i) {
    EXPECT_EQ(a.first_failure->violations[i].kind,
              b.first_failure->violations[i].kind);
    EXPECT_EQ(a.first_failure->violations[i].seq,
              b.first_failure->violations[i].seq);
    EXPECT_EQ(a.first_failure->violations[i].at,
              b.first_failure->violations[i].at);
  }
  ASSERT_EQ(a.minimal.has_value(), b.minimal.has_value());
  EXPECT_EQ(a.reproducer, b.reproducer);
}

TEST(Mutant, ShrunkenReproducerRoundTrips) {
  const ExplorerConfig cfg = mutant_config();
  const auto rep = explore(cfg);
  ASSERT_TRUE(rep.minimal.has_value());

  // Parse the printed seed+timestamp pair back and re-run it cold: the
  // identical violation must reappear.
  const auto parsed = parse_reproducer(rep.reproducer);
  ASSERT_TRUE(parsed.has_value());
  const auto replay = run_schedule(cfg, *parsed);
  ASSERT_FALSE(replay.violations.empty())
      << "reproducer must re-trigger the failure: " << rep.reproducer;
  EXPECT_EQ(replay.violations.size(), rep.minimal->violations.size());
  EXPECT_EQ(replay.violations.front().kind,
            rep.minimal->violations.front().kind);
  EXPECT_EQ(replay.violations.front().seq, rep.minimal->violations.front().seq);
  EXPECT_EQ(replay.violations.front().at, rep.minimal->violations.front().at);
}

TEST(Mutant, CleanWFlushWithLargePayloadsStillPasses) {
  // Control: identical workload without the mutant — the window the
  // mutant opens must not exist in the correct RNIC.
  ExplorerConfig cfg = mutant_config();
  cfg.ack_before_persist = false;
  cfg.random_schedules = 8;
  const auto rep = explore(cfg);
  EXPECT_EQ(rep.schedules_failed, 0u);
}

// ------------------------------------------------------ degraded fabric

// Acceptance matrix (DESIGN.md §7.8): the persist-ACK promise must
// hold on a lossy fabric exactly as on a clean one — go-back-N
// retransmission may slow schedules down, never weaken them.

TEST_P(AllVariants, SurvivesCrashSchedulesUnderPacketLoss) {
  ExplorerConfig cfg = small_config(GetParam());
  cfg.loss_probability = 1e-2;
  cfg.retransmit_interval = 200 * sim::kMicrosecond;
  cfg.random_schedules = 12;
  const auto rep = explore(cfg);
  EXPECT_GT(rep.schedules_run, 0u);
  EXPECT_EQ(rep.schedules_failed, 0u)
      << (rep.first_failure.has_value()
              ? format_reproducer(rep.first_failure->schedule)
              : std::string())
      << (rep.first_failure.has_value() && !rep.first_failure->violations.empty()
              ? rep.first_failure->violations.front().detail
              : std::string());
}

TEST_P(AllVariants, SurvivesEveryNetFaultFamily) {
  for (const NetFaultFamily family :
       {NetFaultFamily::kCrashDuringRetransmit,
        NetFaultFamily::kFlapDuringRecovery,
        NetFaultFamily::kPartitionThenHeal}) {
    ExplorerConfig cfg = small_config(GetParam());
    cfg.random_schedules = 8;
    cfg = with_net_faults(cfg, family);
    const auto rep = explore(cfg);
    EXPECT_EQ(rep.schedules_failed, 0u)
        << net_fault_family_name(family) << ": "
        << (rep.first_failure.has_value()
                ? format_reproducer(rep.first_failure->schedule)
                : std::string())
        << " "
        << (rep.first_failure.has_value() &&
                    !rep.first_failure->violations.empty()
                ? rep.first_failure->violations.front().detail
                : std::string());
  }
}

TEST(NetFaults, MildLossLeavesExplorationClean) {
  // The 1e-4 point of the loss matrix: rare enough that many schedules
  // see no drop at all, which must not perturb the oracle either.
  ExplorerConfig cfg = small_config(FlushVariant::kWRFlush);
  cfg.loss_probability = 1e-4;
  cfg.retransmit_interval = 200 * sim::kMicrosecond;
  cfg.random_schedules = 8;
  const auto rep = explore(cfg);
  EXPECT_EQ(rep.schedules_failed, 0u);
}

TEST(NetFaults, FaultedScheduleIsDeterministic) {
  // Loss draws and fault windows are part of the schedule's pure
  // function of (cfg, s): replaying the same point must be
  // bit-identical, or reproducers printed under faults would lie.
  const ExplorerConfig cfg =
      with_net_faults(small_config(FlushVariant::kSFlush),
                      NetFaultFamily::kFlapDuringRecovery);
  const auto dry = run_schedule(cfg, Schedule{cfg.seed, 0, cfg.ops});
  const Schedule s{cfg.seed, dry.end_time / 3, cfg.ops};
  const auto a = run_schedule(cfg, s);
  const auto b = run_schedule(cfg, s);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.ops_completed, b.ops_completed);
  EXPECT_EQ(a.acks, b.acks);
  EXPECT_EQ(a.resends, b.resends);
  EXPECT_EQ(a.replays, b.replays);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

TEST(Mutant, EarlyAckIsStillCaughtOnADegradedFabric) {
  // The oracle must not lose its teeth when retransmissions blur the
  // timeline: the ack-before-persist window is still a violation when
  // crashes land inside a loss burst.
  const ExplorerConfig cfg =
      with_net_faults(mutant_config(), NetFaultFamily::kCrashDuringRetransmit);
  const auto rep = explore(cfg);
  ASSERT_GT(rep.schedules_failed, 0u)
      << "degraded fabric must not mask the early-ACK mutant";
  ASSERT_TRUE(rep.minimal.has_value());
  EXPECT_FALSE(rep.reproducer.empty());
}

// ============================================= replicated crash oracle

ReplExplorerConfig small_repl_config(core::FlushVariant v,
                                     repl::Protocol p) {
  ReplExplorerConfig cfg;
  cfg.variant = v;
  cfg.protocol = p;
  cfg.replicas = 2;
  cfg.seed = 17;
  cfg.ops = 18;
  cfg.window = 4;
  cfg.value_size = 2048;
  cfg.random_schedules = 8;
  cfg.max_boundary_points = 6;
  cfg.jobs = 4;
  return cfg;
}

/// The replicated mutant acknowledges once the HEAD persisted and
/// finishes the other hops in the background; crashing the head inside
/// the forwarding window strands the acked entry on the dead replica —
/// the surviving peer has nothing (ViolationKind::kReplicaLost).
ReplExplorerConfig repl_mutant_config() {
  ReplExplorerConfig cfg =
      small_repl_config(core::FlushVariant::kWFlush, repl::Protocol::kChain);
  cfg.ops = 24;
  cfg.value_size = 16 * 1024;
  cfg.random_schedules = 16;
  cfg.max_boundary_points = 10;
  cfg.ack_before_replica_persist = true;
  return cfg;
}

TEST(ReplOracle, CleanRunAuditsEveryHopAndStaysSilent) {
  const auto cfg = small_repl_config(core::FlushVariant::kWFlush,
                                     repl::Protocol::kChain);
  const auto r = run_repl_schedule(cfg, ReplSchedule{cfg.seed, cfg.ops, {}});
  EXPECT_EQ(r.crashes_fired, 0u);
  EXPECT_EQ(r.ops_completed, cfg.ops);
  EXPECT_EQ(r.txn_acks, cfg.ops);
  // One per-replica persist-ACK per hop of every transaction.
  EXPECT_EQ(r.hop_acks, cfg.ops * cfg.replicas);
  EXPECT_TRUE(r.violations.empty());
}

class ReplAllCombos
    : public ::testing::TestWithParam<
          std::tuple<core::FlushVariant, repl::Protocol>> {};

TEST_P(ReplAllCombos, SurvivesTargetedCorrelatedAndRandomCrashSweeps) {
  const auto cfg = small_repl_config(std::get<0>(GetParam()),
                                     std::get<1>(GetParam()));
  const auto rep = explore_repl(cfg);
  EXPECT_GE(rep.schedules_run,
            static_cast<std::uint64_t>(cfg.random_schedules));
  EXPECT_FALSE(rep.boundary_points.empty());
  EXPECT_EQ(rep.schedules_failed, 0u)
      << (rep.first_failure.has_value()
              ? format_repl_reproducer(rep.first_failure->schedule)
              : std::string())
      << " "
      << (rep.first_failure.has_value() &&
                  !rep.first_failure->violations.empty()
              ? rep.first_failure->violations.front().detail
              : std::string());
  EXPECT_FALSE(rep.minimal.has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Repl, ReplAllCombos,
    ::testing::Combine(::testing::Values(FlushVariant::kWFlush,
                                         FlushVariant::kSFlush,
                                         FlushVariant::kWRFlush,
                                         FlushVariant::kSRFlush),
                       ::testing::Values(repl::Protocol::kChain,
                                         repl::Protocol::kMirror)),
    [](const auto& param_info) {
      std::string n;
      switch (std::get<0>(param_info.param)) {
        case FlushVariant::kWFlush: n = "WFlush"; break;
        case FlushVariant::kSFlush: n = "SFlush"; break;
        case FlushVariant::kWRFlush: n = "WRFlush"; break;
        case FlushVariant::kSRFlush: n = "SRFlush"; break;
      }
      n += std::get<1>(param_info.param) == repl::Protocol::kChain ? "Chain"
                                                                   : "Mirror";
      return n;
    });

TEST(ReplMutant, AckBeforeReplicaPersistIsCaughtAndShrunk) {
  const auto cfg = repl_mutant_config();
  const auto rep = explore_repl(cfg);
  ASSERT_GT(rep.schedules_failed, 0u)
      << "the explorer must find a head crash inside the forwarding window";
  ASSERT_TRUE(rep.first_failure.has_value());
  ASSERT_TRUE(rep.minimal.has_value());
  EXPECT_LE(rep.minimal->schedule.ops, rep.first_failure->schedule.ops);
  EXPECT_FALSE(rep.reproducer.empty());

  const auto& v = rep.minimal->violations.front();
  EXPECT_TRUE(v.kind == ViolationKind::kReplicaLost ||
              v.kind == ViolationKind::kTxnLost)
      << violation_name(v.kind) << ": " << v.detail;
  EXPECT_GT(v.seq, 0u);
  EXPECT_GT(v.at, 0u);
}

TEST(ReplMutant, ShrunkenReproducerRoundTrips) {
  const auto cfg = repl_mutant_config();
  const auto rep = explore_repl(cfg);
  ASSERT_TRUE(rep.minimal.has_value());

  // Parse the printed schedule back and re-run it cold: the identical
  // violation must reappear, bit for bit.
  const auto parsed = parse_repl_reproducer(rep.reproducer);
  ASSERT_TRUE(parsed.has_value());
  const auto replay = run_repl_schedule(cfg, *parsed);
  ASSERT_FALSE(replay.violations.empty())
      << "reproducer must re-trigger the failure: " << rep.reproducer;
  EXPECT_EQ(replay.violations.size(), rep.minimal->violations.size());
  EXPECT_EQ(replay.violations.front().kind,
            rep.minimal->violations.front().kind);
  EXPECT_EQ(replay.violations.front().seq,
            rep.minimal->violations.front().seq);
  EXPECT_EQ(replay.violations.front().at, rep.minimal->violations.front().at);
}

TEST(ReplMutant, CorrectChainWithSameWorkloadPasses) {
  // Control: the identical workload without the mutant must survive
  // the exact same exploration.
  ReplExplorerConfig cfg = repl_mutant_config();
  cfg.ack_before_replica_persist = false;
  cfg.random_schedules = 8;
  const auto rep = explore_repl(cfg);
  EXPECT_EQ(rep.schedules_failed, 0u)
      << (rep.first_failure.has_value() &&
                  !rep.first_failure->violations.empty()
              ? rep.first_failure->violations.front().detail
              : std::string());
}

TEST(ReplExplorer, ParallelJobsReportIsBitIdenticalToSerial) {
  ReplExplorerConfig cfg = repl_mutant_config();
  cfg.random_schedules = 8;
  cfg.jobs = 1;
  ReplExplorerConfig wide = cfg;
  wide.jobs = 8;
  const auto a = explore_repl(cfg);
  const auto b = explore_repl(wide);
  EXPECT_EQ(a.schedules_run, b.schedules_run);
  EXPECT_EQ(a.schedules_failed, b.schedules_failed);
  EXPECT_EQ(a.clean_end, b.clean_end);
  EXPECT_EQ(a.boundary_points, b.boundary_points);
  ASSERT_EQ(a.first_failure.has_value(), b.first_failure.has_value());
  ASSERT_TRUE(a.first_failure.has_value());
  EXPECT_EQ(a.first_failure->schedule.seed, b.first_failure->schedule.seed);
  EXPECT_EQ(a.first_failure->schedule.ops, b.first_failure->schedule.ops);
  EXPECT_EQ(a.first_failure->schedule.crashes,
            b.first_failure->schedule.crashes);
  EXPECT_EQ(a.reproducer, b.reproducer);
}

// ------------------------------------ replication on a degraded fabric

TEST(ReplNetFaults, BothProtocolsSurviveCrashSweepsUnderLoss) {
  // Replication hops ride the same lossy transport as clients: chain
  // forwarding and mirror fan-out must keep the replicated durability
  // predicate with 1% of packets vanishing.
  for (const repl::Protocol proto :
       {repl::Protocol::kChain, repl::Protocol::kMirror}) {
    auto cfg = small_repl_config(core::FlushVariant::kWFlush, proto);
    cfg.loss_probability = 1e-2;
    cfg.retransmit_interval = 200 * sim::kMicrosecond;
    cfg.random_schedules = 6;
    const auto rep = explore_repl(cfg);
    EXPECT_EQ(rep.schedules_failed, 0u)
        << (proto == repl::Protocol::kChain ? "chain" : "mirror") << ": "
        << (rep.first_failure.has_value()
                ? format_repl_reproducer(rep.first_failure->schedule)
                : std::string())
        << " "
        << (rep.first_failure.has_value() &&
                    !rep.first_failure->violations.empty()
                ? rep.first_failure->violations.front().detail
                : std::string());
  }
}

TEST(ReplNetFaults, ChainSurvivesReplicaLinkFlapAcrossCrashSweep) {
  // Flap the head→tail cable over the middle of the run: forwarding
  // hops stall on go-back-N until the cable heals, and replica crashes
  // layered on top must still never strand an acked transaction.
  auto cfg = small_repl_config(core::FlushVariant::kSRFlush,
                               repl::Protocol::kChain);
  cfg.retransmit_interval = 200 * sim::kMicrosecond;
  cfg.random_schedules = 6;
  const auto dry = run_repl_schedule(cfg, ReplSchedule{cfg.seed, cfg.ops, {}});
  const sim::SimTime span = std::max<sim::SimTime>(dry.end_time, 16);
  net::FaultPlan plan;
  plan.link_flaps.push_back({0, 1, span / 3, span / 3 + span / 8 + 1});
  plan.validate();
  cfg.faults = std::move(plan);
  const auto rep = explore_repl(cfg);
  EXPECT_EQ(rep.schedules_failed, 0u)
      << (rep.first_failure.has_value()
              ? format_repl_reproducer(rep.first_failure->schedule)
              : std::string())
      << " "
      << (rep.first_failure.has_value() &&
                  !rep.first_failure->violations.empty()
              ? rep.first_failure->violations.front().detail
              : std::string());
}

}  // namespace
}  // namespace prdma::check
