// Tests for the macro-benchmark substrates: YCSB generator + runner,
// synthetic graphs + PageRank, and the fault-injection experiment.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "fault/experiment.hpp"
#include "graph/pagerank.hpp"
#include "kv/ycsb.hpp"

namespace prdma {
namespace {

// ------------------------------------------------------------------ YCSB

TEST(YcsbGenerator, WorkloadMixesMatchSpecs) {
  struct Expect {
    kv::Workload w;
    kv::KvOp::Kind major;
    double major_share;
  };
  const Expect cases[] = {
      {kv::Workload::kA, kv::KvOp::Kind::kRead, 0.5},
      {kv::Workload::kB, kv::KvOp::Kind::kRead, 0.95},
      {kv::Workload::kC, kv::KvOp::Kind::kRead, 1.0},
      {kv::Workload::kD, kv::KvOp::Kind::kRead, 0.95},
      {kv::Workload::kE, kv::KvOp::Kind::kScan, 0.95},
      {kv::Workload::kF, kv::KvOp::Kind::kRead, 0.5},
  };
  for (const auto& c : cases) {
    kv::YcsbGenerator gen(c.w, 1000, 42);
    std::map<kv::KvOp::Kind, int> counts;
    const int n = 20000;
    for (int i = 0; i < n; ++i) ++counts[gen.next().kind];
    const double share = static_cast<double>(counts[c.major]) / n;
    EXPECT_NEAR(share, c.major_share, 0.02)
        << "workload " << kv::workload_name(c.w);
  }
}

TEST(YcsbGenerator, InsertsExtendKeySpace) {
  kv::YcsbGenerator gen(kv::Workload::kD, 100, 7);
  std::uint64_t max_insert_key = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto op = gen.next();
    if (op.kind == kv::KvOp::Kind::kInsert) {
      EXPECT_GE(op.key, 100u) << "inserts go to fresh keys";
      max_insert_key = std::max(max_insert_key, op.key);
    } else {
      EXPECT_LT(op.key, gen.key_space());
    }
  }
  EXPECT_GT(gen.key_space(), 100u);
  EXPECT_EQ(max_insert_key, gen.key_space() - 1);
}

TEST(YcsbGenerator, ScansHaveBoundedLength) {
  kv::YcsbGenerator gen(kv::Workload::kE, 1000, 9, 0.99, 10);
  for (int i = 0; i < 2000; ++i) {
    const auto op = gen.next();
    if (op.kind == kv::KvOp::Kind::kScan) {
      EXPECT_GE(op.scan_len, 1u);
      EXPECT_LE(op.scan_len, 10u);
    }
  }
}

TEST(YcsbRun, WorkloadARunsOnDurableAndBaseline) {
  for (const rpcs::System sys :
       {rpcs::System::kWFlushRpc, rpcs::System::kFaRM}) {
    kv::YcsbConfig cfg;
    cfg.workload = kv::Workload::kA;
    cfg.records = 512;
    cfg.value_size = 1024;
    cfg.ops = 300;
    const auto res = kv::run_ycsb(sys, cfg);
    EXPECT_EQ(res.ops_completed, 300u) << rpcs::name_of(sys);
    EXPECT_GT(res.avg_us(), 0.0);
    EXPECT_GE(res.rpcs_issued, res.ops_completed);
  }
}

TEST(YcsbRun, ScanWorkloadIssuesMoreRpcsThanOps) {
  kv::YcsbConfig cfg;
  cfg.workload = kv::Workload::kE;
  cfg.records = 512;
  cfg.value_size = 512;
  cfg.ops = 200;
  const auto res = kv::run_ycsb(rpcs::System::kFaRM, cfg);
  EXPECT_GT(res.rpcs_issued, res.ops_completed * 3)
      << "scans fan out into multiple reads";
}

// ----------------------------------------------------------------- graph

TEST(SyntheticGraph, MatchesSpecCounts) {
  graph::GraphSpec spec{"test", 1000, 8000};
  graph::SyntheticGraph g(spec, 11);
  EXPECT_EQ(g.node_count(), 1000u);
  EXPECT_EQ(g.edge_count(), 8000u);
  std::uint64_t total = 0;
  for (std::uint32_t u = 0; u < g.node_count(); ++u) total += g.out_degree(u);
  EXPECT_EQ(total, 8000u);
}

TEST(SyntheticGraph, DegreeDistributionIsHeavyTailed) {
  graph::GraphSpec spec{"test", 2000, 30000};
  graph::SyntheticGraph g(spec, 5);
  // In-degree skew: count how often each node appears as a target.
  std::vector<std::uint32_t> indeg(g.node_count(), 0);
  for (std::uint32_t u = 0; u < g.node_count(); ++u) {
    for (std::uint32_t k = 0; k < g.out_degree(u); ++k) {
      ++indeg[g.neighbors(u)[k]];
    }
  }
  std::sort(indeg.begin(), indeg.end(), std::greater<>());
  std::uint64_t top = 0;
  for (std::size_t i = 0; i < indeg.size() / 100; ++i) top += indeg[i];
  EXPECT_GT(static_cast<double>(top) / 30000.0, 0.07)
      << "top 1% of nodes should attract far more than the uniform 1%";
}

TEST(SyntheticGraph, DeterministicForSeed) {
  graph::GraphSpec spec{"t", 500, 3000};
  graph::SyntheticGraph a(spec, 3);
  graph::SyntheticGraph b(spec, 3);
  for (std::uint32_t u = 0; u < 500; ++u) {
    ASSERT_EQ(a.out_degree(u), b.out_degree(u));
  }
}

TEST(PageRank, RanksSumToOneAndRpcsFlow) {
  graph::GraphSpec spec{"small", 2000, 16000};
  graph::PageRankConfig cfg;
  cfg.iterations = 4;
  const auto res = graph::run_pagerank(rpcs::System::kWFlushRpc, spec, cfg);
  EXPECT_EQ(res.iterations, 4u);
  EXPECT_NEAR(res.rank_sum, 1.0, 1e-6);
  EXPECT_GT(res.top_rank, 1.0 / 2000.0) << "skew concentrates rank";
  EXPECT_GT(res.rpcs, 0u);
  EXPECT_GT(res.duration, 0u);
}

TEST(PageRank, LargerGraphTakesLonger) {
  graph::PageRankConfig cfg;
  cfg.iterations = 2;
  graph::GraphSpec small{"s", 1000, 8000};
  graph::GraphSpec large{"l", 4000, 32000};
  const auto rs = graph::run_pagerank(rpcs::System::kFaRM, small, cfg);
  const auto rl = graph::run_pagerank(rpcs::System::kFaRM, large, cfg);
  EXPECT_GT(rl.duration, rs.duration);
  EXPECT_GT(rl.rpcs, rs.rpcs);
}

// ----------------------------------------------------------------- fault

TEST(FaultExperiment, CleanRunCompletesAllOps) {
  fault::FailureRunConfig cfg;
  cfg.ops = 200;
  cfg.crashes = 0;
  cfg.window = 4;
  const auto res = fault::run_with_failures(rpcs::System::kWFlushRpc, cfg);
  EXPECT_EQ(res.ops_completed, 200u);
  EXPECT_EQ(res.crashes, 0u);
  EXPECT_EQ(res.resends, 0u);
}

TEST(FaultExperiment, DurableSurvivesCrashesWithReplay) {
  fault::FailureRunConfig cfg;
  cfg.ops = 300;
  cfg.crashes = 2;
  cfg.window = 4;
  const auto res = fault::run_with_failures(rpcs::System::kWFlushRpc, cfg);
  EXPECT_EQ(res.ops_completed, 300u) << "every op completes despite crashes";
  EXPECT_EQ(res.crashes, 2u);
  EXPECT_GT(res.replayed, 0u) << "redo-log entries replayed server-side";
}

TEST(FaultExperiment, TraditionalSurvivesButResendsMore) {
  fault::FailureRunConfig cfg;
  cfg.ops = 300;
  cfg.crashes = 2;
  cfg.window = 4;
  const auto durable = fault::run_with_failures(rpcs::System::kWFlushRpc, cfg);
  const auto traditional = fault::run_with_failures(rpcs::System::kFaRM, cfg);
  EXPECT_EQ(traditional.ops_completed, 300u);
  EXPECT_EQ(traditional.replayed, 0u) << "no redo log to replay";
  EXPECT_GE(traditional.resends, durable.resends);
  EXPECT_GT(traditional.total, durable.total)
      << "client-side retransmission cycles dominate (§5.4)";
}

TEST(FaultExperiment, Figure12CompositionIsMonotonic) {
  const auto points =
      fault::compose_figure12(0.0, {0.99, 0.9999}, /*seed=*/1, /*ops=*/300);
  ASSERT_EQ(points.size(), 2u);
  for (const auto& p : points) {
    EXPECT_GT(p.normalized_time, 0.0);
    EXPECT_LT(p.normalized_time, 1.0)
        << "durable RPCs must win under failures";
  }
  EXPECT_LE(points[0].normalized_time, points[1].normalized_time)
      << "lower availability -> bigger durable advantage";
}

}  // namespace
}  // namespace prdma
