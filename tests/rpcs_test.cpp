// Tests for the nine baseline RPC systems (Fig. 2 / Table 1) and the
// system registry. Baseline semantics under test: completion arrives
// only after the server persisted AND processed the request — the
// coupling the paper's durable RPCs remove.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string_view>

#include "core/wire.hpp"
#include "mem/device.hpp"
#include "rpcs/registry.hpp"
#include "sim/task.hpp"

namespace prdma::rpcs {
namespace {

using namespace prdma::sim::literals;
using core::Cluster;
using core::ModelParams;
using core::RpcDeployment;
using core::RpcOp;
using core::RpcRequest;
using core::RpcResult;
using sim::SimTime;
using sim::Task;

ModelParams small_params() {
  ModelParams p;
  p.memory.pm_capacity = 64ull << 20;
  p.memory.dram_capacity = 32ull << 20;
  p.max_payload = 2048;
  p.object_count = 128;
  return p;
}

struct Deployment {
  std::unique_ptr<Cluster> cluster;
  RpcDeployment dep;
};

Deployment deploy(System s, ModelParams p, std::size_t clients = 1) {
  Deployment d;
  d.cluster = std::make_unique<Cluster>(p, 1 + clients);
  std::vector<std::size_t> idx;
  for (std::size_t i = 1; i <= clients; ++i) idx.push_back(i);
  d.dep = make_deployment(*d.cluster, s, 0, idx, p);
  return d;
}

// -------------------------------------------------------------- registry

TEST(Registry, ThirteenSystems) {
  EXPECT_EQ(all_systems().size(), 13u);
  EXPECT_EQ(name_of(System::kWFlushRpc), "WFlush-RPC");
  EXPECT_EQ(name_of(System::kDaRPC), "DaRPC");
  EXPECT_TRUE(info_of(System::kSFlushRpc).durable);
  EXPECT_FALSE(info_of(System::kFaRM).durable);
  EXPECT_EQ(info_of(System::kFaSST).transport, "UD");
  EXPECT_EQ(info_of(System::kHerd).transport, "UC");
  EXPECT_TRUE(info_of(System::kLITE).kernel_level);
}

TEST(Registry, EvaluationLineupGatesFasstByMtu) {
  const auto small = evaluation_lineup(1024);
  const auto large = evaluation_lineup(64 * 1024);
  const auto has = [](const std::vector<System>& v, System s) {
    return std::find(v.begin(), v.end(), s) != v.end();
  };
  EXPECT_TRUE(has(small, System::kFaSST));
  EXPECT_FALSE(has(large, System::kFaSST));
  EXPECT_TRUE(has(large, System::kWFlushRpc));
  EXPECT_EQ(small.size(), 11u);
}

// ------------------------------------------------- all baselines, e2e

class BaselineE2E : public ::testing::TestWithParam<System> {};

TEST_P(BaselineE2E, WriteThenReadRoundTrip) {
  auto d = deploy(GetParam(), small_params());
  RpcResult w, r;
  sim::spawn([](Deployment& dep, RpcResult& wo, RpcResult& ro) -> Task<> {
    wo = co_await dep.dep.clients[0]->call(RpcRequest{RpcOp::kWrite, 7, 777});
    ro = co_await dep.dep.clients[0]->call(RpcRequest{RpcOp::kRead, 7, 777});
  }(d, w, r));
  d.cluster->sim().run();

  EXPECT_TRUE(w.ok) << name_of(GetParam());
  EXPECT_TRUE(r.ok);
  EXPECT_GT(w.latency(), 0u);
  EXPECT_GT(r.latency(), 0u);
  EXPECT_EQ(w.durable_at, w.completed_at)
      << "baseline writes are durable exactly at completion";
  EXPECT_EQ(d.dep.server->stats().ops_processed, 2u);
}

TEST_P(BaselineE2E, WriteIsDurableAtCompletion) {
  // Crash the server right after the client's completion: the object
  // data must survive (the baselines' "natural" durability, §3).
  auto d = deploy(GetParam(), small_params());
  auto* srv = d.dep.server.get();
  bool crashed = false;
  sim::spawn([](Deployment& dep, bool& flag) -> Task<> {
    const auto res = co_await dep.dep.clients[0]->call(
        RpcRequest{RpcOp::kWrite, 3, 512});
    EXPECT_TRUE(res.ok);
    dep.cluster->node(0).crash();
    flag = true;
  }(d, crashed));
  d.cluster->sim().run();
  ASSERT_TRUE(crashed);

  auto* base = dynamic_cast<BaselineServer*>(srv);
  ASSERT_NE(base, nullptr);
  std::vector<std::byte> got(512);
  d.cluster->node(0).mem().pm().peek(base->store().addr_of(3), got);
  // Payload pattern for seq 1.
  for (std::uint32_t i = 0; i < 512; ++i) {
    ASSERT_EQ(got[i], static_cast<std::byte>((1 * 131 + i * 7) & 0xFF))
        << name_of(GetParam()) << " byte " << i;
  }
}

TEST_P(BaselineE2E, CompletionWaitsForProcessing) {
  // Heavy load: injected 100 µs processing sits on the client's
  // critical path for every baseline — the cost the durable RPCs dodge.
  ModelParams p = small_params();
  p.rpc_processing = 100_us;
  auto d = deploy(GetParam(), p);
  RpcResult res;
  sim::spawn([](Deployment& dep, RpcResult& out) -> Task<> {
    out = co_await dep.dep.clients[0]->call(RpcRequest{RpcOp::kWrite, 1, 256});
  }(d, res));
  d.cluster->sim().run();
  EXPECT_TRUE(res.ok);
  // > 85 µs: the injected 100 µs processing carries lognormal jitter.
  EXPECT_GT(res.latency(), 85_us) << name_of(GetParam());
}

TEST_P(BaselineE2E, ManySequentialOpsComplete) {
  auto d = deploy(GetParam(), small_params());
  int ok_count = 0;
  sim::spawn([](Deployment& dep, int& n) -> Task<> {
    for (int i = 0; i < 50; ++i) {
      const auto res = co_await dep.dep.clients[0]->call(RpcRequest{
          i % 2 == 0 ? RpcOp::kWrite : RpcOp::kRead,
          static_cast<std::uint64_t>(i % 16), 128});
      if (res.ok) ++n;
    }
  }(d, ok_count));
  d.cluster->sim().run();
  EXPECT_EQ(ok_count, 50) << name_of(GetParam());
  EXPECT_EQ(d.dep.server->stats().ops_processed, 50u);
}

TEST_P(BaselineE2E, TwoClientsShareOneServer) {
  auto d = deploy(GetParam(), small_params(), 2);
  int done = 0;
  for (int c = 0; c < 2; ++c) {
    sim::spawn([](Deployment& dep, int client, int& n) -> Task<> {
      for (int i = 0; i < 10; ++i) {
        const auto res = co_await dep.dep.clients[client]->call(
            RpcRequest{RpcOp::kWrite, static_cast<std::uint64_t>(i), 64});
        if (res.ok) ++n;
      }
    }(d, c, done));
  }
  d.cluster->sim().run();
  EXPECT_EQ(done, 20) << name_of(GetParam());
  EXPECT_EQ(d.dep.server->stats().ops_processed, 20u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineE2E,
    ::testing::Values(System::kL5, System::kRFP, System::kFaSST,
                      System::kOctopus, System::kFaRM, System::kScaleRPC,
                      System::kDaRPC, System::kHerd, System::kLITE),
    [](const auto& inf) { return std::string(name_of(inf.param)); });

// -------------------------------------------------- system specifics

TEST(ScaleRpc, WarmupAddsPeriodicCost) {
  // With warm-up every 5 ops, op latencies show a periodic spike.
  ModelParams p = small_params();
  p.scalerpc_process_per_warmup = 5;
  auto d = deploy(System::kScaleRPC, p);
  std::vector<SimTime> lat;
  sim::spawn([](Deployment& dep, std::vector<SimTime>& out) -> Task<> {
    for (int i = 0; i < 10; ++i) {
      const auto res = co_await dep.dep.clients[0]->call(
          RpcRequest{RpcOp::kWrite, 1, 128});
      out.push_back(res.latency());
    }
  }(d, lat));
  d.cluster->sim().run();
  ASSERT_EQ(lat.size(), 10u);
  // Ops 0 and 5 carry the warm-up exchange; compare to their successors.
  EXPECT_GT(lat[0], lat[1] * 3 / 2);
  EXPECT_GT(lat[5], lat[6] * 3 / 2);
}

TEST(Lite, KernelCostsMakeItSlowerThanOctopus) {
  ModelParams p = small_params();
  SimTime lite_lat = 0;
  SimTime octo_lat = 0;
  for (System s : {System::kLITE, System::kOctopus}) {
    auto d = deploy(s, p);
    SimTime out = 0;
    sim::spawn([](Deployment& dep, SimTime& o) -> Task<> {
      const auto res = co_await dep.dep.clients[0]->call(
          RpcRequest{RpcOp::kWrite, 1, 256});
      o = res.latency();
    }(d, out));
    d.cluster->sim().run();
    (s == System::kLITE ? lite_lat : octo_lat) = out;
  }
  EXPECT_GT(lite_lat, octo_lat);
}

TEST(Rfp, ReadPollingCostsExtraRoundTripsUnderProcessing) {
  ModelParams p = small_params();
  p.rpc_processing = 50_us;
  SimTime rfp_lat = 0;
  SimTime farm_lat = 0;
  for (System s : {System::kRFP, System::kFaRM}) {
    auto d = deploy(s, p);
    SimTime out = 0;
    sim::spawn([](Deployment& dep, SimTime& o) -> Task<> {
      const auto res = co_await dep.dep.clients[0]->call(
          RpcRequest{RpcOp::kWrite, 1, 256});
      o = res.latency();
    }(d, out));
    d.cluster->sim().run();
    (s == System::kRFP ? rfp_lat : farm_lat) = out;
  }
  // RFP's client keeps issuing RDMA reads while the server processes;
  // its completion can only land on a poll boundary, at or after FaRM's
  // push-based completion.
  EXPECT_GT(rfp_lat, farm_lat);
}

TEST(Batching, BaselineBatchProcessesAllSubOps) {
  auto d = deploy(System::kDaRPC, small_params());
  RpcResult res;
  sim::spawn([](Deployment& dep, RpcResult& out) -> Task<> {
    std::vector<RpcRequest> batch(8, RpcRequest{RpcOp::kWrite, 0, 128});
    out = co_await dep.dep.clients[0]->call_batch(batch);
  }(d, res));
  d.cluster->sim().run();
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(d.dep.server->stats().ops_processed, 8u);
}

TEST(Durability, BaselineVsDurableLatencyUnderHeavyLoad) {
  // The paper's headline comparison in miniature: same workload, heavy
  // processing — the durable RPC's write completion beats the baseline
  // by roughly the processing time.
  ModelParams p = small_params();
  p.rpc_processing = 100_us;
  SimTime farm = 0;
  SimTime wflush = 0;
  for (System s : {System::kFaRM, System::kWFlushRpc}) {
    auto d = deploy(s, p);
    SimTime out = 0;
    sim::spawn([](Deployment& dep, SimTime& o) -> Task<> {
      // A couple of warmup ops, then measure.
      (void)co_await dep.dep.clients[0]->call(RpcRequest{RpcOp::kWrite, 1, 512});
      const auto res = co_await dep.dep.clients[0]->call(
          RpcRequest{RpcOp::kWrite, 2, 512});
      o = res.latency();
    }(d, out));
    d.cluster->sim().run();
    (s == System::kFaRM ? farm : wflush) = out;
  }
  EXPECT_GT(farm, wflush + 80_us)
      << "durable RPC must dodge the 100 µs processing on its critical path";
}

// ------------------------------------------ data-plane A/B stat pins

/// Fingerprint of a short fig08/fig13-style run. Two data-plane
/// configurations are interchangeable iff their pins are identical:
/// any timing or accounting drift shows up in at least one field.
struct RunPin {
  SimTime final_time = 0;
  std::uint64_t events = 0;
  std::uint64_t ops = 0;
  SimTime latency_sum = 0;
  std::uint64_t ops_processed = 0;
  std::uint64_t pm_bytes_written = 0;
};

RunPin pinned_run(System s, mem::ContentMode mode, std::uint32_t len) {
  ModelParams p = small_params();
  p.memory.content_mode = mode;
  auto d = deploy(s, p);
  RunPin pin;
  sim::spawn([](Deployment& dep, RunPin& out, std::uint32_t n) -> Task<> {
    for (std::uint64_t i = 0; i < 20; ++i) {
      // Mostly writes, every fourth op reads back an object written by
      // an earlier iteration.
      const bool rd = (i % 4 == 3);
      const auto res = co_await dep.dep.clients[0]->call(
          RpcRequest{rd ? RpcOp::kRead : RpcOp::kWrite,
                     static_cast<std::uint32_t>((rd ? i - 1 : i) % 5), n});
      EXPECT_TRUE(res.ok);
      out.latency_sum += res.latency();
      ++out.ops;
    }
  }(d, pin, len));
  d.cluster->sim().run();
  pin.final_time = d.cluster->sim().now();
  pin.events = d.cluster->sim().events_executed();
  pin.ops_processed = d.dep.server->stats().ops_processed;
  pin.pm_bytes_written = d.cluster->node(0).mem().pm().bytes_written();
  return pin;
}

void expect_same_pin(const RunPin& a, const RunPin& b, std::string_view what) {
  EXPECT_EQ(a.final_time, b.final_time) << what;
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(a.ops, b.ops) << what;
  EXPECT_EQ(a.latency_sum, b.latency_sum) << what;
  EXPECT_EQ(a.ops_processed, b.ops_processed) << what;
  EXPECT_EQ(a.pm_bytes_written, b.pm_bytes_written) << what;
}

TEST(DataPlane, PooledBuffersMatchLegacyHeapDataPlane) {
  // PRDMA_LEGACY_DATAPLANE makes every payload block a fresh heap
  // allocation (the pre-pool behaviour). Pooling must be invisible to
  // the model: identical events, times and device accounting.
  for (System s : {System::kWFlushRpc, System::kFaRM, System::kSFlushRpc}) {
    const RunPin pooled = pinned_run(s, mem::ContentMode::kFull, 777);
    ::setenv("PRDMA_LEGACY_DATAPLANE", "1", 1);
    const RunPin legacy = pinned_run(s, mem::ContentMode::kFull, 777);
    ::unsetenv("PRDMA_LEGACY_DATAPLANE");
    expect_same_pin(pooled, legacy, name_of(s));
  }
}

TEST(DataPlane, ShadowContentModeMatchesFullStats) {
  // Content elision may only drop byte copies — every simulated
  // timing and accounting stat stays byte-identical to kFull.
  for (System s : {System::kWFlushRpc, System::kFaSST, System::kSFlushRpc}) {
    const RunPin full = pinned_run(s, mem::ContentMode::kFull, 1024);
    const RunPin shadow = pinned_run(s, mem::ContentMode::kShadow, 1024);
    expect_same_pin(full, shadow, name_of(s));
  }
}

}  // namespace
}  // namespace prdma::rpcs

namespace prdma::rpcs {
namespace {

class MrEnforcedE2E : public ::testing::TestWithParam<System> {};

TEST_P(MrEnforcedE2E, AllSystemsRunWithRegionProtectionOn) {
  // Every protocol must have registered exactly the regions it uses:
  // with enforcement on, a mixed workload still completes fully.
  ModelParams p = small_params();
  p.rnic.enforce_mr = true;
  auto d = deploy(GetParam(), p);
  int ok_count = 0;
  sim::spawn([](Deployment& dep, int& n) -> Task<> {
    for (int i = 0; i < 20; ++i) {
      const auto res = co_await dep.dep.clients[0]->call(RpcRequest{
          i % 2 == 0 ? RpcOp::kWrite : RpcOp::kRead,
          static_cast<std::uint64_t>(i % 8), 256});
      if (res.ok) ++n;
    }
  }(d, ok_count));
  d.cluster->sim().run();
  EXPECT_EQ(ok_count, 20) << name_of(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, MrEnforcedE2E,
    ::testing::Values(System::kL5, System::kRFP, System::kFaSST,
                      System::kOctopus, System::kFaRM, System::kScaleRPC,
                      System::kDaRPC, System::kHerd, System::kLITE,
                      System::kSRFlushRpc, System::kSFlushRpc,
                      System::kWRFlushRpc, System::kWFlushRpc),
    [](const auto& inf) {
      std::string name{name_of(inf.param)};
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace prdma::rpcs

// ===================================================================
// Crash-path asymmetry (§5.4): after a server power failure,
// traditional baselines must re-send every interrupted request (and
// its data) from the client, while the durable RPCs replay committed
// log entries server-side and re-send nothing that was acknowledged.
// ===================================================================

#include "fault/experiment.hpp"

namespace prdma::rpcs {
namespace {

fault::FailureRunConfig crash_config(std::uint64_t seed) {
  fault::FailureRunConfig cfg;
  cfg.read_ratio = 0.0;  // writes are where durability semantics differ
  cfg.ops = 240;
  cfg.crashes = 2;
  cfg.window = 4;
  cfg.value_size = 2048;
  cfg.seed = seed;
  cfg.heavy_processing = true;  // a real backlog spans the crash instant
  return cfg;
}

class TraditionalCrash : public ::testing::TestWithParam<System> {};

TEST_P(TraditionalCrash, ResendsEverythingReplaysNothing) {
  const auto r = fault::run_with_failures(GetParam(), crash_config(5));
  EXPECT_EQ(r.crashes, 2u);
  EXPECT_EQ(r.ops_completed, 240u);
  EXPECT_GT(r.resends, 0u)
      << "a baseline client must re-drive requests lost in the crash";
  EXPECT_EQ(r.replayed, 0u)
      << "baselines have no redo log to replay from";
}

INSTANTIATE_TEST_SUITE_P(Crash, TraditionalCrash,
                         ::testing::Values(System::kFaRM, System::kL5,
                                           System::kDaRPC),
                         [](const auto& info) {
                           return std::string(name_of(info.param));
                         });

class DurableCrash : public ::testing::TestWithParam<System> {};

TEST_P(DurableCrash, ReplaysFromTheLogWithoutDataResend) {
  const auto r = fault::run_with_failures(GetParam(), crash_config(5));
  EXPECT_EQ(r.crashes, 2u);
  EXPECT_EQ(r.ops_completed, 240u);
  EXPECT_GT(r.replayed, 0u)
      << "committed-but-unprocessed entries must replay server-side";
  // At most the in-flight window can need re-sending per crash; the
  // watermark spares everything that reached the log.
  EXPECT_LE(r.resends, 2u * 4u)
      << "the log watermark should spare the client most re-sends";
  EXPECT_EQ(r.oracle_violations, 0u)
      << "the durability oracle audits every crash in the harness";
}

INSTANTIATE_TEST_SUITE_P(Crash, DurableCrash,
                         ::testing::Values(System::kWFlushRpc,
                                           System::kSFlushRpc,
                                           System::kWRFlushRpc,
                                           System::kSRFlushRpc),
                         [](const auto& info) {
                           std::string name(name_of(info.param));
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace prdma::rpcs
