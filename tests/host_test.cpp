// Tests for the host/CPU model: core contention, background-load
// inflation and cost accounting.

#include <gtest/gtest.h>

#include "host/host.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace prdma::host {
namespace {

using namespace prdma::sim::literals;
using sim::SimTime;
using sim::Simulator;
using sim::Task;

struct HostFixture : ::testing::Test {
  Simulator sim;
  sim::Rng rng{3};
  HostParams params;
  HostFixture() { params.jitter_sigma = 0.0; }
};

TEST_F(HostFixture, ExecTakesScaledTime) {
  Host host(sim, rng, params);
  SimTime done = 0;
  sim::spawn([](Simulator& s, Host& h, SimTime& out) -> Task<> {
    co_await h.exec(10_us);
    out = s.now();
  }(sim, host, done));
  sim.run();
  EXPECT_EQ(done, 10_us);
  EXPECT_EQ(host.charged_ns(), 10'000u);
}

TEST_F(HostFixture, BackgroundLoadInflatesCosts) {
  Host host(sim, rng, params);
  host.set_load(3.0);
  EXPECT_DOUBLE_EQ(host.load(), 3.0);
  SimTime done = 0;
  sim::spawn([](Simulator& s, Host& h, SimTime& out) -> Task<> {
    co_await h.exec(10_us);
    out = s.now();
  }(sim, host, done));
  sim.run();
  EXPECT_EQ(done, 40_us);  // (1 + load) multiplier
}

TEST_F(HostFixture, NegativeLoadClampsToZero) {
  Host host(sim, rng, params);
  host.set_load(-5.0);
  EXPECT_DOUBLE_EQ(host.load(), 0.0);
}

TEST_F(HostFixture, CoresLimitParallelExec) {
  params.cores = 2;
  Host host(sim, rng, params);
  SimTime last_done = 0;
  for (int i = 0; i < 4; ++i) {
    sim::spawn([](Simulator& s, Host& h, SimTime& out) -> Task<> {
      co_await h.exec(100_us);
      out = s.now();
    }(sim, host, last_done));
  }
  sim.run();
  // 4 tasks of 100us on 2 cores -> 200us wall.
  EXPECT_EQ(last_done, 200_us);
}

TEST_F(HostFixture, SleepDoesNotOccupyCore) {
  params.cores = 1;
  Host host(sim, rng, params);
  SimTime exec_done = 0;
  sim::spawn([](Host& h, Simulator& s, SimTime& out) -> Task<> {
    co_await h.sleep(100_us);  // no core held
    out = s.now();
    (void)out;
  }(host, sim, exec_done));
  sim::spawn([](Host& h, Simulator& s, SimTime& out) -> Task<> {
    co_await h.exec(10_us);
    out = s.now();
  }(host, sim, exec_done));
  sim.run();
  // The exec finished at 10us despite the concurrent 100us sleep.
  EXPECT_EQ(exec_done, 100_us);  // last write wins: sleep ends later
}

TEST_F(HostFixture, MemcpyCostMatchesBandwidth) {
  Host host(sim, rng, params);
  // 12 GB/s -> 12 bytes/ns; 12,000 bytes -> 1000 ns.
  EXPECT_EQ(host.memcpy_cost(12'000), 1000u);
  SimTime done = 0;
  sim::spawn([](Simulator& s, Host& h, SimTime& out) -> Task<> {
    co_await h.memcpy_exec(12'000);
    out = s.now();
  }(sim, host, done));
  sim.run();
  EXPECT_EQ(done, 1000u);
}

TEST_F(HostFixture, JitterVariesCostsAroundBase) {
  params.jitter_sigma = 0.2;
  Host host(sim, rng, params);
  double total = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    total += static_cast<double>(host.scaled(1000));
  }
  EXPECT_NEAR(total / n, 1020.0, 60.0);  // lognormal mean ~ exp(s^2/2)
}

TEST_F(HostFixture, ChargeHelpersUseParams) {
  Host host(sim, rng, params);
  sim::spawn([](Host& h) -> Task<> {
    co_await h.charge_post();
    co_await h.charge_poll();
    co_await h.charge_recv_handler();
  }(host));
  sim.run();
  EXPECT_EQ(host.charged_ns(), params.post_cost + params.poll_cost +
                                   params.recv_handler_cost);
}

}  // namespace
}  // namespace prdma::host
