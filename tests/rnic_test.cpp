// Tests for the network fabric, the simulated RNIC and the verbs
// layer. These pin down the exact semantics the paper's analysis
// depends on: RC ACK at T_A (SRAM arrival) vs. persistence at T_B,
// the DDIO read-after-write trap, and the Flush primitives.

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <vector>

#include "mem/node_memory.hpp"
#include "net/fabric.hpp"
#include "net/faults.hpp"
#include "rdma/completer.hpp"
#include "rdma/session.hpp"
#include "rnic/rnic.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace prdma {
namespace {

using namespace prdma::sim::literals;
using net::Packet;
using net::WireOp;
using rnic::Cq;
using rnic::Rnic;
using rnic::Transport;
using rnic::Wc;
using rnic::WcStatus;
using sim::SimTime;
using sim::Simulator;
using sim::Task;

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed * 37 + i) & 0xFF);
  }
  return out;
}

// ----------------------------------------------------------------- Fabric

struct FabricFixture : ::testing::Test {
  Simulator sim;
  sim::Rng rng{7};
  net::LinkParams lp{};
  FabricFixture() { lp.jitter_sigma = 0.0; }
};

TEST_F(FabricFixture, DeliversWithPropagationAndSerialization) {
  net::Fabric fab(sim, rng, lp);
  SimTime arrival = 0;
  fab.register_node(2, [&](Packet) { arrival = sim.now(); });
  Packet p;
  p.src = 1;
  p.dst = 2;
  p.op = WireOp::kWrite;
  p.length = 10'000;
  p.payload = net::make_payload(pattern(10'000));
  fab.send(p);
  sim.run();
  // 10066 wire bytes at 5 GB/s ≈ 2013 ns + 1000 ns propagation.
  EXPECT_NEAR(static_cast<double>(arrival), 3013.0, 20.0);
  EXPECT_EQ(fab.packets_delivered(), 1u);
}

TEST_F(FabricFixture, SerializationQueuesSameDirection) {
  net::Fabric fab(sim, rng, lp);
  std::vector<SimTime> arrivals;
  fab.register_node(2, [&](Packet) { arrivals.push_back(sim.now()); });
  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.src = 1;
    p.dst = 2;
    p.op = WireOp::kWrite;
    p.length = 50'000;
    p.payload = net::make_payload(pattern(50'000));
    fab.send(p);
  }
  sim.run();
  EXPECT_EQ(arrivals.size(), 3u);
  const SimTime gap1 = arrivals[1] - arrivals[0];
  const SimTime gap2 = arrivals[2] - arrivals[1];
  // Back-to-back packets are spaced by one serialization time (~10 µs).
  EXPECT_NEAR(static_cast<double>(gap1), 10013.0, 50.0);
  EXPECT_NEAR(static_cast<double>(gap2), 10013.0, 50.0);
}

TEST_F(FabricFixture, ReverseDirectionDoesNotQueue) {
  net::Fabric fab(sim, rng, lp);
  SimTime fwd = 0;
  SimTime rev = 0;
  fab.register_node(2, [&](Packet) { fwd = sim.now(); });
  fab.register_node(1, [&](Packet) { rev = sim.now(); });
  Packet big;
  big.src = 1;
  big.dst = 2;
  big.op = WireOp::kWrite;
  big.length = 1'000'000;
  big.payload = net::make_payload(pattern(100));  // size model only
  fab.send(big);
  Packet small;
  small.src = 2;
  small.dst = 1;
  small.op = WireOp::kAck;
  fab.send(small);
  sim.run();
  EXPECT_LT(rev, fwd) << "full-duplex: reverse traffic must not queue";
}

TEST_F(FabricFixture, BackgroundLoadInflatesLatency) {
  net::Fabric idle_fab(sim, rng, lp);
  SimTime idle_arrival = 0;
  idle_fab.register_node(2, [&](Packet) { idle_arrival = sim.now(); });
  Packet p;
  p.src = 1;
  p.dst = 2;
  p.op = WireOp::kWrite;
  p.length = 60'000;
  p.payload = net::make_payload(pattern(64));
  idle_fab.send(p);
  sim.run();

  Simulator sim2;
  sim::Rng rng2(7);
  net::LinkParams busy = lp;
  busy.background_load = 0.7;
  net::Fabric busy_fab(sim2, rng2, busy);
  SimTime busy_arrival = 0;
  busy_fab.register_node(2, [&](Packet) { busy_arrival = sim2.now(); });
  busy_fab.send(p);
  sim2.run();
  EXPECT_GT(busy_arrival, idle_arrival + idle_arrival / 2);
}

TEST_F(FabricFixture, LossDropsPackets) {
  lp.loss_probability = 1.0;
  net::Fabric fab(sim, rng, lp);
  int got = 0;
  fab.register_node(2, [&](Packet) { ++got; });
  Packet p;
  p.src = 1;
  p.dst = 2;
  p.op = WireOp::kAck;
  fab.send(p);
  sim.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(fab.packets_dropped(), 1u);
}

TEST_F(FabricFixture, UnregisteredDestinationDropsOnArrival) {
  net::Fabric fab(sim, rng, lp);
  fab.register_node(2, [](Packet) {});
  fab.unregister_node(2);
  Packet p;
  p.src = 1;
  p.dst = 2;
  p.op = WireOp::kAck;
  fab.send(p);
  sim.run();
  EXPECT_EQ(fab.packets_dropped(), 1u);
}

// ------------------------------------------------------------ RNIC rig

/// Two nodes ("c" = client/sender 0, "s" = server/receiver 1) wired
/// through one fabric, with CQs and a connected RC QP pair.
struct Rig {
  Simulator sim;
  sim::Rng rng{11};
  net::LinkParams lp{};
  net::Fabric fab;
  mem::NodeMemoryParams mp{};
  mem::NodeMemory cmem;
  mem::NodeMemory smem;
  rnic::RnicParams rp{};
  Rnic cnic;
  Rnic snic;
  Cq c_scq, c_rcq, s_scq, s_rcq;
  rnic::Qp* cqp = nullptr;
  rnic::Qp* sqp = nullptr;

  explicit Rig(rnic::RnicParams rparams = {}, net::LinkParams link = {},
               Transport transport = Transport::kRC)
      : lp(link),
        fab(sim, rng, lp),
        cmem(sim, small_mem()),
        smem(sim, small_mem()),
        rp(rparams),
        cnic(sim, rng, fab, cmem, 0, rp),
        snic(sim, rng, fab, smem, 1, rp),
        c_scq(sim),
        c_rcq(sim),
        s_scq(sim),
        s_rcq(sim) {
    auto [a, b] = rdma::connect_pair(cnic, transport, c_scq, c_rcq, snic,
                                     transport, s_scq, s_rcq);
    cqp = a;
    sqp = b;
  }

  static mem::NodeMemoryParams small_mem() {
    mem::NodeMemoryParams p;
    p.pm_capacity = 8ull << 20;
    p.dram_capacity = 8ull << 20;
    return p;
  }
};

TEST(RnicWrite, ContentLandsInRemotePm) {
  Rig rig;
  const auto data = pattern(4096);
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, data);

  bool completed = false;
  sim::spawn([](Rig& r, bool& done) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    const auto wc = co_await s.write(mem::NodeMemory::kDramBase, 4096, 0x1000);
    EXPECT_TRUE(wc.has_value());
    EXPECT_EQ(wc->status, WcStatus::kSuccess);
    done = true;
  }(rig, completed));
  rig.sim.run();
  EXPECT_TRUE(completed);

  std::vector<std::byte> out(4096);
  rig.smem.pm().peek(0x1000, out);
  EXPECT_EQ(out, data);
}

TEST(RnicWrite, AckArrivesBeforePersistence_TheT_A_T_B_Gap) {
  // The paper's §2.4 hazard: the RC ACK (work completion) races ahead
  // of actual persistence. A crash straight after the WC loses data.
  Rig rig;
  const std::uint64_t len = 256 * 1024;
  const auto data = pattern(len);
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, data);

  bool wc_seen = false;
  sim::spawn([](Rig& r, std::uint64_t n, bool& flag) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    const auto wc = co_await s.write(mem::NodeMemory::kDramBase, n, 0);
    EXPECT_TRUE(wc.has_value());
    flag = true;
    // Power failure at the receiver immediately after the sender's WC.
    r.snic.crash();
    r.smem.crash();
  }(rig, len, wc_seen));
  rig.sim.run();
  EXPECT_TRUE(wc_seen);

  // Torn-DMA crash model: at most a line-aligned prefix proportional to
  // the elapsed transfer landed on media; the ACKed write as a whole is
  // NOT durable and its tail is gone (T_A < T_B).
  std::vector<std::byte> out(len);
  rig.smem.pm().peek(0, out);
  EXPECT_NE(out, data)
      << "data ACKed but not persisted must be lost on crash (T_A < T_B)";
  std::vector<std::byte> tail(mem::kCacheLine);
  rig.smem.pm().peek(len - mem::kCacheLine, tail);
  EXPECT_EQ(tail, std::vector<std::byte>(mem::kCacheLine, std::byte{0}))
      << "the transfer's tail cannot have landed before the crash";
  EXPECT_GT(rig.snic.bytes_lost_in_crashes(), 0u);
}

TEST(RnicWrite, WFlushClosesTheGap) {
  // Same scenario, but a WFlush follows the write: after the flush ACK
  // the data must survive the crash (§4.1.1).
  Rig rig;
  const std::uint64_t len = 256 * 1024;
  const auto data = pattern(len);
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, data);

  bool flushed = false;
  sim::spawn([](Rig& r, std::uint64_t n, bool& flag) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    s.post_write_nowait(mem::NodeMemory::kDramBase, n, 0);
    const auto wc = co_await s.wflush(0, n);
    EXPECT_TRUE(wc.has_value());
    EXPECT_EQ(wc->status, WcStatus::kSuccess);
    flag = true;
    r.snic.crash();
    r.smem.crash();
  }(rig, len, flushed));
  rig.sim.run();
  EXPECT_TRUE(flushed);

  std::vector<std::byte> out(len);
  rig.smem.pm().peek(0, out);
  EXPECT_EQ(out, data) << "flush-ACKed data must survive the crash";
}

TEST(RnicWrite, FlushAckIsLaterThanPlainAck) {
  // WFlush costs more than the bare write ACK — that's the price of
  // the durability guarantee.
  SimTime plain_done = 0;
  SimTime flush_done = 0;
  {
    Rig rig;
    rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(65536));
    sim::spawn([](Rig& r, SimTime& t) -> Task<> {
      rdma::Completer comp(r.sim, r.c_scq);
      rdma::QpSession s(r.cnic, *r.cqp, comp);
      (void)co_await s.write(mem::NodeMemory::kDramBase, 65536, 0);
      t = r.sim.now();
    }(rig, plain_done));
    rig.sim.run();
  }
  {
    Rig rig;
    rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(65536));
    sim::spawn([](Rig& r, SimTime& t) -> Task<> {
      rdma::Completer comp(r.sim, r.c_scq);
      rdma::QpSession s(r.cnic, *r.cqp, comp);
      s.post_write_nowait(mem::NodeMemory::kDramBase, 65536, 0);
      (void)co_await s.wflush(0, 65536);
      t = r.sim.now();
    }(rig, flush_done));
    rig.sim.run();
  }
  EXPECT_GT(flush_done, plain_done);
}

TEST(RnicDdio, ReadAfterWriteIsFooledByDdio) {
  // §2.4: with DDIO the read-back succeeds while the data is volatile.
  rnic::RnicParams rp;
  rp.ddio = true;
  Rig rig(rp);
  const auto data = pattern(1024);
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, data);

  std::vector<std::byte> readback(1024);
  sim::spawn([](Rig& r, std::vector<std::byte>& rb) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    (void)co_await s.write(mem::NodeMemory::kDramBase, 1024, 0x2000);
    // Read-after-write "persistence check".
    (void)co_await s.read(0x2000, 1024, mem::NodeMemory::kDramBase + 65536);
    r.cmem.cpu_read(mem::NodeMemory::kDramBase + 65536, rb);
    // The check passed — now the power fails.
    r.snic.crash();
    r.smem.crash();
  }(rig, readback));
  rig.sim.run();

  EXPECT_EQ(readback, data) << "read-after-write returns the cached data";
  std::vector<std::byte> pm_content(1024);
  rig.smem.pm().peek(0x2000, pm_content);
  EXPECT_EQ(pm_content, std::vector<std::byte>(1024, std::byte{0}))
      << "…but PM never saw it: the check was a lie (paper §2.4)";
}

TEST(RnicDdio, WithoutDdioReadAfterWriteReallyPersists) {
  Rig rig;  // ddio off by default
  const auto data = pattern(1024);
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, data);
  sim::spawn([](Rig& r) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    (void)co_await s.write(mem::NodeMemory::kDramBase, 1024, 0x2000);
    (void)co_await s.read(0x2000, 1024, mem::NodeMemory::kDramBase + 65536);
    r.snic.crash();
    r.smem.crash();
  }(rig));
  rig.sim.run();
  std::vector<std::byte> pm_content(1024);
  rig.smem.pm().peek(0x2000, pm_content);
  EXPECT_EQ(pm_content, data)
      << "without DDIO, a completed read implies the prior write drained";
}

TEST(RnicDdio, WFlushPersistsEvenUnderDdio) {
  rnic::RnicParams rp;
  rp.ddio = true;
  Rig rig(rp);
  const auto data = pattern(2048);
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, data);
  sim::spawn([](Rig& r) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    s.post_write_nowait(mem::NodeMemory::kDramBase, 2048, 0x3000);
    (void)co_await s.wflush(0x3000, 2048);
    r.snic.crash();
    r.smem.crash();
  }(rig));
  rig.sim.run();
  std::vector<std::byte> pm_content(2048);
  rig.smem.pm().peek(0x3000, pm_content);
  EXPECT_EQ(pm_content, data);
}

// ------------------------------------------------------------- send/recv

TEST(RnicSend, DeliversIntoPostedRecvBuffer) {
  Rig rig;
  const auto data = pattern(512);
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, data);
  const std::uint64_t recv_buf = mem::NodeMemory::kDramBase + 4096;
  rig.snic.post_recv(*rig.sqp, recv_buf, 4096, 77);

  std::optional<Wc> recv_wc;
  sim::spawn([](Rig& r, std::optional<Wc>& out) -> Task<> {
    auto wc = co_await r.s_rcq.channel().recv();
    out = wc;
  }(rig, recv_wc));
  sim::spawn([](Rig& r) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    (void)co_await s.send(mem::NodeMemory::kDramBase, 512);
  }(rig));
  rig.sim.run();

  EXPECT_TRUE(recv_wc.has_value());
  EXPECT_EQ(recv_wc->wr_id, 77u);
  EXPECT_EQ(recv_wc->byte_len, 512u);
  EXPECT_EQ(recv_wc->local_addr, recv_buf);
  std::vector<std::byte> out(512);
  rig.smem.cpu_read(recv_buf, out);
  EXPECT_EQ(out, data);
}

TEST(RnicSend, SendBeforeRecvPostWaitsInRnrQueue) {
  Rig rig;
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(64));
  std::optional<Wc> recv_wc;
  sim::spawn([](Rig& r, std::optional<Wc>& out) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    (void)co_await s.send(mem::NodeMemory::kDramBase, 64);
    // Post the recv long after the send arrived.
    co_await sim::delay(r.sim, 50_us);
    r.snic.post_recv(*r.sqp, mem::NodeMemory::kDramBase, 4096, 5);
    auto wc = co_await r.s_rcq.channel().recv();
    out = wc;
  }(rig, recv_wc));
  rig.sim.run();
  EXPECT_TRUE(recv_wc.has_value());
  EXPECT_EQ(recv_wc->wr_id, 5u);
  EXPECT_GE(rig.snic.rnr_events(), 1u);
}

TEST(RnicSend, SFlushCopiesMessageIntoPm) {
  // send lands in a DRAM message buffer; SFlush DMA-copies it into the
  // PM destination (redo-log slot) and ACKs persistence (§4.1.1).
  Rig rig;
  const auto data = pattern(1000);
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, data);
  const std::uint64_t msg_buf = mem::NodeMemory::kDramBase + 8192;
  rig.snic.post_recv(*rig.sqp, msg_buf, 4096, 1);

  sim::spawn([](Rig& r) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    s.post_send_nowait(mem::NodeMemory::kDramBase, 1000);
    (void)co_await s.sflush(/*pm_dest=*/0x4000, 1000);
    r.snic.crash();
    r.smem.crash();
  }(rig));
  rig.sim.run();

  std::vector<std::byte> pm_content(1000);
  rig.smem.pm().peek(0x4000, pm_content);
  EXPECT_EQ(pm_content, data) << "SFlush-acked send must be in PM";
}

TEST(RnicSend, SFlushEmulationChargesAddressingDelay) {
  SimTime with_emulation = 0;
  SimTime hw_mode = 0;
  for (bool emulate : {true, false}) {
    rnic::RnicParams rp;
    rp.emulate_flush = emulate;
    Rig rig(rp);
    rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(256));
    rig.snic.post_recv(*rig.sqp, mem::NodeMemory::kDramBase, 4096, 1);
    SimTime done = 0;
    sim::spawn([](Rig& r, SimTime& t) -> Task<> {
      rdma::Completer comp(r.sim, r.c_scq);
      rdma::QpSession s(r.cnic, *r.cqp, comp);
      s.post_send_nowait(mem::NodeMemory::kDramBase, 256);
      (void)co_await s.sflush(0x100, 256);
      t = r.sim.now();
    }(rig, done));
    rig.sim.run();
    (emulate ? with_emulation : hw_mode) = done;
  }
  EXPECT_GT(with_emulation, hw_mode + 6_us)
      << "emulated SFlush pays the paper's ~7 µs addressing cost (§4.1.3)";
}

// -------------------------------------------------------------- UD / UC

TEST(RnicUd, SendCompletesLocallyAndMtuEnforced) {
  Rig rig({}, {}, Transport::kUD);
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(4096));
  rig.snic.post_recv(*rig.sqp, mem::NodeMemory::kDramBase, 4096, 9);

  bool sent = false;
  sim::spawn([](Rig& r, bool& done) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    const auto wc = co_await s.send(mem::NodeMemory::kDramBase, 4096);
    EXPECT_TRUE(wc.has_value());
    done = true;
  }(rig, sent));
  rig.sim.run();
  EXPECT_TRUE(sent);
  EXPECT_THROW(
      rig.cnic.post_send(*rig.cqp, mem::NodeMemory::kDramBase, 8192, 1),
      std::invalid_argument);
}

TEST(RnicUc, WriteWorksWithoutAcks) {
  Rig rig({}, {}, Transport::kUC);
  const auto data = pattern(2048);
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, data);
  sim::spawn([](Rig& r) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    const auto wc = co_await s.write(mem::NodeMemory::kDramBase, 2048, 0x100);
    EXPECT_TRUE(wc.has_value());  // local completion at wire
  }(rig));
  rig.sim.run();
  std::vector<std::byte> out(2048);
  rig.smem.pm().peek(0x100, out);
  EXPECT_EQ(out, data);
}

TEST(RnicUc, ReadAndFlushRejected) {
  Rig rig({}, {}, Transport::kUC);
  EXPECT_THROW(rig.cnic.post_read(*rig.cqp, 0, 64, mem::NodeMemory::kDramBase, 1),
               std::invalid_argument);
  EXPECT_THROW(rig.cnic.post_wflush(*rig.cqp, 0, 64, 2), std::invalid_argument);
  EXPECT_THROW(rig.cnic.post_sflush(*rig.cqp, 0, 64, 3), std::invalid_argument);
}

// ------------------------------------------------------------ reliability

TEST(RnicReliability, RetransmitsThroughLoss) {
  rnic::RnicParams rp;
  rp.retransmit_interval = 200_us;
  net::LinkParams lp;
  lp.loss_probability = 0.4;
  Rig rig(rp, lp);
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(128));

  int completed = 0;
  sim::spawn([](Rig& r, int& done) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    for (int i = 0; i < 20; ++i) {
      const auto wc = co_await s.write(mem::NodeMemory::kDramBase, 128,
                                       static_cast<std::uint64_t>(i) * 256);
      EXPECT_TRUE(wc.has_value());
      if (wc->status == WcStatus::kSuccess) ++done;
    }
  }(rig, completed));
  rig.sim.run();
  EXPECT_EQ(completed, 20);
  EXPECT_GT(rig.cnic.retransmits(), 0u);
}

TEST(RnicReliability, RetryExceededWhenPeerDead) {
  rnic::RnicParams rp;
  rp.retransmit_interval = 50_us;
  rp.max_retransmits = 3;
  Rig rig(rp);
  rig.snic.crash();
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(64));

  std::optional<Wc> result;
  sim::spawn([](Rig& r, std::optional<Wc>& out) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    out = co_await s.write(mem::NodeMemory::kDramBase, 64, 0);
  }(rig, result));
  rig.sim.run();
  EXPECT_TRUE(result.has_value());
  EXPECT_EQ(result->status, WcStatus::kRetryExceeded);
}

TEST(RnicReliability, InOrderProcessingUnderJitter) {
  // Heavy jitter reorders packets in flight; the receiver must still
  // process them in sequence order, so a flush never overtakes its
  // write. We verify via content correctness across many write+flush
  // pairs.
  net::LinkParams lp;
  lp.jitter_sigma = 0.6;
  Rig rig({}, lp);
  sim::spawn([](Rig& r) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    for (int i = 0; i < 30; ++i) {
      const auto data = pattern(512, i);
      r.cmem.cpu_write(mem::NodeMemory::kDramBase, data);
      s.post_write_nowait(mem::NodeMemory::kDramBase, 512,
                          static_cast<std::uint64_t>(i) * 1024);
      const auto wc = co_await s.wflush(static_cast<std::uint64_t>(i) * 1024, 512);
      EXPECT_TRUE(wc.has_value());
      EXPECT_EQ(wc->status, WcStatus::kSuccess);
      // After each flush ACK the content must already be persistent.
      std::vector<std::byte> out(512);
      r.smem.pm().peek(static_cast<std::uint64_t>(i) * 1024, out);
      EXPECT_EQ(out, data) << "op " << i;
    }
  }(rig));
  rig.sim.run();
}

TEST(RnicReliability, GoBackNReplaysWindowAfterLinkFlap) {
  // The cable goes dark before any packet flies and heals at 300 µs:
  // every posted write is rejected at the egress (an accounted
  // kLinkDown drop, never silent), then the head-of-window timeout
  // replays the whole unacked window each round until the link heals.
  rnic::RnicParams rp;
  rp.retransmit_interval = 100_us;
  Rig rig(rp);
  net::FaultPlan plan;
  net::LinkFlap flap;
  flap.a = 0;
  flap.b = 1;
  flap.down_at = 1;
  flap.up_at = 300_us;
  plan.link_flaps.push_back(flap);
  rig.fab.set_fault_plan(plan);
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(64));

  int completed = 0;
  sim::spawn([](Rig& r, int& done) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    for (int i = 0; i < 4; ++i) {
      s.post_write_nowait(mem::NodeMemory::kDramBase, 64,
                          static_cast<std::uint64_t>(i) * 256);
    }
    const auto wc = co_await s.write(mem::NodeMemory::kDramBase, 64, 4 * 256);
    EXPECT_TRUE(wc.has_value());
    if (wc && wc->status == WcStatus::kSuccess) ++done;
  }(rig, completed));
  rig.sim.run();
  EXPECT_EQ(completed, 1);
  // 5 first transmissions + at least one full-window replay round.
  EXPECT_GE(rig.cnic.retransmits(), 5u);
  EXPECT_GE(rig.fab.packets_dropped(net::DropReason::kLinkDown), 5u);
  EXPECT_EQ(rig.fab.packets_dropped(net::DropReason::kLoss), 0u);
  EXPECT_EQ(rig.cnic.sram_used(), 0u);
  EXPECT_EQ(rig.snic.sram_used(), 0u);
}

TEST(RnicReliability, DuplicatesSuppressedUnderLossAndJitter) {
  // Loss plus heavy jitter: retransmitted packets race their originals,
  // so the receiver sees duplicates both below expected_seq and inside
  // the out-of-order buffer. Each write must execute exactly once
  // (every flush ACK certifies the content) and duplicate SRAM must be
  // released — a leak would show as residual occupancy after the run.
  rnic::RnicParams rp;
  rp.retransmit_interval = 150_us;
  net::LinkParams lp;
  lp.loss_probability = 0.25;
  lp.jitter_sigma = 0.5;
  Rig rig(rp, lp);
  sim::spawn([](Rig& r) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    for (int i = 0; i < 25; ++i) {
      const auto data = pattern(512, i);
      r.cmem.cpu_write(mem::NodeMemory::kDramBase, data);
      s.post_write_nowait(mem::NodeMemory::kDramBase, 512,
                          static_cast<std::uint64_t>(i) * 1024);
      const auto wc =
          co_await s.wflush(static_cast<std::uint64_t>(i) * 1024, 512);
      EXPECT_TRUE(wc.has_value());
      EXPECT_EQ(wc->status, WcStatus::kSuccess);
      std::vector<std::byte> out(512);
      r.smem.pm().peek(static_cast<std::uint64_t>(i) * 1024, out);
      EXPECT_EQ(out, data) << "op " << i;
    }
  }(rig));
  rig.sim.run();
  EXPECT_GT(rig.cnic.retransmits(), 0u);
  EXPECT_GT(rig.fab.packets_dropped(net::DropReason::kLoss), 0u);
  EXPECT_EQ(rig.cnic.sram_used(), 0u);
  EXPECT_EQ(rig.snic.sram_used(), 0u);
}

TEST(RnicReliability, BackoffIsCappedAtRetransmitCap) {
  // Same dead peer, same retry budget: the capped configuration must
  // escalate to kRetryExceeded sooner than the uncapped one, because
  // its rearm delay stops doubling at the cap.
  const auto fail_time = [](SimTime cap) {
    rnic::RnicParams rp;
    rp.retransmit_interval = 100_us;
    rp.max_retransmits = 4;
    rp.retransmit_cap = cap;
    Rig rig(rp);
    rig.snic.crash();
    rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(64));
    std::optional<Wc> out;
    sim::spawn([](Rig& r, std::optional<Wc>& o) -> Task<> {
      rdma::Completer comp(r.sim, r.c_scq);
      rdma::QpSession s(r.cnic, *r.cqp, comp);
      o = co_await s.write(mem::NodeMemory::kDramBase, 64, 0);
    }(rig, out));
    rig.sim.run();
    EXPECT_TRUE(out.has_value());
    EXPECT_EQ(out->status, WcStatus::kRetryExceeded);
    return rig.sim.now();
  };
  const SimTime capped = fail_time(200_us);
  const SimTime uncapped = fail_time(100 * sim::kMillisecond);
  EXPECT_LT(capped, uncapped);
}

TEST(RnicReliability, ErrorQpFlushesPendingAndSubsequentPosts) {
  // Bounded-retry escalation: the head WR completes kRetryExceeded,
  // every later pending WR flushes, and posts after the escalation
  // fail immediately instead of starting a fresh retry ladder.
  rnic::RnicParams rp;
  rp.retransmit_interval = 50_us;
  rp.max_retransmits = 2;
  Rig rig(rp);
  rig.snic.crash();
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(64));

  std::optional<Wc> pending;
  std::optional<Wc> later;
  SimTime pending_at = 0;
  SimTime later_at = 0;
  sim::spawn([](Rig& r, std::optional<Wc>& p, std::optional<Wc>& l,
                SimTime& pt, SimTime& lt) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    // Head of the window (will exhaust its retries)…
    s.post_write_nowait(mem::NodeMemory::kDramBase, 64, 0);
    // …and a queued WR behind it, flushed by the escalation.
    p = co_await s.write(mem::NodeMemory::kDramBase, 64, 256);
    pt = r.sim.now();
    // A post after the QP entered the error state fails immediately.
    l = co_await s.write(mem::NodeMemory::kDramBase, 64, 512);
    lt = r.sim.now();
  }(rig, pending, later, pending_at, later_at));
  rig.sim.run();
  ASSERT_TRUE(pending.has_value());
  EXPECT_EQ(pending->status, WcStatus::kFlushed);
  ASSERT_TRUE(later.has_value());
  EXPECT_EQ(later->status, WcStatus::kFlushed);
  EXPECT_EQ(later_at, pending_at) << "post-error posts must fail instantly";
}

// ---------------------------------------------------------------- various

TEST(RnicWriteImm, NotifiesReceiverCpuWithImmediate) {
  Rig rig;
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(256));
  rig.snic.post_recv(*rig.sqp, mem::NodeMemory::kDramBase + 64 * 1024, 0, 42);

  std::optional<Wc> notify;
  sim::spawn([](Rig& r, std::optional<Wc>& out) -> Task<> {
    out = co_await r.s_rcq.channel().recv();
  }(rig, notify));
  sim::spawn([](Rig& r) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    (void)co_await s.write(mem::NodeMemory::kDramBase, 256, 0x500, 0xABCDu);
  }(rig));
  rig.sim.run();
  EXPECT_TRUE(notify.has_value());
  EXPECT_TRUE(notify->has_imm);
  EXPECT_EQ(notify->imm, 0xABCDu);
  EXPECT_EQ(notify->local_addr, 0x500u);
}

TEST(RnicRead, FetchesRemoteContent) {
  Rig rig;
  const auto data = pattern(4096, 9);
  rig.smem.pm().poke(0x8000, data);
  sim::spawn([](Rig& r) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    const auto wc = co_await s.read(0x8000, 4096, mem::NodeMemory::kDramBase);
    EXPECT_TRUE(wc.has_value());
    EXPECT_EQ(wc->byte_len, 4096u);
  }(rig));
  rig.sim.run();
  std::vector<std::byte> out(4096);
  rig.cmem.cpu_read(mem::NodeMemory::kDramBase, out);
  EXPECT_EQ(out, data);
}

TEST(RnicSram, TinySramBacklogsButCompletes) {
  rnic::RnicParams rp;
  rp.sram_capacity = 8 * 1024;  // fits ~1 packet of 4 KiB
  Rig rig(rp);
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(4096));
  int done = 0;
  sim::spawn([](Rig& r, int& n) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    for (int i = 0; i < 16; ++i) {
      s.post_write_nowait(mem::NodeMemory::kDramBase, 4096,
                          static_cast<std::uint64_t>(i) * 8192);
    }
    const auto wc = co_await s.wflush(15 * 8192, 4096);
    EXPECT_TRUE(wc.has_value());
    n = 1;
  }(rig, done));
  rig.sim.run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(rig.snic.sram_used(), 0u) << "all SRAM released after drain";
}

TEST(RnicCompleter, DemuxesConcurrentWrs) {
  Rig rig;
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(64));
  std::vector<std::uint64_t> lens;
  sim::spawn([](Rig& r, std::vector<std::uint64_t>& out) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    // Post three ops back-to-back, then await them out of post order.
    const std::uint64_t w1 = comp.fresh_wr();
    const std::uint64_t w2 = comp.fresh_wr();
    const std::uint64_t w3 = comp.fresh_wr();
    r.cnic.post_write(*r.cqp, mem::NodeMemory::kDramBase, 16, 0, w1);
    r.cnic.post_write(*r.cqp, mem::NodeMemory::kDramBase, 32, 64, w2);
    r.cnic.post_write(*r.cqp, mem::NodeMemory::kDramBase, 64, 128, w3);
    const auto c3 = co_await comp.wait(w3);
    const auto c1 = co_await comp.wait(w1);
    const auto c2 = co_await comp.wait(w2);
    EXPECT_TRUE(c1 && c2 && c3);
    out = {c1->byte_len, c2->byte_len, c3->byte_len};
  }(rig, lens));
  rig.sim.run();
  EXPECT_EQ(lens, (std::vector<std::uint64_t>{16, 32, 64}));
}

TEST(RnicPersistRange, LocalRFlushBuildingBlock) {
  rnic::RnicParams rp;
  rp.ddio = true;
  Rig rig(rp);
  const auto data = pattern(512);
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, data);
  bool persisted = false;
  sim::spawn([](Rig& r, bool& done) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    (void)co_await s.write(mem::NodeMemory::kDramBase, 512, 0x900);
    EXPECT_FALSE(r.smem.range_persistent(0x900, 512));  // DDIO-dirty
    sim::Event ev(r.sim);
    r.snic.persist_range(0x900, 512, [&ev](SimTime) { ev.set(); });
    co_await ev.wait();
    EXPECT_TRUE(r.smem.range_persistent(0x900, 512));
    done = true;
  }(rig, persisted));
  rig.sim.run();
  EXPECT_TRUE(persisted);
  std::vector<std::byte> out(512);
  rig.smem.pm().peek(0x900, out);
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace prdma

namespace prdma {
namespace {

TEST(SmartNic, AutoPersistNotifiesWithoutReceiverCpu) {
  // §4.5: the receiver NIC's lookup table persists incoming writes and
  // pushes a counter to the sender — no receiver software runs at all.
  rnic::RnicParams rp;
  rp.smartnic_rflush = true;
  Rig rig(rp);
  const std::uint64_t notify = mem::NodeMemory::kDramBase + 512 * 1024;
  rig.snic.configure_auto_persist(*rig.sqp, 0x1000, 64 * 1024, notify);

  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(2048));
  sim::spawn([](Rig& r, std::uint64_t naddr) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    for (int i = 0; i < 3; ++i) {
      s.post_write_nowait(mem::NodeMemory::kDramBase, 2048,
                          0x1000 + static_cast<std::uint64_t>(i) * 4096);
    }
    // Wait for the third NIC-issued notification to land locally.
    sim::Event ev(r.sim);
    const auto watch = r.cmem.add_watch(naddr, 8, [&r, naddr, &ev] {
      std::byte raw[8];
      r.cmem.cpu_read(naddr, raw);
      std::uint64_t v = 0;
      std::memcpy(&v, raw, 8);
      if (v >= 3) ev.set();
    });
    co_await ev.wait();
    r.cmem.remove_watch(watch);
    // Notified => persistent: a crash right now must lose nothing.
    r.snic.crash();
    r.smem.crash();
  }(rig, notify));
  rig.sim.run();

  std::vector<std::byte> out(2048);
  rig.smem.pm().peek(0x1000 + 2 * 4096, out);
  EXPECT_EQ(out, pattern(2048)) << "NIC-notified data must survive the crash";
  EXPECT_GE(rig.snic.flushes_executed(), 3u);
}

TEST(SmartNic, DisabledFlagIgnoresLookupTable) {
  Rig rig;  // smartnic_rflush off
  const std::uint64_t notify = mem::NodeMemory::kDramBase + 512 * 1024;
  rig.snic.configure_auto_persist(*rig.sqp, 0x1000, 4096, notify);
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(256));
  sim::spawn([](Rig& r) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    (void)co_await s.write(mem::NodeMemory::kDramBase, 256, 0x1000);
  }(rig));
  rig.sim.run();
  std::byte raw[8] = {};
  rig.cmem.cpu_read(notify, raw);
  std::uint64_t v = 1;
  std::memcpy(&v, raw, 8);
  EXPECT_EQ(v, 0u) << "no notification when the mode is off";
}

}  // namespace
}  // namespace prdma

namespace prdma {
namespace {

struct MrRig : Rig {
  MrRig() : Rig(enforcing()) {}
  static rnic::RnicParams enforcing() {
    rnic::RnicParams p;
    p.enforce_mr = true;
    return p;
  }
};

TEST(MemoryRegions, WriteOutsideRegisteredRegionIsNaked) {
  MrRig rig;
  rig.snic.register_mr(0x1000, 4096, static_cast<std::uint8_t>(
                                         rnic::Access::kRemoteWrite));
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(256));

  std::optional<Wc> inside, outside;
  sim::spawn([](MrRig& r, std::optional<Wc>& in, std::optional<Wc>& out)
                 -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    in = co_await s.write(mem::NodeMemory::kDramBase, 256, 0x1000);
    out = co_await s.write(mem::NodeMemory::kDramBase, 256, 0x9000);
  }(rig, inside, outside));
  rig.sim.run();

  ASSERT_TRUE(inside.has_value());
  EXPECT_EQ(inside->status, WcStatus::kSuccess);
  ASSERT_TRUE(outside.has_value());
  EXPECT_EQ(outside->status, WcStatus::kRemoteAccessError);
  EXPECT_EQ(rig.snic.access_violations(), 1u);

  // The NAKed write must not have touched memory.
  std::vector<std::byte> raw(256);
  rig.smem.pm().peek(0x9000, raw);
  EXPECT_EQ(raw, std::vector<std::byte>(256, std::byte{0}));
}

TEST(MemoryRegions, PermissionBitsAreChecked) {
  MrRig rig;
  // Write-only region: reads and flushes must be rejected.
  rig.snic.register_mr(0x1000, 4096, static_cast<std::uint8_t>(
                                         rnic::Access::kRemoteWrite));
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(64));
  std::optional<Wc> rd, fl;
  sim::spawn([](MrRig& r, std::optional<Wc>& ro, std::optional<Wc>& fo)
                 -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    (void)co_await s.write(mem::NodeMemory::kDramBase, 64, 0x1000);
    ro = co_await s.read(0x1000, 64, mem::NodeMemory::kDramBase + 4096);
    fo = co_await s.wflush(0x1000, 64);
  }(rig, rd, fl));
  rig.sim.run();
  ASSERT_TRUE(rd.has_value());
  EXPECT_EQ(rd->status, WcStatus::kRemoteAccessError);
  ASSERT_TRUE(fl.has_value());
  EXPECT_EQ(fl->status, WcStatus::kRemoteAccessError);
}

TEST(MemoryRegions, FullAccessRegionPermitsEverything) {
  MrRig rig;
  rig.snic.register_mr(0, 1 << 20, rnic::kAccessAll);
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(128));
  bool all_ok = true;
  sim::spawn([](MrRig& r, bool& ok) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    const auto w = co_await s.write(mem::NodeMemory::kDramBase, 128, 0x2000);
    const auto f = co_await s.wflush(0x2000, 128);
    const auto rd = co_await s.read(0x2000, 128,
                                    mem::NodeMemory::kDramBase + 8192);
    ok = w && f && rd && w->status == WcStatus::kSuccess &&
         f->status == WcStatus::kSuccess && rd->status == WcStatus::kSuccess;
  }(rig, all_ok));
  rig.sim.run();
  EXPECT_TRUE(all_ok);
}

TEST(MemoryRegions, DeregisterRevokesAccess) {
  MrRig rig;
  const auto rkey = rig.snic.register_mr(
      0x1000, 4096, static_cast<std::uint8_t>(rnic::Access::kRemoteWrite));
  rig.snic.deregister_mr(rkey);
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(64));
  std::optional<Wc> wc;
  sim::spawn([](MrRig& r, std::optional<Wc>& out) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    out = co_await s.write(mem::NodeMemory::kDramBase, 64, 0x1000);
  }(rig, wc));
  rig.sim.run();
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->status, WcStatus::kRemoteAccessError);
}

TEST(MemoryRegions, EnforcementOffPermitsEverything) {
  Rig rig;  // default params: enforce_mr == false, empty table
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(64));
  std::optional<Wc> wc;
  sim::spawn([](Rig& r, std::optional<Wc>& out) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    out = co_await s.write(mem::NodeMemory::kDramBase, 64, 0x7000);
  }(rig, wc));
  rig.sim.run();
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->status, WcStatus::kSuccess);
}

TEST(MemoryRegions, CrashClearsProtectionState) {
  MrRig rig;
  rig.snic.register_mr(0, 1 << 20, rnic::kAccessAll);
  EXPECT_EQ(rig.snic.mr_table().size(), 1u);
  rig.snic.crash();
  EXPECT_EQ(rig.snic.mr_table().size(), 0u);
}

TEST(MemoryRegions, RangeMustBeFullyInsideOneRegion) {
  MrRig rig;
  rig.snic.register_mr(0x1000, 4096, static_cast<std::uint8_t>(
                                         rnic::Access::kRemoteWrite));
  rig.cmem.cpu_write(mem::NodeMemory::kDramBase, pattern(512));
  std::optional<Wc> wc;
  sim::spawn([](MrRig& r, std::optional<Wc>& out) -> Task<> {
    rdma::Completer comp(r.sim, r.c_scq);
    rdma::QpSession s(r.cnic, *r.cqp, comp);
    // Write straddles the end of the region.
    out = co_await s.write(mem::NodeMemory::kDramBase, 512, 0x1F00);
  }(rig, wc));
  rig.sim.run();
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->status, WcStatus::kRemoteAccessError);
}

}  // namespace
}  // namespace prdma
