// Tests for the statistics library: log-linear histogram quantiles,
// Welford summaries and latency breakdowns.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "stats/breakdown.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace prdma::stats {
namespace {

// ------------------------------------------------------------- Histogram

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.99), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 64; ++v) h.record(v);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 63u);
  EXPECT_EQ(h.percentile(0.5), 31u);  // exact buckets below 64
}

TEST(Histogram, SingleValueAllQuantiles) {
  LatencyHistogram h;
  h.record(1000);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(h.percentile(q), 1000u) << q;
  }
  EXPECT_EQ(h.mean(), 1000.0);
}

TEST(Histogram, IndexRangeRoundTrip) {
  // Property: every value must fall inside its own bucket's range.
  std::mt19937_64 gen(7);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = gen() >> (gen() % 40);  // spread magnitudes
    const std::size_t idx = LatencyHistogram::index_for(v);
    const auto [lo, hi] = LatencyHistogram::bucket_range(idx);
    EXPECT_LE(lo, v);
    EXPECT_GE(hi, v);
    EXPECT_LE(static_cast<double>(hi - lo),
              std::max(1.0, static_cast<double>(v) / 32.0))
        << "bucket too wide for v=" << v;
  }
}

TEST(Histogram, QuantilesAreMonotonic) {
  LatencyHistogram h;
  std::mt19937_64 gen(11);
  std::lognormal_distribution<double> dist(8.0, 1.5);
  for (int i = 0; i < 100000; ++i) {
    h.record(static_cast<std::uint64_t>(dist(gen)));
  }
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const auto cur = h.percentile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Histogram, QuantileErrorBounded) {
  // Against a known uniform distribution the p50/p90/p99 must be within
  // the histogram's ~1.6% relative error plus sampling noise.
  LatencyHistogram h;
  std::mt19937_64 gen(3);
  std::uniform_int_distribution<std::uint64_t> dist(1, 1'000'000);
  std::vector<std::uint64_t> all;
  for (int i = 0; i < 200000; ++i) {
    const auto v = dist(gen);
    h.record(v);
    all.push_back(v);
  }
  std::sort(all.begin(), all.end());
  for (double q : {0.50, 0.90, 0.99}) {
    const auto exact = all[static_cast<std::size_t>(q * (all.size() - 1))];
    const auto est = h.percentile(q);
    const double rel = std::abs(static_cast<double>(est) -
                                static_cast<double>(exact)) /
                       static_cast<double>(exact);
    EXPECT_LT(rel, 0.03) << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram both;
  std::mt19937_64 gen(5);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = gen() % 1000000;
    if (i % 2 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    both.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_DOUBLE_EQ(a.mean(), both.mean());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.percentile(q), both.percentile(q));
  }
}

TEST(Histogram, ResetClearsEverything) {
  LatencyHistogram h;
  h.record(5);
  h.record(500000);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  h.record(10);
  EXPECT_EQ(h.percentile(0.5), 10u);
}

TEST(Histogram, PercentileClampedToObservedRange) {
  LatencyHistogram h;
  h.record(1'000'003);  // lands mid-bucket
  EXPECT_EQ(h.percentile(1.0), 1'000'003u);
  EXPECT_EQ(h.percentile(0.0), 1'000'003u);
}

// --------------------------------------------------------------- Summary

TEST(Summary, MatchesDirectComputation) {
  Summary s;
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (double x : xs) s.record(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_NEAR(s.variance(), 9.1666667, 1e-6);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
}

TEST(Summary, MergeMatchesCombined) {
  Summary a;
  Summary b;
  Summary both;
  std::mt19937_64 gen(9);
  std::normal_distribution<double> dist(100.0, 15.0);
  for (int i = 0; i < 2000; ++i) {
    const double x = dist(gen);
    (i % 3 == 0 ? a : b).record(x);
    both.record(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_NEAR(a.mean(), both.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), both.variance(), 1e-6);
}

TEST(Summary, MergeWithEmptySides) {
  Summary a;
  Summary b;
  b.record(4.0);
  a.merge(b);  // empty += nonempty
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.mean(), 4.0);
  Summary c;
  a.merge(c);  // nonempty += empty
  EXPECT_EQ(a.count(), 1u);
}

// ------------------------------------------------------------- Breakdown

TEST(Breakdown, SharesSumToOne) {
  SpanBreakdown bd;
  bd.add("sender_sw", 100);
  bd.add("rtt", 700);
  bd.add("receiver_sw", 200);
  EXPECT_DOUBLE_EQ(bd.share("sender_sw") + bd.share("rtt") +
                       bd.share("receiver_sw"),
                   1.0);
  EXPECT_DOUBLE_EQ(bd.share("rtt"), 0.7);
  EXPECT_EQ(bd.total_ns(), 1000u);
}

TEST(Breakdown, MeanPerOperation) {
  SpanBreakdown bd;
  bd.add("rtt", 100);
  bd.add("rtt", 300);
  EXPECT_DOUBLE_EQ(bd.mean_ns("rtt", 2), 200.0);
  EXPECT_DOUBLE_EQ(bd.mean_ns("missing", 2), 0.0);
  EXPECT_DOUBLE_EQ(bd.mean_ns("rtt", 0), 0.0);
}

TEST(Breakdown, MergeAccumulates) {
  SpanBreakdown a;
  SpanBreakdown b;
  a.add("x", 10);
  b.add("x", 20);
  b.add("y", 5);
  a.merge(b);
  EXPECT_EQ(a.total_ns(), 35u);
  EXPECT_EQ(a.component_names().size(), 2u);
  a.reset();
  EXPECT_EQ(a.total_ns(), 0u);
}

}  // namespace
}  // namespace prdma::stats
