// Ablation (§4.5): receiver-initiated RFlush executed by the receiver
// CPU (the paper's emulation) versus by a smartNIC lookup table (the
// paper's predicted hardware). The NIC-issued variant removes the
// receiver CPU from the persistence path entirely.
//
// Flags: --ops=N (default 4000), --seed=N, --jobs=N, --quick

#include <cstdio>
#include <vector>

#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/flags.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 1000 : 4000);
  const std::uint64_t seed = flags.u64("seed", 1);
  const net::TopologyConfig topology = bench::topology_from(flags);
  bench::SweepRunner runner(bench::jobs_from(flags));

  std::printf("Ablation — W-RFlush-RPC: CPU-emulated RFlush vs smartNIC\n");
  std::printf("(§4.5); write-only, 1KB objects\n\n");

  std::vector<bench::MicroCell> cells;
  for (const bool smartnic : {false, true}) {
    bench::MicroConfig cfg;
    cfg.object_size = 1024;
    cfg.ops = ops;
    cfg.seed = seed;
    cfg.topology = topology;
    cfg.read_ratio = 0.0;
    cfg.smartnic_rflush = smartnic;
    cells.push_back({rpcs::System::kWRFlushRpc, cfg});
  }
  const auto results = bench::run_micro_cells(runner, cells);

  bench::TablePrinter table({"RFlush executor", "avg write (us)",
                             "receiver critical SW (us/op)"});
  std::size_t k = 0;
  for (const bool smartnic : {false, true}) {
    const auto& res = results[k++];
    table.add_row({smartnic ? "smartNIC (hardware)" : "receiver CPU (emulated)",
                   bench::TablePrinter::num(res.avg_us(), 2),
                   bench::TablePrinter::num(res.receiver_sw_ns / 1e3, 2)});
  }
  table.print();
  std::printf("\nThe smartNIC path removes the poll + persist + notify\n");
  std::printf("software from the receiver's critical path (§4.5).\n");
  return 0;
}
