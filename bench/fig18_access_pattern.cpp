// Reproduces Fig. 18: average latency under different read/write
// mixes. For write-intensive workloads the durable RPCs win big (the
// Flush completes long before processing); for read-intensive ones
// they match the baselines (reads take the ordinary response path).
//
// Flags: --ops=N (default 4000), --seed=N, --jobs=N, --quick

#include <cstdio>
#include <vector>

#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/flags.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 1000 : 4000);
  const std::uint64_t seed = flags.u64("seed", 1);
  const net::TopologyConfig topology = bench::topology_from(flags);
  bench::SweepRunner runner(bench::jobs_from(flags));

  std::printf("Fig. 18 — avg latency (us) vs read/write mix (4KB objects,\n");
  std::printf("heavy load: 100us injected processing)\n\n");

  const double read_ratios[] = {0.05, 0.50, 0.95};
  const auto lineup = rpcs::evaluation_lineup(64 * 1024);
  std::vector<bench::MicroCell> cells;
  for (const rpcs::System sys : lineup) {
    for (const double rr : read_ratios) {
      bench::MicroConfig cfg;
      cfg.object_size = 4096;
      cfg.ops = ops;
      cfg.seed = seed;
      cfg.topology = topology;
      cfg.read_ratio = rr;
      cfg.heavy_load = true;
      cells.push_back({sys, cfg});
    }
  }
  const auto results = bench::run_micro_cells(runner, cells);

  bench::TablePrinter table(
      {"System", "5%r+95%w", "50%r+50%w", "95%r+5%w"});
  std::size_t k = 0;
  for (const rpcs::System sys : lineup) {
    std::vector<std::string> row{std::string(rpcs::name_of(sys))};
    for (std::size_t i = 0; i < std::size(read_ratios); ++i) {
      row.push_back(bench::TablePrinter::num(results[k++].avg_us(), 1));
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
