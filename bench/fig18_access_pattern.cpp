// Reproduces Fig. 18: average latency under different read/write
// mixes. For write-intensive workloads the durable RPCs win big (the
// Flush completes long before processing); for read-intensive ones
// they match the baselines (reads take the ordinary response path).
//
// Flags: --ops=N (default 4000), --seed=N, --quick

#include <cstdio>

#include "bench_util/micro.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 1000 : 4000);
  const std::uint64_t seed = flags.u64("seed", 1);

  std::printf("Fig. 18 — avg latency (us) vs read/write mix (4KB objects,\n");
  std::printf("heavy load: 100us injected processing)\n\n");

  const double read_ratios[] = {0.05, 0.50, 0.95};
  bench::TablePrinter table(
      {"System", "5%r+95%w", "50%r+50%w", "95%r+5%w"});
  for (const rpcs::System sys : rpcs::evaluation_lineup(64 * 1024)) {
    std::vector<std::string> row{std::string(rpcs::name_of(sys))};
    for (const double rr : read_ratios) {
      bench::MicroConfig cfg;
      cfg.object_size = 4096;
      cfg.ops = ops;
      cfg.seed = seed;
      cfg.read_ratio = rr;
      cfg.heavy_load = true;
      const auto res = bench::run_micro(sys, cfg);
      row.push_back(bench::TablePrinter::num(res.avg_us(), 1));
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
