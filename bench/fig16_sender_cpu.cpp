// Reproduces Fig. 16: impact of the sender's CPU load on RPC latency.
// Every system's sender path (posting, polling its own completion/
// response) is software, so a busy sender inflates all of them
// significantly (the paper's conclusion).
//
// Flags: --ops=N (default 4000), --seed=N, --load=30, --jobs=N, --quick

#include <cstdio>
#include <vector>

#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/flags.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 1000 : 4000);
  const std::uint64_t seed = flags.u64("seed", 1);
  const net::TopologyConfig topology = bench::topology_from(flags);
  const double busy = flags.real("load", 30.0);
  bench::SweepRunner runner(bench::jobs_from(flags));

  std::printf(
      "Fig. 16 — avg latency (us), idle vs busy sender CPU (load=%.0fx)\n\n",
      busy);

  const auto lineup = rpcs::evaluation_lineup(64 * 1024);
  std::vector<bench::MicroCell> cells;
  for (const rpcs::System sys : lineup) {
    for (const bool is_busy : {false, true}) {
      bench::MicroConfig cfg;
      cfg.object_size = 4096;
      cfg.ops = ops;
      cfg.seed = seed;
      cfg.topology = topology;
      cfg.client_cpu_load = is_busy ? busy : 0.0;
      cells.push_back({sys, cfg});
    }
  }
  const auto results = bench::run_micro_cells(runner, cells);

  bench::TablePrinter table({"System", "Idle", "Busy", "Busy/Idle"});
  std::size_t k = 0;
  for (const rpcs::System sys : lineup) {
    const double idle = results[k++].avg_us();
    const double loaded = results[k++].avg_us();
    table.add_row({std::string(rpcs::name_of(sys)),
                   bench::TablePrinter::num(idle, 1),
                   bench::TablePrinter::num(loaded, 1),
                   bench::TablePrinter::num(loaded / idle, 2)});
  }
  table.print();
  return 0;
}
