// Reproduces Fig. 12: total execution time of the durable RPCs under
// server failures, normalized to a traditional RPC system that must
// re-send data from the client (§5.4).
//
// Method: per-op time and per-crash client-visible overhead are
// measured with the real crash/restart/recovery machinery (unikernel
// restart 300 ms, RDMA retransmission interval 100 ms); the paper's
// 1e9-RPC totals are composed from those measurements for each server
// availability level (simulating 1e9 RPCs directly is out of reach).
//
// Flags: --ops=N (per measurement, default 1200), --seed=N, --jobs=N,
//        --quick

#include <cstdio>
#include <vector>

#include "bench_util/sweep.hpp"
#include "bench_util/flags.hpp"
#include "bench_util/micro.hpp"
#include "bench_util/table.hpp"
#include "fault/experiment.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 400 : 1200);
  const std::uint64_t seed = flags.u64("seed", 1);
  const net::TopologyConfig topology = bench::topology_from(flags);
  bench::SweepRunner runner(bench::jobs_from(flags));

  std::printf("Fig. 12 — execution time with failures, durable (WFlush-RPC)\n");
  std::printf("normalized to a traditional RPC system (FaRM-style)\n");
  std::printf("restart=300ms, retransmit=100ms, window=8, 4KB values\n\n");

  const std::vector<double> availabilities = {0.99, 0.999, 0.9999, 0.99999};
  const struct {
    const char* label;
    double read_ratio;
  } mixes[] = {{"100%Read", 1.0}, {"50%Read+50%Write", 0.5}, {"100%Write", 0.0}};

  bench::TablePrinter table(
      {"Availability", "100%Read", "50%R+50%W", "100%Write"});
  const std::vector<std::vector<fault::AvailabilityPoint>> columns =
      runner.map_n(std::size(mixes), [&](std::size_t mi) {
        return fault::compose_figure12(mixes[mi].read_ratio, availabilities,
                                       seed, ops, topology);
      });
  for (std::size_t ai = 0; ai < availabilities.size(); ++ai) {
    char label[32];
    std::snprintf(label, sizeof label, "%.3f%%", availabilities[ai] * 100.0);
    table.add_row({label,
                   bench::TablePrinter::num(columns[0][ai].normalized_time, 3),
                   bench::TablePrinter::num(columns[1][ai].normalized_time, 3),
                   bench::TablePrinter::num(columns[2][ai].normalized_time, 3)});
  }
  table.print();
  std::printf("\n(normalized < 1: the durable RPCs recover faster; lower\n");
  std::printf(" availability and more writes increase the advantage)\n");
  return 0;
}
