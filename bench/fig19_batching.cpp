// Reproduces Fig. 19: total execution time when multiple requests are
// batched into one RPC (batch sizes 1/4/8, §4.3, Fig. 6). Batching
// pays off far more for the write+Flush RPCs (one large transfer, one
// flush) than for send-based DaRPC, whose software cost scales with
// the message size.
//
// Flags: --ops=N (total sub-ops, default 8000), --seed=N, --jobs=N, --quick

#include <cstdio>
#include <vector>

#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/flags.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 2000 : 8000);
  const std::uint64_t seed = flags.u64("seed", 1);
  const net::TopologyConfig topology = bench::topology_from(flags);
  bench::SweepRunner runner(bench::jobs_from(flags));

  std::printf("Fig. 19 — total execution time (simulated ms) vs batch size\n");
  std::printf("1KB writes, %llu total operations\n\n",
              static_cast<unsigned long long>(ops));

  const rpcs::System systems[] = {
      rpcs::System::kDaRPC,      rpcs::System::kScaleRPC,
      rpcs::System::kSRFlushRpc, rpcs::System::kSFlushRpc,
      rpcs::System::kWRFlushRpc, rpcs::System::kWFlushRpc};

  std::vector<bench::MicroCell> cells;
  for (const rpcs::System sys : systems) {
    for (const std::uint32_t batch : {1u, 4u, 8u}) {
      bench::MicroConfig cfg;
      cfg.object_size = 1024;
      cfg.batch = batch;
      cfg.ops = ops / batch;  // same total sub-operations
      cfg.read_ratio = 0.0;
      cfg.seed = seed;
      cfg.topology = topology;
      cells.push_back({sys, cfg});
    }
  }
  const auto results = bench::run_micro_cells(runner, cells);

  bench::TablePrinter table({"System", "batch=1", "batch=4", "batch=8"});
  std::size_t k = 0;
  for (const rpcs::System sys : systems) {
    std::vector<std::string> row{std::string(rpcs::name_of(sys))};
    for (int i = 0; i < 3; ++i) {
      row.push_back(
          bench::TablePrinter::num(sim::to_ms(results[k++].duration), 2));
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
