// Ablation (beyond the paper's figures): how much of the durable RPCs'
// cost is an artifact of the *emulation* (§4.1.3: read-after-write for
// WFlush, +7 µs addressing for SFlush) versus what idealised RNIC
// hardware support would deliver. Also sweeps the SFlush addressing
// delay, the model's most conservative assumption.
//
// Flags: --ops=N (default 4000), --seed=N, --quick

#include <cstdio>

#include "bench_util/micro.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 1000 : 4000);
  const std::uint64_t seed = flags.u64("seed", 1);

  std::printf("Ablation — emulated Flush (paper §4.1.3) vs idealised RNIC\n");
  std::printf("hardware; write-only, 1KB objects\n\n");

  {
    bench::TablePrinter table(
        {"System", "Emulated (us)", "Hardware (us)", "Speedup"});
    for (const rpcs::System sys :
         {rpcs::System::kWFlushRpc, rpcs::System::kSFlushRpc,
          rpcs::System::kWRFlushRpc, rpcs::System::kSRFlushRpc}) {
      double lat[2] = {0, 0};
      for (const bool emulate : {true, false}) {
        bench::MicroConfig cfg;
        cfg.object_size = 1024;
        cfg.ops = ops;
        cfg.seed = seed;
        cfg.read_ratio = 0.0;
        cfg.emulate_flush = emulate;
        const auto res = bench::run_micro(sys, cfg);
        lat[emulate ? 0 : 1] = res.avg_us();
      }
      table.add_row({std::string(rpcs::name_of(sys)),
                     bench::TablePrinter::num(lat[0], 1),
                     bench::TablePrinter::num(lat[1], 1),
                     bench::TablePrinter::num(lat[0] / lat[1], 2)});
    }
    table.print();
  }

  std::printf("\nSFlush addressing-delay sweep (emulated mode, paper default"
              " 7us):\n\n");
  bench::TablePrinter sweep({"Addressing (us)", "SFlush-RPC avg (us)"});
  for (const std::uint64_t us : {0ull, 1ull, 3ull, 7ull, 14ull, 28ull}) {
    bench::MicroConfig cfg;
    cfg.object_size = 1024;
    cfg.ops = ops;
    cfg.seed = seed;
    cfg.read_ratio = 0.0;
    cfg.sflush_addressing_us = us;
    const auto res = bench::run_micro(rpcs::System::kSFlushRpc, cfg);
    sweep.add_row({std::to_string(us), bench::TablePrinter::num(res.avg_us(), 1)});
  }
  sweep.print();
  return 0;
}
