// Ablation (beyond the paper's figures): how much of the durable RPCs'
// cost is an artifact of the *emulation* (§4.1.3: read-after-write for
// WFlush, +7 µs addressing for SFlush) versus what idealised RNIC
// hardware support would deliver. Also sweeps the SFlush addressing
// delay, the model's most conservative assumption.
//
// Flags: --ops=N (default 4000), --seed=N, --jobs=N, --quick

#include <cstdio>
#include <vector>

#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/flags.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 1000 : 4000);
  const std::uint64_t seed = flags.u64("seed", 1);
  const net::TopologyConfig topology = bench::topology_from(flags);
  bench::SweepRunner runner(bench::jobs_from(flags));

  std::printf("Ablation — emulated Flush (paper §4.1.3) vs idealised RNIC\n");
  std::printf("hardware; write-only, 1KB objects\n\n");

  const std::vector<rpcs::System> systems = {
      rpcs::System::kWFlushRpc, rpcs::System::kSFlushRpc,
      rpcs::System::kWRFlushRpc, rpcs::System::kSRFlushRpc};
  const std::uint64_t addressing_us[] = {0, 1, 3, 7, 14, 28};

  // One cell list for both tables: emulated/hardware pairs first, then
  // the addressing sweep.
  std::vector<bench::MicroCell> cells;
  for (const rpcs::System sys : systems) {
    for (const bool emulate : {true, false}) {
      bench::MicroConfig cfg;
      cfg.object_size = 1024;
      cfg.ops = ops;
      cfg.seed = seed;
      cfg.topology = topology;
      cfg.read_ratio = 0.0;
      cfg.emulate_flush = emulate;
      cells.push_back({sys, cfg});
    }
  }
  for (const std::uint64_t us : addressing_us) {
    bench::MicroConfig cfg;
    cfg.object_size = 1024;
    cfg.ops = ops;
    cfg.seed = seed;
    cfg.topology = topology;
    cfg.read_ratio = 0.0;
    cfg.sflush_addressing_us = us;
    cells.push_back({rpcs::System::kSFlushRpc, cfg});
  }
  const auto results = bench::run_micro_cells(runner, cells);

  std::size_t k = 0;
  {
    bench::TablePrinter table(
        {"System", "Emulated (us)", "Hardware (us)", "Speedup"});
    for (const rpcs::System sys : systems) {
      const double emulated = results[k++].avg_us();
      const double hardware = results[k++].avg_us();
      table.add_row({std::string(rpcs::name_of(sys)),
                     bench::TablePrinter::num(emulated, 1),
                     bench::TablePrinter::num(hardware, 1),
                     bench::TablePrinter::num(emulated / hardware, 2)});
    }
    table.print();
  }

  std::printf("\nSFlush addressing-delay sweep (emulated mode, paper default"
              " 7us):\n\n");
  bench::TablePrinter sweep({"Addressing (us)", "SFlush-RPC avg (us)"});
  for (const std::uint64_t us : addressing_us) {
    sweep.add_row({std::to_string(us),
                   bench::TablePrinter::num(results[k++].avg_us(), 1)});
  }
  sweep.print();
  return 0;
}
