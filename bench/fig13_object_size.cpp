// Reproduces Fig. 13: average RPC latency as the object size sweeps
// 64 B — 16 KB. The paper's observation: latency is software-dominated
// below ~4 KB and transfer-dominated above; send-based RPCs (DaRPC)
// are the most size-sensitive.
//
// Flags: --ops=N (default 4000), --seed=N, --quick

#include <cstdio>

#include "bench_util/micro.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 1000 : 4000);
  const std::uint64_t seed = flags.u64("seed", 1);

  std::printf("Fig. 13 — average latency (us) vs object size\n\n");

  const std::uint32_t sizes[] = {64, 256, 1024, 4096, 16384};
  bench::TablePrinter table({"System", "64B", "256B", "1KB", "4KB", "16KB"});
  for (const rpcs::System sys : rpcs::evaluation_lineup(64)) {
    std::vector<std::string> row{std::string(rpcs::name_of(sys))};
    for (const std::uint32_t size : sizes) {
      const auto& info = rpcs::info_of(sys);
      if (info.max_object != 0 && size > info.max_object) {
        row.push_back("-");
        continue;
      }
      bench::MicroConfig cfg;
      cfg.object_size = size;
      cfg.ops = ops;
      cfg.seed = seed;
      const auto res = bench::run_micro(sys, cfg);
      row.push_back(bench::TablePrinter::num(res.avg_us(), 1));
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
