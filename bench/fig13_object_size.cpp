// Reproduces Fig. 13: average RPC latency as the object size sweeps
// 64 B — 16 KB. The paper's observation: latency is software-dominated
// below ~4 KB and transfer-dominated above; send-based RPCs (DaRPC)
// are the most size-sensitive.
//
// Flags: --ops=N (default 4000), --seed=N, --jobs=N, --quick,
//        --json=PATH, --trace=PATH

#include <cstdio>
#include <vector>

#include "bench_util/flags.hpp"
#include "bench_util/micro.hpp"
#include "bench_util/report.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv, {},
                           "Fig. 13: average latency vs object size.");
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 1000 : 4000);
  const std::uint64_t seed = flags.u64("seed", 1);
  bench::SweepRunner runner(bench::jobs_from(flags));
  bench::Report report(flags, "fig13_object_size");

  std::printf("Fig. 13 — average latency (us) vs object size\n\n");

  const std::uint32_t sizes[] = {64, 256, 1024, 4096, 16384};
  const auto lineup = rpcs::evaluation_lineup(64);
  const auto skip = [](rpcs::System sys, std::uint32_t size) {
    const auto& info = rpcs::info_of(sys);
    return info.max_object != 0 && size > info.max_object;
  };

  std::vector<bench::MicroCell> cells;
  for (const rpcs::System sys : lineup) {
    for (const std::uint32_t size : sizes) {
      if (skip(sys, size)) continue;
      bench::MicroConfig cfg;
      cfg.object_size = size;
      cfg.ops = ops;
      cfg.seed = seed;
      report.configure(cfg);
      cells.push_back({sys, cfg});
    }
  }
  const auto results = bench::run_micro_cells(runner, cells);

  bench::TablePrinter table({"System", "64B", "256B", "1KB", "4KB", "16KB"});
  std::size_t k = 0;
  for (const rpcs::System sys : lineup) {
    std::vector<std::string> row{std::string(rpcs::name_of(sys))};
    for (const std::uint32_t size : sizes) {
      if (skip(sys, size)) {
        row.push_back("-");
        continue;
      }
      report.add(std::string(rpcs::name_of(sys)) + "/" +
                     std::to_string(size) + "B",
                 results[k]);
      row.push_back(bench::TablePrinter::num(results[k++].avg_us(), 1));
    }
    table.add_row(std::move(row));
  }
  table.print();
  return report.write() ? 0 : 1;
}
