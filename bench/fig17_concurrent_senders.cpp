// Reproduces Fig. 17: average latency with 10..50 concurrent senders
// against a single receiver. Traditional RPCs degrade with sender
// count (every request crosses the receiver CPU); the durable RPCs'
// write path needs no remote CPU, so their latency stays flat.
//
// The workload is write-only: the durable-RPC completion point (remote
// persistence) is the metric under study, exactly as in §5.5.
//
// Flags: --ops=N (per sender, default 300), --seed=N, --jobs=N, --quick

#include <cstdio>
#include <vector>

#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/flags.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t per_sender =
      flags.u64("ops", flags.flag("quick") ? 100 : 300);
  const std::uint64_t seed = flags.u64("seed", 1);
  const net::TopologyConfig topology = bench::topology_from(flags);
  bench::SweepRunner runner(bench::jobs_from(flags));

  std::printf("Fig. 17 — avg latency (us) vs concurrent senders\n");
  std::printf("write-only workload, 1KB objects, %llu ops/sender\n\n",
              static_cast<unsigned long long>(per_sender));

  const std::size_t counts[] = {10, 20, 30, 40, 50};
  const auto lineup = rpcs::evaluation_lineup(1024);
  std::vector<bench::MicroCell> cells;
  for (const rpcs::System sys : lineup) {
    for (const std::size_t n : counts) {
      bench::MicroConfig cfg;
      cfg.object_size = 1024;
      cfg.clients = n;
      cfg.ops = per_sender * n;
      cfg.read_ratio = 0.0;
      cfg.seed = seed;
      cfg.topology = topology;
      cfg.server_cores = 20;    // testbed: 20-core Xeon Gold 6230 (§5.1)
      cfg.server_workers = 16;
      cells.push_back({sys, cfg});
    }
  }
  const auto results = bench::run_micro_cells(runner, cells);

  bench::TablePrinter table({"System", "10", "20", "30", "40", "50"});
  std::size_t k = 0;
  for (const rpcs::System sys : lineup) {
    std::vector<std::string> row{std::string(rpcs::name_of(sys))};
    for (std::size_t i = 0; i < std::size(counts); ++i) {
      row.push_back(bench::TablePrinter::num(results[k++].avg_us(), 1));
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
