// Reproduces Fig. 20: breakdown of the RPC latency into sender
// software, network round trips (hardware) and receiver critical-path
// software, for a YCSB-A-like workload (4 KB, R:W 1:1, zipfian).
//
// Sender/receiver software comes from the tracer's span totals
// (kSenderSw / kReceiverSw, DESIGN.md §7.2); the hardware share is the
// remainder. For the durable RPCs the receiver column counts only work
// the client waits on — asynchronous processing is the whole point of
// §4.2. --trace additionally exports every cell's spans as a
// Chrome/Perfetto trace, one process lane per system.
//
// Flags: --ops=N (default 4000), --seed=N, --jobs=N, --quick,
//        --json=PATH, --trace=PATH

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util/flags.hpp"
#include "bench_util/micro.hpp"
#include "bench_util/report.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(
      argc, argv, {},
      "Fig. 20: sender SW / network / receiver SW latency breakdown.");
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 1000 : 4000);
  const std::uint64_t seed = flags.u64("seed", 1);

  std::printf("Fig. 20 — latency breakdown (us/op), YCSB-A-like workload\n\n");

  bench::SweepRunner runner(bench::jobs_from(flags));
  bench::Report report(flags, "fig20_breakdown");
  report.meta("ops", bench::Json::num(ops));
  report.meta("seed", bench::Json::num(seed));
  const auto lineup = rpcs::evaluation_lineup(64 * 1024);
  std::vector<bench::MicroCell> cells;
  for (const rpcs::System sys : lineup) {
    bench::MicroConfig cfg;
    cfg.object_size = 4096;
    cfg.ops = ops;
    cfg.seed = seed;
    report.configure(cfg);
    cells.push_back({sys, cfg});
  }
  const auto results = bench::run_micro_cells(runner, cells);

  bench::TablePrinter table({"System", "Sender SW", "RTT (hw)", "Receiver SW",
                             "Total", "SW share"});
  for (std::size_t k = 0; k < lineup.size(); ++k) {
    const rpcs::System sys = lineup[k];
    const auto& res = results[k];
    const double total = res.latency.mean();
    const double sender = res.sender_sw_ns;
    const double receiver = res.receiver_sw_ns;
    const double rtt = std::max(0.0, total - sender - receiver);
    const double sw_share = total > 0 ? (sender + receiver) / total : 0;
    table.add_row({std::string(rpcs::name_of(sys)),
                   bench::TablePrinter::num(sender / 1e3, 2),
                   bench::TablePrinter::num(rtt / 1e3, 2),
                   bench::TablePrinter::num(receiver / 1e3, 2),
                   bench::TablePrinter::num(total / 1e3, 2),
                   bench::TablePrinter::num(sw_share * 100.0, 1) + "%"});
    report.add(std::string(rpcs::name_of(sys)), res);
  }
  table.print();
  return report.write() ? 0 : 1;
}
