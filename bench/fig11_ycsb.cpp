// Reproduces Fig. 11: average RPC latency of the YCSB workloads A-F
// against a KV store with values in remote PM (§5.3: 50 K objects,
// 8 B keys, 4 KB values, zipfian 0.99).
//
// Flags: --ops=N (per workload, default 4000), --seed=N, --quick

#include <cstdio>

#include "bench_util/table.hpp"
#include "kv/ycsb.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 1000 : 4000);
  const std::uint64_t seed = flags.u64("seed", 1);

  std::printf("Fig. 11 — YCSB average op latency (us), 4KB values\n\n");

  const kv::Workload workloads[] = {kv::Workload::kA, kv::Workload::kB,
                                    kv::Workload::kC, kv::Workload::kD,
                                    kv::Workload::kE, kv::Workload::kF};
  bench::TablePrinter table({"System", "A", "B", "C", "D", "E", "F"});
  for (const rpcs::System sys : rpcs::evaluation_lineup(64 * 1024)) {
    std::vector<std::string> row{std::string(rpcs::name_of(sys))};
    for (const kv::Workload w : workloads) {
      kv::YcsbConfig cfg;
      cfg.workload = w;
      cfg.ops = ops;
      cfg.seed = seed;
      const auto res = kv::run_ycsb(sys, cfg);
      row.push_back(bench::TablePrinter::num(res.avg_us(), 1));
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
