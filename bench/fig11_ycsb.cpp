// Reproduces Fig. 11: average RPC latency of the YCSB workloads A-F
// against a KV store with values in remote PM (§5.3: 50 K objects,
// 8 B keys, 4 KB values, zipfian 0.99).
//
// Flags: --ops=N (per workload, default 4000), --seed=N, --jobs=N, --quick

#include <cstdio>
#include <vector>

#include "bench_util/sweep.hpp"
#include "bench_util/flags.hpp"
#include "bench_util/micro.hpp"
#include "bench_util/table.hpp"
#include "kv/ycsb.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 1000 : 4000);
  const std::uint64_t seed = flags.u64("seed", 1);
  const net::TopologyConfig topology = bench::topology_from(flags);
  bench::SweepRunner runner(bench::jobs_from(flags));

  std::printf("Fig. 11 — YCSB average op latency (us), 4KB values\n\n");

  const kv::Workload workloads[] = {kv::Workload::kA, kv::Workload::kB,
                                    kv::Workload::kC, kv::Workload::kD,
                                    kv::Workload::kE, kv::Workload::kF};
  const auto lineup = rpcs::evaluation_lineup(64 * 1024);

  struct Cell {
    rpcs::System sys;
    kv::YcsbConfig cfg;
  };
  std::vector<Cell> cells;
  for (const rpcs::System sys : lineup) {
    for (const kv::Workload w : workloads) {
      kv::YcsbConfig cfg;
      cfg.workload = w;
      cfg.ops = ops;
      cfg.seed = seed;
      cfg.topology = topology;
      cells.push_back({sys, cfg});
    }
  }
  const auto results = runner.map(
      cells, [](const Cell& c) { return kv::run_ycsb(c.sys, c.cfg); });

  bench::TablePrinter table({"System", "A", "B", "C", "D", "E", "F"});
  std::size_t k = 0;
  for (const rpcs::System sys : lineup) {
    std::vector<std::string> row{std::string(rpcs::name_of(sys))};
    for (std::size_t i = 0; i < std::size(workloads); ++i) {
      row.push_back(bench::TablePrinter::num(results[k++].avg_us(), 1));
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
