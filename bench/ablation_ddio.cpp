// Ablation: DDIO on/off (§2.3, §4.4.2). With DDIO enabled, incoming
// DMA lands in the volatile LLC: flushes get more expensive (the
// RNIC/CPU must write lines back) and, critically, read-after-write
// stops proving persistence. This bench quantifies the latency cost;
// the correctness side is pinned by tests (RnicDdio.*).
//
// Flags: --ops=N (default 4000), --seed=N, --quick

#include <cstdio>

#include "bench_util/micro.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 1000 : 4000);
  const std::uint64_t seed = flags.u64("seed", 1);

  std::printf("Ablation — DDIO off (paper default) vs on; write-only, 4KB\n\n");

  bench::TablePrinter table(
      {"System", "DDIO off (us)", "DDIO on (us)", "On/Off"});
  for (const rpcs::System sys :
       {rpcs::System::kFaRM, rpcs::System::kScaleRPC, rpcs::System::kDaRPC,
        rpcs::System::kWFlushRpc, rpcs::System::kSFlushRpc,
        rpcs::System::kWRFlushRpc, rpcs::System::kSRFlushRpc}) {
    double lat[2] = {0, 0};
    for (const bool ddio : {false, true}) {
      bench::MicroConfig cfg;
      cfg.object_size = 4096;
      cfg.ops = ops;
      cfg.seed = seed;
      cfg.read_ratio = 0.0;
      cfg.ddio = ddio;
      const auto res = bench::run_micro(sys, cfg);
      lat[ddio ? 1 : 0] = res.avg_us();
    }
    table.add_row({std::string(rpcs::name_of(sys)),
                   bench::TablePrinter::num(lat[0], 1),
                   bench::TablePrinter::num(lat[1], 1),
                   bench::TablePrinter::num(lat[1] / lat[0], 2)});
  }
  table.print();
  return 0;
}
