// Ablation: DDIO on/off (§2.3, §4.4.2). With DDIO enabled, incoming
// DMA lands in the volatile LLC: flushes get more expensive (the
// RNIC/CPU must write lines back) and, critically, read-after-write
// stops proving persistence. This bench quantifies the latency cost;
// the correctness side is pinned by tests (RnicDdio.*).
//
// Flags: --ops=N (default 4000), --seed=N, --jobs=N, --quick

#include <cstdio>
#include <vector>

#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/flags.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 1000 : 4000);
  const std::uint64_t seed = flags.u64("seed", 1);
  const net::TopologyConfig topology = bench::topology_from(flags);
  bench::SweepRunner runner(bench::jobs_from(flags));

  std::printf("Ablation — DDIO off (paper default) vs on; write-only, 4KB\n\n");

  const std::vector<rpcs::System> systems = {
      rpcs::System::kFaRM, rpcs::System::kScaleRPC, rpcs::System::kDaRPC,
      rpcs::System::kWFlushRpc, rpcs::System::kSFlushRpc,
      rpcs::System::kWRFlushRpc, rpcs::System::kSRFlushRpc};

  std::vector<bench::MicroCell> cells;
  for (const rpcs::System sys : systems) {
    for (const bool ddio : {false, true}) {
      bench::MicroConfig cfg;
      cfg.object_size = 4096;
      cfg.ops = ops;
      cfg.seed = seed;
      cfg.topology = topology;
      cfg.read_ratio = 0.0;
      cfg.ddio = ddio;
      cells.push_back({sys, cfg});
    }
  }
  const auto results = bench::run_micro_cells(runner, cells);

  bench::TablePrinter table(
      {"System", "DDIO off (us)", "DDIO on (us)", "On/Off"});
  std::size_t k = 0;
  for (const rpcs::System sys : systems) {
    const double off = results[k++].avg_us();
    const double on = results[k++].avg_us();
    table.add_row({std::string(rpcs::name_of(sys)),
                   bench::TablePrinter::num(off, 1),
                   bench::TablePrinter::num(on, 1),
                   bench::TablePrinter::num(on / off, 2)});
  }
  table.print();
  return 0;
}
